// Figure 8 (Appendix D) — validation of the §5.3 comparability assumption:
// probes that reach the SAME site via a regional IP and via the global
// anycast IP should see nearly identical RTT distributions, i.e. the
// operator does not apply different latency-impacting policies to the two
// prefix families.
#include "harness.hpp"

#include "ranycast/lab/comparison.hpp"

using namespace ranycast;

int main() {
  bench::ObsSession obs_session("fig8_same_site");
  bench::print_header("Fig. 8 - same-site RTT via regional vs global address",
                      "Figure 8 (Appendix D)");
  auto laboratory = bench::default_lab();
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  const auto& imns = laboratory.add_deployment(cdn::catalog::imperva_ns());
  const auto result = lab::compare_regional_global(laboratory, im6, imns);

  std::array<std::vector<double>, geo::kAreaCount> reg, glob;
  std::size_t same_site_groups = 0;
  for (const auto& g : result.groups) {
    if (!g.same_site) continue;
    ++same_site_groups;
    reg[static_cast<int>(g.area)].push_back(g.regional_ms);
    glob[static_cast<int>(g.area)].push_back(g.global_ms);
  }
  std::printf("probe groups reaching the same site via both prefixes: %zu of %zu\n\n",
              same_site_groups, result.groups.size());

  for (std::size_t a = 0; a < geo::kAreaCount; ++a) {
    bench::print_cdf_series((std::string("IM6-") + bench::area_name(a)).c_str(), reg[a], 0, 200);
    bench::print_cdf_series((std::string("IM-NS-") + bench::area_name(a)).c_str(), glob[a], 0,
                            200);
  }

  std::printf("\nper-area median |RTT difference| for same-site groups:\n");
  for (std::size_t a = 0; a < geo::kAreaCount; ++a) {
    std::vector<double> diffs;
    for (std::size_t i = 0; i < reg[a].size(); ++i) {
      diffs.push_back(std::abs(reg[a][i] - glob[a][i]));
    }
    std::printf("  %-6s %.2f ms (n=%zu)\n", bench::area_name(a),
                diffs.empty() ? 0.0 : analysis::median(diffs), diffs.size());
  }
  std::printf("paper shape: differences are negligible, validating that the operator\n"
              "applies no prefix-specific latency-impacting policy\n");
  return 0;
}
