// Figure 2 — client and site partitions of the three regional anycast
// configurations (Edgio-3, Edgio-4, Imperva-6).
//
// First block per network: how probes in each geographic area distribute
// over the regional IPs DNS returns (the paper's first-row maps). Second
// block: the fraction of countries whose probes all receive a single
// regional IP (paper: 81.7% / 84.7% / 79.3%). Third block: the site
// partition uncovered by the traceroute pipeline (second-row maps),
// including cross-region ("MIXED") sites. Also verifies §4.5 global
// reachability of all regional prefixes.
#include "harness.hpp"

#include <cctype>
#include <map>
#include <set>

#include "ranycast/analysis/ascii_map.hpp"
#include "ranycast/geoloc/pipeline.hpp"

using namespace ranycast;

namespace {

void study_network(lab::Lab& laboratory, const lab::DeploymentHandle& handle,
                   const std::string& cdn_domain) {
  const auto& gaz = geo::Gazetteer::world();
  const auto& dep = handle.deployment;
  const auto retained = laboratory.census().retained();
  std::printf("---- %s (%zu regions, %zu sites) ----\n", dep.name().c_str(),
              dep.regions().size(), dep.sites().size());

  // Client partition: per area, distribution over returned regions.
  std::map<std::size_t, std::array<std::size_t, geo::kAreaCount>> by_region;
  std::map<std::string, std::set<std::size_t>> regions_per_country;
  for (const atlas::Probe* p : retained) {
    const auto answer = laboratory.dns_lookup(*p, handle, dns::QueryMode::Ldns);
    auto& counts = by_region.try_emplace(answer.region).first->second;
    counts[static_cast<int>(p->area())]++;
    regions_per_country[std::string(gaz.country_code(p->reported_city))].insert(answer.region);
  }
  analysis::TextTable client_table({"regional IP", "EMEA", "NA", "LatAm", "APAC"});
  for (const auto& [region, counts] : by_region) {
    client_table.add_row({dep.regions()[region].name,
                          analysis::fmt_count(counts[0]), analysis::fmt_count(counts[1]),
                          analysis::fmt_count(counts[2]), analysis::fmt_count(counts[3])});
  }
  std::printf("client partition (probes per area receiving each regional IP):\n%s\n",
              client_table.render().c_str());

  std::size_t single = 0;
  for (const auto& [iso2, regions] : regions_per_country) {
    if (regions.size() == 1) ++single;
  }
  std::printf("countries receiving exactly one regional IP: %s (%zu of %zu)\n",
              analysis::fmt_pct(static_cast<double>(single) /
                                static_cast<double>(regions_per_country.size()))
                  .c_str(),
              single, regions_per_country.size());
  std::printf("paper: Edgio-3 81.7%%, Edgio-4 84.7%%, Imperva-6 79.3%%\n\n");

  // Site partition via the traceroute + p-hop pipeline.
  std::vector<geoloc::TraceObservation> observations;
  for (const atlas::Probe* p : retained) {
    const auto answer = laboratory.dns_lookup(*p, handle, dns::QueryMode::Ldns);
    auto trace = laboratory.traceroute(*p, answer.address);
    if (!trace) continue;
    observations.push_back(geoloc::TraceObservation{p, std::move(*trace), answer.region});
  }
  std::vector<CityId> published;
  for (const cdn::Site& s : dep.sites()) published.push_back(s.city);
  const geoloc::RdnsOracle oracle{{}, &laboratory.world().graph, &laboratory.registry(),
                                  {{value(dep.asn()), cdn_domain}}};
  const auto enumeration = geoloc::enumerate_sites(
      observations, published, oracle,
      {&laboratory.db(0), &laboratory.db(1), &laboratory.db(2)}, {});
  std::map<std::string, std::size_t> per_region_sites;
  std::size_t mixed = 0;
  for (const auto& [site_city, regions] : enumeration.site_regions) {
    if (regions.size() > 1) {
      ++mixed;
      continue;
    }
    per_region_sites[dep.regions()[*regions.begin()].name]++;
  }
  std::printf("site partition uncovered by traceroute (site count per regional IP):\n");
  for (const auto& [name, count] : per_region_sites) {
    std::printf("  %-10s %zu sites\n", name.c_str(), count);
  }
  std::printf("  %-10s %zu sites (cross-region announcements)\n", "MIXED", mixed);

  // The Fig. 2 world map: lowercase probes, uppercase sites, '*' for mixed.
  analysis::AsciiMap map;
  const char symbols[] = "abcdefgh";
  for (const atlas::Probe* p : retained) {
    const auto answer = laboratory.dns_lookup(*p, handle, dns::QueryMode::Ldns);
    map.plot(gaz.city(p->reported_city).location, symbols[answer.region % 8]);
  }
  for (const auto& [site_city, regions] : enumeration.site_regions) {
    const char symbol = regions.size() > 1
                            ? '*'
                            : static_cast<char>(std::toupper(symbols[*regions.begin() % 8]));
    map.plot(gaz.city(site_city).location, symbol, true);
  }
  for (std::size_t r = 0; r < dep.regions().size(); ++r) {
    map.add_legend(symbols[r % 8], dep.regions()[r].name + " clients (uppercase: sites)");
  }
  map.add_legend('*', "site announcing multiple regional prefixes (MIXED)");
  std::printf("\n%s", map.render().c_str());

  // §4.5 reachability: every probe can ping every regional IP.
  std::size_t reachable = 0, expected = 0;
  for (const atlas::Probe* p : retained) {
    for (const auto& region : dep.regions()) {
      ++expected;
      if (laboratory.ping(*p, region.service_ip)) ++reachable;
    }
  }
  std::printf("regional-IP global reachability (sec 4.5): %s\n\n",
              analysis::fmt_pct(static_cast<double>(reachable) /
                                static_cast<double>(expected))
                  .c_str());
}

}  // namespace

int main() {
  bench::ObsSession obs_session("fig2_partitions");
  bench::print_header("Fig. 2 - client and site partitions of regional anycast CDNs",
                      "Figure 2 (a,b,c), country single-IP stats (sec 4.3), reachability (sec 4.5)");
  auto laboratory = bench::default_lab();
  study_network(laboratory, laboratory.add_deployment(cdn::catalog::edgio3()),
                "edgecastcdn.net");
  study_network(laboratory, laboratory.add_deployment(cdn::catalog::edgio4()),
                "edgecastcdn.net");
  study_network(laboratory, laboratory.add_deployment(cdn::catalog::imperva6()),
                "incapdns.net");
  return 0;
}
