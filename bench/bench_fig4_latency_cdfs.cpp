// Figure 4 (a, b) — CDFs of client latency and probe-to-catchment distance
// for Edgio-3 vs Edgio-4 and for Imperva-6, per geographic area.
#include "harness.hpp"

using namespace ranycast;

namespace {

struct Series {
  std::array<std::vector<double>, geo::kAreaCount> rtt;
  std::array<std::vector<double>, geo::kAreaCount> km;
};

Series measure(lab::Lab& laboratory, const lab::DeploymentHandle& handle) {
  const auto& gaz = geo::Gazetteer::world();
  Series out;
  const auto retained = laboratory.census().retained();
  for (const auto& group : atlas::group_probes(retained)) {
    const auto rtt = atlas::group_median(group, [&](const atlas::Probe* p) {
      const auto answer = laboratory.dns_lookup(*p, handle, dns::QueryMode::Ldns);
      const auto ping = laboratory.ping(*p, answer.address);
      return ping ? std::optional<double>(ping->ms) : std::nullopt;
    });
    const auto km = atlas::group_median(group, [&](const atlas::Probe* p) -> std::optional<double> {
      const auto answer = laboratory.dns_lookup(*p, handle, dns::QueryMode::Ldns);
      const auto site = laboratory.catchment_of(*p, answer.address);
      if (!site) return std::nullopt;
      return gaz.distance(p->reported_city, handle.deployment.site(*site).city).km;
    });
    const auto area = static_cast<int>(group.area);
    if (rtt) out.rtt[area].push_back(*rtt);
    if (km) out.km[area].push_back(*km);
  }
  return out;
}

void print_series(const char* label, const Series& s) {
  for (std::size_t a = 0; a < geo::kAreaCount; ++a) {
    const std::string name = std::string(label) + "-" + bench::area_name(a);
    bench::print_cdf_series((name + " RTT(ms)").c_str(), s.rtt[a], 0, 200);
  }
  for (std::size_t a = 0; a < geo::kAreaCount; ++a) {
    const std::string name = std::string(label) + "-" + bench::area_name(a);
    bench::print_cdf_series((name + " dist(km)").c_str(), s.km[a], 0, 12000);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::ObsSession obs_session("fig4_latency_cdfs");
  bench::print_header("Fig. 4a/4b - latency and catchment-distance CDFs",
                      "Figure 4 (a) Edgio-3 vs Edgio-4, (b) Imperva-6");
  auto laboratory = bench::default_lab();
  const auto& eg3 = laboratory.add_deployment(cdn::catalog::edgio3());
  const auto& eg4 = laboratory.add_deployment(cdn::catalog::edgio4());
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());

  const Series s3 = measure(laboratory, eg3);
  const Series s4 = measure(laboratory, eg4);
  const Series s6 = measure(laboratory, im6);
  print_series("EG3", s3);
  print_series("EG4", s4);
  print_series("IM6", s6);

  // Headline shape checks from §5.2.
  const auto latam = static_cast<int>(geo::Area::LatAm);
  std::printf("Edgio-3 LatAm 80th pct: %.1f ms -> Edgio-4: %.1f ms (paper: 132 -> 76;\n"
              "mapping SA clients to nearby SA sites must cut the tail)\n",
              analysis::percentile(s3.rtt[latam], 80), analysis::percentile(s4.rtt[latam], 80));
  for (const auto& [label, series] :
       {std::pair<const char*, const Series*>{"EG4", &s4}, {"IM6", &s6}}) {
    const analysis::Cdf apac{std::vector<double>(series->rtt[static_cast<int>(geo::Area::APAC)])};
    const analysis::Cdf na{std::vector<double>(series->rtt[static_cast<int>(geo::Area::NA)])};
    std::printf("%s: APAC groups over 100 ms: %s (paper: 6.7-7.8%%); NA 98th pct %.0f ms\n",
                label, analysis::fmt_pct(1.0 - apac.fraction_at_or_below(100.0)).c_str(),
                na.quantile(0.98));
  }
  return 0;
}
