// Table 4 — probe groups split by RTT outcome (better / similar / worse
// than global anycast, at a 5 ms threshold) and, within each class, whether
// their regional catchment site is closer, the same, or further than the
// global one.
#include "harness.hpp"

#include "ranycast/analysis/classify.hpp"
#include "ranycast/lab/comparison.hpp"

using namespace ranycast;

int main() {
  bench::ObsSession obs_session("table4_catchment_shift");
  bench::print_header("Table 4 - RTT outcome vs catchment-site shift", "Table 4");
  auto laboratory = bench::default_lab();
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  const auto& imns = laboratory.add_deployment(cdn::catalog::imperva_ns());
  const auto result = lab::compare_regional_global(laboratory, im6, imns);

  // counts[area][delta][shift]
  std::array<std::array<std::array<std::size_t, 3>, 3>, geo::kAreaCount> counts{};
  std::array<std::size_t, geo::kAreaCount> group_totals{};
  for (const auto& g : result.groups) {
    const auto delta = analysis::classify_rtt_delta(g.regional_ms, g.global_ms);
    const auto shift = analysis::classify_site_shift(g.same_site, g.regional_km, g.global_km);
    counts[static_cast<int>(g.area)][static_cast<int>(delta)][static_cast<int>(shift)]++;
    group_totals[static_cast<int>(g.area)]++;
  }

  analysis::TextTable table(
      {"region (#groups)", "outcome", "n", "closer site", "same site", "further site"});
  for (std::size_t a = 0; a < geo::kAreaCount; ++a) {
    for (const auto delta :
         {analysis::RttDelta::Better, analysis::RttDelta::Similar, analysis::RttDelta::Worse}) {
      const auto& row = counts[a][static_cast<int>(delta)];
      const std::size_t n = row[0] + row[1] + row[2];
      auto pct = [&](analysis::SiteShift s) {
        return n == 0 ? std::string("-")
                      : analysis::fmt_pct(static_cast<double>(row[static_cast<int>(s)]) /
                                          static_cast<double>(n));
      };
      table.add_row({std::string(bench::area_name(a)) + " (" +
                         std::to_string(group_totals[a]) + ")",
                     std::string(analysis::to_string(delta)), analysis::fmt_count(n),
                     pct(analysis::SiteShift::Closer), pct(analysis::SiteShift::Same),
                     pct(analysis::SiteShift::Further)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper shape: groups with >5 ms reduction overwhelmingly reach *closer*\n"
              "sites (EMEA 69.9%%, NA 79.7%%); similar-RTT groups reach the *same* site\n"
              "(97.9-100%%); groups that got worse mostly reach *further* sites\n");
  return 0;
}
