// Ablation — measurement-plane IP-to-AS mapping (the paper's §5.3 tooling):
// pyasn-style longest-prefix matching over a RouteViews-style RIB snapshot,
// and the IXP-LAN blind spot. The paper found 49% of penultimate-hop
// addresses belonged to IXPs and were invisible in BGP, resolvable only
// through PeeringDB's published LAN prefixes.
#include "harness.hpp"

#include "ranycast/bgpdata/rib_snapshot.hpp"

using namespace ranycast;

int main() {
  bench::ObsSession obs_session("ablation_ipasn");
  bench::print_header("Ablation - IP-to-AS mapping and IXP visibility",
                      "sec 5.3 tooling (pyasn over RouteViews; PeeringDB IXP LANs)");
  auto laboratory = bench::default_lab();
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  const cdn::Deployment* deps[] = {&im6.deployment};
  auto snapshot =
      bgpdata::RibSnapshot::build(laboratory.world(), laboratory.registry(), deps);
  const auto lans =
      bgpdata::allocate_ixp_lans(laboratory.world(), laboratory.registry(), snapshot);

  std::printf("RIB snapshot: %zu routes; %zu IXP LAN prefixes (PeeringDB view)\n\n",
              snapshot.route_count(), snapshot.ixp_lan_count());

  // Resolve every traceroute hop of every probe through the snapshot; a hop
  // whose interconnection city hosts an IXP uses a LAN address with some
  // probability, reproducing the paper's visibility gap.
  std::size_t hops_total = 0, hops_bgp = 0, hops_ixp = 0, hops_unrouted = 0;
  std::size_t phops_total = 0, phops_bgp = 0;
  const auto& world = laboratory.world();
  for (const atlas::Probe* p : laboratory.census().retained()) {
    const auto answer = laboratory.dns_lookup(*p, im6, dns::QueryMode::Ldns);
    const auto trace = laboratory.traceroute(*p, answer.address);
    if (!trace) continue;
    for (std::size_t h = 0; h < trace->hops.size(); ++h) {
      const auto& hop = trace->hops[h];
      // Interfaces at IXP cities use the exchange LAN when the hop crosses
      // the IXP fabric (deterministic per interface).
      Ipv4Addr address = hop.ip;
      const auto ixp_it = world.ixp_by_city.find(hop.city);
      if (ixp_it != world.ixp_by_city.end() &&
          mix64(hash_combine(0x1A9, hop.ip.bits())) % 100 < 55) {
        address = lans[ixp_it->second].at(1 + hop.ip.bits() % 900);
      }
      const auto owner = snapshot.map(address);
      ++hops_total;
      const bool is_phop = h + 1 == trace->hops.size();
      if (is_phop) ++phops_total;
      switch (owner.kind) {
        case bgpdata::MappedOwner::Kind::As:
          ++hops_bgp;
          if (is_phop) ++phops_bgp;
          break;
        case bgpdata::MappedOwner::Kind::Ixp:
          ++hops_ixp;
          break;
        case bgpdata::MappedOwner::Kind::Unrouted:
          ++hops_unrouted;
          break;
      }
    }
  }

  analysis::TextTable table({"hop class", "count", "share"});
  auto pct = [&](std::size_t n) {
    return analysis::fmt_pct(static_cast<double>(n) / static_cast<double>(hops_total));
  };
  table.add_row({"visible in BGP (pyasn resolves)", analysis::fmt_count(hops_bgp),
                 pct(hops_bgp)});
  table.add_row({"IXP LAN (PeeringDB only)", analysis::fmt_count(hops_ixp), pct(hops_ixp)});
  table.add_row({"unrouted", analysis::fmt_count(hops_unrouted), pct(hops_unrouted)});
  std::printf("%s\n", table.render().c_str());
  std::printf("p-hops resolvable via BGP alone: %s (of %zu)\n",
              analysis::fmt_pct(static_cast<double>(phops_bgp) /
                                static_cast<double>(phops_total))
                  .c_str(),
              phops_total);
  std::printf("paper: 49%% of p-hop addresses belonged to IXPs and were invisible in\n"
              "BGP - AS-level analyses must join RouteViews with PeeringDB, as here\n");
  return 0;
}
