// Table 3 — tail latency (80th/90th/95th percentile) of Imperva-6 vs its
// global anycast DNS network (Imperva-NS), per geographic area, after the
// §5.3 overlap filtering.
#include "harness.hpp"

#include "ranycast/lab/comparison.hpp"

using namespace ranycast;

int main() {
  bench::ObsSession obs_session("table3_tail_latency");
  bench::print_header("Table 3 - tail latency, Imperva-6 vs Imperva-NS", "Table 3");
  auto laboratory = bench::default_lab();
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  const auto& imns = laboratory.add_deployment(cdn::catalog::imperva_ns());
  const auto result = lab::compare_regional_global(laboratory, im6, imns);

  std::array<std::vector<double>, geo::kAreaCount> reg, glob;
  for (const auto& g : result.groups) {
    reg[static_cast<int>(g.area)].push_back(g.regional_ms);
    glob[static_cast<int>(g.area)].push_back(g.global_ms);
  }

  analysis::TextTable table({"percentile", "APAC", "EMEA", "NA", "LatAm"});
  for (const double p : {80.0, 90.0, 95.0}) {
    std::vector<std::string> row{std::to_string(static_cast<int>(p)) + "-th"};
    for (const auto area : {geo::Area::APAC, geo::Area::EMEA, geo::Area::NA, geo::Area::LatAm}) {
      const auto a = static_cast<int>(area);
      row.push_back(analysis::fmt_ms(analysis::percentile(reg[a], p), 0) + " (" +
                    analysis::fmt_ms(analysis::percentile(glob[a], p), 0) + ")");
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("cells: Imperva-6 (Imperva-NS), milliseconds\n");
  std::printf("paper:  80th 38(38) 31(31) 25(35) 68(57)\n");
  std::printf("        90th 63(59) 45(53) 38(110) 102(93)\n");
  std::printf("        95th 98(87) 67(165) 54(221) 120(101)\n");
  std::printf("shape check: regional anycast cuts EMEA/NA tails hard; APAC/LatAm can\n"
              "regress slightly due to DNS mapping sub-optimality\n");
  return 0;
}
