// Table 1 — the number of sites in each geographic area of every studied
// network: deployed configuration, published PoP list, and the subset the
// measurement pipeline uncovers.
#include "harness.hpp"

#include "ranycast/geoloc/pipeline.hpp"
#include "ranycast/tangled/testbed.hpp"

using namespace ranycast;

namespace {

std::array<std::size_t, geo::kAreaCount> count_by_area(const std::vector<CityId>& cities) {
  const auto& gaz = geo::Gazetteer::world();
  std::array<std::size_t, geo::kAreaCount> out{0, 0, 0, 0};
  for (CityId c : cities) out[static_cast<int>(gaz.area_of_city(c))]++;
  return out;
}

std::vector<CityId> uncovered_sites(lab::Lab& laboratory, const lab::DeploymentHandle& handle,
                                    const char* domain) {
  std::vector<geoloc::TraceObservation> observations;
  for (const atlas::Probe* p : laboratory.census().retained()) {
    const auto answer = laboratory.dns_lookup(*p, handle, dns::QueryMode::Ldns);
    auto trace = laboratory.traceroute(*p, answer.address);
    if (!trace) continue;
    observations.push_back(geoloc::TraceObservation{p, std::move(*trace), answer.region});
  }
  std::vector<CityId> published;
  for (const cdn::Site& s : handle.deployment.sites()) published.push_back(s.city);
  const geoloc::RdnsOracle oracle{{}, &laboratory.world().graph, &laboratory.registry(),
                                  {{value(handle.deployment.asn()), domain}}};
  const auto result = geoloc::enumerate_sites(
      observations, published, oracle,
      {&laboratory.db(0), &laboratory.db(1), &laboratory.db(2)}, {});
  std::vector<CityId> cities;
  for (const auto& [site_city, regions] : result.site_regions) cities.push_back(site_city);
  return cities;
}

std::vector<CityId> cities_of(const std::vector<std::string>& iatas) {
  const auto& gaz = geo::Gazetteer::world();
  std::vector<CityId> out;
  for (const auto& iata : iatas) {
    if (const auto c = gaz.find_by_iata(iata)) out.push_back(*c);
  }
  return out;
}

}  // namespace

int main() {
  bench::ObsSession obs_session("table1_sites");
  bench::print_header("Table 1 - sites per geographic area", "Table 1");
  auto laboratory = bench::default_lab();

  analysis::TextTable table(
      {"network", "APAC", "EMEA", "NA", "LatAm", "total", "paper total"});
  auto add = [&](const char* label, const std::vector<CityId>& cities, int paper_total) {
    const auto counts = count_by_area(cities);
    table.add_row({label, analysis::fmt_count(counts[3]), analysis::fmt_count(counts[0]),
                   analysis::fmt_count(counts[1]), analysis::fmt_count(counts[2]),
                   analysis::fmt_count(cities.size()), analysis::fmt_count(paper_total)});
  };

  const auto& eg3 = laboratory.add_deployment(cdn::catalog::edgio3());
  const auto& eg4 = laboratory.add_deployment(cdn::catalog::edgio4());
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  const auto& imns = laboratory.add_deployment(cdn::catalog::imperva_ns());

  add("EG-3 (uncovered)", uncovered_sites(laboratory, eg3, "edgecastcdn.net"), 43);
  add("EG-4 (uncovered)", uncovered_sites(laboratory, eg4, "edgecastcdn.net"), 47);
  add("EG-Pub", cities_of(cdn::catalog::edgio_published_sites()), 79);
  add("IM-6 (uncovered)", uncovered_sites(laboratory, im6, "incapdns.net"), 48);
  add("IM-NS (uncovered)", uncovered_sites(laboratory, imns, "incapdns.net"), 49);
  add("IM-Pub", cities_of(cdn::catalog::imperva_published_sites()), 50);
  add("Tangled", tangled::site_cities(), 12);

  std::printf("%s\n", table.render().c_str());
  std::printf("paper (Table 1): APAC/EMEA/NA/LatAm = EG-3 14/15/13/1, EG-4 15/16/12/4,\n"
              "EG-Pub 19/26/24/10, IM-6 16/15/12/5, IM-NS 17/15/12/5, IM-Pub 17/15/12/6,\n"
              "Tangled 2/5/3/2. Uncovered rows depend on probe coverage, as in the paper.\n");
  return 0;
}
