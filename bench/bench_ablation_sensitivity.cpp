// Ablation — sensitivity of the headline result to the simulator's knobs.
//
// The paper's conclusion (regional anycast cuts tail latency vs global
// anycast) should be a property of the *mechanism*, not of one lucky
// parameterization. This bench re-runs the Imperva-6 vs Imperva-NS NA/EMEA
// p90 comparison while varying: world seed, tier-1 count, resolver mix, and
// geolocation-database error rate.
#include "harness.hpp"

using namespace ranycast;

namespace {

struct Headline {
  double na_regional_p90, na_global_p90;
  double emea_regional_p90, emea_global_p90;
};

Headline measure(const lab::LabConfig& config) {
  auto laboratory = lab::Lab::create(config);
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  const auto& ns = laboratory.add_deployment(cdn::catalog::imperva_ns());
  std::array<std::vector<double>, geo::kAreaCount> reg, glob;
  for (const auto& group : atlas::group_probes(laboratory.census().retained())) {
    const auto r = atlas::group_median(group, [&](const atlas::Probe* p) {
      const auto answer = laboratory.dns_lookup(*p, im6, dns::QueryMode::Ldns);
      const auto rtt = laboratory.ping(*p, answer.address);
      return rtt ? std::optional<double>(rtt->ms) : std::nullopt;
    });
    const auto g = atlas::group_median(group, [&](const atlas::Probe* p) {
      const auto rtt = laboratory.ping(*p, ns.deployment.regions()[0].service_ip);
      return rtt ? std::optional<double>(rtt->ms) : std::nullopt;
    });
    if (r) reg[static_cast<int>(group.area)].push_back(*r);
    if (g) glob[static_cast<int>(group.area)].push_back(*g);
  }
  const auto na = static_cast<int>(geo::Area::NA);
  const auto emea = static_cast<int>(geo::Area::EMEA);
  return Headline{analysis::percentile(reg[na], 90), analysis::percentile(glob[na], 90),
                  analysis::percentile(reg[emea], 90), analysis::percentile(glob[emea], 90)};
}

// The sweep runs at the shared harness preset so its baseline row matches
// the other small-world benches exactly.
lab::LabConfig small_config() { return bench::preset_config(bench::Preset::Sweep); }

}  // namespace

int main() {
  bench::ObsSession obs_session("ablation_sensitivity");
  bench::print_header("Ablation - sensitivity of the regional-vs-global headline",
                      "robustness of Table 3's NA/EMEA p90 reduction");
  analysis::TextTable table({"variant", "NA p90 reg", "NA p90 glob", "EMEA p90 reg",
                             "EMEA p90 glob", "regional wins"});
  auto add = [&](const char* label, const lab::LabConfig& config) {
    const Headline h = measure(config);
    const bool wins = h.na_regional_p90 < h.na_global_p90 &&
                      h.emea_regional_p90 < h.emea_global_p90;
    table.add_row({label, analysis::fmt_ms(h.na_regional_p90),
                   analysis::fmt_ms(h.na_global_p90), analysis::fmt_ms(h.emea_regional_p90),
                   analysis::fmt_ms(h.emea_global_p90), wins ? "yes" : "NO"});
  };

  add("baseline", small_config());

  for (const std::uint64_t seed : {7ull, 99ull, 4242ull}) {
    auto config = small_config();
    config.world.seed = seed;
    config.seed = seed;
    add(("world seed " + std::to_string(seed)).c_str(), config);
  }
  {
    auto config = small_config();
    config.world.tier1_count = 12;
    add("12 tier-1 carriers", config);
  }
  {
    auto config = small_config();
    config.world.tier1_count = 36;
    config.world.tier1_city_coverage = 0.30;
    add("36 tier-1 carriers", config);
  }
  {
    auto config = small_config();
    config.census.resolver_local_prob = 0.40;  // many more public resolvers
    config.census.resolver_public_ecs_prob = 0.20;
    add("40% local resolvers", config);
  }
  {
    auto config = small_config();
    for (auto& db : config.geo_dbs) db.wrong_country_prob *= 4.0;
    add("4x geo-DB error", config);
  }
  {
    auto config = small_config();
    config.world.stub_foreign_registration_prob = 0.10;
    add("10% foreign-registered stubs", config);
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("expected: 'regional wins' holds across every variant - the mechanism\n"
              "(bounding catchment geography) does not depend on tuning\n");
  return 0;
}
