// Ablation — guard-runtime overhead on a chaos timeline.
//
// The supervised path (run_guarded) adds per-step heartbeats, stop checks
// and — when enabled — checkpoint serialization + atomic file writes on top
// of run(). This bench times the same cascade three ways (plain, guarded
// without checkpointing, guarded with a per-step checkpoint) and prints the
// per-step cost of each layer, so "crash safety is effectively free" stays
// a measured claim rather than an assumption. The three reports must be
// identical: supervision may cost time, never bytes.
#include "harness.hpp"

#include <cstdio>
#include <filesystem>

#include "ranycast/chaos/engine.hpp"
#include "ranycast/chaos/scenario.hpp"
#include "ranycast/guard/runtime.hpp"

using namespace ranycast;

namespace {

chaos::FaultPlan cascade() {
  chaos::FaultPlan plan;
  plan.name = "guard-overhead-cascade";
  chaos::FaultEvent e;
  e.kind = chaos::FaultKind::SiteWithdraw;
  e.site = SiteId{0};
  plan.events.push_back(e);
  e = chaos::FaultEvent{};
  e.kind = chaos::FaultKind::GeoDbStale;
  e.db = 0;
  e.magnitude = 0.3;
  plan.events.push_back(e);
  e = chaos::FaultEvent{};
  e.kind = chaos::FaultKind::MeasurementDegrade;
  e.faults.ping_loss_prob = 0.1;
  e.faults.dns_timeout_prob = 0.05;
  plan.events.push_back(e);
  e = chaos::FaultEvent{};
  e.kind = chaos::FaultKind::MeasurementRestore;
  plan.events.push_back(e);
  e = chaos::FaultEvent{};
  e.kind = chaos::FaultKind::SiteRestore;
  e.site = SiteId{0};
  plan.events.push_back(e);
  return plan;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  bench::ObsSession obs_session("ablation_guard");
  bench::print_header("Ablation - guard runtime overhead",
                      "supervised vs plain chaos timeline (docs/reliability.md)");
  const chaos::FaultPlan plan = cascade();
  const auto ck_path =
      (std::filesystem::temp_directory_path() / "bench_guard_overhead.ck").string();

  constexpr int kRounds = 5;
  double plain_s = 0.0, guarded_s = 0.0, checkpointed_s = 0.0;
  std::string plain_dump, guarded_dump, checkpointed_dump;

  for (int round = 0; round < kRounds; ++round) {
    // Fresh labs per variant: the engine mutates routing state in place and
    // restores it, but identical starting conditions keep this honest.
    {
      auto laboratory = bench::small_lab();
      const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
      chaos::Engine engine(laboratory, im6);
      const auto start = std::chrono::steady_clock::now();
      auto report = engine.run(plan);
      plain_s += seconds_since(start);
      if (!report) {
        std::fprintf(stderr, "chaos error: %s\n", report.error().c_str());
        return 1;
      }
      plain_dump = chaos::report_to_json(*report).dump();
    }
    {
      auto laboratory = bench::small_lab();
      const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
      chaos::Engine engine(laboratory, im6);
      guard::Supervisor supervisor;
      guard::CheckpointPolicy policy;  // supervision only, no file
      const auto start = std::chrono::steady_clock::now();
      auto report = engine.run_guarded(plan, supervisor, policy);
      guarded_s += seconds_since(start);
      if (!report) {
        std::fprintf(stderr, "guarded chaos error: %s\n", report.error().c_str());
        return 1;
      }
      guarded_dump = chaos::report_to_json(report->report).dump();
    }
    {
      auto laboratory = bench::small_lab();
      const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
      chaos::Engine engine(laboratory, im6);
      guard::Supervisor supervisor;
      guard::CheckpointPolicy policy;
      policy.path = ck_path;  // serialize + fsync + rename every step
      const auto start = std::chrono::steady_clock::now();
      auto report = engine.run_guarded(plan, supervisor, policy);
      checkpointed_s += seconds_since(start);
      if (!report) {
        std::fprintf(stderr, "checkpointed chaos error: %s\n",
                     report.error().c_str());
        return 1;
      }
      checkpointed_dump = chaos::report_to_json(report->report).dump();
    }
  }
  std::filesystem::remove(ck_path);

  if (guarded_dump != plain_dump || checkpointed_dump != plain_dump) {
    std::fprintf(stderr, "FAIL: supervised reports diverged from the plain run\n");
    return 1;
  }

  const double steps = static_cast<double>(plan.events.size()) * kRounds;
  analysis::TextTable table(
      {"variant", "total s", "ms/step", "overhead vs plain"});
  const auto pct = [&](double s) {
    return analysis::fmt_pct(plain_s > 0.0 ? (s - plain_s) / plain_s : 0.0);
  };
  table.add_row({"plain run()", analysis::fmt_ms(plain_s * 1e3),
                 analysis::fmt_ms(plain_s * 1e3 / steps), "-"});
  table.add_row({"guarded, no checkpoint", analysis::fmt_ms(guarded_s * 1e3),
                 analysis::fmt_ms(guarded_s * 1e3 / steps), pct(guarded_s)});
  table.add_row({"guarded + per-step checkpoint",
                 analysis::fmt_ms(checkpointed_s * 1e3),
                 analysis::fmt_ms(checkpointed_s * 1e3 / steps),
                 pct(checkpointed_s)});
  std::printf("%s\n", table.render().c_str());
  std::printf("reports identical across all three variants: yes\n");
  return 0;
}
