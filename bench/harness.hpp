// Shared experiment-harness helpers for the per-table/per-figure benches.
//
// Every bench builds the same default laboratory (full paper scale: ~2750
// ASes, ~11k probes) so results are comparable across binaries, then prints
// the paper's rows/series next to the simulated values.
#pragma once

#include <array>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "ranycast/analysis/stats.hpp"
#include "ranycast/analysis/table.hpp"
#include "ranycast/atlas/grouping.hpp"
#include "ranycast/cdn/catalog.hpp"
#include "ranycast/lab/lab.hpp"

namespace ranycast::bench {

inline lab::Lab default_lab() { return lab::Lab::create(lab::LabConfig{}); }

/// Smaller world for benches that sweep many configurations.
inline lab::Lab small_lab() {
  lab::LabConfig config;
  config.world.stub_count = 1200;
  config.census.total_probes = 5000;
  return lab::Lab::create(config);
}

// geo::to_string returns views of string literals, so .data() is NUL-safe.
inline const char* area_name(std::size_t a) {
  return geo::to_string(static_cast<geo::Area>(a)).data();
}

/// Group-median values per area for an arbitrary probe measurement.
template <typename F>
std::array<std::vector<double>, geo::kAreaCount> per_area_group_medians(
    const lab::Lab& laboratory, F&& measure) {
  std::array<std::vector<double>, geo::kAreaCount> out;
  const auto retained = laboratory.census().retained();
  for (const auto& group : atlas::group_probes(retained)) {
    const auto median = atlas::group_median(group, measure);
    if (median) out[static_cast<int>(group.area)].push_back(*median);
  }
  return out;
}

/// Print an empirical CDF as a fixed set of (x, F(x)) points, one series per
/// line, in the gnuplot-friendly style the paper's figures use.
inline void print_cdf_series(const char* label, const std::vector<double>& samples, double lo,
                             double hi, int points = 11) {
  const analysis::Cdf cdf{std::vector<double>(samples)};
  std::printf("%-22s n=%-5zu", label, cdf.size());
  for (const auto& [x, f] : cdf.series(lo, hi, points)) {
    std::printf("  %6.0f:%.2f", x, f);
  }
  std::printf("\n");
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("==============================================================\n\n");
}

}  // namespace ranycast::bench
