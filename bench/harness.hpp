// Shared experiment-harness helpers for the per-table/per-figure benches.
//
// Every bench builds one of the named scale presets below so results are
// comparable across binaries, then prints the paper's rows/series next to
// the simulated values. When observability is on (RANYCAST_OBS=1), the
// ObsSession each bench opens in main() also writes a machine-readable
// BENCH_<name>.json telemetry report next to the text output; see
// docs/observability.md for the schema.
#pragma once

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "ranycast/analysis/stats.hpp"
#include "ranycast/analysis/table.hpp"
#include "ranycast/atlas/grouping.hpp"
#include "ranycast/cdn/catalog.hpp"
#include "ranycast/exec/pool.hpp"
#include "ranycast/lab/lab.hpp"
#include "ranycast/obs/flight.hpp"
#include "ranycast/obs/journal.hpp"
#include "ranycast/obs/report.hpp"
#include "ranycast/obs/span.hpp"

namespace ranycast::bench {

/// The laboratory scale presets benches run at. Paper is the full study
/// scale (~2750 ASes, ~11k probes); Sweep is for benches that re-run many
/// configurations; Tiny is for telemetry exercises and smoke checks.
enum class Preset { Paper, Sweep, Tiny };

inline const char* to_string(Preset p) {
  switch (p) {
    case Preset::Paper: return "paper";
    case Preset::Sweep: return "sweep";
    case Preset::Tiny: return "tiny";
  }
  return "?";
}

inline lab::LabConfig preset_config(Preset p) {
  lab::LabConfig config;
  switch (p) {
    case Preset::Paper:
      break;
    case Preset::Sweep:
      config.world.stub_count = 1200;
      config.census.total_probes = 5000;
      break;
    case Preset::Tiny:
      config.world.stub_count = 400;
      config.census.total_probes = 1500;
      break;
  }
  return config;
}

/// Build a lab at a named preset and record which one ran in the telemetry.
inline lab::Lab make_lab(Preset p) {
  obs::MetricsRegistry::global().set_label("bench.preset", to_string(p));
  return lab::Lab::create(preset_config(p));
}

inline lab::Lab default_lab() { return make_lab(Preset::Paper); }

/// Smaller world for benches that sweep many configurations.
inline lab::Lab small_lab() { return make_lab(Preset::Sweep); }

/// Per-bench telemetry session: construct one at the top of main(). On
/// destruction, when observability is enabled, writes BENCH_<name>.json
/// (stage timings, counters, span rollups, total wall time) into the
/// current directory. A no-op under RANYCAST_OBS=0.
class ObsSession {
 public:
  explicit ObsSession(const char* name)
      : name_(name), start_(std::chrono::steady_clock::now()) {
    obs::set_thread_name("main");
    // RANYCAST_JOURNAL routes a bench_sample event stream to an NDJSON run
    // journal (appending, so a suite of benches shares one journal).
    if (obs::enabled()) {
      if (const char* path = std::getenv("RANYCAST_JOURNAL");
          path != nullptr && *path != '\0') {
        const auto parent = std::filesystem::path(path).parent_path();
        if (!parent.empty()) {
          std::error_code ec;
          std::filesystem::create_directories(parent, ec);
        }
        if (journal_.open(path, /*append=*/true)) {
          obs::set_journal(&journal_);
        } else {
          std::fprintf(stderr, "[obs] RANYCAST_JOURNAL: %s\n", journal_.error().c_str());
        }
      }
    }
  }

  ~ObsSession() {
    if (journal_.is_open()) obs::set_journal(nullptr);
    if (!obs::enabled()) return;
    const double wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start_)
            .count();
    // Fold end-of-run process telemetry into the report: pool utilization
    // and the RSS high-water mark.
    exec::ThreadPool::global().publish_stats();
    const std::uint64_t rss_kb = obs::rss_high_water_kb();
    if (journal_.is_open()) {
      using F = obs::JournalField;
      journal_.event("bench_sample",
                     {F::str("bench", name_), F::f64_field("wall_ms", wall_ms),
                      F::u64_field("rss_hwm_kb", rss_kb),
                      F::u64_field("dropped_events", obs::dropped_events())},
                     /*durable=*/true);
    }
    if (obs::write_bench_report(name_, wall_ms)) {
      std::printf("\n[obs] wrote BENCH_%s.json\n", name_);
    }
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

 private:
  const char* name_;
  std::chrono::steady_clock::time_point start_;
  obs::Journal journal_;
};

/// For micro-benches that never build a Lab of their own (hand-crafted
/// graphs): when observability is on, run a miniature lab + measurement
/// pass so their telemetry report still carries lab-construction phase
/// timings and dns/ping counters. A no-op — zero extra work — otherwise.
inline void obs_pipeline_exercise() {
  if (!obs::enabled()) return;
  auto laboratory = lab::Lab::create(preset_config(Preset::Tiny));
  const auto& handle = laboratory.add_deployment(cdn::catalog::imperva6());
  const auto retained = laboratory.census().retained();
  const std::size_t n = std::min<std::size_t>(retained.size(), 200);
  for (std::size_t i = 0; i < n; ++i) {
    const atlas::Probe* probe = retained[i];
    const auto answer = laboratory.dns_lookup(*probe, handle, dns::QueryMode::Ldns);
    laboratory.ping(*probe, answer.address);
    if (i % 50 == 0) laboratory.traceroute(*probe, answer.address);
  }
}

// geo::to_string returns views of string literals, so .data() is NUL-safe.
inline const char* area_name(std::size_t a) {
  return geo::to_string(static_cast<geo::Area>(a)).data();
}

/// Group-median values per area for an arbitrary probe measurement.
template <typename F>
std::array<std::vector<double>, geo::kAreaCount> per_area_group_medians(
    const lab::Lab& laboratory, F&& measure) {
  std::array<std::vector<double>, geo::kAreaCount> out;
  const auto retained = laboratory.census().retained();
  for (const auto& group : atlas::group_probes(retained)) {
    const auto median = atlas::group_median(group, measure);
    if (median) out[static_cast<int>(group.area)].push_back(*median);
  }
  return out;
}

/// Print an empirical CDF as a fixed set of (x, F(x)) points, one series per
/// line, in the gnuplot-friendly style the paper's figures use.
inline void print_cdf_series(const char* label, const std::vector<double>& samples, double lo,
                             double hi, int points = 11) {
  const analysis::Cdf cdf{std::vector<double>(samples)};
  std::printf("%-22s n=%-5zu", label, cdf.size());
  for (const auto& [x, f] : cdf.series(lo, hi, points)) {
    std::printf("  %6.0f:%.2f", x, f);
  }
  std::printf("\n");
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("==============================================================\n\n");
}

}  // namespace ranycast::bench
