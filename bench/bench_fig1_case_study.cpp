// Figure 1 — catchment inefficiency case study.
//
// A probe in Washington D.C. buys transit from a Zayo-like carrier; Imperva
// has a site in Ashburn (connected to a Level 3-like peer of Zayo) and one
// in Singapore (connected to SingTel, a *customer* of Zayo). Under global
// anycast BGP's customer-route preference drags the probe to Singapore
// (paper: 252 ms); under regional anycast the probe reaches Ashburn
// (paper: 2 ms).
#include "harness.hpp"

#include "ranycast/bgp/path_metrics.hpp"
#include "ranycast/bgp/solver.hpp"

using namespace ranycast;

namespace {

CityId city(const char* iata) { return *geo::Gazetteer::world().find_by_iata(iata); }

constexpr Asn kCdn = make_asn(65000);

}  // namespace

int main() {
  bench::ObsSession obs_session("fig1_case_study");
  bench::obs_pipeline_exercise();
  bench::print_header("Fig. 1 case study: customer-route preference vs regional anycast",
                      "Figure 1 (Washington D.C. probe, 252 ms -> 2 ms)");

  topo::Graph g;
  const CityId iad = city("IAD");
  const CityId sin = city("SIN");
  const Asn zayo = g.add_as(topo::AsKind::Tier1, iad, {iad, sin});
  const Asn level3 = g.add_as(topo::AsKind::Tier1, iad, {iad, sin});
  const Asn singtel = g.add_as(topo::AsKind::Transit, sin, {sin});
  const Asn probe_as = g.add_as(topo::AsKind::Stub, iad, {iad});
  g.add_peering(zayo, level3, false, {iad});
  g.add_transit(singtel, zayo, {sin});
  g.add_transit(probe_as, zayo, {iad});

  const bgp::OriginAttachment ashburn{SiteId{0}, iad, level3, topo::Rel::Customer, true};
  const bgp::OriginAttachment singapore{SiteId{1}, sin, singtel, topo::Rel::Customer, true};

  const bgp::LatencyModel latency;
  auto describe = [&](const char* config, std::span<const bgp::OriginAttachment> origins) {
    const auto outcome = bgp::solve_anycast(g, kCdn, origins, 1);
    const bgp::Route* r = outcome.route_for(probe_as);
    const Rtt rtt = latency.path_rtt(*r, iad, probe_as);
    std::printf("%-22s catchment=%-10s class=%-18s rtt=%6.1f ms  as-path:",
                config, r->origin_site == SiteId{0} ? "Ashburn" : "Singapore",
                std::string(bgp::to_string(r->cls)).c_str(), rtt.ms);
    for (Asn a : r->as_path) std::printf(" AS%u", value(a));
    std::printf("\n");
  };

  const bgp::OriginAttachment global_origins[] = {ashburn, singapore};
  const bgp::OriginAttachment regional_origins[] = {ashburn};
  describe("global anycast", global_origins);
  describe("regional anycast (US)", regional_origins);

  std::printf("\npaper: global anycast 252 ms (Singapore), regional 2 ms (Ashburn)\n");
  std::printf("shape check: remote catchment under global, local under regional\n");
  return 0;
}
