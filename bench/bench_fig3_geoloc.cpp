// Figure 3 — fraction of p-hops and traceroutes geolocated by each
// technique (rDNS, RTT range, country-level IPGeo, unresolved) for the four
// studied networks: Edgio-3, Edgio-4, Imperva-6 and Imperva's DNS network.
#include "harness.hpp"

#include "ranycast/geoloc/pipeline.hpp"

using namespace ranycast;

namespace {

geoloc::EnumerationResult run_pipeline(lab::Lab& laboratory,
                                       const lab::DeploymentHandle& handle,
                                       const std::string& cdn_domain) {
  std::vector<geoloc::TraceObservation> observations;
  for (const atlas::Probe* p : laboratory.census().retained()) {
    const auto answer = laboratory.dns_lookup(*p, handle, dns::QueryMode::Ldns);
    auto trace = laboratory.traceroute(*p, answer.address);
    if (!trace) continue;
    observations.push_back(geoloc::TraceObservation{p, std::move(*trace), answer.region});
  }
  std::vector<CityId> published;
  for (const cdn::Site& s : handle.deployment.sites()) published.push_back(s.city);
  const geoloc::RdnsOracle oracle{{}, &laboratory.world().graph, &laboratory.registry(),
                                  {{value(handle.deployment.asn()), cdn_domain}}};
  return geoloc::enumerate_sites(observations, published, oracle,
                                 {&laboratory.db(0), &laboratory.db(1), &laboratory.db(2)},
                                 {});
}

}  // namespace

int main() {
  bench::ObsSession obs_session("fig3_geoloc");
  bench::print_header("Fig. 3 - p-hop geolocation technique fractions",
                      "Figure 3 (EG-3, EG-4, IM-6, IM-NS bars)");
  auto laboratory = bench::default_lab();

  struct Network {
    const char* label;
    const lab::DeploymentHandle* handle;
    const char* domain;
  };
  const Network networks[] = {
      {"EG-3", &laboratory.add_deployment(cdn::catalog::edgio3()), "edgecastcdn.net"},
      {"EG-4", &laboratory.add_deployment(cdn::catalog::edgio4()), "edgecastcdn.net"},
      {"IM-6", &laboratory.add_deployment(cdn::catalog::imperva6()), "incapdns.net"},
      {"IM-NS", &laboratory.add_deployment(cdn::catalog::imperva_ns()), "incapdns.net"},
  };

  analysis::TextTable table({"network", "unit", "rDNS", "RTT Range", "Country IPGeo",
                             "Unresolved", "total"});
  for (const Network& net : networks) {
    const auto result = run_pipeline(laboratory, *net.handle, net.domain);
    using geoloc::Technique;
    table.add_row({net.label, "p-hops",
                   analysis::fmt_pct(result.phop_fraction(Technique::Rdns)),
                   analysis::fmt_pct(result.phop_fraction(Technique::RttRange)),
                   analysis::fmt_pct(result.phop_fraction(Technique::CountryIpGeo)),
                   analysis::fmt_pct(result.phop_fraction(Technique::Unresolved)),
                   analysis::fmt_count(result.total_phops())});
    table.add_row({net.label, "traces",
                   analysis::fmt_pct(result.trace_fraction(Technique::Rdns)),
                   analysis::fmt_pct(result.trace_fraction(Technique::RttRange)),
                   analysis::fmt_pct(result.trace_fraction(Technique::CountryIpGeo)),
                   analysis::fmt_pct(result.trace_fraction(Technique::Unresolved)),
                   analysis::fmt_count(result.total_traces())});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper shape: rDNS dominates; unresolved traces 2.3%%-9.9%%; the\n"
              "cascade resolves the large majority of p-hops for every network\n");
  return 0;
}
