// Ablation — multi-event fault timelines.
//
// §4.5 measures anycast robustness one failure at a time; the chaos engine
// replays an ordered timeline of heterogeneous faults (site withdrawal,
// attachment flap, route-server outage, restoration) against one deployment
// and reports survival, failover locality, and latency inflation per step.
// The restore steps should return the catchment to its starting shape —
// reconvergence is exact because tie-breaks are prefix-independent.
#include "harness.hpp"

#include <map>

#include "ranycast/chaos/engine.hpp"

using namespace ranycast;

int main() {
  bench::ObsSession obs_session("ablation_chaos");
  bench::print_header("Ablation - multi-event fault timeline",
                      "sec 4.5 (robustness) under a withdraw/flap/outage/restore cascade");
  auto laboratory = bench::small_lab();
  const auto& gaz = geo::Gazetteer::world();
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());

  // Pick the busiest site so every step has subjects.
  std::map<std::uint16_t, int> load;
  for (const atlas::Probe* p : laboratory.census().retained()) {
    const auto answer = laboratory.dns_lookup(*p, im6, dns::QueryMode::Ldns);
    const bgp::Route* r = im6.route_for(p->asn, answer.region);
    if (r != nullptr) load[value(r->origin_site)]++;
  }
  std::vector<std::pair<int, std::uint16_t>> busiest;
  for (const auto& [site, count] : load) busiest.emplace_back(count, site);
  std::sort(busiest.rbegin(), busiest.rend());
  const SiteId victim{busiest[0].second};
  // Flap an attachment of the runner-up so the flap steps have subjects too.
  const SiteId flapped{busiest.size() > 1 ? busiest[1].second : busiest[0].second};
  const int best_count = busiest[0].first;

  chaos::FaultPlan plan;
  plan.name = "bench-cascade";
  chaos::FaultEvent withdraw;
  withdraw.kind = chaos::FaultKind::SiteWithdraw;
  withdraw.site = victim;
  chaos::FaultEvent link_down;
  link_down.kind = chaos::FaultKind::SiteLinkDown;
  link_down.site = flapped;
  link_down.attachment = 0;
  chaos::FaultEvent link_up = link_down;
  link_up.kind = chaos::FaultKind::SiteLinkUp;
  chaos::FaultEvent rs_down;
  rs_down.kind = chaos::FaultKind::RouteServerDown;
  rs_down.ixp = 0;
  chaos::FaultEvent rs_up = rs_down;
  rs_up.kind = chaos::FaultKind::RouteServerUp;
  chaos::FaultEvent restore;
  restore.kind = chaos::FaultKind::SiteRestore;
  restore.site = victim;
  plan.events = {withdraw, link_down, link_up, rs_down, rs_up, restore};

  chaos::Engine engine(laboratory, im6);
  const auto report = engine.run(plan);
  if (!report) {
    std::fprintf(stderr, "chaos error: %s\n", report.error().c_str());
    return 1;
  }

  std::printf("victim site: %s (%d probes in catchment)\n\n",
              std::string(gaz.city(im6.deployment.site(victim).city).iata).c_str(), best_count);
  analysis::TextTable table({"#", "event", "affected", "survive", "churn", "p50 before",
                             "p50 after", "in-area", "x-region"});
  for (const chaos::StepReport& step : report->steps) {
    table.add_row({std::to_string(step.index), step.event,
                   analysis::fmt_count(step.affected_probes),
                   analysis::fmt_pct(step.survival_rate()), analysis::fmt_pct(step.churn()),
                   analysis::fmt_ms(step.before_p50_ms), analysis::fmt_ms(step.after_p50_ms),
                   analysis::fmt_count(step.failover_in_region),
                   analysis::fmt_count(step.cross_region)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected: 100%% survival on every routing step, latency inflation while\n"
              "the victim is down, and the final restore returning churn to the\n"
              "withdrawal's mirror image (catchments reconverge exactly)\n");
  return 0;
}
