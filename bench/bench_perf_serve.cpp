// Serving-plane performance benchmarks (google-benchmark): snapshot builds,
// the steady-state query path, and the query path under 2x overload with
// the admission shedder on vs off. The overload benchmarks export the
// virtual-latency quantiles and shed share as counters: with shedding the
// served p99 stays inside the deadline budget while the unshedded queue
// model blows straight through it. The JSON baseline lives in
// bench/BENCH_perf_serve.json and CI gates on these via
// tools/check_bench_regression.py --require.
#include <benchmark/benchmark.h>

#include "ranycast/cdn/catalog.hpp"
#include "ranycast/lab/lab.hpp"
#include "ranycast/serve/server.hpp"

using namespace ranycast;

namespace {

lab::LabConfig bench_config() {
  lab::LabConfig config;
  config.world.stub_count = 1200;
  config.census.total_probes = 5000;
  return config;
}

constexpr std::uint64_t kServiceNs = 500'000;  // 500us modeled service time
constexpr std::uint64_t kBudgetUs = 2'000;     // per-query deadline budget

/// A server with one published epoch and a refresher parked far in the
/// future, so the loop measures the query path alone.
serve::ServeConfig query_bench_config(bool shedding) {
  serve::ServeConfig cfg;
  cfg.refresh_interval_ns = 1'000'000'000'000;  // no rebuilds mid-benchmark
  cfg.build_time_ns = 1;
  cfg.ladder.fresh_max_age_ns = 4'000'000'000'000;
  cfg.ladder.stale_max_age_ns = 8'000'000'000'000;
  cfg.ladder.reject_after_age_ns = 16'000'000'000'000;
  cfg.admission.service_time_ns = kServiceNs;
  if (shedding) {
    cfg.admission.rate_qps = 1e9;  // shed on queue depth + deadline, not rate
    cfg.admission.burst = 1 << 20;
    cfg.admission.max_queue_depth = 4;
  } else {
    cfg.admission.rate_qps = 1e9;
    cfg.admission.burst = 1 << 20;
    cfg.admission.max_queue_depth = 1 << 30;  // nothing is ever turned away
  }
  return cfg;
}

void BM_ServeSnapshotBuild(benchmark::State& state) {
  auto laboratory = lab::Lab::create(bench_config());
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  for (auto _ : state) {
    const auto snap = serve::build_snapshot(laboratory, im6, 1, 0);
    benchmark::DoNotOptimize(snap.fingerprint);
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(laboratory.census().retained().size()));
}
BENCHMARK(BM_ServeSnapshotBuild)->Unit(benchmark::kMillisecond);

/// Drive the query path with virtual arrivals every `arrival_ns`. 2x
/// overload = arrivals twice as dense as the modeled service rate.
void query_bench(benchmark::State& state, bool shedding, std::uint64_t arrival_ns,
                 std::uint64_t budget_us = kBudgetUs) {
  auto laboratory = lab::Lab::create(bench_config());
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  serve::Server server(laboratory, im6, query_bench_config(shedding));
  if (!server.tick(1'000)) {
    state.SkipWithError("first epoch failed to publish");
    return;
  }

  std::uint64_t now = 1'000'000;
  std::uint64_t client = 0;
  for (auto _ : state) {
    const auto r = server.query(client, now, budget_us);
    benchmark::DoNotOptimize(r.status);
    now += arrival_ns;
    ++client;
  }

  const serve::ServeStats stats = server.stats();
  state.SetItemsProcessed(static_cast<std::int64_t>(stats.queries));
  state.counters["served_p50_us"] =
      static_cast<double>(server.latency().quantile_us(0.50));
  state.counters["served_p99_us"] =
      static_cast<double>(server.latency().quantile_us(0.99));
  state.counters["shed_share"] =
      stats.queries == 0
          ? 0.0
          : static_cast<double>(stats.shed_queue + stats.shed_deadline +
                                stats.shed_rate) /
                static_cast<double>(stats.queries);
}

void BM_ServeQuery(benchmark::State& state) {
  // Arrivals exactly at the service rate: the queue stays empty.
  query_bench(state, /*shedding=*/true, kServiceNs);
}
BENCHMARK(BM_ServeQuery)->Unit(benchmark::kMicrosecond);

void BM_ServeQueryOverloaded2x(benchmark::State& state) {
  // 2x overload, shedder on: the backlog is capped, served p99 holds the
  // deadline budget, the excess shows up in shed_share (~1/2).
  query_bench(state, /*shedding=*/true, kServiceNs / 2);
}
BENCHMARK(BM_ServeQueryOverloaded2x)->Unit(benchmark::kMicrosecond);

void BM_ServeQueryOverloaded2xNoShed(benchmark::State& state) {
  // The control: same 2x overload with shedding effectively off (unbounded
  // queue, unbounded budget). Every arrival is admitted, the modeled
  // backlog grows without bound, and the exported served p99 blows through
  // the 2ms budget — which is why admission control earns its keep.
  query_bench(state, /*shedding=*/false, kServiceNs / 2,
              /*budget_us=*/1'000'000'000);
}
BENCHMARK(BM_ServeQueryOverloaded2xNoShed)->Unit(benchmark::kMicrosecond);

}  // namespace
