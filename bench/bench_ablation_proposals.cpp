// Ablation — regional anycast vs the §2.2 alternative proposals, on the
// Tangled testbed model (the comparison the paper leaves as future work):
//   * global anycast (baseline),
//   * single-provider deployment (Ballani et al.),
//   * DailyCatch's better-of-two configurations (McQuistin et al.),
//   * AnyOpt's pairwise-predicted optimal site subset (Zhang et al.),
//   * latency-based regional anycast (ReOpt, the paper's §6).
#include "harness.hpp"

#include "ranycast/proposals/anyopt.hpp"
#include "ranycast/proposals/dailycatch.hpp"
#include "ranycast/proposals/single_provider.hpp"
#include "ranycast/tangled/study.hpp"
#include "ranycast/tangled/testbed.hpp"

using namespace ranycast;

namespace {

struct AreaStats {
  std::array<std::vector<double>, geo::kAreaCount> ms;
};

AreaStats measure_global_ip(lab::Lab& lab, Ipv4Addr ip) {
  AreaStats out;
  for (const atlas::Probe* p : lab.census().retained()) {
    if (const auto rtt = lab.ping(*p, ip)) {
      out.ms[static_cast<int>(p->area())].push_back(rtt->ms);
    }
  }
  return out;
}

void add_rows(analysis::TextTable& table, const char* label, const AreaStats& stats) {
  std::vector<std::string> p50{std::string(label) + " p50"};
  std::vector<std::string> p90{std::string(label) + " p90"};
  for (std::size_t a = 0; a < geo::kAreaCount; ++a) {
    p50.push_back(analysis::fmt_ms(analysis::percentile(stats.ms[a], 50)));
    p90.push_back(analysis::fmt_ms(analysis::percentile(stats.ms[a], 90)));
  }
  table.add_row(std::move(p50));
  table.add_row(std::move(p90));
}

}  // namespace

int main() {
  bench::ObsSession obs_session("ablation_proposals");
  bench::print_header("Ablation - regional anycast vs alternative proposals",
                      "sec 2.2 related proposals (the paper's declared future work)");
  auto laboratory = bench::small_lab();
  const auto spec = tangled::global_spec();

  analysis::TextTable table({"configuration", "EMEA", "NA", "LatAm", "APAC"});

  // Global anycast baseline.
  const auto& global = laboratory.add_deployment(spec);
  add_rows(table, "global",
           measure_global_ip(laboratory, global.deployment.regions()[0].service_ip));

  // Single provider (Ballani et al.).
  const Asn provider = proposals::best_single_provider(spec, laboratory.world());
  const auto& single = laboratory.add_deployment(proposals::single_provider_deployment(
      spec, provider, laboratory.world(), laboratory.registry()));
  add_rows(table, "single-provider",
           measure_global_ip(laboratory, single.deployment.regions()[0].service_ip));

  // DailyCatch.
  const auto dailycatch = proposals::run_dailycatch(laboratory, spec);
  std::printf("DailyCatch measured: transit-only %.1f ms, all-peer %.1f ms -> chose %s\n\n",
              dailycatch.transit_mean_ms, dailycatch.peer_mean_ms,
              dailycatch.chose_transit() ? "transit-only" : "all-peer");
  add_rows(table, "dailycatch",
           measure_global_ip(laboratory,
                             dailycatch.chosen->deployment.regions()[0].service_ip));

  // AnyOpt.
  const auto anyopt = proposals::anyopt_optimize(laboratory, spec);
  std::printf("AnyOpt chose %zu of 12 sites (predicted mean %.1f ms, measured %.1f ms)\n\n",
              anyopt.chosen_sites.size(), anyopt.predicted_mean_ms, anyopt.measured_mean_ms);
  add_rows(table, "anyopt",
           measure_global_ip(laboratory,
                             anyopt.deployment->deployment.regions()[0].service_ip));

  // Regional anycast with ReOpt + Route 53 (the paper's answer).
  const auto study = tangled::run_study(laboratory);
  AreaStats regional;
  for (const auto& r : study.results) {
    regional.ms[static_cast<int>(r.probe->area())].push_back(r.route53_ms);
  }
  add_rows(table, "regional (ReOpt)", regional);

  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: every proposal improves on plain global anycast in some\n"
              "areas; latency-based regional anycast gives the broadest tail reduction,\n"
              "which is the paper's argument for deploying it\n");
  return 0;
}
