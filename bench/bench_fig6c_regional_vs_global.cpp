// Figure 6c — latency-based regional anycast (ReOpt partition, Route 53
// mapping) vs global anycast on the Tangled testbed. The paper's headline:
// regional wins in every area; e.g. the NA 90th percentile falls from
// 232.6 ms to 88.6 ms, and the 90th percentile drops by 58.7%-78.6%
// across areas.
#include "harness.hpp"

#include "ranycast/tangled/study.hpp"

using namespace ranycast;

int main() {
  bench::ObsSession obs_session("fig6c_regional_vs_global");
  bench::print_header("Fig. 6c - ReOpt regional vs global anycast on Tangled",
                      "Figure 6c (+ abstract's 58.7%-78.6% p90 reduction)");
  auto laboratory = bench::default_lab();
  const auto study = tangled::run_study(laboratory);

  std::array<std::vector<double>, geo::kAreaCount> regional, global;
  for (const auto& r : study.results) {
    regional[static_cast<int>(r.probe->area())].push_back(r.route53_ms);
    global[static_cast<int>(r.probe->area())].push_back(r.global_ms);
  }
  for (std::size_t a = 0; a < geo::kAreaCount; ++a) {
    bench::print_cdf_series((std::string("ReOpt-") + bench::area_name(a)).c_str(), regional[a],
                            0, 250);
    bench::print_cdf_series((std::string("Global-") + bench::area_name(a)).c_str(), global[a],
                            0, 250);
  }

  analysis::TextTable table({"area", "n", "global p90", "regional p90", "reduction"});
  for (std::size_t a = 0; a < geo::kAreaCount; ++a) {
    const double g90 = analysis::percentile(global[a], 90);
    const double r90 = analysis::percentile(regional[a], 90);
    table.add_row({bench::area_name(a), analysis::fmt_count(regional[a].size()),
                   analysis::fmt_ms(g90), analysis::fmt_ms(r90),
                   analysis::fmt_pct(g90 > 0 ? (g90 - r90) / g90 : 0.0)});
  }
  std::printf("\n%s\n", table.render().c_str());
  std::printf("paper: regional wins in ALL areas; NA p90 232.6 -> 88.6 ms; p90\n"
              "reductions of 58.7%%-78.6%% across areas\n");
  return 0;
}
