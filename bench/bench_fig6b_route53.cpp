// Figure 6b — regional anycast on Tangled with direct probe-to-regional-IP
// assignment vs a Route 53-style country-level geolocation mapping.
#include "harness.hpp"

#include "ranycast/tangled/study.hpp"

using namespace ranycast;

int main() {
  bench::ObsSession obs_session("fig6b_route53");
  bench::print_header("Fig. 6b - direct assignment vs Route 53 country mapping", "Figure 6b");
  auto laboratory = bench::default_lab();
  const auto study = tangled::run_study(laboratory);

  std::array<std::vector<double>, geo::kAreaCount> direct, route53;
  for (const auto& r : study.results) {
    direct[static_cast<int>(r.probe->area())].push_back(r.direct_ms);
    route53[static_cast<int>(r.probe->area())].push_back(r.route53_ms);
  }
  for (std::size_t a = 0; a < geo::kAreaCount; ++a) {
    bench::print_cdf_series((std::string("ReOpt-") + bench::area_name(a)).c_str(), direct[a],
                            0, 200);
    bench::print_cdf_series((std::string("ReOpt-Route53-") + bench::area_name(a)).c_str(),
                            route53[a], 0, 200);
  }

  std::printf("\nper-area 90th percentiles (direct vs Route 53):\n");
  for (std::size_t a = 0; a < geo::kAreaCount; ++a) {
    std::printf("  %-6s %.1f ms vs %.1f ms\n", bench::area_name(a),
                analysis::percentile(direct[a], 90), analysis::percentile(route53[a], 90));
  }
  std::printf("paper shape: the two configurations nearly coincide; Route 53's\n"
              "country-level geolocation causes only slight degradation (APAC/SA)\n");
  return 0;
}
