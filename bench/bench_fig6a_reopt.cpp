// Figure 6a — ReOpt's latency-based site and client partition of the
// Tangled testbed: the k sweep (3..6), the chosen partition, and the
// structural differences from the geographic partitions Edgio/Imperva use
// (a separate African region; Central America grouped with North America).
#include "harness.hpp"

#include <cctype>
#include <map>

#include "ranycast/analysis/ascii_map.hpp"
#include "ranycast/tangled/study.hpp"
#include "ranycast/tangled/testbed.hpp"

using namespace ranycast;

int main() {
  bench::ObsSession obs_session("fig6a_reopt");
  bench::print_header("Fig. 6a - ReOpt latency-based partition of Tangled", "Figure 6a + sec 6.1");
  auto laboratory = bench::default_lab();
  const auto study = tangled::run_study(laboratory);
  const auto& gaz = geo::Gazetteer::world();

  std::printf("region-count sweep (mean client latency under country mapping):\n");
  for (std::size_t i = 0; i < study.reopt.sweep_mean_ms.size(); ++i) {
    std::printf("  k=%zu: %.1f ms%s\n", i + 3, study.reopt.sweep_mean_ms[i],
                static_cast<int>(i + 3) == study.reopt.k ? "   <- chosen" : "");
  }
  std::printf("paper: the 5-region partition minimizes mean latency\n\n");

  std::printf("site partition (k=%d):\n", study.reopt.k);
  std::map<int, std::vector<std::string>> regions;
  for (std::size_t s = 0; s < study.input.site_cities.size(); ++s) {
    regions[study.reopt.site_region[s]].push_back(
        std::string(gaz.city(study.input.site_cities[s]).iata));
  }
  for (const auto& [region, sites] : regions) {
    std::printf("  R%d:", region);
    for (const auto& s : sites) std::printf(" %s", s.c_str());
    std::printf("\n");
  }

  // Fig. 6a world map: lowercase probes by mapped region, uppercase sites.
  {
    analysis::AsciiMap map;
    const char symbols[] = "abcdefgh";
    const auto retained = laboratory.census().retained();
    for (std::size_t i = 0; i < retained.size() && i < study.input.probe_cities.size(); ++i) {
      const int region = study.reopt.mapped_region(i, study.input);
      map.plot(gaz.city(study.input.probe_cities[i]).location,
               symbols[static_cast<std::size_t>(region) % 8]);
    }
    for (std::size_t s = 0; s < study.input.site_cities.size(); ++s) {
      map.plot(gaz.city(study.input.site_cities[s]).location,
               static_cast<char>(std::toupper(
                   symbols[static_cast<std::size_t>(study.reopt.site_region[s]) % 8])),
               true);
    }
    for (int r = 0; r < study.reopt.k; ++r) {
      map.add_legend(symbols[static_cast<std::size_t>(r) % 8],
                     "region R" + std::to_string(r) + " (uppercase: sites)");
    }
    std::printf("\n%s\n", map.render().c_str());
  }

  // The two structural observations of §6.1.
  const auto jnb = gaz.find_by_iata("JNB");
  int jnb_region = -1;
  std::size_t jnb_sites = 0;
  for (std::size_t s = 0; s < study.input.site_cities.size(); ++s) {
    if (study.input.site_cities[s] == *jnb) jnb_region = study.reopt.site_region[s];
  }
  for (int r : study.reopt.site_region) {
    if (r == jnb_region) ++jnb_sites;
  }
  std::printf("\nAfrica (JNB) forms its own region: %s (paper: yes, unlike Edgio/Imperva)\n",
              jnb_sites == 1 ? "yes" : "no");

  std::map<std::string, int> country_sample;
  for (const auto& [iso2, region] : study.reopt.country_region) country_sample[iso2] = region;
  int na_region = -1;
  for (std::size_t s = 0; s < study.input.site_cities.size(); ++s) {
    if (gaz.city(study.input.site_cities[s]).iata == "IAD") {
      na_region = study.reopt.site_region[s];
    }
  }
  std::size_t central_to_na = 0, central_total = 0;
  for (const char* cc : {"MX", "GT", "CR", "PA", "DO"}) {
    const auto it = country_sample.find(cc);
    if (it == country_sample.end()) continue;
    ++central_total;
    if (it->second == na_region) ++central_to_na;
  }
  std::printf("Central-American countries mapped to the NA region: %zu of %zu mapped\n"
              "(paper: some Central America joins NA under ReOpt, unlike Edgio-4/Imperva-6)\n",
              central_to_na, central_total);
  return 0;
}
