// Incremental vs full re-solve on the paper-preset world (google-benchmark):
// the two canonical chaos steps — one site withdrawn/restored and one
// transit link flapped — timed as a full solve_anycast and as a
// DeltaSolver::resolve splice. tools/check_bench_regression.py gates
// Full/Delta >= 5x on the single-fault steps in CI.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "ranycast/bgp/delta_solver.hpp"
#include "ranycast/cdn/catalog.hpp"
#include "ranycast/lab/lab.hpp"

using namespace ranycast;

namespace {

constexpr std::uint64_t kSeed = 42;

/// Paper-preset world plus the imperva6 regional deployment; every
/// benchmark mutates the same prepared inputs so full and delta time the
/// identical step sequence.
struct Setup {
  lab::Lab laboratory;
  cdn::Deployment deployment;
  std::size_t region{0};
  std::vector<bgp::OriginAttachment> full;     ///< region's origin set
  std::vector<bgp::OriginAttachment> without;  ///< minus one site
  std::vector<bgp::OriginChange> withdraw, restore;
  Asn link_a{kInvalidAsn}, link_b{kInvalidAsn};

  Setup()
      : laboratory(lab::Lab::create({})),
        deployment(cdn::build_deployment(cdn::catalog::imperva6(), laboratory.world(),
                                         laboratory.registry())) {
    // The region with the most origins: the worst case for the full solve
    // and the most representative single-site locality for the delta.
    std::size_t best = 0;
    for (std::size_t r = 0; r < deployment.regions().size(); ++r) {
      const auto origins = deployment.origins_for_region(r);
      if (origins.size() > best) {
        best = origins.size();
        region = r;
      }
    }
    full = deployment.origins_for_region(region);
    const SiteId victim = full.front().site;
    for (const auto& o : full) {
      if (o.site != victim) without.push_back(o);
    }
    withdraw = bgp::diff_origin_changes(full, without);
    restore = bgp::diff_origin_changes(without, full);

    // A transit adjacency of the withdrawn site's attachment point.
    const auto& g = laboratory.world().graph;
    const auto holder = g.index_of(full.front().neighbor);
    for (const topo::Edge& e : g.nodes()[*holder].edges) {
      if (e.rel == topo::Rel::Provider || e.rel == topo::Rel::Customer) {
        link_a = full.front().neighbor;
        link_b = e.neighbor;
        break;
      }
    }
  }
};

Setup& setup() {
  static Setup s;
  return s;
}

void BM_FullSiteWithdrawStep(benchmark::State& state) {
  Setup& s = setup();
  bool down = false;
  for (auto _ : state) {
    down = !down;
    auto outcome = bgp::solve_anycast(s.laboratory.world().graph, s.deployment.asn(),
                                      down ? s.without : s.full, kSeed);
    benchmark::DoNotOptimize(outcome.reachable_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(s.laboratory.world().graph.nodes().size()));
}
BENCHMARK(BM_FullSiteWithdrawStep)->Unit(benchmark::kMillisecond);

void BM_DeltaSiteWithdrawStep(benchmark::State& state) {
  Setup& s = setup();
  bgp::DeltaSolver solver(s.laboratory.world().graph, s.deployment.asn(), 1);
  solver.prime(0, s.full, kSeed);
  bool down = false;
  for (auto _ : state) {
    down = !down;
    auto outcome = solver.resolve(0, down ? s.without : s.full,
                                  down ? s.withdraw : s.restore, {});
    benchmark::DoNotOptimize(outcome.reachable_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(s.laboratory.world().graph.nodes().size()));
}
BENCHMARK(BM_DeltaSiteWithdrawStep)->Unit(benchmark::kMillisecond);

void BM_FullLinkFlapStep(benchmark::State& state) {
  Setup& s = setup();
  auto& g = s.laboratory.graph_mut();
  bool up = true;
  for (auto _ : state) {
    up = !up;
    g.set_link_state(s.link_a, s.link_b, up);
    auto outcome = bgp::solve_anycast(g, s.deployment.asn(), s.full, kSeed);
    benchmark::DoNotOptimize(outcome.reachable_count());
  }
  g.set_link_state(s.link_a, s.link_b, true);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.nodes().size()));
}
BENCHMARK(BM_FullLinkFlapStep)->Unit(benchmark::kMillisecond);

void BM_DeltaLinkFlapStep(benchmark::State& state) {
  Setup& s = setup();
  auto& g = s.laboratory.graph_mut();
  bgp::DeltaSolver solver(g, s.deployment.asn(), 1);
  solver.prime(0, s.full, kSeed);
  bool up = true;
  for (auto _ : state) {
    up = !up;
    g.set_link_state(s.link_a, s.link_b, up);
    const bgp::LinkDelta delta{s.link_a, s.link_b, up};
    auto outcome = solver.resolve(0, s.full, {}, {&delta, 1});
    benchmark::DoNotOptimize(outcome.reachable_count());
  }
  g.set_link_state(s.link_a, s.link_b, true);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.nodes().size()));
}
BENCHMARK(BM_DeltaLinkFlapStep)->Unit(benchmark::kMillisecond);

/// All-regions step re-solve as chaos::Engine performs it, for scale
/// context next to the single-region numbers above (not ratio-gated: the
/// derived-deployment path shares the prime across regions).
void BM_DeltaAllRegionsSiteWithdraw(benchmark::State& state) {
  Setup& s = setup();
  const std::size_t regions = s.deployment.regions().size();
  bgp::DeltaSolver solver(s.laboratory.world().graph, s.deployment.asn(), regions);
  std::vector<std::vector<bgp::OriginAttachment>> full(regions), without(regions);
  std::vector<std::vector<bgp::OriginChange>> withdraw(regions), restore(regions);
  const SiteId victim = s.full.front().site;
  for (std::size_t r = 0; r < regions; ++r) {
    full[r] = s.deployment.origins_for_region(r);
    for (const auto& o : full[r]) {
      if (o.site != victim) without[r].push_back(o);
    }
    withdraw[r] = bgp::diff_origin_changes(full[r], without[r]);
    restore[r] = bgp::diff_origin_changes(without[r], full[r]);
    solver.prime(r, full[r], hash_combine(kSeed, r));
  }
  bool down = false;
  for (auto _ : state) {
    down = !down;
    std::size_t reachable = 0;
    for (std::size_t r = 0; r < regions; ++r) {
      auto outcome = solver.resolve(r, down ? without[r] : full[r],
                                    down ? withdraw[r] : restore[r], {});
      reachable += outcome.reachable_count();
    }
    benchmark::DoNotOptimize(reachable);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(regions));
}
BENCHMARK(BM_DeltaAllRegionsSiteWithdraw)->Unit(benchmark::kMillisecond);

}  // namespace
