// Table 2 — DNS mapping efficiency.
//
// For every probe and every regional anycast configuration, compare the RTT
// to the DNS-returned regional IP against the lowest RTT over all regional
// IPs. Three outcomes: ΔRTT < 5 ms (efficient), ✓Region with ΔRTT ≥ 5 ms
// (rigid-partition sub-optimality), ×Region with ΔRTT ≥ 5 ms (geolocation
// or resolver error). Reported per area for both resolver paths (local DNS
// and direct-to-authoritative).
#include "harness.hpp"

#include "ranycast/analysis/classify.hpp"

using namespace ranycast;

namespace {

struct OutcomeCounts {
  std::array<std::array<std::size_t, 3>, geo::kAreaCount> counts{};  // [area][outcome]
  std::array<std::size_t, geo::kAreaCount> totals{};

  double fraction(std::size_t area, analysis::MappingOutcome o) const {
    if (totals[area] == 0) return 0.0;
    return static_cast<double>(counts[area][static_cast<int>(o)]) /
           static_cast<double>(totals[area]);
  }
};

OutcomeCounts measure(lab::Lab& laboratory, const lab::DeploymentHandle& handle,
                      dns::QueryMode mode) {
  OutcomeCounts out;
  const auto retained = laboratory.census().retained();
  const auto groups = atlas::group_probes(retained);
  for (const auto& group : groups) {
    // Per-probe classification aggregated at probe-group granularity via the
    // group's median ΔRTT, as the paper tabulates probe percentages over
    // groups.
    std::array<std::size_t, 3> votes{0, 0, 0};
    for (const atlas::Probe* p : group.members) {
      const auto answer = laboratory.dns_lookup(*p, handle, mode);
      const auto returned = laboratory.ping(*p, answer.address);
      if (!returned) continue;
      double best = returned->ms;
      for (const auto& region : handle.deployment.regions()) {
        const auto rtt = laboratory.ping(*p, region.service_ip);
        if (rtt) best = std::min(best, rtt->ms);
      }
      const bool intended = answer.region == handle.deployment.intended_region(p->city);
      votes[static_cast<int>(analysis::classify_mapping(returned->ms, best, intended))]++;
    }
    const std::size_t total = votes[0] + votes[1] + votes[2];
    if (total == 0) continue;
    // Majority outcome represents the group.
    std::size_t best_outcome = 0;
    for (std::size_t o = 1; o < 3; ++o) {
      if (votes[o] > votes[best_outcome]) best_outcome = o;
    }
    const auto area = static_cast<int>(group.area);
    out.counts[area][best_outcome]++;
    out.totals[area]++;
  }
  return out;
}

}  // namespace

int main() {
  bench::ObsSession obs_session("table2_dns_mapping");
  bench::print_header("Table 2 - DNS mapping efficiency", "Table 2");
  auto laboratory = bench::default_lab();

  struct Network {
    const char* label;
    const lab::DeploymentHandle* handle;
  };
  const Network networks[] = {
      {"Edgio-3", &laboratory.add_deployment(cdn::catalog::edgio3())},
      {"Edgio-4", &laboratory.add_deployment(cdn::catalog::edgio4())},
      {"Imperva-6", &laboratory.add_deployment(cdn::catalog::imperva6())},
  };

  using analysis::MappingOutcome;
  const std::pair<MappingOutcome, const char*> rows[] = {
      {MappingOutcome::Efficient, "dRTT<5ms"},
      {MappingOutcome::SubOptimalRegion, "vRegion,dRTT>=5ms"},
      {MappingOutcome::IncorrectRegion, "xRegion,dRTT>=5ms"},
  };

  analysis::TextTable table({"condition", "CDN", "mode", "APAC", "EMEA", "NA", "LatAm"});
  for (const auto& [outcome, label] : rows) {
    for (const Network& net : networks) {
      for (const auto mode : {dns::QueryMode::Ldns, dns::QueryMode::Adns}) {
        const auto counts = measure(laboratory, *net.handle, mode);
        table.add_row({label, net.label, mode == dns::QueryMode::Ldns ? "LDNS" : "ADNS",
                       analysis::fmt_pct(counts.fraction(3, outcome)),
                       analysis::fmt_pct(counts.fraction(0, outcome)),
                       analysis::fmt_pct(counts.fraction(1, outcome)),
                       analysis::fmt_pct(counts.fraction(2, outcome))});
      }
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper shape: Edgio >=90%% efficient everywhere; Imperva-6 less efficient\n"
              "(78-89%%) with vRegion dominating its inefficiencies (six rigid regions:\n"
              "US/Canada border and Russia-without-sites); ADNS slightly better than LDNS.\n");
  return 0;
}
