// Figure 5 — CDFs of the per-group RTT difference and catchment-distance
// difference between regional (Imperva-6) and global (Imperva-NS) anycast.
// Negative values mean regional anycast is faster / reaches a closer site.
#include "harness.hpp"

#include "ranycast/lab/comparison.hpp"

using namespace ranycast;

int main() {
  bench::ObsSession obs_session("fig5_deltas");
  bench::print_header("Fig. 5 - regional-minus-global RTT and distance deltas", "Figure 5");
  auto laboratory = bench::default_lab();
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  const auto& imns = laboratory.add_deployment(cdn::catalog::imperva_ns());
  const auto result = lab::compare_regional_global(laboratory, im6, imns);

  std::array<std::vector<double>, geo::kAreaCount> d_ms, d_km;
  for (const auto& g : result.groups) {
    d_ms[static_cast<int>(g.area)].push_back(g.regional_ms - g.global_ms);
    d_km[static_cast<int>(g.area)].push_back(g.regional_km - g.global_km);
  }
  for (std::size_t a = 0; a < geo::kAreaCount; ++a) {
    bench::print_cdf_series((std::string(bench::area_name(a)) + " dRTT(ms)").c_str(), d_ms[a],
                            -300, 100);
  }
  std::printf("\n");
  for (std::size_t a = 0; a < geo::kAreaCount; ++a) {
    bench::print_cdf_series((std::string(bench::area_name(a)) + " ddist(km)").c_str(), d_km[a],
                            -15000, 5000);
  }

  std::printf("\nfraction of groups improving (delta < 0):\n");
  for (std::size_t a = 0; a < geo::kAreaCount; ++a) {
    const analysis::Cdf ms{std::vector<double>(d_ms[a])};
    const analysis::Cdf km{std::vector<double>(d_km[a])};
    std::printf("  %-6s RTT %s  distance %s\n", bench::area_name(a),
                analysis::fmt_pct(ms.fraction_at_or_below(0.0)).c_str(),
                analysis::fmt_pct(km.fraction_at_or_below(0.0)).c_str());
  }
  std::printf("paper shape: the distance-reduction fraction tracks the latency-\n"
              "reduction fraction closely in every area\n");
  return 0;
}
