// Traffic-plane performance benchmarks (google-benchmark): per-group flow
// generation over the exec pool, the capacity/overload solve under both
// policies, and a full chaos step with traffic recording enabled. The JSON
// baseline lives in bench/BENCH_perf_traffic.json and CI gates on these
// counters via tools/check_bench_regression.py --require.
#include <benchmark/benchmark.h>

#include <vector>

#include "ranycast/atlas/grouping.hpp"
#include "ranycast/cdn/catalog.hpp"
#include "ranycast/chaos/engine.hpp"
#include "ranycast/chaos/plan.hpp"
#include "ranycast/lab/lab.hpp"
#include "ranycast/traffic/flows.hpp"
#include "ranycast/traffic/solver.hpp"

using namespace ranycast;

namespace {

lab::LabConfig bench_config() {
  lab::LabConfig config;
  config.world.stub_count = 1200;
  config.census.total_probes = 5000;
  return config;
}

void BM_TrafficFlowGen(benchmark::State& state) {
  auto laboratory = lab::Lab::create(bench_config());
  const auto retained = laboratory.census().retained();
  const auto groups = atlas::group_probes(retained);
  const traffic::TrafficConfig cfg;
  for (auto _ : state) {
    const auto set = traffic::generate_flows(groups, retained, cfg);
    benchmark::DoNotOptimize(set.total_bytes);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(retained.size()));
}
BENCHMARK(BM_TrafficFlowGen)->Unit(benchmark::kMillisecond);

// The solve on a live catchment; capacity is squeezed so the policy layer
// actually runs (Shed walks relaxation waves, Spill drops).
void solve_bench(benchmark::State& state, traffic::OverloadPolicy policy) {
  auto laboratory = lab::Lab::create(bench_config());
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  const auto retained = laboratory.census().retained();
  const auto groups = atlas::group_probes(retained);
  traffic::TrafficConfig cfg;
  cfg.policy = policy;
  cfg.demand_scale = 1.5;
  cfg.default_site_capacity_mbps = 450.0;
  const auto flows = traffic::generate_flows(groups, retained, cfg);

  const std::size_t site_count = im6.deployment.sites().size();
  const std::size_t region_count = im6.deployment.regions().size();
  std::vector<traffic::ProbeAssign> assign(retained.size());
  for (std::size_t i = 0; i < retained.size(); ++i) {
    const atlas::Probe& p = *retained[i];
    const auto answer = laboratory.dns_lookup(p, im6, dns::QueryMode::Ldns);
    const bgp::Route* route = im6.route_for(p.asn, answer.region);
    if (route == nullptr) continue;
    assign[i].site = route->origin_site;
    if (policy != traffic::OverloadPolicy::Shed) continue;
    for (std::size_t r = 0; r < region_count; ++r) {
      if (r == answer.region) continue;
      const bgp::Route* alt = im6.route_for(p.asn, r);
      if (alt == nullptr || alt->origin_site == assign[i].site) continue;
      assign[i].alternates.push_back(alt->origin_site);
    }
  }

  for (auto _ : state) {
    const auto out = traffic::solve(flows, assign, site_count, cfg);
    benchmark::DoNotOptimize(out.served_mbps);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(flows.flows.size()));
}

void BM_TrafficSolveSpill(benchmark::State& state) {
  solve_bench(state, traffic::OverloadPolicy::Spill);
}
BENCHMARK(BM_TrafficSolveSpill)->Unit(benchmark::kMillisecond);

void BM_TrafficSolveShed(benchmark::State& state) {
  solve_bench(state, traffic::OverloadPolicy::Shed);
}
BENCHMARK(BM_TrafficSolveShed)->Unit(benchmark::kMillisecond);

// End to end: one withdraw/restore chaos pair with traffic recording on —
// what a chaos_overload.json step actually costs.
void BM_TrafficChaosStep(benchmark::State& state) {
  auto laboratory = lab::Lab::create(bench_config());
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  chaos::Engine engine(laboratory, im6);
  traffic::TrafficConfig cfg;
  cfg.policy = traffic::OverloadPolicy::Shed;
  cfg.default_site_capacity_mbps = 450.0;
  engine.enable_traffic(cfg);

  chaos::FaultPlan plan;
  plan.name = "bench";
  chaos::FaultEvent e;
  e.kind = chaos::FaultKind::SiteWithdraw;
  e.site = SiteId{16};
  plan.events.push_back(e);
  e = chaos::FaultEvent{};
  e.kind = chaos::FaultKind::SiteRestore;
  e.site = SiteId{16};
  plan.events.push_back(e);

  for (auto _ : state) {
    auto report = engine.run(plan);
    benchmark::DoNotOptimize(report.has_value());
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_TrafficChaosStep)->Unit(benchmark::kMillisecond);

}  // namespace
