// Table 6 (Appendix C) — generalization check: latency of the representative
// hostname vs the aggregate of 12 other hostnames of the same configuration.
// Hostnames of one set share the deployment; only measurement noise differs.
#include "harness.hpp"

#include <functional>

using namespace ranycast;

namespace {

std::array<std::vector<double>, geo::kAreaCount> measure_hostname(
    lab::Lab& laboratory, const lab::DeploymentHandle& handle, std::uint64_t salt) {
  return bench::per_area_group_medians(laboratory, [&](const atlas::Probe* p) {
    const auto answer = laboratory.dns_lookup(*p, handle, dns::QueryMode::Ldns);
    const auto rtt = laboratory.ping(*p, answer.address, salt);
    return rtt ? std::optional<double>(rtt->ms) : std::nullopt;
  });
}

}  // namespace

int main() {
  bench::ObsSession obs_session("table6_hostnames");
  bench::print_header("Table 6 - representative vs other hostnames", "Table 6 (Appendix C)");
  auto laboratory = bench::default_lab();

  struct Config {
    cdn::catalog::HostnameSet set;
    const lab::DeploymentHandle* handle;
  };
  const Config configs[] = {
      {cdn::catalog::imperva6_hostnames(), &laboratory.add_deployment(cdn::catalog::imperva6())},
      {cdn::catalog::edgio3_hostnames(), &laboratory.add_deployment(cdn::catalog::edgio3())},
      {cdn::catalog::edgio4_hostnames(), &laboratory.add_deployment(cdn::catalog::edgio4())},
  };

  analysis::TextTable table({"percentile", "config", "APAC", "EMEA", "NA", "LatAm"});
  for (const double p : {50.0, 90.0, 95.0}) {
    for (const Config& cfg : configs) {
      // Representative hostname (salt from its name) vs the aggregate of the
      // other twelve.
      const auto rep = measure_hostname(
          laboratory, *cfg.handle, std::hash<std::string>{}(cfg.set.representative()));
      std::array<std::vector<double>, geo::kAreaCount> others;
      for (std::size_t h = 1; h < cfg.set.hostnames.size(); ++h) {
        const auto one = measure_hostname(laboratory, *cfg.handle,
                                          std::hash<std::string>{}(cfg.set.hostnames[h]));
        for (std::size_t a = 0; a < geo::kAreaCount; ++a) {
          others[a].insert(others[a].end(), one[a].begin(), one[a].end());
        }
      }
      std::vector<std::string> row{std::to_string(static_cast<int>(p)) + "-th",
                                   cfg.set.set_name};
      for (const auto area :
           {geo::Area::APAC, geo::Area::EMEA, geo::Area::NA, geo::Area::LatAm}) {
        const auto a = static_cast<int>(area);
        row.push_back(analysis::fmt_ms(analysis::percentile(rep[a], p), 0) + " (" +
                      analysis::fmt_ms(analysis::percentile(others[a], p), 0) + ")");
      }
      table.add_row(std::move(row));
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("cells: representative hostname (aggregate of 12 other hostnames), ms\n");
  std::printf("paper shape: the representative hostname's latency distribution matches\n"
              "the other hostnames' - the studied configurations generalize\n");
  return 0;
}
