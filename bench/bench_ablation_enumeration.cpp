// Ablation — anycast site-enumeration methods (paper §7):
//   * the paper's traceroute + rDNS + RTT-range + country-IPGeo pipeline,
//   * iGreedy's latency-disc enumeration (which the paper found weaker),
//   * Verfploeter-style full catchment census (the upper bound: it sees
//     every network, not just probe-hosting ones).
#include "harness.hpp"

#include <set>

#include "ranycast/geoloc/igreedy.hpp"
#include "ranycast/geoloc/pipeline.hpp"
#include "ranycast/verfploeter/census.hpp"

using namespace ranycast;

int main() {
  bench::ObsSession obs_session("ablation_enumeration");
  bench::print_header("Ablation - site enumeration methods",
                      "sec 7 (iGreedy comparison) + Verfploeter-style census");
  auto laboratory = bench::default_lab();
  const auto& ns = laboratory.add_deployment(cdn::catalog::imperva_ns());
  const Ipv4Addr ip = ns.deployment.regions()[0].service_ip;
  const std::size_t deployed = ns.deployment.sites().size();

  // --- the paper's pipeline ---
  std::vector<geoloc::TraceObservation> observations;
  std::vector<geoloc::IgreedyMeasurement> measurements;
  for (const atlas::Probe* p : laboratory.census().retained()) {
    if (auto trace = laboratory.traceroute(*p, ip)) {
      measurements.push_back({p->reported_city, trace->rtt.ms});
      observations.push_back(geoloc::TraceObservation{p, std::move(*trace), 0});
    }
  }
  std::vector<CityId> published;
  for (const cdn::Site& s : ns.deployment.sites()) published.push_back(s.city);
  const geoloc::RdnsOracle oracle{{}, &laboratory.world().graph, &laboratory.registry(),
                                  {{value(ns.deployment.asn()), "incapdns.net"}}};
  const auto pipeline = geoloc::enumerate_sites(
      observations, published, oracle,
      {&laboratory.db(0), &laboratory.db(1), &laboratory.db(2)}, {});

  // --- iGreedy ---
  const auto ig = geoloc::igreedy(measurements);

  // --- Verfploeter-style census (ground-truth catchments) ---
  const auto census = verfploeter::full_census(laboratory, ns, 0);

  analysis::TextTable table({"method", "sites found", "of deployed", "notes"});
  table.add_row({"traceroute pipeline", analysis::fmt_count(pipeline.site_regions.size()),
                 analysis::fmt_pct(static_cast<double>(pipeline.site_regions.size()) /
                                   static_cast<double>(deployed)),
                 "rDNS + RTT-range + country IPGeo"});
  table.add_row({"iGreedy", analysis::fmt_count(ig.instance_count()),
                 analysis::fmt_pct(static_cast<double>(ig.instance_count()) /
                                   static_cast<double>(deployed)),
                 "latency-disc lower bound"});
  table.add_row({"Verfploeter census", analysis::fmt_count(census.by_site.size()),
                 analysis::fmt_pct(static_cast<double>(census.by_site.size()) /
                                   static_cast<double>(deployed)),
                 "every AS, requires operating the anycast"});
  std::printf("%s\n", table.render().c_str());
  std::printf("paper shape (sec 7): iGreedy mapped fewer sites than the traceroute\n"
              "pipeline; a full census sees the most because vantage points miss sites\n"
              "that only catch probe-free networks\n\n");

  // Sampling-error curve: probe-platform estimate vs census.
  std::printf("catchment-estimate error (total variation vs census) by probe count:\n");
  for (const std::size_t n : {50u, 100u, 250u, 500u, 1000u, 2500u, 5000u, 10000u}) {
    const auto estimate = verfploeter::probe_estimate(laboratory, ns, 0, n, 11);
    std::printf("  %5zu probes: %.3f (distinct ASes sampled: %zu)\n", n,
                verfploeter::total_variation(census, estimate), estimate.total);
  }
  std::printf("\nexpected: monotone decrease with a residual floor - the probe census's\n"
              "geographic skew (sec 3.1) never fully vanishes, which is why the paper\n"
              "aggregates by <city,AS> group\n");
  return 0;
}
