// Figure 4c — Imperva-6 (regional) vs Imperva-NS (global anycast) latency
// and distance CDFs after excluding non-overlapping sites and peering ASes
// (the paper's §5.3 comparability methodology).
#include "harness.hpp"

#include "ranycast/lab/comparison.hpp"

using namespace ranycast;

int main() {
  bench::ObsSession obs_session("fig4c_regional_vs_global");
  bench::print_header("Fig. 4c - Imperva-6 vs Imperva-NS (same-footprint comparison)",
                      "Figure 4c + the sec 5.3 filtering pipeline");
  auto laboratory = bench::default_lab();
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  const auto& imns = laboratory.add_deployment(cdn::catalog::imperva_ns());

  const auto result = lab::compare_regional_global(laboratory, im6, imns);
  std::printf("probe groups with measurements: %zu; retained after overlap filters: %zu (%s)\n",
              result.groups_total, result.groups_retained,
              analysis::fmt_pct(result.retention_rate()).c_str());
  std::printf("paper: 3,627 of 4,417 groups retained (82.1%%)\n\n");

  std::array<std::vector<double>, geo::kAreaCount> reg_ms, glob_ms, reg_km, glob_km;
  for (const auto& g : result.groups) {
    const auto area = static_cast<int>(g.area);
    reg_ms[area].push_back(g.regional_ms);
    glob_ms[area].push_back(g.global_ms);
    reg_km[area].push_back(g.regional_km);
    glob_km[area].push_back(g.global_km);
  }
  for (std::size_t a = 0; a < geo::kAreaCount; ++a) {
    const std::string base = std::string("IM6-") + bench::area_name(a);
    bench::print_cdf_series((base + " RTT(ms)").c_str(), reg_ms[a], 0, 200);
    const std::string nsbase = std::string("IM-NS-") + bench::area_name(a);
    bench::print_cdf_series((nsbase + " RTT(ms)").c_str(), glob_ms[a], 0, 200);
  }
  std::printf("\n");
  for (std::size_t a = 0; a < geo::kAreaCount; ++a) {
    const std::string base = std::string("IM6-") + bench::area_name(a);
    bench::print_cdf_series((base + " dist(km)").c_str(), reg_km[a], 0, 12000);
    const std::string nsbase = std::string("IM-NS-") + bench::area_name(a);
    bench::print_cdf_series((nsbase + " dist(km)").c_str(), glob_km[a], 0, 12000);
  }

  const auto na = static_cast<int>(geo::Area::NA);
  std::printf("\nNA 90th pct: regional %.1f ms vs global %.1f ms (paper: 38 vs 110)\n",
              analysis::percentile(reg_ms[na], 90), analysis::percentile(glob_ms[na], 90));
  std::printf("shape check: regional anycast improves EMEA and NA tails\n");
  return 0;
}
