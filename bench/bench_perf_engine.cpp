// Engine micro/macro benchmarks (google-benchmark): world generation, BGP
// anycast solving, end-to-end measurement throughput, K-Means, and the
// geolocation pipeline's building blocks.
#include <benchmark/benchmark.h>

#include "ranycast/atlas/grouping.hpp"
#include "ranycast/cdn/catalog.hpp"
#include "ranycast/bgpdata/rib_snapshot.hpp"
#include "ranycast/geoloc/igreedy.hpp"
#include "ranycast/geoloc/rdns.hpp"
#include "ranycast/io/config.hpp"
#include "ranycast/lab/lab.hpp"
#include "ranycast/partition/kmeans.hpp"

using namespace ranycast;

namespace {

void BM_WorldGeneration(benchmark::State& state) {
  topo::GeneratorParams params;
  params.stub_count = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto world = topo::generate_world(params);
    benchmark::DoNotOptimize(world.graph.edge_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WorldGeneration)->Arg(500)->Arg(2600)->Unit(benchmark::kMillisecond);

void BM_AnycastSolve(benchmark::State& state) {
  auto laboratory = lab::Lab::create({});
  const auto spec = cdn::catalog::imperva6();
  const auto dep = cdn::build_deployment(spec, laboratory.world(), laboratory.registry());
  const auto origins = dep.origins_for_region(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto outcome = laboratory.solve_origins(dep.asn(), origins);
    benchmark::DoNotOptimize(outcome.reachable_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(laboratory.world().graph.nodes().size()));
}
BENCHMARK(BM_AnycastSolve)->Arg(1)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_PingAllProbes(benchmark::State& state) {
  auto laboratory = lab::Lab::create({});
  const auto& handle = laboratory.add_deployment(cdn::catalog::imperva6());
  const auto retained = laboratory.census().retained();
  const Ipv4Addr ip = handle.deployment.regions()[0].service_ip;
  for (auto _ : state) {
    double total = 0.0;
    const auto rtts = laboratory.ping_all(retained, ip);
    for (const auto& rtt : rtts) {
      if (rtt) total += rtt->ms;
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(retained.size()));
}
BENCHMARK(BM_PingAllProbes)->Unit(benchmark::kMillisecond);

void BM_TracerouteAllProbes(benchmark::State& state) {
  auto laboratory = lab::Lab::create({});
  const auto& handle = laboratory.add_deployment(cdn::catalog::imperva6());
  const auto retained = laboratory.census().retained();
  const Ipv4Addr ip = handle.deployment.regions()[0].service_ip;
  for (auto _ : state) {
    std::size_t hops = 0;
    const auto traces = laboratory.traceroute_all(retained, ip);
    for (const auto& t : traces) {
      if (t) hops += t->hops.size();
    }
    benchmark::DoNotOptimize(hops);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(retained.size()));
}
BENCHMARK(BM_TracerouteAllProbes)->Unit(benchmark::kMillisecond);

void BM_ProbeGrouping(benchmark::State& state) {
  auto laboratory = lab::Lab::create({});
  const auto retained = laboratory.census().retained();
  for (auto _ : state) {
    auto groups = atlas::group_probes(retained);
    benchmark::DoNotOptimize(groups.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(retained.size()));
}
BENCHMARK(BM_ProbeGrouping)->Unit(benchmark::kMillisecond);

void BM_KMeans(benchmark::State& state) {
  const auto& gaz = geo::Gazetteer::world();
  std::vector<geo::GeoPoint> points;
  for (const auto& city : gaz.cities()) points.push_back(city.location);
  for (auto _ : state) {
    auto result = partition::kmeans(points, static_cast<int>(state.range(0)), {});
    benchmark::DoNotOptimize(result.inertia_km2);
  }
}
BENCHMARK(BM_KMeans)->Arg(3)->Arg(6)->Unit(benchmark::kMicrosecond);

void BM_PrefixTrieLookup(benchmark::State& state) {
  // pyasn-style LPM over a full-world RIB.
  auto laboratory = lab::Lab::create({});
  const auto& handle = laboratory.add_deployment(cdn::catalog::imperva6());
  const cdn::Deployment* deps[] = {&handle.deployment};
  const auto snapshot =
      bgpdata::RibSnapshot::build(laboratory.world(), laboratory.registry(), deps);
  std::vector<Ipv4Addr> queries;
  for (const atlas::Probe& p : laboratory.census().probes()) queries.push_back(p.ip);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(snapshot.ip_to_asn(queries[i++ % queries.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrefixTrieLookup);

void BM_JsonRoundTrip(benchmark::State& state) {
  const auto doc = io::lab_config_to_json(lab::LabConfig{}).dump(2);
  for (auto _ : state) {
    auto parsed = io::parse_json_or_throw(doc);
    benchmark::DoNotOptimize(parsed.dump().size());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(doc.size()));
}
BENCHMARK(BM_JsonRoundTrip);

void BM_Igreedy(benchmark::State& state) {
  auto laboratory = lab::Lab::create({});
  const auto& ns = laboratory.add_deployment(cdn::catalog::imperva_ns());
  std::vector<geoloc::IgreedyMeasurement> measurements;
  for (const atlas::Probe* p : laboratory.census().retained()) {
    const auto rtt = laboratory.ping(*p, ns.deployment.regions()[0].service_ip);
    if (rtt) measurements.push_back({p->reported_city, rtt->ms});
  }
  for (auto _ : state) {
    auto result = geoloc::igreedy(measurements);
    benchmark::DoNotOptimize(result.instance_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(measurements.size()));
}
BENCHMARK(BM_Igreedy)->Unit(benchmark::kMillisecond);

void BM_RdnsParse(benchmark::State& state) {
  const std::string name = "ae-65.core1.ams.as3356.example.net";
  for (auto _ : state) {
    auto hint = geoloc::parse_geo_hint(name);
    benchmark::DoNotOptimize(hint.kind);
  }
}
BENCHMARK(BM_RdnsParse);

}  // namespace
