// Figure 7 — peering-type preference case study.
//
// A Belarusian probe's AS publicly peers with a Zayo-like carrier at DE-CIX
// and reaches Imperva's FRA site only via the route server. Routers prefer
// public peers over route-server peers, and Zayo prefers its customer
// SingTel: under global anycast the probe lands in Singapore (paper:
// 350 ms); under regional anycast it reaches Frankfurt (paper: 33 ms).
#include "harness.hpp"

#include "ranycast/bgp/path_metrics.hpp"
#include "ranycast/bgp/solver.hpp"

using namespace ranycast;

namespace {
CityId city(const char* iata) { return *geo::Gazetteer::world().find_by_iata(iata); }
constexpr Asn kCdn = make_asn(65000);
}  // namespace

int main() {
  bench::ObsSession obs_session("fig7_route_server");
  bench::obs_pipeline_exercise();
  bench::print_header("Fig. 7 case study: public-peer preference vs route-server peering",
                      "Figure 7 (Belarusian probe in AS 6697, 350 ms -> 33 ms)");

  topo::Graph g;
  const CityId fra = city("FRA");
  const CityId ams = city("AMS");
  const CityId sin = city("SIN");
  const CityId msq = city("MSQ");
  const Asn zayo = g.add_as(topo::AsKind::Tier1, fra, {fra, sin, msq});
  const Asn twelve99 = g.add_as(topo::AsKind::Tier1, ams, {ams, fra});
  const Asn singtel = g.add_as(topo::AsKind::Transit, sin, {sin});
  const Asn probe_as = g.add_as(topo::AsKind::Stub, msq, {msq, fra});
  g.add_transit(singtel, zayo, {sin});
  g.add_peering(zayo, twelve99, false, {fra});
  g.add_peering(probe_as, zayo, false, {fra});  // public peering at DE-CIX

  const bgp::OriginAttachment fra_rs{SiteId{0}, fra, probe_as, topo::Rel::PeerRouteServer, true};
  const bgp::OriginAttachment ams_site{SiteId{1}, ams, twelve99, topo::Rel::Customer, true};
  const bgp::OriginAttachment sin_site{SiteId{2}, sin, singtel, topo::Rel::Customer, true};

  const bgp::LatencyModel latency;
  auto describe = [&](const char* config, std::span<const bgp::OriginAttachment> origins) {
    const auto outcome = bgp::solve_anycast(g, kCdn, origins, 1);
    const bgp::Route* r = outcome.route_for(probe_as);
    const char* site = r->origin_site == SiteId{0}   ? "Frankfurt"
                       : r->origin_site == SiteId{1} ? "Amsterdam"
                                                     : "Singapore";
    const Rtt rtt = latency.path_rtt(*r, msq, probe_as);
    std::printf("%-26s catchment=%-10s class=%-18s rtt=%6.1f ms\n", config, site,
                std::string(bgp::to_string(r->cls)).c_str(), rtt.ms);
  };

  const bgp::OriginAttachment global_origins[] = {fra_rs, ams_site, sin_site};
  const bgp::OriginAttachment regional_origins[] = {fra_rs, ams_site};
  describe("global anycast", global_origins);
  describe("regional anycast (EMEA)", regional_origins);

  std::printf("\npaper: global anycast 350 ms (Singapore), regional 33 ms (Frankfurt)\n");
  std::printf("shape check: public-peer route drags traffic to a remote site; the\n"
              "regional prefix, absent from the Singapore site, restores locality\n");
  return 0;
}
