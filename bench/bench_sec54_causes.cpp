// §5.4 — root causes of regional anycast's latency reductions.
//
// For probe groups with >5 ms latency reduction, compare the BGP route
// class selected under global vs regional anycast:
//  * AS-relationship override: the global route won on customer>peer>provider
//    local preference (paper: 44.1% of reductions),
//  * peering-type override: a public-peer route beat a route-server route
//    (paper: 1.6% — classifiable only where the IXP publishes its feed),
//  * unknown: everything the vantage cannot attribute.
#include "harness.hpp"

#include "ranycast/lab/comparison.hpp"

using namespace ranycast;

int main() {
  bench::ObsSession obs_session("sec54_causes");
  bench::print_header("sec 5.4 - causes of latency reduction", "Section 5.4 percentages");
  auto laboratory = bench::default_lab();
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  const auto& imns = laboratory.add_deployment(cdn::catalog::imperva_ns());
  const auto result = lab::compare_regional_global(laboratory, im6, imns);
  const auto causes = lab::classify_reduction_causes(result);

  std::printf("groups with >5 ms latency reduction in regional anycast: %zu\n\n",
              causes.reduced_groups);
  analysis::TextTable table({"cause", "groups", "share", "paper"});
  auto pct = [&](std::size_t n) {
    return causes.reduced_groups == 0
               ? std::string("-")
               : analysis::fmt_pct(static_cast<double>(n) /
                                   static_cast<double>(causes.reduced_groups));
  };
  table.add_row({"overriding AS-relationship preference",
                 analysis::fmt_count(causes.as_relationship), pct(causes.as_relationship),
                 "44.1%"});
  table.add_row({"overriding peering-type preference", analysis::fmt_count(causes.peering_type),
                 pct(causes.peering_type), "1.6%"});
  table.add_row({"unclassified", analysis::fmt_count(causes.unknown), pct(causes.unknown),
                 "remainder"});
  std::printf("%s\n", table.render().c_str());
  std::printf("shape check: relationship overrides dominate; peering-type overrides are\n"
              "rare because most IXPs do not publish route-server feeds\n");
  return 0;
}
