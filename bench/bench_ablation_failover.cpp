// Ablation — site failure and catchment stability.
//
// Two operational properties behind the paper's conclusions: (1) §4.5's
// global reachability makes regional anycast robust (a failed site's
// clients spill to the remaining regional sites, no DNS change needed);
// (2) §4.4's two-month observation that site partitions are stable — in
// the model, catchments must be pinned by policy and geography, not by the
// arbitrary tie-break standing in for BGP's route-selection uncertainty.
#include "harness.hpp"

#include <map>

#include "ranycast/resilience/failover.hpp"
#include "ranycast/resilience/stability.hpp"

using namespace ranycast;

int main() {
  bench::ObsSession obs_session("ablation_failover");
  bench::print_header("Ablation - site failure and catchment stability",
                      "sec 4.4 (partition stability) and sec 4.5 (robustness)");
  auto laboratory = bench::small_lab();
  const auto& gaz = geo::Gazetteer::world();
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());

  // ---- fail each of a handful of busy sites ----
  std::map<std::uint16_t, int> load;
  for (const atlas::Probe* p : laboratory.census().retained()) {
    const auto answer = laboratory.dns_lookup(*p, im6, dns::QueryMode::Ldns);
    const bgp::Route* r = im6.route_for(p->asn, answer.region);
    if (r != nullptr) load[value(r->origin_site)]++;
  }
  std::vector<std::pair<int, std::uint16_t>> busiest;
  for (const auto& [site, count] : load) busiest.emplace_back(count, site);
  std::sort(busiest.rbegin(), busiest.rend());

  analysis::TextTable table({"failed site", "affected", "survive", "p50 before", "p50 after",
                             "p90 before", "p90 after", "in-area failover"});
  for (std::size_t i = 0; i < 5 && i < busiest.size(); ++i) {
    const SiteId victim{busiest[i].second};
    const auto report = resilience::fail_site(laboratory, im6, victim);
    table.add_row({std::string(gaz.city(report.failed_city).iata),
                   analysis::fmt_count(report.affected_probes),
                   analysis::fmt_pct(report.survival_rate()),
                   analysis::fmt_ms(report.before_p50_ms), analysis::fmt_ms(report.after_p50_ms),
                   analysis::fmt_ms(report.before_p90_ms), analysis::fmt_ms(report.after_p90_ms),
                   report.still_served == 0
                       ? std::string("-")
                       : analysis::fmt_pct(static_cast<double>(report.failover_in_region) /
                                           static_cast<double>(report.still_served))});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected: 100%% survival (anycast reconverges), bounded latency cost,\n"
              "and failover mostly inside the failed site's geographic area\n\n");

  // ---- catchment stability across tie-break seeds ----
  analysis::TextTable stability({"region", "ASes", "stable", "pairwise agreement"});
  for (std::size_t r = 0; r < im6.deployment.regions().size(); ++r) {
    const auto report = resilience::catchment_stability(laboratory, im6.deployment, r, 5);
    stability.add_row({im6.deployment.regions()[r].name,
                       analysis::fmt_count(report.ases_observed),
                       analysis::fmt_pct(report.stable_fraction()),
                       analysis::fmt_pct(report.mean_pairwise_agreement)});
  }
  std::printf("%s\n", stability.render().c_str());
  std::printf("paper: the same sites announced the same prefixes for two months; here\n"
              "the large stable fraction shows catchments pinned by policy/geography,\n"
              "the rest is the sec 5.3 'route-selection uncertainty'\n");
  return 0;
}
