// Ablation — transient BGP convergence during regional failover.
//
// The paper's robustness story (§4.5) is steady-state: withdraw a regional
// prefix, re-solve, compare catchments. This ablation runs the same
// failover through the event-driven convergence plane and reports what the
// instantaneous solver cannot see — how long clients black-hole before DNS
// failover or path hunting rescues them — as a function of the MRAI timer,
// the main knob a real operator has on reconvergence speed.
#include "harness.hpp"

#include "ranycast/chaos/engine.hpp"
#include "ranycast/chaos/scenario.hpp"

using namespace ranycast;

int main() {
  bench::ObsSession obs_session("ablation_convergence");
  bench::print_header("Ablation - transient convergence vs MRAI",
                      "sec 4.5 (robustness), transient view of regional failover");

  chaos::FaultPlan plan;
  plan.name = "regional-failover";
  chaos::FaultEvent e;
  e.kind = chaos::FaultKind::RegionWithdraw;
  e.region = 1;
  plan.events.push_back(e);
  e = chaos::FaultEvent{};
  e.kind = chaos::FaultKind::RegionRestore;
  e.region = 1;
  plan.events.push_back(e);
  e = chaos::FaultEvent{};
  e.kind = chaos::FaultKind::SiteWithdraw;
  e.site = SiteId{0};
  plan.events.push_back(e);
  e = chaos::FaultEvent{};
  e.kind = chaos::FaultKind::SiteRestore;
  e.site = SiteId{0};
  plan.events.push_back(e);

  analysis::TextTable table({"mrai", "event", "blackholed", "flipped", "reconv p50",
                             "reconv p90", "reconv max", "dark p50", "dark max",
                             "steady"});
  for (const std::uint64_t mrai_s : {1, 5, 15}) {
    auto laboratory = bench::small_lab();
    const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
    chaos::Engine engine(laboratory, im6);
    converge::Config cfg;
    cfg.timers.mrai_us = mrai_s * 1'000'000;
    engine.enable_transient(cfg);
    const auto report = engine.run(plan);
    if (!report) {
      std::fprintf(stderr, "chaos error: %s\n", report.error().c_str());
      return 1;
    }
    for (const converge::StepTransient& t : report->transient) {
      table.add_row({std::to_string(mrai_s) + "s", t.event,
                     analysis::fmt_count(t.probes_blackholed),
                     analysis::fmt_count(t.probes_flipped),
                     analysis::fmt_ms(t.reconverge_p50_ms),
                     analysis::fmt_ms(t.reconverge_p90_ms),
                     analysis::fmt_ms(t.reconverge_max_ms),
                     analysis::fmt_ms(t.blackhole_p50_ms),
                     analysis::fmt_ms(t.blackhole_max_ms),
                     t.matches_steady ? "yes" : "NO"});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected: reconvergence scales with MRAI (path hunting is MRAI-gated);\n"
              "a withdrawn region's clients stay dark for the full DNS failover\n"
              "window regardless (no alternative origin on that prefix), while\n"
              "site-level failover reconverges in sub-MRAI time; every step ends\n"
              "byte-identical to the steady-state solver (steady = yes).\n");
  return 0;
}
