// Convergence-plane performance benchmarks (google-benchmark): cold-starting
// one regional prefix's event-driven simulator, a withdraw/restore transient
// pair from the quiesced state, and a full deployment-wide plane step. The
// JSON baseline lives in bench/BENCH_perf_convergence.json and CI gates on
// these counters via tools/check_bench_regression.py --require.
#include <benchmark/benchmark.h>

#include "ranycast/cdn/catalog.hpp"
#include "ranycast/converge/plane.hpp"
#include "ranycast/converge/sim.hpp"
#include "ranycast/core/rng.hpp"
#include "ranycast/lab/lab.hpp"

using namespace ranycast;

namespace {

lab::LabConfig bench_config() {
  lab::LabConfig config;
  config.world.stub_count = 1200;
  config.census.total_probes = 5000;
  return config;
}

void BM_ConvergeColdStart(benchmark::State& state) {
  auto laboratory = lab::Lab::create(bench_config());
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  const auto origins = im6.deployment.origins_for_region(0);
  converge::PrefixSim sim(laboratory.world().graph, im6.deployment.asn(),
                          hash_combine(laboratory.config().seed, 0), converge::Config{});
  for (auto _ : state) {
    const auto t = sim.cold_start(origins);
    benchmark::DoNotOptimize(t.events);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sim.node_count()));
}
BENCHMARK(BM_ConvergeColdStart)->Unit(benchmark::kMillisecond);

void BM_ConvergeWithdrawRestore(benchmark::State& state) {
  auto laboratory = lab::Lab::create(bench_config());
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  const auto origins = im6.deployment.origins_for_region(0);
  converge::PrefixSim sim(laboratory.world().graph, im6.deployment.asn(),
                          hash_combine(laboratory.config().seed, 0), converge::Config{});
  sim.cold_start(origins);
  const converge::OriginDelta withdraw{false, origins[0]};
  const converge::OriginDelta restore{true, origins[0]};
  for (auto _ : state) {
    // The pair returns the sim to its initial quiesced state, so every
    // iteration runs the identical two transients.
    const auto w = sim.run_step({&withdraw, 1});
    const auto r = sim.run_step({&restore, 1});
    benchmark::DoNotOptimize(w.events + r.events);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sim.node_count()));
}
BENCHMARK(BM_ConvergeWithdrawRestore)->Unit(benchmark::kMillisecond);

void BM_ConvergePlaneStep(benchmark::State& state) {
  // Deployment-wide: every regional prefix steps concurrently, plus the
  // differential check against the steady solver and the probe rollup.
  auto laboratory = lab::Lab::create(bench_config());
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  converge::Plane plane(laboratory, im6, converge::Config{});
  plane.rebuild();

  std::vector<converge::ProbeRef> probes;
  for (const atlas::Probe* p : laboratory.census().retained()) {
    const auto answer = laboratory.dns_lookup(*p, im6, dns::QueryMode::Ldns);
    probes.push_back({p->asn, answer.region});
  }
  const auto origins = im6.deployment.origins_for_region(0);
  std::vector<std::vector<converge::OriginDelta>> withdraw(plane.region_count());
  std::vector<std::vector<converge::OriginDelta>> restore(plane.region_count());
  withdraw[0].push_back({false, origins[0]});
  restore[0].push_back({true, origins[0]});
  for (auto _ : state) {
    const auto w = plane.step(0, "withdraw", withdraw, probes);
    const auto r = plane.step(1, "restore", restore, probes);
    benchmark::DoNotOptimize(w.probes + r.probes);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(probes.size()));
}
BENCHMARK(BM_ConvergePlaneStep)->Unit(benchmark::kMillisecond);

}  // namespace
