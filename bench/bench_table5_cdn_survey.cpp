// Table 5 (Appendix A) — top CDN providers and their documented redirection
// methods, plus the §4.2 ECS-resolution heuristic applied to the studied
// hostname sets.
#include "harness.hpp"

#include "ranycast/cdn/survey.hpp"

using namespace ranycast;

int main() {
  bench::ObsSession obs_session("table5_cdn_survey");
  bench::obs_pipeline_exercise();
  bench::print_header("Table 5 - top-CDN redirection survey", "Table 5 / sec 4.1 / sec 4.2");

  analysis::TextTable table({"CDN", "redirection method", "top-10k share"});
  for (const auto& c : cdn::survey::top_cdns()) {
    table.add_row({std::string(c.name), std::string(cdn::survey::to_string(c.method)),
                   analysis::fmt_pct(c.website_share)});
  }
  std::printf("%s\n", table.render().c_str());

  double total = 0.0, regional = 0.0;
  for (const auto& c : cdn::survey::top_cdns()) {
    total += c.website_share;
    if (c.method == cdn::survey::Redirection::RegionalAnycast) regional += c.website_share;
  }
  std::printf("top-15 coverage of Tranco top-10k: %s (paper: 65.7%%)\n",
              analysis::fmt_pct(total).c_str());
  std::printf("regional anycast CDNs among top-15: %zu (paper: 2 - Edgio and Imperva)\n",
              cdn::survey::regional_anycast_count());
  std::printf("Edgio+Imperva website share: %s (paper: 2.98%%)\n\n",
              analysis::fmt_pct(regional).c_str());

  // §4.2 classification heuristic applied to the three hostname sets.
  std::printf("ECS-resolution heuristic (distinct A records vs published sites):\n");
  std::printf("  Edgio-3   (3 IPs vs 79 sites):  %s\n",
              cdn::survey::looks_regional(3, 79) ? "regional anycast" : "other");
  std::printf("  Edgio-4   (4 IPs vs 79 sites):  %s\n",
              cdn::survey::looks_regional(4, 79) ? "regional anycast" : "other");
  std::printf("  Imperva-6 (6 IPs vs 50 sites):  %s\n",
              cdn::survey::looks_regional(6, 50) ? "regional anycast" : "other");
  std::printf("  single-IP hostname (global anycast): %s\n",
              cdn::survey::looks_regional(1, 79) ? "regional anycast" : "other");
  std::printf("  per-site DNS redirection (79 IPs):   %s\n",
              cdn::survey::looks_regional(79, 79) ? "regional anycast" : "other");
  return 0;
}
