// Ablation — load balance across sites, global vs regional anycast.
//
// The introduction motivates anycast with latency *and* load balancing.
// Regional partitioning constrains catchments geographically, which also
// reshapes the load distribution: this bench reports Gini, peak-to-mean
// and effective-site-count for the global network and for each regional
// prefix of the regional network.
#include "harness.hpp"

#include "ranycast/analysis/load.hpp"
#include "ranycast/verfploeter/census.hpp"

using namespace ranycast;

namespace {

std::vector<double> site_loads(const verfploeter::CatchmentCensus& census) {
  std::vector<double> loads;
  for (const auto& [site, count] : census.by_site) {
    loads.push_back(static_cast<double>(count));
  }
  return loads;
}

}  // namespace

int main() {
  bench::ObsSession obs_session("ablation_load");
  bench::print_header("Ablation - catchment load balance, global vs regional",
                      "the introduction's load-balancing motivation, quantified");
  auto laboratory = bench::default_lab();
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  const auto& ns = laboratory.add_deployment(cdn::catalog::imperva_ns());

  analysis::TextTable table({"network / prefix", "catching sites", "client ASes", "gini",
                             "peak/mean", "effective sites"});
  auto add = [&](const std::string& label, const verfploeter::CatchmentCensus& census) {
    const auto loads = site_loads(census);
    table.add_row({label, analysis::fmt_count(census.by_site.size()),
                   analysis::fmt_count(census.total),
                   analysis::fmt_ms(analysis::gini(loads), 3),
                   analysis::fmt_ms(analysis::peak_to_mean(loads), 2),
                   analysis::fmt_ms(analysis::effective_sites(loads), 1)});
  };

  add("Imperva-NS (global)", verfploeter::full_census(laboratory, ns, 0));
  for (std::size_t r = 0; r < im6.deployment.regions().size(); ++r) {
    add("Imperva-6 / " + im6.deployment.regions()[r].name,
        verfploeter::full_census(laboratory, im6, r));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("reading: each regional prefix balances load over its (fewer) regional\n"
              "sites; the global prefix concentrates load on the sites BGP happens to\n"
              "prefer, regardless of geography\n");
  return 0;
}
