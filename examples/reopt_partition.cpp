// Latency-based region design on the Tangled testbed (the paper's §6):
// measure a unicast latency matrix, run the ReOpt partitioner, deploy both
// global and regional anycast, and compare the resulting client latency.
#include <cstdio>

#include "ranycast/analysis/stats.hpp"
#include "ranycast/analysis/table.hpp"
#include "ranycast/tangled/study.hpp"
#include "ranycast/tangled/testbed.hpp"

using namespace ranycast;

int main() {
  auto laboratory = lab::Lab::create({});
  const auto& gaz = geo::Gazetteer::world();

  std::printf("running the Tangled study: unicast matrix, ReOpt sweep, deployments...\n\n");
  const auto study = tangled::run_study(laboratory);

  std::printf("region-count sweep (mean anycast RTT under country mapping):\n");
  for (std::size_t i = 0; i < study.reopt.sweep_mean_ms.size(); ++i) {
    std::printf("  k=%zu -> %.1f ms%s\n", i + 3, study.reopt.sweep_mean_ms[i],
                static_cast<int>(i + 3) == study.reopt.k ? "  (chosen)" : "");
  }

  std::printf("\nchosen partition (k=%d):\n", study.reopt.k);
  for (std::size_t s = 0; s < study.input.site_cities.size(); ++s) {
    std::printf("  %-4s -> region %d\n",
                std::string(gaz.city(study.input.site_cities[s]).iata).c_str(),
                study.reopt.site_region[s]);
  }

  std::array<std::vector<double>, geo::kAreaCount> global, regional;
  for (const auto& r : study.results) {
    global[static_cast<int>(r.probe->area())].push_back(r.global_ms);
    regional[static_cast<int>(r.probe->area())].push_back(r.route53_ms);
  }
  analysis::TextTable table({"area", "probes", "global p50", "regional p50", "global p90",
                             "regional p90"});
  for (std::size_t a = 0; a < geo::kAreaCount; ++a) {
    table.add_row({std::string(geo::to_string(static_cast<geo::Area>(a))),
                   analysis::fmt_count(global[a].size()),
                   analysis::fmt_ms(analysis::percentile(global[a], 50)),
                   analysis::fmt_ms(analysis::percentile(regional[a], 50)),
                   analysis::fmt_ms(analysis::percentile(global[a], 90)),
                   analysis::fmt_ms(analysis::percentile(regional[a], 90))});
  }
  std::printf("\n%s\n", table.render().c_str());
  std::printf("With a latency-based partition, regional anycast should beat global\n"
              "anycast in every area (the paper's Fig. 6c result).\n");
  return 0;
}
