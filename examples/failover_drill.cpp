// Failover drill: operational what-if analysis for a regional anycast CDN.
//
// For every site of Imperva's six-region deployment, withdraw its
// announcements and measure what happens to the clients it was serving:
// does everyone stay served (anycast reconvergence), how much latency does
// the failover cost, and does traffic stay inside the region? This is the
// robustness argument of the paper's §4.5 turned into a runbook tool.
#include <cstdio>
#include <vector>

#include "ranycast/analysis/table.hpp"
#include "ranycast/cdn/catalog.hpp"
#include "ranycast/lab/lab.hpp"
#include "ranycast/resilience/failover.hpp"

using namespace ranycast;

int main() {
  lab::LabConfig config;
  config.world.stub_count = 1200;   // drill-sized lab: every site solves fast
  config.census.total_probes = 5000;
  auto laboratory = lab::Lab::create(config);
  const auto& gaz = geo::Gazetteer::world();
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());

  std::printf("failover drill over %zu sites of %s\n\n", im6.deployment.sites().size(),
              im6.deployment.name().c_str());

  analysis::TextTable table({"site", "clients", "survive", "p50 cost", "p90 cost",
                             "stays in area"});
  double worst_p90_cost = 0.0;
  std::string worst_site = "-";
  std::size_t drills = 0;
  for (const cdn::Site& site : im6.deployment.sites()) {
    const auto report = resilience::fail_site(laboratory, im6, site.id);
    if (report.affected_probes < 5) continue;  // nobody to drill
    ++drills;
    const double p50_cost = report.after_p50_ms - report.before_p50_ms;
    const double p90_cost = report.after_p90_ms - report.before_p90_ms;
    if (p90_cost > worst_p90_cost) {
      worst_p90_cost = p90_cost;
      worst_site = std::string(gaz.city(report.failed_city).iata);
    }
    table.add_row({std::string(gaz.city(report.failed_city).iata),
                   analysis::fmt_count(report.affected_probes),
                   analysis::fmt_pct(report.survival_rate()),
                   (p50_cost >= 0 ? "+" : "") + analysis::fmt_ms(p50_cost),
                   (p90_cost >= 0 ? "+" : "") + analysis::fmt_ms(p90_cost),
                   report.still_served == 0
                       ? std::string("-")
                       : analysis::fmt_pct(static_cast<double>(report.failover_in_region) /
                                           static_cast<double>(report.still_served))});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("drilled %zu sites; worst p90 failover cost: %s at %s\n", drills,
              analysis::fmt_ms(worst_p90_cost).c_str(), worst_site.c_str());
  std::printf("\nReading the table: 'survive' below 100%% would mean black-holed\n"
              "clients (never happens: regional prefixes stay globally reachable);\n"
              "'stays in area' below 100%% means cross-area spill - a capacity\n"
              "planning signal for thin regions.\n");
  return 0;
}
