// Anycast designer: a capstone workflow combining the library's planning
// tools. Given a candidate site footprint and a budget of N sites:
//
//   1. learn pairwise catchment preferences (AnyOpt) and greedily pick the
//      N sites that minimize predicted mean latency under GLOBAL anycast;
//   2. partition the chosen sites with ReOpt (latency-based K-Means +
//      lowest-latency client assignment + country majority) and deploy
//      REGIONAL anycast over them;
//   3. compare global-over-chosen vs regional-over-chosen vs
//      global-over-everything, with load-balance metrics.
//
// The punchline mirrors the paper's conclusion: picking sites well helps,
// but partitioning them regionally is what fixes the tail.
#include <cstdio>

#include "ranycast/analysis/load.hpp"
#include "ranycast/analysis/stats.hpp"
#include "ranycast/analysis/table.hpp"
#include "ranycast/cdn/catalog.hpp"
#include "ranycast/dns/route53.hpp"
#include "ranycast/lab/lab.hpp"
#include "ranycast/partition/reopt.hpp"
#include "ranycast/proposals/anyopt.hpp"
#include "ranycast/tangled/testbed.hpp"
#include "ranycast/verfploeter/census.hpp"

using namespace ranycast;

namespace {

struct Measured {
  std::vector<double> rtt_ms;
  std::vector<double> site_loads;
};

Measured measure_global(lab::Lab& lab, const lab::DeploymentHandle& handle) {
  Measured out;
  for (const atlas::Probe* p : lab.census().retained()) {
    if (const auto rtt = lab.ping(*p, handle.deployment.regions()[0].service_ip)) {
      out.rtt_ms.push_back(rtt->ms);
    }
  }
  const auto census = verfploeter::full_census(lab, handle, 0);
  for (const auto& [site, count] : census.by_site) {
    out.site_loads.push_back(static_cast<double>(count));
  }
  return out;
}

}  // namespace

int main() {
  lab::LabConfig config;
  config.world.stub_count = 1200;
  config.census.total_probes = 5000;
  auto laboratory = lab::Lab::create(config);
  const auto& gaz = geo::Gazetteer::world();
  const auto footprint = tangled::global_spec();

  std::printf("designing an anycast service over %zu candidate sites (budget: 6)\n\n",
              footprint.sites.size());

  // ---- step 1: AnyOpt site selection ----
  const auto anyopt = proposals::anyopt_optimize(laboratory, footprint, 6);
  std::printf("AnyOpt selection: %zu sites:", anyopt.chosen_sites.size());
  for (std::size_t s : anyopt.chosen_sites) {
    std::printf(" %s", footprint.sites[s].iata.c_str());
  }
  std::printf("\n  predicted mean %.1f ms, measured %.1f ms\n\n", anyopt.predicted_mean_ms,
              anyopt.measured_mean_ms);

  // ---- step 2: ReOpt partition over the chosen sites ----
  // Unicast matrix restricted to the chosen sites.
  partition::ReOptInput input;
  std::vector<const lab::DeploymentHandle*> unicast;
  for (std::size_t s : anyopt.chosen_sites) {
    cdn::DeploymentSpec one = footprint;
    one.name = "designer-unicast-" + footprint.sites[s].iata;
    one.sites = {cdn::SiteSpec{footprint.sites[s].iata, {0}}};
    one.region_names = {"unicast"};
    unicast.push_back(&laboratory.add_deployment(one));
    input.site_cities.push_back(*gaz.find_by_iata(footprint.sites[s].iata));
  }
  const auto retained = laboratory.census().retained();
  for (const atlas::Probe* p : retained) {
    std::vector<double> row;
    for (const auto* handle : unicast) {
      const auto rtt = laboratory.ping(*p, handle->deployment.regions()[0].service_ip);
      row.push_back(rtt ? rtt->ms : 1e9);
    }
    input.unicast_ms.push_back(std::move(row));
    input.probe_cities.push_back(p->reported_city);
  }
  partition::ReOptConfig reopt_config;
  reopt_config.max_regions = std::min<int>(6, static_cast<int>(anyopt.chosen_sites.size()));
  reopt_config.min_regions = std::min(3, reopt_config.max_regions);
  const auto reopt = partition::reopt_partition(input, reopt_config);
  std::printf("ReOpt partition over the chosen sites: k=%d\n\n", reopt.k);

  // Deploy regional anycast over the chosen sites with the ReOpt partition.
  cdn::DeploymentSpec regional = footprint;
  regional.name = "designer-regional";
  regional.sites.clear();
  regional.region_names.clear();
  for (int r = 0; r < reopt.k; ++r) regional.region_names.push_back("R" + std::to_string(r));
  for (std::size_t i = 0; i < anyopt.chosen_sites.size(); ++i) {
    regional.sites.push_back(
        cdn::SiteSpec{footprint.sites[anyopt.chosen_sites[i]].iata,
                      {static_cast<std::size_t>(reopt.site_region[i])}});
  }
  const auto& regional_handle = laboratory.add_deployment(regional);
  dns::Route53Emulator mapper{&laboratory.mapping_db()};
  for (const auto& [iso2, region] : reopt.country_region) {
    mapper.set_country_record(iso2, static_cast<std::size_t>(region));
  }
  mapper.set_default_record(0);

  // ---- step 3: compare the three designs ----
  const auto& all_global = laboratory.add_deployment(footprint);
  const Measured everything = measure_global(laboratory, all_global);
  const Measured chosen_global = measure_global(laboratory, *anyopt.deployment);

  Measured chosen_regional;
  for (std::size_t i = 0; i < retained.size(); ++i) {
    const auto region = mapper.resolve(retained[i]->ip).value_or(0);
    const auto rtt = laboratory.ping(
        *retained[i], regional_handle.deployment.regions()[region].service_ip);
    if (rtt) chosen_regional.rtt_ms.push_back(rtt->ms);
  }
  for (std::size_t r = 0; r < regional_handle.deployment.regions().size(); ++r) {
    const auto census = verfploeter::full_census(laboratory, regional_handle, r);
    for (const auto& [site, count] : census.by_site) {
      chosen_regional.site_loads.push_back(static_cast<double>(count));
    }
  }

  analysis::TextTable table({"design", "sites", "p50", "p90", "p99", "gini"});
  auto add = [&](const char* label, std::size_t sites, const Measured& m) {
    table.add_row({label, analysis::fmt_count(sites),
                   analysis::fmt_ms(analysis::percentile(m.rtt_ms, 50)),
                   analysis::fmt_ms(analysis::percentile(m.rtt_ms, 90)),
                   analysis::fmt_ms(analysis::percentile(m.rtt_ms, 99)),
                   analysis::fmt_ms(analysis::gini(m.site_loads), 3)});
  };
  add("global, all sites", footprint.sites.size(), everything);
  add("global, AnyOpt subset", anyopt.chosen_sites.size(), chosen_global);
  add("regional (ReOpt) over subset", anyopt.chosen_sites.size(), chosen_regional);
  std::printf("%s\n", table.render().c_str());
  std::printf("expected: the AnyOpt subset improves the mean, the regional partition\n"
              "over the same sites fixes the tail - the paper's overall conclusion\n"
              "as a design workflow.\n");
  return 0;
}
