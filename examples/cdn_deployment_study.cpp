// Deployment dissection (the paper's §4 methodology as an API walkthrough):
// resolve a hostname from every probe, cluster clients by the regional IP
// they receive, traceroute to the returned address, geolocate the
// penultimate hops and enumerate which sites announce which regional
// prefix — including cross-region ("mixed") announcements.
#include <cstdio>
#include <map>
#include <set>

#include "ranycast/analysis/table.hpp"
#include "ranycast/cdn/catalog.hpp"
#include "ranycast/geoloc/pipeline.hpp"
#include "ranycast/lab/lab.hpp"

using namespace ranycast;

int main() {
  auto laboratory = lab::Lab::create({});
  const auto& gaz = geo::Gazetteer::world();

  // The deployment under study: Imperva's six-region CDN, serving (for
  // example) www.stamps.com.
  const auto& handle = laboratory.add_deployment(cdn::catalog::imperva6());
  const auto& dep = handle.deployment;
  std::printf("dissecting %s: %zu sites, %zu regional prefixes\n\n", dep.name().c_str(),
              dep.sites().size(), dep.regions().size());

  // ---- step 1: client partition (who gets which regional IP) ----
  const auto retained = laboratory.census().retained();
  std::map<std::size_t, std::set<std::string>> countries_per_region;
  std::vector<geoloc::TraceObservation> observations;
  for (const atlas::Probe* p : retained) {
    const auto answer = laboratory.dns_lookup(*p, handle, dns::QueryMode::Ldns);
    countries_per_region[answer.region].insert(
        std::string(gaz.country_code(p->reported_city)));
    if (auto trace = laboratory.traceroute(*p, answer.address)) {
      observations.push_back(geoloc::TraceObservation{p, std::move(*trace), answer.region});
    }
  }
  std::printf("client partition (countries per regional IP):\n");
  for (const auto& [region, countries] : countries_per_region) {
    std::printf("  %-6s %3zu countries:", dep.regions()[region].name.c_str(),
                countries.size());
    int shown = 0;
    for (const auto& c : countries) {
      std::printf(" %s", c.c_str());
      if (++shown == 12) {
        std::printf(" ...");
        break;
      }
    }
    std::printf("\n");
  }

  // ---- step 2: site enumeration from traceroutes ----
  std::vector<CityId> published;
  for (const cdn::Site& s : dep.sites()) published.push_back(s.city);
  const geoloc::RdnsOracle oracle{{}, &laboratory.world().graph, &laboratory.registry(),
                                  {{value(dep.asn()), "incapdns.net"}}};
  const auto enumeration = geoloc::enumerate_sites(
      observations, published, oracle,
      {&laboratory.db(0), &laboratory.db(1), &laboratory.db(2)}, {});

  std::printf("\nuncovered %zu of %zu deployed sites; announcements:\n",
              enumeration.site_regions.size(), dep.sites().size());
  analysis::TextTable table({"site", "announces", "note"});
  for (const auto& [site_city, regions] : enumeration.site_regions) {
    std::string names;
    for (std::size_t r : regions) {
      if (!names.empty()) names += "+";
      names += dep.regions()[r].name;
    }
    table.add_row({std::string(gaz.city(site_city).iata), names,
                   regions.size() > 1 ? "MIXED (cross-region)" : ""});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
