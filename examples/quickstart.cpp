// Quickstart: build a synthetic Internet, deploy a regional anycast CDN and
// its global anycast counterpart, and compare client latency distributions.
//
// This is the 60-second tour of the library's core loop:
//   world -> deployments -> DNS lookup -> ping -> per-area statistics.
#include <cstdio>

#include "ranycast/analysis/stats.hpp"
#include "ranycast/analysis/table.hpp"
#include "ranycast/atlas/grouping.hpp"
#include "ranycast/cdn/catalog.hpp"
#include "ranycast/lab/lab.hpp"

using namespace ranycast;

int main() {
  // 1. Create the laboratory: synthetic AS-level Internet + probe census +
  //    geolocation databases. Everything is seeded and reproducible.
  lab::LabConfig config;
  auto laboratory = lab::Lab::create(config);
  std::printf("world: %zu ASes, %zu links, %zu IXPs\n",
              laboratory.world().graph.nodes().size(), laboratory.world().graph.edge_count(),
              laboratory.world().graph.ixps().size());
  std::printf("census: %zu probes (%zu retained)\n\n",
              laboratory.census().probes().size(), laboratory.census().retained().size());

  // 2. Deploy Imperva's regional anycast CDN (6 regions) and its global
  //    anycast DNS network (the paper's comparable counterpart).
  const auto& regional = laboratory.add_deployment(cdn::catalog::imperva6());
  const auto& global = laboratory.add_deployment(cdn::catalog::imperva_ns());

  // 3. Measure every retained probe: resolve via its local resolver, ping
  //    the returned regional IP, and ping the global anycast IP.
  const auto retained = laboratory.census().retained();
  const auto groups = atlas::group_probes(retained);
  std::printf("probe groups (<city,AS>): %zu\n\n", groups.size());

  std::array<std::vector<double>, geo::kAreaCount> regional_ms, global_ms;
  for (const auto& group : groups) {
    const auto med_regional = atlas::group_median(group, [&](const atlas::Probe* p) {
      const auto answer = laboratory.dns_lookup(*p, regional, dns::QueryMode::Ldns);
      const auto rtt = laboratory.ping(*p, answer.address);
      return rtt ? std::optional<double>(rtt->ms) : std::nullopt;
    });
    const auto med_global = atlas::group_median(group, [&](const atlas::Probe* p) {
      const auto rtt = laboratory.ping(*p, global.deployment.regions()[0].service_ip);
      return rtt ? std::optional<double>(rtt->ms) : std::nullopt;
    });
    if (med_regional) regional_ms[static_cast<int>(group.area)].push_back(*med_regional);
    if (med_global) global_ms[static_cast<int>(group.area)].push_back(*med_global);
  }

  // 4. Report median / 90th percentile latency per geographic area.
  analysis::TextTable table({"area", "groups", "reg p50", "reg p90", "glob p50", "glob p90"});
  for (std::size_t a = 0; a < geo::kAreaCount; ++a) {
    const auto area = static_cast<geo::Area>(a);
    table.add_row({std::string(geo::to_string(area)),
                   analysis::fmt_count(regional_ms[a].size()),
                   analysis::fmt_ms(analysis::percentile(regional_ms[a], 50)),
                   analysis::fmt_ms(analysis::percentile(regional_ms[a], 90)),
                   analysis::fmt_ms(analysis::percentile(global_ms[a], 50)),
                   analysis::fmt_ms(analysis::percentile(global_ms[a], 90))});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Regional anycast bounds the catchment geography; expect the\n"
              "90th-percentile gap to favour 'reg' in most areas.\n");
  return 0;
}
