// DNS mapping audit for a *custom* regional anycast CDN.
//
// This example shows the library as a design tool rather than a paper
// reproduction: define your own deployment spec (here, a 4-region CDN with
// a deliberately awkward region border), deploy it on the synthetic
// Internet, and audit how often DNS hands clients a sub-optimal regional IP
// (the paper's Table 2 methodology).
#include <cstdio>

#include "ranycast/analysis/classify.hpp"
#include "ranycast/analysis/stats.hpp"
#include "ranycast/analysis/table.hpp"
#include "ranycast/lab/lab.hpp"

using namespace ranycast;

namespace {

/// A hypothetical CDN: Americas, Europe, Africa+MiddleEast, APAC — note the
/// paper-style design smell: Africa has only one site (JNB), so EMEA-area
/// clients get split across two prefixes along an arbitrary border.
cdn::DeploymentSpec my_cdn() {
  cdn::DeploymentSpec spec;
  spec.name = "ExampleCDN";
  spec.asn = make_asn(64999);
  spec.attachment_seed = 0xE1A;
  spec.region_names = {"Americas", "Europe", "AfricaME", "APAC"};
  auto add = [&](std::initializer_list<const char*> iatas, std::size_t region) {
    for (const char* iata : iatas) spec.sites.push_back(cdn::SiteSpec{iata, {region}});
  };
  add({"IAD", "ORD", "LAX", "MIA", "YYZ", "GRU", "SCL"}, 0);
  add({"LHR", "AMS", "FRA", "WAW", "ARN", "MAD"}, 1);
  add({"JNB", "DXB", "TLV"}, 2);
  add({"SIN", "NRT", "SYD", "BOM", "HKG"}, 3);
  // Client mapping: Africa and the Middle East to region 2, the rest of
  // EMEA to Europe. Area defaults order: EMEA, NA, LatAm, APAC.
  spec.area_defaults = {1, 0, 0, 3};
  for (const char* cc : {"ZA", "NG", "KE", "EG", "MA", "TN", "GH", "AO", "SN", "TZ", "ET",
                         "DZ", "UG", "MZ", "ZW", "AE", "SA", "QA", "IL", "JO", "KW", "BH"}) {
    spec.country_overrides.emplace_back(cc, 2);
  }
  return spec;
}

}  // namespace

int main() {
  auto laboratory = lab::Lab::create({});
  const auto& handle = laboratory.add_deployment(my_cdn());
  const auto& dep = handle.deployment;
  std::printf("auditing %s: %zu sites, %zu regions\n\n", dep.name().c_str(),
              dep.sites().size(), dep.regions().size());

  std::array<std::array<std::size_t, 3>, geo::kAreaCount> outcome_counts{};
  std::array<std::size_t, geo::kAreaCount> totals{};
  std::array<std::vector<double>, geo::kAreaCount> penalties;  // ΔRTT of inefficient mappings

  for (const atlas::Probe* p : laboratory.census().retained()) {
    const auto answer = laboratory.dns_lookup(*p, handle, dns::QueryMode::Ldns);
    const auto returned = laboratory.ping(*p, answer.address);
    if (!returned) continue;
    double best = returned->ms;
    for (const auto& region : dep.regions()) {
      if (const auto rtt = laboratory.ping(*p, region.service_ip)) {
        best = std::min(best, rtt->ms);
      }
    }
    const bool intended = answer.region == dep.intended_region(p->city);
    const auto outcome = analysis::classify_mapping(returned->ms, best, intended);
    const auto area = static_cast<int>(p->area());
    outcome_counts[area][static_cast<int>(outcome)]++;
    totals[area]++;
    if (outcome != analysis::MappingOutcome::Efficient) {
      penalties[area].push_back(returned->ms - best);
    }
  }

  analysis::TextTable table({"area", "probes", "efficient", "suboptimal-region",
                             "incorrect-region", "median penalty"});
  for (std::size_t a = 0; a < geo::kAreaCount; ++a) {
    auto pct = [&](analysis::MappingOutcome o) {
      return totals[a] == 0
                 ? std::string("-")
                 : analysis::fmt_pct(
                       static_cast<double>(outcome_counts[a][static_cast<int>(o)]) /
                       static_cast<double>(totals[a]));
    };
    table.add_row({std::string(geo::to_string(static_cast<geo::Area>(a))),
                   analysis::fmt_count(totals[a]),
                   pct(analysis::MappingOutcome::Efficient),
                   pct(analysis::MappingOutcome::SubOptimalRegion),
                   pct(analysis::MappingOutcome::IncorrectRegion),
                   penalties[a].empty()
                       ? std::string("-")
                       : analysis::fmt_ms(analysis::median(penalties[a])) + " ms"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("'suboptimal-region' = DNS returned the intended region but a lower-RTT\n"
              "regional IP existed (rigid borders); 'incorrect-region' = geolocation or\n"
              "resolver error sent the client outside its intended region.\n");
  return 0;
}
