#!/usr/bin/env bash
# SIGKILL/restart soak for the serving plane (ranycast-serve drive).
#
# For each worker count in {1, 2, hw} the same faulted drive (a seeded
# serve::FaultPlan storm: failed + stalled builds, slow queries, clock skew)
# is run four ways:
#   1. uninterrupted                      -> baseline answer stream + journal
#   2. killed after a tick checkpoint     -> exit 137, resume, compare
#   3. killed INSIDE the epoch swap, before the publish (--abort-at
#      pre_publish)                       -> exit 137, resume, compare
#   4. killed INSIDE the epoch swap, just after the publish (--abort-at
#      post_publish)                      -> exit 137, resume, compare
# Every resumed answer stream must be byte-identical to the baseline: a
# kill anywhere — including between a finished build and its publish —
# never yields a torn snapshot or a diverged answer. Worker counts must
# also agree with each other (the snapshot build is order-independent).
#
# The journals are then checked: the resumed journal carries exactly one
# "resumed" marker and its deduped serve_ladder transition set must equal
# the baseline's — the degradation ladder's history survives crash-restart.
#
# Finally the overload gate: a drive offering 2x the admission capacity
# must keep the served p99 inside the deadline budget and surface the
# excess as shed queries in the serve_summary journal line.
#
# FLIGHT_BIN (env, optional): when set, `flight verify` must pass on the
# resumed journal + checkpoint chain.
#
# Usage: ci_serve_soak.sh SERVE_BINARY [WORKDIR]
set -u

if [ "$#" -lt 1 ]; then
  echo "usage: $0 SERVE_BINARY [WORKDIR]" >&2
  exit 2
fi

SERVE="$1"
WORKDIR="${2:-$(mktemp -d)}"
mkdir -p "$WORKDIR"

HW=$(nproc 2>/dev/null || echo 4)
THREAD_COUNTS="1 2 $HW"

# The soak profile: a storm seed chosen to exercise the whole ladder
# (failed builds, stalled builds into Stale, recovery back to Fresh) while
# still publishing several epochs to abort inside.
PROFILE=(drive --stubs 400 --probes 1200 --seed 2023
  --ticks 100 --fault-intensity 0.9 --fault-seed 41)

fail() { echo "FAIL: $*" >&2; exit 1; }

# ladder_fingerprint JOURNAL -> "<resume markers> <deduped transition set hash>"
ladder_fingerprint() {
  python3 - "$1" <<'PY'
import hashlib, json, sys
resumed, transitions = 0, set()
with open(sys.argv[1]) as f:
    for n, raw in enumerate(f, 1):
        raw = raw.strip()
        if not raw:
            continue
        try:
            e = json.loads(raw)
        except json.JSONDecodeError as exc:
            sys.exit(f"{sys.argv[1]}:{n}: invalid journal line: {exc}")
        if e.get("type") == "resumed":
            resumed += 1
        elif e.get("type") == "serve_ladder":
            transitions.add((e["at_ns"], e["from"], e["to"], e["reason"]))
if not transitions:
    sys.exit(f"{sys.argv[1]}: no serve_ladder transitions journaled")
digest = hashlib.sha256(repr(sorted(transitions)).encode()).hexdigest()[:16]
print(resumed, digest)
PY
}

run_soak_for_threads() {
  local T="$1"
  local D="$WORKDIR/t$T"
  mkdir -p "$D"
  export RANYCAST_THREADS="$T"

  echo "== [$T workers] baseline =="
  "$SERVE" "${PROFILE[@]}" \
    --answers "$D/base.csv" --journal "$D/base.ndjson" \
    || fail "[$T] baseline exited $?"
  [ -s "$D/base.csv" ] || fail "[$T] baseline produced no answers"

  local n=0
  for KILL in "--abort-after 13" \
              "--abort-at pre_publish --abort-epoch 3" \
              "--abort-at post_publish --abort-epoch 5"; do
    n=$((n + 1))
    local R="$D/kill$n"
    echo "== [$T workers] kill $n/3 ($KILL) =="
    rm -f "$R.ck" "$R.ck.g"* "$R.ndjson" "$R.csv"
    # shellcheck disable=SC2086  # $KILL is deliberately two tokens
    "$SERVE" "${PROFILE[@]}" \
      --answers "$R.csv" --journal "$R.ndjson" --checkpoint "$R.ck" \
      $KILL
    rc=$?
    [ "$rc" -eq 137 ] || fail "[$T] kill $n: expected exit 137, got $rc"
    [ -s "$R.ck" ] || fail "[$T] kill $n left no checkpoint behind"

    "$SERVE" "${PROFILE[@]}" \
      --answers "$R.csv" --journal "$R.ndjson" --checkpoint "$R.ck" --resume \
      || fail "[$T] resume $n exited $?"
    cmp "$D/base.csv" "$R.csv" \
      || fail "[$T] kill $n: resumed answers differ from the baseline"
  done
  echo "[$T workers] all 3 kill points resumed byte-identically"

  if command -v python3 >/dev/null 2>&1; then
    local BASE RES
    BASE=$(ladder_fingerprint "$D/base.ndjson") \
      || fail "[$T] baseline journal invalid"
    RES=$(ladder_fingerprint "$D/kill3.ndjson") \
      || fail "[$T] resumed journal invalid"
    [ "${BASE%% *}" = "0" ] || fail "[$T] baseline journal has resume markers"
    [ "${RES%% *}" = "1" ] \
      || fail "[$T] resumed journal: expected one resume marker, got '${RES%% *}'"
    [ "${BASE#* }" = "${RES#* }" ] \
      || fail "[$T] resumed ladder history differs from baseline"
    echo "[$T workers] journaled ladder transitions survive crash-restart"
  fi

  if [ -n "${FLIGHT_BIN:-}" ]; then
    "$FLIGHT_BIN" verify --journal "$D/kill3.ndjson" --checkpoint "$D/kill3.ck" \
      || fail "[$T] flight verify on resumed journal/chain exited $?"
    echo "[$T workers] flight verify passed"
  fi
}

for T in $THREAD_COUNTS; do
  run_soak_for_threads "$T"
done

echo "== worker counts agree =="
for T in $THREAD_COUNTS; do
  cmp "$WORKDIR/t1/base.csv" "$WORKDIR/t$T/base.csv" \
    || fail "answers with $T workers differ from 1 worker"
done
echo "answer streams are identical across worker counts"

echo "== 2x overload holds the deadline budget =="
export RANYCAST_THREADS=2
"$SERVE" drive --stubs 400 --probes 1200 --seed 2023 \
  --ticks 500 --tick-ns 2000000 --queries-per-tick 8 \
  --service-us 500 --queue-depth 4 --qps 100000 --burst 100000 \
  --budget-us 2000 --refresh-ns 2000000000 --build-ns 1000000 \
  --fresh-ns 4000000000 --journal "$WORKDIR/overload.ndjson" \
  || fail "overload run exited $?"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$WORKDIR/overload.ndjson" <<'PY' || exit 1
import json, sys
summary = None
with open(sys.argv[1]) as f:
    for raw in f:
        e = json.loads(raw)
        if e.get("type") == "serve_summary":
            summary = e
if summary is None:
    sys.exit("FAIL: overload journal has no serve_summary")
shed = summary["shed_queue"] + summary["shed_deadline"] + summary["shed_rate"]
if shed == 0:
    sys.exit("FAIL: 2x overload shed nothing — admission control is asleep")
if summary["p99_us"] > 2000:
    sys.exit(f"FAIL: served p99 {summary['p99_us']}us exceeds the 2000us budget")
served = summary["served"]
if not (0.3 <= served / summary["queries"] <= 0.7):
    sys.exit(f"FAIL: served share {served}/{summary['queries']} is not ~capacity/offered")
print(f"overload: {served}/{summary['queries']} served, {shed} shed, "
      f"p99 {summary['p99_us']}us <= 2000us budget")
PY
fi

echo "OK: serve soak passed (3 kill points x {$THREAD_COUNTS} workers, ladder journal, 2x overload)"
