// ranycast-stats — build a laboratory, run a measurement pass, dump the full
// observability report.
//
//   ranycast-stats [--stubs N] [--probes N] [--cdn NAME] [--seed N]
//                  [--pings N] [--format report|trace]
//
// Observability is force-enabled for the process, a lab is built and the
// requested deployment solved, then every retained probe (up to --pings) is
// driven through dns_lookup + ping (plus a traceroute sample). Output on
// stdout: the JSON metrics/span report (report, default) or the raw NDJSON
// trace events (trace). See docs/observability.md for both schemas.
#include <cstdio>

#include "ranycast/cdn/catalog.hpp"
#include "ranycast/core/flags.hpp"
#include "ranycast/lab/lab.hpp"
#include "ranycast/obs/metrics.hpp"
#include "ranycast/obs/report.hpp"
#include "ranycast/tangled/testbed.hpp"

using namespace ranycast;

namespace {

std::optional<cdn::DeploymentSpec> spec_by_name(const std::string& name) {
  if (name == "imperva6") return cdn::catalog::imperva6();
  if (name == "imperva-ns") return cdn::catalog::imperva_ns();
  if (name == "edgio3") return cdn::catalog::edgio3();
  if (name == "edgio4") return cdn::catalog::edgio4();
  if (name == "tangled") return tangled::global_spec();
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  const flags::Parser args(argc, argv);
  for (const auto& bad :
       args.unknown({"stubs", "probes", "cdn", "seed", "pings", "format"})) {
    std::fprintf(stderr, "unknown flag --%s\n", bad.c_str());
    return 2;
  }
  const std::string format = args.get_or("format", std::string("report"));
  if (format != "report" && format != "trace") {
    std::fprintf(stderr, "unknown format '%s' (report|trace)\n", format.c_str());
    return 2;
  }
  const std::string cdn_name = args.get_or("cdn", std::string("imperva6"));
  const auto spec = spec_by_name(cdn_name);
  if (!spec) {
    std::fprintf(stderr, "unknown CDN '%s'\n", cdn_name.c_str());
    return 2;
  }

  obs::set_enabled(true);
  obs::MetricsRegistry::global().set_label("tool", "ranycast-stats");
  obs::MetricsRegistry::global().set_label("cdn", cdn_name);

  lab::LabConfig config;
  config.world.stub_count = static_cast<int>(args.get_or("stubs", std::int64_t{1200}));
  config.census.total_probes = static_cast<int>(args.get_or("probes", std::int64_t{5000}));
  config.seed = static_cast<std::uint64_t>(args.get_or("seed", std::int64_t{2023}));
  auto laboratory = lab::Lab::create(config);
  const auto& handle = laboratory.add_deployment(*spec);

  const auto retained = laboratory.census().retained();
  const auto pings = static_cast<std::size_t>(args.get_or("pings", std::int64_t{500}));
  const std::size_t n = std::min(retained.size(), pings);
  for (std::size_t i = 0; i < n; ++i) {
    const atlas::Probe* probe = retained[i];
    const auto answer = laboratory.dns_lookup(*probe, handle, dns::QueryMode::Ldns);
    laboratory.ping(*probe, answer.address);
    if (i % 25 == 0) laboratory.traceroute(*probe, answer.address);
  }

  if (format == "trace") {
    std::fputs(obs::trace_ndjson().c_str(), stdout);
  } else {
    std::printf("%s\n", obs::json_report().c_str());
  }
  return 0;
}
