// ranycast-experiment — run a paper experiment from a JSON configuration.
//
//   ranycast-experiment [--config FILE] [--experiment NAME] [--format table|csv]
//                       [--dump-config] [--obs]
//
// Experiments:
//   table3   Imperva-6 vs Imperva-NS tail latency (80/90/95th per area)
//   fig6c    ReOpt regional vs global anycast on the Tangled testbed
//   causes   §5.4 latency-reduction cause classification
//
// The configuration schema is documented in ranycast/io/config.hpp; any
// omitted key keeps the library default, so {} is a valid config.
//
// --obs force-enables observability and prints the JSON metrics/trace
// report to stderr after the experiment (stdout keeps the table/csv).
#include <cstdio>
#include <iostream>

#include "ranycast/analysis/export.hpp"
#include "ranycast/analysis/stats.hpp"
#include "ranycast/analysis/table.hpp"
#include "ranycast/cdn/catalog.hpp"
#include "ranycast/core/flags.hpp"
#include "ranycast/io/config.hpp"
#include "ranycast/lab/comparison.hpp"
#include "ranycast/obs/metrics.hpp"
#include "ranycast/obs/report.hpp"
#include "ranycast/tangled/study.hpp"

using namespace ranycast;

namespace {

int run_table3(lab::Lab& laboratory, bool csv) {
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  const auto& ns = laboratory.add_deployment(cdn::catalog::imperva_ns());
  const auto result = lab::compare_regional_global(laboratory, im6, ns);
  std::array<std::vector<double>, geo::kAreaCount> reg, glob;
  for (const auto& g : result.groups) {
    reg[static_cast<int>(g.area)].push_back(g.regional_ms);
    glob[static_cast<int>(g.area)].push_back(g.global_ms);
  }
  analysis::CsvWriter out({"percentile", "area", "regional_ms", "global_ms"});
  analysis::TextTable table({"percentile", "area", "regional", "global"});
  for (const double p : {80.0, 90.0, 95.0}) {
    for (std::size_t a = 0; a < geo::kAreaCount; ++a) {
      const std::string area{geo::to_string(static_cast<geo::Area>(a))};
      const double r = analysis::percentile(reg[a], p);
      const double g = analysis::percentile(glob[a], p);
      out.add_row({std::to_string(static_cast<int>(p)), area, std::to_string(r),
                   std::to_string(g)});
      table.add_row({std::to_string(static_cast<int>(p)) + "-th", area,
                     analysis::fmt_ms(r), analysis::fmt_ms(g)});
    }
  }
  if (csv) {
    out.write(std::cout);
  } else {
    std::printf("%s", table.render().c_str());
  }
  return 0;
}

int run_fig6c(lab::Lab& laboratory, bool csv) {
  const auto study = tangled::run_study(laboratory);
  std::array<std::vector<double>, geo::kAreaCount> reg, glob;
  for (const auto& r : study.results) {
    reg[static_cast<int>(r.probe->area())].push_back(r.route53_ms);
    glob[static_cast<int>(r.probe->area())].push_back(r.global_ms);
  }
  analysis::CsvWriter out({"area", "global_p90_ms", "regional_p90_ms"});
  analysis::TextTable table({"area", "global p90", "regional p90"});
  for (std::size_t a = 0; a < geo::kAreaCount; ++a) {
    const std::string area{geo::to_string(static_cast<geo::Area>(a))};
    const double g = analysis::percentile(glob[a], 90);
    const double r = analysis::percentile(reg[a], 90);
    out.add_row({area, std::to_string(g), std::to_string(r)});
    table.add_row({area, analysis::fmt_ms(g), analysis::fmt_ms(r)});
  }
  if (csv) {
    out.write(std::cout);
  } else {
    std::printf("chosen k = %d\n%s", study.reopt.k, table.render().c_str());
  }
  return 0;
}

int run_causes(lab::Lab& laboratory, bool csv) {
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  const auto& ns = laboratory.add_deployment(cdn::catalog::imperva_ns());
  const auto result = lab::compare_regional_global(laboratory, im6, ns);
  const auto causes = lab::classify_reduction_causes(result);
  analysis::CsvWriter out({"cause", "groups"});
  out.add_row({"as_relationship", std::to_string(causes.as_relationship)});
  out.add_row({"peering_type", std::to_string(causes.peering_type)});
  out.add_row({"unknown", std::to_string(causes.unknown)});
  if (csv) {
    out.write(std::cout);
  } else {
    std::printf("reduced groups: %zu\n  AS-relationship overrides: %zu\n"
                "  peering-type overrides:    %zu\n  unclassified:              %zu\n",
                causes.reduced_groups, causes.as_relationship, causes.peering_type,
                causes.unknown);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const flags::Parser args(argc, argv);
  for (const auto& bad :
       args.unknown({"config", "experiment", "format", "dump-config", "obs"})) {
    std::fprintf(stderr, "unknown flag --%s\n", bad.c_str());
    return 2;
  }
  if (args.has("obs")) obs::set_enabled(true);

  lab::LabConfig config;
  if (const auto path = args.get("config")) {
    auto loaded = io::load_config(*path);
    if (!loaded) {
      std::fprintf(stderr, "config error: %s\n", loaded.error().to_string().c_str());
      return 2;
    }
    config = std::move(*loaded);
  }
  if (args.has("dump-config")) {
    std::printf("%s\n", io::lab_config_to_json(config).dump(2).c_str());
    return 0;
  }

  const bool csv = args.get_or("format", std::string("table")) == "csv";
  const std::string experiment = args.get_or("experiment", std::string("table3"));
  auto laboratory = lab::Lab::create(config);
  std::optional<int> rc;
  if (experiment == "table3") rc = run_table3(laboratory, csv);
  if (experiment == "fig6c") rc = run_fig6c(laboratory, csv);
  if (experiment == "causes") rc = run_causes(laboratory, csv);
  if (!rc) {
    std::fprintf(stderr, "unknown experiment '%s' (table3|fig6c|causes)\n",
                 experiment.c_str());
    return 2;
  }
  if (args.has("obs")) std::fprintf(stderr, "%s\n", obs::json_report().c_str());
  return *rc;
}
