// ranycast-experiment — run a paper experiment from a JSON configuration.
//
//   ranycast-experiment [--config FILE] [--experiment NAME] [--format table|csv]
//                       [--dump-config] [--obs] [--journal FILE] [--trace-out FILE]
//                       [--cdn NAME] [--region N] [--trials N]
//                       [--stubs N] [--probes N] [--seed N]
//                       [--traffic-policy spill|shed] [--traffic-capacity-mbps X]
//                       [--traffic-scale X]
//                       [--deadline SECONDS] [--stall-timeout SECONDS]
//                       [--checkpoint FILE] [--checkpoint-every K] [--resume]
//                       [--abort-after N]
//
// Experiments:
//   table3     Imperva-6 vs Imperva-NS tail latency (80/90/95th per area)
//   fig6c      ReOpt regional vs global anycast on the Tangled testbed
//   causes     §5.4 latency-reduction cause classification
//   stability  §5.3 catchment stability across --trials tie-break seeds
//   traffic    failover under load: surge demand, withdraw the busiest site,
//              and report per-step utilization/shed/drop accounting under the
//              chosen overload policy (docs/traffic.md)
//
// The configuration schema is documented in ranycast/io/config.hpp; any
// omitted key keeps the library default, so {} is a valid config.
//
// --obs force-enables observability and prints the JSON metrics/trace
// report to stderr after the experiment (stdout keeps the table/csv).
//
// The stability experiment honours the guard flags (docs/reliability.md):
// under --deadline it emits the trials completed so far and exits 3, and
// --checkpoint/--resume continue a killed campaign with a final report
// identical to an uninterrupted run. --abort-after N hard-kills the process
// after N trials (crash-recovery tests and CI).
//
// --journal FILE appends the structured NDJSON run journal; --trace-out FILE
// also writes a Chrome/Perfetto trace of the run (docs/observability.md).
// Both imply --obs recording.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "ranycast/guard/runtime.hpp"
#include "ranycast/resilience/stability.hpp"

#include "ranycast/analysis/export.hpp"
#include "ranycast/analysis/stats.hpp"
#include "ranycast/analysis/table.hpp"
#include "ranycast/cdn/catalog.hpp"
#include "ranycast/chaos/engine.hpp"
#include "ranycast/chaos/plan.hpp"
#include "ranycast/core/flags.hpp"
#include "ranycast/exec/pool.hpp"
#include "ranycast/flight/flight.hpp"
#include "ranycast/io/config.hpp"
#include "ranycast/lab/comparison.hpp"
#include "ranycast/obs/flight.hpp"
#include "ranycast/obs/journal.hpp"
#include "ranycast/obs/metrics.hpp"
#include "ranycast/obs/report.hpp"
#include "ranycast/tangled/study.hpp"
#include "ranycast/traffic/config.hpp"

using namespace ranycast;

namespace {

int run_table3(lab::Lab& laboratory, bool csv) {
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  const auto& ns = laboratory.add_deployment(cdn::catalog::imperva_ns());
  const auto result = lab::compare_regional_global(laboratory, im6, ns);
  std::array<std::vector<double>, geo::kAreaCount> reg, glob;
  for (const auto& g : result.groups) {
    reg[static_cast<int>(g.area)].push_back(g.regional_ms);
    glob[static_cast<int>(g.area)].push_back(g.global_ms);
  }
  analysis::CsvWriter out({"percentile", "area", "regional_ms", "global_ms"});
  analysis::TextTable table({"percentile", "area", "regional", "global"});
  for (const double p : {80.0, 90.0, 95.0}) {
    for (std::size_t a = 0; a < geo::kAreaCount; ++a) {
      const std::string area{geo::to_string(static_cast<geo::Area>(a))};
      const double r = analysis::percentile(reg[a], p);
      const double g = analysis::percentile(glob[a], p);
      out.add_row({std::to_string(static_cast<int>(p)), area, std::to_string(r),
                   std::to_string(g)});
      table.add_row({std::to_string(static_cast<int>(p)) + "-th", area,
                     analysis::fmt_ms(r), analysis::fmt_ms(g)});
    }
  }
  if (csv) {
    out.write(std::cout);
  } else {
    std::printf("%s", table.render().c_str());
  }
  return 0;
}

int run_fig6c(lab::Lab& laboratory, bool csv) {
  const auto study = tangled::run_study(laboratory);
  std::array<std::vector<double>, geo::kAreaCount> reg, glob;
  for (const auto& r : study.results) {
    reg[static_cast<int>(r.probe->area())].push_back(r.route53_ms);
    glob[static_cast<int>(r.probe->area())].push_back(r.global_ms);
  }
  analysis::CsvWriter out({"area", "global_p90_ms", "regional_p90_ms"});
  analysis::TextTable table({"area", "global p90", "regional p90"});
  for (std::size_t a = 0; a < geo::kAreaCount; ++a) {
    const std::string area{geo::to_string(static_cast<geo::Area>(a))};
    const double g = analysis::percentile(glob[a], 90);
    const double r = analysis::percentile(reg[a], 90);
    out.add_row({area, std::to_string(g), std::to_string(r)});
    table.add_row({area, analysis::fmt_ms(g), analysis::fmt_ms(r)});
  }
  if (csv) {
    out.write(std::cout);
  } else {
    std::printf("chosen k = %d\n%s", study.reopt.k, table.render().c_str());
  }
  return 0;
}

int run_causes(lab::Lab& laboratory, bool csv) {
  const auto& im6 = laboratory.add_deployment(cdn::catalog::imperva6());
  const auto& ns = laboratory.add_deployment(cdn::catalog::imperva_ns());
  const auto result = lab::compare_regional_global(laboratory, im6, ns);
  const auto causes = lab::classify_reduction_causes(result);
  analysis::CsvWriter out({"cause", "groups"});
  out.add_row({"as_relationship", std::to_string(causes.as_relationship)});
  out.add_row({"peering_type", std::to_string(causes.peering_type)});
  out.add_row({"unknown", std::to_string(causes.unknown)});
  if (csv) {
    out.write(std::cout);
  } else {
    std::printf("reduced groups: %zu\n  AS-relationship overrides: %zu\n"
                "  peering-type overrides:    %zu\n  unclassified:              %zu\n",
                causes.reduced_groups, causes.as_relationship, causes.peering_type,
                causes.unknown);
  }
  return 0;
}

std::optional<cdn::DeploymentSpec> spec_by_name(const std::string& name) {
  if (name == "imperva6") return cdn::catalog::imperva6();
  if (name == "imperva-ns") return cdn::catalog::imperva_ns();
  if (name == "edgio3") return cdn::catalog::edgio3();
  if (name == "edgio4") return cdn::catalog::edgio4();
  return std::nullopt;
}

// Failover under load (docs/traffic.md): install a demand surge, withdraw
// the deployment's busiest site, restore it, and let the traffic plane
// account for where the displaced load went under the chosen policy.
int run_traffic(lab::Lab& laboratory, bool csv, const flags::Parser& args) {
  const std::string cdn_name = args.get_or("cdn", std::string("imperva6"));
  const auto spec = spec_by_name(cdn_name);
  if (!spec) {
    std::fprintf(stderr, "unknown CDN '%s'\n", cdn_name.c_str());
    return 2;
  }
  const auto& handle = laboratory.add_deployment(*spec);
  traffic::TrafficConfig cfg;
  const std::string policy = args.get_or("traffic-policy", std::string("spill"));
  if (policy == "shed") {
    cfg.policy = traffic::OverloadPolicy::Shed;
  } else if (policy != "spill") {
    std::fprintf(stderr, "unknown --traffic-policy '%s' (spill|shed)\n", policy.c_str());
    return 2;
  }
  cfg.default_site_capacity_mbps =
      args.get_or("traffic-capacity-mbps", cfg.default_site_capacity_mbps);
  cfg.demand_scale = args.get_or("traffic-scale", cfg.demand_scale);
  if (const auto err = traffic::validate(cfg, "<flags>")) {
    std::fprintf(stderr, "traffic config error: %s\n", err->to_string().c_str());
    return 2;
  }

  // The busiest site is the interesting victim: its catchment is what the
  // surge piles onto and what the withdrawal displaces.
  std::unordered_map<std::uint16_t, int> counts;
  for (const atlas::Probe* p : laboratory.census().retained()) {
    const auto answer = laboratory.dns_lookup(*p, handle, dns::QueryMode::Ldns);
    const bgp::Route* r = handle.route_for(p->asn, answer.region);
    if (r != nullptr) counts[value(r->origin_site)]++;
  }
  std::uint16_t victim = 0;
  int best = -1;
  for (const auto& [site, count] : counts) {
    if (count > best || (count == best && site < victim)) {
      best = count;
      victim = site;
    }
  }

  chaos::FaultPlan plan;
  plan.name = "failover-under-load";
  chaos::FaultEvent e;
  e.kind = chaos::FaultKind::TrafficSurge;
  e.magnitude = 1.45;
  e.label = "demand surge";
  plan.events.push_back(e);
  e = chaos::FaultEvent{};
  e.kind = chaos::FaultKind::SiteWithdraw;
  e.site = SiteId{victim};
  e.label = "busiest site fails";
  plan.events.push_back(e);
  e = chaos::FaultEvent{};
  e.kind = chaos::FaultKind::SiteRestore;
  e.site = SiteId{victim};
  plan.events.push_back(e);
  e = chaos::FaultEvent{};
  e.kind = chaos::FaultKind::TrafficRestore;
  plan.events.push_back(e);

  chaos::Engine engine(laboratory, handle);
  engine.enable_traffic(cfg);
  auto report = engine.run(plan);
  if (!report) {
    std::fprintf(stderr, "traffic experiment error: %s\n", report.error().c_str());
    return 2;
  }

  analysis::CsvWriter out({"step", "event", "offered_mbps", "served_mbps", "shed_mbps",
                           "dropped_mbps", "max_utilization", "overloaded_sites",
                           "cascade_depth", "queue_delay_p90_ms"});
  analysis::TextTable table({"#", "event", "offered", "served", "shed", "dropped",
                             "util max", "hot", "cascade", "q p90"});
  for (const auto& t : report->traffic) {
    const auto& s = t.solve;
    out.add_row({std::to_string(t.index), t.event, std::to_string(s.offered_mbps),
                 std::to_string(s.served_mbps), std::to_string(s.shed_mbps),
                 std::to_string(s.dropped_mbps), std::to_string(s.max_utilization),
                 std::to_string(s.overloaded_sites), std::to_string(t.cascade_depth),
                 std::to_string(s.queue_delay_p90_ms)});
    table.add_row({std::to_string(t.index), t.event, analysis::fmt_ms(s.offered_mbps, 0),
                   analysis::fmt_ms(s.served_mbps, 0), analysis::fmt_ms(s.shed_mbps, 0),
                   analysis::fmt_ms(s.dropped_mbps, 0),
                   analysis::fmt_pct(s.max_utilization, 1),
                   analysis::fmt_count(s.overloaded_sites),
                   analysis::fmt_count(t.cascade_depth),
                   analysis::fmt_ms(s.queue_delay_p90_ms, 2)});
  }
  if (csv) {
    out.write(std::cout);
  } else {
    std::printf("policy: %s, victim site: %u\n%s",
                std::string(traffic::to_string(cfg.policy)).c_str(), victim,
                table.render().c_str());
  }
  return 0;
}

void print_stability(const resilience::StabilityReport& report, bool csv) {
  if (csv) {
    analysis::CsvWriter out({"trials", "ases_observed", "ases_stable", "stable_fraction",
                             "mean_pairwise_agreement"});
    out.add_row({std::to_string(report.trials), std::to_string(report.ases_observed),
                 std::to_string(report.ases_stable), std::to_string(report.stable_fraction()),
                 std::to_string(report.mean_pairwise_agreement)});
    out.write(std::cout);
  } else {
    std::printf("trials: %zu\n  ASes observed: %zu\n  ASes stable:   %zu (%.1f%%)\n"
                "  mean pairwise agreement: %.3f\n",
                report.trials, report.ases_observed, report.ases_stable,
                report.stable_fraction() * 100.0, report.mean_pairwise_agreement);
  }
}

int run_stability(lab::Lab& laboratory, bool csv, const flags::Parser& args) {
  const std::string cdn_name = args.get_or("cdn", std::string("imperva6"));
  const auto spec = spec_by_name(cdn_name);
  if (!spec) {
    std::fprintf(stderr, "unknown CDN '%s'\n", cdn_name.c_str());
    return 2;
  }
  const auto& handle = laboratory.add_deployment(*spec);
  const auto region = static_cast<std::size_t>(args.get_or("region", std::int64_t{0}));
  const int trials = static_cast<int>(args.get_or("trials", std::int64_t{8}));
  if (region >= handle.deployment.regions().size()) {
    std::fprintf(stderr, "deployment '%s' has no region %zu\n", cdn_name.c_str(), region);
    return 2;
  }

  const bool guarded = args.has("deadline") || args.has("stall-timeout") ||
                       args.has("checkpoint") || args.has("resume");
  if (!guarded) {
    print_stability(
        resilience::catchment_stability(laboratory, handle.deployment, region, trials), csv);
    return 0;
  }

  guard::RunLimits limits;
  limits.deadline_s = args.get_or("deadline", 0.0);
  limits.stall_timeout_s = args.get_or("stall-timeout", 0.0);
  guard::CheckpointPolicy policy;
  policy.path = args.get_or("checkpoint", std::string());
  policy.every = static_cast<std::size_t>(args.get_or("checkpoint-every", std::int64_t{1}));
  policy.resume = args.has("resume");
  if (policy.resume && policy.path.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint FILE\n");
    return 2;
  }
  if (args.has("abort-after")) {
    const auto fatal_step =
        static_cast<std::size_t>(args.get_or("abort-after", std::int64_t{0}));
    policy.after_step = [fatal_step](std::size_t done, std::size_t) {
      if (done == fatal_step) std::_Exit(137);
    };
  }
  guard::Supervisor supervisor(limits);
  // SIGTERM/SIGINT cancel cooperatively: a final checkpoint and `stopped`
  // journal line are flushed, and the exit-3 truncated run resumes cleanly.
  const guard::ScopedSignalCancel signal_cancel(supervisor);
  auto outcome = resilience::catchment_stability_guarded(laboratory, handle.deployment,
                                                         region, trials, supervisor, policy);
  if (!outcome) {
    std::fprintf(stderr, "stability error: %s\n", outcome.error().to_string().c_str());
    return 2;
  }
  if (outcome->sweep.resumed) {
    std::fprintf(stderr, "[guard] resumed from %s at trial %zu/%zu\n", policy.path.c_str(),
                 outcome->sweep.resumed_from, outcome->sweep.total);
  }
  print_stability(outcome->report, csv);
  if (!outcome->sweep.complete()) {
    std::fprintf(stderr, "[guard] stopped (%s): completed %zu of %zu trials\n",
                 std::string(guard::to_string(outcome->sweep.stopped)).c_str(),
                 outcome->sweep.completed, outcome->sweep.total);
    return 3;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const flags::Parser args(argc, argv);
  for (const auto& bad :
       args.unknown({"config", "experiment", "format", "dump-config", "obs", "cdn",
                     "region", "trials", "stubs", "probes", "seed", "deadline",
                     "stall-timeout", "checkpoint", "checkpoint-every", "resume",
                     "abort-after", "journal", "trace-out", "traffic-policy",
                     "traffic-capacity-mbps", "traffic-scale"})) {
    std::fprintf(stderr, "unknown flag --%s\n", bad.c_str());
    return 2;
  }
  const auto trace_out = args.get("trace-out");
  std::string journal_path = args.get_or("journal", std::string());
  if (journal_path.empty() && trace_out) journal_path = *trace_out + ".journal.ndjson";
  if (args.has("obs") || !journal_path.empty()) obs::set_enabled(true);
  obs::set_thread_name("main");

  obs::Journal journal;
  if (!journal_path.empty()) {
    if (!journal.open(journal_path, /*append=*/args.has("resume"))) {
      std::fprintf(stderr, "%s\n", journal.error().c_str());
      return 2;
    }
    obs::set_journal(&journal);
  }

  lab::LabConfig config;
  if (const auto path = args.get("config")) {
    auto loaded = io::load_config(*path);
    if (!loaded) {
      std::fprintf(stderr, "config error: %s\n", loaded.error().to_string().c_str());
      return 2;
    }
    config = std::move(*loaded);
  }
  if (args.has("stubs")) {
    config.world.stub_count = static_cast<int>(args.get_or("stubs", std::int64_t{2600}));
  }
  if (args.has("probes")) {
    config.census.total_probes =
        static_cast<int>(args.get_or("probes", std::int64_t{11000}));
  }
  if (args.has("seed")) {
    config.seed = static_cast<std::uint64_t>(args.get_or("seed", std::int64_t{2023}));
  }
  if (args.has("dump-config")) {
    std::printf("%s\n", io::lab_config_to_json(config).dump(2).c_str());
    return 0;
  }

  const bool csv = args.get_or("format", std::string("table")) == "csv";
  const std::string experiment = args.get_or("experiment", std::string("table3"));
  using F = obs::JournalField;
  obs::journal_event(
      "run_manifest",
      {F::str("tool", "ranycast-experiment"), F::str("experiment", experiment),
       F::u64_field("stubs", static_cast<std::uint64_t>(config.world.stub_count)),
       F::u64_field("probes", static_cast<std::uint64_t>(config.census.total_probes)),
       F::u64_field("seed", config.seed)},
      /*durable=*/true);
  obs::journal_event("phase_begin", {F::str("phase", "lab.build")});
  auto laboratory = lab::Lab::create(config);
  obs::journal_event("phase_end", {F::str("phase", "lab.build")}, /*durable=*/true);
  obs::journal_event("phase_begin", {F::str("phase", "experiment." + experiment)});
  std::optional<int> rc;
  if (experiment == "table3") rc = run_table3(laboratory, csv);
  if (experiment == "fig6c") rc = run_fig6c(laboratory, csv);
  if (experiment == "causes") rc = run_causes(laboratory, csv);
  if (experiment == "stability") rc = run_stability(laboratory, csv, args);
  if (experiment == "traffic") rc = run_traffic(laboratory, csv, args);
  if (!rc) {
    std::fprintf(stderr, "unknown experiment '%s' (table3|fig6c|causes|stability|traffic)\n",
                 experiment.c_str());
    return 2;
  }
  obs::journal_event("phase_end",
                     {F::str("phase", "experiment." + experiment),
                      F::i64_field("exit_code", *rc)},
                     /*durable=*/true);
  if (obs::enabled()) {
    exec::ThreadPool::global().publish_stats();
    obs::rss_high_water_kb();
  }
  if (journal.is_open()) {
    obs::set_journal(nullptr);
    journal.close();
  }
  if (trace_out) {
    auto loaded = flight::load_journal(journal_path);
    if (!loaded) {
      std::fprintf(stderr, "trace export: %s\n", loaded.error().c_str());
      return 2;
    }
    const std::string trace = flight::chrome_trace(*loaded, obs::flight_snapshot());
    std::ofstream tf(*trace_out, std::ios::binary | std::ios::trunc);
    if (!tf) {
      std::fprintf(stderr, "cannot write %s\n", trace_out->c_str());
      return 2;
    }
    tf << trace;
    std::fprintf(stderr, "[obs] wrote %s\n", trace_out->c_str());
  }
  if (args.has("obs")) std::fprintf(stderr, "%s\n", obs::json_report().c_str());
  return *rc;
}
