// ranycast-catchment — Verfploeter-style catchment census and load report.
//
//   ranycast-catchment [--cdn imperva6|imperva-ns|edgio3|edgio4|tangled]
//                      [--region N] [--format table|csv] [--seed N]
//
// Prints each site's catchment share (fraction of client ASes it serves)
// plus load-balance metrics (Gini, peak-to-mean, effective site count).
#include <cstdio>
#include <iostream>

#include "ranycast/analysis/export.hpp"
#include "ranycast/analysis/load.hpp"
#include "ranycast/analysis/table.hpp"
#include "ranycast/cdn/catalog.hpp"
#include "ranycast/core/flags.hpp"
#include "ranycast/lab/lab.hpp"
#include "ranycast/tangled/testbed.hpp"
#include "ranycast/verfploeter/census.hpp"

using namespace ranycast;

namespace {

std::optional<cdn::DeploymentSpec> spec_by_name(const std::string& name) {
  if (name == "imperva6") return cdn::catalog::imperva6();
  if (name == "imperva-ns") return cdn::catalog::imperva_ns();
  if (name == "edgio3") return cdn::catalog::edgio3();
  if (name == "edgio4") return cdn::catalog::edgio4();
  if (name == "tangled") return tangled::global_spec();
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  const flags::Parser args(argc, argv);
  for (const auto& bad : args.unknown({"cdn", "region", "format", "seed"})) {
    std::fprintf(stderr, "unknown flag --%s\n", bad.c_str());
    return 2;
  }
  const std::string cdn_name = args.get_or("cdn", std::string("imperva6"));
  const auto spec = spec_by_name(cdn_name);
  if (!spec) {
    std::fprintf(stderr, "unknown CDN '%s'\n", cdn_name.c_str());
    return 2;
  }

  lab::LabConfig config;
  config.seed = static_cast<std::uint64_t>(args.get_or("seed", std::int64_t{2023}));
  auto laboratory = lab::Lab::create(config);
  const auto& gaz = geo::Gazetteer::world();
  const auto& handle = laboratory.add_deployment(*spec);

  const auto region = static_cast<std::size_t>(args.get_or("region", std::int64_t{0}));
  if (region >= handle.deployment.regions().size()) {
    std::fprintf(stderr, "region %zu out of range (deployment has %zu)\n", region,
                 handle.deployment.regions().size());
    return 2;
  }
  const auto census = verfploeter::full_census(laboratory, handle, region);

  std::vector<double> loads;
  const std::string format = args.get_or("format", std::string("table"));
  analysis::TextTable table({"site", "area", "client ASes", "share"});
  analysis::CsvWriter csv({"site", "area", "client_ases", "share"});
  for (const auto& [site, count] : census.by_site) {
    loads.push_back(static_cast<double>(count));
    const CityId city = handle.deployment.site(site).city;
    const std::string iata{gaz.city(city).iata};
    const std::string area{geo::to_string(gaz.area_of_city(city))};
    table.add_row({iata, area, analysis::fmt_count(count),
                   analysis::fmt_pct(census.fraction(site))});
    csv.add_row({iata, area, std::to_string(count), std::to_string(census.fraction(site))});
  }
  if (format == "csv") {
    csv.write(std::cout);
  } else {
    std::printf("%s (region %s): %zu client ASes over %zu catching sites\n\n",
                cdn_name.c_str(), handle.deployment.regions()[region].name.c_str(),
                census.total, census.by_site.size());
    std::printf("%s\n", table.render().c_str());
    std::printf("load balance: gini %.3f, peak/mean %.2f, effective sites %.1f\n",
                analysis::gini(loads), analysis::peak_to_mean(loads),
                analysis::effective_sites(loads));
  }
  return 0;
}
