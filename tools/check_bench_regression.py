#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against a committed baseline.

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json [--threshold 0.25]
                              [--filter BM_AnycastSolve] [--all]
                              [--require BM_Name ...]
                              [--assert-ratio NUM_NAME DEN_NAME MIN ...]

--assert-ratio gates a speedup *within* the current run: real_time of
NUM_NAME divided by real_time of DEN_NAME must be at least MIN. Unlike the
baseline comparison it is machine-independent (both sides ran on the same
box moments apart), so it can enforce algorithmic guarantees — e.g. the
incremental delta re-solve being >= 5x faster than the full solve:

    --assert-ratio BM_FullSiteWithdrawStep BM_DeltaSiteWithdrawStep 5

Fails (exit 1) when any benchmark matching --filter is slower than the
baseline's real_time by more than the threshold fraction. Benchmarks present
on only one side are reported but never fail the check (machines and
benchmark sets drift) — except names passed via --require (repeatable),
which must exist on both sides and are always gated: a required benchmark
that silently vanished from the suite or the baseline is itself a failure. To refresh the committed baseline after an intended
performance change:

    ./build/bench/bench_perf_engine \
        --benchmark_out=bench/BENCH_perf_engine.json --benchmark_out_format=json
"""

import argparse
import json
import sys


class BenchFileError(Exception):
    """A benchmark JSON file that cannot be gated on, with a usable message."""


def load_times(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        raise BenchFileError(
            f"{path}: cannot read benchmark file ({e.strerror or e}). "
            f"Run the benchmark with --benchmark_out={path} "
            f"--benchmark_out_format=json first.") from e
    except json.JSONDecodeError as e:
        raise BenchFileError(
            f"{path}: not valid JSON (line {e.lineno}, column {e.colno}: "
            f"{e.msg}). Was the benchmark run interrupted?") from e
    if not isinstance(doc, dict) or not isinstance(doc.get("benchmarks"), list):
        raise BenchFileError(
            f"{path}: no 'benchmarks' array — this is not google-benchmark "
            f"JSON output (--benchmark_out_format=json).")
    times = {}
    skipped = 0
    for b in doc["benchmarks"]:
        # Skip aggregate rows (mean/median/stddev) of repeated runs.
        if not isinstance(b, dict) or b.get("run_type") == "aggregate":
            continue
        try:
            times[b["name"]] = (float(b["real_time"]), b.get("time_unit", "ns"))
        except (KeyError, TypeError, ValueError):
            # Entries without a name/real_time are telemetry rows (obs
            # counters, journal samples) riding along in the same file, not
            # benchmarks — note and skip them rather than refusing the file.
            skipped += 1
    if skipped:
        print(f"      note  {path}: skipped {skipped} non-benchmark "
              f"(telemetry) entr{'y' if skipped == 1 else 'ies'}")
    return times


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="allowed slowdown fraction (default 0.25 = +25%%)")
    ap.add_argument("--filter", default="BM_AnycastSolve",
                    help="substring of benchmark names to gate on")
    ap.add_argument("--all", action="store_true",
                    help="gate on every common benchmark, not just --filter")
    ap.add_argument("--require", action="append", default=[], metavar="NAME",
                    help="benchmark name that must be present in BOTH files "
                         "and is always gated (repeatable); a missing "
                         "required benchmark fails the check instead of "
                         "being a drift note")
    ap.add_argument("--assert-ratio", action="append", default=[], nargs=3,
                    metavar=("NUM_NAME", "DEN_NAME", "MIN"),
                    help="require real_time[NUM_NAME] / real_time[DEN_NAME] "
                         ">= MIN in the CURRENT run (repeatable); both names "
                         "must be present there")
    args = ap.parse_args()

    try:
        base = load_times(args.baseline)
        cur = load_times(args.current)
    except BenchFileError as e:
        print(f"error: {e}")
        return 1

    missing = False
    for name in args.require:
        if name not in base:
            print(f"error: required benchmark '{name}' is missing from the "
                  f"baseline {args.baseline} — refresh the baseline as shown "
                  f"in --help")
            missing = True
        if name not in cur:
            print(f"error: required benchmark '{name}' is missing from the "
                  f"current run {args.current} — was it renamed or dropped "
                  f"from the suite?")
            missing = True
    if missing:
        return 1

    gated = sorted(n for n in base
                   if n in cur and (args.all or args.filter in n
                                    or n in args.require))
    if not gated:
        print(f"error: no common benchmarks match filter '{args.filter}'")
        in_base = sorted(n for n in base if args.all or args.filter in n)
        in_cur = sorted(n for n in cur if args.all or args.filter in n)
        if not in_base:
            print(f"  baseline {args.baseline} has no matching entry "
                  f"({len(base)} benchmark(s) total) — refresh it as shown "
                  f"in --help")
        if not in_cur:
            print(f"  current run {args.current} has no matching entry "
                  f"({len(cur)} benchmark(s) total)")
        return 1

    failures = []
    for name in gated:
        b_time, b_unit = base[name]
        c_time, c_unit = cur[name]
        if b_unit != c_unit:
            print(f"error: {name}: unit mismatch ({b_unit} vs {c_unit})")
            return 1
        ratio = c_time / b_time if b_time > 0 else float("inf")
        verdict = "OK"
        if ratio > 1.0 + args.threshold:
            verdict = "REGRESSION"
            failures.append(name)
        print(f"{verdict:>10}  {name}: {b_time:.3f} -> {c_time:.3f} {b_unit} "
              f"({(ratio - 1.0) * 100.0:+.1f}%)")

    for name in sorted(set(base) - set(cur)):
        print(f"      note  {name}: only in baseline")
    for name in sorted(set(cur) - set(base)):
        print(f"      note  {name}: only in current run")

    for num_name, den_name, min_str in args.assert_ratio:
        try:
            min_ratio = float(min_str)
        except ValueError:
            print(f"error: --assert-ratio minimum '{min_str}' is not a number")
            return 1
        absent = [n for n in (num_name, den_name) if n not in cur]
        if absent:
            for n in absent:
                print(f"error: --assert-ratio benchmark '{n}' is missing "
                      f"from the current run {args.current}")
            failures.append(f"{num_name}/{den_name}")
            continue
        n_time, n_unit = cur[num_name]
        d_time, d_unit = cur[den_name]
        if n_unit != d_unit:
            print(f"error: --assert-ratio unit mismatch ({num_name} in "
                  f"{n_unit}, {den_name} in {d_unit})")
            return 1
        ratio = n_time / d_time if d_time > 0 else float("inf")
        verdict = "OK" if ratio >= min_ratio else "TOO SLOW"
        print(f"{verdict:>10}  {num_name} / {den_name}: {ratio:.1f}x "
              f"(required >= {min_ratio:g}x)")
        if ratio < min_ratio:
            failures.append(f"{num_name}/{den_name}")

    if failures:
        print(f"\n{len(failures)} benchmark(s) regressed more than "
              f"{args.threshold * 100:.0f}% vs {args.baseline}")
        return 1
    print(f"\nno regression beyond {args.threshold * 100:.0f}% in "
          f"{len(gated)} gated benchmark(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
