// ranycast-chaos — run a fault-injection scenario against a deployment.
//
//   ranycast-chaos --scenario FILE [--config FILE] [--cdn NAME] [--stubs N]
//                  [--probes N] [--seed N] [--format table|json] [--out FILE]
//                  [--describe] [--obs] [--journal FILE] [--trace-out FILE]
//                  [--transient] [--mrai-ms N] [--proc-ms N] [--damping]
//                  [--dns-ttl-ms N] [--max-events N]
//                  [--traffic] [--traffic-policy spill|shed]
//                  [--traffic-capacity-mbps N] [--traffic-scale X]
//                  [--delta] [--delta-verify N] [--delta-threshold X]
//                  [--deadline SECONDS] [--stall-timeout SECONDS]
//                  [--checkpoint FILE] [--checkpoint-every K] [--checkpoint-keep K] [--resume]
//                  [--abort-after N]
//
// Loads a JSON fault plan (schema in docs/resilience.md), builds a
// laboratory, deploys the chosen CDN and applies the plan step by step,
// printing one impact row (or JSON object) per fault event. All failure
// modes — unreadable scenario, syntax error, bad field, unappliable event —
// print an actionable message to stderr and exit 2.
//
// The run is fully deterministic: the same --seed and scenario produce a
// byte-identical JSON report. --obs additionally writes BENCH_chaos.json
// telemetry (timings live there, never in the report).
//
// --transient additionally runs every step through the event-driven BGP
// convergence plane (docs/convergence.md): the report gains per-step
// blackhole windows, transient loops, interim catchment flips and the time
// to reconverge, and the table output a second "transient convergence"
// section. --mrai-ms / --proc-ms / --damping / --dns-ttl-ms / --max-events
// tune the plane's timers.
//
// --traffic runs every step through the flow-level load plane
// (docs/traffic.md): the report gains per-site utilization, shed/dropped
// flow and cascade-depth accounting, and the table output a "traffic"
// section plus the final per-site serving state. The scenario file may
// declare a "traffic" block with the full model; the flags enable it with
// defaults and override its policy / default capacity / demand scale.
//
// --delta re-solves each step through the incremental delta solver
// (docs/performance.md, "Incremental re-solve"): only the ASes the fault
// can affect re-decide, with identical reports, checkpoints and resume
// fingerprints — an optimization knob, never a semantic one.
// --delta-verify N additionally re-solves from scratch every Nth region
// resolve and compares; --delta-threshold X sets the fallback-to-full
// frontier fraction (default 0.25). Either flag implies --delta.
//
// Guard flags (docs/reliability.md) run the timeline under a supervisor:
// --deadline time-boxes the run (a truncated report is still emitted, with
// completed-vs-planned accounting, and the tool exits 3), --checkpoint
// persists progress every K steps so a killed run can be continued with
// --resume — the resumed report is byte-identical to an uninterrupted one.
// --abort-after N hard-kills the process (as SIGKILL would) after N
// completed steps; it exists for crash-recovery tests and CI.
//
// --journal FILE appends the structured NDJSON run journal (run_manifest,
// phase markers, one chaos_step per measured step, transient_window under
// --transient, checkpoint/resumed/stopped from guard), fsync'd at step
// granularity — readable up to the last completed step after SIGKILL.
// --trace-out FILE additionally converts journal + flight recorder into
// Chrome traceEvents JSON for ui.perfetto.dev (docs/observability.md);
// both flags imply --obs.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "ranycast/guard/runtime.hpp"

#include "ranycast/analysis/table.hpp"
#include "ranycast/cdn/catalog.hpp"
#include "ranycast/chaos/engine.hpp"
#include "ranycast/chaos/scenario.hpp"
#include "ranycast/core/flags.hpp"
#include "ranycast/exec/pool.hpp"
#include "ranycast/flight/flight.hpp"
#include "ranycast/io/config.hpp"
#include "ranycast/obs/flight.hpp"
#include "ranycast/obs/journal.hpp"
#include "ranycast/obs/metrics.hpp"
#include "ranycast/obs/report.hpp"
#include "ranycast/tangled/testbed.hpp"
#include "ranycast/traffic/config.hpp"

using namespace ranycast;

namespace {

std::optional<cdn::DeploymentSpec> spec_by_name(const std::string& name) {
  if (name == "imperva6") return cdn::catalog::imperva6();
  if (name == "imperva-ns") return cdn::catalog::imperva_ns();
  if (name == "edgio3") return cdn::catalog::edgio3();
  if (name == "edgio4") return cdn::catalog::edgio4();
  if (name == "tangled") return tangled::global_spec();
  return std::nullopt;
}

std::string render_transient_table(const chaos::ChaosReport& report) {
  analysis::TextTable table({"#", "event", "blackholed", "looped", "flipped", "reconv p50",
                             "reconv p90", "dark p50", "dark max", "steady", "oscill"});
  for (const converge::StepTransient& t : report.transient) {
    table.add_row({std::to_string(t.index), t.event,
                   analysis::fmt_count(t.probes_blackholed),
                   analysis::fmt_count(t.probes_looped),
                   analysis::fmt_count(t.probes_flipped),
                   analysis::fmt_ms(t.reconverge_p50_ms),
                   analysis::fmt_ms(t.reconverge_p90_ms),
                   analysis::fmt_ms(t.blackhole_p50_ms),
                   analysis::fmt_ms(t.blackhole_max_ms),
                   t.matches_steady ? "yes" : "NO",
                   t.oscillating ? "YES" : "no"});
  }
  return table.render();
}

std::string render_traffic_table(const chaos::ChaosReport& report) {
  analysis::TextTable table({"#", "event", "offered", "served", "shed", "dropped",
                             "util max", "hot", "tipped", "cascade", "q p90",
                             "p50+q"});
  for (const traffic::StepTraffic& t : report.traffic) {
    table.add_row({std::to_string(t.index), t.event,
                   analysis::fmt_ms(t.solve.offered_mbps, 0),
                   analysis::fmt_ms(t.solve.served_mbps, 0),
                   analysis::fmt_count(t.solve.flows_shed),
                   analysis::fmt_count(t.solve.flows_dropped),
                   analysis::fmt_pct(t.solve.max_utilization),
                   analysis::fmt_count(t.solve.overloaded_sites),
                   analysis::fmt_count(t.tipped_sites),
                   analysis::fmt_count(t.cascade_depth),
                   analysis::fmt_ms(t.solve.queue_delay_p90_ms, 2),
                   analysis::fmt_ms(t.inflated_p50_ms)});
  }
  return table.render();
}

/// Final serving state, one row per site. Utilization and queueing delay of
/// a zero-capacity site are undefined, not zero — rendered as `n/a`.
std::string render_site_table(const traffic::TrafficSolve& solve) {
  analysis::TextTable table({"site", "cap mbps", "offered", "served", "shed out",
                             "dropped", "util", "q delay", "hot"});
  for (std::size_t i = 0; i < solve.sites.size(); ++i) {
    const traffic::SiteLoad& s = solve.sites[i];
    const bool has_capacity = s.capacity_mbps > 0.0;
    table.add_row({std::to_string(i), analysis::fmt_ms(s.capacity_mbps, 0),
                   analysis::fmt_ms(s.offered_mbps, 0), analysis::fmt_ms(s.served_mbps, 0),
                   analysis::fmt_count(s.flows_shed_out),
                   analysis::fmt_count(s.flows_dropped),
                   has_capacity ? analysis::fmt_pct(s.utilization) : "n/a",
                   has_capacity ? analysis::fmt_ms(s.queue_delay_ms, 2) : "n/a",
                   s.overloaded ? "YES" : "no"});
  }
  return table.render();
}

std::string render_table(const chaos::ChaosReport& report) {
  analysis::TextTable table({"#", "event", "affected", "survive", "churn", "p50 before",
                             "p50 after", "in-area", "x-region", "dns-degraded",
                             "lost-pings"});
  for (const chaos::StepReport& s : report.steps) {
    table.add_row({std::to_string(s.index), s.event,
                   analysis::fmt_count(s.affected_probes),
                   analysis::fmt_pct(s.survival_rate()), analysis::fmt_pct(s.churn()),
                   analysis::fmt_ms(s.before_p50_ms), analysis::fmt_ms(s.after_p50_ms),
                   analysis::fmt_count(s.failover_in_region),
                   analysis::fmt_count(s.cross_region),
                   analysis::fmt_count(s.degraded_dns_answers),
                   analysis::fmt_count(s.lost_pings)});
  }
  return table.render();
}

}  // namespace

int main(int argc, char** argv) {
  const auto start = std::chrono::steady_clock::now();
  const flags::Parser args(argc, argv);
  for (const auto& bad : args.unknown({"scenario", "config", "cdn", "stubs", "probes",
                                       "seed", "format", "out", "describe", "obs",
                                       "journal", "trace-out",
                                       "transient", "mrai-ms", "proc-ms", "damping",
                                       "dns-ttl-ms", "max-events",
                                       "traffic", "traffic-policy",
                                       "traffic-capacity-mbps", "traffic-scale",
                                       "delta", "delta-verify", "delta-threshold",
                                       "deadline", "stall-timeout", "checkpoint",
                                       "checkpoint-every", "checkpoint-keep", "resume",
                                       "abort-after"})) {
    std::fprintf(stderr, "unknown flag --%s\n", bad.c_str());
    return 2;
  }
  const std::string format = args.get_or("format", std::string("table"));
  if (format != "table" && format != "json") {
    std::fprintf(stderr, "unknown format '%s' (table|json)\n", format.c_str());
    return 2;
  }
  const auto scenario_path = args.get("scenario");
  if (!scenario_path) {
    std::fprintf(stderr, "--scenario FILE is required\n");
    return 2;
  }
  auto scenario_json = io::load_json(*scenario_path);
  if (!scenario_json) {
    std::fprintf(stderr, "scenario error: %s\n",
                 scenario_json.error().to_string().c_str());
    return 2;
  }
  auto plan = chaos::plan_from_json(*scenario_json, *scenario_path);
  if (!plan) {
    std::fprintf(stderr, "scenario error: %s\n", plan.error().to_string().c_str());
    return 2;
  }
  auto scenario_traffic = chaos::traffic_from_scenario(*scenario_json, *scenario_path);
  if (!scenario_traffic) {
    std::fprintf(stderr, "scenario error: %s\n",
                 scenario_traffic.error().to_string().c_str());
    return 2;
  }
  std::optional<traffic::TrafficConfig> traffic_cfg = std::move(*scenario_traffic);
  const bool traffic_flags = args.has("traffic") || args.has("traffic-policy") ||
                             args.has("traffic-capacity-mbps") ||
                             args.has("traffic-scale");
  if (traffic_flags && !traffic_cfg) traffic_cfg.emplace();
  if (traffic_cfg) {
    if (const auto policy = args.get("traffic-policy")) {
      if (*policy == "spill") {
        traffic_cfg->policy = traffic::OverloadPolicy::Spill;
      } else if (*policy == "shed") {
        traffic_cfg->policy = traffic::OverloadPolicy::Shed;
      } else {
        std::fprintf(stderr, "unknown traffic policy '%s' (spill|shed)\n", policy->c_str());
        return 2;
      }
    }
    if (args.has("traffic-capacity-mbps")) {
      traffic_cfg->default_site_capacity_mbps = args.get_or("traffic-capacity-mbps", 600.0);
    }
    if (args.has("traffic-scale")) {
      traffic_cfg->demand_scale = args.get_or("traffic-scale", 1.0);
    }
    if (auto err = traffic::validate(*traffic_cfg, *scenario_path)) {
      std::fprintf(stderr, "traffic config error: %s\n", err->to_string().c_str());
      return 2;
    }
  }
  if (args.has("describe")) {
    std::printf("plan '%s' (%zu events)\n", plan->name.c_str(), plan->events.size());
    for (std::size_t i = 0; i < plan->events.size(); ++i) {
      std::printf("  %2zu  %s\n", i, chaos::describe(plan->events[i]).c_str());
    }
    return 0;
  }

  const std::string cdn_name = args.get_or("cdn", std::string("imperva6"));
  const auto spec = spec_by_name(cdn_name);
  if (!spec) {
    std::fprintf(stderr, "unknown CDN '%s'\n", cdn_name.c_str());
    return 2;
  }

  // Journal / trace export imply observability: both are useless without
  // the recorder running.
  const auto trace_out = args.get("trace-out");
  std::string journal_path = args.get_or("journal", std::string());
  if (journal_path.empty() && trace_out) journal_path = *trace_out + ".journal.ndjson";
  if (args.has("obs") || !journal_path.empty()) obs::set_enabled(true);
  obs::set_thread_name("main");
  obs::MetricsRegistry::global().set_label("tool", "ranycast-chaos");
  obs::MetricsRegistry::global().set_label("chaos.plan", plan->name);

  obs::Journal journal;
  if (!journal_path.empty()) {
    // A fresh run starts a fresh journal; --resume appends to the previous
    // attempt's (run_sweep writes the explicit resume marker).
    if (!journal.open(journal_path, /*append=*/args.has("resume"))) {
      std::fprintf(stderr, "%s\n", journal.error().c_str());
      return 2;
    }
    obs::set_journal(&journal);
  }

  lab::LabConfig config;
  if (const auto path = args.get("config")) {
    auto loaded = io::load_config(*path);
    if (!loaded) {
      std::fprintf(stderr, "config error: %s\n", loaded.error().to_string().c_str());
      return 2;
    }
    config = std::move(*loaded);
  }
  if (args.has("stubs")) {
    config.world.stub_count = static_cast<int>(args.get_or("stubs", std::int64_t{1200}));
  }
  if (args.has("probes")) {
    config.census.total_probes =
        static_cast<int>(args.get_or("probes", std::int64_t{5000}));
  }
  if (args.has("seed")) {
    config.seed = static_cast<std::uint64_t>(args.get_or("seed", std::int64_t{2023}));
  }
  if (auto err = io::validate_lab_config(config)) {
    std::fprintf(stderr, "config error: %s\n", err->to_string().c_str());
    return 2;
  }

  using F = obs::JournalField;
  obs::journal_event(
      "run_manifest",
      {F::str("tool", "ranycast-chaos"), F::str("scenario", *scenario_path),
       F::str("plan", plan->name), F::str("cdn", cdn_name),
       F::u64_field("stubs", static_cast<std::uint64_t>(config.world.stub_count)),
       F::u64_field("probes", static_cast<std::uint64_t>(config.census.total_probes)),
       F::u64_field("seed", config.seed),
       F::u64_field("planned_steps", plan->events.size()),
       F::bool_field("transient", args.has("transient")),
       F::bool_field("traffic", traffic_cfg.has_value()),
       F::bool_field("delta", args.has("delta") || args.has("delta-verify") ||
                                  args.has("delta-threshold")),
       F::bool_field("resume", args.has("resume"))},
      /*durable=*/true);

  obs::journal_event("phase_begin", {F::str("phase", "lab.build")});
  auto laboratory = lab::Lab::create(config);
  const auto& handle = laboratory.add_deployment(*spec);
  chaos::Engine engine(laboratory, handle);
  obs::journal_event("phase_end", {F::str("phase", "lab.build")}, /*durable=*/true);

  if (args.has("transient")) {
    converge::Config ccfg;
    ccfg.timers.mrai_us =
        static_cast<std::uint64_t>(args.get_or("mrai-ms", std::int64_t{5000})) * 1000;
    ccfg.timers.proc_delay_us =
        static_cast<std::uint64_t>(args.get_or("proc-ms", std::int64_t{10})) * 1000;
    ccfg.damping.enabled = args.has("damping");
    ccfg.dns_failover_us =
        static_cast<std::uint64_t>(args.get_or("dns-ttl-ms", std::int64_t{30000})) * 1000;
    ccfg.max_events = static_cast<std::uint64_t>(args.get_or("max-events", std::int64_t{0}));
    engine.enable_transient(ccfg);
  }
  if (traffic_cfg) engine.enable_traffic(*traffic_cfg);
  // --delta switches the step re-solves to the incremental solver; purely
  // an optimization, so reports/checkpoints are byte-identical either way
  // (which is exactly what tests/chaos/test_delta_soak.cpp asserts).
  if (args.has("delta") || args.has("delta-verify") || args.has("delta-threshold")) {
    bgp::DeltaConfig dcfg;
    dcfg.enabled = true;
    dcfg.verify_every =
        static_cast<std::uint32_t>(args.get_or("delta-verify", std::int64_t{0}));
    dcfg.fallback_frac = args.get_or("delta-threshold", dcfg.fallback_frac);
    engine.enable_delta(dcfg);
  }

  const bool guarded = args.has("deadline") || args.has("stall-timeout") ||
                       args.has("checkpoint") || args.has("resume");
  obs::journal_event("phase_begin", {F::str("phase", "chaos.run")});
  chaos::ChaosReport report;
  bool truncated = false;
  if (guarded) {
    guard::RunLimits limits;
    limits.deadline_s = args.get_or("deadline", 0.0);
    limits.stall_timeout_s = args.get_or("stall-timeout", 0.0);
    guard::CheckpointPolicy policy;
    policy.path = args.get_or("checkpoint", std::string());
    policy.every = static_cast<std::size_t>(args.get_or("checkpoint-every", std::int64_t{1}));
    policy.keep = static_cast<std::size_t>(args.get_or("checkpoint-keep", std::int64_t{3}));
    policy.resume = args.has("resume");
    if (policy.resume && policy.path.empty()) {
      std::fprintf(stderr, "--resume requires --checkpoint FILE\n");
      return 2;
    }
    if (args.has("abort-after")) {
      // Simulate a crash for recovery tests: no cleanup, no stream flush —
      // the checkpoint fsynced after step N is all a resume may rely on.
      const auto fatal_step = static_cast<std::size_t>(
          args.get_or("abort-after", std::int64_t{0}));
      policy.after_step = [fatal_step](std::size_t done, std::size_t) {
        if (done == fatal_step) std::_Exit(137);
      };
    }
    guard::Supervisor supervisor(limits);
    // SIGTERM/SIGINT stop the timeline cooperatively at the next step
    // boundary: the sweep flushes a final checkpoint plus the `stopped`
    // journal line and the tool exits 3 with a resumable truncated report.
    const guard::ScopedSignalCancel signal_cancel(supervisor);
    auto outcome = engine.run_guarded(*plan, supervisor, policy);
    if (!outcome) {
      std::fprintf(stderr, "chaos error: %s\n", outcome.error().c_str());
      return 2;
    }
    if (outcome->sweep.resumed) {
      std::fprintf(stderr, "[guard] resumed from %s at step %zu/%zu\n",
                   policy.path.c_str(), outcome->sweep.resumed_from,
                   outcome->sweep.total);
    }
    report = std::move(outcome->report);
    truncated = report.truncated;
    if (truncated) {
      std::fprintf(stderr, "[guard] stopped (%s): completed %zu of %zu steps\n",
                   std::string(guard::to_string(outcome->sweep.stopped)).c_str(),
                   report.completed_steps, report.planned_steps);
    }
  } else {
    auto outcome = engine.run(*plan);
    if (!outcome) {
      std::fprintf(stderr, "chaos error: %s\n", outcome.error().c_str());
      return 2;
    }
    report = std::move(*outcome);
  }
  obs::journal_event("phase_end",
                     {F::str("phase", "chaos.run"),
                      F::u64_field("completed_steps", report.completed_steps),
                      F::bool_field("truncated", truncated)},
                     /*durable=*/true);

  std::string rendered = format == "json" ? chaos::report_to_json(report).dump(2) + "\n"
                                          : render_table(report);
  if (format == "table" && !report.transient.empty()) {
    rendered += "\ntransient convergence\n" + render_transient_table(report);
  }
  if (format == "table" && !report.traffic.empty()) {
    rendered += "\ntraffic (" + std::string(traffic::to_string(traffic_cfg->policy)) +
                ")\n" + render_traffic_table(report);
    rendered += "\nfinal serving state\n" + render_site_table(report.traffic.back().solve);
  }
  if (const auto out_path = args.get("out")) {
    std::ofstream out(*out_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path->c_str());
      return 2;
    }
    out << rendered;
  } else {
    std::fputs(rendered.c_str(), stdout);
  }

  if (obs::enabled()) {
    exec::ThreadPool::global().publish_stats();
    obs::rss_high_water_kb();
  }
  if (journal.is_open()) {
    obs::set_journal(nullptr);
    journal.close();
  }
  if (trace_out) {
    auto loaded = flight::load_journal(journal_path);
    if (!loaded) {
      std::fprintf(stderr, "trace export: %s\n", loaded.error().c_str());
      return 2;
    }
    const std::string trace = flight::chrome_trace(*loaded, obs::flight_snapshot());
    std::ofstream tf(*trace_out, std::ios::binary | std::ios::trunc);
    if (!tf) {
      std::fprintf(stderr, "cannot write %s\n", trace_out->c_str());
      return 2;
    }
    tf << trace;
    std::fprintf(stderr, "[obs] wrote %s\n", trace_out->c_str());
  }

  if (obs::enabled() && args.has("obs")) {
    const double wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
            .count();
    if (obs::write_bench_report("chaos", wall_ms)) {
      std::fprintf(stderr, "[obs] wrote BENCH_chaos.json\n");
    }
  }
  return truncated ? 3 : 0;
}
