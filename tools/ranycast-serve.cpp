// ranycast-serve — the self-healing, overload-safe mapping service.
//
//   ranycast-serve drive [--scenario FILE] [--cdn NAME] [--ticks N] [--tick-ns N]
//                  [--queries-per-tick N] [--budget-us N]
//                  [--qps X] [--burst N] [--queue-depth N] [--service-us N]
//                  [--refresh-ns N] [--build-ns N]
//                  [--fresh-ns N] [--stale-ns N] [--reject-ns N] [--freeze-failures N]
//                  [--fault-intensity X] [--fault-seed N]
//                  [--config FILE] [--stubs N] [--probes N] [--seed N]
//                  [--answers FILE] [--journal FILE] [--obs]
//                  [--deadline S] [--stall-timeout S]
//                  [--checkpoint FILE] [--checkpoint-every K] [--checkpoint-keep K]
//                  [--resume] [--abort-after N] [--abort-at POINT] [--abort-epoch E]
//   ranycast-serve live  [--duration-ms N] [--threads N] [... same serve/lab knobs]
//
// drive runs the deterministic virtual-time serving core under
// guard::run_sweep: each tick advances the background refresher (snapshot
// builds over the drifting world, epoch publishes, ladder transitions) and
// answers a batch of client queries through admission control, appending
// one line per query to --answers. With --checkpoint the complete serving
// state (snapshots, ladder history, admission model, latency digest,
// world-drift cursor) persists on the cadence; a SIGKILL'd run restarted
// with --resume truncates the answers file to the last durable cursor and
// continues byte-identically — the soak in tools/ci_serve_soak.sh kills the
// process at arbitrary points (including mid-epoch-swap via --abort-at
// pre_publish/post_publish) and diffs the answer stream against an
// uninterrupted run.
//
// The world drifts one --scenario fault event per successful snapshot build
// start; --fault-intensity injects a seeded serve::FaultPlan storm (failed
// and stalled builds, slow queries, staleness-clock skew) underneath, which
// the degradation ladder (docs/serving.md) answers honestly: Fresh ->
// Stale -> Frozen -> Reject, every transition journaled durably.
//
// live drives the same core in wall-clock time: a refresher thread ticks it
// while --threads query threads hammer the query path concurrently — the
// TSan smoke for the epoch-swap (RCU pin) and admission locking.
//
// Exit codes: 0 complete, 2 usage/config error, 3 stopped early (deadline,
// stall or SIGTERM/SIGINT; resumable with --resume).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "ranycast/cdn/catalog.hpp"
#include "ranycast/chaos/scenario.hpp"
#include "ranycast/core/flags.hpp"
#include "ranycast/core/rng.hpp"
#include "ranycast/guard/runtime.hpp"
#include "ranycast/guard/sweep.hpp"
#include "ranycast/io/config.hpp"
#include "ranycast/obs/flight.hpp"
#include "ranycast/obs/journal.hpp"
#include "ranycast/obs/metrics.hpp"
#include "ranycast/serve/server.hpp"
#include "ranycast/tangled/testbed.hpp"

using namespace ranycast;

namespace {

std::optional<cdn::DeploymentSpec> spec_by_name(const std::string& name) {
  if (name == "imperva6") return cdn::catalog::imperva6();
  if (name == "imperva-ns") return cdn::catalog::imperva_ns();
  if (name == "edgio3") return cdn::catalog::edgio3();
  if (name == "edgio4") return cdn::catalog::edgio4();
  if (name == "tangled") return tangled::global_spec();
  return std::nullopt;
}

int usage() {
  std::fprintf(stderr,
               "usage: ranycast-serve drive [--scenario FILE] [--ticks N] [--checkpoint "
               "FILE] [--resume] ...\n"
               "       ranycast-serve live [--duration-ms N] [--threads N] ...\n"
               "see the header of tools/ranycast-serve.cpp for the full flag list\n");
  return 2;
}

/// Append-only answers file with an exact committed-byte counter: the byte
/// count at checkpoint time is what resume truncates back to, discarding
/// whatever a killed process appended after its last durable checkpoint.
class AnswerLog {
 public:
  bool open(const std::string& path, bool append) {
    path_ = path;
    file_ = std::fopen(path.c_str(), append ? "ab" : "wb");
    if (file_ == nullptr) return false;
    bytes_ = append ? static_cast<std::uint64_t>(std::ftell(file_)) : 0;
    return true;
  }
  bool truncate_to(std::uint64_t bytes) {
    if (file_ != nullptr) std::fclose(file_);
    if (::truncate(path_.c_str(), static_cast<off_t>(bytes)) != 0) return false;
    file_ = std::fopen(path_.c_str(), "ab");
    bytes_ = bytes;
    return file_ != nullptr;
  }
  void append(const std::string& line) {
    if (file_ == nullptr) return;
    std::fwrite(line.data(), 1, line.size(), file_);
    bytes_ += line.size();
  }
  void flush() {
    if (file_ != nullptr) std::fflush(file_);
  }
  std::uint64_t bytes() const noexcept { return bytes_; }
  bool active() const noexcept { return file_ != nullptr; }
  ~AnswerLog() {
    if (file_ != nullptr) std::fclose(file_);
  }

 private:
  std::string path_;
  std::FILE* file_{nullptr};
  std::uint64_t bytes_{0};
};

std::string render_answer(std::size_t tick, std::size_t q, const serve::QueryResult& r) {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "%zu,%zu,%s,%s,%llu,%016llx,%llu,%u,%u,%u,%.6f\n", tick, q,
                std::string(serve::to_string(r.status)).c_str(),
                std::string(serve::to_string(r.rung)).c_str(),
                static_cast<unsigned long long>(r.epoch),
                static_cast<unsigned long long>(r.fingerprint),
                static_cast<unsigned long long>(r.latency_us), r.entry.address,
                r.entry.region, r.entry.site, r.entry.rtt_ms);
  return buf;
}

struct ServeKnobs {
  serve::ServeConfig cfg;
  std::uint64_t tick_ns{100'000'000};
  std::size_t ticks{100};
  std::size_t queries_per_tick{4};
  std::uint64_t budget_us{2000};
};

ServeKnobs knobs_from_flags(const flags::Parser& args, chaos::FaultPlan world_plan,
                            std::uint64_t lab_seed) {
  ServeKnobs k;
  k.cfg.world_plan = std::move(world_plan);
  k.cfg.seed = lab_seed;
  k.cfg.refresh_interval_ns = static_cast<std::uint64_t>(
      args.get_or("refresh-ns", std::int64_t{1'000'000'000}));
  k.cfg.build_time_ns =
      static_cast<std::uint64_t>(args.get_or("build-ns", std::int64_t{200'000'000}));
  k.cfg.ladder.fresh_max_age_ns = static_cast<std::uint64_t>(
      args.get_or("fresh-ns", std::int64_t{2'000'000'000}));
  k.cfg.ladder.stale_max_age_ns = static_cast<std::uint64_t>(
      args.get_or("stale-ns", std::int64_t{5'000'000'000}));
  k.cfg.ladder.reject_after_age_ns = static_cast<std::uint64_t>(
      args.get_or("reject-ns", std::int64_t{20'000'000'000}));
  k.cfg.ladder.freeze_after_failures =
      static_cast<std::uint32_t>(args.get_or("freeze-failures", std::int64_t{3}));
  k.cfg.admission.rate_qps = args.get_or("qps", 2000.0);
  k.cfg.admission.burst = static_cast<std::uint32_t>(args.get_or("burst", std::int64_t{64}));
  k.cfg.admission.max_queue_depth =
      static_cast<std::uint32_t>(args.get_or("queue-depth", std::int64_t{32}));
  k.cfg.admission.service_time_ns =
      static_cast<std::uint64_t>(args.get_or("service-us", std::int64_t{500})) * 1000;
  k.tick_ns = static_cast<std::uint64_t>(args.get_or("tick-ns", std::int64_t{100'000'000}));
  if (k.tick_ns == 0) k.tick_ns = 1;
  k.ticks = static_cast<std::size_t>(args.get_or("ticks", std::int64_t{100}));
  k.queries_per_tick =
      static_cast<std::size_t>(args.get_or("queries-per-tick", std::int64_t{4}));
  k.budget_us = static_cast<std::uint64_t>(args.get_or("budget-us", std::int64_t{2000}));
  const double intensity = args.get_or("fault-intensity", 0.0);
  if (intensity > 0.0) {
    const auto fault_seed =
        static_cast<std::uint64_t>(args.get_or("fault-seed", std::int64_t{97}));
    k.cfg.faults = serve::FaultPlan::storm(
        fault_seed, static_cast<std::uint64_t>(k.ticks) * k.tick_ns, intensity);
  }
  return k;
}

void journal_summary(const serve::Server& server, std::size_t completed,
                     std::size_t ticks) {
  using F = obs::JournalField;
  const serve::ServeStats s = server.stats();
  obs::journal_event(
      "serve_summary",
      {F::u64_field("ticks_completed", completed), F::u64_field("ticks_planned", ticks),
       F::u64_field("queries", s.queries), F::u64_field("served", s.served),
       F::u64_field("shed_queue", s.shed_queue),
       F::u64_field("shed_deadline", s.shed_deadline),
       F::u64_field("shed_rate", s.shed_rate), F::u64_field("rejected", s.rejected),
       F::u64_field("epochs", s.epochs_published),
       F::u64_field("builds_failed", s.builds_failed),
       F::u64_field("world_events", s.world_events_applied),
       F::u64_field("p50_us", server.latency().quantile_us(0.50)),
       F::u64_field("p99_us", server.latency().quantile_us(0.99)),
       F::u64_field("ladder_transitions", server.transitions().size()),
       F::str("final_rung", std::string(serve::to_string(server.rung())))},
      /*durable=*/true);
}

void print_summary(const serve::Server& server) {
  const serve::ServeStats s = server.stats();
  std::printf("queries %llu: served %llu, shed %llu (queue %llu, deadline %llu, "
              "rate %llu), rejected %llu\n",
              static_cast<unsigned long long>(s.queries),
              static_cast<unsigned long long>(s.served),
              static_cast<unsigned long long>(s.shed_queue + s.shed_deadline + s.shed_rate),
              static_cast<unsigned long long>(s.shed_queue),
              static_cast<unsigned long long>(s.shed_deadline),
              static_cast<unsigned long long>(s.shed_rate),
              static_cast<unsigned long long>(s.rejected));
  std::printf("served latency: p50 %llu us, p99 %llu us, max %llu us\n",
              static_cast<unsigned long long>(server.latency().quantile_us(0.50)),
              static_cast<unsigned long long>(server.latency().quantile_us(0.99)),
              static_cast<unsigned long long>(server.latency().max_us()));
  std::printf("refresher: %llu epochs published, %llu builds failed, %llu world events\n",
              static_cast<unsigned long long>(s.epochs_published),
              static_cast<unsigned long long>(s.builds_failed),
              static_cast<unsigned long long>(s.world_events_applied));
  std::printf("ladder: rung %s, %zu transitions\n",
              std::string(serve::to_string(server.rung())).c_str(),
              server.transitions().size());
  for (const serve::LadderTransition& t : server.transitions()) {
    std::printf("  %12.3fms  %s -> %s (%s)\n", static_cast<double>(t.at_ns) / 1e6,
                std::string(serve::to_string(t.from)).c_str(),
                std::string(serve::to_string(t.to)).c_str(), t.reason.c_str());
  }
}

int run_drive(const flags::Parser& args, lab::Lab& laboratory,
              const lab::DeploymentHandle& handle, const ServeKnobs& knobs) {
  serve::Server server(laboratory, handle, knobs.cfg);

  AnswerLog answers;
  const std::string answers_path = args.get_or("answers", std::string());
  if (!answers_path.empty() && !answers.open(answers_path, args.has("resume"))) {
    std::fprintf(stderr, "cannot open answers file '%s'\n", answers_path.c_str());
    return 2;
  }

  if (args.has("abort-at")) {
    // Simulated SIGKILL inside the epoch swap: no cleanup, no flush — only
    // what the last checkpoint made durable may survive.
    const std::string point = args.get_or("abort-at", std::string("pre_publish"));
    const auto epoch =
        static_cast<std::uint64_t>(args.get_or("abort-epoch", std::int64_t{1}));
    server.set_crash_hook([point, epoch](std::string_view at, std::uint64_t e) {
      if (at == point && e == epoch) std::_Exit(137);
    });
  }

  guard::RunLimits limits;
  limits.deadline_s = args.get_or("deadline", 0.0);
  limits.stall_timeout_s = args.get_or("stall-timeout", 0.0);
  guard::CheckpointPolicy policy;
  policy.kind = guard::CheckpointKind::ServeState;
  policy.path = args.get_or("checkpoint", std::string());
  policy.every = static_cast<std::size_t>(args.get_or("checkpoint-every", std::int64_t{1}));
  policy.keep = static_cast<std::size_t>(args.get_or("checkpoint-keep", std::int64_t{3}));
  policy.resume = args.has("resume");
  if (policy.resume && policy.path.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint FILE\n");
    return 2;
  }
  if (args.has("abort-after")) {
    const auto fatal_step =
        static_cast<std::size_t>(args.get_or("abort-after", std::int64_t{0}));
    policy.after_step = [fatal_step](std::size_t done, std::size_t) {
      if (done == fatal_step) std::_Exit(137);
    };
  }

  guard::Supervisor supervisor(limits);
  // SIGTERM/SIGINT stop cooperatively at the next tick: final checkpoint,
  // `stopped` journal line, exit 3, resumable.
  const guard::ScopedSignalCancel signal_cancel(supervisor);

  guard::SweepHooks hooks;
  hooks.process = [&](std::size_t i) {
    const std::uint64_t tick_start_ns = static_cast<std::uint64_t>(i) * knobs.tick_ns;
    auto ticked = server.tick(tick_start_ns);
    if (!ticked) {
      std::fprintf(stderr, "serve error: %s\n", ticked.error().c_str());
      std::exit(2);
    }
    const std::uint64_t stride =
        knobs.queries_per_tick == 0 ? knobs.tick_ns
                                    : knobs.tick_ns / knobs.queries_per_tick;
    for (std::size_t q = 0; q < knobs.queries_per_tick; ++q) {
      // Client identity is a stateless hash of (seed, tick, q): resumed runs
      // regenerate the same arrivals without storing them.
      const std::uint64_t client =
          hash_combine(hash_combine(knobs.cfg.seed, i), q);
      const std::uint64_t arrival_ns = tick_start_ns + q * stride;
      const serve::QueryResult result = server.query(client, arrival_ns, knobs.budget_us);
      if (answers.active()) answers.append(render_answer(i, q, result));
    }
    // Committed before the checkpoint that records bytes(): a crash after
    // this point loses nothing, a crash before it is truncated on resume.
    answers.flush();
  };
  hooks.save = [&](guard::ByteWriter& w) {
    w.u64(answers.bytes());
    server.save(w);
  };
  hooks.load = [&](guard::ByteReader& r) {
    const std::uint64_t committed = r.u64();
    if (!r.ok() || !server.load(r)) return false;
    if (answers.active() && !answers.truncate_to(committed)) return false;
    return true;
  };

  // The identity a resume must match: the serving config and plans (via
  // Server::fingerprint) plus the drive parameters that shape the streams.
  std::uint64_t fingerprint = server.fingerprint();
  fingerprint = hash_combine(fingerprint, knobs.tick_ns);
  fingerprint = hash_combine(fingerprint, knobs.ticks);
  fingerprint = hash_combine(fingerprint, knobs.queries_per_tick);
  fingerprint = hash_combine(fingerprint, knobs.budget_us);

  auto outcome = guard::run_sweep(knobs.ticks, fingerprint, supervisor, policy, hooks);
  if (!outcome) {
    std::fprintf(stderr, "serve error: %s\n", outcome.error().to_string().c_str());
    return 2;
  }
  answers.flush();
  if (outcome->resumed) {
    std::fprintf(stderr, "[guard] resumed from %s at tick %zu/%zu\n", policy.path.c_str(),
                 outcome->resumed_from, outcome->total);
  }
  journal_summary(server, outcome->completed, knobs.ticks);
  print_summary(server);
  if (!outcome->complete()) {
    std::fprintf(stderr, "[guard] stopped (%s): completed %zu of %zu ticks\n",
                 std::string(guard::to_string(outcome->stopped)).c_str(),
                 outcome->completed, outcome->total);
    return 3;
  }
  return 0;
}

int run_live(const flags::Parser& args, lab::Lab& laboratory,
             const lab::DeploymentHandle& handle, const ServeKnobs& knobs) {
  serve::Server server(laboratory, handle, knobs.cfg);
  const auto duration_ms =
      static_cast<std::uint64_t>(args.get_or("duration-ms", std::int64_t{500}));
  const auto threads = static_cast<std::size_t>(args.get_or("threads", std::int64_t{4}));

  const auto start = std::chrono::steady_clock::now();
  const auto elapsed_ns = [start]() -> std::uint64_t {
    return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                          std::chrono::steady_clock::now() - start)
                                          .count());
  };
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> pinned_epochs{0};

  std::thread refresher([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto ticked = server.tick(elapsed_ns());
      if (!ticked) {
        std::fprintf(stderr, "serve error: %s\n", ticked.error().c_str());
        stop.store(true, std::memory_order_relaxed);
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::vector<std::thread> clients;
  clients.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      std::uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t client = hash_combine(t, n++);
        (void)server.query(client, elapsed_ns(), knobs.budget_us);
        // Exercise the RCU read side concurrently with epoch swaps.
        if (const auto snap = server.pin()) {
          pinned_epochs.fetch_add(snap->epoch != 0 ? 1 : 0, std::memory_order_relaxed);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_relaxed);
  refresher.join();
  for (std::thread& c : clients) c.join();

  journal_summary(server, 0, 0);
  print_summary(server);
  std::printf("live: %zu threads, %llu pins of a published epoch\n", threads,
              static_cast<unsigned long long>(pinned_epochs.load()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const flags::Parser args(argc, argv);
  for (const auto& bad : args.unknown(
           {"scenario", "cdn",           "ticks",          "tick-ns",
            "queries-per-tick",          "budget-us",      "qps",
            "burst",    "queue-depth",   "service-us",     "refresh-ns",
            "build-ns", "fresh-ns",      "stale-ns",       "reject-ns",
            "freeze-failures",           "fault-intensity", "fault-seed",
            "config",   "stubs",         "probes",         "seed",
            "answers",  "journal",       "obs",            "deadline",
            "stall-timeout",             "checkpoint",     "checkpoint-every",
            "checkpoint-keep",           "resume",         "abort-after",
            "abort-at", "abort-epoch",   "duration-ms",    "threads"})) {
    std::fprintf(stderr, "unknown flag --%s\n", bad.c_str());
    return 2;
  }
  if (args.positional().size() != 1) return usage();
  const std::string& command = args.positional().front();
  if (command != "drive" && command != "live") {
    std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
    return usage();
  }

  chaos::FaultPlan world_plan;
  if (const auto scenario_path = args.get("scenario")) {
    auto scenario_json = io::load_json(*scenario_path);
    if (!scenario_json) {
      std::fprintf(stderr, "scenario error: %s\n",
                   scenario_json.error().to_string().c_str());
      return 2;
    }
    auto plan = chaos::plan_from_json(*scenario_json, *scenario_path);
    if (!plan) {
      std::fprintf(stderr, "scenario error: %s\n", plan.error().to_string().c_str());
      return 2;
    }
    world_plan = std::move(*plan);
  }

  const std::string cdn_name = args.get_or("cdn", std::string("imperva6"));
  const auto spec = spec_by_name(cdn_name);
  if (!spec) {
    std::fprintf(stderr, "unknown CDN '%s'\n", cdn_name.c_str());
    return 2;
  }

  const std::string journal_path = args.get_or("journal", std::string());
  if (args.has("obs") || !journal_path.empty()) obs::set_enabled(true);
  obs::set_thread_name("main");
  obs::MetricsRegistry::global().set_label("tool", "ranycast-serve");

  obs::Journal journal;
  if (!journal_path.empty()) {
    // A fresh run starts a fresh journal; --resume appends to the previous
    // attempt's (run_sweep writes the explicit resume marker).
    if (!journal.open(journal_path, /*append=*/args.has("resume"))) {
      std::fprintf(stderr, "%s\n", journal.error().c_str());
      return 2;
    }
    obs::set_journal(&journal);
  }

  lab::LabConfig config;
  if (const auto path = args.get("config")) {
    auto loaded = io::load_config(*path);
    if (!loaded) {
      std::fprintf(stderr, "config error: %s\n", loaded.error().to_string().c_str());
      return 2;
    }
    config = std::move(*loaded);
  }
  if (args.has("stubs")) {
    config.world.stub_count = static_cast<int>(args.get_or("stubs", std::int64_t{1200}));
  }
  if (args.has("probes")) {
    config.census.total_probes =
        static_cast<int>(args.get_or("probes", std::int64_t{5000}));
  }
  if (args.has("seed")) {
    config.seed = static_cast<std::uint64_t>(args.get_or("seed", std::int64_t{2023}));
  }
  if (auto err = io::validate_lab_config(config)) {
    std::fprintf(stderr, "config error: %s\n", err->to_string().c_str());
    return 2;
  }

  const ServeKnobs knobs = knobs_from_flags(args, std::move(world_plan), config.seed);

  using F = obs::JournalField;
  obs::journal_event(
      "run_manifest",
      {F::str("tool", "ranycast-serve"), F::str("mode", command),
       F::str("cdn", cdn_name),
       F::u64_field("stubs", static_cast<std::uint64_t>(config.world.stub_count)),
       F::u64_field("probes", static_cast<std::uint64_t>(config.census.total_probes)),
       F::u64_field("seed", config.seed), F::u64_field("ticks", knobs.ticks),
       F::u64_field("tick_ns", knobs.tick_ns),
       F::u64_field("queries_per_tick", knobs.queries_per_tick),
       F::u64_field("budget_us", knobs.budget_us),
       F::u64_field("world_events", knobs.cfg.world_plan.events.size()),
       F::u64_field("serve_faults", knobs.cfg.faults.events.size()),
       F::bool_field("resume", args.has("resume"))},
      /*durable=*/true);

  obs::journal_event("phase_begin", {F::str("phase", "lab.build")});
  auto laboratory = lab::Lab::create(config);
  const auto& handle = laboratory.add_deployment(*spec);
  obs::journal_event("phase_end", {F::str("phase", "lab.build")}, /*durable=*/true);

  const int rc = command == "drive" ? run_drive(args, laboratory, handle, knobs)
                                    : run_live(args, laboratory, handle, knobs);
  if (obs::journal() != nullptr) {
    obs::journal()->sync();
    obs::set_journal(nullptr);
  }
  return rc;
}
