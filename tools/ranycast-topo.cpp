// ranycast-topo — generate a synthetic Internet and inspect it.
//
//   ranycast-topo [--seed N] [--stubs N] [--format summary|dot|csv]
//
//   summary  population and connectivity statistics (default)
//   dot      Graphviz digraph of the transit hierarchy (stubs omitted)
//   csv      one row per AS: asn,kind,home,country,international,degree
#include <cstdio>
#include <iostream>

#include "ranycast/analysis/export.hpp"
#include "ranycast/core/flags.hpp"
#include "ranycast/topo/generator.hpp"

using namespace ranycast;

namespace {

void print_summary(const topo::World& world) {
  const auto& g = world.graph;
  std::size_t tier1 = 0, transit = 0, stub = 0, intl = 0;
  std::size_t transit_edges = 0, public_peerings = 0, rs_peerings = 0;
  for (const topo::AsNode& n : g.nodes()) {
    switch (n.kind) {
      case topo::AsKind::Tier1:
        ++tier1;
        break;
      case topo::AsKind::Transit:
        ++transit;
        break;
      case topo::AsKind::Stub:
        ++stub;
        break;
    }
    if (n.international) ++intl;
    for (const topo::Edge& e : n.edges) {
      // Count each undirected link once, from the lower ASN's side.
      if (value(n.asn) > value(e.neighbor)) continue;
      switch (e.rel) {
        case topo::Rel::Customer:
        case topo::Rel::Provider:
          ++transit_edges;
          break;
        case topo::Rel::PeerPublic:
          ++public_peerings;
          break;
        case topo::Rel::PeerRouteServer:
          ++rs_peerings;
          break;
      }
    }
  }
  std::printf("ASes: %zu (tier-1 %zu, transit %zu, stub %zu; international %zu)\n",
              g.nodes().size(), tier1, transit, stub, intl);
  std::printf("links: %zu (transit %zu, public peering %zu, route-server %zu)\n",
              g.edge_count(), transit_edges, public_peerings, rs_peerings);
  std::printf("IXPs: %zu\n", g.ixps().size());
  for (const topo::Ixp& ixp : g.ixps()) {
    std::printf("  %-8s %-16s %3zu members\n", ixp.name.c_str(),
                std::string(geo::Gazetteer::world().city(ixp.city).name).c_str(),
                ixp.members.size());
  }
}

void print_dot(const topo::World& world) {
  const auto& gaz = geo::Gazetteer::world();
  std::printf("digraph internet {\n  rankdir=BT;\n");
  for (const topo::AsNode& n : world.graph.nodes()) {
    if (n.kind == topo::AsKind::Stub) continue;
    std::printf("  as%u [label=\"AS%u\\n%s\" shape=%s];\n", value(n.asn), value(n.asn),
                std::string(gaz.city(n.home_city).iata).c_str(),
                n.kind == topo::AsKind::Tier1 ? "doubleoctagon" : "box");
  }
  for (const topo::AsNode& n : world.graph.nodes()) {
    if (n.kind == topo::AsKind::Stub) continue;
    for (const topo::Edge& e : n.edges) {
      const topo::AsNode* peer = world.graph.find(e.neighbor);
      if (peer == nullptr || peer->kind == topo::AsKind::Stub) continue;
      if (e.rel == topo::Rel::Provider) {
        std::printf("  as%u -> as%u;\n", value(n.asn), value(e.neighbor));
      } else if (topo::is_peer(e.rel) && value(n.asn) < value(e.neighbor)) {
        std::printf("  as%u -> as%u [dir=none style=%s];\n", value(n.asn), value(e.neighbor),
                    e.rel == topo::Rel::PeerRouteServer ? "dotted" : "dashed");
      }
    }
  }
  std::printf("}\n");
}

void print_csv(const topo::World& world) {
  const auto& gaz = geo::Gazetteer::world();
  analysis::CsvWriter csv({"asn", "kind", "home", "country", "international", "degree"});
  for (const topo::AsNode& n : world.graph.nodes()) {
    csv.add_row({std::to_string(value(n.asn)), std::string(topo::to_string(n.kind)),
                 std::string(gaz.city(n.home_city).iata),
                 std::string(gaz.country_code(n.home_city)),
                 n.international ? "1" : "0", std::to_string(n.edges.size())});
  }
  csv.write(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const flags::Parser args(argc, argv);
  for (const auto& bad : args.unknown({"seed", "stubs", "format"})) {
    std::fprintf(stderr, "unknown flag --%s\n", bad.c_str());
    return 2;
  }
  topo::GeneratorParams params;
  params.seed = static_cast<std::uint64_t>(args.get_or("seed", std::int64_t{42}));
  params.stub_count = static_cast<int>(args.get_or("stubs", std::int64_t{2600}));
  const topo::World world = topo::generate_world(params);

  const std::string format = args.get_or("format", std::string("summary"));
  if (format == "dot") {
    print_dot(world);
  } else if (format == "csv") {
    print_csv(world);
  } else {
    print_summary(world);
  }
  return 0;
}
