// ranycast-flight — run-journal and flight-recorder forensics.
//
//   ranycast-flight export    --journal FILE [--flight FILE] --out FILE
//   ranycast-flight summarize --journal FILE
//   ranycast-flight tail      --journal FILE [--last N]
//   ranycast-flight tail      --journal FILE --follow [--poll-ms N] [--max-polls N]
//   ranycast-flight verify    [--journal FILE] [--checkpoint PATH]
//
// export converts a run journal (the NDJSON stream `ranycast-chaos
// --journal` / `ranycast-experiment --journal` write) plus an optional
// flight-recorder span dump (obs::flight_ndjson()) into Chrome traceEvents
// JSON: open the file in ui.perfetto.dev or chrome://tracing. Spans render
// as duration events on their real thread, chaos steps and blackhole
// windows as async tracks, step duration and RSS as counter tracks.
//
// summarize prints an event-type rollup, distinct chaos steps, resume
// markers and the stop reason; tail prints the last N (default 10) events.
// Both work on journals of killed runs — a cut final line is counted, not
// fatal.
//
// tail --follow streams events as a live writer appends them, polling every
// --poll-ms (default 200) for --max-polls polls (default unbounded). Only
// newline-terminated lines are consumed: a concurrently-appending writer's
// partial tail is retried on the next poll, never printed corrupt and never
// double-printed. Exits 0 when --max-polls is exhausted.
//
// verify checks integrity offline: every journal line's CRC-32 tag, and/or
// a checkpoint chain's manifest + generation files (sizes, CRCs, envelopes).
// A benign kill-cut final journal line is reported but not an error.
// Exit codes: 0 intact, 2 usage/unreadable, 4 corruption detected.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include "ranycast/core/flags.hpp"
#include "ranycast/flight/flight.hpp"
#include "ranycast/guard/chain.hpp"

using namespace ranycast;

namespace {

constexpr int kExitCorrupt = 4;

int usage() {
  std::fprintf(stderr,
               "usage: ranycast-flight export --journal FILE [--flight FILE] --out FILE\n"
               "       ranycast-flight summarize --journal FILE\n"
               "       ranycast-flight tail --journal FILE [--last N]\n"
               "       ranycast-flight tail --journal FILE --follow [--poll-ms N]"
               " [--max-polls N]\n"
               "       ranycast-flight verify [--journal FILE] [--checkpoint PATH]\n");
  return 2;
}

int run_verify(const std::optional<std::string>& journal_path,
               const std::optional<std::string>& checkpoint_path) {
  if (!journal_path && !checkpoint_path) {
    std::fprintf(stderr, "verify needs --journal and/or --checkpoint\n");
    return 2;
  }
  bool corrupt = false;

  if (journal_path) {
    auto journal = flight::load_journal(*journal_path);
    if (!journal) {
      std::fprintf(stderr, "%s\n", journal.error().c_str());
      return 2;
    }
    std::printf("journal %s: %zu events, %zu corrupt line%s, %zu malformed%s\n",
                journal_path->c_str(), journal->events.size(), journal->corrupt_lines,
                journal->corrupt_lines == 1 ? "" : "s", journal->malformed_lines,
                journal->truncated_tail ? " (kill-cut tail)" : "");
    if (journal->damaged()) corrupt = true;
  }

  if (checkpoint_path) {
    auto report = guard::chain_verify(*checkpoint_path);
    if (!report) {
      std::fprintf(stderr, "%s\n", report.error().to_string().c_str());
      return 2;
    }
    std::printf("checkpoint %s: %zu generation%s, %zu valid%s, %zu quarantined\n",
                checkpoint_path->c_str(), report->generations,
                report->generations == 1 ? "" : "s", report->valid,
                report->legacy ? " (legacy single-file)" : "", report->quarantined);
    for (const std::string& problem : report->problems) {
      std::printf("  problem: %s\n", problem.c_str());
    }
    if (!report->ok() || !report->problems.empty()) corrupt = true;
  }

  if (corrupt) {
    std::printf("verify: CORRUPT\n");
    return kExitCorrupt;
  }
  std::printf("verify: ok\n");
  return 0;
}

int run_follow(const std::string& journal_path, std::int64_t poll_ms,
               std::int64_t max_polls) {
  flight::JournalTailer tailer(journal_path);
  for (std::int64_t i = 0; max_polls <= 0 || i < max_polls; ++i) {
    if (i != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms < 1 ? 1 : poll_ms));
    }
    auto polled = tailer.poll();
    if (!polled) {
      std::fprintf(stderr, "%s\n", polled.error().c_str());
      return 2;
    }
    if (polled->rotated) std::fprintf(stderr, "journal rotated; restarting from 0\n");
    for (const flight::JournalEvent& e : polled->events) {
      std::printf("%s\n", flight::render_event(e).c_str());
    }
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const flags::Parser args(argc, argv);
  for (const auto& bad : args.unknown({"journal", "flight", "out", "last", "checkpoint",
                                       "follow", "poll-ms", "max-polls"})) {
    std::fprintf(stderr, "unknown flag --%s\n", bad.c_str());
    return 2;
  }
  if (args.positional().size() != 1) return usage();
  const std::string& command = args.positional().front();
  if (command != "export" && command != "summarize" && command != "tail" &&
      command != "verify") {
    std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
    return usage();
  }

  if (command == "verify") {
    return run_verify(args.get("journal"), args.get("checkpoint"));
  }

  const auto journal_path = args.get("journal");
  if (!journal_path) {
    std::fprintf(stderr, "--journal FILE is required\n");
    return 2;
  }
  if (command == "tail" && args.has("follow")) {
    return run_follow(*journal_path, args.get_or("poll-ms", std::int64_t{200}),
                      args.get_or("max-polls", std::int64_t{0}));
  }
  auto journal = flight::load_journal(*journal_path);
  if (!journal) {
    std::fprintf(stderr, "%s\n", journal.error().c_str());
    return 2;
  }

  if (command == "summarize") {
    std::fputs(flight::summarize(*journal).c_str(), stdout);
    return 0;
  }
  if (command == "tail") {
    const auto n = static_cast<std::size_t>(args.get_or("last", std::int64_t{10}));
    std::fputs(flight::tail(*journal, n).c_str(), stdout);
    return 0;
  }

  // export
  const auto out_path = args.get("out");
  if (!out_path) {
    std::fprintf(stderr, "export requires --out FILE\n");
    return 2;
  }
  std::vector<obs::FlightThreadSnapshot> threads;
  if (const auto flight_path = args.get("flight")) {
    auto loaded = flight::load_flight_dump(*flight_path);
    if (!loaded) {
      std::fprintf(stderr, "%s\n", loaded.error().c_str());
      return 2;
    }
    threads = std::move(*loaded);
  }
  const std::string trace = flight::chrome_trace(*journal, threads);
  std::ofstream out(*out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path->c_str());
    return 2;
  }
  out << trace;
  std::fprintf(stderr, "wrote %s (%zu journal events, %zu threads)\n", out_path->c_str(),
               journal->events.size(), threads.size());
  return 0;
}
