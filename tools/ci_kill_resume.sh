#!/usr/bin/env bash
# Kill/resume integration check for the guard runtime.
#
# Runs ranycast-chaos three ways against the same scenario and seed:
#   1. uninterrupted                          -> baseline report
#   2. checkpointing, hard-killed mid-run     -> must exit 137, leave a checkpoint
#   3. resumed from that checkpoint           -> must exit 0
# and then byte-compares the resumed report against the baseline. Also
# asserts the deadline path: an already-expired --deadline must exit 3 and
# mark the report truncated.
#
# Usage: ci_kill_resume.sh CHAOS_BINARY SCENARIO_JSON [WORKDIR]
#
# CHAOS_EXTRA_FLAGS (env, optional): extra flags appended to every chaos
# invocation — e.g. "--transient" to run the whole matrix with transient
# convergence recording, whose report section must survive kill/resume
# byte-identically too.
set -u

if [ "$#" -lt 2 ]; then
  echo "usage: $0 CHAOS_BINARY SCENARIO_JSON [WORKDIR]" >&2
  exit 2
fi

CHAOS="$1"
SCENARIO="$2"
WORKDIR="${3:-$(mktemp -d)}"
mkdir -p "$WORKDIR"

SIZING=(--stubs 400 --probes 1200 --seed 2023)
read -r -a EXTRA <<< "${CHAOS_EXTRA_FLAGS:-}"
SIZING+=(${EXTRA[@]+"${EXTRA[@]}"})
ABORT_AT=2

fail() { echo "FAIL: $*" >&2; exit 1; }

echo "== 1/4 uninterrupted baseline =="
"$CHAOS" --scenario "$SCENARIO" "${SIZING[@]}" \
  --format json --out "$WORKDIR/baseline.json" \
  || fail "baseline run exited $?"

echo "== 2/4 checkpointed run, killed after step $ABORT_AT =="
rm -f "$WORKDIR/run.ck"
"$CHAOS" --scenario "$SCENARIO" "${SIZING[@]}" \
  --format json --out "$WORKDIR/killed.json" \
  --checkpoint "$WORKDIR/run.ck" --abort-after "$ABORT_AT"
rc=$?
[ "$rc" -eq 137 ] || fail "expected the aborted run to exit 137, got $rc"
[ -s "$WORKDIR/run.ck" ] || fail "no checkpoint left behind after the kill"

echo "== 3/4 resume from the checkpoint =="
"$CHAOS" --scenario "$SCENARIO" "${SIZING[@]}" \
  --format json --out "$WORKDIR/resumed.json" \
  --checkpoint "$WORKDIR/run.ck" --resume \
  || fail "resume exited $?"

cmp "$WORKDIR/baseline.json" "$WORKDIR/resumed.json" \
  || fail "resumed report differs from the uninterrupted baseline"
echo "resumed report is byte-identical to the baseline"

echo "== 4/4 expired deadline truncates with exit 3 =="
"$CHAOS" --scenario "$SCENARIO" "${SIZING[@]}" \
  --format json --out "$WORKDIR/truncated.json" --deadline 0.000001
rc=$?
[ "$rc" -eq 3 ] || fail "expected the deadline run to exit 3, got $rc"
grep -q '"truncated": true' "$WORKDIR/truncated.json" \
  || fail "deadline report is not marked truncated"

echo "OK: kill/resume and deadline paths all check out"
