#!/usr/bin/env bash
# Kill/resume integration check for the guard runtime.
#
# Runs ranycast-chaos against the same scenario and seed:
#   1. uninterrupted                          -> baseline report
#   2. checkpointing, hard-killed mid-run     -> must exit 137, leave a checkpoint
#   3. resumed from that checkpoint           -> must exit 0
# and then byte-compares the resumed report against the baseline. Then the
# self-healing path:
#   4. a fresh kill, the NEWEST checkpoint generation corrupted in place
#      -> resume must quarantine it, fall back to the previous generation
#         and still produce a byte-identical report
# Also asserts the deadline path: an already-expired --deadline must exit 3
# and mark the report truncated.
#
# FLIGHT_BIN (env, optional): path to ranycast-flight; when set, `verify`
# runs against the corrupted chain (must exit 4) and the healthy journal
# (must exit 0).
#
# Every run also writes a run journal (--journal). When python3 is
# available the journals are validated too: the killed run's journal must
# be parseable NDJSON covering exactly the completed steps, and the resumed
# journal must carry exactly one "resumed" marker and dedup to the same
# step set as the baseline's. The resumed run additionally exports a
# Chrome trace (--trace-out) checked with check_trace.py.
#
# Usage: ci_kill_resume.sh CHAOS_BINARY SCENARIO_JSON [WORKDIR]
#
# CHAOS_EXTRA_FLAGS (env, optional): extra flags appended to every chaos
# invocation — e.g. "--transient" to run the whole matrix with transient
# convergence recording, whose report section must survive kill/resume
# byte-identically too.
set -u

if [ "$#" -lt 2 ]; then
  echo "usage: $0 CHAOS_BINARY SCENARIO_JSON [WORKDIR]" >&2
  exit 2
fi

CHAOS="$1"
SCENARIO="$2"
WORKDIR="${3:-$(mktemp -d)}"
mkdir -p "$WORKDIR"
TOOLS_DIR="$(cd "$(dirname "$0")" && pwd)"

SIZING=(--stubs 400 --probes 1200 --seed 2023)
read -r -a EXTRA <<< "${CHAOS_EXTRA_FLAGS:-}"
SIZING+=(${EXTRA[@]+"${EXTRA[@]}"})
ABORT_AT=2

fail() { echo "FAIL: $*" >&2; exit 1; }

# journal_steps FILE -> "<distinct chaos_step indexes> <resumed markers>";
# exits non-zero on any unparseable line (the journal is fsync'd at step
# granularity, so even a killed run leaves only whole lines behind).
journal_steps() {
  python3 - "$1" <<'PY'
import json, sys
steps, resumed = set(), 0
with open(sys.argv[1]) as f:
    for n, raw in enumerate(f, 1):
        raw = raw.strip()
        if not raw:
            continue
        try:
            e = json.loads(raw)
        except json.JSONDecodeError as exc:
            sys.exit(f"{sys.argv[1]}:{n}: invalid journal line: {exc}")
        if e.get("type") == "chaos_step":
            steps.add(e["index"])
        elif e.get("type") == "resumed":
            resumed += 1
print(len(steps), resumed)
PY
}

echo "== 1/5 uninterrupted baseline =="
"$CHAOS" --scenario "$SCENARIO" "${SIZING[@]}" \
  --format json --out "$WORKDIR/baseline.json" \
  --journal "$WORKDIR/baseline.ndjson" \
  || fail "baseline run exited $?"

echo "== 2/5 checkpointed run, killed after step $ABORT_AT =="
rm -f "$WORKDIR/run.ck" "$WORKDIR/run.ck.g"* "$WORKDIR/run.ndjson"
"$CHAOS" --scenario "$SCENARIO" "${SIZING[@]}" \
  --format json --out "$WORKDIR/killed.json" \
  --journal "$WORKDIR/run.ndjson" \
  --checkpoint "$WORKDIR/run.ck" --abort-after "$ABORT_AT"
rc=$?
[ "$rc" -eq 137 ] || fail "expected the aborted run to exit 137, got $rc"
[ -s "$WORKDIR/run.ck" ] || fail "no checkpoint left behind after the kill"

if command -v python3 >/dev/null 2>&1; then
  KILLED=$(journal_steps "$WORKDIR/run.ndjson") \
    || fail "killed run's journal is not valid NDJSON"
  [ "$KILLED" = "$ABORT_AT 0" ] \
    || fail "killed journal: expected '$ABORT_AT 0' (steps, resume markers), got '$KILLED'"
  echo "killed journal is valid NDJSON covering exactly $ABORT_AT completed step(s)"
fi

echo "== 3/5 resume from the checkpoint =="
"$CHAOS" --scenario "$SCENARIO" "${SIZING[@]}" \
  --format json --out "$WORKDIR/resumed.json" \
  --journal "$WORKDIR/run.ndjson" --trace-out "$WORKDIR/run.trace.json" \
  --checkpoint "$WORKDIR/run.ck" --resume \
  || fail "resume exited $?"

cmp "$WORKDIR/baseline.json" "$WORKDIR/resumed.json" \
  || fail "resumed report differs from the uninterrupted baseline"
echo "resumed report is byte-identical to the baseline"

if command -v python3 >/dev/null 2>&1; then
  BASE=$(journal_steps "$WORKDIR/baseline.ndjson") \
    || fail "baseline journal is not valid NDJSON"
  FULL=$(journal_steps "$WORKDIR/run.ndjson") \
    || fail "resumed journal is not valid NDJSON"
  [ "${BASE#* }" = "0" ] || fail "baseline journal has resume markers: $BASE"
  [ "${FULL#* }" = "1" ] \
    || fail "resumed journal: expected exactly one resume marker, got '${FULL#* }'"
  [ "${FULL%% *}" = "${BASE%% *}" ] \
    || fail "resumed journal steps (${FULL%% *}) differ from baseline (${BASE%% *})"
  echo "resumed journal carries one resume marker and the baseline's step set"
  python3 "$TOOLS_DIR/check_trace.py" "$WORKDIR/run.trace.json" \
    || fail "exported trace failed check_trace.py"
fi

echo "== 4/5 corrupt newest generation: quarantine + fallback resume =="
rm -f "$WORKDIR/run2.ck" "$WORKDIR/run2.ck.g"* "$WORKDIR/run2.ndjson"
"$CHAOS" --scenario "$SCENARIO" "${SIZING[@]}" \
  --format json --out "$WORKDIR/killed2.json" \
  --journal "$WORKDIR/run2.ndjson" \
  --checkpoint "$WORKDIR/run2.ck" --abort-after "$ABORT_AT"
rc=$?
[ "$rc" -eq 137 ] || fail "expected the second aborted run to exit 137, got $rc"

NEWEST_GEN=$(ls "$WORKDIR"/run2.ck.g* 2>/dev/null | sort -V | tail -1)
[ -n "$NEWEST_GEN" ] || fail "no checkpoint generation files found next to run2.ck"
# Flip one payload byte in place (read-modify-write, so the byte is
# guaranteed to change): the envelope CRC must catch it on resume.
cur=$(od -An -tu1 -j40 -N1 "$NEWEST_GEN" | tr -d ' ')
[ -n "$cur" ] || fail "could not read byte 40 of $NEWEST_GEN"
printf "$(printf '\\%03o' $(( (cur + 1) % 256 )))" \
  | dd of="$NEWEST_GEN" bs=1 seek=40 count=1 conv=notrunc status=none \
  || fail "could not corrupt $NEWEST_GEN"

if [ -n "${FLIGHT_BIN:-}" ]; then
  "$FLIGHT_BIN" verify --checkpoint "$WORKDIR/run2.ck"
  rc=$?
  [ "$rc" -eq 4 ] || fail "flight verify on corrupted chain: expected exit 4, got $rc"
  echo "flight verify detected the corrupted generation (exit 4)"
fi

"$CHAOS" --scenario "$SCENARIO" "${SIZING[@]}" \
  --format json --out "$WORKDIR/resumed2.json" \
  --journal "$WORKDIR/run2.ndjson" \
  --checkpoint "$WORKDIR/run2.ck" --resume \
  || fail "resume after generation corruption exited $?"

cmp "$WORKDIR/baseline.json" "$WORKDIR/resumed2.json" \
  || fail "fallback-resumed report differs from the uninterrupted baseline"
[ -s "$NEWEST_GEN.quarantined" ] \
  || fail "corrupt generation was not quarantined (expected $NEWEST_GEN.quarantined)"
grep -q '"type":"checkpoint_quarantined"' "$WORKDIR/run2.ndjson" \
  || fail "journal carries no checkpoint_quarantined marker"
echo "corrupt generation quarantined, resume fell back and matches the baseline"

if [ -n "${FLIGHT_BIN:-}" ]; then
  "$FLIGHT_BIN" verify --journal "$WORKDIR/run2.ndjson" \
    || fail "flight verify on the healthy resumed journal exited $?"
  echo "flight verify passed on the resumed journal"
fi

echo "== 5/5 expired deadline truncates with exit 3 =="
"$CHAOS" --scenario "$SCENARIO" "${SIZING[@]}" \
  --format json --out "$WORKDIR/truncated.json" --deadline 0.000001
rc=$?
[ "$rc" -eq 3 ] || fail "expected the deadline run to exit 3, got $rc"
grep -q '"truncated": true' "$WORKDIR/truncated.json" \
  || fail "deadline report is not marked truncated"

echo "OK: kill/resume and deadline paths all check out"
