// ranycast-trace — resolve, ping and traceroute a studied CDN from probes.
//
//   ranycast-trace [--cdn imperva6|imperva-ns|edgio3|edgio4|tangled]
//                  [--probe-city IATA] [--count N] [--mode ldns|adns]
//
// Prints, per probe: the regional IP DNS returned, the ping RTT, and the
// traceroute hops with owner AS and city — the paper's measurement loop as
// an interactive tool.
#include <cstdio>

#include "ranycast/cdn/catalog.hpp"
#include "ranycast/core/flags.hpp"
#include "ranycast/lab/lab.hpp"
#include "ranycast/tangled/testbed.hpp"

using namespace ranycast;

namespace {

std::optional<cdn::DeploymentSpec> spec_by_name(const std::string& name) {
  if (name == "imperva6") return cdn::catalog::imperva6();
  if (name == "imperva-ns") return cdn::catalog::imperva_ns();
  if (name == "edgio3") return cdn::catalog::edgio3();
  if (name == "edgio4") return cdn::catalog::edgio4();
  if (name == "tangled") return tangled::global_spec();
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  const flags::Parser args(argc, argv);
  for (const auto& bad : args.unknown({"cdn", "probe-city", "count", "mode", "seed"})) {
    std::fprintf(stderr, "unknown flag --%s\n", bad.c_str());
    return 2;
  }
  const std::string cdn_name = args.get_or("cdn", std::string("imperva6"));
  const auto spec = spec_by_name(cdn_name);
  if (!spec) {
    std::fprintf(stderr, "unknown CDN '%s'\n", cdn_name.c_str());
    return 2;
  }
  const auto mode = args.get_or("mode", std::string("ldns")) == "adns" ? dns::QueryMode::Adns
                                                                       : dns::QueryMode::Ldns;
  const auto count = static_cast<std::size_t>(args.get_or("count", std::int64_t{3}));

  lab::LabConfig config;
  config.seed = static_cast<std::uint64_t>(args.get_or("seed", std::int64_t{2023}));
  auto laboratory = lab::Lab::create(config);
  const auto& gaz = geo::Gazetteer::world();
  const auto& handle = laboratory.add_deployment(*spec);

  std::optional<CityId> filter;
  if (const auto city = args.get("probe-city")) {
    filter = gaz.find_by_iata(*city);
    if (!filter) {
      std::fprintf(stderr, "unknown city '%s'\n", city->c_str());
      return 2;
    }
  }

  std::size_t shown = 0;
  for (const atlas::Probe* p : laboratory.census().retained()) {
    if (filter && p->city != *filter) continue;
    const auto answer = laboratory.dns_lookup(*p, handle, mode);
    const auto rtt = laboratory.ping(*p, answer.address);
    std::printf("probe %u @%s AS%u resolver=%s\n", value(p->id),
                std::string(gaz.city(p->city).iata).c_str(), value(p->asn),
                std::string(dns::to_string(p->resolver.kind)).c_str());
    std::printf("  %s -> %s (region %s), rtt %s\n", cdn_name.c_str(),
                answer.address.to_string().c_str(),
                handle.deployment.regions()[answer.region].name.c_str(),
                rtt ? (std::to_string(rtt->ms).substr(0, 5) + " ms").c_str() : "unreachable");
    if (const auto trace = laboratory.traceroute(*p, answer.address)) {
      for (std::size_t h = 0; h < trace->hops.size(); ++h) {
        const auto& hop = trace->hops[h];
        std::printf("  %2zu  %-15s AS%-6u %-4s %6.1f ms%s\n", h + 1,
                    hop.ip.to_string().c_str(), value(hop.owner),
                    std::string(gaz.city(hop.city).iata).c_str(), hop.rtt.ms,
                    h + 1 == trace->hops.size()
                        ? (trace->phop_valid ? "  <- p-hop" : "  <- p-hop (no reply)")
                        : "");
      }
    }
    if (++shown >= count) break;
  }
  if (shown == 0) std::fprintf(stderr, "no matching probes\n");
  return shown == 0 ? 1 : 0;
}
