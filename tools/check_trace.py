#!/usr/bin/env python3
"""Schema check for exported Chrome traceEvents JSON.

Usage: check_trace.py TRACE.json [--min-events N]

Validates what Perfetto / chrome://tracing silently tolerate but we do not:

  * the document is an object with a "traceEvents" array
  * every event has "ph", "ts", "pid" and "tid" fields of the right type
  * "X" complete events carry a non-negative "dur"
  * async "b"/"e" events are balanced per (cat, id): every begin has an end,
    every end a begin, and no end precedes its begin in file order

Exits 0 when the trace is well-formed, 1 with a diagnostic otherwise.
"""

import argparse
import json
import sys

KNOWN_PHASES = {"B", "E", "X", "i", "I", "C", "b", "e", "n", "s", "t", "f", "M"}


def fail(message):
    print(f"check_trace: {message}", file=sys.stderr)
    return 1


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace")
    parser.add_argument("--min-events", type=int, default=1,
                        help="require at least this many events (default 1)")
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        return fail(f"{args.trace}: {exc}")

    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return fail(f"{args.trace}: expected an object with a 'traceEvents' array")
    events = doc["traceEvents"]
    if len(events) < args.min_events:
        return fail(f"{args.trace}: {len(events)} events, expected >= {args.min_events}")

    open_async = {}  # (cat, id) -> open begin count
    for n, e in enumerate(events):
        where = f"{args.trace}: event {n}"
        if not isinstance(e, dict):
            return fail(f"{where}: not an object")
        ph = e.get("ph")
        if not isinstance(ph, str) or ph not in KNOWN_PHASES:
            return fail(f"{where}: bad or missing 'ph' ({ph!r})")
        for key in ("ts", "pid", "tid"):
            if not isinstance(e.get(key), (int, float)) or isinstance(e.get(key), bool):
                return fail(f"{where}: bad or missing '{key}' ({e.get(key)!r})")
        if not isinstance(e.get("name"), str):
            return fail(f"{where}: bad or missing 'name'")
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool) or dur < 0:
                return fail(f"{where}: 'X' event needs a non-negative 'dur' ({dur!r})")
        if ph in ("b", "e"):
            if "id" not in e:
                return fail(f"{where}: async '{ph}' event has no 'id'")
            key = (e.get("cat"), e["id"])
            if ph == "b":
                open_async[key] = open_async.get(key, 0) + 1
            else:
                if open_async.get(key, 0) == 0:
                    return fail(f"{where}: async 'e' for {key} precedes its 'b'")
                open_async[key] -= 1

    unbalanced = {k: v for k, v in open_async.items() if v != 0}
    if unbalanced:
        return fail(f"{args.trace}: unbalanced async events: {unbalanced}")

    counts = {}
    for e in events:
        counts[e["ph"]] = counts.get(e["ph"], 0) + 1
    summary = ", ".join(f"{ph}:{n}" for ph, n in sorted(counts.items()))
    print(f"check_trace: {args.trace} OK ({len(events)} events; {summary})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
