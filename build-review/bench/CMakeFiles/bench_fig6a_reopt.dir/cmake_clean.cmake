file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6a_reopt.dir/bench_fig6a_reopt.cpp.o"
  "CMakeFiles/bench_fig6a_reopt.dir/bench_fig6a_reopt.cpp.o.d"
  "bench_fig6a_reopt"
  "bench_fig6a_reopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6a_reopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
