file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_hostnames.dir/bench_table6_hostnames.cpp.o"
  "CMakeFiles/bench_table6_hostnames.dir/bench_table6_hostnames.cpp.o.d"
  "bench_table6_hostnames"
  "bench_table6_hostnames.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_hostnames.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
