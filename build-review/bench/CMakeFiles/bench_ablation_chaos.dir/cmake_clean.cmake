file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_chaos.dir/bench_ablation_chaos.cpp.o"
  "CMakeFiles/bench_ablation_chaos.dir/bench_ablation_chaos.cpp.o.d"
  "bench_ablation_chaos"
  "bench_ablation_chaos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_chaos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
