# Empty dependencies file for bench_ablation_chaos.
# This may be replaced when dependencies are built.
