# Empty dependencies file for bench_fig3_geoloc.
# This may be replaced when dependencies are built.
