file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_geoloc.dir/bench_fig3_geoloc.cpp.o"
  "CMakeFiles/bench_fig3_geoloc.dir/bench_fig3_geoloc.cpp.o.d"
  "bench_fig3_geoloc"
  "bench_fig3_geoloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_geoloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
