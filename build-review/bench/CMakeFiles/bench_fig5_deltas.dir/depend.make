# Empty dependencies file for bench_fig5_deltas.
# This may be replaced when dependencies are built.
