file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_deltas.dir/bench_fig5_deltas.cpp.o"
  "CMakeFiles/bench_fig5_deltas.dir/bench_fig5_deltas.cpp.o.d"
  "bench_fig5_deltas"
  "bench_fig5_deltas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_deltas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
