# Empty compiler generated dependencies file for bench_fig8_same_site.
# This may be replaced when dependencies are built.
