file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_same_site.dir/bench_fig8_same_site.cpp.o"
  "CMakeFiles/bench_fig8_same_site.dir/bench_fig8_same_site.cpp.o.d"
  "bench_fig8_same_site"
  "bench_fig8_same_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_same_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
