# Empty dependencies file for bench_sec54_causes.
# This may be replaced when dependencies are built.
