file(REMOVE_RECURSE
  "CMakeFiles/bench_sec54_causes.dir/bench_sec54_causes.cpp.o"
  "CMakeFiles/bench_sec54_causes.dir/bench_sec54_causes.cpp.o.d"
  "bench_sec54_causes"
  "bench_sec54_causes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec54_causes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
