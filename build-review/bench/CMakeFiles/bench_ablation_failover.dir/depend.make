# Empty dependencies file for bench_ablation_failover.
# This may be replaced when dependencies are built.
