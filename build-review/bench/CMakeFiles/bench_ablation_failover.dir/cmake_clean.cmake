file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_failover.dir/bench_ablation_failover.cpp.o"
  "CMakeFiles/bench_ablation_failover.dir/bench_ablation_failover.cpp.o.d"
  "bench_ablation_failover"
  "bench_ablation_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
