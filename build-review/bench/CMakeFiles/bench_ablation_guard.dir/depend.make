# Empty dependencies file for bench_ablation_guard.
# This may be replaced when dependencies are built.
