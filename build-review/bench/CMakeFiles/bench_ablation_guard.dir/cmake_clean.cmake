file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_guard.dir/bench_ablation_guard.cpp.o"
  "CMakeFiles/bench_ablation_guard.dir/bench_ablation_guard.cpp.o.d"
  "bench_ablation_guard"
  "bench_ablation_guard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_guard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
