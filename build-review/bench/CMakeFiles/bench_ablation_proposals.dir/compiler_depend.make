# Empty compiler generated dependencies file for bench_ablation_proposals.
# This may be replaced when dependencies are built.
