file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_proposals.dir/bench_ablation_proposals.cpp.o"
  "CMakeFiles/bench_ablation_proposals.dir/bench_ablation_proposals.cpp.o.d"
  "bench_ablation_proposals"
  "bench_ablation_proposals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_proposals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
