# Empty dependencies file for bench_fig6b_route53.
# This may be replaced when dependencies are built.
