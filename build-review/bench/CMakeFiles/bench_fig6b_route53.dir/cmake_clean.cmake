file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6b_route53.dir/bench_fig6b_route53.cpp.o"
  "CMakeFiles/bench_fig6b_route53.dir/bench_fig6b_route53.cpp.o.d"
  "bench_fig6b_route53"
  "bench_fig6b_route53.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6b_route53.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
