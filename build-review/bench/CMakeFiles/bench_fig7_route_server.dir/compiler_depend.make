# Empty compiler generated dependencies file for bench_fig7_route_server.
# This may be replaced when dependencies are built.
