file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_route_server.dir/bench_fig7_route_server.cpp.o"
  "CMakeFiles/bench_fig7_route_server.dir/bench_fig7_route_server.cpp.o.d"
  "bench_fig7_route_server"
  "bench_fig7_route_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_route_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
