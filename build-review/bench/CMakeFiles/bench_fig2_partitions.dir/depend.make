# Empty dependencies file for bench_fig2_partitions.
# This may be replaced when dependencies are built.
