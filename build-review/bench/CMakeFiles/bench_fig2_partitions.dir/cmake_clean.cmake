file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_partitions.dir/bench_fig2_partitions.cpp.o"
  "CMakeFiles/bench_fig2_partitions.dir/bench_fig2_partitions.cpp.o.d"
  "bench_fig2_partitions"
  "bench_fig2_partitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_partitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
