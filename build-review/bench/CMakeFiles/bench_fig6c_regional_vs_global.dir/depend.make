# Empty dependencies file for bench_fig6c_regional_vs_global.
# This may be replaced when dependencies are built.
