file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_sites.dir/bench_table1_sites.cpp.o"
  "CMakeFiles/bench_table1_sites.dir/bench_table1_sites.cpp.o.d"
  "bench_table1_sites"
  "bench_table1_sites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_sites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
