# Empty dependencies file for bench_table1_sites.
# This may be replaced when dependencies are built.
