file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_engine.dir/bench_perf_engine.cpp.o"
  "CMakeFiles/bench_perf_engine.dir/bench_perf_engine.cpp.o.d"
  "bench_perf_engine"
  "bench_perf_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
