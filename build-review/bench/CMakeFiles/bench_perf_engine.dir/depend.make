# Empty dependencies file for bench_perf_engine.
# This may be replaced when dependencies are built.
