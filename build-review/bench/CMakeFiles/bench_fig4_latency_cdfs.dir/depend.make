# Empty dependencies file for bench_fig4_latency_cdfs.
# This may be replaced when dependencies are built.
