file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_latency_cdfs.dir/bench_fig4_latency_cdfs.cpp.o"
  "CMakeFiles/bench_fig4_latency_cdfs.dir/bench_fig4_latency_cdfs.cpp.o.d"
  "bench_fig4_latency_cdfs"
  "bench_fig4_latency_cdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_latency_cdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
