# Empty dependencies file for bench_table5_cdn_survey.
# This may be replaced when dependencies are built.
