file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_cdn_survey.dir/bench_table5_cdn_survey.cpp.o"
  "CMakeFiles/bench_table5_cdn_survey.dir/bench_table5_cdn_survey.cpp.o.d"
  "bench_table5_cdn_survey"
  "bench_table5_cdn_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_cdn_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
