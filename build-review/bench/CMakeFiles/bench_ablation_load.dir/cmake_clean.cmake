file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_load.dir/bench_ablation_load.cpp.o"
  "CMakeFiles/bench_ablation_load.dir/bench_ablation_load.cpp.o.d"
  "bench_ablation_load"
  "bench_ablation_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
