# Empty dependencies file for bench_ablation_load.
# This may be replaced when dependencies are built.
