# Empty dependencies file for bench_ablation_sensitivity.
# This may be replaced when dependencies are built.
