file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_enumeration.dir/bench_ablation_enumeration.cpp.o"
  "CMakeFiles/bench_ablation_enumeration.dir/bench_ablation_enumeration.cpp.o.d"
  "bench_ablation_enumeration"
  "bench_ablation_enumeration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_enumeration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
