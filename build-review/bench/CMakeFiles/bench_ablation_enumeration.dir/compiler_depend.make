# Empty compiler generated dependencies file for bench_ablation_enumeration.
# This may be replaced when dependencies are built.
