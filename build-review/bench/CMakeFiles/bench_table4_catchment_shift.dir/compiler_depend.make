# Empty compiler generated dependencies file for bench_table4_catchment_shift.
# This may be replaced when dependencies are built.
