file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_catchment_shift.dir/bench_table4_catchment_shift.cpp.o"
  "CMakeFiles/bench_table4_catchment_shift.dir/bench_table4_catchment_shift.cpp.o.d"
  "bench_table4_catchment_shift"
  "bench_table4_catchment_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_catchment_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
