file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ipasn.dir/bench_ablation_ipasn.cpp.o"
  "CMakeFiles/bench_ablation_ipasn.dir/bench_ablation_ipasn.cpp.o.d"
  "bench_ablation_ipasn"
  "bench_ablation_ipasn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ipasn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
