# Empty dependencies file for bench_ablation_ipasn.
# This may be replaced when dependencies are built.
