# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/test_core[1]_include.cmake")
include("/root/repo/build-review/tests/test_geo[1]_include.cmake")
include("/root/repo/build-review/tests/test_exec[1]_include.cmake")
include("/root/repo/build-review/tests/test_guard[1]_include.cmake")
include("/root/repo/build-review/tests/test_topo[1]_include.cmake")
include("/root/repo/build-review/tests/test_bgp[1]_include.cmake")
include("/root/repo/build-review/tests/test_dns[1]_include.cmake")
include("/root/repo/build-review/tests/test_cdn[1]_include.cmake")
include("/root/repo/build-review/tests/test_atlas[1]_include.cmake")
include("/root/repo/build-review/tests/test_analysis[1]_include.cmake")
include("/root/repo/build-review/tests/test_geoloc[1]_include.cmake")
include("/root/repo/build-review/tests/test_partition[1]_include.cmake")
include("/root/repo/build-review/tests/test_tangled[1]_include.cmake")
include("/root/repo/build-review/tests/test_lab[1]_include.cmake")
include("/root/repo/build-review/tests/test_integration[1]_include.cmake")
include("/root/repo/build-review/tests/test_bgpdata[1]_include.cmake")
include("/root/repo/build-review/tests/test_proposals[1]_include.cmake")
include("/root/repo/build-review/tests/test_resilience[1]_include.cmake")
include("/root/repo/build-review/tests/test_verfploeter[1]_include.cmake")
include("/root/repo/build-review/tests/test_io[1]_include.cmake")
include("/root/repo/build-review/tests/test_chaos[1]_include.cmake")
include("/root/repo/build-review/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build-review/tests/test_obs[1]_include.cmake")
include("/root/repo/build-review/tests/test_properties[1]_include.cmake")
