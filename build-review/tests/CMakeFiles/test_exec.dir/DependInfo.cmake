
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/exec/test_cancel.cpp" "tests/CMakeFiles/test_exec.dir/exec/test_cancel.cpp.o" "gcc" "tests/CMakeFiles/test_exec.dir/exec/test_cancel.cpp.o.d"
  "/root/repo/tests/exec/test_pool.cpp" "tests/CMakeFiles/test_exec.dir/exec/test_pool.cpp.o" "gcc" "tests/CMakeFiles/test_exec.dir/exec/test_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/lab/CMakeFiles/ranycast_lab.dir/DependInfo.cmake"
  "/root/repo/build-review/src/geoloc/CMakeFiles/ranycast_geoloc.dir/DependInfo.cmake"
  "/root/repo/build-review/src/analysis/CMakeFiles/ranycast_analysis.dir/DependInfo.cmake"
  "/root/repo/build-review/src/partition/CMakeFiles/ranycast_partition.dir/DependInfo.cmake"
  "/root/repo/build-review/src/tangled/CMakeFiles/ranycast_tangled.dir/DependInfo.cmake"
  "/root/repo/build-review/src/exec/CMakeFiles/ranycast_exec.dir/DependInfo.cmake"
  "/root/repo/build-review/src/atlas/CMakeFiles/ranycast_atlas.dir/DependInfo.cmake"
  "/root/repo/build-review/src/cdn/CMakeFiles/ranycast_cdn.dir/DependInfo.cmake"
  "/root/repo/build-review/src/bgp/CMakeFiles/ranycast_bgp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dns/CMakeFiles/ranycast_dns.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/ranycast_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/topo/CMakeFiles/ranycast_topo.dir/DependInfo.cmake"
  "/root/repo/build-review/src/geo/CMakeFiles/ranycast_geo.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/ranycast_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
