file(REMOVE_RECURSE
  "CMakeFiles/test_chaos.dir/chaos/test_determinism.cpp.o"
  "CMakeFiles/test_chaos.dir/chaos/test_determinism.cpp.o.d"
  "CMakeFiles/test_chaos.dir/chaos/test_engine.cpp.o"
  "CMakeFiles/test_chaos.dir/chaos/test_engine.cpp.o.d"
  "CMakeFiles/test_chaos.dir/chaos/test_equivalence.cpp.o"
  "CMakeFiles/test_chaos.dir/chaos/test_equivalence.cpp.o.d"
  "CMakeFiles/test_chaos.dir/chaos/test_guard_resume.cpp.o"
  "CMakeFiles/test_chaos.dir/chaos/test_guard_resume.cpp.o.d"
  "CMakeFiles/test_chaos.dir/chaos/test_scenario.cpp.o"
  "CMakeFiles/test_chaos.dir/chaos/test_scenario.cpp.o.d"
  "CMakeFiles/test_chaos.dir/chaos/test_thread_determinism.cpp.o"
  "CMakeFiles/test_chaos.dir/chaos/test_thread_determinism.cpp.o.d"
  "test_chaos"
  "test_chaos.pdb"
  "test_chaos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chaos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
