file(REMOVE_RECURSE
  "CMakeFiles/test_bgpdata.dir/bgpdata/test_prefix_trie.cpp.o"
  "CMakeFiles/test_bgpdata.dir/bgpdata/test_prefix_trie.cpp.o.d"
  "CMakeFiles/test_bgpdata.dir/bgpdata/test_rib_snapshot.cpp.o"
  "CMakeFiles/test_bgpdata.dir/bgpdata/test_rib_snapshot.cpp.o.d"
  "test_bgpdata"
  "test_bgpdata.pdb"
  "test_bgpdata[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bgpdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
