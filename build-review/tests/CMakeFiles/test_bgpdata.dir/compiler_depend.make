# Empty compiler generated dependencies file for test_bgpdata.
# This may be replaced when dependencies are built.
