# Empty dependencies file for test_lab.
# This may be replaced when dependencies are built.
