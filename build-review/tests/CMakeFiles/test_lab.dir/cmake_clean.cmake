file(REMOVE_RECURSE
  "CMakeFiles/test_lab.dir/lab/test_batch_measurements.cpp.o"
  "CMakeFiles/test_lab.dir/lab/test_batch_measurements.cpp.o.d"
  "CMakeFiles/test_lab.dir/lab/test_comparison.cpp.o"
  "CMakeFiles/test_lab.dir/lab/test_comparison.cpp.o.d"
  "CMakeFiles/test_lab.dir/lab/test_lab.cpp.o"
  "CMakeFiles/test_lab.dir/lab/test_lab.cpp.o.d"
  "test_lab"
  "test_lab.pdb"
  "test_lab[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
