file(REMOVE_RECURSE
  "CMakeFiles/test_proposals.dir/proposals/test_anyopt.cpp.o"
  "CMakeFiles/test_proposals.dir/proposals/test_anyopt.cpp.o.d"
  "CMakeFiles/test_proposals.dir/proposals/test_dailycatch.cpp.o"
  "CMakeFiles/test_proposals.dir/proposals/test_dailycatch.cpp.o.d"
  "CMakeFiles/test_proposals.dir/proposals/test_single_provider.cpp.o"
  "CMakeFiles/test_proposals.dir/proposals/test_single_provider.cpp.o.d"
  "test_proposals"
  "test_proposals.pdb"
  "test_proposals[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proposals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
