# Empty dependencies file for test_proposals.
# This may be replaced when dependencies are built.
