file(REMOVE_RECURSE
  "CMakeFiles/test_dns.dir/dns/test_geo_database.cpp.o"
  "CMakeFiles/test_dns.dir/dns/test_geo_database.cpp.o.d"
  "CMakeFiles/test_dns.dir/dns/test_resolver.cpp.o"
  "CMakeFiles/test_dns.dir/dns/test_resolver.cpp.o.d"
  "CMakeFiles/test_dns.dir/dns/test_route53.cpp.o"
  "CMakeFiles/test_dns.dir/dns/test_route53.cpp.o.d"
  "test_dns"
  "test_dns.pdb"
  "test_dns[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
