file(REMOVE_RECURSE
  "CMakeFiles/test_cdn.dir/cdn/test_builder.cpp.o"
  "CMakeFiles/test_cdn.dir/cdn/test_builder.cpp.o.d"
  "CMakeFiles/test_cdn.dir/cdn/test_catalog.cpp.o"
  "CMakeFiles/test_cdn.dir/cdn/test_catalog.cpp.o.d"
  "CMakeFiles/test_cdn.dir/cdn/test_deployment.cpp.o"
  "CMakeFiles/test_cdn.dir/cdn/test_deployment.cpp.o.d"
  "CMakeFiles/test_cdn.dir/cdn/test_survey.cpp.o"
  "CMakeFiles/test_cdn.dir/cdn/test_survey.cpp.o.d"
  "test_cdn"
  "test_cdn.pdb"
  "test_cdn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
