# Empty dependencies file for test_guard.
# This may be replaced when dependencies are built.
