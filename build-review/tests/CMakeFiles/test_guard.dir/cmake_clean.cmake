file(REMOVE_RECURSE
  "CMakeFiles/test_guard.dir/guard/test_checkpoint.cpp.o"
  "CMakeFiles/test_guard.dir/guard/test_checkpoint.cpp.o.d"
  "CMakeFiles/test_guard.dir/guard/test_runtime.cpp.o"
  "CMakeFiles/test_guard.dir/guard/test_runtime.cpp.o.d"
  "test_guard"
  "test_guard.pdb"
  "test_guard[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_guard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
