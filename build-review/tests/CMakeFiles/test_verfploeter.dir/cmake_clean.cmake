file(REMOVE_RECURSE
  "CMakeFiles/test_verfploeter.dir/verfploeter/test_census.cpp.o"
  "CMakeFiles/test_verfploeter.dir/verfploeter/test_census.cpp.o.d"
  "test_verfploeter"
  "test_verfploeter.pdb"
  "test_verfploeter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_verfploeter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
