# Empty dependencies file for test_verfploeter.
# This may be replaced when dependencies are built.
