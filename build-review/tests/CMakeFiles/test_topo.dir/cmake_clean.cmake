file(REMOVE_RECURSE
  "CMakeFiles/test_topo.dir/topo/test_generator.cpp.o"
  "CMakeFiles/test_topo.dir/topo/test_generator.cpp.o.d"
  "CMakeFiles/test_topo.dir/topo/test_graph.cpp.o"
  "CMakeFiles/test_topo.dir/topo/test_graph.cpp.o.d"
  "CMakeFiles/test_topo.dir/topo/test_ip_registry.cpp.o"
  "CMakeFiles/test_topo.dir/topo/test_ip_registry.cpp.o.d"
  "test_topo"
  "test_topo.pdb"
  "test_topo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
