file(REMOVE_RECURSE
  "CMakeFiles/test_geo.dir/geo/test_earth.cpp.o"
  "CMakeFiles/test_geo.dir/geo/test_earth.cpp.o.d"
  "CMakeFiles/test_geo.dir/geo/test_gazetteer.cpp.o"
  "CMakeFiles/test_geo.dir/geo/test_gazetteer.cpp.o.d"
  "test_geo"
  "test_geo.pdb"
  "test_geo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
