# Empty compiler generated dependencies file for test_geoloc.
# This may be replaced when dependencies are built.
