file(REMOVE_RECURSE
  "CMakeFiles/test_geoloc.dir/geoloc/test_igreedy.cpp.o"
  "CMakeFiles/test_geoloc.dir/geoloc/test_igreedy.cpp.o.d"
  "CMakeFiles/test_geoloc.dir/geoloc/test_pipeline.cpp.o"
  "CMakeFiles/test_geoloc.dir/geoloc/test_pipeline.cpp.o.d"
  "CMakeFiles/test_geoloc.dir/geoloc/test_rdns.cpp.o"
  "CMakeFiles/test_geoloc.dir/geoloc/test_rdns.cpp.o.d"
  "test_geoloc"
  "test_geoloc.pdb"
  "test_geoloc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geoloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
