# Empty dependencies file for test_tangled.
# This may be replaced when dependencies are built.
