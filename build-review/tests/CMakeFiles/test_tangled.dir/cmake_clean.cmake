file(REMOVE_RECURSE
  "CMakeFiles/test_tangled.dir/tangled/test_study.cpp.o"
  "CMakeFiles/test_tangled.dir/tangled/test_study.cpp.o.d"
  "CMakeFiles/test_tangled.dir/tangled/test_testbed.cpp.o"
  "CMakeFiles/test_tangled.dir/tangled/test_testbed.cpp.o.d"
  "test_tangled"
  "test_tangled.pdb"
  "test_tangled[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tangled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
