# Empty dependencies file for test_atlas.
# This may be replaced when dependencies are built.
