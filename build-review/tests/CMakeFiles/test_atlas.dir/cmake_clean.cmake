file(REMOVE_RECURSE
  "CMakeFiles/test_atlas.dir/atlas/test_census.cpp.o"
  "CMakeFiles/test_atlas.dir/atlas/test_census.cpp.o.d"
  "CMakeFiles/test_atlas.dir/atlas/test_grouping.cpp.o"
  "CMakeFiles/test_atlas.dir/atlas/test_grouping.cpp.o.d"
  "test_atlas"
  "test_atlas.pdb"
  "test_atlas[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_atlas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
