file(REMOVE_RECURSE
  "CMakeFiles/test_bgp.dir/bgp/test_case_studies.cpp.o"
  "CMakeFiles/test_bgp.dir/bgp/test_case_studies.cpp.o.d"
  "CMakeFiles/test_bgp.dir/bgp/test_path_metrics.cpp.o"
  "CMakeFiles/test_bgp.dir/bgp/test_path_metrics.cpp.o.d"
  "CMakeFiles/test_bgp.dir/bgp/test_solver.cpp.o"
  "CMakeFiles/test_bgp.dir/bgp/test_solver.cpp.o.d"
  "CMakeFiles/test_bgp.dir/bgp/test_solver_advanced.cpp.o"
  "CMakeFiles/test_bgp.dir/bgp/test_solver_advanced.cpp.o.d"
  "test_bgp"
  "test_bgp.pdb"
  "test_bgp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
