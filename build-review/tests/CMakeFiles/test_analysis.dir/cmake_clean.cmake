file(REMOVE_RECURSE
  "CMakeFiles/test_analysis.dir/analysis/test_ascii_map.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_ascii_map.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_classify.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_classify.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_export_load.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_export_load.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_stats.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_stats.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_table.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_table.cpp.o.d"
  "test_analysis"
  "test_analysis.pdb"
  "test_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
