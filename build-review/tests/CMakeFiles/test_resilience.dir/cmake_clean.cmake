file(REMOVE_RECURSE
  "CMakeFiles/test_resilience.dir/resilience/test_failover.cpp.o"
  "CMakeFiles/test_resilience.dir/resilience/test_failover.cpp.o.d"
  "CMakeFiles/test_resilience.dir/resilience/test_stability.cpp.o"
  "CMakeFiles/test_resilience.dir/resilience/test_stability.cpp.o.d"
  "CMakeFiles/test_resilience.dir/resilience/test_stability_guarded.cpp.o"
  "CMakeFiles/test_resilience.dir/resilience/test_stability_guarded.cpp.o.d"
  "test_resilience"
  "test_resilience.pdb"
  "test_resilience[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
