file(REMOVE_RECURSE
  "CMakeFiles/ranycast-chaos.dir/ranycast-chaos.cpp.o"
  "CMakeFiles/ranycast-chaos.dir/ranycast-chaos.cpp.o.d"
  "ranycast-chaos"
  "ranycast-chaos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranycast-chaos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
