# Empty compiler generated dependencies file for ranycast-chaos.
# This may be replaced when dependencies are built.
