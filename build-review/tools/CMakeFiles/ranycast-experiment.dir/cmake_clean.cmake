file(REMOVE_RECURSE
  "CMakeFiles/ranycast-experiment.dir/ranycast-experiment.cpp.o"
  "CMakeFiles/ranycast-experiment.dir/ranycast-experiment.cpp.o.d"
  "ranycast-experiment"
  "ranycast-experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranycast-experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
