# Empty compiler generated dependencies file for ranycast-experiment.
# This may be replaced when dependencies are built.
