file(REMOVE_RECURSE
  "CMakeFiles/ranycast-stats.dir/ranycast-stats.cpp.o"
  "CMakeFiles/ranycast-stats.dir/ranycast-stats.cpp.o.d"
  "ranycast-stats"
  "ranycast-stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranycast-stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
