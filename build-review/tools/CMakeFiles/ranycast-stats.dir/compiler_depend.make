# Empty compiler generated dependencies file for ranycast-stats.
# This may be replaced when dependencies are built.
