# Empty dependencies file for ranycast-trace.
# This may be replaced when dependencies are built.
