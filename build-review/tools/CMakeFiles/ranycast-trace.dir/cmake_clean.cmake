file(REMOVE_RECURSE
  "CMakeFiles/ranycast-trace.dir/ranycast-trace.cpp.o"
  "CMakeFiles/ranycast-trace.dir/ranycast-trace.cpp.o.d"
  "ranycast-trace"
  "ranycast-trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranycast-trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
