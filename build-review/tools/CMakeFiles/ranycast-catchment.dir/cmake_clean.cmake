file(REMOVE_RECURSE
  "CMakeFiles/ranycast-catchment.dir/ranycast-catchment.cpp.o"
  "CMakeFiles/ranycast-catchment.dir/ranycast-catchment.cpp.o.d"
  "ranycast-catchment"
  "ranycast-catchment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranycast-catchment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
