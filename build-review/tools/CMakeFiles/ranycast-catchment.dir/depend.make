# Empty dependencies file for ranycast-catchment.
# This may be replaced when dependencies are built.
