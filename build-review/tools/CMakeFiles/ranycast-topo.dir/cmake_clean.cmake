file(REMOVE_RECURSE
  "CMakeFiles/ranycast-topo.dir/ranycast-topo.cpp.o"
  "CMakeFiles/ranycast-topo.dir/ranycast-topo.cpp.o.d"
  "ranycast-topo"
  "ranycast-topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranycast-topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
