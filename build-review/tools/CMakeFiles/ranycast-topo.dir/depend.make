# Empty dependencies file for ranycast-topo.
# This may be replaced when dependencies are built.
