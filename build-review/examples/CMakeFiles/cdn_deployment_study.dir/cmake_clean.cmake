file(REMOVE_RECURSE
  "CMakeFiles/cdn_deployment_study.dir/cdn_deployment_study.cpp.o"
  "CMakeFiles/cdn_deployment_study.dir/cdn_deployment_study.cpp.o.d"
  "cdn_deployment_study"
  "cdn_deployment_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdn_deployment_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
