# Empty dependencies file for cdn_deployment_study.
# This may be replaced when dependencies are built.
