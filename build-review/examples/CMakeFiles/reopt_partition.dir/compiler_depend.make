# Empty compiler generated dependencies file for reopt_partition.
# This may be replaced when dependencies are built.
