file(REMOVE_RECURSE
  "CMakeFiles/reopt_partition.dir/reopt_partition.cpp.o"
  "CMakeFiles/reopt_partition.dir/reopt_partition.cpp.o.d"
  "reopt_partition"
  "reopt_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reopt_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
