# Empty compiler generated dependencies file for anycast_designer.
# This may be replaced when dependencies are built.
