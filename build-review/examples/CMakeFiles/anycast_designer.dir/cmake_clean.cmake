file(REMOVE_RECURSE
  "CMakeFiles/anycast_designer.dir/anycast_designer.cpp.o"
  "CMakeFiles/anycast_designer.dir/anycast_designer.cpp.o.d"
  "anycast_designer"
  "anycast_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anycast_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
