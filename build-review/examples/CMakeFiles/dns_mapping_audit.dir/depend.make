# Empty dependencies file for dns_mapping_audit.
# This may be replaced when dependencies are built.
