file(REMOVE_RECURSE
  "CMakeFiles/dns_mapping_audit.dir/dns_mapping_audit.cpp.o"
  "CMakeFiles/dns_mapping_audit.dir/dns_mapping_audit.cpp.o.d"
  "dns_mapping_audit"
  "dns_mapping_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_mapping_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
