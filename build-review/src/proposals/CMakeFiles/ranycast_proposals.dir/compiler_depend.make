# Empty compiler generated dependencies file for ranycast_proposals.
# This may be replaced when dependencies are built.
