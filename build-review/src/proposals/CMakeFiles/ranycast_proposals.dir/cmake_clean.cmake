file(REMOVE_RECURSE
  "CMakeFiles/ranycast_proposals.dir/src/anyopt.cpp.o"
  "CMakeFiles/ranycast_proposals.dir/src/anyopt.cpp.o.d"
  "CMakeFiles/ranycast_proposals.dir/src/dailycatch.cpp.o"
  "CMakeFiles/ranycast_proposals.dir/src/dailycatch.cpp.o.d"
  "CMakeFiles/ranycast_proposals.dir/src/single_provider.cpp.o"
  "CMakeFiles/ranycast_proposals.dir/src/single_provider.cpp.o.d"
  "libranycast_proposals.a"
  "libranycast_proposals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranycast_proposals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
