file(REMOVE_RECURSE
  "libranycast_proposals.a"
)
