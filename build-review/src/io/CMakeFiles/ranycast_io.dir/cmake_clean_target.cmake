file(REMOVE_RECURSE
  "libranycast_io.a"
)
