file(REMOVE_RECURSE
  "CMakeFiles/ranycast_io.dir/src/config.cpp.o"
  "CMakeFiles/ranycast_io.dir/src/config.cpp.o.d"
  "CMakeFiles/ranycast_io.dir/src/json.cpp.o"
  "CMakeFiles/ranycast_io.dir/src/json.cpp.o.d"
  "libranycast_io.a"
  "libranycast_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranycast_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
