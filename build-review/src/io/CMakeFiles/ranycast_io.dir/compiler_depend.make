# Empty compiler generated dependencies file for ranycast_io.
# This may be replaced when dependencies are built.
