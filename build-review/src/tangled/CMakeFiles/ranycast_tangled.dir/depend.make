# Empty dependencies file for ranycast_tangled.
# This may be replaced when dependencies are built.
