file(REMOVE_RECURSE
  "CMakeFiles/ranycast_tangled.dir/src/study.cpp.o"
  "CMakeFiles/ranycast_tangled.dir/src/study.cpp.o.d"
  "CMakeFiles/ranycast_tangled.dir/src/testbed.cpp.o"
  "CMakeFiles/ranycast_tangled.dir/src/testbed.cpp.o.d"
  "libranycast_tangled.a"
  "libranycast_tangled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranycast_tangled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
