file(REMOVE_RECURSE
  "libranycast_tangled.a"
)
