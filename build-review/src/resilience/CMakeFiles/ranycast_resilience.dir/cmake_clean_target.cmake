file(REMOVE_RECURSE
  "libranycast_resilience.a"
)
