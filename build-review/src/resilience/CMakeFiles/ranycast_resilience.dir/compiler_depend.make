# Empty compiler generated dependencies file for ranycast_resilience.
# This may be replaced when dependencies are built.
