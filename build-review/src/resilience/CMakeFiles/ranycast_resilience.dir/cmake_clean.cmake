file(REMOVE_RECURSE
  "CMakeFiles/ranycast_resilience.dir/src/failover.cpp.o"
  "CMakeFiles/ranycast_resilience.dir/src/failover.cpp.o.d"
  "CMakeFiles/ranycast_resilience.dir/src/stability.cpp.o"
  "CMakeFiles/ranycast_resilience.dir/src/stability.cpp.o.d"
  "libranycast_resilience.a"
  "libranycast_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranycast_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
