file(REMOVE_RECURSE
  "libranycast_analysis.a"
)
