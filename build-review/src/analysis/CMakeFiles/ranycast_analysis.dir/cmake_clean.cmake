file(REMOVE_RECURSE
  "CMakeFiles/ranycast_analysis.dir/src/ascii_map.cpp.o"
  "CMakeFiles/ranycast_analysis.dir/src/ascii_map.cpp.o.d"
  "CMakeFiles/ranycast_analysis.dir/src/classify.cpp.o"
  "CMakeFiles/ranycast_analysis.dir/src/classify.cpp.o.d"
  "CMakeFiles/ranycast_analysis.dir/src/export.cpp.o"
  "CMakeFiles/ranycast_analysis.dir/src/export.cpp.o.d"
  "CMakeFiles/ranycast_analysis.dir/src/load.cpp.o"
  "CMakeFiles/ranycast_analysis.dir/src/load.cpp.o.d"
  "CMakeFiles/ranycast_analysis.dir/src/stats.cpp.o"
  "CMakeFiles/ranycast_analysis.dir/src/stats.cpp.o.d"
  "CMakeFiles/ranycast_analysis.dir/src/table.cpp.o"
  "CMakeFiles/ranycast_analysis.dir/src/table.cpp.o.d"
  "libranycast_analysis.a"
  "libranycast_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranycast_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
