
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/src/ascii_map.cpp" "src/analysis/CMakeFiles/ranycast_analysis.dir/src/ascii_map.cpp.o" "gcc" "src/analysis/CMakeFiles/ranycast_analysis.dir/src/ascii_map.cpp.o.d"
  "/root/repo/src/analysis/src/classify.cpp" "src/analysis/CMakeFiles/ranycast_analysis.dir/src/classify.cpp.o" "gcc" "src/analysis/CMakeFiles/ranycast_analysis.dir/src/classify.cpp.o.d"
  "/root/repo/src/analysis/src/export.cpp" "src/analysis/CMakeFiles/ranycast_analysis.dir/src/export.cpp.o" "gcc" "src/analysis/CMakeFiles/ranycast_analysis.dir/src/export.cpp.o.d"
  "/root/repo/src/analysis/src/load.cpp" "src/analysis/CMakeFiles/ranycast_analysis.dir/src/load.cpp.o" "gcc" "src/analysis/CMakeFiles/ranycast_analysis.dir/src/load.cpp.o.d"
  "/root/repo/src/analysis/src/stats.cpp" "src/analysis/CMakeFiles/ranycast_analysis.dir/src/stats.cpp.o" "gcc" "src/analysis/CMakeFiles/ranycast_analysis.dir/src/stats.cpp.o.d"
  "/root/repo/src/analysis/src/table.cpp" "src/analysis/CMakeFiles/ranycast_analysis.dir/src/table.cpp.o" "gcc" "src/analysis/CMakeFiles/ranycast_analysis.dir/src/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/ranycast_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/bgp/CMakeFiles/ranycast_bgp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/ranycast_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/topo/CMakeFiles/ranycast_topo.dir/DependInfo.cmake"
  "/root/repo/build-review/src/geo/CMakeFiles/ranycast_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
