# Empty compiler generated dependencies file for ranycast_analysis.
# This may be replaced when dependencies are built.
