file(REMOVE_RECURSE
  "libranycast_verfploeter.a"
)
