# Empty dependencies file for ranycast_verfploeter.
# This may be replaced when dependencies are built.
