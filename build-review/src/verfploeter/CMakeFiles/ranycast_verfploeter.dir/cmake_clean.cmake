file(REMOVE_RECURSE
  "CMakeFiles/ranycast_verfploeter.dir/src/census.cpp.o"
  "CMakeFiles/ranycast_verfploeter.dir/src/census.cpp.o.d"
  "libranycast_verfploeter.a"
  "libranycast_verfploeter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranycast_verfploeter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
