file(REMOVE_RECURSE
  "libranycast_chaos.a"
)
