# Empty compiler generated dependencies file for ranycast_chaos.
# This may be replaced when dependencies are built.
