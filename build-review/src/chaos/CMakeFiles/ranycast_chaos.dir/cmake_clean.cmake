file(REMOVE_RECURSE
  "CMakeFiles/ranycast_chaos.dir/src/engine.cpp.o"
  "CMakeFiles/ranycast_chaos.dir/src/engine.cpp.o.d"
  "CMakeFiles/ranycast_chaos.dir/src/plan.cpp.o"
  "CMakeFiles/ranycast_chaos.dir/src/plan.cpp.o.d"
  "CMakeFiles/ranycast_chaos.dir/src/scenario.cpp.o"
  "CMakeFiles/ranycast_chaos.dir/src/scenario.cpp.o.d"
  "libranycast_chaos.a"
  "libranycast_chaos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranycast_chaos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
