# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("core")
subdirs("exec")
subdirs("obs")
subdirs("geo")
subdirs("topo")
subdirs("bgp")
subdirs("dns")
subdirs("cdn")
subdirs("atlas")
subdirs("lab")
subdirs("geoloc")
subdirs("analysis")
subdirs("partition")
subdirs("tangled")
subdirs("bgpdata")
subdirs("proposals")
subdirs("resilience")
subdirs("verfploeter")
subdirs("io")
subdirs("guard")
subdirs("chaos")
