file(REMOVE_RECURSE
  "libranycast_exec.a"
)
