# Empty compiler generated dependencies file for ranycast_exec.
# This may be replaced when dependencies are built.
