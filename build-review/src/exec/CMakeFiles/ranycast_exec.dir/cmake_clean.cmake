file(REMOVE_RECURSE
  "CMakeFiles/ranycast_exec.dir/src/pool.cpp.o"
  "CMakeFiles/ranycast_exec.dir/src/pool.cpp.o.d"
  "libranycast_exec.a"
  "libranycast_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranycast_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
