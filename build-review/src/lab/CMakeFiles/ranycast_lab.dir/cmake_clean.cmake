file(REMOVE_RECURSE
  "CMakeFiles/ranycast_lab.dir/src/comparison.cpp.o"
  "CMakeFiles/ranycast_lab.dir/src/comparison.cpp.o.d"
  "CMakeFiles/ranycast_lab.dir/src/lab.cpp.o"
  "CMakeFiles/ranycast_lab.dir/src/lab.cpp.o.d"
  "libranycast_lab.a"
  "libranycast_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranycast_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
