file(REMOVE_RECURSE
  "libranycast_lab.a"
)
