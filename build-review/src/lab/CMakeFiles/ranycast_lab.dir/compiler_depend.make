# Empty compiler generated dependencies file for ranycast_lab.
# This may be replaced when dependencies are built.
