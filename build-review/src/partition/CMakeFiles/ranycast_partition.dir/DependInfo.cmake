
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/src/kmeans.cpp" "src/partition/CMakeFiles/ranycast_partition.dir/src/kmeans.cpp.o" "gcc" "src/partition/CMakeFiles/ranycast_partition.dir/src/kmeans.cpp.o.d"
  "/root/repo/src/partition/src/reopt.cpp" "src/partition/CMakeFiles/ranycast_partition.dir/src/reopt.cpp.o" "gcc" "src/partition/CMakeFiles/ranycast_partition.dir/src/reopt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/ranycast_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/geo/CMakeFiles/ranycast_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
