file(REMOVE_RECURSE
  "libranycast_partition.a"
)
