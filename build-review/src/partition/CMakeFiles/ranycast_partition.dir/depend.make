# Empty dependencies file for ranycast_partition.
# This may be replaced when dependencies are built.
