file(REMOVE_RECURSE
  "CMakeFiles/ranycast_partition.dir/src/kmeans.cpp.o"
  "CMakeFiles/ranycast_partition.dir/src/kmeans.cpp.o.d"
  "CMakeFiles/ranycast_partition.dir/src/reopt.cpp.o"
  "CMakeFiles/ranycast_partition.dir/src/reopt.cpp.o.d"
  "libranycast_partition.a"
  "libranycast_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranycast_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
