# Empty dependencies file for ranycast_bgpdata.
# This may be replaced when dependencies are built.
