file(REMOVE_RECURSE
  "CMakeFiles/ranycast_bgpdata.dir/src/rib_snapshot.cpp.o"
  "CMakeFiles/ranycast_bgpdata.dir/src/rib_snapshot.cpp.o.d"
  "libranycast_bgpdata.a"
  "libranycast_bgpdata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranycast_bgpdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
