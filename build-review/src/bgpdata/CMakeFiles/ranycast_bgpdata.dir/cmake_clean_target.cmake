file(REMOVE_RECURSE
  "libranycast_bgpdata.a"
)
