file(REMOVE_RECURSE
  "CMakeFiles/ranycast_core.dir/src/flags.cpp.o"
  "CMakeFiles/ranycast_core.dir/src/flags.cpp.o.d"
  "CMakeFiles/ranycast_core.dir/src/ipv4.cpp.o"
  "CMakeFiles/ranycast_core.dir/src/ipv4.cpp.o.d"
  "CMakeFiles/ranycast_core.dir/src/strings.cpp.o"
  "CMakeFiles/ranycast_core.dir/src/strings.cpp.o.d"
  "libranycast_core.a"
  "libranycast_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranycast_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
