
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/src/flags.cpp" "src/core/CMakeFiles/ranycast_core.dir/src/flags.cpp.o" "gcc" "src/core/CMakeFiles/ranycast_core.dir/src/flags.cpp.o.d"
  "/root/repo/src/core/src/ipv4.cpp" "src/core/CMakeFiles/ranycast_core.dir/src/ipv4.cpp.o" "gcc" "src/core/CMakeFiles/ranycast_core.dir/src/ipv4.cpp.o.d"
  "/root/repo/src/core/src/strings.cpp" "src/core/CMakeFiles/ranycast_core.dir/src/strings.cpp.o" "gcc" "src/core/CMakeFiles/ranycast_core.dir/src/strings.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
