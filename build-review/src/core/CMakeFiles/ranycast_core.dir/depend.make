# Empty dependencies file for ranycast_core.
# This may be replaced when dependencies are built.
