file(REMOVE_RECURSE
  "libranycast_core.a"
)
