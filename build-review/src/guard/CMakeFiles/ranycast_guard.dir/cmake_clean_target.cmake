file(REMOVE_RECURSE
  "libranycast_guard.a"
)
