# Empty dependencies file for ranycast_guard.
# This may be replaced when dependencies are built.
