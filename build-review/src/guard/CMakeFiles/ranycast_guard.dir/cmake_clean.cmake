file(REMOVE_RECURSE
  "CMakeFiles/ranycast_guard.dir/src/checkpoint.cpp.o"
  "CMakeFiles/ranycast_guard.dir/src/checkpoint.cpp.o.d"
  "CMakeFiles/ranycast_guard.dir/src/error.cpp.o"
  "CMakeFiles/ranycast_guard.dir/src/error.cpp.o.d"
  "CMakeFiles/ranycast_guard.dir/src/runtime.cpp.o"
  "CMakeFiles/ranycast_guard.dir/src/runtime.cpp.o.d"
  "CMakeFiles/ranycast_guard.dir/src/sweep.cpp.o"
  "CMakeFiles/ranycast_guard.dir/src/sweep.cpp.o.d"
  "libranycast_guard.a"
  "libranycast_guard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranycast_guard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
