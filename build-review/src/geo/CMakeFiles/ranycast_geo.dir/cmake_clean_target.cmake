file(REMOVE_RECURSE
  "libranycast_geo.a"
)
