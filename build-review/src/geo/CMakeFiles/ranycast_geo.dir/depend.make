# Empty dependencies file for ranycast_geo.
# This may be replaced when dependencies are built.
