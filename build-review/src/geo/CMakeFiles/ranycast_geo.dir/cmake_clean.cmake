file(REMOVE_RECURSE
  "CMakeFiles/ranycast_geo.dir/src/earth.cpp.o"
  "CMakeFiles/ranycast_geo.dir/src/earth.cpp.o.d"
  "CMakeFiles/ranycast_geo.dir/src/gazetteer.cpp.o"
  "CMakeFiles/ranycast_geo.dir/src/gazetteer.cpp.o.d"
  "libranycast_geo.a"
  "libranycast_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranycast_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
