# Empty dependencies file for ranycast_topo.
# This may be replaced when dependencies are built.
