file(REMOVE_RECURSE
  "libranycast_topo.a"
)
