
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/src/generator.cpp" "src/topo/CMakeFiles/ranycast_topo.dir/src/generator.cpp.o" "gcc" "src/topo/CMakeFiles/ranycast_topo.dir/src/generator.cpp.o.d"
  "/root/repo/src/topo/src/graph.cpp" "src/topo/CMakeFiles/ranycast_topo.dir/src/graph.cpp.o" "gcc" "src/topo/CMakeFiles/ranycast_topo.dir/src/graph.cpp.o.d"
  "/root/repo/src/topo/src/ip_registry.cpp" "src/topo/CMakeFiles/ranycast_topo.dir/src/ip_registry.cpp.o" "gcc" "src/topo/CMakeFiles/ranycast_topo.dir/src/ip_registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/ranycast_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/geo/CMakeFiles/ranycast_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
