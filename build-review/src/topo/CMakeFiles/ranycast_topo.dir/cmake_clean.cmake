file(REMOVE_RECURSE
  "CMakeFiles/ranycast_topo.dir/src/generator.cpp.o"
  "CMakeFiles/ranycast_topo.dir/src/generator.cpp.o.d"
  "CMakeFiles/ranycast_topo.dir/src/graph.cpp.o"
  "CMakeFiles/ranycast_topo.dir/src/graph.cpp.o.d"
  "CMakeFiles/ranycast_topo.dir/src/ip_registry.cpp.o"
  "CMakeFiles/ranycast_topo.dir/src/ip_registry.cpp.o.d"
  "libranycast_topo.a"
  "libranycast_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranycast_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
