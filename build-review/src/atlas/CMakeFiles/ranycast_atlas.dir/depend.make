# Empty dependencies file for ranycast_atlas.
# This may be replaced when dependencies are built.
