file(REMOVE_RECURSE
  "CMakeFiles/ranycast_atlas.dir/src/census.cpp.o"
  "CMakeFiles/ranycast_atlas.dir/src/census.cpp.o.d"
  "CMakeFiles/ranycast_atlas.dir/src/grouping.cpp.o"
  "CMakeFiles/ranycast_atlas.dir/src/grouping.cpp.o.d"
  "CMakeFiles/ranycast_atlas.dir/src/probe.cpp.o"
  "CMakeFiles/ranycast_atlas.dir/src/probe.cpp.o.d"
  "libranycast_atlas.a"
  "libranycast_atlas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranycast_atlas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
