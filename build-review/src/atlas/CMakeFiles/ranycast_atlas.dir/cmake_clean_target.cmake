file(REMOVE_RECURSE
  "libranycast_atlas.a"
)
