
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/atlas/src/census.cpp" "src/atlas/CMakeFiles/ranycast_atlas.dir/src/census.cpp.o" "gcc" "src/atlas/CMakeFiles/ranycast_atlas.dir/src/census.cpp.o.d"
  "/root/repo/src/atlas/src/grouping.cpp" "src/atlas/CMakeFiles/ranycast_atlas.dir/src/grouping.cpp.o" "gcc" "src/atlas/CMakeFiles/ranycast_atlas.dir/src/grouping.cpp.o.d"
  "/root/repo/src/atlas/src/probe.cpp" "src/atlas/CMakeFiles/ranycast_atlas.dir/src/probe.cpp.o" "gcc" "src/atlas/CMakeFiles/ranycast_atlas.dir/src/probe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/ranycast_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/geo/CMakeFiles/ranycast_geo.dir/DependInfo.cmake"
  "/root/repo/build-review/src/topo/CMakeFiles/ranycast_topo.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dns/CMakeFiles/ranycast_dns.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/ranycast_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
