file(REMOVE_RECURSE
  "CMakeFiles/ranycast_bgp.dir/src/path_metrics.cpp.o"
  "CMakeFiles/ranycast_bgp.dir/src/path_metrics.cpp.o.d"
  "CMakeFiles/ranycast_bgp.dir/src/solver.cpp.o"
  "CMakeFiles/ranycast_bgp.dir/src/solver.cpp.o.d"
  "libranycast_bgp.a"
  "libranycast_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranycast_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
