# Empty compiler generated dependencies file for ranycast_bgp.
# This may be replaced when dependencies are built.
