file(REMOVE_RECURSE
  "libranycast_bgp.a"
)
