
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgp/src/path_metrics.cpp" "src/bgp/CMakeFiles/ranycast_bgp.dir/src/path_metrics.cpp.o" "gcc" "src/bgp/CMakeFiles/ranycast_bgp.dir/src/path_metrics.cpp.o.d"
  "/root/repo/src/bgp/src/solver.cpp" "src/bgp/CMakeFiles/ranycast_bgp.dir/src/solver.cpp.o" "gcc" "src/bgp/CMakeFiles/ranycast_bgp.dir/src/solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/ranycast_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/ranycast_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/geo/CMakeFiles/ranycast_geo.dir/DependInfo.cmake"
  "/root/repo/build-review/src/topo/CMakeFiles/ranycast_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
