file(REMOVE_RECURSE
  "libranycast_obs.a"
)
