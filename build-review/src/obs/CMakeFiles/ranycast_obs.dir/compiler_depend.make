# Empty compiler generated dependencies file for ranycast_obs.
# This may be replaced when dependencies are built.
