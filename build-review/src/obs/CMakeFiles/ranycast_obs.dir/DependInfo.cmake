
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/obs/src/metrics.cpp" "src/obs/CMakeFiles/ranycast_obs.dir/src/metrics.cpp.o" "gcc" "src/obs/CMakeFiles/ranycast_obs.dir/src/metrics.cpp.o.d"
  "/root/repo/src/obs/src/report.cpp" "src/obs/CMakeFiles/ranycast_obs.dir/src/report.cpp.o" "gcc" "src/obs/CMakeFiles/ranycast_obs.dir/src/report.cpp.o.d"
  "/root/repo/src/obs/src/span.cpp" "src/obs/CMakeFiles/ranycast_obs.dir/src/span.cpp.o" "gcc" "src/obs/CMakeFiles/ranycast_obs.dir/src/span.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/ranycast_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
