file(REMOVE_RECURSE
  "CMakeFiles/ranycast_obs.dir/src/metrics.cpp.o"
  "CMakeFiles/ranycast_obs.dir/src/metrics.cpp.o.d"
  "CMakeFiles/ranycast_obs.dir/src/report.cpp.o"
  "CMakeFiles/ranycast_obs.dir/src/report.cpp.o.d"
  "CMakeFiles/ranycast_obs.dir/src/span.cpp.o"
  "CMakeFiles/ranycast_obs.dir/src/span.cpp.o.d"
  "libranycast_obs.a"
  "libranycast_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranycast_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
