# Empty compiler generated dependencies file for ranycast_geoloc.
# This may be replaced when dependencies are built.
