file(REMOVE_RECURSE
  "CMakeFiles/ranycast_geoloc.dir/src/igreedy.cpp.o"
  "CMakeFiles/ranycast_geoloc.dir/src/igreedy.cpp.o.d"
  "CMakeFiles/ranycast_geoloc.dir/src/pipeline.cpp.o"
  "CMakeFiles/ranycast_geoloc.dir/src/pipeline.cpp.o.d"
  "CMakeFiles/ranycast_geoloc.dir/src/rdns.cpp.o"
  "CMakeFiles/ranycast_geoloc.dir/src/rdns.cpp.o.d"
  "libranycast_geoloc.a"
  "libranycast_geoloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranycast_geoloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
