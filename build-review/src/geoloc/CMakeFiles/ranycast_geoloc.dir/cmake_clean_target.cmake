file(REMOVE_RECURSE
  "libranycast_geoloc.a"
)
