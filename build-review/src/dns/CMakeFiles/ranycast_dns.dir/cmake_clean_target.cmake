file(REMOVE_RECURSE
  "libranycast_dns.a"
)
