file(REMOVE_RECURSE
  "CMakeFiles/ranycast_dns.dir/src/geo_database.cpp.o"
  "CMakeFiles/ranycast_dns.dir/src/geo_database.cpp.o.d"
  "CMakeFiles/ranycast_dns.dir/src/resolver.cpp.o"
  "CMakeFiles/ranycast_dns.dir/src/resolver.cpp.o.d"
  "CMakeFiles/ranycast_dns.dir/src/route53.cpp.o"
  "CMakeFiles/ranycast_dns.dir/src/route53.cpp.o.d"
  "libranycast_dns.a"
  "libranycast_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranycast_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
