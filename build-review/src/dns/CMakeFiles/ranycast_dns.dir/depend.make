# Empty dependencies file for ranycast_dns.
# This may be replaced when dependencies are built.
