
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dns/src/geo_database.cpp" "src/dns/CMakeFiles/ranycast_dns.dir/src/geo_database.cpp.o" "gcc" "src/dns/CMakeFiles/ranycast_dns.dir/src/geo_database.cpp.o.d"
  "/root/repo/src/dns/src/resolver.cpp" "src/dns/CMakeFiles/ranycast_dns.dir/src/resolver.cpp.o" "gcc" "src/dns/CMakeFiles/ranycast_dns.dir/src/resolver.cpp.o.d"
  "/root/repo/src/dns/src/route53.cpp" "src/dns/CMakeFiles/ranycast_dns.dir/src/route53.cpp.o" "gcc" "src/dns/CMakeFiles/ranycast_dns.dir/src/route53.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/ranycast_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/ranycast_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/geo/CMakeFiles/ranycast_geo.dir/DependInfo.cmake"
  "/root/repo/build-review/src/topo/CMakeFiles/ranycast_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
