file(REMOVE_RECURSE
  "libranycast_cdn.a"
)
