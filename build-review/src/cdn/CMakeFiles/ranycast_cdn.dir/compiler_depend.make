# Empty compiler generated dependencies file for ranycast_cdn.
# This may be replaced when dependencies are built.
