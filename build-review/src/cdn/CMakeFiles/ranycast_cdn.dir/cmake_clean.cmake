file(REMOVE_RECURSE
  "CMakeFiles/ranycast_cdn.dir/src/builder.cpp.o"
  "CMakeFiles/ranycast_cdn.dir/src/builder.cpp.o.d"
  "CMakeFiles/ranycast_cdn.dir/src/catalog.cpp.o"
  "CMakeFiles/ranycast_cdn.dir/src/catalog.cpp.o.d"
  "CMakeFiles/ranycast_cdn.dir/src/deployment.cpp.o"
  "CMakeFiles/ranycast_cdn.dir/src/deployment.cpp.o.d"
  "CMakeFiles/ranycast_cdn.dir/src/survey.cpp.o"
  "CMakeFiles/ranycast_cdn.dir/src/survey.cpp.o.d"
  "libranycast_cdn.a"
  "libranycast_cdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranycast_cdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
