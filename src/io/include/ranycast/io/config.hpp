// JSON bindings for the laboratory configuration: load experiment setups
// from files (tools/ranycast-experiment) and persist the configuration
// actually used next to results for reproducibility.
#pragma once

#include <string>

#include "ranycast/io/json.hpp"
#include "ranycast/lab/lab.hpp"

namespace ranycast::io {

/// Parse a LabConfig from a JSON object. Every field is optional and
/// defaults to the library default; unknown keys are ignored (configs stay
/// forward-compatible). Schema:
///   {
///     "seed": 2023,
///     "world":   {"seed", "stub_count", "tier1_count", "tier1_city_coverage",
///                 "international_transits", "ixp_count", ...},
///     "census":  {"total_probes", "stable_prob", "resolver_local_prob", ...},
///     "latency": {"per_hop_ms", "jitter_max_ms", "access_base_ms"},
///     "geo_dbs": [{"name", "wrong_country_prob", "intl_home_bias_prob",
///                  "wrong_city_prob", "seed"}, ...]   // up to 3 entries
///   }
lab::LabConfig lab_config_from_json(const Json& json);

/// Serialize a LabConfig (the exact inverse of the reader for covered keys).
Json lab_config_to_json(const lab::LabConfig& config);

/// Read a file into a string; throws std::runtime_error on failure.
std::string read_file(const std::string& path);

}  // namespace ranycast::io
