// JSON bindings for the laboratory configuration: load experiment setups
// from files (tools/ranycast-experiment, tools/ranycast-chaos) and persist
// the configuration actually used next to results for reproducibility.
//
// The loading surface is exception-free: every failure is reported as a
// core::Expected error carrying the file, the byte offset (for syntax
// errors) and the offending field (for validation errors), so CLIs print an
// actionable message and exit nonzero instead of aborting.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "ranycast/core/expected.hpp"
#include "ranycast/io/json.hpp"
#include "ranycast/lab/lab.hpp"

namespace ranycast::io {

/// A configuration-loading failure with enough context to act on.
struct ConfigError {
  std::string file;       ///< path, or "<inline>" for in-memory documents
  std::size_t offset{0};  ///< byte offset of a syntax error; 0 when n/a
  std::string field;      ///< dotted path of the offending field; "" when n/a
  std::string message;

  /// "config.json: field 'census.total_probes': must be positive (got 0)"
  std::string to_string() const;
};

/// Parse a LabConfig from a JSON object. Every field is optional and
/// defaults to the library default; unknown keys are ignored (configs stay
/// forward-compatible). Schema:
///   {
///     "seed": 2023,
///     "world":   {"seed", "stub_count", "tier1_count", "tier1_city_coverage",
///                 "international_transits", "ixp_count", ...},
///     "census":  {"total_probes", "stable_prob", "resolver_local_prob", ...},
///     "latency": {"per_hop_ms", "jitter_max_ms", "access_base_ms"},
///     "geo_dbs": [{"name", "wrong_country_prob", "intl_home_bias_prob",
///                  "wrong_city_prob", "seed"}, ...]   // up to 3 entries
///   }
lab::LabConfig lab_config_from_json(const Json& json);

/// Serialize a LabConfig (the exact inverse of the reader for covered keys).
Json lab_config_to_json(const lab::LabConfig& config);

/// Stable 64-bit fingerprint of a configuration: a hash of its canonical
/// JSON serialization mixed with the seed. Two configs fingerprint equal
/// iff every covered knob matches — the binding guard checkpoints use to
/// refuse resuming one experiment's progress into another.
std::uint64_t config_fingerprint(const lab::LabConfig& config);

/// Range-check a LabConfig (probabilities in [0,1], positive counts,
/// non-negative latencies, non-negative geo-DB error rates). Returns the
/// first violation, with `field` naming the offending key.
std::optional<ConfigError> validate_lab_config(const lab::LabConfig& config,
                                               std::string_view file = {});

/// Read a file into a string.
core::Expected<std::string, ConfigError> read_file(const std::string& path);

/// Read + parse a JSON document; syntax errors carry the byte offset.
core::Expected<Json, ConfigError> load_json(const std::string& path);

/// Read + parse + bind + validate a laboratory configuration.
core::Expected<lab::LabConfig, ConfigError> load_config(const std::string& path);

}  // namespace ranycast::io
