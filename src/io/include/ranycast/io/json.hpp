// Minimal JSON value model, parser and writer.
//
// Enough JSON for configuration files and experiment-result interchange:
// the full value model, UTF-8 pass-through strings with standard escapes,
// and precise error positions. No external dependencies.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace ranycast::io {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  bool is_null() const noexcept { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const noexcept { return std::holds_alternative<bool>(value_); }
  bool is_number() const noexcept { return std::holds_alternative<double>(value_); }
  bool is_string() const noexcept { return std::holds_alternative<std::string>(value_); }
  bool is_array() const noexcept { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const noexcept { return std::holds_alternative<JsonObject>(value_); }

  bool as_bool() const { return std::get<bool>(value_); }
  double as_number() const { return std::get<double>(value_); }
  const std::string& as_string() const { return std::get<std::string>(value_); }
  const JsonArray& as_array() const { return std::get<JsonArray>(value_); }
  const JsonObject& as_object() const { return std::get<JsonObject>(value_); }
  JsonArray& as_array() { return std::get<JsonArray>(value_); }
  JsonObject& as_object() { return std::get<JsonObject>(value_); }

  /// Object member access; nullptr when absent or not an object.
  const Json* find(std::string_view key) const;

  /// Typed member readers with defaults (for config files).
  double number_or(std::string_view key, double fallback) const;
  std::int64_t int_or(std::string_view key, std::int64_t fallback) const;
  bool bool_or(std::string_view key, bool fallback) const;
  std::string string_or(std::string_view key, std::string fallback) const;

  /// Serialize; `indent` > 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = 0) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> value_;
};

struct JsonParseError {
  std::size_t position{0};
  std::string message;
};

/// Parse a complete JSON document; trailing garbage is an error.
std::variant<Json, JsonParseError> parse_json(std::string_view text);

/// Convenience: parse or throw std::runtime_error with position info.
Json parse_json_or_throw(std::string_view text);

}  // namespace ranycast::io
