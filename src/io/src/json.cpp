#include "ranycast/io/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace ranycast::io {

const Json* Json::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const auto& obj = as_object();
  const auto it = obj.find(std::string(key));
  return it == obj.end() ? nullptr : &it->second;
}

double Json::number_or(std::string_view key, double fallback) const {
  const Json* v = find(key);
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

std::int64_t Json::int_or(std::string_view key, std::int64_t fallback) const {
  const Json* v = find(key);
  return v != nullptr && v->is_number() ? static_cast<std::int64_t>(v->as_number()) : fallback;
}

bool Json::bool_or(std::string_view key, bool fallback) const {
  const Json* v = find(key);
  return v != nullptr && v->is_bool() ? v->as_bool() : fallback;
}

std::string Json::string_or(std::string_view key, std::string fallback) const {
  const Json* v = find(key);
  return v != nullptr && v->is_string() ? v->as_string() : std::move(fallback);
}

namespace {

void dump_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
}

void dump_number(std::string& out, double d) {
  if (std::isfinite(d) && d == std::floor(d) && std::abs(d) < 1e15) {
    out += std::to_string(static_cast<std::int64_t>(d));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_number()) {
    dump_number(out, as_number());
  } else if (is_string()) {
    dump_string(out, as_string());
  } else if (is_array()) {
    const auto& arr = as_array();
    out.push_back('[');
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i) out.push_back(',');
      newline_indent(out, indent, depth + 1);
      arr[i].dump_to(out, indent, depth + 1);
    }
    if (!arr.empty()) newline_indent(out, indent, depth);
    out.push_back(']');
  } else {
    const auto& obj = as_object();
    out.push_back('{');
    bool first = true;
    for (const auto& [key, value] : obj) {
      if (!first) out.push_back(',');
      first = false;
      newline_indent(out, indent, depth + 1);
      dump_string(out, key);
      out.push_back(':');
      if (indent > 0) out.push_back(' ');
      value.dump_to(out, indent, depth + 1);
    }
    if (!obj.empty()) newline_indent(out, indent, depth);
    out.push_back('}');
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::variant<Json, JsonParseError> parse_document() {
    skip_ws();
    auto value = parse_value();
    if (error_) return *error_;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after document");
    return std::move(*value);
  }

 private:
  // The parser recurses per nesting level; a hostile document ("[[[[…")
  // would otherwise overflow the stack. 256 levels is far beyond any real
  // configuration and keeps worst-case stack usage bounded.
  static constexpr int kMaxDepth = 256;

  struct DepthGuard {
    explicit DepthGuard(Parser* p) : parser(p) {
      if (++parser->depth_ > kMaxDepth) parser->fail("nesting exceeds 256 levels");
    }
    ~DepthGuard() { --parser->depth_; }
    Parser* parser;
  };

  JsonParseError fail(std::string message) {
    if (!error_) error_ = JsonParseError{pos_, std::move(message)};
    return *error_;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  std::optional<Json> parse_value() {
    if (error_) return std::nullopt;
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string();
    if (c == 't') {
      if (consume_literal("true")) return Json(true);
      fail("invalid literal");
      return std::nullopt;
    }
    if (c == 'f') {
      if (consume_literal("false")) return Json(false);
      fail("invalid literal");
      return std::nullopt;
    }
    if (c == 'n') {
      if (consume_literal("null")) return Json(nullptr);
      fail("invalid literal");
      return std::nullopt;
    }
    return parse_number();
  }

  std::optional<Json> parse_number() {
    double value = 0.0;
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    const auto [next, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{}) {
      fail("invalid number");
      return std::nullopt;
    }
    pos_ += static_cast<std::size_t>(next - begin);
    return Json(value);
  }

  std::optional<Json> parse_string() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Json(std::move(out));
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return std::nullopt;
          }
          unsigned code = 0;
          const auto [next, ec] = std::from_chars(text_.data() + pos_, text_.data() + pos_ + 4,
                                                  code, 16);
          if (ec != std::errc{} || next != text_.data() + pos_ + 4) {
            fail("invalid \\u escape");
            return std::nullopt;
          }
          pos_ += 4;
          // UTF-8 encode the BMP code point (surrogate pairs unsupported:
          // config files do not need them).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("invalid escape");
          return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Json> parse_array() {
    ++pos_;  // '['
    const DepthGuard guard(this);
    if (error_) return std::nullopt;
    JsonArray out;
    skip_ws();
    if (consume(']')) return Json(std::move(out));
    while (true) {
      skip_ws();
      auto value = parse_value();
      if (!value) return std::nullopt;
      out.push_back(std::move(*value));
      skip_ws();
      if (consume(']')) return Json(std::move(out));
      if (!consume(',')) {
        fail("expected ',' or ']' in array");
        return std::nullopt;
      }
    }
  }

  std::optional<Json> parse_object() {
    ++pos_;  // '{'
    const DepthGuard guard(this);
    if (error_) return std::nullopt;
    JsonObject out;
    skip_ws();
    if (consume('}')) return Json(std::move(out));
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        fail("expected object key");
        return std::nullopt;
      }
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) {
        fail("expected ':' after key");
        return std::nullopt;
      }
      skip_ws();
      auto value = parse_value();
      if (!value) return std::nullopt;
      out.emplace(key->as_string(), std::move(*value));
      skip_ws();
      if (consume('}')) return Json(std::move(out));
      if (!consume(',')) {
        fail("expected ',' or '}' in object");
        return std::nullopt;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_{0};
  int depth_{0};
  std::optional<JsonParseError> error_;
};

}  // namespace

std::variant<Json, JsonParseError> parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

Json parse_json_or_throw(std::string_view text) {
  auto result = parse_json(text);
  if (const auto* error = std::get_if<JsonParseError>(&result)) {
    throw std::runtime_error("JSON parse error at byte " + std::to_string(error->position) +
                             ": " + error->message);
  }
  return std::move(std::get<Json>(result));
}

}  // namespace ranycast::io
