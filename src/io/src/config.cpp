#include "ranycast/io/config.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "ranycast/core/crc32.hpp"
#include "ranycast/core/rng.hpp"

namespace ranycast::io {

std::string ConfigError::to_string() const {
  std::string out = file.empty() ? std::string("<config>") : file;
  if (offset != 0) {
    out += ":byte ";
    out += std::to_string(offset);
  }
  if (!field.empty()) {
    out += ": field '";
    out += field;
    out += "'";
  }
  out += ": ";
  out += message;
  return out;
}

lab::LabConfig lab_config_from_json(const Json& json) {
  lab::LabConfig config;
  config.seed = static_cast<std::uint64_t>(json.int_or("seed", static_cast<std::int64_t>(config.seed)));
  // Tri-state: absent or null leaves the RANYCAST_OBS environment default.
  if (const Json* o = json.find("observability"); o != nullptr && o->is_bool()) {
    config.observability = o->as_bool();
  }

  if (const Json* world = json.find("world")) {
    auto& w = config.world;
    w.seed = static_cast<std::uint64_t>(world->int_or("seed", static_cast<std::int64_t>(w.seed)));
    w.tier1_count = static_cast<int>(world->int_or("tier1_count", w.tier1_count));
    w.tier1_city_coverage = world->number_or("tier1_city_coverage", w.tier1_city_coverage);
    w.international_transits =
        static_cast<int>(world->int_or("international_transits", w.international_transits));
    w.max_national_transits_per_country = static_cast<int>(
        world->int_or("max_national_transits_per_country", w.max_national_transits_per_country));
    w.stub_count = static_cast<int>(world->int_or("stub_count", w.stub_count));
    w.stub_second_provider_prob =
        world->number_or("stub_second_provider_prob", w.stub_second_provider_prob);
    w.stub_foreign_registration_prob =
        world->number_or("stub_foreign_registration_prob", w.stub_foreign_registration_prob);
    w.stub_ixp_join_prob = world->number_or("stub_ixp_join_prob", w.stub_ixp_join_prob);
    w.ixp_count = static_cast<int>(world->int_or("ixp_count", w.ixp_count));
    w.ixp_mesh_prob = world->number_or("ixp_mesh_prob", w.ixp_mesh_prob);
    w.ixp_bilateral_prob = world->number_or("ixp_bilateral_prob", w.ixp_bilateral_prob);
    w.intl_transit_customer_prob =
        world->number_or("intl_transit_customer_prob", w.intl_transit_customer_prob);
  }
  if (const Json* census = json.find("census")) {
    auto& c = config.census;
    c.total_probes = static_cast<int>(census->int_or("total_probes", c.total_probes));
    c.stable_prob = census->number_or("stable_prob", c.stable_prob);
    c.reliable_geocode_prob =
        census->number_or("reliable_geocode_prob", c.reliable_geocode_prob);
    c.resolver_local_prob = census->number_or("resolver_local_prob", c.resolver_local_prob);
    c.resolver_public_ecs_prob =
        census->number_or("resolver_public_ecs_prob", c.resolver_public_ecs_prob);
    c.access_extra_mean_ms = census->number_or("access_extra_mean_ms", c.access_extra_mean_ms);
    c.access_extra_cap_ms = census->number_or("access_extra_cap_ms", c.access_extra_cap_ms);
    c.seed = static_cast<std::uint64_t>(census->int_or("seed", static_cast<std::int64_t>(c.seed)));
  }
  if (const Json* latency = json.find("latency")) {
    auto& l = config.latency;
    l.ms_per_km = latency->number_or("ms_per_km", l.ms_per_km);
    l.per_hop_ms = latency->number_or("per_hop_ms", l.per_hop_ms);
    l.jitter_max_ms = latency->number_or("jitter_max_ms", l.jitter_max_ms);
    l.access_base_ms = latency->number_or("access_base_ms", l.access_base_ms);
  }
  if (const Json* dbs = json.find("geo_dbs"); dbs != nullptr && dbs->is_array()) {
    const auto& arr = dbs->as_array();
    for (std::size_t i = 0; i < arr.size() && i < config.geo_dbs.size(); ++i) {
      auto& db = config.geo_dbs[i];
      db.name = arr[i].string_or("name", db.name);
      db.wrong_country_prob = arr[i].number_or("wrong_country_prob", db.wrong_country_prob);
      db.intl_home_bias_prob = arr[i].number_or("intl_home_bias_prob", db.intl_home_bias_prob);
      db.wrong_city_prob = arr[i].number_or("wrong_city_prob", db.wrong_city_prob);
      db.seed = static_cast<std::uint64_t>(
          arr[i].int_or("seed", static_cast<std::int64_t>(db.seed)));
    }
  }
  return config;
}

Json lab_config_to_json(const lab::LabConfig& config) {
  JsonObject world{
      {"seed", Json(static_cast<std::int64_t>(config.world.seed))},
      {"tier1_count", Json(config.world.tier1_count)},
      {"tier1_city_coverage", Json(config.world.tier1_city_coverage)},
      {"international_transits", Json(config.world.international_transits)},
      {"max_national_transits_per_country",
       Json(config.world.max_national_transits_per_country)},
      {"stub_count", Json(config.world.stub_count)},
      {"stub_second_provider_prob", Json(config.world.stub_second_provider_prob)},
      {"stub_foreign_registration_prob", Json(config.world.stub_foreign_registration_prob)},
      {"stub_ixp_join_prob", Json(config.world.stub_ixp_join_prob)},
      {"ixp_count", Json(config.world.ixp_count)},
      {"ixp_mesh_prob", Json(config.world.ixp_mesh_prob)},
      {"ixp_bilateral_prob", Json(config.world.ixp_bilateral_prob)},
      {"intl_transit_customer_prob", Json(config.world.intl_transit_customer_prob)},
  };
  JsonObject census{
      {"total_probes", Json(config.census.total_probes)},
      {"stable_prob", Json(config.census.stable_prob)},
      {"reliable_geocode_prob", Json(config.census.reliable_geocode_prob)},
      {"resolver_local_prob", Json(config.census.resolver_local_prob)},
      {"resolver_public_ecs_prob", Json(config.census.resolver_public_ecs_prob)},
      {"access_extra_mean_ms", Json(config.census.access_extra_mean_ms)},
      {"access_extra_cap_ms", Json(config.census.access_extra_cap_ms)},
      {"seed", Json(static_cast<std::int64_t>(config.census.seed))},
  };
  JsonObject latency{
      {"ms_per_km", Json(config.latency.ms_per_km)},
      {"per_hop_ms", Json(config.latency.per_hop_ms)},
      {"jitter_max_ms", Json(config.latency.jitter_max_ms)},
      {"access_base_ms", Json(config.latency.access_base_ms)},
  };
  JsonArray dbs;
  for (const auto& db : config.geo_dbs) {
    dbs.push_back(Json(JsonObject{
        {"name", Json(db.name)},
        {"wrong_country_prob", Json(db.wrong_country_prob)},
        {"intl_home_bias_prob", Json(db.intl_home_bias_prob)},
        {"wrong_city_prob", Json(db.wrong_city_prob)},
        {"seed", Json(static_cast<std::int64_t>(db.seed))},
    }));
  }
  return Json(JsonObject{
      {"seed", Json(static_cast<std::int64_t>(config.seed))},
      {"observability",
       config.observability ? Json(*config.observability) : Json(nullptr)},
      {"world", Json(std::move(world))},
      {"census", Json(std::move(census))},
      {"latency", Json(std::move(latency))},
      {"geo_dbs", Json(std::move(dbs))},
  });
}

std::uint64_t config_fingerprint(const lab::LabConfig& config) {
  // Canonical form: compact dump of the sorted-key JSON serialization.
  // Observability is a reporting switch, not an experiment input, so it is
  // excluded — toggling --obs must not invalidate a checkpoint.
  Json json = lab_config_to_json(config);
  json.as_object().erase("observability");
  const std::string canonical = json.dump();
  const std::uint32_t crc = core::crc32(canonical.data(), canonical.size());
  return hash_combine(hash_combine(config.seed, canonical.size()), crc);
}

namespace {

/// One range rule: [lo, hi] bounds (NaN bound = unbounded on that side).
std::optional<ConfigError> check(std::string_view file, std::string_view field, double v,
                                 double lo, double hi, std::string_view what) {
  if (!(std::isnan(lo) || v >= lo) || !(std::isnan(hi) || v <= hi) || std::isnan(v)) {
    ConfigError err;
    err.file = std::string(file);
    err.field = std::string(field);
    err.message = std::string(what) + " (got " + std::to_string(v) + ")";
    return err;
  }
  return std::nullopt;
}

constexpr double kNoBound = std::numeric_limits<double>::quiet_NaN();

}  // namespace

std::optional<ConfigError> validate_lab_config(const lab::LabConfig& config,
                                               std::string_view file) {
  const auto& w = config.world;
  const auto& c = config.census;
  const auto& l = config.latency;
  struct Rule {
    std::string_view field;
    double value;
    double lo, hi;
    std::string_view what;
  };
  const Rule rules[] = {
      {"world.tier1_count", static_cast<double>(w.tier1_count), 1, kNoBound,
       "must be at least 1 (the tier-1 clique cannot be empty)"},
      {"world.tier1_city_coverage", w.tier1_city_coverage, 0, 1, "must be a probability in [0,1]"},
      {"world.international_transits", static_cast<double>(w.international_transits), 0,
       kNoBound, "must be non-negative"},
      {"world.max_national_transits_per_country",
       static_cast<double>(w.max_national_transits_per_country), 0, kNoBound,
       "must be non-negative"},
      {"world.stub_count", static_cast<double>(w.stub_count), 1, kNoBound,
       "must be positive (probes need stub networks to live in)"},
      {"world.stub_second_provider_prob", w.stub_second_provider_prob, 0, 1,
       "must be a probability in [0,1]"},
      {"world.stub_foreign_registration_prob", w.stub_foreign_registration_prob, 0, 1,
       "must be a probability in [0,1]"},
      {"world.stub_ixp_join_prob", w.stub_ixp_join_prob, 0, 1, "must be a probability in [0,1]"},
      {"world.ixp_count", static_cast<double>(w.ixp_count), 0, kNoBound, "must be non-negative"},
      {"world.ixp_mesh_prob", w.ixp_mesh_prob, 0, 1, "must be a probability in [0,1]"},
      {"world.ixp_bilateral_prob", w.ixp_bilateral_prob, 0, 1, "must be a probability in [0,1]"},
      {"world.intl_transit_customer_prob", w.intl_transit_customer_prob, 0, 1,
       "must be a probability in [0,1]"},
      {"census.total_probes", static_cast<double>(c.total_probes), 1, kNoBound,
       "must be positive (a census of zero probes measures nothing)"},
      {"census.stable_prob", c.stable_prob, 0, 1, "must be a probability in [0,1]"},
      {"census.reliable_geocode_prob", c.reliable_geocode_prob, 0, 1,
       "must be a probability in [0,1]"},
      {"census.resolver_local_prob", c.resolver_local_prob, 0, 1,
       "must be a probability in [0,1]"},
      {"census.resolver_public_ecs_prob", c.resolver_public_ecs_prob, 0, 1,
       "must be a probability in [0,1]"},
      {"census.access_extra_mean_ms", c.access_extra_mean_ms, 0, kNoBound,
       "must be non-negative"},
      {"census.access_extra_cap_ms", c.access_extra_cap_ms, 0, kNoBound, "must be non-negative"},
      {"latency.ms_per_km", l.ms_per_km, 0, kNoBound, "must be non-negative"},
      {"latency.per_hop_ms", l.per_hop_ms, 0, kNoBound, "must be non-negative"},
      {"latency.jitter_max_ms", l.jitter_max_ms, 0, kNoBound, "must be non-negative"},
      {"latency.access_base_ms", l.access_base_ms, 0, kNoBound, "must be non-negative"},
  };
  for (const Rule& r : rules) {
    if (auto err = check(file, r.field, r.value, r.lo, r.hi, r.what)) return err;
  }
  if (config.census.resolver_local_prob + config.census.resolver_public_ecs_prob > 1.0) {
    ConfigError err;
    err.file = std::string(file);
    err.field = "census.resolver_local_prob";
    err.message = "resolver_local_prob + resolver_public_ecs_prob must not exceed 1";
    return err;
  }
  for (std::size_t i = 0; i < config.geo_dbs.size(); ++i) {
    const auto& db = config.geo_dbs[i];
    const std::string base = "geo_dbs[" + std::to_string(i) + "].";
    const Rule db_rules[] = {
        {"wrong_country_prob", db.wrong_country_prob, 0, 1,
         "geo-DB error rates must be probabilities in [0,1]"},
        {"intl_home_bias_prob", db.intl_home_bias_prob, 0, 1,
         "geo-DB error rates must be probabilities in [0,1]"},
        {"wrong_city_prob", db.wrong_city_prob, 0, 1,
         "geo-DB error rates must be probabilities in [0,1]"},
    };
    for (const Rule& r : db_rules) {
      if (auto err = check(file, base + std::string(r.field), r.value, r.lo, r.hi, r.what)) {
        return err;
      }
    }
  }
  return std::nullopt;
}

core::Expected<std::string, ConfigError> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return core::unexpected(ConfigError{path, 0, "", "cannot open file"});
  }
  std::ostringstream out;
  out << in.rdbuf();
  if (in.bad()) {
    return core::unexpected(ConfigError{path, 0, "", "read error"});
  }
  return out.str();
}

core::Expected<Json, ConfigError> load_json(const std::string& path) {
  auto text = read_file(path);
  if (!text) return core::unexpected(std::move(text).error());
  auto parsed = parse_json(*text);
  if (const auto* err = std::get_if<JsonParseError>(&parsed)) {
    return core::unexpected(ConfigError{path, err->position, "", err->message});
  }
  return std::get<Json>(std::move(parsed));
}

core::Expected<lab::LabConfig, ConfigError> load_config(const std::string& path) {
  auto json = load_json(path);
  if (!json) return core::unexpected(std::move(json).error());
  if (!json->is_object()) {
    return core::unexpected(
        ConfigError{path, 0, "", "top-level value must be a JSON object"});
  }
  lab::LabConfig config = lab_config_from_json(*json);
  if (auto err = validate_lab_config(config, path)) {
    return core::unexpected(std::move(*err));
  }
  return config;
}

}  // namespace ranycast::io
