#include "ranycast/bgpdata/rib_snapshot.hpp"

namespace ranycast::bgpdata {

RibSnapshot RibSnapshot::build(const topo::World& world, topo::IpRegistry& registry,
                               std::span<const cdn::Deployment* const> deployments) {
  RibSnapshot snapshot;
  for (const topo::AsNode& node : world.graph.nodes()) {
    snapshot.bgp_.insert(registry.as_block(node.asn), node.asn);
  }
  for (const cdn::Deployment* dep : deployments) {
    for (const cdn::Region& region : dep->regions()) {
      snapshot.bgp_.insert(region.prefix, dep->asn());
    }
  }
  return snapshot;
}

std::optional<Asn> RibSnapshot::ip_to_asn(Ipv4Addr address) const {
  return bgp_.lookup(address);
}

MappedOwner RibSnapshot::map(Ipv4Addr address) const {
  if (const auto asn = bgp_.lookup(address)) {
    return MappedOwner{MappedOwner::Kind::As, *asn, {}};
  }
  if (const auto idx = ixp_lan_index_.lookup(address)) {
    return MappedOwner{MappedOwner::Kind::Ixp, kInvalidAsn, ixp_lans_[*idx]};
  }
  return MappedOwner{};
}

void RibSnapshot::add_ixp_lan(Prefix prefix, std::string ixp_name) {
  ixp_lan_index_.insert(prefix, ixp_lans_.size());
  ixp_lans_.push_back(std::move(ixp_name));
}

std::vector<Prefix> allocate_ixp_lans(const topo::World& world, topo::IpRegistry& registry,
                                      RibSnapshot& snapshot) {
  std::vector<Prefix> lans;
  lans.reserve(world.graph.ixps().size());
  for (const topo::Ixp& ixp : world.graph.ixps()) {
    const Prefix lan = registry.allocate_special(22);  // IXP LANs are sizable
    snapshot.add_ixp_lan(lan, ixp.name);
    lans.push_back(lan);
  }
  return lans;
}

}  // namespace ranycast::bgpdata
