// RouteViews-style RIB snapshot and pyasn-style IP-to-ASN mapping.
//
// The paper maps traceroute hops to ASes with pyasn over a RouteViews RIB
// dump of the measurement day, and to IXPs with PeeringDB's published LAN
// prefixes; 49% of penultimate hops sat on IXP LANs and were invisible in
// BGP (§5.3). This module reproduces that tooling: a snapshot built from
// the ground-truth world (the registry's allocations as origin routes, the
// CDNs' anycast prefixes, and per-IXP LAN prefixes that are *absent* from
// the BGP view), plus the lookup API analyses use.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ranycast/bgpdata/prefix_trie.hpp"
#include "ranycast/cdn/deployment.hpp"
#include "ranycast/topo/generator.hpp"
#include "ranycast/topo/ip_registry.hpp"

namespace ranycast::bgpdata {

/// What an address resolves to in the measurement-plane view.
struct MappedOwner {
  enum class Kind { As, Ixp, Unrouted };
  Kind kind{Kind::Unrouted};
  Asn asn{kInvalidAsn};      ///< valid when kind == As
  std::string ixp_name;      ///< valid when kind == Ixp
};

class RibSnapshot {
 public:
  /// Build the BGP view of a world: every AS block appears as one route
  /// originated by its owner; each deployment's regional prefixes are
  /// originated by the CDN's ASN. IXP LAN prefixes are registered
  /// separately (PeeringDB-style) because they do NOT appear in BGP.
  static RibSnapshot build(const topo::World& world, topo::IpRegistry& registry,
                           std::span<const cdn::Deployment* const> deployments);

  /// pyasn-style lookup: longest-prefix match in the BGP table.
  std::optional<Asn> ip_to_asn(Ipv4Addr address) const;

  /// Combined lookup: BGP first, then the IXP LAN registry (PeeringDB).
  MappedOwner map(Ipv4Addr address) const;

  /// Register an IXP LAN prefix (visible to PeeringDB, not to BGP).
  void add_ixp_lan(Prefix prefix, std::string ixp_name);

  std::size_t route_count() const noexcept { return bgp_.size(); }
  std::size_t ixp_lan_count() const noexcept { return ixp_lans_.size(); }

 private:
  PrefixTrie<Asn> bgp_;
  PrefixTrie<std::size_t> ixp_lan_index_;
  std::vector<std::string> ixp_lans_;
};

/// Allocate one LAN prefix per IXP in the world and register it in the
/// snapshot; returns the address of each IXP's LAN for interface numbering.
std::vector<Prefix> allocate_ixp_lans(const topo::World& world, topo::IpRegistry& registry,
                                      RibSnapshot& snapshot);

}  // namespace ranycast::bgpdata
