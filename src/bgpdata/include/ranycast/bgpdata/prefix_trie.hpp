// Binary (Patricia-style, path-per-bit) prefix trie with longest-prefix
// matching — the data structure behind pyasn-style IP-to-ASN lookup over a
// RouteViews RIB snapshot (paper §5.3/§5.4 use exactly that tooling).
//
// Nodes are stored in a flat vector (indices instead of pointers): compact,
// cache-friendly, and trivially copyable snapshots.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ranycast/core/ipv4.hpp"

namespace ranycast::bgpdata {

template <typename Value>
class PrefixTrie {
 public:
  PrefixTrie() { nodes_.push_back(Node{}); }

  /// Insert (or overwrite) the value for an exact prefix.
  void insert(Prefix prefix, Value value) {
    std::size_t node = 0;
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (prefix.address().bits() >> (31 - depth)) & 1;
      std::size_t child = nodes_[node].child[bit];
      if (child == kNone) {
        child = nodes_.size();
        nodes_[node].child[bit] = child;
        nodes_.push_back(Node{});  // may reallocate: no live references here
      }
      node = child;
    }
    if (!nodes_[node].value) ++size_;
    nodes_[node].value = std::move(value);
  }

  /// Longest-prefix match; nullopt when no covering prefix exists.
  std::optional<Value> lookup(Ipv4Addr address) const {
    std::optional<Value> best;
    std::size_t node = 0;
    for (int depth = 0;; ++depth) {
      if (nodes_[node].value) best = nodes_[node].value;
      if (depth == 32) break;
      const int bit = (address.bits() >> (31 - depth)) & 1;
      const std::size_t child = nodes_[node].child[bit];
      if (child == kNone) break;
      node = child;
    }
    return best;
  }

  /// Exact-prefix lookup (no LPM).
  std::optional<Value> exact(Prefix prefix) const {
    std::size_t node = 0;
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (prefix.address().bits() >> (31 - depth)) & 1;
      const std::size_t child = nodes_[node].child[bit];
      if (child == kNone) return std::nullopt;
      node = child;
    }
    return nodes_[node].value;
  }

  /// Number of stored prefixes.
  std::size_t size() const noexcept { return size_; }

  /// Number of allocated trie nodes (for memory diagnostics).
  std::size_t node_count() const noexcept { return nodes_.size(); }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  struct Node {
    std::size_t child[2]{kNone, kNone};
    std::optional<Value> value;
  };

  std::vector<Node> nodes_;
  std::size_t size_{0};
};

}  // namespace ranycast::bgpdata
