#include "ranycast/obs/journal.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <utility>

#include "ranycast/core/crc32.hpp"
#include "ranycast/obs/span.hpp"

namespace ranycast::obs {

namespace {

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_field(std::string& out, const JournalField& f) {
  append_escaped(out, f.key);
  out += ':';
  switch (f.kind) {
    case JournalField::Kind::String:
      append_escaped(out, f.text);
      break;
    case JournalField::Kind::U64: {
      char buf[24];
      std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(f.u64));
      out += buf;
      break;
    }
    case JournalField::Kind::I64: {
      char buf[24];
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(f.i64));
      out += buf;
      break;
    }
    case JournalField::Kind::F64: {
      if (!std::isfinite(f.f64)) {
        out += '0';
        break;
      }
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.10g", f.f64);
      out += buf;
      break;
    }
    case JournalField::Kind::Bool:
      out += f.boolean ? "true" : "false";
      break;
    case JournalField::Kind::RawJson:
      out += f.text.empty() ? "null" : f.text;
      break;
  }
}

std::atomic<Journal*> g_journal{nullptr};

}  // namespace

JournalField JournalField::str(std::string key, std::string_view value) {
  JournalField f;
  f.key = std::move(key);
  f.kind = Kind::String;
  f.text = std::string(value);
  return f;
}

JournalField JournalField::u64_field(std::string key, std::uint64_t value) {
  JournalField f;
  f.key = std::move(key);
  f.kind = Kind::U64;
  f.u64 = value;
  return f;
}

JournalField JournalField::i64_field(std::string key, std::int64_t value) {
  JournalField f;
  f.key = std::move(key);
  f.kind = Kind::I64;
  f.i64 = value;
  return f;
}

JournalField JournalField::f64_field(std::string key, double value) {
  JournalField f;
  f.key = std::move(key);
  f.kind = Kind::F64;
  f.f64 = value;
  return f;
}

JournalField JournalField::bool_field(std::string key, bool value) {
  JournalField f;
  f.key = std::move(key);
  f.kind = Kind::Bool;
  f.boolean = value;
  return f;
}

JournalField JournalField::raw(std::string key, std::string json) {
  JournalField f;
  f.key = std::move(key);
  f.kind = Kind::RawJson;
  f.text = std::move(json);
  return f;
}

Journal::~Journal() { close(); }

Journal::Journal(Journal&& other) noexcept
    : file_(std::move(other.file_)),
      path_(std::move(other.path_)),
      error_(std::move(other.error_)),
      events_written_(other.events_written_) {
  other.events_written_ = 0;
}

Journal& Journal::operator=(Journal&& other) noexcept {
  if (this != &other) {
    close();
    file_ = std::move(other.file_);
    path_ = std::move(other.path_);
    error_ = std::move(other.error_);
    events_written_ = other.events_written_;
    other.events_written_ = 0;
  }
  return *this;
}

bool Journal::open(const std::string& path, bool append) {
  close();
  auto file = vfs::File::open_append(path, /*truncate=*/!append);
  if (!file) {
    error_ = "cannot open journal '" + path + "': " + file.error().to_string();
    return false;
  }
  file_ = std::move(*file);
  path_ = path;
  error_.clear();
  events_written_ = 0;
  return true;
}

void Journal::close() {
  if (file_.is_open()) {
    (void)file_.sync();
    (void)file_.close();
  }
}

bool Journal::event(std::string_view type, const std::vector<JournalField>& fields,
                    bool durable) {
  if (!file_.is_open()) return false;
  std::string line = "{\"type\":";
  append_escaped(line, type);
  line += ",\"ts_ns\":";
  {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(trace_now_ns()));
    line += buf;
  }
  for (const JournalField& f : fields) {
    line += ',';
    append_field(line, f);
  }
  // Self-checking tail: CRC-32 over everything composed so far, emitted as
  // the line's final field. Readers recompute it to detect mid-file rot.
  {
    const std::uint32_t crc = core::crc32(line.data(), line.size());
    char tag[kJournalCrcTagSize + 1];
    std::snprintf(tag, sizeof tag, ",\"crc\":\"%08x\"}", crc);
    line += tag;
  }
  line += '\n';

  // One write per line: with O_APPEND, lines from concurrent writers (or a
  // resumed process) never interleave mid-line for writes of this size. The
  // vfs loop absorbs EINTR and short writes.
  if (auto written = file_.write_all(line); !written) {
    error_ = "journal write failed: " + written.error().to_string();
    return false;
  }
  ++events_written_;
  if (durable) return sync();
  return true;
}

bool Journal::sync() {
  if (!file_.is_open()) return false;
  if (auto synced = file_.sync(); !synced) {
    error_ = "journal fsync failed: " + synced.error().to_string();
    return false;
  }
  return true;
}

void set_journal(Journal* journal) noexcept {
  g_journal.store(journal, std::memory_order_release);
}

Journal* journal() noexcept { return g_journal.load(std::memory_order_acquire); }

bool journal_event(std::string_view type, const std::vector<JournalField>& fields,
                   bool durable) {
  Journal* j = journal();
  if (j == nullptr) return true;
  return j->event(type, fields, durable);
}

}  // namespace ranycast::obs
