#include "ranycast/obs/report.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "ranycast/obs/flight.hpp"
#include "ranycast/obs/span.hpp"
#include "ranycast/vfs/vfs.hpp"

namespace ranycast::obs {

namespace {

// --- tiny JSON emitter (obs sits below ranycast::io, see header) ----------

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += '0';  // keep the document strictly valid JSON
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  out += buf;
}

void append_number(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

/// Appends `"key":` (with a leading comma unless first).
void append_key(std::string& out, std::string_view key, bool& first) {
  if (!first) out += ',';
  first = false;
  append_escaped(out, key);
  out += ':';
}

void append_histogram(std::string& out, const Histogram::Snapshot& s) {
  out += "{\"count\":";
  append_number(out, s.count);
  out += ",\"sum\":";
  append_number(out, s.sum);
  out += ",\"min\":";
  append_number(out, s.min);
  out += ",\"max\":";
  append_number(out, s.max);
  out += ",\"p50\":";
  append_number(out, s.p50);
  out += ",\"p90\":";
  append_number(out, s.p90);
  out += ",\"p99\":";
  append_number(out, s.p99);
  out += '}';
}

using CounterMap = std::map<std::string, std::uint64_t>;
using HistogramMap = std::map<std::string, Histogram::Snapshot>;

std::uint64_t counter_or_zero(const CounterMap& counters, const std::string& name) {
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

Histogram::Snapshot histogram_or_empty(const HistogramMap& histograms,
                                       const std::string& name) {
  const auto it = histograms.find(name);
  return it == histograms.end() ? Histogram::Snapshot{} : it->second;
}

}  // namespace

std::string json_report() {
  const auto& registry = MetricsRegistry::global();
  std::string out = "{\"labels\":{";
  bool first = true;
  for (const auto& [name, value] : registry.labels()) {
    append_key(out, name, first);
    append_escaped(out, value);
  }
  out += "},\"counters\":{";
  first = true;
  for (const auto& [name, value] : registry.counters()) {
    append_key(out, name, first);
    append_number(out, value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : registry.gauges()) {
    append_key(out, name, first);
    append_number(out, value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, snapshot] : registry.histograms()) {
    append_key(out, name, first);
    append_histogram(out, snapshot);
  }
  out += "},\"spans\":{";
  first = true;
  for (const auto& [name, agg] : span_aggregates()) {
    append_key(out, name, first);
    out += "{\"count\":";
    append_number(out, agg.count);
    out += ",\"total_us\":";
    append_number(out, agg.total_us);
    out += ",\"min_us\":";
    append_number(out, agg.min_us);
    out += ",\"max_us\":";
    append_number(out, agg.max_us);
    out += '}';
  }
  out += "}}";
  return out;
}

namespace {

void append_event(std::string& out, const TraceEvent& e) {
  out += "{\"name\":";
  append_escaped(out, e.name);
  out += ",\"parent\":";
  append_escaped(out, e.parent);
  out += ",\"depth\":";
  append_number(out, static_cast<std::uint64_t>(e.depth));
  out += ",\"start_ns\":";
  append_number(out, e.start_ns);
  out += ",\"dur_ns\":";
  append_number(out, e.dur_ns);
  out += ",\"seq\":";
  append_number(out, e.seq);
  out += ",\"tid\":";
  append_number(out, e.tid);
}

}  // namespace

std::string trace_ndjson() {
  std::string out;
  for (const TraceEvent& e : trace_events()) {
    append_event(out, e);
    out += "}\n";
  }
  return out;
}

std::string flight_ndjson() {
  std::string out;
  for (const FlightThreadSnapshot& t : flight_snapshot()) {
    for (const TraceEvent& e : t.events) {
      append_event(out, e);
      out += ",\"thread\":";
      append_escaped(out, t.name);
      out += "}\n";
    }
  }
  return out;
}

void reset_all() {
  MetricsRegistry::global().reset();
  clear_trace();
}

bool write_bench_report(std::string_view bench_name, double wall_ms) {
  if (!enabled()) return false;
  const auto& registry = MetricsRegistry::global();
  const CounterMap counters = registry.counters();
  const HistogramMap histograms = registry.histograms();
  const auto labels = registry.labels();

  // Fixed schema: every known key is present (zeroed when the bench never
  // exercised that subsystem) so trajectory tooling can diff runs blindly.
  std::string out = "{\"schema\":\"ranycast-bench-telemetry/1\",\"bench\":";
  append_escaped(out, bench_name);
  out += ",\"preset\":";
  const auto preset = labels.find("bench.preset");
  append_escaped(out, preset == labels.end() ? "none" : preset->second);
  out += ",\"wall_ms\":";
  append_number(out, wall_ms);

  out += ",\"solver\":{\"calls\":";
  append_number(out, counter_or_zero(counters, "bgp.solve.calls"));
  out += ",\"nodes\":";
  append_number(out, counter_or_zero(counters, "bgp.solve.nodes"));
  for (const auto* stage : {"stage_customer_us", "stage_peer_us", "stage_provider_us",
                            "total_us"}) {
    out += ",\"";
    out += stage;
    out += "\":";
    append_histogram(out, histogram_or_empty(histograms, std::string("bgp.solve.") + stage));
  }
  out += ",\"tiebreaks\":{\"hot_potato\":";
  append_number(out, counter_or_zero(counters, "bgp.solve.select.hot_potato"));
  out += ",\"hash\":";
  append_number(out, counter_or_zero(counters, "bgp.solve.select.tiebreak_hash"));
  out += "}}";

  out += ",\"lab\":{\"create_calls\":";
  append_number(out, counter_or_zero(counters, "lab.create.calls"));
  for (const auto* phase : {"topology_us", "census_us", "geodb_us", "total_us"}) {
    out += ",\"";
    out += phase;
    out += "\":";
    append_histogram(out, histogram_or_empty(histograms, std::string("lab.create.") + phase));
  }
  out += ",\"deployments\":";
  append_number(out, counter_or_zero(counters, "lab.deployments"));
  out += ",\"regions_solved\":";
  append_number(out, counter_or_zero(counters, "lab.regions_solved"));
  out += '}';

  out += ",\"measurement\":{\"dns_lookup_calls\":";
  append_number(out, counter_or_zero(counters, "lab.dns_lookup.calls"));
  out += ",\"ping_calls\":";
  append_number(out, counter_or_zero(counters, "lab.ping.calls"));
  out += ",\"ping_unreachable\":";
  append_number(out, counter_or_zero(counters, "lab.ping.unreachable"));
  out += ",\"traceroute_calls\":";
  append_number(out, counter_or_zero(counters, "lab.traceroute.calls"));
  out += ",\"geodb_lookups\":";
  append_number(out, counter_or_zero(counters, "dns.geodb.lookups"));
  out += ",\"ping_rtt_ms\":";
  append_histogram(out, histogram_or_empty(histograms, "lab.ping.rtt_ms"));
  out += '}';

  out += ",\"metrics\":";
  out += json_report();
  out += "}\n";

  // Telemetry routes to RANYCAST_OBS_DIR when set (created if missing), so
  // CI and bench runs can collect reports without cd'ing around.
  std::string path = "BENCH_" + std::string(bench_name) + ".json";
  if (const char* dir = std::getenv("RANYCAST_OBS_DIR"); dir != nullptr && *dir != '\0') {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec || !std::filesystem::is_directory(dir)) {
      std::fprintf(stderr, "[obs] RANYCAST_OBS_DIR='%s' cannot be created: %s\n", dir,
                   ec ? ec.message().c_str() : "not a directory");
      return false;
    }
    path = (std::filesystem::path(dir) / path).string();
  }
  // Atomic replace (tmp + fsync + rename + parent-dir fsync): a report file
  // is either the complete previous run or the complete new one, and a
  // crash never leaves a torn JSON for the collector to choke on.
  auto written = vfs::write_file_atomic(path, std::string_view(out));
  if (!written) {
    std::fprintf(stderr, "[obs] bench report write failed: %s\n",
                 written.error().to_string().c_str());
    return false;
  }
  return true;
}

}  // namespace ranycast::obs
