#include "ranycast/obs/metrics.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "ranycast/core/strings.hpp"

namespace ranycast::obs {

namespace {

std::atomic<bool>& enabled_flag() noexcept {
  // Lazy so the env var is honoured no matter when the first instrumented
  // call happens (including from static initializers in other TUs).
  static std::atomic<bool> flag{[] {
    const char* env = std::getenv("RANYCAST_OBS");
    return env != nullptr && strings::truthy(env);
  }()};
  return flag;
}

/// Lock-free running min/max over doubles.
void atomic_min(std::atomic<double>& target, double x) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (x < cur && !target.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double x) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (x > cur && !target.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

}  // namespace

bool enabled() noexcept { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept { enabled_flag().store(on, std::memory_order_relaxed); }

Histogram::Histogram(std::span<const double> upper_bounds)
    : bounds_(upper_bounds.begin(), upper_bounds.end()),
      buckets_(bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

void Histogram::record(double x) noexcept {
  if (!enabled()) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(x, std::memory_order_relaxed);
  atomic_min(min_, x);
  atomic_max(max_, x);
}

double Histogram::quantile(double q) const noexcept {
  const std::uint64_t total = count_.load(std::memory_order_relaxed);
  if (total == 0) return 0.0;
  const double lo = min_.load(std::memory_order_relaxed);
  const double hi = max_.load(std::memory_order_relaxed);
  const double target = q * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    const auto in_bucket =
        static_cast<double>(buckets_[b].load(std::memory_order_relaxed));
    if (cum + in_bucket >= target && in_bucket > 0) {
      // Linear interpolation inside the bucket; the overflow bucket and the
      // first bucket borrow the observed max/min as their missing edge.
      const double lower = b == 0 ? lo : bounds_[b - 1];
      const double upper = b < bounds_.size() ? bounds_[b] : hi;
      const double fraction = (target - cum) / in_bucket;
      return std::clamp(lower + fraction * (upper - lower), lo, hi);
    }
    cum += in_bucket;
  }
  return hi;
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = s.count == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
  s.max = s.count == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
  s.p50 = quantile(0.50);
  s.p90 = quantile(0.90);
  s.p99 = quantile(0.99);
  s.bounds = bounds_;
  s.buckets.reserve(buckets_.size());
  for (const auto& b : buckets_) s.buckets.push_back(b.load(std::memory_order_relaxed));
  return s;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_.emplace(std::string(name), std::make_unique<Histogram>(bounds))
              .first->second;
}

void MetricsRegistry::set_label(std::string_view name, std::string value) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  labels_[std::string(name)] = std::move(value);
}

std::map<std::string, std::uint64_t> MetricsRegistry::counters() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, c] : counters_) out[name] = c->value();
  return out;
}

std::map<std::string, double> MetricsRegistry::gauges() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, double> out;
  for (const auto& [name, g] : gauges_) out[name] = g->value();
  return out;
}

std::map<std::string, Histogram::Snapshot> MetricsRegistry::histograms() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, Histogram::Snapshot> out;
  for (const auto& [name, h] : histograms_) out[name] = h->snapshot();
  return out;
}

std::map<std::string, std::string> MetricsRegistry::labels() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {labels_.begin(), labels_.end()};
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  labels_.clear();
}

}  // namespace ranycast::obs
