#include "ranycast/obs/span.hpp"

#include <chrono>
#include <mutex>

namespace ranycast::obs {

namespace {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

/// Process trace epoch: timestamps in events are relative to the first
/// enabled span/timer, keeping the numbers small and run-relative.
std::uint64_t epoch_ns() noexcept {
  static const std::uint64_t epoch = now_ns();
  return epoch;
}

struct TraceBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::uint64_t next_seq{0};
};

TraceBuffer& trace_buffer() {
  static TraceBuffer buffer;
  return buffer;
}

/// Per-thread stack of open span names, for parent/depth attribution.
thread_local std::vector<const char*> t_open_spans;

}  // namespace

Span::Span(const char* name) noexcept {
  if (!enabled()) return;
  name_ = name;
  parent_ = t_open_spans.empty() ? nullptr : t_open_spans.back();
  depth_ = static_cast<std::uint32_t>(t_open_spans.size());
  t_open_spans.push_back(name);
  // Pin the epoch before reading the clock: the two calls have unspecified
  // evaluation order in an expression, and the very first span must not see
  // an epoch later than its own start.
  const std::uint64_t epoch = epoch_ns();
  start_ns_ = now_ns() - epoch;
}

Span::~Span() {
  if (name_ == nullptr) return;
  const std::uint64_t end_ns = now_ns() - epoch_ns();
  if (!t_open_spans.empty() && t_open_spans.back() == name_) t_open_spans.pop_back();
  TraceBuffer& buffer = trace_buffer();
  const std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.push_back(TraceEvent{name_, parent_ == nullptr ? "" : parent_, start_ns_,
                                     end_ns - start_ns_, depth_, buffer.next_seq++});
}

ScopedTimer::ScopedTimer(Histogram& histogram) noexcept {
  if (!enabled()) return;
  histogram_ = &histogram;
  start_ns_ = now_ns();
}

ScopedTimer::ScopedTimer(const char* histogram_name) {
  if (!enabled()) return;
  histogram_ = &MetricsRegistry::global().histogram(histogram_name);
  start_ns_ = now_ns();
}

ScopedTimer::~ScopedTimer() {
  if (histogram_ == nullptr) return;
  histogram_->record(static_cast<double>(now_ns() - start_ns_) * 1e-3);
}

std::vector<TraceEvent> trace_events() {
  TraceBuffer& buffer = trace_buffer();
  const std::lock_guard<std::mutex> lock(buffer.mutex);
  return buffer.events;
}

void clear_trace() {
  TraceBuffer& buffer = trace_buffer();
  const std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.clear();
  buffer.next_seq = 0;
}

std::map<std::string, SpanAggregate> span_aggregates() {
  std::map<std::string, SpanAggregate> out;
  for (const TraceEvent& e : trace_events()) {
    SpanAggregate& agg = out[e.name];
    const double us = static_cast<double>(e.dur_ns) * 1e-3;
    if (agg.count == 0 || us < agg.min_us) agg.min_us = us;
    if (agg.count == 0 || us > agg.max_us) agg.max_us = us;
    agg.count += 1;
    agg.total_us += us;
  }
  return out;
}

}  // namespace ranycast::obs
