#include "ranycast/obs/span.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "ranycast/obs/flight.hpp"

#if defined(__linux__)
#include <unistd.h>
#endif

namespace ranycast::obs {

namespace {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

/// Process trace epoch: timestamps in events are relative to the first
/// enabled span/timer, keeping the numbers small and run-relative.
std::uint64_t epoch_ns() noexcept {
  static const std::uint64_t epoch = now_ns();
  return epoch;
}

std::uint64_t os_thread_id() noexcept {
#if defined(__linux__)
  return static_cast<std::uint64_t>(::gettid());
#else
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
#endif
}

/// A ring slot: raw pointers only (span names are literals), written by the
/// owning thread, read from snapshots after a happens-before edge.
struct FlightSlot {
  const char* name{nullptr};
  const char* parent{nullptr};
  std::uint64_t start_ns{0};
  std::uint64_t dur_ns{0};
  std::uint32_t depth{0};
  std::uint64_t seq{0};
};

constexpr std::size_t kDefaultCapacity = 16384;
constexpr std::size_t kMinCapacity = 64;
constexpr std::size_t kMaxCapacity = std::size_t{1} << 22;

std::size_t clamp_capacity(std::size_t c) noexcept {
  return std::clamp(c, kMinCapacity, kMaxCapacity);
}

std::size_t initial_capacity() noexcept {
  if (const char* env = std::getenv("RANYCAST_FLIGHT_CAPACITY")) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end != env && parsed > 0) return clamp_capacity(static_cast<std::size_t>(parsed));
  }
  return kDefaultCapacity;
}

/// One thread's recorder. Owned by the registry (never freed, so events
/// survive thread exit); written only by the owning thread.
struct ThreadRecorder {
  explicit ThreadRecorder(std::size_t capacity) : ring(capacity) {}

  void record(const char* name, const char* parent, std::uint64_t start_ns,
              std::uint64_t dur_ns, std::uint32_t depth, std::uint64_t seq) noexcept {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    FlightSlot& slot = ring[static_cast<std::size_t>(h % ring.size())];
    slot.name = name;
    slot.parent = parent;
    slot.start_ns = start_ns;
    slot.dur_ns = dur_ns;
    slot.depth = depth;
    slot.seq = seq;
    head.store(h + 1, std::memory_order_relaxed);
  }

  std::uint32_t slot_index{0};
  std::uint64_t os_tid{0};
  std::string name;                       // guarded by the registry mutex
  std::vector<FlightSlot> ring;           // fixed capacity once constructed
  std::atomic<std::uint64_t> head{0};     // total events ever recorded
};

struct FlightRegistry {
  std::mutex mutex;
  std::vector<ThreadRecorder*> recorders;  // never shrinks; leaked at exit
  std::size_t capacity{initial_capacity()};
  std::atomic<std::uint64_t> next_seq{0};
};

FlightRegistry& registry() {
  static FlightRegistry* r = new FlightRegistry();  // leaked: recorders outlive threads
  return *r;
}

/// Per-thread stack of open span names, for parent/depth attribution.
thread_local std::vector<const char*> t_open_spans;
/// Logical parent inherited from an enqueuing thread (exec pool workers).
thread_local SpanContext t_inherited;
/// This thread's recorder (nullptr until the first recorded span).
thread_local ThreadRecorder* t_recorder = nullptr;
/// Name set before the recorder existed, picked up at registration.
thread_local std::string t_pending_name;
thread_local bool t_has_pending_name = false;

ThreadRecorder& recorder() {
  if (t_recorder != nullptr) return *t_recorder;
  FlightRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  auto* rec = new ThreadRecorder(reg.capacity);
  rec->slot_index = static_cast<std::uint32_t>(reg.recorders.size());
  rec->os_tid = os_thread_id();
  if (t_has_pending_name) {
    rec->name = std::move(t_pending_name);
    t_has_pending_name = false;
  } else {
    rec->name = rec->slot_index == 0 ? "main" : "thread-" + std::to_string(rec->slot_index);
  }
  reg.recorders.push_back(rec);
  t_recorder = rec;
  return *rec;
}

TraceEvent to_event(const FlightSlot& slot, std::uint64_t tid) {
  TraceEvent e;
  e.name = slot.name == nullptr ? "" : slot.name;
  e.parent = slot.parent == nullptr ? "" : slot.parent;
  e.start_ns = slot.start_ns;
  e.dur_ns = slot.dur_ns;
  e.depth = slot.depth;
  e.seq = slot.seq;
  e.tid = tid;
  return e;
}

/// Copy one recorder's retained events (oldest first). Caller holds the
/// registry mutex; the owning thread must be quiesced for exact results.
void snapshot_into(const ThreadRecorder& rec, FlightThreadSnapshot& out) {
  out.slot = rec.slot_index;
  out.os_tid = rec.os_tid;
  out.name = rec.name;
  const std::uint64_t head = rec.head.load(std::memory_order_relaxed);
  const std::size_t cap = rec.ring.size();
  out.recorded = head;
  const std::uint64_t retained = std::min<std::uint64_t>(head, cap);
  out.dropped = head - retained;
  out.events.reserve(static_cast<std::size_t>(retained));
  const std::uint64_t begin = head - retained;
  for (std::uint64_t i = begin; i < head; ++i) {
    out.events.push_back(to_event(rec.ring[static_cast<std::size_t>(i % cap)], rec.os_tid));
  }
}

}  // namespace

std::uint64_t trace_now_ns() noexcept {
  // Pin the epoch before reading the clock (unspecified evaluation order):
  // if this is the first call in the process, reading the clock first would
  // subtract a later epoch and wrap around.
  const std::uint64_t epoch = epoch_ns();
  return now_ns() - epoch;
}

SpanContext current_span_context() noexcept {
  if (!t_open_spans.empty()) {
    const auto base = t_inherited.name != nullptr ? t_inherited.depth + 1 : 0u;
    return SpanContext{t_open_spans.back(),
                       base + static_cast<std::uint32_t>(t_open_spans.size()) - 1};
  }
  return t_inherited;
}

InheritedSpanScope::InheritedSpanScope(SpanContext ctx) noexcept : previous_(t_inherited) {
  t_inherited = ctx;
}

InheritedSpanScope::~InheritedSpanScope() { t_inherited = previous_; }

Span::Span(const char* name) noexcept {
  if (!enabled()) return;
  name_ = name;
  parent_ = t_open_spans.empty() ? t_inherited.name : t_open_spans.back();
  const std::uint32_t base = t_inherited.name != nullptr ? t_inherited.depth + 1 : 0u;
  depth_ = base + static_cast<std::uint32_t>(t_open_spans.size());
  t_open_spans.push_back(name);
  // Pin the epoch before reading the clock: the two calls have unspecified
  // evaluation order in an expression, and the very first span must not see
  // an epoch later than its own start.
  const std::uint64_t epoch = epoch_ns();
  start_ns_ = now_ns() - epoch;
}

Span::~Span() {
  if (name_ == nullptr) return;
  const std::uint64_t end_ns = now_ns() - epoch_ns();
  if (!t_open_spans.empty() && t_open_spans.back() == name_) t_open_spans.pop_back();
  const std::uint64_t seq = registry().next_seq.fetch_add(1, std::memory_order_relaxed);
  recorder().record(name_, parent_, start_ns_, end_ns - start_ns_, depth_, seq);
}

ScopedTimer::ScopedTimer(Histogram& histogram) noexcept {
  if (!enabled()) return;
  histogram_ = &histogram;
  start_ns_ = now_ns();
}

ScopedTimer::ScopedTimer(const char* histogram_name) {
  if (!enabled()) return;
  histogram_ = &MetricsRegistry::global().histogram(histogram_name);
  start_ns_ = now_ns();
}

ScopedTimer::~ScopedTimer() {
  if (histogram_ == nullptr) return;
  histogram_->record(static_cast<double>(now_ns() - start_ns_) * 1e-3);
}

void set_thread_name(std::string name) {
  if (t_recorder != nullptr) {
    const std::lock_guard<std::mutex> lock(registry().mutex);
    t_recorder->name = std::move(name);
    return;
  }
  t_pending_name = std::move(name);
  t_has_pending_name = true;
}

std::size_t flight_capacity() noexcept {
  FlightRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  return reg.capacity;
}

void set_flight_capacity(std::size_t events_per_thread) {
  FlightRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  reg.capacity = clamp_capacity(events_per_thread);
  // Resize in place; retained history is dropped (capacity changes happen at
  // startup or between test phases, never mid-recording).
  for (ThreadRecorder* rec : reg.recorders) {
    rec->ring.assign(reg.capacity, FlightSlot{});
    rec->head.store(0, std::memory_order_relaxed);
  }
}

std::vector<FlightThreadSnapshot> flight_snapshot() {
  FlightRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<FlightThreadSnapshot> out(reg.recorders.size());
  for (std::size_t i = 0; i < reg.recorders.size(); ++i) {
    snapshot_into(*reg.recorders[i], out[i]);
  }
  return out;
}

std::uint64_t dropped_events() {
  std::uint64_t total = 0;
  for (const FlightThreadSnapshot& t : flight_snapshot()) total += t.dropped;
  return total;
}

std::vector<TraceEvent> trace_events() {
  std::vector<TraceEvent> out;
  for (FlightThreadSnapshot& t : flight_snapshot()) {
    out.insert(out.end(), std::make_move_iterator(t.events.begin()),
               std::make_move_iterator(t.events.end()));
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) { return a.seq < b.seq; });
  return out;
}

void clear_trace() {
  FlightRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (ThreadRecorder* rec : reg.recorders) rec->head.store(0, std::memory_order_relaxed);
  reg.next_seq.store(0, std::memory_order_relaxed);
}

std::map<std::string, SpanAggregate> span_aggregates() {
  std::map<std::string, SpanAggregate> out;
  for (const TraceEvent& e : trace_events()) {
    SpanAggregate& agg = out[e.name];
    const double us = static_cast<double>(e.dur_ns) * 1e-3;
    if (agg.count == 0 || us < agg.min_us) agg.min_us = us;
    if (agg.count == 0 || us > agg.max_us) agg.max_us = us;
    agg.count += 1;
    agg.total_us += us;
  }
  return out;
}

std::uint64_t rss_high_water_kb() {
  std::uint64_t kb = 0;
#if defined(__linux__)
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof line, f) != nullptr) {
      unsigned long long value = 0;
      if (std::sscanf(line, "VmHWM: %llu kB", &value) == 1) {
        kb = value;
        break;
      }
    }
    std::fclose(f);
  }
#endif
  if (kb > 0 && enabled()) {
    static Gauge& gauge = MetricsRegistry::global().gauge("process.rss_hwm_kb");
    gauge.set(static_cast<double>(kb));
  }
  return kb;
}

}  // namespace ranycast::obs
