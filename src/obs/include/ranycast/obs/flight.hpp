// The flight recorder: per-thread bounded span rings + process telemetry.
//
// Every thread that completes a Span owns a fixed-capacity ring buffer.
// Writes are single-producer (the owning thread), lock-free and relaxed;
// once the ring is full the oldest events are overwritten and counted in
// the thread's `dropped` tally — a long run keeps the *most recent* window
// of events per thread at a bounded, predictable memory cost, instead of
// growing an unbounded global vector. Snapshots are taken from quiesced
// threads (after joins / parallel_for completion, which establish the
// necessary happens-before edges).
//
// Thread identity is preserved: the OS tid plus a registered name
// (set_thread_name), so exported traces can be keyed by real thread.
//
// rss_high_water_kb() samples the process's peak resident set (VmHWM) and
// mirrors it into the "process.rss_hwm_kb" gauge.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "ranycast/obs/span.hpp"

namespace ranycast::obs {

/// One thread's ring, snapshotted.
struct FlightThreadSnapshot {
  std::uint32_t slot{0};    ///< registration order (0 = first recording thread)
  std::uint64_t os_tid{0};  ///< OS thread id
  std::string name;         ///< registered name, or "thread-<slot>"
  std::uint64_t recorded{0};  ///< spans ever recorded on this thread
  std::uint64_t dropped{0};   ///< spans overwritten once the ring filled
  std::vector<TraceEvent> events;  ///< retained events, oldest first
};

/// Name the calling thread for trace exports ("main", "exec.worker-3", …).
/// Cheap and allocation-free until the thread records its first span.
void set_thread_name(std::string name);

/// Ring capacity (events per thread). The default is 16384, overridable
/// with the RANYCAST_FLIGHT_CAPACITY environment variable (clamped to
/// [64, 1<<22]). set_flight_capacity resizes every existing ring and
/// applies to future threads; call it only while no spans are being
/// recorded (startup or tests).
std::size_t flight_capacity() noexcept;
void set_flight_capacity(std::size_t events_per_thread);

/// Snapshot every thread's ring (threads that recorded at least one span,
/// plus any that registered a name), ordered by registration slot.
std::vector<FlightThreadSnapshot> flight_snapshot();

/// Total spans lost to ring overwrites across all threads.
std::uint64_t dropped_events();

/// The flight snapshot as NDJSON: one {"name","parent","depth","start_ns",
/// "dur_ns","seq","tid","thread"} object per retained event — the on-disk
/// dump format `ranycast-flight export --flight` consumes.
std::string flight_ndjson();

/// Peak resident set size of the process in KiB (0 when unavailable).
/// Also records the value into the "process.rss_hwm_kb" gauge when
/// observability is enabled.
std::uint64_t rss_high_water_kb();

}  // namespace ranycast::obs
