// RAII tracing spans and scoped wall-time timers, recorded into a per-thread
// flight recorder.
//
// A Span records one completed trace event (name, parent, depth, start,
// duration, thread) into the recording thread's bounded ring buffer (see
// flight.hpp); nesting is tracked per thread, so a span opened while another
// is live on the same thread becomes its child. A worker thread executing
// chunks on behalf of a parallel_for additionally inherits the *logical*
// parent — the span that was open on the enqueuing thread — via
// InheritedSpanScope, so cross-thread flame graphs nest correctly.
//
// Events are exportable as NDJSON (one JSON object per line) via
// obs::trace_ndjson() / obs::flight_ndjson() and aggregated per name for the
// JSON report.
//
// A ScopedTimer is the cheaper cousin: no trace event, it just records the
// scope's wall time in microseconds into a Histogram on destruction.
//
// Both are no-ops (no clock read, no allocation) when obs::enabled() is
// false at construction.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ranycast/obs/metrics.hpp"

namespace ranycast::obs {

/// A completed span, in completion order.
struct TraceEvent {
  std::string name;
  std::string parent;      ///< enclosing span (same thread or inherited); "" if none
  std::uint64_t start_ns;  ///< relative to the process trace epoch
  std::uint64_t dur_ns;
  std::uint32_t depth;     ///< nesting depth at open time (0 = top level)
  std::uint64_t seq;       ///< process-wide completion sequence number
  std::uint64_t tid;       ///< OS thread id of the recording thread
};

/// The innermost open span of the current thread (name nullptr when none),
/// including the inherited base depth. Passed across threads by the exec
/// pool so worker-side spans keep their logical parent.
struct SpanContext {
  const char* name{nullptr};
  std::uint32_t depth{0};
};

SpanContext current_span_context() noexcept;

/// Installs `ctx` as the logical parent of every top-level span opened on
/// this thread while the scope is alive (used by exec::ThreadPool workers
/// around each parallel_for job). Scopes restore the previous context on
/// destruction and may nest.
class InheritedSpanScope {
 public:
  explicit InheritedSpanScope(SpanContext ctx) noexcept;
  ~InheritedSpanScope();

  InheritedSpanScope(const InheritedSpanScope&) = delete;
  InheritedSpanScope& operator=(const InheritedSpanScope&) = delete;

 private:
  SpanContext previous_;
};

class Span {
 public:
  /// `name` must be a string with static storage duration (a literal).
  explicit Span(const char* name) noexcept;
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_{nullptr};  // nullptr => observability was off at open
  const char* parent_{nullptr};
  std::uint64_t start_ns_{0};
  std::uint32_t depth_{0};
};

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram) noexcept;
  /// Registry lookup by name (prefer the Histogram& overload plus a cached
  /// reference in hot paths).
  explicit ScopedTimer(const char* histogram_name);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_{nullptr};  // nullptr => observability was off at open
  std::uint64_t start_ns_{0};
};

/// Nanoseconds since the process trace epoch (the first enabled span/timer
/// pins the epoch). Journal events carry this so they align with spans.
std::uint64_t trace_now_ns() noexcept;

/// Snapshot of the retained trace events across every thread's ring,
/// ordered by completion sequence. Events that were overwritten in a ring
/// are not included — see obs::dropped_events().
std::vector<TraceEvent> trace_events();
void clear_trace();

/// Per-name rollup of the retained spans.
struct SpanAggregate {
  std::uint64_t count{0};
  double total_us{0.0};
  double min_us{0.0};
  double max_us{0.0};
};
std::map<std::string, SpanAggregate> span_aggregates();

}  // namespace ranycast::obs
