// RAII tracing spans and scoped wall-time timers.
//
// A Span records one completed trace event (name, parent, depth, start,
// duration) into a process-wide buffer; nesting is tracked per thread, so a
// span opened while another is live on the same thread becomes its child.
// Events are exportable as NDJSON (one JSON object per line) via
// obs::trace_ndjson() and aggregated per name for the JSON report.
//
// A ScopedTimer is the cheaper cousin: no trace event, it just records the
// scope's wall time in microseconds into a Histogram on destruction.
//
// Both are no-ops (no clock read, no allocation) when obs::enabled() is
// false at construction.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ranycast/obs/metrics.hpp"

namespace ranycast::obs {

/// A completed span, in completion order.
struct TraceEvent {
  std::string name;
  std::string parent;      ///< enclosing span on the same thread; "" if none
  std::uint64_t start_ns;  ///< relative to the process trace epoch
  std::uint64_t dur_ns;
  std::uint32_t depth;     ///< nesting depth at open time (0 = top level)
  std::uint64_t seq;       ///< process-wide completion sequence number
};

class Span {
 public:
  /// `name` must be a string with static storage duration (a literal).
  explicit Span(const char* name) noexcept;
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_{nullptr};  // nullptr => observability was off at open
  const char* parent_{nullptr};
  std::uint64_t start_ns_{0};
  std::uint32_t depth_{0};
};

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram) noexcept;
  /// Registry lookup by name (prefer the Histogram& overload plus a cached
  /// reference in hot paths).
  explicit ScopedTimer(const char* histogram_name);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_{nullptr};  // nullptr => observability was off at open
  std::uint64_t start_ns_{0};
};

/// Snapshot of all completed trace events.
std::vector<TraceEvent> trace_events();
void clear_trace();

/// Per-name rollup of completed spans.
struct SpanAggregate {
  std::uint64_t count{0};
  double total_us{0.0};
  double min_us{0.0};
  double max_us{0.0};
};
std::map<std::string, SpanAggregate> span_aggregates();

}  // namespace ranycast::obs
