// The structured run journal: a typed, append-only NDJSON event stream.
//
// Each event is one JSON object on one line: {"type":"<kind>","ts_ns":N,...}.
// Lines are composed in memory and written with a single O_APPEND write, so
// concurrent writers (and a resumed run appending to an earlier journal)
// interleave at line granularity, never mid-line. Events marked durable are
// fsync'd before the call returns — guard uses this at step granularity, so
// the journal of a SIGKILL'd run is readable up to the last completed step.
//
// Event kinds emitted by the codebase (see docs/observability.md for the
// full field tables):
//   run_manifest, phase_begin, phase_end, chaos_step, transient_window,
//   checkpoint, resumed, stopped, bench_sample
//
// Every line ends with a self-checking tag `,"crc":"xxxxxxxx"}` — a CRC-32
// (as 8 lowercase hex digits) over all preceding bytes of the line. Readers
// (ranycast::flight) recompute it to tell three failure modes apart:
// mid-file bit rot (crc mismatch → the line is skipped and counted), a
// kill-cut final line (no tag, unparseable → truncated tail), and legacy
// journals written before the tag existed (no tag, parseable → accepted).
//
// The journal deliberately lives in obs (below ranycast::io): it writes
// JSON with its own tiny emitter and parses nothing. Reading journals back
// is ranycast::flight's job. All writes go through ranycast::vfs so fault
// plans can torture the journal path too.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ranycast/vfs/vfs.hpp"

namespace ranycast::obs {

/// Byte length of the per-line CRC tag: `,"crc":"` + 8 hex + `"}`.
inline constexpr std::size_t kJournalCrcTagSize = 18;

/// One typed key/value in a journal event.
struct JournalField {
  enum class Kind { String, U64, I64, F64, Bool, RawJson };

  std::string key;
  Kind kind{Kind::String};
  std::string text;       // String / RawJson payload
  std::uint64_t u64{0};
  std::int64_t i64{0};
  double f64{0.0};
  bool boolean{false};

  static JournalField str(std::string key, std::string_view value);
  static JournalField u64_field(std::string key, std::uint64_t value);
  static JournalField i64_field(std::string key, std::int64_t value);
  static JournalField f64_field(std::string key, double value);
  static JournalField bool_field(std::string key, bool value);
  /// `json` must already be a valid JSON value (object/array/number/...);
  /// it is spliced into the line verbatim.
  static JournalField raw(std::string key, std::string json);
};

/// Append-only NDJSON writer over a POSIX fd. Not copyable; movable.
class Journal {
 public:
  Journal() = default;
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;
  Journal(Journal&& other) noexcept;
  Journal& operator=(Journal&& other) noexcept;

  /// Opens (creating if needed) `path` for appending. Truncates first unless
  /// `append` — a fresh run starts a fresh journal, `--resume` appends.
  /// Returns false (and records error()) on failure.
  bool open(const std::string& path, bool append);
  void close();
  bool is_open() const noexcept { return file_.is_open(); }
  const std::string& path() const noexcept { return path_; }
  const std::string& error() const noexcept { return error_; }

  /// Appends one event line. `ts_ns` is stamped automatically from
  /// obs::trace_now_ns() so journal events align with flight-recorder spans.
  /// When `durable`, the line is fsync'd before returning.
  bool event(std::string_view type, const std::vector<JournalField>& fields,
             bool durable = false);

  /// fsync the underlying fd (used at phase boundaries).
  bool sync();

  std::uint64_t events_written() const noexcept { return events_written_; }

 private:
  vfs::File file_;
  std::string path_;
  std::string error_;
  std::uint64_t events_written_{0};
};

/// Process-global journal used by library emitters (chaos::Engine,
/// converge::Plane, guard, the bench harness). Null when no journal is
/// installed; emitters must treat that as "journal off". The caller that
/// opens the journal owns it and must uninstall (set_journal(nullptr))
/// before destroying it.
void set_journal(Journal* journal) noexcept;
Journal* journal() noexcept;

/// Convenience: appends an event to the installed journal, if any.
/// Returns false only on a write error (not when no journal is installed).
bool journal_event(std::string_view type, const std::vector<JournalField>& fields,
                   bool durable = false);

}  // namespace ranycast::obs
