// Machine-readable exports of the observability state.
//
// json_report() dumps the whole registry (counters, gauges, histogram
// summaries, span rollups, labels) as one JSON object; trace_ndjson() dumps
// the raw span events one JSON object per line. write_bench_report() is the
// bench-harness hook: it wraps the report in the fixed BENCH_<name>.json
// schema (see docs/observability.md) and writes it to the current directory
// — only when observability is enabled, so RANYCAST_OBS=0 runs leave no
// files behind.
//
// obs deliberately does not depend on ranycast::io (which sits above the
// lab façade); the emitters here produce standard JSON with a few dozen
// lines of local code instead.
#pragma once

#include <string>
#include <string_view>

namespace ranycast::obs {

/// The full registry + span rollup as a JSON object.
std::string json_report();

/// Completed trace events as NDJSON (one object per line, possibly empty).
std::string trace_ndjson();

/// Zero all metric values and drop all trace events (registered entries and
/// cached references survive).
void reset_all();

/// Write BENCH_<bench_name>.json into the current directory. `wall_ms` is
/// the bench's total wall time as measured by the caller. Returns true if a
/// file was written; always false (and no I/O) when observability is off.
bool write_bench_report(std::string_view bench_name, double wall_ms);

}  // namespace ranycast::obs
