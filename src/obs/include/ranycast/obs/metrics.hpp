// Process-wide observability: a runtime switch, named counters, gauges and
// fixed-bucket latency histograms with quantile extraction.
//
// The switch is read once from the RANYCAST_OBS environment variable (unset,
// "", "0", "false" or "off" mean disabled) and can be overridden with
// set_enabled() (e.g. via LabConfig::observability). Every recording
// operation early-returns on a relaxed atomic load when disabled, so
// instrumentation left in hot paths costs one predictable branch.
//
// Registry entries are created on first use and are never erased — reset()
// zeroes values in place — so instrumentation sites may cache the returned
// references (typically in a function-local static) and increment lock-free
// forever after.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ranycast::obs {

/// Whether instrumentation records anything (one relaxed atomic load).
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (!enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept {
    if (!enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Default bucket upper bounds for wall-time histograms, in microseconds
/// (1 µs .. 10 s, roughly logarithmic).
inline constexpr double kLatencyUsBounds[] = {
    1,     2,     5,     10,    20,    50,    100,   200,   500,   1e3,  2e3,
    5e3,   1e4,   2e4,   5e4,   1e5,   2e5,   5e5,   1e6,   2e6,   5e6,  1e7};

/// Default bucket upper bounds for simulated RTT histograms, in milliseconds.
inline constexpr double kRttMsBounds[] = {1,  2,  5,  10, 20,  30,  50,  75,
                                          100, 150, 200, 300, 400, 600, 1000};

/// Fixed-bucket histogram. Buckets are (prev_bound, bound]; one overflow
/// bucket past the last bound. Recording is a binary search plus relaxed
/// atomic increments; quantiles interpolate linearly inside a bucket and are
/// clamped to the observed [min, max].
class Histogram {
 public:
  struct Snapshot {
    std::uint64_t count{0};
    double sum{0.0};
    double min{0.0};
    double max{0.0};
    double p50{0.0};
    double p90{0.0};
    double p99{0.0};
    std::vector<double> bounds;          ///< upper bound per finite bucket
    std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 (overflow last)
  };

  explicit Histogram(std::span<const double> upper_bounds);

  void record(double x) noexcept;
  double quantile(double q) const noexcept;
  Snapshot snapshot() const;
  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// The process-wide metric namespace. Thread-safe; lookups take a mutex,
/// returned references never invalidate.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name,
                       std::span<const double> bounds = kLatencyUsBounds);

  /// Free-form string annotation attached to reports (e.g. which bench
  /// preset ran). Gated on enabled() like every other recording call.
  void set_label(std::string_view name, std::string value);

  std::map<std::string, std::uint64_t> counters() const;
  std::map<std::string, double> gauges() const;
  std::map<std::string, Histogram::Snapshot> histograms() const;
  std::map<std::string, std::string> labels() const;

  /// Zero every value in place. Existing Counter/Gauge/Histogram references
  /// stay valid; labels are cleared.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::string, std::less<>> labels_;
};

}  // namespace ranycast::obs
