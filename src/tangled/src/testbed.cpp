#include "ranycast/tangled/testbed.hpp"

#include "ranycast/cdn/catalog.hpp"

namespace ranycast::tangled {

std::vector<CityId> site_cities() {
  const auto& gaz = geo::Gazetteer::world();
  std::vector<CityId> out;
  for (const auto& iata : cdn::catalog::tangled_sites()) {
    if (const auto c = gaz.find_by_iata(iata)) out.push_back(*c);
  }
  return out;
}

namespace {

cdn::DeploymentSpec base_spec(std::string name) {
  cdn::DeploymentSpec spec;
  spec.name = std::move(name);
  spec.asn = make_asn(cdn::catalog::kTangledAsn);
  spec.attachment_seed = cdn::catalog::kTangledSeed;
  // Research testbed: smaller upstream fan-out than a commercial CDN.
  spec.min_providers = 1;
  spec.max_providers = 2;
  spec.max_ixp_peers = 3;
  return spec;
}

}  // namespace

cdn::DeploymentSpec global_spec() {
  cdn::DeploymentSpec spec = base_spec("Tangled-global");
  spec.region_names = {"global"};
  for (const auto& iata : cdn::catalog::tangled_sites()) {
    spec.sites.push_back(cdn::SiteSpec{iata, {0}});
  }
  return spec;
}

cdn::DeploymentSpec regional_spec(std::span<const int> site_region, int k) {
  cdn::DeploymentSpec spec = base_spec("Tangled-regional");
  for (int r = 0; r < k; ++r) spec.region_names.push_back("R" + std::to_string(r));
  const auto& iatas = cdn::catalog::tangled_sites();
  for (std::size_t i = 0; i < iatas.size() && i < site_region.size(); ++i) {
    spec.sites.push_back(
        cdn::SiteSpec{iatas[i], {static_cast<std::size_t>(site_region[i])}});
  }
  return spec;
}

cdn::DeploymentSpec unicast_site_spec(std::size_t site_index) {
  const auto& iatas = cdn::catalog::tangled_sites();
  cdn::DeploymentSpec spec = base_spec("Tangled-unicast-" + iatas[site_index]);
  spec.region_names = {"unicast"};
  spec.sites.push_back(cdn::SiteSpec{iatas[site_index], {0}});
  return spec;
}

}  // namespace ranycast::tangled
