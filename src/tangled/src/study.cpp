#include "ranycast/tangled/study.hpp"

#include "ranycast/dns/route53.hpp"
#include "ranycast/tangled/testbed.hpp"

namespace ranycast::tangled {

TangledStudy run_study(lab::Lab& lab, const StudyConfig& config) {
  TangledStudy study;
  const auto retained = lab.census().retained();

  // ---- unicast latency matrix (one single-site prefix per site) ----
  study.input.site_cities = site_cities();
  const std::size_t n_sites = study.input.site_cities.size();
  std::vector<const lab::DeploymentHandle*> unicast;
  unicast.reserve(n_sites);
  for (std::size_t s = 0; s < n_sites; ++s) {
    unicast.push_back(&lab.add_deployment(unicast_site_spec(s)));
  }
  study.input.unicast_ms.reserve(retained.size());
  study.input.probe_cities.reserve(retained.size());
  for (const atlas::Probe* p : retained) {
    std::vector<double> row(n_sites, config.unreachable_ms);
    for (std::size_t s = 0; s < n_sites; ++s) {
      const auto rtt = lab.ping(*p, unicast[s]->deployment.regions()[0].service_ip);
      if (rtt) row[s] = rtt->ms;
    }
    study.input.unicast_ms.push_back(std::move(row));
    study.input.probe_cities.push_back(p->reported_city);
  }

  // ---- ReOpt partition ----
  // The k-sweep deploys each candidate partition on the testbed and measures
  // the mean anycast RTT under the country-level mapping (the paper's
  // "average client latency under each regional partition"). A unicast proxy
  // would miss intra-region catchment inefficiencies, which is precisely
  // what distinguishes a coarse partition from a fine one.
  const partition::PartitionEvaluator evaluate =
      [&](const partition::ReOptResult& candidate) {
        const auto& handle =
            lab.add_deployment(regional_spec(candidate.site_region, candidate.k));
        double total = 0.0;
        std::size_t counted = 0;
        for (std::size_t i = 0; i < retained.size(); ++i) {
          const int region = candidate.mapped_region(i, study.input);
          const auto rtt = lab.ping(
              *retained[i],
              handle.deployment.regions()[static_cast<std::size_t>(region)].service_ip);
          if (!rtt) continue;
          total += rtt->ms;
          ++counted;
        }
        return counted > 0 ? total / static_cast<double>(counted) : 1e12;
      };
  study.reopt = partition::reopt_partition(study.input, config.reopt, evaluate);

  // ---- deploy global and regional anycast ----
  study.global = &lab.add_deployment(global_spec());
  study.regional = &lab.add_deployment(regional_spec(study.reopt.site_region, study.reopt.k));
  const auto& regional_dep = study.regional->deployment;

  // ---- Route 53 country-level mapping from the ReOpt table ----
  dns::Route53Emulator route53{&lab.mapping_db()};
  for (const auto& [iso2, region] : study.reopt.country_region) {
    route53.set_country_record(iso2, static_cast<std::size_t>(region));
  }
  route53.set_default_record(0);

  // ---- measure every retained probe under the three configurations ----
  study.results.reserve(retained.size());
  for (std::size_t i = 0; i < retained.size(); ++i) {
    const atlas::Probe* p = retained[i];
    ProbeStudyResult r;
    r.probe = p;

    const auto global_rtt = lab.ping(*p, study.global->deployment.regions()[0].service_ip);
    if (!global_rtt) continue;  // unreachable probes are skipped everywhere
    r.global_ms = global_rtt->ms;

    const int direct_region = study.reopt.probe_region[i];
    const auto direct_rtt = lab.ping(
        *p, regional_dep.regions()[static_cast<std::size_t>(direct_region)].service_ip);
    if (!direct_rtt) continue;
    r.direct_ms = direct_rtt->ms;

    // Route 53 sees what DNS sees: the resolver egress for non-ECS
    // resolvers, the client /24 with ECS.
    const auto visible = dns::effective_address(p->query_context(), dns::QueryMode::Ldns);
    const auto r53_region = route53.resolve(visible).value_or(0);
    const auto r53_rtt = lab.ping(*p, regional_dep.regions()[r53_region].service_ip);
    if (!r53_rtt) continue;
    r.route53_ms = r53_rtt->ms;

    study.results.push_back(r);
  }
  return study;
}

}  // namespace ranycast::tangled
