// Umbrella header: the library's primary public surface in one include.
//
//   #include "ranycast/ranycast.hpp"
//
// Pulls in the laboratory façade and the modules a typical experiment
// touches. Specialized surfaces (geoloc pipeline, partitioning, proposals,
// resilience, verfploeter, io) keep their own headers — include them
// explicitly when needed.
#pragma once

#include "ranycast/analysis/classify.hpp"
#include "ranycast/analysis/stats.hpp"
#include "ranycast/analysis/table.hpp"
#include "ranycast/atlas/grouping.hpp"
#include "ranycast/cdn/catalog.hpp"
#include "ranycast/lab/comparison.hpp"
#include "ranycast/lab/lab.hpp"
#include "ranycast/tangled/study.hpp"
