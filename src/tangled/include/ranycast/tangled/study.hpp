// The §6 study driver: measure a unicast latency matrix on the Tangled
// testbed, run ReOpt, deploy global + regional anycast, and measure every
// retained probe under three client mappings (direct lowest-latency
// assignment, Route 53 country-level mapping, and global anycast).
// Feeds Figs. 6a/6b/6c.
#pragma once

#include <vector>

#include "ranycast/lab/lab.hpp"
#include "ranycast/partition/reopt.hpp"

namespace ranycast::tangled {

struct ProbeStudyResult {
  const atlas::Probe* probe{nullptr};
  double global_ms{0.0};   ///< RTT under the global anycast configuration
  double direct_ms{0.0};   ///< regional, direct lowest-latency assignment
  double route53_ms{0.0};  ///< regional, Route 53 country-level mapping
};

struct TangledStudy {
  partition::ReOptInput input;  ///< sites + unicast matrix + probe cities
  partition::ReOptResult reopt;
  std::vector<ProbeStudyResult> results;
  const lab::DeploymentHandle* global{nullptr};
  const lab::DeploymentHandle* regional{nullptr};
};

struct StudyConfig {
  partition::ReOptConfig reopt;
  /// Probes with no route to some site get this sentinel in the matrix.
  double unreachable_ms{1e9};
};

TangledStudy run_study(lab::Lab& lab, const StudyConfig& config = {});

}  // namespace ranycast::tangled
