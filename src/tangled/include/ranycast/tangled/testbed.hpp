// The Tangled open-access anycast testbed model (paper §3.2): 12 sites
// (APAC 2, EMEA 5, NA 3, LatAm 2) that can be configured to announce one
// global prefix, per-region prefixes, or per-site "unicast" prefixes for
// latency-matrix measurements.
#pragma once

#include <span>
#include <vector>

#include "ranycast/cdn/builder.hpp"

namespace ranycast::tangled {

/// The 12 site cities (resolved from the catalog's IATA list).
std::vector<CityId> site_cities();

/// All 12 sites announce a single global prefix.
cdn::DeploymentSpec global_spec();

/// Regional configuration: `site_region[i]` gives the region index of the
/// i-th site (order matches site_cities()); `k` is the region count.
/// Area defaults in the returned spec are a coarse geographic fallback and
/// are normally overridden by an explicit client mapping (ReOpt / Route 53).
cdn::DeploymentSpec regional_spec(std::span<const int> site_region, int k);

/// A single-site configuration used to emulate unicast latency measurement
/// toward that site (announcing a dedicated prefix from one site only).
cdn::DeploymentSpec unicast_site_spec(std::size_t site_index);

}  // namespace ranycast::tangled
