#include "ranycast/bgp/path_metrics.hpp"

#include "ranycast/geo/gazetteer.hpp"

namespace ranycast::bgp {

namespace {

/// Deterministic uniform [0,1) from a hash of the inputs.
double hash01(std::uint64_t h) noexcept {
  return static_cast<double>(mix64(h) >> 11) * 0x1.0p-53;
}

std::uint64_t path_hash(const Route& r, Asn client, std::uint64_t seed) noexcept {
  std::uint64_t h = hash_combine(seed, value(client));
  h = hash_combine(h, value(r.origin_site));
  for (Asn a : r.as_path) h = hash_combine(h, value(a));
  return h;
}

}  // namespace

Km LatencyModel::path_distance(const Route& r, CityId client_city) const {
  const auto& gaz = geo::Gazetteer::world();
  Km total{0.0};
  CityId prev = client_city;
  // Walk the geo path from the client side toward the site.
  for (auto it = r.geo_path.rbegin(); it != r.geo_path.rend(); ++it) {
    total += gaz.distance(prev, *it);
    prev = *it;
  }
  return total;
}

Rtt LatencyModel::path_rtt(const Route& r, CityId client_city, Asn client_asn,
                           double client_access_extra_ms) const {
  const double propagation = path_distance(r, client_city).km * ms_per_km;
  const double hops = per_hop_ms * static_cast<double>(r.path_length() + 1);
  const double jitter = jitter_max_ms * hash01(path_hash(r, client_asn, seed));
  return Rtt{propagation + hops + jitter + access_base_ms + client_access_extra_ms};
}

namespace {

template <typename RouterIpFn>
TracerouteResult synth_traceroute_impl(const Route& route, CityId client_city, Asn client_asn,
                                       double client_access_extra_ms, bool onsite_router,
                                       Ipv4Addr destination, const LatencyModel& latency,
                                       const TracerouteConfig& config, RouterIpFn&& router_ip) {
  const auto& gaz = geo::Gazetteer::world();
  TracerouteResult out;
  out.destination = destination;
  out.rtt = latency.path_rtt(route, client_city, client_asn, client_access_extra_ms);

  // Cumulative RTT along the path; each hop responds with roughly the
  // propagation latency from the client to that interconnection city.
  const double base = latency.access_base_ms + client_access_extra_ms;
  double cum_km = 0.0;
  CityId prev = client_city;
  int hop_count = 1;
  auto hop_rtt = [&](CityId at) {
    cum_km += gaz.distance(prev, at).km;
    prev = at;
    return Rtt{base + cum_km * latency.ms_per_km +
               latency.per_hop_ms * static_cast<double>(hop_count++)};
  };

  // First responding hop: the client AS's own border router.
  out.hops.push_back(Hop{router_ip(client_asn, client_city), client_asn, client_city,
                         hop_rtt(client_city)});

  // Transit hops: walk the AS path from the client side (Ak ... A1); A_i's
  // responding interface is its ingress at geo_path[i] (where it hands the
  // route downstream, i.e. where data enters it from upstream).
  const auto& as_path = route.as_path;
  const auto& geo_path = route.geo_path;
  for (std::size_t i = as_path.size(); i-- > 1;) {
    const Asn owner = as_path[i];
    const CityId city = geo_path[i];
    out.hops.push_back(Hop{router_ip(owner, city), owner, city, hop_rtt(city)});
  }

  // Penultimate hop at the site city: the CDN's own edge router if the site
  // has one, otherwise the first-hop neighbor's interface.
  const CityId site_city = geo_path.front();
  const Asn phop_owner = onsite_router ? route.origin_asn : as_path.size() > 1
                                             ? as_path[1]
                                             : client_asn;
  out.hops.push_back(Hop{router_ip(phop_owner, site_city), phop_owner, site_city,
                         hop_rtt(site_city)});

  const std::uint64_t h = hash_combine(path_hash(route, client_asn, config.seed), 0x7E57);
  out.phop_valid = hash01(h) >= config.phop_loss_prob;
  return out;
}

}  // namespace

TracerouteResult synth_traceroute(const Route& route, CityId client_city, Asn client_asn,
                                  double client_access_extra_ms, bool onsite_router,
                                  Ipv4Addr destination, const LatencyModel& latency,
                                  const TracerouteConfig& config, topo::IpRegistry& registry) {
  return synth_traceroute_impl(route, client_city, client_asn, client_access_extra_ms,
                               onsite_router, destination, latency, config,
                               [&](Asn a, CityId c) { return registry.router_ip(a, c); });
}

TracerouteResult synth_traceroute(const Route& route, CityId client_city, Asn client_asn,
                                  double client_access_extra_ms, bool onsite_router,
                                  Ipv4Addr destination, const LatencyModel& latency,
                                  const TracerouteConfig& config,
                                  const topo::IpRegistry& registry) {
  return synth_traceroute_impl(route, client_city, client_asn, client_access_extra_ms,
                               onsite_router, destination, latency, config, [&](Asn a, CityId c) {
                                 return registry.router_ip_if_known(a, c).value();
                               });
}

}  // namespace ranycast::bgp
