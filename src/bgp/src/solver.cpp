#include "ranycast/bgp/solver.hpp"

#include <algorithm>

namespace ranycast::bgp {

std::string_view to_string(RouteClass c) noexcept {
  switch (c) {
    case RouteClass::Customer:
      return "customer";
    case RouteClass::PeerPublic:
      return "public-peer";
    case RouteClass::PeerRouteServer:
      return "route-server-peer";
    case RouteClass::Provider:
      return "provider";
  }
  return "?";
}

// ---- RoutingOutcome ---------------------------------------------------------
//
// The solver itself (solve_anycast and the incremental DeltaSolver) lives in
// delta_solver.cpp; both paths share one SoA engine so a delta re-solve and a
// from-scratch solve cannot drift apart.

RoutingOutcome::RoutingOutcome(const topo::Graph* graph, Asn origin_asn,
                               std::vector<Entry> entries, PathArena arena)
    : RoutingOutcome(graph, origin_asn, std::move(entries),
                     std::make_shared<const PathArena>(std::move(arena))) {}

RoutingOutcome::RoutingOutcome(const topo::Graph* graph, Asn origin_asn,
                               std::vector<Entry> entries,
                               std::shared_ptr<const PathArena> arena)
    : graph_(graph),
      origin_asn_(origin_asn),
      entries_(std::move(entries)),
      arena_(std::move(arena)),
      cache_(std::make_unique<std::atomic<const Route*>[]>(entries_.size())) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    cache_[i].store(nullptr, std::memory_order_relaxed);
  }
}

void RoutingOutcome::destroy_cache() noexcept {
  if (!cache_) return;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    delete cache_[i].load(std::memory_order_relaxed);
  }
  cache_.reset();
}

RoutingOutcome::~RoutingOutcome() { destroy_cache(); }

RoutingOutcome::RoutingOutcome(RoutingOutcome&& other) noexcept
    : graph_(other.graph_),
      origin_asn_(other.origin_asn_),
      entries_(std::move(other.entries_)),
      arena_(std::move(other.arena_)),
      cache_(std::move(other.cache_)) {
  other.entries_.clear();
}

RoutingOutcome& RoutingOutcome::operator=(RoutingOutcome&& other) noexcept {
  if (this == &other) return *this;
  destroy_cache();
  graph_ = other.graph_;
  origin_asn_ = other.origin_asn_;
  entries_ = std::move(other.entries_);
  arena_ = std::move(other.arena_);
  cache_ = std::move(other.cache_);
  other.entries_.clear();
  return *this;
}

const Route* RoutingOutcome::materialize(std::size_t idx) const noexcept {
  const Entry& e = entries_[idx];
  if (e.path == PathArena::kNone) return nullptr;
  if (const Route* cached = cache_[idx].load(std::memory_order_acquire)) return cached;
  auto* fresh = new Route;
  fresh->origin_site = e.origin_site;
  fresh->origin_asn = origin_asn_;
  fresh->cls = e.cls;
  arena_->materialize(e.path, fresh->as_path, fresh->geo_path);
  fresh->ingress_km = e.ingress_km;
  fresh->tiebreak = e.tiebreak;
  const Route* expected = nullptr;
  if (!cache_[idx].compare_exchange_strong(expected, fresh, std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
    // Another thread materialized the same entry first; the two Routes are
    // byte-identical, keep theirs.
    delete fresh;
    return expected;
  }
  return fresh;
}

const Route* RoutingOutcome::route_for(Asn a) const noexcept {
  const auto idx = graph_->index_of(a);
  if (!idx) return nullptr;
  return materialize(*idx);
}

std::optional<SiteId> RoutingOutcome::catchment(Asn a) const noexcept {
  const auto idx = graph_->index_of(a);
  if (!idx || entries_[*idx].path == PathArena::kNone) return std::nullopt;
  return entries_[*idx].origin_site;
}

std::size_t RoutingOutcome::reachable_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(entries_.begin(), entries_.end(),
                    [](const Entry& e) { return e.path != PathArena::kNone; }));
}

}  // namespace ranycast::bgp
