#include "ranycast/bgp/solver.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "ranycast/core/rng.hpp"
#include "ranycast/geo/gazetteer.hpp"
#include "ranycast/obs/span.hpp"

namespace ranycast::bgp {

std::string_view to_string(RouteClass c) noexcept {
  switch (c) {
    case RouteClass::Customer:
      return "customer";
    case RouteClass::PeerPublic:
      return "public-peer";
    case RouteClass::PeerRouteServer:
      return "route-server-peer";
    case RouteClass::Provider:
      return "provider";
  }
  return "?";
}

const Route* RoutingOutcome::route_for(Asn a) const noexcept {
  const auto idx = graph_->index_of(a);
  if (!idx || !routes_[*idx]) return nullptr;
  return &*routes_[*idx];
}

std::optional<SiteId> RoutingOutcome::catchment(Asn a) const noexcept {
  const Route* r = route_for(a);
  if (r == nullptr) return std::nullopt;
  return r->origin_site;
}

std::size_t RoutingOutcome::reachable_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(routes_.begin(), routes_.end(), [](const auto& r) { return r.has_value(); }));
}

namespace {

/// Candidate ordering inside one local-pref class: shorter AS path first,
/// then the deterministic tie-break hash.
struct HeapKey {
  std::size_t len;
  double ingress_km;
  std::uint64_t tiebreak;
  std::size_t node;  // dense index of the AS this candidate is for

  bool operator>(const HeapKey& o) const noexcept {
    if (len != o.len) return len > o.len;
    if (ingress_km != o.ingress_km) return ingress_km > o.ingress_km;
    if (tiebreak != o.tiebreak) return tiebreak > o.tiebreak;
    return node > o.node;
  }
};

struct CandidateHeap {
  // Parallel storage: the heap holds keys + indexes into `pool` so that the
  // Route payloads (vectors) are moved, not copied, during heap operations.
  // The key is derived *inside* push, after the route has safely arrived --
  // deriving it at the call site while also moving the route is an
  // argument-evaluation-order trap.
  struct Entry {
    HeapKey key;
    std::size_t pool_index;
    bool operator>(const Entry& o) const noexcept { return key > o.key; }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  std::vector<Route> pool;

  void push(std::size_t node, Route route) {
    const HeapKey key{route.path_length(), route.ingress_km, route.tiebreak, node};
    pool.push_back(std::move(route));
    heap.push(Entry{key, pool.size() - 1});
  }

  bool empty() const { return heap.empty(); }

  std::pair<HeapKey, Route> pop() {
    Entry top = heap.top();
    heap.pop();
    return {top.key, std::move(pool[top.pool_index])};
  }
};

std::uint64_t route_tiebreak(std::uint64_t seed, const Route& r, Asn holder_hint) {
  std::uint64_t h = seed;
  // Hash the site's *city* rather than its deployment-local SiteId: the same
  // physical announcement must resolve ties identically in every deployment
  // it appears in (AnyOpt pairwise experiments, the §5.3 same-operator
  // comparison), and SiteIds are renumbered per deployment.
  h = hash_combine(h, value(r.geo_path.front()));
  for (Asn a : r.as_path) h = hash_combine(h, value(a));
  h = hash_combine(h, value(holder_hint));
  return h;
}

/// Pick the interconnection point of `edge` nearest to the route's current
/// ingress city (nearest-exit within the exporting AS).
CityId egress_city(const Route& r, const topo::Edge& edge) {
  if (edge.cities.size() == 1) return edge.cities.front();
  const auto& gaz = geo::Gazetteer::world();
  const CityId from = r.geo_path.back();
  CityId best = edge.cities.front();
  double best_km = std::numeric_limits<double>::infinity();
  for (CityId c : edge.cities) {
    const double d = gaz.distance(from, c).km;
    if (d < best_km) {
      best_km = d;
      best = c;
    }
  }
  return best;
}

/// Extend a route across an edge into the AS `next` (the receiver).
Route extend(const Route& r, Asn via, const topo::Edge& edge, RouteClass cls,
             std::uint64_t seed, const topo::AsNode& next) {
  Route out;
  out.origin_site = r.origin_site;
  out.origin_asn = r.origin_asn;
  out.cls = cls;
  out.as_path.reserve(r.as_path.size() + 1);
  out.as_path = r.as_path;
  out.as_path.push_back(via);
  out.geo_path = r.geo_path;
  out.geo_path.push_back(egress_city(r, edge));
  out.ingress_km = geo::Gazetteer::world().distance(next.home_city, out.geo_path.back()).km;
  out.tiebreak = route_tiebreak(seed, out, next.asn);
  return out;
}

}  // namespace

RoutingOutcome solve_anycast(const topo::Graph& graph, Asn cdn_asn,
                             std::span<const OriginAttachment> origins, std::uint64_t seed) {
  using topo::AsNode;
  const auto nodes = graph.nodes();
  const std::size_t n = nodes.size();

  static obs::Histogram& h_total =
      obs::MetricsRegistry::global().histogram("bgp.solve.total_us");
  obs::Span solve_span("bgp.solve");
  obs::ScopedTimer solve_timer(h_total);
  // Route-selection decision tallies, accumulated locally (plain increments
  // in the comparator) and flushed to the registry once at the end.
  std::uint64_t hot_potato_decisions = 0;
  std::uint64_t tiebreak_hash_decisions = 0;

  // Stage results, indexed by dense node index.
  std::vector<std::optional<Route>> customer_best(n);
  std::vector<std::optional<Route>> stage2_best(n);  // customer or peer
  std::vector<std::optional<Route>> final_best(n);

  auto seed_route = [&](const OriginAttachment& o, RouteClass cls, const topo::AsNode& holder) {
    Route r;
    r.origin_site = o.site;
    r.origin_asn = cdn_asn;
    r.cls = cls;
    r.as_path = {cdn_asn};
    r.geo_path = {o.site_city};
    r.ingress_km = geo::Gazetteer::world().distance(holder.home_city, o.site_city).km;
    r.tiebreak = route_tiebreak(seed, r, holder.asn);
    return r;
  };

  // ---- Stage 1: customer routes climb to providers ------------------------
  {
    obs::Span stage_span("bgp.solve.customer");
    static obs::Histogram& h_stage =
        obs::MetricsRegistry::global().histogram("bgp.solve.stage_customer_us");
    obs::ScopedTimer stage_timer(h_stage);
    CandidateHeap heap;
    for (const OriginAttachment& o : origins) {
      if (o.neighbor_rel != topo::Rel::Customer) continue;
      const auto idx = graph.index_of(o.neighbor);
      if (!idx) continue;
      Route r = seed_route(o, RouteClass::Customer, nodes[*idx]);
      heap.push(*idx, std::move(r));
    }
    while (!heap.empty()) {
      auto [key, route] = heap.pop();
      if (customer_best[key.node]) continue;  // already finalized with a better key
      const AsNode& holder = nodes[key.node];
      customer_best[key.node] = std::move(route);
      const Route& best = *customer_best[key.node];
      for (const topo::Edge& e : holder.edges) {
        if (!e.up) continue;  // failed adjacency (chaos engine)
        if (e.rel != topo::Rel::Provider) continue;  // climb only
        const auto nidx = graph.index_of(e.neighbor);
        if (!nidx || customer_best[*nidx]) continue;
        Route next = extend(best, holder.asn, e, RouteClass::Customer, seed, nodes[*nidx]);
        heap.push(*nidx, std::move(next));
      }
    }
  }

  // Preference comparison across classes: higher class wins, then shorter
  // path, then lower tie-break.
  auto better = [&](const Route& a, const Route& b) {
    if (a.cls != b.cls) return static_cast<int>(a.cls) > static_cast<int>(b.cls);
    if (a.path_length() != b.path_length()) return a.path_length() < b.path_length();
    if (a.ingress_km != b.ingress_km) {  // hot potato
      ++hot_potato_decisions;
      return a.ingress_km < b.ingress_km;
    }
    ++tiebreak_hash_decisions;
    return a.tiebreak < b.tiebreak;
  };

  // ---- Stage 2: peer routes -----------------------------------------------
  {
    obs::Span stage_span("bgp.solve.peer");
    static obs::Histogram& h_stage =
        obs::MetricsRegistry::global().histogram("bgp.solve.stage_peer_us");
    obs::ScopedTimer stage_timer(h_stage);
    // Direct peer originations first.
    for (const OriginAttachment& o : origins) {
      if (!topo::is_peer(o.neighbor_rel)) continue;
      const auto idx = graph.index_of(o.neighbor);
      if (!idx) continue;
      Route r = seed_route(o, class_of(o.neighbor_rel), nodes[*idx]);
      if (!stage2_best[*idx] || better(r, *stage2_best[*idx])) stage2_best[*idx] = std::move(r);
    }
    // Then routes exported by peers: a peer exports only its customer routes.
    for (std::size_t i = 0; i < n; ++i) {
      const AsNode& holder = nodes[i];
      for (const topo::Edge& e : holder.edges) {
        if (!e.up) continue;  // failed adjacency (chaos engine)
        if (!topo::is_peer(e.rel)) continue;
        const auto nidx = graph.index_of(e.neighbor);
        if (!nidx || !customer_best[*nidx]) continue;
        Route cand = extend(*customer_best[*nidx], e.neighbor, e, class_of(e.rel), seed,
                            holder);
        if (!stage2_best[i] || better(cand, *stage2_best[i])) stage2_best[i] = std::move(cand);
      }
    }
    // Customer routes dominate peer routes.
    for (std::size_t i = 0; i < n; ++i) {
      if (customer_best[i] &&
          (!stage2_best[i] || better(*customer_best[i], *stage2_best[i]))) {
        stage2_best[i] = customer_best[i];
      }
    }
  }

  // ---- Stage 3: provider routes descend to customers -----------------------
  {
    obs::Span stage_span("bgp.solve.provider");
    static obs::Histogram& h_stage =
        obs::MetricsRegistry::global().histogram("bgp.solve.stage_provider_us");
    obs::ScopedTimer stage_timer(h_stage);
    CandidateHeap heap;
    for (std::size_t i = 0; i < n; ++i) {
      if (!stage2_best[i]) continue;
      // Seed with the AS's own best; it will be finalized first for itself.
      heap.push(i, *stage2_best[i]);
    }
    // Provider-side direct originations (the CDN buying transit) were handled
    // in stage 1; nothing to seed here.
    while (!heap.empty()) {
      auto [key, route] = heap.pop();
      if (final_best[key.node]) continue;
      final_best[key.node] = std::move(route);
      const AsNode& holder = nodes[key.node];
      const Route& exported = *final_best[key.node];
      for (const topo::Edge& e : holder.edges) {
        if (!e.up) continue;  // failed adjacency (chaos engine)
        if (e.rel != topo::Rel::Customer) continue;  // descend only
        const auto nidx = graph.index_of(e.neighbor);
        if (!nidx || final_best[*nidx] || stage2_best[*nidx]) continue;
        Route next = extend(exported, holder.asn, e, RouteClass::Provider, seed, nodes[*nidx]);
        heap.push(*nidx, std::move(next));
      }
    }
  }

  if (obs::enabled()) {
    auto& registry = obs::MetricsRegistry::global();
    registry.counter("bgp.solve.calls").add(1);
    registry.counter("bgp.solve.nodes").add(n);
    registry.counter("bgp.solve.select.hot_potato").add(hot_potato_decisions);
    registry.counter("bgp.solve.select.tiebreak_hash").add(tiebreak_hash_decisions);
  }
  return RoutingOutcome{&graph, std::move(final_best)};
}

}  // namespace ranycast::bgp
