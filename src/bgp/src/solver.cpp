#include "ranycast/bgp/solver.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "ranycast/core/rng.hpp"
#include "ranycast/geo/gazetteer.hpp"
#include "ranycast/obs/span.hpp"

namespace ranycast::bgp {

std::string_view to_string(RouteClass c) noexcept {
  switch (c) {
    case RouteClass::Customer:
      return "customer";
    case RouteClass::PeerPublic:
      return "public-peer";
    case RouteClass::PeerRouteServer:
      return "route-server-peer";
    case RouteClass::Provider:
      return "provider";
  }
  return "?";
}

// ---- RoutingOutcome ---------------------------------------------------------

RoutingOutcome::RoutingOutcome(const topo::Graph* graph, Asn origin_asn,
                               std::vector<Entry> entries, PathArena arena)
    : graph_(graph),
      origin_asn_(origin_asn),
      entries_(std::move(entries)),
      arena_(std::move(arena)),
      cache_(std::make_unique<std::atomic<const Route*>[]>(entries_.size())) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    cache_[i].store(nullptr, std::memory_order_relaxed);
  }
}

void RoutingOutcome::destroy_cache() noexcept {
  if (!cache_) return;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    delete cache_[i].load(std::memory_order_relaxed);
  }
  cache_.reset();
}

RoutingOutcome::~RoutingOutcome() { destroy_cache(); }

RoutingOutcome::RoutingOutcome(RoutingOutcome&& other) noexcept
    : graph_(other.graph_),
      origin_asn_(other.origin_asn_),
      entries_(std::move(other.entries_)),
      arena_(std::move(other.arena_)),
      cache_(std::move(other.cache_)) {
  other.entries_.clear();
}

RoutingOutcome& RoutingOutcome::operator=(RoutingOutcome&& other) noexcept {
  if (this == &other) return *this;
  destroy_cache();
  graph_ = other.graph_;
  origin_asn_ = other.origin_asn_;
  entries_ = std::move(other.entries_);
  arena_ = std::move(other.arena_);
  cache_ = std::move(other.cache_);
  other.entries_.clear();
  return *this;
}

const Route* RoutingOutcome::materialize(std::size_t idx) const noexcept {
  const Entry& e = entries_[idx];
  if (e.path == PathArena::kNone) return nullptr;
  if (const Route* cached = cache_[idx].load(std::memory_order_acquire)) return cached;
  auto* fresh = new Route;
  fresh->origin_site = e.origin_site;
  fresh->origin_asn = origin_asn_;
  fresh->cls = e.cls;
  arena_.materialize(e.path, fresh->as_path, fresh->geo_path);
  fresh->ingress_km = e.ingress_km;
  fresh->tiebreak = e.tiebreak;
  const Route* expected = nullptr;
  if (!cache_[idx].compare_exchange_strong(expected, fresh, std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
    // Another thread materialized the same entry first; the two Routes are
    // byte-identical, keep theirs.
    delete fresh;
    return expected;
  }
  return fresh;
}

const Route* RoutingOutcome::route_for(Asn a) const noexcept {
  const auto idx = graph_->index_of(a);
  if (!idx) return nullptr;
  return materialize(*idx);
}

std::optional<SiteId> RoutingOutcome::catchment(Asn a) const noexcept {
  const auto idx = graph_->index_of(a);
  if (!idx || entries_[*idx].path == PathArena::kNone) return std::nullopt;
  return entries_[*idx].origin_site;
}

std::size_t RoutingOutcome::reachable_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(entries_.begin(), entries_.end(),
                    [](const Entry& e) { return e.path != PathArena::kNone; }));
}

// ---- solver -----------------------------------------------------------------

namespace {

/// A candidate route in flight: a parent-indexed path reference plus the
/// incrementally maintained selection keys. ~48 bytes, trivially copyable —
/// heap operations and stage hand-offs never touch the heap-allocated paths.
struct CompactRoute {
  std::uint32_t path{PathArena::kNone};  ///< arena node of the last hop
  std::uint16_t len{0};                  ///< == as_path length
  CityId last_city{kInvalidCity};        ///< geo_path.back(), for nearest-exit
  SiteId origin_site{kInvalidSite};
  RouteClass cls{RouteClass::Provider};
  double ingress_km{0.0};
  /// Running hash over (seed, origin city, as_path...): appending a hop is
  /// one hash_combine instead of rehashing the whole path.
  std::uint64_t hash_base{0};
  std::uint64_t tiebreak{0};

  bool valid() const noexcept { return path != PathArena::kNone; }
};

/// Candidate ordering inside one local-pref class: shorter AS path first,
/// then the deterministic tie-break hash.
struct HeapKey {
  std::size_t len;
  double ingress_km;
  std::uint64_t tiebreak;
  std::size_t node;  // dense index of the AS this candidate is for

  bool operator>(const HeapKey& o) const noexcept {
    if (len != o.len) return len > o.len;
    if (ingress_km != o.ingress_km) return ingress_km > o.ingress_km;
    if (tiebreak != o.tiebreak) return tiebreak > o.tiebreak;
    return node > o.node;
  }
};

struct CandidateHeap {
  struct Entry {
    HeapKey key;
    CompactRoute route;
    bool operator>(const Entry& o) const noexcept { return key > o.key; }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;

  void push(std::size_t node, const CompactRoute& route) {
    heap.push(Entry{HeapKey{route.len, route.ingress_km, route.tiebreak, node}, route});
  }

  bool empty() const { return heap.empty(); }

  std::pair<HeapKey, CompactRoute> pop() {
    Entry top = heap.top();
    heap.pop();
    return {top.key, top.route};
  }
};

/// Pick the interconnection point of `edge` nearest to the route's current
/// ingress city (nearest-exit within the exporting AS).
CityId egress_city(const geo::Gazetteer& gaz, CityId from, const topo::Edge& edge) {
  if (edge.cities.size() == 1) return edge.cities.front();
  CityId best = edge.cities.front();
  double best_km = std::numeric_limits<double>::infinity();
  for (CityId c : edge.cities) {
    const double d = gaz.distance(from, c).km;
    if (d < best_km) {
      best_km = d;
      best = c;
    }
  }
  return best;
}

}  // namespace

RoutingOutcome solve_anycast(const topo::Graph& graph, Asn cdn_asn,
                             std::span<const OriginAttachment> origins, std::uint64_t seed) {
  using topo::AsNode;
  const auto nodes = graph.nodes();
  const std::size_t n = nodes.size();
  const auto& gaz = geo::Gazetteer::world();

  static obs::Histogram& h_total =
      obs::MetricsRegistry::global().histogram("bgp.solve.total_us");
  obs::Span solve_span("bgp.solve");
  obs::ScopedTimer solve_timer(h_total);
  // Route-selection decision tallies, accumulated locally (plain increments
  // in the comparator) and flushed to the registry once at the end — each
  // concurrent solve owns its tallies, the flush is an atomic add.
  std::uint64_t hot_potato_decisions = 0;
  std::uint64_t tiebreak_hash_decisions = 0;

  PathArena arena;

  // Stage results, indexed by dense node index; .valid() gates occupancy.
  std::vector<CompactRoute> customer_best(n);
  std::vector<CompactRoute> stage2_best(n);  // customer or peer
  std::vector<CompactRoute> final_best(n);

  // The tie-break hash matches the historical route_tiebreak() exactly: it
  // folds the origination *city* (not the deployment-local SiteId — the same
  // physical announcement must resolve ties identically in every deployment
  // it appears in), then every as_path hop in order, then the holder ASN.
  auto seed_route = [&](const OriginAttachment& o, RouteClass cls, const AsNode& holder) {
    CompactRoute r;
    r.origin_site = o.site;
    r.cls = cls;
    r.path = arena.append(PathArena::kNone, cdn_asn, o.site_city);
    r.len = 1;
    r.last_city = o.site_city;
    r.ingress_km = gaz.distance(holder.home_city, o.site_city).km;
    r.hash_base = hash_combine(hash_combine(seed, value(o.site_city)), value(cdn_asn));
    r.tiebreak = hash_combine(r.hash_base, value(holder.asn));
    return r;
  };

  /// Extend a route across an edge into the AS `next` (the receiver): one
  /// arena append, one distance lookup, one hash_combine.
  auto extend = [&](const CompactRoute& r, Asn via, const topo::Edge& edge, RouteClass cls,
                    const AsNode& next) {
    const CityId egress = egress_city(gaz, r.last_city, edge);
    CompactRoute out;
    out.origin_site = r.origin_site;
    out.cls = cls;
    out.path = arena.append(r.path, via, egress);
    out.len = static_cast<std::uint16_t>(r.len + 1);
    out.last_city = egress;
    out.ingress_km = gaz.distance(next.home_city, egress).km;
    out.hash_base = hash_combine(r.hash_base, value(via));
    out.tiebreak = hash_combine(out.hash_base, value(next.asn));
    return out;
  };

  // ---- Stage 1: customer routes climb to providers ------------------------
  {
    obs::Span stage_span("bgp.solve.customer");
    static obs::Histogram& h_stage =
        obs::MetricsRegistry::global().histogram("bgp.solve.stage_customer_us");
    obs::ScopedTimer stage_timer(h_stage);
    CandidateHeap heap;
    for (const OriginAttachment& o : origins) {
      if (o.neighbor_rel != topo::Rel::Customer) continue;
      const auto idx = graph.index_of(o.neighbor);
      if (!idx) continue;
      heap.push(*idx, seed_route(o, RouteClass::Customer, nodes[*idx]));
    }
    while (!heap.empty()) {
      auto [key, route] = heap.pop();
      if (customer_best[key.node].valid()) continue;  // finalized with a better key
      const AsNode& holder = nodes[key.node];
      customer_best[key.node] = route;
      for (const topo::Edge& e : holder.edges) {
        if (!e.up) continue;  // failed adjacency (chaos engine)
        if (e.rel != topo::Rel::Provider) continue;  // climb only
        const auto nidx = graph.index_of(e.neighbor);
        if (!nidx || customer_best[*nidx].valid()) continue;
        heap.push(*nidx, extend(route, holder.asn, e, RouteClass::Customer, nodes[*nidx]));
      }
    }
  }

  // Preference comparison across classes: higher class wins, then shorter
  // path, then lower tie-break.
  auto better = [&](const CompactRoute& a, const CompactRoute& b) {
    if (a.cls != b.cls) return static_cast<int>(a.cls) > static_cast<int>(b.cls);
    if (a.len != b.len) return a.len < b.len;
    if (a.ingress_km != b.ingress_km) {  // hot potato
      ++hot_potato_decisions;
      return a.ingress_km < b.ingress_km;
    }
    ++tiebreak_hash_decisions;
    return a.tiebreak < b.tiebreak;
  };

  // ---- Stage 2: peer routes -----------------------------------------------
  {
    obs::Span stage_span("bgp.solve.peer");
    static obs::Histogram& h_stage =
        obs::MetricsRegistry::global().histogram("bgp.solve.stage_peer_us");
    obs::ScopedTimer stage_timer(h_stage);
    // Direct peer originations first.
    for (const OriginAttachment& o : origins) {
      if (!topo::is_peer(o.neighbor_rel)) continue;
      const auto idx = graph.index_of(o.neighbor);
      if (!idx) continue;
      const CompactRoute r = seed_route(o, class_of(o.neighbor_rel), nodes[*idx]);
      if (!stage2_best[*idx].valid() || better(r, stage2_best[*idx])) stage2_best[*idx] = r;
    }
    // Then routes exported by peers: a peer exports only its customer routes.
    for (std::size_t i = 0; i < n; ++i) {
      const AsNode& holder = nodes[i];
      for (const topo::Edge& e : holder.edges) {
        if (!e.up) continue;  // failed adjacency (chaos engine)
        if (!topo::is_peer(e.rel)) continue;
        const auto nidx = graph.index_of(e.neighbor);
        if (!nidx || !customer_best[*nidx].valid()) continue;
        const CompactRoute cand =
            extend(customer_best[*nidx], e.neighbor, e, class_of(e.rel), holder);
        if (!stage2_best[i].valid() || better(cand, stage2_best[i])) stage2_best[i] = cand;
      }
    }
    // Customer routes dominate peer routes. (Compact copy: a few words, not
    // a full Route with two vectors as before.)
    for (std::size_t i = 0; i < n; ++i) {
      if (customer_best[i].valid() &&
          (!stage2_best[i].valid() || better(customer_best[i], stage2_best[i]))) {
        stage2_best[i] = customer_best[i];
      }
    }
  }

  // ---- Stage 3: provider routes descend to customers -----------------------
  {
    obs::Span stage_span("bgp.solve.provider");
    static obs::Histogram& h_stage =
        obs::MetricsRegistry::global().histogram("bgp.solve.stage_provider_us");
    obs::ScopedTimer stage_timer(h_stage);
    CandidateHeap heap;
    for (std::size_t i = 0; i < n; ++i) {
      if (!stage2_best[i].valid()) continue;
      // Seed with the AS's own best; it will be finalized first for itself.
      heap.push(i, stage2_best[i]);
    }
    // Provider-side direct originations (the CDN buying transit) were handled
    // in stage 1; nothing to seed here.
    while (!heap.empty()) {
      auto [key, route] = heap.pop();
      if (final_best[key.node].valid()) continue;
      final_best[key.node] = route;
      const AsNode& holder = nodes[key.node];
      for (const topo::Edge& e : holder.edges) {
        if (!e.up) continue;  // failed adjacency (chaos engine)
        if (e.rel != topo::Rel::Customer) continue;  // descend only
        const auto nidx = graph.index_of(e.neighbor);
        if (!nidx || final_best[*nidx].valid() || stage2_best[*nidx].valid()) continue;
        heap.push(*nidx, extend(route, holder.asn, e, RouteClass::Provider, nodes[*nidx]));
      }
    }
  }

  if (obs::enabled()) {
    auto& registry = obs::MetricsRegistry::global();
    registry.counter("bgp.solve.calls").add(1);
    registry.counter("bgp.solve.nodes").add(n);
    registry.counter("bgp.solve.select.hot_potato").add(hot_potato_decisions);
    registry.counter("bgp.solve.select.tiebreak_hash").add(tiebreak_hash_decisions);
    registry.counter("bgp.solve.arena_nodes").add(arena.size());
  }

  std::vector<RoutingOutcome::Entry> entries(n);
  for (std::size_t i = 0; i < n; ++i) {
    const CompactRoute& r = final_best[i];
    if (!r.valid()) continue;
    entries[i] = RoutingOutcome::Entry{r.path, r.len, r.origin_site, r.cls, r.ingress_km,
                                       r.tiebreak};
  }
  return RoutingOutcome{&graph, cdn_asn, std::move(entries), std::move(arena)};
}

}  // namespace ranycast::bgp
