// The shared SoA route-selection engine: one implementation behind both the
// from-scratch solve_anycast() and the incremental DeltaSolver, so the two
// cannot drift apart. Selection state lives in parallel arrays (structure of
// arrays) keyed by dense node index — the comparator hot path reads three
// cache-linear lanes (class, length, tie-break) instead of striding over
// 48-byte records — and the incremental path re-decides only the nodes whose
// candidate set a delta can reach (a Ramalingam–Reps style worklist
// fixpoint, processed in global key order).
#include "ranycast/bgp/delta_solver.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <queue>
#include <unordered_map>
#include <vector>

#include "ranycast/core/rng.hpp"
#include "ranycast/geo/gazetteer.hpp"
#include "ranycast/obs/span.hpp"

namespace ranycast::bgp {

// Named (not anonymous) detail namespace: DeltaSolver::RegionState embeds
// these types, and members of anonymous-namespace type in an exported class
// trip -Wsubobject-linkage.
namespace delta_detail {

constexpr std::uint32_t kNoPath = PathArena::kNone;
constexpr std::size_t kInfLen = std::numeric_limits<std::size_t>::max();

/// One selection stage's results as parallel arrays over dense node index.
/// `path == kNoPath` gates occupancy, exactly like CompactRoute::valid().
struct Plane {
  std::vector<std::uint32_t> path;
  std::vector<std::uint16_t> len;
  std::vector<std::uint8_t> cls;
  std::vector<SiteId> site;
  std::vector<CityId> last_city;
  std::vector<double> ingress;
  std::vector<std::uint64_t> hash_base;
  std::vector<std::uint64_t> tiebreak;

  void reset(std::size_t n) {
    path.assign(n, kNoPath);
    len.assign(n, 0);
    cls.assign(n, 0);
    site.assign(n, kInvalidSite);
    last_city.assign(n, kInvalidCity);
    ingress.assign(n, 0.0);
    hash_base.assign(n, 0);
    tiebreak.assign(n, 0);
  }
  bool valid(std::size_t i) const noexcept { return path[i] != kNoPath; }
  void clear_row(std::size_t i) noexcept { path[i] = kNoPath; }
};

/// A row snapshot taken before the incremental pass mutates it: the arena
/// reuse check and the changed-set diff both compare against the original,
/// not whatever intermediate value the fixpoint passed through.
struct SavedRow {
  std::uint32_t path{kNoPath};
  std::uint16_t len{0};
  std::uint8_t cls{0};
  SiteId site{kInvalidSite};
  CityId last_city{kInvalidCity};
  double ingress{0.0};
  std::uint64_t hash_base{0};
  std::uint64_t tiebreak{0};
};

SavedRow save_row(const Plane& p, std::size_t i) {
  return SavedRow{p.path[i],      p.len[i],     p.cls[i],       p.site[i],
                  p.last_city[i], p.ingress[i], p.hash_base[i], p.tiebreak[i]};
}

/// Content inequality. Arena node ids are content-addressed by the reuse
/// logic (an unchanged hop keeps its old id), so id + origin-site + class
/// pin the whole route: equal ids mean equal (parent chain, ASN, city)
/// and therefore equal length/ingress/hash lanes.
bool row_differs(const Plane& p, std::size_t i, const SavedRow& s) {
  return p.path[i] != s.path || p.site[i] != s.site || p.cls[i] != s.cls;
}

/// Dijkstra/worklist ordering — identical to the AoS solver's HeapKey.
struct Key {
  std::size_t len{kInfLen};
  double ingress{0.0};
  std::uint64_t tiebreak{0};
  std::size_t node{0};
};

bool key_less(const Key& a, const Key& b) noexcept {
  if (a.len != b.len) return a.len < b.len;
  if (a.ingress != b.ingress) return a.ingress < b.ingress;
  if (a.tiebreak != b.tiebreak) return a.tiebreak < b.tiebreak;
  return a.node < b.node;
}

bool key_eq(const Key& a, const Key& b) noexcept {
  return a.len == b.len && a.ingress == b.ingress && a.tiebreak == b.tiebreak &&
         a.node == b.node;
}

/// A candidate route in flight. Unlike the old CompactRoute it defers the
/// arena append: the hop is carried as (parent, via, hop-city) and only
/// materialized into the arena when the candidate is accepted — losing
/// candidates never allocate, and an accepted hop identical to the node's
/// pre-delta hop reuses the old arena id (splice identity).
struct Cand {
  std::uint32_t parent{kNoPath};  ///< arena node of the parent path
  std::uint32_t ready{kNoPath};   ///< pre-built arena node to adopt verbatim
  Asn via{kInvalidAsn};           ///< exporter of this hop
  CityId hop{kInvalidCity};       ///< egress city of this hop (== last_city)
  std::uint16_t len{0};
  SiteId site{kInvalidSite};
  std::uint8_t cls{0};
  double ingress{0.0};
  std::uint64_t hash_base{0};
  std::uint64_t tiebreak{0};
  std::uint32_t node{0};  ///< dense index of the AS this candidate is for
  bool valid{false};

  Key key() const noexcept {
    return valid ? Key{len, ingress, tiebreak, node} : Key{kInfLen, 0.0, 0, node};
  }
};

struct CandHeapEntry {
  Key key;
  Cand cand;
  bool operator>(const CandHeapEntry& o) const noexcept { return key_less(o.key, key); }
};
using CandHeap = std::priority_queue<CandHeapEntry, std::vector<CandHeapEntry>, std::greater<>>;

struct WorkEntry {
  Key key;
  std::uint32_t node;
  bool operator>(const WorkEntry& o) const noexcept { return key_less(o.key, key); }
};
using WorkHeap = std::priority_queue<WorkEntry, std::vector<WorkEntry>, std::greater<>>;

using SeedMap = std::unordered_map<std::size_t, std::vector<std::size_t>>;

/// The engine proper: borrows one region's planes + arena and runs either a
/// full three-stage solve or the incremental frontier pass over them.
struct SoaEngine {
  const topo::Graph& graph;
  std::span<const topo::AsNode> nodes;
  std::size_t n;
  const geo::Gazetteer& gaz;
  Asn cdn;
  std::uint64_t seed;
  PathArena& arena;
  Plane& c;  // stage 1: customer routes
  Plane& s;  // stage 2: customer-or-peer best
  Plane& f;  // stage 3: final selection
  std::span<const OriginAttachment> origins{};
  SeedMap cust_seeds{};
  SeedMap peer_seeds{};
  // Route-selection decision tallies, flushed once (see solve_anycast).
  std::uint64_t hot_potato = 0;
  std::uint64_t tiebreak_hash = 0;

  SoaEngine(const topo::Graph& g, Asn cdn_asn, std::uint64_t seed_, PathArena& arena_,
            Plane& c_, Plane& s_, Plane& f_)
      : graph(g),
        nodes(g.nodes()),
        n(g.nodes().size()),
        gaz(geo::Gazetteer::world()),
        cdn(cdn_asn),
        seed(seed_),
        arena(arena_),
        c(c_),
        s(s_),
        f(f_) {}

  // ---- candidate construction (hash/key chains identical to the AoS solver)

  CityId egress_city(CityId from, const topo::Edge& edge) const {
    if (edge.cities.size() == 1) return edge.cities.front();
    CityId best = edge.cities.front();
    double best_km = std::numeric_limits<double>::infinity();
    for (CityId city : edge.cities) {
      const double d = gaz.distance(from, city).km;
      if (d < best_km) {
        best_km = d;
        best = city;
      }
    }
    return best;
  }

  Cand seed_cand(const OriginAttachment& o, RouteClass cls, std::size_t holder) const {
    Cand out;
    out.valid = true;
    out.node = static_cast<std::uint32_t>(holder);
    out.via = cdn;
    out.hop = o.site_city;
    out.len = 1;
    out.site = o.site;
    out.cls = static_cast<std::uint8_t>(cls);
    out.ingress = gaz.distance(nodes[holder].home_city, o.site_city).km;
    out.hash_base = hash_combine(hash_combine(seed, value(o.site_city)), value(cdn));
    out.tiebreak = hash_combine(out.hash_base, value(nodes[holder].asn));
    return out;
  }

  Cand extend_cand(const Plane& p, std::size_t y, const topo::Edge& e, std::size_t x,
                   RouteClass cls) const {
    const CityId egress = egress_city(p.last_city[y], e);
    Cand out;
    out.valid = true;
    out.node = static_cast<std::uint32_t>(x);
    out.parent = p.path[y];
    out.via = nodes[y].asn;
    out.hop = egress;
    out.len = static_cast<std::uint16_t>(p.len[y] + 1);
    out.site = p.site[y];
    out.cls = static_cast<std::uint8_t>(cls);
    out.ingress = gaz.distance(nodes[x].home_city, egress).km;
    out.hash_base = hash_combine(p.hash_base[y], value(out.via));
    out.tiebreak = hash_combine(out.hash_base, value(nodes[x].asn));
    return out;
  }

  /// A row re-offered as a candidate for another plane (stage-2 customer
  /// dominance, stage-3 adoption): shares the arena id, never re-appends.
  Cand adopt_cand(const Plane& p, std::size_t i) const {
    Cand out;
    out.valid = true;
    out.node = static_cast<std::uint32_t>(i);
    out.ready = p.path[i];
    out.hop = p.last_city[i];
    out.len = p.len[i];
    out.site = p.site[i];
    out.cls = p.cls[i];
    out.ingress = p.ingress[i];
    out.hash_base = p.hash_base[i];
    out.tiebreak = p.tiebreak[i];
    return out;
  }

  /// Preference comparison across classes (stage 2 only, like the AoS
  /// solver): higher class wins, then shorter path, then hot potato, then
  /// the tie-break hash.
  bool better(const Cand& a, const Cand& b) {
    if (a.cls != b.cls) return a.cls > b.cls;
    if (a.len != b.len) return a.len < b.len;
    if (a.ingress != b.ingress) {  // hot potato
      ++hot_potato;
      return a.ingress < b.ingress;
    }
    ++tiebreak_hash;
    return a.tiebreak < b.tiebreak;
  }

  /// Install an accepted candidate. `orig` (the node's pre-delta row, null
  /// during a full solve) enables arena-id reuse: when the winning hop is
  /// bitwise the hop the node already had, the old id is kept so the
  /// changed-set diff sees "no change" without materializing paths.
  void accept(Plane& p, const Cand& cand, const SavedRow* orig) {
    std::uint32_t id;
    if (cand.ready != kNoPath) {
      id = cand.ready;
    } else if (orig != nullptr && orig->path != kNoPath &&
               arena.parent_of(orig->path) == cand.parent &&
               arena.asn_of(orig->path) == cand.via && arena.city_of(orig->path) == cand.hop) {
      id = orig->path;
    } else {
      id = arena.append(cand.parent, cand.via, cand.hop);
    }
    const std::size_t i = cand.node;
    p.path[i] = id;
    p.len[i] = cand.len;
    p.cls[i] = cand.cls;
    p.site[i] = cand.site;
    p.last_city[i] = cand.hop;
    p.ingress[i] = cand.ingress;
    p.hash_base[i] = cand.hash_base;
    p.tiebreak[i] = cand.tiebreak;
  }

  SeedMap seeds_by_holder(std::span<const OriginAttachment> origin_set, bool peer) const {
    SeedMap out;
    for (std::size_t k = 0; k < origin_set.size(); ++k) {
      const OriginAttachment& o = origin_set[k];
      if (peer != topo::is_peer(o.neighbor_rel)) continue;
      if (!peer && o.neighbor_rel != topo::Rel::Customer) continue;
      if (const auto idx = graph.index_of(o.neighbor)) out[*idx].push_back(k);
    }
    return out;
  }

  // ---- full solve (byte-identical selections to the historical AoS path)

  void stage1_full() {
    obs::Span stage_span("bgp.solve.customer");
    static obs::Histogram& h_stage =
        obs::MetricsRegistry::global().histogram("bgp.solve.stage_customer_us");
    obs::ScopedTimer stage_timer(h_stage);
    CandHeap heap;
    for (const OriginAttachment& o : origins) {
      if (o.neighbor_rel != topo::Rel::Customer) continue;
      const auto idx = graph.index_of(o.neighbor);
      if (!idx) continue;
      const Cand cand = seed_cand(o, RouteClass::Customer, *idx);
      heap.push(CandHeapEntry{cand.key(), cand});
    }
    while (!heap.empty()) {
      const Cand cand = heap.top().cand;
      heap.pop();
      if (c.valid(cand.node)) continue;  // finalized with a better key
      accept(c, cand, nullptr);
      for (const topo::Edge& e : nodes[cand.node].edges) {
        if (!e.up || e.rel != topo::Rel::Provider) continue;  // climb only
        const auto nidx = graph.index_of(e.neighbor);
        if (!nidx || c.valid(*nidx)) continue;
        const Cand next = extend_cand(c, cand.node, e, *nidx, RouteClass::Customer);
        heap.push(CandHeapEntry{next.key(), next});
      }
    }
  }

  /// Stage-2 selection for one node, in the AoS solver's candidate order:
  /// direct peer originations (origins order), then peer exports (edge
  /// order), then customer dominance.
  Cand stage2_candidate(std::size_t i) {
    Cand best;
    if (const auto it = peer_seeds.find(i); it != peer_seeds.end()) {
      for (const std::size_t k : it->second) {
        const OriginAttachment& o = origins[k];
        const Cand cand = seed_cand(o, class_of(o.neighbor_rel), i);
        if (!best.valid || better(cand, best)) best = cand;
      }
    }
    for (const topo::Edge& e : nodes[i].edges) {
      if (!e.up || !topo::is_peer(e.rel)) continue;
      const auto nidx = graph.index_of(e.neighbor);
      if (!nidx || !c.valid(*nidx)) continue;
      const Cand cand = extend_cand(c, *nidx, e, i, class_of(e.rel));
      if (!best.valid || better(cand, best)) best = cand;
    }
    if (c.valid(i)) {
      const Cand cand = adopt_cand(c, i);
      if (!best.valid || better(cand, best)) best = cand;
    }
    return best;
  }

  void stage2_full() {
    obs::Span stage_span("bgp.solve.peer");
    static obs::Histogram& h_stage =
        obs::MetricsRegistry::global().histogram("bgp.solve.stage_peer_us");
    obs::ScopedTimer stage_timer(h_stage);
    for (std::size_t i = 0; i < n; ++i) {
      const Cand best = stage2_candidate(i);
      if (best.valid) accept(s, best, nullptr);
    }
  }

  void stage3_full() {
    obs::Span stage_span("bgp.solve.provider");
    static obs::Histogram& h_stage =
        obs::MetricsRegistry::global().histogram("bgp.solve.stage_provider_us");
    obs::ScopedTimer stage_timer(h_stage);
    CandHeap heap;
    for (std::size_t i = 0; i < n; ++i) {
      if (!s.valid(i)) continue;
      const Cand cand = adopt_cand(s, i);
      heap.push(CandHeapEntry{cand.key(), cand});
    }
    while (!heap.empty()) {
      const Cand cand = heap.top().cand;
      heap.pop();
      if (f.valid(cand.node)) continue;
      accept(f, cand, nullptr);
      for (const topo::Edge& e : nodes[cand.node].edges) {
        if (!e.up || e.rel != topo::Rel::Customer) continue;  // descend only
        const auto nidx = graph.index_of(e.neighbor);
        if (!nidx || f.valid(*nidx) || s.valid(*nidx)) continue;
        const Cand next = extend_cand(f, cand.node, e, *nidx, RouteClass::Provider);
        heap.push(CandHeapEntry{next.key(), next});
      }
    }
  }

  void emit_entries(std::vector<RoutingOutcome::Entry>& entries) const {
    entries.assign(n, RoutingOutcome::Entry{});
    for (std::size_t i = 0; i < n; ++i) {
      if (!f.valid(i)) continue;
      entries[i] = RoutingOutcome::Entry{f.path[i],
                                         f.len[i],
                                         f.site[i],
                                         static_cast<RouteClass>(f.cls[i]),
                                         f.ingress[i],
                                         f.tiebreak[i]};
    }
  }

  void full_solve(std::span<const OriginAttachment> origin_set,
                  std::vector<RoutingOutcome::Entry>& entries) {
    static obs::Histogram& h_total =
        obs::MetricsRegistry::global().histogram("bgp.solve.total_us");
    obs::Span solve_span("bgp.solve");
    obs::ScopedTimer solve_timer(h_total);
    origins = origin_set;
    peer_seeds = seeds_by_holder(origins, /*peer=*/true);
    hot_potato = 0;
    tiebreak_hash = 0;
    c.reset(n);
    s.reset(n);
    f.reset(n);
    stage1_full();
    stage2_full();
    stage3_full();
    if (obs::enabled()) {
      auto& registry = obs::MetricsRegistry::global();
      registry.counter("bgp.solve.calls").add(1);
      registry.counter("bgp.solve.nodes").add(n);
      registry.counter("bgp.solve.select.hot_potato").add(hot_potato);
      registry.counter("bgp.solve.select.tiebreak_hash").add(tiebreak_hash);
      registry.counter("bgp.solve.arena_nodes").add(arena.size());
    }
    emit_entries(entries);
  }

  // ---- incremental pass ----------------------------------------------------

  /// Recompute one node's best supported stage-1 candidate from its
  /// current neighborhood (seeds + exports of its customers).
  Cand rhs_customer(std::size_t x) const {
    Cand best;
    if (const auto it = cust_seeds.find(x); it != cust_seeds.end()) {
      for (const std::size_t k : it->second) {
        const Cand cand = seed_cand(origins[k], RouteClass::Customer, x);
        if (!best.valid || key_less(cand.key(), best.key())) best = cand;
      }
    }
    for (const topo::Edge& e : nodes[x].edges) {
      if (!e.up || e.rel != topo::Rel::Customer) continue;  // customers export up
      const auto y = graph.index_of(e.neighbor);
      if (!y || !c.valid(*y)) continue;
      const Cand cand = extend_cand(c, *y, e, x, RouteClass::Customer);
      if (!best.valid || key_less(cand.key(), best.key())) best = cand;
    }
    return best;
  }

  /// Recompute one node's best supported stage-3 candidate: its own
  /// stage-2 selection when valid (never overridden by provider routes),
  /// else the best export of its providers.
  Cand rhs_final(std::size_t x) const {
    if (s.valid(x)) return adopt_cand(s, x);
    Cand best;
    for (const topo::Edge& e : nodes[x].edges) {
      if (!e.up || e.rel != topo::Rel::Provider) continue;  // providers export down
      const auto y = graph.index_of(e.neighbor);
      if (!y || !f.valid(*y)) continue;
      const Cand cand = extend_cand(f, *y, e, x, RouteClass::Provider);
      if (!best.valid || key_less(cand.key(), best.key())) best = cand;
    }
    return best;
  }
};

/// Worklist fixpoint over one Dijkstra-shaped plane (stage 1 or stage 3).
/// A node is *inconsistent* when its stored row differs from the best
/// candidate its current neighborhood supports (its "rhs"); inconsistent
/// nodes are processed in global key order — adopt the rhs when it is
/// better than the stored row, retract the row when the row is no longer
/// supported — and every change re-examines the node's importers. The
/// selection keys grow strictly along export chains (length +1 per hop), so
/// the fixpoint is unique and equals the full Dijkstra's; see
/// docs/performance.md for the argument.
class Worklist {
 public:
  enum class Stage { kCustomer, kFinal };

  Worklist(SoaEngine& eng, Stage stage)
      : eng_(eng), p_(stage == Stage::kCustomer ? eng.c : eng.f), stage_(stage) {}

  void touch(std::size_t x) { refresh(x); }

  /// Runs to quiescence. Returns false when the touched frontier exceeds
  /// `touch_budget` (caller falls back to a full solve).
  bool run(std::size_t touch_budget) {
    const std::size_t pop_budget = 16 * eng_.n + 1024;  // safety valve
    std::size_t pops = 0;
    while (!heap_.empty()) {
      const WorkEntry top = heap_.top();
      heap_.pop();
      const std::uint32_t x = top.node;
      const auto rit = rhs_.find(x);
      if (rit == rhs_.end()) continue;
      const Cand rhs = rit->second;  // copy: refresh below may rehash the map
      if (consistent(x, rhs)) continue;
      const Key gk = g_key(x);
      const Key rk = rhs.key();
      const Key cur = key_less(gk, rk) ? gk : rk;
      if (!key_eq(top.key, cur)) {  // stale entry: requeue at the live key
        heap_.push(WorkEntry{cur, x});
        continue;
      }
      if (++pops > pop_budget) return false;
      if (key_less(rk, gk)) {
        // Under-consistent: the neighborhood supports something better (or
        // the row is empty) — adopt it and re-examine importers.
        const SavedRow* orig = save(x);
        eng_.accept(p_, rhs, orig);
      } else {
        // Over-consistent: the stored row is no longer supported — retract
        // it; the node re-decides from whatever remains, and importers that
        // leaned on it cascade.
        save(x);
        p_.clear_row(x);
        refresh(x);
      }
      for_succs(x);
      if (saved_.size() > touch_budget) return false;
    }
    return true;
  }

  const std::unordered_map<std::uint32_t, SavedRow>& saved() const { return saved_; }

  /// Nodes whose row content actually changed, ascending.
  std::vector<std::uint32_t> changed() const {
    std::vector<std::uint32_t> out;
    for (const auto& [x, orig] : saved_) {
      if (row_differs(p_, x, orig)) out.push_back(x);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  const SavedRow* save(std::size_t x) {
    const auto [it, fresh] = saved_.try_emplace(static_cast<std::uint32_t>(x));
    if (fresh) it->second = save_row(p_, x);
    return &it->second;
  }

  void refresh(std::size_t x) {
    const Cand rhs =
        stage_ == Stage::kCustomer ? eng_.rhs_customer(x) : eng_.rhs_final(x);
    const auto [it, inserted] = rhs_.insert_or_assign(static_cast<std::uint32_t>(x), rhs);
    (void)inserted;
    if (!consistent(x, it->second)) {
      const Key gk = g_key(x);
      const Key rk = it->second.key();
      heap_.push(WorkEntry{key_less(gk, rk) ? gk : rk, static_cast<std::uint32_t>(x)});
    }
  }

  void for_succs(std::size_t x) {
    const topo::Rel want =
        stage_ == Stage::kCustomer ? topo::Rel::Provider : topo::Rel::Customer;
    for (const topo::Edge& e : eng_.nodes[x].edges) {
      if (!e.up || e.rel != want) continue;
      if (const auto z = eng_.graph.index_of(e.neighbor)) refresh(*z);
    }
  }

  bool consistent(std::size_t x, const Cand& rhs) const {
    if (!rhs.valid) return !p_.valid(x);
    if (!p_.valid(x)) return false;
    if (p_.site[x] != rhs.site || p_.cls[x] != rhs.cls) return false;
    if (rhs.ready != kNoPath) return p_.path[x] == rhs.ready;
    const std::uint32_t id = p_.path[x];
    return eng_.arena.parent_of(id) == rhs.parent && eng_.arena.asn_of(id) == rhs.via &&
           eng_.arena.city_of(id) == rhs.hop;
  }

  Key g_key(std::size_t x) const {
    if (!p_.valid(x)) return Key{kInfLen, 0.0, 0, x};
    return Key{p_.len[x], p_.ingress[x], p_.tiebreak[x], x};
  }

  SoaEngine& eng_;
  Plane& p_;
  Stage stage_;
  WorkHeap heap_;
  std::unordered_map<std::uint32_t, Cand> rhs_;
  std::unordered_map<std::uint32_t, SavedRow> saved_;
};

/// The incremental pass over one region. Returns false when any stage blew
/// its frontier budget (caller falls back to a full solve).
bool incremental_solve(SoaEngine& eng, std::span<const OriginAttachment> origin_set,
                       std::span<const OriginChange> changes,
                       std::span<const LinkDelta> links, std::size_t touch_budget,
                       std::vector<RoutingOutcome::Entry>& entries, std::size_t& affected,
                       std::size_t& touched) {
  obs::Span span("bgp.solve.delta");
  static obs::Histogram& h_total =
      obs::MetricsRegistry::global().histogram("bgp.delta.solve_us");
  obs::ScopedTimer timer(h_total);

  eng.origins = origin_set;
  eng.cust_seeds = eng.seeds_by_holder(origin_set, /*peer=*/false);
  eng.peer_seeds = eng.seeds_by_holder(origin_set, /*peer=*/true);

  // Classify the link deltas by the relationship of the adjacency: transit
  // links feed stages 1/3, peerings feed stage 2.
  std::vector<std::pair<std::size_t, std::size_t>> transit;  // (customer, provider)
  std::vector<std::pair<std::size_t, std::size_t>> peering;
  for (const LinkDelta& ld : links) {
    const auto ai = eng.graph.index_of(ld.a);
    const auto bi = eng.graph.index_of(ld.b);
    if (!ai || !bi) continue;
    const topo::Edge* edge = nullptr;
    for (const topo::Edge& e : eng.nodes[*ai].edges) {
      if (e.neighbor == ld.b) {
        edge = &e;
        break;
      }
    }
    if (edge == nullptr) continue;
    switch (edge->rel) {
      case topo::Rel::Provider:  // a buys transit from b
        transit.emplace_back(*ai, *bi);
        break;
      case topo::Rel::Customer:  // b buys transit from a
        transit.emplace_back(*bi, *ai);
        break;
      default:
        peering.emplace_back(*ai, *bi);
        break;
    }
  }

  // ---- stage 1: customer-plane fixpoint. Dirty roots: holders of changed
  // customer originations and the provider side of changed transit links
  // (the importer; the customer side's stage-1 candidates never cross the
  // link upward).
  Worklist stage1(eng, Worklist::Stage::kCustomer);
  for (const OriginChange& ch : changes) {
    if (ch.origin.neighbor_rel != topo::Rel::Customer) continue;
    if (const auto idx = eng.graph.index_of(ch.origin.neighbor)) stage1.touch(*idx);
  }
  for (const auto& [cust, prov] : transit) {
    (void)cust;
    stage1.touch(prov);
  }
  if (!stage1.run(touch_budget)) return false;
  const std::vector<std::uint32_t> changed1 = stage1.changed();

  // ---- stage 2: local recompute. A node's peer-plane row depends on its
  // own customer row, its peers' customer rows over up peer edges, its
  // direct peer originations, and peer-edge state.
  std::vector<std::uint32_t> dirty2;
  for (const std::uint32_t x : changed1) {
    dirty2.push_back(x);
    for (const topo::Edge& e : eng.nodes[x].edges) {
      if (!e.up || !topo::is_peer(e.rel)) continue;
      if (const auto z = eng.graph.index_of(e.neighbor)) {
        dirty2.push_back(static_cast<std::uint32_t>(*z));
      }
    }
  }
  for (const auto& [a, b] : peering) {
    dirty2.push_back(static_cast<std::uint32_t>(a));
    dirty2.push_back(static_cast<std::uint32_t>(b));
  }
  for (const OriginChange& ch : changes) {
    if (!topo::is_peer(ch.origin.neighbor_rel)) continue;
    if (const auto idx = eng.graph.index_of(ch.origin.neighbor)) {
      dirty2.push_back(static_cast<std::uint32_t>(*idx));
    }
  }
  std::sort(dirty2.begin(), dirty2.end());
  dirty2.erase(std::unique(dirty2.begin(), dirty2.end()), dirty2.end());
  if (dirty2.size() > touch_budget) return false;

  std::vector<std::uint32_t> changed2;
  std::unordered_map<std::uint32_t, SavedRow> saved2;
  for (const std::uint32_t x : dirty2) {
    const SavedRow orig = save_row(eng.s, x);
    saved2.emplace(x, orig);
    const Cand best = eng.stage2_candidate(x);
    if (best.valid) {
      eng.accept(eng.s, best, &orig);
    } else {
      eng.s.clear_row(x);
    }
    if (row_differs(eng.s, x, orig)) changed2.push_back(x);
  }

  // ---- stage 3: final-plane fixpoint. Dirty roots: stage-2 changes and
  // the customer side of changed transit links (the descent importer).
  Worklist stage3(eng, Worklist::Stage::kFinal);
  for (const std::uint32_t x : changed2) stage3.touch(x);
  for (const auto& [cust, prov] : transit) {
    (void)prov;
    stage3.touch(cust);
  }
  if (!stage3.run(touch_budget)) return false;

  // ---- splice the affected entries over the previous outcome.
  affected = 0;
  touched = stage1.saved().size() + dirty2.size() + stage3.saved().size();
  for (const auto& [x, orig] : stage3.saved()) {
    if (!row_differs(eng.f, x, orig)) continue;
    ++affected;
    if (eng.f.valid(x)) {
      entries[x] = RoutingOutcome::Entry{eng.f.path[x],
                                         eng.f.len[x],
                                         eng.f.site[x],
                                         static_cast<RouteClass>(eng.f.cls[x]),
                                         eng.f.ingress[x],
                                         eng.f.tiebreak[x]};
    } else {
      entries[x] = RoutingOutcome::Entry{};
    }
  }
  return true;
}

}  // namespace delta_detail

// ---- solve_anycast ----------------------------------------------------------

RoutingOutcome solve_anycast(const topo::Graph& graph, Asn cdn_asn,
                             std::span<const OriginAttachment> origins, std::uint64_t seed) {
  namespace dd = delta_detail;
  auto arena = std::make_shared<PathArena>();
  dd::Plane c, s, f;
  dd::SoaEngine engine(graph, cdn_asn, seed, *arena, c, s, f);
  std::vector<RoutingOutcome::Entry> entries;
  engine.full_solve(origins, entries);
  return RoutingOutcome{&graph, cdn_asn, std::move(entries),
                        std::shared_ptr<const PathArena>(std::move(arena))};
}

// ---- diff_origin_changes ----------------------------------------------------

namespace {

bool origin_eq(const OriginAttachment& a, const OriginAttachment& b) noexcept {
  return a.site == b.site && a.site_city == b.site_city && a.neighbor == b.neighbor &&
         a.neighbor_rel == b.neighbor_rel && a.onsite_router == b.onsite_router;
}

}  // namespace

std::vector<OriginChange> diff_origin_changes(std::span<const OriginAttachment> before,
                                              std::span<const OriginAttachment> after) {
  std::vector<OriginChange> out;
  std::vector<bool> matched(after.size(), false);
  for (const OriginAttachment& b : before) {
    bool found = false;
    for (std::size_t j = 0; j < after.size(); ++j) {
      if (!matched[j] && origin_eq(b, after[j])) {
        matched[j] = true;
        found = true;
        break;
      }
    }
    if (!found) out.push_back(OriginChange{false, b});
  }
  for (std::size_t j = 0; j < after.size(); ++j) {
    if (!matched[j]) out.push_back(OriginChange{true, after[j]});
  }
  return out;
}

// ---- DeltaSolver ------------------------------------------------------------

struct DeltaSolver::RegionState {
  bool primed{false};
  std::uint64_t seed{0};
  std::uint64_t resolve_count{0};
  std::shared_ptr<PathArena> arena;
  delta_detail::Plane c, s, f;
  std::vector<RoutingOutcome::Entry> entries;
};

DeltaSolver::DeltaSolver(const topo::Graph& graph, Asn cdn_asn, std::size_t regions,
                         DeltaConfig cfg)
    : graph_(&graph), cdn_asn_(cdn_asn), cfg_(cfg) {
  regions_.reserve(regions);
  for (std::size_t r = 0; r < regions; ++r) {
    regions_.push_back(std::make_unique<RegionState>());
  }
}

DeltaSolver::~DeltaSolver() = default;
DeltaSolver::DeltaSolver(DeltaSolver&&) noexcept = default;
DeltaSolver& DeltaSolver::operator=(DeltaSolver&&) noexcept = default;

bool DeltaSolver::primed(std::size_t region) const noexcept {
  return region < regions_.size() && regions_[region]->primed;
}

namespace {

/// Thorough (sampled) differential check: materializes and compares every
/// node's route.
bool outcomes_equal(const topo::Graph& graph, const RoutingOutcome& a,
                    const RoutingOutcome& b) {
  for (const topo::AsNode& node : graph.nodes()) {
    const Route* ra = a.route_for(node.asn);
    const Route* rb = b.route_for(node.asn);
    if ((ra == nullptr) != (rb == nullptr)) return false;
    if (ra == nullptr) continue;
    if (ra->origin_site != rb->origin_site || ra->cls != rb->cls ||
        ra->ingress_km != rb->ingress_km || ra->tiebreak != rb->tiebreak ||
        ra->as_path != rb->as_path || ra->geo_path != rb->geo_path) {
      return false;
    }
  }
  return true;
}

}  // namespace

RoutingOutcome DeltaSolver::prime(std::size_t region,
                                  std::span<const OriginAttachment> origins,
                                  std::uint64_t seed, DeltaStats* stats) {
  RegionState& st = *regions_[region];
  st.seed = seed;
  st.arena = std::make_shared<PathArena>();
  delta_detail::SoaEngine engine(*graph_, cdn_asn_, seed, *st.arena, st.c, st.s, st.f);
  engine.full_solve(origins, st.entries);
  st.primed = true;
  if (stats != nullptr) {
    ++stats->regions;
    ++stats->full_regions;
  }
  return RoutingOutcome{graph_, cdn_asn_, st.entries,
                        std::shared_ptr<const PathArena>(st.arena)};
}

RoutingOutcome DeltaSolver::resolve(std::size_t region,
                                    std::span<const OriginAttachment> origins,
                                    std::span<const OriginChange> changes,
                                    std::span<const LinkDelta> links, DeltaStats* stats) {
  namespace dd = delta_detail;
  RegionState& st = *regions_[region];
  const std::size_t n = graph_->nodes().size();
  DeltaStats local;
  local.regions = 1;

  const std::size_t budget = std::max<std::size_t>(
      64, static_cast<std::size_t>(cfg_.fallback_frac * static_cast<double>(n)));
  // Re-prime (compacting the arena) when accumulated splice garbage
  // dominates the live paths.
  bool full = !st.primed || st.arena->size() > 32 * n + 4096;
  if (!full) {
    dd::SoaEngine engine(*graph_, cdn_asn_, st.seed, *st.arena, st.c, st.s, st.f);
    std::size_t affected = 0;
    std::size_t touched = 0;
    if (dd::incremental_solve(engine, origins, changes, links, budget, st.entries,
                              affected, touched)) {
      local.delta_regions = 1;
      local.affected_ases = affected;
      local.touched_ases = touched;
    } else {
      full = true;
    }
  }
  if (full) {
    st.arena = std::make_shared<PathArena>();
    dd::SoaEngine engine(*graph_, cdn_asn_, st.seed, *st.arena, st.c, st.s, st.f);
    engine.full_solve(origins, st.entries);
    st.primed = true;
    local.full_regions = 1;
  }

  RoutingOutcome out{graph_, cdn_asn_, st.entries,
                     std::shared_ptr<const PathArena>(st.arena)};

  if (cfg_.verify_every != 0 && ++st.resolve_count % cfg_.verify_every == 0) {
    local.verified = 1;
    const RoutingOutcome fresh = solve_anycast(*graph_, cdn_asn_, origins, st.seed);
    if (!outcomes_equal(*graph_, out, fresh)) {
      // Self-heal: discard the incremental state and use the from-scratch
      // result; the mismatch is surfaced through stats/counters.
      local.mismatches = 1;
      st.arena = std::make_shared<PathArena>();
      dd::SoaEngine engine(*graph_, cdn_asn_, st.seed, *st.arena, st.c, st.s, st.f);
      engine.full_solve(origins, st.entries);
      out = RoutingOutcome{graph_, cdn_asn_, st.entries,
                           std::shared_ptr<const PathArena>(st.arena)};
    }
  }

  if (obs::enabled()) {
    auto& registry = obs::MetricsRegistry::global();
    registry.counter("bgp.delta.resolves").add(1);
    if (local.delta_regions != 0) {
      registry.counter("bgp.delta.affected_ases").add(local.affected_ases);
      registry.histogram("bgp.delta.affected_ases")
          .record(static_cast<double>(local.affected_ases));
    }
    if (local.full_regions != 0) registry.counter("bgp.delta.fallback_full").add(1);
    if (local.verified != 0) registry.counter("bgp.delta.verified").add(1);
    if (local.mismatches != 0) registry.counter("bgp.delta.verify_mismatch").add(1);
  }
  if (stats != nullptr) stats->merge(local);
  return out;
}

std::unique_ptr<DeltaSolver> DeltaSolver::clone() const {
  auto out = std::make_unique<DeltaSolver>(*graph_, cdn_asn_, regions_.size(), cfg_);
  for (std::size_t r = 0; r < regions_.size(); ++r) {
    const RegionState& src = *regions_[r];
    RegionState& dst = *out->regions_[r];
    dst.primed = src.primed;
    dst.seed = src.seed;
    dst.resolve_count = src.resolve_count;
    // Deep-copy the arena: the clone appends independently, and arena node
    // ids (shared with the copied planes) stay valid because the copy has
    // identical contents.
    dst.arena = src.arena ? std::make_shared<PathArena>(*src.arena) : nullptr;
    dst.c = src.c;
    dst.s = src.s;
    dst.f = src.f;
    dst.entries = src.entries;
  }
  return out;
}

}  // namespace ranycast::bgp
