// Incremental anycast re-solving: O(affected) chaos steps.
//
// The full solver (solve_anycast) recomputes every AS's selection from
// scratch after each topology event, even when the event touched a single
// site, link or route server. BGP itself converges incrementally — only
// ASes whose best route or candidate set can change re-decide — and the
// DeltaSolver mirrors that: it retains the three per-stage selection planes
// of the previous solve as parallel SoA arrays keyed by dense node index,
// and on a topology/origination delta propagates a withdrawal/announcement
// frontier outward from the changed edges with a worklist fixpoint
// (Ramalingam–Reps style: each inconsistent node is re-decided from its
// neighbors' current values in global key order).
//
// Equality guarantee: the spliced outcome is byte-identical to a
// from-scratch solve_anycast over the mutated inputs. The selection keys
// (class, path length, ingress distance, 64-bit tie-break hash, node) are
// strictly monotone along export chains — extending a route lengthens it —
// so the selection fixpoint is unique and the frontier propagation and the
// full Dijkstra land on the same one. The guarantee is enforced three ways:
// always-on differential tests (tests/bgp/test_delta_solver.cpp), the
// chaos soak's per-step report byte-equality (tests/chaos/test_delta_soak),
// and a sampled in-engine verify mode (DeltaConfig::verify_every) that
// re-solves from scratch every Nth step and self-heals on mismatch.
//
// Fallback: when the frontier exceeds fallback_frac of all nodes (e.g. a
// regional withdrawal invalidating most of the plane) the incremental pass
// aborts and a full SoA solve re-primes the state — never slower than the
// non-delta path by more than the abandoned frontier walk.
//
// Concurrency: one DeltaSolver belongs to one deployment; distinct regions
// hold distinct planes/arenas and may be resolved concurrently. Mutation
// (resolve/prime) and measurement (route_for on emitted outcomes) must be
// serialized per region, exactly like lab::Lab::resolve.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "ranycast/bgp/solver.hpp"

namespace ranycast::bgp {

/// One inter-AS adjacency state change (already applied to the graph).
struct LinkDelta {
  Asn a{kInvalidAsn};
  Asn b{kInvalidAsn};
  bool up{true};
};

/// One origination change: a site announcement appearing (announce) or
/// disappearing (withdraw) from a region's origin set.
struct OriginChange {
  bool announce{true};
  OriginAttachment origin{};
};

/// A topology/origination delta covering every region of one deployment.
/// The graph mutation must already be applied; `origins[r]` lists region
/// r's origination changes (missing trailing regions mean "no change").
struct SolveDelta {
  std::vector<LinkDelta> links;
  std::vector<std::vector<OriginChange>> origins;

  bool empty() const noexcept {
    if (!links.empty()) return false;
    for (const auto& r : origins) {
      if (!r.empty()) return false;
    }
    return true;
  }
};

struct DeltaConfig {
  /// Master switch consulted by the call sites (chaos::Engine,
  /// resilience::fail_site); the solver itself always works when invoked.
  bool enabled{false};
  /// Fall back to a full re-solve when the touched frontier exceeds this
  /// fraction of all ASes.
  double fallback_frac{0.25};
  /// When nonzero, every Nth resolve of each region also runs a
  /// from-scratch solve, compares outcomes and self-heals on mismatch.
  std::uint32_t verify_every{0};
};

/// Accounting for one resolve (or a merge over regions/steps).
struct DeltaStats {
  std::size_t regions{0};        ///< regions resolved
  std::size_t delta_regions{0};  ///< solved incrementally
  std::size_t full_regions{0};   ///< primed or fell back to full
  std::size_t affected_ases{0};  ///< final-plane entries that changed
  std::size_t touched_ases{0};   ///< frontier size across all stages
  std::size_t verified{0};       ///< sampled differential verifications run
  std::size_t mismatches{0};     ///< verifications that disagreed (self-healed)

  void merge(const DeltaStats& o) noexcept {
    regions += o.regions;
    delta_regions += o.delta_regions;
    full_regions += o.full_regions;
    affected_ases += o.affected_ases;
    touched_ases += o.touched_ases;
    verified += o.verified;
    mismatches += o.mismatches;
  }
};

/// Order-preserving multiset diff of two origin sets: withdrawals (in
/// `before` order) followed by announcements (in `after` order). This is
/// how chaos::Engine turns a site/attachment/region mutation into a
/// SolveDelta without knowing which fault produced it.
std::vector<OriginChange> diff_origin_changes(std::span<const OriginAttachment> before,
                                              std::span<const OriginAttachment> after);

/// Retained per-deployment incremental state: one selection-plane set per
/// region. prime() runs the full SoA solve and installs the planes;
/// resolve() splices only the affected entries.
class DeltaSolver {
 public:
  DeltaSolver(const topo::Graph& graph, Asn cdn_asn, std::size_t regions,
              DeltaConfig cfg = {});
  ~DeltaSolver();

  DeltaSolver(DeltaSolver&&) noexcept;
  DeltaSolver& operator=(DeltaSolver&&) noexcept;
  DeltaSolver(const DeltaSolver&) = delete;
  DeltaSolver& operator=(const DeltaSolver&) = delete;

  /// Full SoA solve of one region; resets that region's planes and arena.
  /// The outcome is byte-identical to solve_anycast(graph, asn, origins,
  /// seed). Counts as a full region in `stats`.
  RoutingOutcome prime(std::size_t region, std::span<const OriginAttachment> origins,
                       std::uint64_t seed, DeltaStats* stats = nullptr);

  bool primed(std::size_t region) const noexcept;

  /// Incremental re-solve of a primed region. `origins` is the post-delta
  /// origin set; `changes`/`links` describe how it and the graph moved
  /// since the previous prime()/resolve(). Falls back to a full re-prime
  /// when the frontier exceeds the configured threshold.
  RoutingOutcome resolve(std::size_t region, std::span<const OriginAttachment> origins,
                         std::span<const OriginChange> changes,
                         std::span<const LinkDelta> links, DeltaStats* stats = nullptr);

  /// Deep copy (planes + arenas), for deriving a deployment from a base
  /// one (resilience::fail_site reuses the base's primed planes).
  std::unique_ptr<DeltaSolver> clone() const;

  const DeltaConfig& config() const noexcept { return cfg_; }
  std::size_t region_count() const noexcept { return regions_.size(); }

 private:
  struct RegionState;

  const topo::Graph* graph_;
  Asn cdn_asn_;
  DeltaConfig cfg_;
  std::vector<std::unique_ptr<RegionState>> regions_;
};

}  // namespace ranycast::bgp
