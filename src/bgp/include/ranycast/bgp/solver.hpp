// Gao-Rexford anycast route propagation.
//
// Computes, for one anycast prefix originated at a set of sites, the route
// each AS in the graph selects. The engine follows the standard three-stage
// valley-free model:
//   1. customer routes climb the provider hierarchy (Dijkstra on path length),
//   2. each AS considers routes its peers export (peers export only customer
//      routes and direct originations),
//   3. provider routes descend to customers (Dijkstra on path length over the
//      exported best routes).
// Selection order: local-pref class (customer > public peer > route-server
// peer > provider), then AS-path length, then a deterministic hash tie-break
// standing in for BGP's arbitrary tie-breaking (router ids, age).
//
// Candidates are held as compact parent-indexed references into a PathArena
// (see path_arena.hpp); the outcome keeps the arena and materializes a full
// Route only on the first route_for() for an AS. Materialization is
// lock-free thread-safe, so the measurement plane may fan out over probes
// while sharing one outcome.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "ranycast/bgp/path_arena.hpp"
#include "ranycast/bgp/route.hpp"
#include "ranycast/topo/graph.hpp"

namespace ranycast::bgp {

/// Per-AS routing result for one anycast prefix. Movable, not copyable (the
/// lazily materialized Route cache is identity-bound).
class RoutingOutcome {
 public:
  /// Compact selected-route record for one AS; `path == PathArena::kNone`
  /// means the prefix is unreachable from that AS.
  struct Entry {
    std::uint32_t path{PathArena::kNone};
    std::uint16_t len{0};
    SiteId origin_site{kInvalidSite};
    RouteClass cls{RouteClass::Provider};
    double ingress_km{0.0};
    std::uint64_t tiebreak{0};
  };

  RoutingOutcome(const topo::Graph* graph, Asn origin_asn, std::vector<Entry> entries,
                 PathArena arena);
  /// Shared-arena variant (incremental delta re-solves): the outcome keeps
  /// the arena alive but does not own it exclusively. The producer (the
  /// DeltaSolver's master arena) may keep appending — appends never move or
  /// mutate existing nodes, and all access is index-based, so entries
  /// referencing earlier nodes stay valid for the outcome's lifetime.
  RoutingOutcome(const topo::Graph* graph, Asn origin_asn, std::vector<Entry> entries,
                 std::shared_ptr<const PathArena> arena);
  ~RoutingOutcome();

  RoutingOutcome(RoutingOutcome&& other) noexcept;
  RoutingOutcome& operator=(RoutingOutcome&& other) noexcept;
  RoutingOutcome(const RoutingOutcome&) = delete;
  RoutingOutcome& operator=(const RoutingOutcome&) = delete;

  /// The route the AS selected, or nullptr if the prefix is unreachable.
  /// Materializes the full path on first call for an AS; safe to call
  /// concurrently, and the returned pointer stays valid for the outcome's
  /// lifetime.
  const Route* route_for(Asn a) const noexcept;

  /// Catchment: the site an AS's traffic reaches. Reads the compact entry;
  /// never materializes a path.
  std::optional<SiteId> catchment(Asn a) const noexcept;

  std::size_t reachable_count() const noexcept;
  std::size_t as_count() const noexcept { return entries_.size(); }

 private:
  const Route* materialize(std::size_t idx) const noexcept;
  void destroy_cache() noexcept;

  const topo::Graph* graph_{nullptr};
  Asn origin_asn_{kInvalidAsn};
  std::vector<Entry> entries_;  // indexed by dense node index
  std::shared_ptr<const PathArena> arena_;
  /// Lazily materialized Routes, CAS-installed; slot i covers entries_[i].
  mutable std::unique_ptr<std::atomic<const Route*>[]> cache_;
};

/// Solve one anycast prefix. `seed` perturbs only the tie-break hash, which
/// models BGP's arbitrary tie-breaking; all policy decisions are
/// deterministic in the inputs. Pure in its inputs (reads the graph, never
/// mutates it), so independent prefixes may be solved concurrently.
RoutingOutcome solve_anycast(const topo::Graph& graph, Asn cdn_asn,
                             std::span<const OriginAttachment> origins, std::uint64_t seed);

}  // namespace ranycast::bgp
