// Gao-Rexford anycast route propagation.
//
// Computes, for one anycast prefix originated at a set of sites, the route
// each AS in the graph selects. The engine follows the standard three-stage
// valley-free model:
//   1. customer routes climb the provider hierarchy (Dijkstra on path length),
//   2. each AS considers routes its peers export (peers export only customer
//      routes and direct originations),
//   3. provider routes descend to customers (Dijkstra on path length over the
//      exported best routes).
// Selection order: local-pref class (customer > public peer > route-server
// peer > provider), then AS-path length, then a deterministic hash tie-break
// standing in for BGP's arbitrary tie-breaking (router ids, age).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "ranycast/bgp/route.hpp"
#include "ranycast/topo/graph.hpp"

namespace ranycast::bgp {

/// Per-AS routing result for one anycast prefix.
class RoutingOutcome {
 public:
  RoutingOutcome(const topo::Graph* graph, std::vector<std::optional<Route>> routes)
      : graph_(graph), routes_(std::move(routes)) {}

  /// The route the AS selected, or nullptr if the prefix is unreachable.
  const Route* route_for(Asn a) const noexcept;

  /// Catchment: the site an AS's traffic reaches.
  std::optional<SiteId> catchment(Asn a) const noexcept;

  std::size_t reachable_count() const noexcept;
  std::size_t as_count() const noexcept { return routes_.size(); }

 private:
  const topo::Graph* graph_;
  std::vector<std::optional<Route>> routes_;  // indexed by dense node index
};

/// Solve one anycast prefix. `seed` perturbs only the tie-break hash, which
/// models BGP's arbitrary tie-breaking; all policy decisions are
/// deterministic in the inputs.
RoutingOutcome solve_anycast(const topo::Graph& graph, Asn cdn_asn,
                             std::span<const OriginAttachment> origins, std::uint64_t seed);

}  // namespace ranycast::bgp
