// BGP route representation for the anycast solver.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "ranycast/core/types.hpp"
#include "ranycast/topo/graph.hpp"

namespace ranycast::bgp {

/// Local-preference class, ordered by preference (higher wins). The ordering
/// encodes the two policies the paper shows regional anycast "overrides"
/// (§5.4): customer > peer, and public peer > route-server peer.
enum class RouteClass : std::uint8_t {
  Provider = 0,
  PeerRouteServer = 1,
  PeerPublic = 2,
  Customer = 3,
};

std::string_view to_string(RouteClass c) noexcept;

/// Map the relationship through which a route was learned to its class.
constexpr RouteClass class_of(topo::Rel learned_from) noexcept {
  switch (learned_from) {
    case topo::Rel::Customer:
      return RouteClass::Customer;
    case topo::Rel::PeerPublic:
      return RouteClass::PeerPublic;
    case topo::Rel::PeerRouteServer:
      return RouteClass::PeerRouteServer;
    case topo::Rel::Provider:
      return RouteClass::Provider;
  }
  return RouteClass::Provider;
}

/// A selected route at some AS.
///
/// `as_path` lists the ASes the announcement traversed before reaching the
/// holder, origin first: [cdn_asn, A1, ..., Ak]. `geo_path` lists the
/// corresponding interconnection cities: geo_path[0] is the originating
/// site's city and geo_path[i] is where A_i handed the route to A_{i+1}
/// (or to the holder, for the last element). The two vectors always have
/// equal length — that is a class invariant maintained by the solver.
struct Route {
  SiteId origin_site{kInvalidSite};
  Asn origin_asn{kInvalidAsn};
  RouteClass cls{RouteClass::Provider};
  std::vector<Asn> as_path;
  std::vector<CityId> geo_path;
  /// Hot-potato proxy: distance from the holder's home city to the city
  /// where it received the route. Real BGP breaks ties by IGP metric to the
  /// egress; this is the geographic analogue, applied after local-pref and
  /// path length and before the arbitrary hash tie-break.
  double ingress_km{0.0};
  std::uint64_t tiebreak{0};

  std::size_t path_length() const noexcept { return as_path.size(); }
  /// City where the holder received the route (its upstream interconnect).
  CityId ingress_city() const noexcept { return geo_path.back(); }
};

/// One origination point of an anycast prefix: a site injecting the prefix
/// into a neighbor AS.
struct OriginAttachment {
  SiteId site{kInvalidSite};
  CityId site_city{kInvalidCity};
  Asn neighbor{kInvalidAsn};
  /// Relationship from the neighbor's perspective. Customer = the CDN buys
  /// transit from the neighbor; the peer kinds are IXP-style peerings.
  topo::Rel neighbor_rel{topo::Rel::Customer};
  bool onsite_router{true};  ///< the site runs its own edge router (p-hop owner)
};

}  // namespace ranycast::bgp
