// Parent-indexed storage for BGP announcement paths.
//
// During a solve every edge relaxation used to copy the candidate route's
// full `as_path`/`geo_path` vectors; with the arena a candidate stores only
// the index of its parent path node plus the appended (ASN, city) hop, so
// extending a route is O(1) in time and memory and the solver's working set
// is two machine words per relaxation instead of O(path length). Full paths
// are materialized lazily — walking the parent chain backwards — only when a
// consumer (latency model, traceroute synthesis, analysis export, chaos
// reports) asks for a concrete Route.
#pragma once

#include <cstdint>
#include <vector>

#include "ranycast/core/types.hpp"

namespace ranycast::bgp {

class PathArena {
 public:
  /// Sentinel for "no parent" (an origination node) and for "no path at
  /// all" (an unreachable entry in a routing outcome).
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  /// Append one hop. For an origination pass `parent = kNone`; `asn` is the
  /// AS that exported the route (the origin ASN at a seed) and `city` the
  /// interconnection city of the hop (the site city at a seed).
  std::uint32_t append(std::uint32_t parent, Asn asn, CityId city) {
    nodes_.push_back(Node{parent, asn, city});
    return static_cast<std::uint32_t>(nodes_.size() - 1);
  }

  /// Number of hops on the path ending at `node` (== as_path length).
  std::size_t length(std::uint32_t node) const noexcept {
    std::size_t len = 0;
    for (std::uint32_t cur = node; cur != kNone; cur = nodes_[cur].parent) ++len;
    return len;
  }

  /// Reconstruct the origin-first AS and geo paths ending at `node`.
  void materialize(std::uint32_t node, std::vector<Asn>& as_path,
                   std::vector<CityId>& geo_path) const {
    const std::size_t len = length(node);
    as_path.resize(len);
    geo_path.resize(len);
    std::size_t i = len;
    for (std::uint32_t cur = node; cur != kNone; cur = nodes_[cur].parent) {
      --i;
      as_path[i] = nodes_[cur].asn;
      geo_path[i] = nodes_[cur].city;
    }
  }

  std::size_t size() const noexcept { return nodes_.size(); }

  // Per-hop access for consumers that walk paths without materializing
  // them (the convergence plane's AS-path loop check visits each hop once
  // and needs no vectors).
  std::uint32_t parent_of(std::uint32_t node) const noexcept { return nodes_[node].parent; }
  Asn asn_of(std::uint32_t node) const noexcept { return nodes_[node].asn; }
  CityId city_of(std::uint32_t node) const noexcept { return nodes_[node].city; }

 private:
  struct Node {
    std::uint32_t parent;
    Asn asn;
    CityId city;
  };

  std::vector<Node> nodes_;
};

}  // namespace ranycast::bgp
