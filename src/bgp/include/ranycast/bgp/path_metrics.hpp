// Data-path latency model and traceroute synthesis.
//
// The RTT of a path is driven by the geographic route the selected BGP path
// takes: the client city, the chain of interconnection cities the
// announcement traversed (in reverse), and the originating site's city.
// This is what turns policy-routing decisions into the latency pathologies
// the paper measures.
#pragma once

#include <optional>
#include <vector>

#include "ranycast/bgp/route.hpp"
#include "ranycast/core/ipv4.hpp"
#include "ranycast/core/rng.hpp"
#include "ranycast/core/types.hpp"
#include "ranycast/geo/earth.hpp"
#include "ranycast/topo/graph.hpp"
#include "ranycast/topo/ip_registry.hpp"

namespace ranycast::bgp {

struct LatencyModel {
  /// Fibre propagation: RTT milliseconds per kilometre of great-circle path.
  /// The paper's constant is 1 ms RTT per 100 km.
  double ms_per_km{1.0 / geo::kKmPerMsRtt};
  /// Per-AS-hop processing/queueing cost (RTT).
  double per_hop_ms{0.15};
  /// Maximum deterministic "jitter" (path indirectness, queueing) added per
  /// (client, path) pair.
  double jitter_max_ms{1.5};
  /// Last-mile access latency added for end hosts (probes).
  double access_base_ms{0.4};
  std::uint64_t seed{0x9e3779b9};

  /// Total geographic length of the data path for a client in `client_city`
  /// using route `r`: client -> ingress interconnect -> ... -> site.
  Km path_distance(const Route& r, CityId client_city) const;

  /// End-to-end RTT for a client (identified by its AS for jitter purposes).
  Rtt path_rtt(const Route& r, CityId client_city, Asn client_asn,
               double client_access_extra_ms = 0.0) const;
};

/// One responding traceroute hop.
struct Hop {
  Ipv4Addr ip;
  Asn owner{kInvalidAsn};
  CityId city{kInvalidCity};
  Rtt rtt;  ///< RTT from the client to this hop
};

struct TracerouteResult {
  std::vector<Hop> hops;  ///< client-side first; the last entry is the p-hop
  Ipv4Addr destination;
  Rtt rtt;              ///< RTT to the destination (== ping RTT)
  bool phop_valid{true};  ///< false when the penultimate hop did not respond

  const Hop& phop() const { return hops.back(); }
};

struct TracerouteConfig {
  /// Probability the penultimate hop does not respond (filters in §5.3 drop
  /// such probes). Deterministic per (client, route).
  double phop_loss_prob{0.05};
  std::uint64_t seed{0xABCD};
};

/// Synthesize the traceroute a client would observe along `route`.
/// `onsite_router` says whether the originating site announces via its own
/// edge router (then the p-hop belongs to the CDN AS at the site city),
/// otherwise the p-hop is the first-hop neighbor's interface at the site.
TracerouteResult synth_traceroute(const Route& route, CityId client_city, Asn client_asn,
                                  double client_access_extra_ms, bool onsite_router,
                                  Ipv4Addr destination, const LatencyModel& latency,
                                  const TracerouteConfig& config, topo::IpRegistry& registry);

/// Read-only variant for concurrent fan-out: identical output, but never
/// allocates registry state. Every (AS, city) pair on the path must already
/// be registered — run the mutating overload (or Lab::traceroute_all's warm
/// prepass) over the same routes first; throws std::bad_optional_access on a
/// cold registry.
TracerouteResult synth_traceroute(const Route& route, CityId client_city, Asn client_asn,
                                  double client_access_extra_ms, bool onsite_router,
                                  Ipv4Addr destination, const LatencyModel& latency,
                                  const TracerouteConfig& config,
                                  const topo::IpRegistry& registry);

/// The registry-touch order of one synth_traceroute call, exposed so batch
/// drivers can warm the registry serially (replicating the exact sequential
/// first-touch order, which fixes block ordinals) before fanning out with
/// the const overload. Calls `touch(asn, city)` once per hop, in hop order.
template <typename TouchFn>
void for_each_traceroute_interface(const Route& route, CityId client_city, Asn client_asn,
                                   bool onsite_router, TouchFn&& touch) {
  touch(client_asn, client_city);
  for (std::size_t i = route.as_path.size(); i-- > 1;) {
    touch(route.as_path[i], route.geo_path[i]);
  }
  const Asn phop_owner = onsite_router                ? route.origin_asn
                         : route.as_path.size() > 1 ? route.as_path[1]
                                                      : client_asn;
  touch(phop_owner, route.geo_path.front());
}

}  // namespace ranycast::bgp
