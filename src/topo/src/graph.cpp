#include "ranycast/topo/graph.hpp"

#include <algorithm>

namespace ranycast::topo {

std::string_view to_string(Rel r) noexcept {
  switch (r) {
    case Rel::Customer:
      return "customer";
    case Rel::Provider:
      return "provider";
    case Rel::PeerPublic:
      return "public-peer";
    case Rel::PeerRouteServer:
      return "route-server-peer";
  }
  return "?";
}

std::string_view to_string(AsKind k) noexcept {
  switch (k) {
    case AsKind::Tier1:
      return "tier1";
    case AsKind::Transit:
      return "transit";
    case AsKind::Stub:
      return "stub";
  }
  return "?";
}

bool AsNode::present_in(CityId c) const noexcept {
  return std::find(footprint.begin(), footprint.end(), c) != footprint.end();
}

Asn Graph::add_as(AsKind kind, CityId home, std::vector<CityId> footprint, bool international) {
  const Asn asn = make_asn(next_asn_++);
  AsNode node;
  node.asn = asn;
  node.kind = kind;
  node.home_city = home;
  node.registered_city = home;
  node.international = international;
  node.footprint = std::move(footprint);
  if (node.footprint.empty()) node.footprint.push_back(home);
  index_.emplace(asn, nodes_.size());
  nodes_.push_back(std::move(node));
  return asn;
}

bool Graph::add_transit(Asn customer, Asn provider, std::vector<CityId> cities) {
  AsNode* c = find(customer);
  AsNode* p = find(provider);
  if (c == nullptr || p == nullptr || customer == provider || cities.empty()) return false;
  if (has_edge(customer, provider)) return false;
  c->edges.push_back(Edge{provider, Rel::Provider, true, cities});
  p->edges.push_back(Edge{customer, Rel::Customer, true, std::move(cities)});
  ++edge_count_;
  return true;
}

bool Graph::add_peering(Asn a, Asn b, bool via_route_server, std::vector<CityId> cities) {
  AsNode* na = find(a);
  AsNode* nb = find(b);
  if (na == nullptr || nb == nullptr || a == b || cities.empty()) return false;
  if (has_edge(a, b)) return false;
  const Rel rel = via_route_server ? Rel::PeerRouteServer : Rel::PeerPublic;
  na->edges.push_back(Edge{b, rel, true, cities});
  nb->edges.push_back(Edge{a, rel, true, std::move(cities)});
  ++edge_count_;
  return true;
}

std::size_t Graph::add_ixp(Ixp ixp) {
  ixps_.push_back(std::move(ixp));
  return ixps_.size() - 1;
}

const AsNode* Graph::find(Asn a) const noexcept {
  const auto it = index_.find(a);
  return it == index_.end() ? nullptr : &nodes_[it->second];
}

AsNode* Graph::find(Asn a) noexcept {
  const auto it = index_.find(a);
  return it == index_.end() ? nullptr : &nodes_[it->second];
}

std::optional<std::size_t> Graph::index_of(Asn a) const noexcept {
  const auto it = index_.find(a);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

bool Graph::has_edge(Asn a, Asn b) const noexcept {
  const AsNode* na = find(a);
  if (na == nullptr) return false;
  return std::any_of(na->edges.begin(), na->edges.end(),
                     [b](const Edge& e) { return e.neighbor == b; });
}

namespace {

Edge* edge_to(AsNode* from, Asn to) noexcept {
  if (from == nullptr) return nullptr;
  for (Edge& e : from->edges) {
    if (e.neighbor == to) return &e;
  }
  return nullptr;
}

}  // namespace

bool Graph::set_link_state(Asn a, Asn b, bool up) noexcept {
  Edge* ab = edge_to(find(a), b);
  Edge* ba = edge_to(find(b), a);
  if (ab == nullptr || ba == nullptr) return false;
  ab->up = up;
  ba->up = up;
  return true;
}

bool Graph::link_is_up(Asn a, Asn b) const noexcept {
  const AsNode* na = find(a);
  if (na == nullptr) return false;
  return std::any_of(na->edges.begin(), na->edges.end(),
                     [b](const Edge& e) { return e.neighbor == b && e.up; });
}

std::size_t Graph::set_route_server_state(std::size_t ixp_index, bool up) noexcept {
  if (ixp_index >= ixps_.size()) return 0;
  const Ixp& ixp = ixps_[ixp_index];
  std::size_t changed = 0;
  for (const Asn member : ixp.members) {
    AsNode* node = find(member);
    if (node == nullptr) continue;
    for (Edge& e : node->edges) {
      if (e.rel != Rel::PeerRouteServer || e.up == up) continue;
      if (std::find(ixp.members.begin(), ixp.members.end(), e.neighbor) == ixp.members.end())
        continue;
      if (std::find(e.cities.begin(), e.cities.end(), ixp.city) == e.cities.end()) continue;
      e.up = up;
      ++changed;
    }
  }
  // Each adjacency was visited from both endpoints.
  return changed / 2;
}

std::vector<std::pair<Asn, Asn>> Graph::route_server_peerings(std::size_t ixp_index) const {
  std::vector<std::pair<Asn, Asn>> out;
  if (ixp_index >= ixps_.size()) return out;
  const Ixp& ixp = ixps_[ixp_index];
  for (const Asn member : ixp.members) {
    const AsNode* node = find(member);
    if (node == nullptr) continue;
    for (const Edge& e : node->edges) {
      if (e.rel != Rel::PeerRouteServer) continue;
      if (member >= e.neighbor) continue;  // emit each pair once
      if (std::find(ixp.members.begin(), ixp.members.end(), e.neighbor) == ixp.members.end())
        continue;
      if (std::find(e.cities.begin(), e.cities.end(), ixp.city) == e.cities.end()) continue;
      out.emplace_back(member, e.neighbor);
    }
  }
  return out;
}

}  // namespace ranycast::topo
