#include "ranycast/topo/ip_registry.hpp"

namespace ranycast::topo {

Prefix IpRegistry::as_block(Asn a) {
  auto [it, inserted] = block_index_.try_emplace(a, static_cast<std::uint32_t>(block_owner_.size()));
  if (inserted) block_owner_.push_back(a);
  return Prefix{Ipv4Addr{kAsSpaceBase + it->second * kAsBlockSize}, kAsBlockLen};
}

Ipv4Addr IpRegistry::router_ip(Asn a, CityId city) {
  const Prefix block = as_block(a);
  const Ipv4Addr ip = block.at(1 + value(city) % (kRouterRegionSize - 1));
  interface_owners_[ip] = IpOwner{a, city, true};
  return ip;
}

std::optional<Ipv4Addr> IpRegistry::router_ip_if_known(Asn a, CityId city) const {
  const auto it = block_index_.find(a);
  if (it == block_index_.end()) return std::nullopt;
  const Prefix block{Ipv4Addr{kAsSpaceBase + it->second * kAsBlockSize}, kAsBlockLen};
  return block.at(1 + value(city) % (kRouterRegionSize - 1));
}

Ipv4Addr IpRegistry::probe_ip(Asn a, std::uint32_t host_index, CityId city) {
  const Prefix block = as_block(a);
  const Ipv4Addr ip = block.at(kRouterRegionSize + host_index % (kAsBlockSize - kRouterRegionSize));
  if (city != kInvalidCity) interface_owners_[ip] = IpOwner{a, city, false};
  return ip;
}

std::optional<IpOwner> IpRegistry::owner(Ipv4Addr ip) const {
  if (const auto it = interface_owners_.find(ip); it != interface_owners_.end()) {
    return it->second;
  }
  if (ip.bits() < kAsSpaceBase) return std::nullopt;
  const std::uint32_t ordinal = (ip.bits() - kAsSpaceBase) / kAsBlockSize;
  if (ordinal >= block_owner_.size()) return std::nullopt;
  return IpOwner{block_owner_[ordinal], kInvalidCity, false};
}

Prefix IpRegistry::allocate_special(int prefix_len) {
  const std::uint32_t size = 1u << (32 - prefix_len);
  // Align the allocation to its own size so the prefix is canonical.
  next_special_ = (next_special_ + size - 1) & ~(size - 1);
  const Prefix p{Ipv4Addr{next_special_}, prefix_len};
  next_special_ += size;
  return p;
}

}  // namespace ranycast::topo
