#include "ranycast/topo/generator.hpp"

#include <algorithm>
#include <array>
#include <cstddef>
#include <string>

namespace ranycast::topo {

namespace {

using geo::Area;
using geo::Gazetteer;

CityId city_id(std::size_t i) { return CityId{static_cast<std::uint16_t>(i)}; }

/// Sample `count` distinct elements from `pool` (order preserved by shuffle).
template <typename T>
std::vector<T> sample(std::vector<T> pool, std::size_t count, Rng& rng) {
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const std::size_t j = i + rng.below(pool.size() - i);
    std::swap(pool[i], pool[j]);
  }
  if (pool.size() > count) pool.resize(count);
  return pool;
}

/// Interconnection cities for a link between two ASes: every shared
/// footprint city (capped), so wide-footprint pairs interconnect in many
/// places and the routing engine can pick the nearest exit. With no shared
/// city, a single interconnection at the a-side city nearest to b's home.
/// The paper's latency pathologies then come from *remote catchment sites*
/// chosen by policy routing, not from gratuitously indirect links.
std::vector<CityId> interconnect_cities(const AsNode& a, const AsNode& b, Rng& rng,
                                        bool include_a_home = false) {
  constexpr std::size_t kMaxInterconnects = 16;
  const auto& gaz = Gazetteer::world();

  // Peerings (include_a_home == false) happen where both parties are
  // physically present. Transit relationships additionally interconnect
  // near every market the customer operates in: for each customer-footprint
  // city the provider offers its nearest hub (private interconnects, leased
  // capacity, backhaul). Without this, a customer whose only footprint
  // overlap with its upstream is a remote PoP would haul its whole cone
  // through that city.
  std::vector<CityId> cities;
  auto add_unique = [&cities](CityId c) {
    if (std::find(cities.begin(), cities.end(), c) == cities.end()) cities.push_back(c);
  };
  for (CityId c : a.footprint) {
    if (b.present_in(c)) {
      add_unique(c);
      continue;
    }
    if (!include_a_home) continue;
    CityId best = b.footprint.front();
    double best_km = std::numeric_limits<double>::infinity();
    for (CityId bc : b.footprint) {
      const double d = gaz.distance(c, bc).km;
      if (d < best_km) {
        best_km = d;
        best = bc;
      }
    }
    add_unique(best);
  }
  if (cities.size() > kMaxInterconnects) {
    cities = sample(std::move(cities), kMaxInterconnects, rng);
  }
  if (!cities.empty()) return cities;
  // No overlap at all (pure peering of disjoint networks): meet at the
  // a-side city nearest to b's home.
  CityId best = a.footprint.front();
  double best_km = std::numeric_limits<double>::infinity();
  for (CityId c : a.footprint) {
    const double d = gaz.distance(c, b.home_city).km;
    if (d < best_km) {
      best_km = d;
      best = c;
    }
  }
  return {best};
}

// Cities that host IXPs, in priority order (major interconnection hubs).
constexpr std::array<const char*, 24> kIxpCities = {
    "AMS", "FRA", "LHR", "CDG", "WAW", "SVO", "IST", "JNB",  // EMEA
    "IAD", "JFK", "SJC", "ORD", "SEA", "MIA", "YYZ",         // NA
    "GRU", "EZE", "SCL", "MEX",                              // LatAm
    "SIN", "HKG", "NRT", "SYD", "BOM",                       // APAC
};

}  // namespace

const std::vector<Asn>& World::transits_at(CityId c) const {
  static const std::vector<Asn> empty;
  const auto it = transits_by_city.find(c);
  return it == transits_by_city.end() ? empty : it->second;
}

const std::vector<Asn>& World::stubs_at(CityId c) const {
  static const std::vector<Asn> empty;
  const auto it = stubs_by_city.find(c);
  return it == stubs_by_city.end() ? empty : it->second;
}

World generate_world(const GeneratorParams& params) {
  const auto& gaz = Gazetteer::world();
  World world;
  world.params = params;
  Graph& g = world.graph;
  Rng rng{params.seed};

  const std::size_t n_cities = gaz.cities().size();
  std::vector<CityId> all_cities;
  all_cities.reserve(n_cities);
  for (std::size_t i = 0; i < n_cities; ++i) all_cities.push_back(city_id(i));

  // ---- Tier-1 clique ---------------------------------------------------
  std::vector<Asn> tier1s;
  {
    const auto coverage =
        static_cast<std::size_t>(static_cast<double>(n_cities) * params.tier1_city_coverage);
    for (int i = 0; i < params.tier1_count; ++i) {
      auto footprint = sample(all_cities, std::max<std::size_t>(coverage, 8), rng);
      const CityId home = footprint[rng.below(footprint.size())];
      tier1s.push_back(g.add_as(AsKind::Tier1, home, std::move(footprint), true));
    }
    for (std::size_t i = 0; i < tier1s.size(); ++i) {
      for (std::size_t j = i + 1; j < tier1s.size(); ++j) {
        const AsNode& a = *g.find(tier1s[i]);
        const AsNode& b = *g.find(tier1s[j]);
        g.add_peering(tier1s[i], tier1s[j], false, interconnect_cities(a, b, rng));
      }
    }
  }

  // ---- International transits -------------------------------------------
  std::vector<Asn> intl_transits;
  {
    // Spread home areas roughly evenly, then bias footprints to the home area.
    for (int i = 0; i < params.international_transits; ++i) {
      const Area home_area = static_cast<Area>(i % geo::kAreaCount);
      auto area_cities = gaz.cities_in_area(home_area);
      const std::size_t in_area = 6 + rng.below(9);
      auto footprint = sample(area_cities, in_area, rng);
      // A couple of out-of-area PoPs: international carriers land elsewhere.
      auto extra = sample(all_cities, 1 + rng.below(3), rng);
      footprint.insert(footprint.end(), extra.begin(), extra.end());
      const CityId home = footprint.front();
      intl_transits.push_back(g.add_as(AsKind::Transit, home, std::move(footprint), true));
    }
    // Providers: 1-2 tier-1s each; some also buy from an earlier intl transit,
    // which creates the customer cones behind the paper's Fig. 1 pathology.
    for (std::size_t i = 0; i < intl_transits.size(); ++i) {
      const Asn t = intl_transits[i];
      const AsNode& tn = *g.find(t);
      const std::size_t n_up = 1 + rng.below(2);
      auto ups = sample(tier1s, n_up, rng);
      for (Asn up : ups) {
        g.add_transit(t, up, interconnect_cities(tn, *g.find(up), rng, true));
      }
      if (i > 0 && rng.chance(params.intl_transit_customer_prob)) {
        const Asn up = intl_transits[rng.below(i)];
        g.add_transit(t, up, interconnect_cities(tn, *g.find(up), rng, true));
      }
    }
  }

  // ---- National transits -------------------------------------------------
  std::vector<Asn> national_transits;
  {
    for (std::size_t ci = 0; ci < gaz.countries().size(); ++ci) {
      const auto iso2 = gaz.countries()[ci].iso2;
      auto country_cities = gaz.cities_in_country(iso2);
      if (country_cities.empty()) continue;
      const int n_transits = std::min<int>(
          params.max_national_transits_per_country,
          1 + static_cast<int>(country_cities.size() / 4));
      for (int t = 0; t < n_transits; ++t) {
        auto footprint = country_cities;  // national carriers cover the country
        const CityId home = footprint[rng.below(footprint.size())];
        const Asn asn = g.add_as(AsKind::Transit, home, std::move(footprint), false);
        national_transits.push_back(asn);
        // Upstreams: a tier-1, or an international transit with presence in
        // the country (buying from a carrier with no local footprint would
        // route the whole country through another continent).
        const AsNode& node = *g.find(asn);
        std::vector<Asn> local_intl;
        for (Asn it_asn : intl_transits) {
          const AsNode& cand = *g.find(it_asn);
          const bool shares = std::any_of(node.footprint.begin(), node.footprint.end(),
                                          [&](CityId c) { return cand.present_in(c); });
          if (shares) local_intl.push_back(it_asn);
        }
        const std::size_t n_up = 1 + rng.below(2);
        for (std::size_t u = 0; u < n_up; ++u) {
          const bool use_tier1 = local_intl.empty() || rng.chance(0.5);
          const auto& pool = use_tier1 ? tier1s : local_intl;
          const Asn up = pool[rng.below(pool.size())];
          g.add_transit(asn, up, interconnect_cities(node, *g.find(up), rng, true));
        }
      }
    }
  }

  // ---- Transit presence index ---------------------------------------------
  for (const AsNode& node : g.nodes()) {
    if (node.kind == AsKind::Stub) continue;
    for (CityId c : node.footprint) world.transits_by_city[c].push_back(node.asn);
  }

  // ---- IXPs ----------------------------------------------------------------
  {
    int created = 0;
    for (const char* iata : kIxpCities) {
      if (created >= params.ixp_count) break;
      const auto city = gaz.find_by_iata(iata);
      if (!city) continue;
      Ixp ixp;
      ixp.name = std::string("IX-") + iata;
      ixp.city = *city;
      for (Asn member : world.transits_at(*city)) {
        const AsNode& node = *g.find(member);
        const double join_prob = node.kind == AsKind::Tier1 ? 0.45 : 0.90;
        if (rng.chance(join_prob)) ixp.members.push_back(member);
      }
      if (ixp.members.size() < 3) continue;
      // Mesh the members: bilateral (public) or route-server sessions.
      for (std::size_t i = 0; i < ixp.members.size(); ++i) {
        for (std::size_t j = i + 1; j < ixp.members.size(); ++j) {
          if (!rng.chance(params.ixp_mesh_prob)) continue;
          const bool bilateral = rng.chance(params.ixp_bilateral_prob);
          g.add_peering(ixp.members[i], ixp.members[j], !bilateral, {*city});
        }
      }
      world.ixp_by_city[*city] = g.add_ixp(std::move(ixp));
      ++created;
    }
  }

  // ---- Stub / eyeball ASes --------------------------------------------------
  {
    // Population weights per area reflect where RIPE Atlas probes are; stub
    // density follows the same skew so <city,AS> group counts line up.
    auto area_weight = [](Area a) {
      switch (a) {
        case Area::EMEA:
          return 0.52;
        case Area::NA:
          return 0.22;
        case Area::LatAm:
          return 0.08;
        case Area::APAC:
          return 0.18;
      }
      return 0.0;
    };
    std::vector<double> weights;
    weights.reserve(n_cities);
    for (std::size_t i = 0; i < n_cities; ++i) {
      weights.push_back(area_weight(gaz.area_of_city(city_id(i))));
    }

    for (int s = 0; s < params.stub_count; ++s) {
      const CityId home = city_id(rng.weighted_index(weights));
      const bool multinational = rng.chance(params.stub_foreign_registration_prob);
      const Asn asn = g.add_as(AsKind::Stub, home, {home}, multinational);
      AsNode& node = *g.find(asn);
      if (multinational) {
        // Registered at a random foreign headquarters; hosts remain local.
        node.registered_city = city_id(rng.below(n_cities));
      }
      world.stubs_by_city[home].push_back(asn);

      // Pick providers among transits covering the home city (this includes
      // international carriers with a local PoP — buying from a carrier with
      // no local presence would backhaul the stub through another region).
      const auto& local = world.transits_at(home);
      const geo::Area home_area = gaz.area_of_city(home);
      auto pick_provider = [&]() -> Asn {
        if (!local.empty()) return local[rng.below(local.size())];
        // City with no coverage at all: nearest-anchored international.
        for (Asn cand : intl_transits) {
          if (gaz.area_of_city(g.find(cand)->home_city) == home_area) return cand;
        }
        return intl_transits[rng.below(intl_transits.size())];
      };
      // Providers backhaul their paying customers: the interconnection is at
      // the stub's own city.
      const Asn p1 = pick_provider();
      g.add_transit(asn, p1, {home});
      if (rng.chance(params.stub_second_provider_prob)) {
        const Asn p2 = pick_provider();
        if (p2 != p1) g.add_transit(asn, p2, {home});
      }
      // A few stubs join their local IXP (route server only: enterprises
      // rarely run bilateral sessions).
      if (const auto it = world.ixp_by_city.find(home);
          it != world.ixp_by_city.end() && rng.chance(params.stub_ixp_join_prob)) {
        const auto& ixp = g.ixps()[it->second];
        // Peer with a handful of members via the route server.
        const auto partners = sample(ixp.members, std::min<std::size_t>(4, ixp.members.size()),
                                     rng);
        for (Asn partner : partners) g.add_peering(asn, partner, true, {home});
      }
    }
  }

  return world;
}

}  // namespace ranycast::topo
