// Randomized synthetic-Internet generator.
//
// Produces an AS graph with the structural features that cause the paper's
// catchment-inefficiency pathologies:
//  * a clique of continent-spanning tier-1 carriers (long intra-AS hauls),
//  * international transit providers that are *customers* of other transits
//    (Fig. 1's SingTel-under-Zayo pattern),
//  * IXPs whose members peer bilaterally or via route servers (Fig. 7's
//    public-peer-vs-route-server pattern),
//  * thousands of stub/eyeball ASes where measurement probes live.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ranycast/core/rng.hpp"
#include "ranycast/geo/gazetteer.hpp"
#include "ranycast/topo/graph.hpp"

namespace ranycast::topo {

struct GeneratorParams {
  std::uint64_t seed{42};

  int tier1_count{24};
  /// Fraction of the gazetteer each tier-1 carrier has presence in.
  double tier1_city_coverage{0.40};

  int international_transits{44};
  /// Probability an international transit buys transit from another
  /// international transit (in addition to tier-1s).
  double intl_transit_customer_prob{0.40};

  /// National transits are created per country, scaled by city count.
  int max_national_transits_per_country{3};

  int stub_count{2600};
  double stub_second_provider_prob{0.35};
  /// Fraction of stubs that are multinational organizations whose address
  /// space is registered in another country (their probes mis-geolocate
  /// consistently, the paper's "international transit" effect).
  double stub_foreign_registration_prob{0.025};
  double stub_intl_provider_prob{0.15};
  double stub_ixp_join_prob{0.06};

  int ixp_count{18};
  /// Probability two co-located IXP members establish a session at all.
  double ixp_mesh_prob{0.65};
  /// Of established IXP sessions, the fraction that are bilateral (public)
  /// rather than via the route server.
  double ixp_bilateral_prob{0.45};
};

/// A generated world: the graph plus by-city indices used by downstream
/// modules (probe placement, CDN site attachment).
struct World {
  Graph graph;
  GeneratorParams params;

  std::unordered_map<CityId, std::vector<Asn>> transits_by_city;  // transit+tier1 presence
  std::unordered_map<CityId, std::vector<Asn>> stubs_by_city;
  std::unordered_map<CityId, std::size_t> ixp_by_city;  // index into graph.ixps()

  /// All transit-capable ASes (transit or tier-1) with presence at `c`.
  const std::vector<Asn>& transits_at(CityId c) const;
  const std::vector<Asn>& stubs_at(CityId c) const;
};

World generate_world(const GeneratorParams& params);

}  // namespace ranycast::topo
