// Deterministic synthetic IPv4 address plan.
//
// Every AS gets a /18 block; router interfaces and probe hosts are carved out
// of the owner's block at fixed offsets, so the registry can answer the
// reverse question ("who owns this address, and where is that interface?")
// exactly — the ground truth against which the error-injected geolocation
// databases (dns::GeoDatabase) are measured.
#pragma once

#include <optional>
#include <unordered_map>

#include "ranycast/core/ipv4.hpp"
#include "ranycast/core/types.hpp"

namespace ranycast::topo {

struct IpOwner {
  Asn asn{kInvalidAsn};
  CityId city{kInvalidCity};  ///< city of the interface, if a router IP
  bool is_router{false};
};

class IpRegistry {
 public:
  /// Allocate (or return the existing) /18 block for an AS.
  Prefix as_block(Asn a);

  /// Deterministic router interface address for an AS at a city.
  Ipv4Addr router_ip(Asn a, CityId city);

  /// Read-only router_ip: the address the mutating overload would return,
  /// or nullopt when the AS has no block yet. Never allocates or records
  /// anything, so concurrent callers are safe once the registry has been
  /// warmed (see Lab::traceroute_all's serial prepass).
  std::optional<Ipv4Addr> router_ip_if_known(Asn a, CityId city) const;

  /// Deterministic host address for the i-th probe homed in an AS. The host's
  /// true city is recorded so that geolocation oracles can corrupt it.
  Ipv4Addr probe_ip(Asn a, std::uint32_t host_index, CityId city = kInvalidCity);

  /// Exact reverse lookup. Returns nullopt for unallocated space.
  std::optional<IpOwner> owner(Ipv4Addr ip) const;

  /// Allocate an address block outside any AS block (e.g. anycast prefixes).
  Prefix allocate_special(int prefix_len);

 private:
  static constexpr std::uint32_t kAsSpaceBase = 0x10000000;  // 16.0.0.0
  static constexpr int kAsBlockLen = 18;
  static constexpr std::uint32_t kAsBlockSize = 1u << (32 - kAsBlockLen);
  // Router interfaces live in the first 4096 addresses of a block, keyed by
  // city id; probe hosts start right after.
  static constexpr std::uint32_t kRouterRegionSize = 4096;
  static constexpr std::uint32_t kSpecialBase = 0xC0000000;  // 192.0.0.0

  std::unordered_map<Asn, std::uint32_t> block_index_;  // ASN -> block ordinal
  std::vector<Asn> block_owner_;                        // ordinal -> ASN
  std::unordered_map<Ipv4Addr, IpOwner> interface_owners_;
  std::uint32_t next_special_{kSpecialBase};
};

}  // namespace ranycast::topo
