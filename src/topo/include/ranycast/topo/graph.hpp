// AS-level Internet topology: nodes, typed business relationships, and
// geographically pinned interconnections.
//
// Every adjacency carries the city where the two networks interconnect.
// Data-path latency is computed from the sequence of interconnection cities a
// route traverses, which is what lets Gao-Rexford policy decisions produce
// the geographic detours ("catchment inefficiency") the paper studies.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "ranycast/core/types.hpp"

namespace ranycast::topo {

enum class AsKind : std::uint8_t {
  Tier1,    ///< global transit-free carrier; peers with all other tier-1s
  Transit,  ///< regional/national transit provider
  Stub,     ///< eyeball/enterprise edge network (where probes live)
};

/// Relationship of a neighbor *from the owning node's perspective*.
enum class Rel : std::uint8_t {
  Customer,         ///< neighbor pays us for transit
  Provider,         ///< we pay the neighbor for transit
  PeerPublic,       ///< settlement-free bilateral/public peering
  PeerRouteServer,  ///< multilateral peering via an IXP route server
};

std::string_view to_string(Rel r) noexcept;
std::string_view to_string(AsKind k) noexcept;

constexpr bool is_peer(Rel r) noexcept {
  return r == Rel::PeerPublic || r == Rel::PeerRouteServer;
}

/// Reverse a relationship to the other side's perspective.
constexpr Rel reverse(Rel r) noexcept {
  switch (r) {
    case Rel::Customer:
      return Rel::Provider;
    case Rel::Provider:
      return Rel::Customer;
    default:
      return r;  // peerings are symmetric
  }
}

struct Edge {
  Asn neighbor{kInvalidAsn};
  Rel rel{Rel::PeerPublic};
  /// Administrative/operational state. A downed adjacency stays in the graph
  /// (so it can be restored cheaply by the fault-injection engine) but the
  /// routing engine ignores it.
  bool up{true};
  /// Interconnection points. Wide-footprint networks interconnect in many
  /// cities; the routing engine picks the one nearest a route's ingress
  /// (nearest-exit), which keeps intra-AS geography realistic.
  std::vector<CityId> cities;
};

struct AsNode {
  Asn asn{kInvalidAsn};
  AsKind kind{AsKind::Stub};
  CityId home_city{kInvalidCity};  ///< operational headquarters city
  /// Where the AS's address space is *registered* (WHOIS country). For
  /// multinational organizations this differs from where hosts actually
  /// are, which is what misleads geolocation databases (paper §4.3).
  CityId registered_city{kInvalidCity};
  bool international{false};  ///< spans several countries (drives geo-DB "home country" bias)
  std::vector<CityId> footprint;  ///< cities where the AS has presence
  std::vector<Edge> edges;

  bool present_in(CityId c) const noexcept;
};

/// An Internet Exchange Point: a city plus a member list. Members may peer
/// bilaterally (public peering) or via the route server; the generator
/// records which so the BGP engine can apply the paper's §5.4 preference.
struct Ixp {
  std::string name;
  CityId city{kInvalidCity};
  std::vector<Asn> members;
};

class Graph {
 public:
  /// Add an AS; ASNs are assigned sequentially from 1 unless specified.
  Asn add_as(AsKind kind, CityId home, std::vector<CityId> footprint, bool international = false);

  /// Customer-provider link with one or more interconnection cities.
  /// Returns false if either AS is unknown or the link already exists.
  bool add_transit(Asn customer, Asn provider, std::vector<CityId> cities);

  /// Settlement-free peering with one or more interconnection cities.
  bool add_peering(Asn a, Asn b, bool via_route_server, std::vector<CityId> cities);

  std::size_t add_ixp(Ixp ixp);

  const AsNode* find(Asn a) const noexcept;
  AsNode* find(Asn a) noexcept;

  /// Dense index of an ASN (nodes are stored contiguously).
  std::optional<std::size_t> index_of(Asn a) const noexcept;

  std::span<const AsNode> nodes() const noexcept { return nodes_; }
  std::span<const Ixp> ixps() const noexcept { return ixps_; }

  bool has_edge(Asn a, Asn b) const noexcept;

  std::size_t edge_count() const noexcept { return edge_count_; }

  // --- fault-injection operations (chaos engine) ---
  //
  // Mutation is exposed as an operation so failure scenarios re-solve over
  // the same graph instead of rebuilding the world from scratch.

  /// Set the operational state of the a<->b adjacency (both directions).
  /// Returns false if either AS or the adjacency is unknown.
  bool set_link_state(Asn a, Asn b, bool up) noexcept;

  /// Whether the a<->b adjacency exists and is up.
  bool link_is_up(Asn a, Asn b) const noexcept;

  /// Take the IXP's route server down (or back up): toggles every
  /// route-server peering between two members that runs over the IXP's
  /// city. Bilateral (public) peerings at the same IXP are unaffected.
  /// Returns the number of adjacencies whose state changed.
  std::size_t set_route_server_state(std::size_t ixp_index, bool up) noexcept;

  /// The member pairs whose adjacency set_route_server_state toggles (same
  /// filter, independent of current edge state), each pair once with a < b.
  /// Used to turn a route-server fault into a link delta for incremental
  /// re-solving.
  std::vector<std::pair<Asn, Asn>> route_server_peerings(std::size_t ixp_index) const;

 private:
  std::vector<AsNode> nodes_;
  std::vector<Ixp> ixps_;
  std::unordered_map<Asn, std::size_t> index_;
  std::uint32_t next_asn_{1};
  std::size_t edge_count_{0};
};

}  // namespace ranycast::topo
