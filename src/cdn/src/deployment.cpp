#include "ranycast/cdn/deployment.hpp"

#include <algorithm>

namespace ranycast::cdn {

bool Site::announces(std::size_t region) const noexcept {
  return std::find(regions.begin(), regions.end(), region) != regions.end();
}

std::size_t Deployment::add_region(Region r) {
  regions_.push_back(std::move(r));
  return regions_.size() - 1;
}

SiteId Deployment::add_site(Site s) {
  s.id = SiteId{static_cast<std::uint16_t>(sites_.size())};
  sites_.push_back(std::move(s));
  return sites_.back().id;
}

void Deployment::set_country_region(std::string iso2, std::size_t region) {
  country_region_[std::move(iso2)] = region;
}

void Deployment::set_area_region(geo::Area a, std::size_t region) {
  area_default_[static_cast<int>(a)] = region;
}

std::vector<std::size_t> Deployment::withdraw_site(SiteId site) {
  Site& s = sites_[value(site)];
  std::vector<std::size_t> previous = std::move(s.regions);
  s.regions.clear();
  return previous;
}

void Deployment::restore_site(SiteId site, std::vector<std::size_t> regions) {
  sites_[value(site)].regions = std::move(regions);
}

std::vector<SiteId> Deployment::withdraw_region(std::size_t region) {
  std::vector<SiteId> announcing;
  for (Site& s : sites_) {
    const auto it = std::find(s.regions.begin(), s.regions.end(), region);
    if (it == s.regions.end()) continue;
    s.regions.erase(it);
    announcing.push_back(s.id);
  }
  return announcing;
}

void Deployment::restore_region(std::size_t region, const std::vector<SiteId>& sites) {
  for (const SiteId id : sites) {
    Site& s = sites_[value(id)];
    if (!s.announces(region)) s.regions.push_back(region);
  }
}

bool Deployment::set_attachment_state(SiteId site, std::size_t attachment, bool up) {
  if (value(site) >= sites_.size()) return false;
  Site& s = sites_[value(site)];
  if (attachment >= s.attachments.size()) return false;
  s.attachments[attachment].up = up;
  return true;
}

std::optional<std::size_t> Deployment::region_for_country(std::string_view iso2) const {
  if (const auto it = country_region_.find(std::string(iso2)); it != country_region_.end()) {
    return it->second;
  }
  return std::nullopt;
}

std::size_t Deployment::map_client(Ipv4Addr effective, const dns::GeoDatabase& db) const {
  if (is_global()) return 0;
  const auto country = db.country(effective);
  if (!country) return 0;
  if (const auto r = region_for_country(*country)) return *r;
  const auto& gaz = geo::Gazetteer::world();
  const auto idx = gaz.find_country(*country);
  if (!idx) return 0;
  return region_for_area(geo::area_of(gaz.countries()[*idx].continent));
}

std::size_t Deployment::intended_region(CityId true_city) const {
  if (is_global()) return 0;
  const auto& gaz = geo::Gazetteer::world();
  if (const auto r = region_for_country(gaz.country_code(true_city))) return *r;
  return region_for_area(gaz.area_of_city(true_city));
}

std::optional<std::size_t> Deployment::region_of_ip(Ipv4Addr a) const {
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    if (regions_[i].prefix.contains(a)) return i;
  }
  return std::nullopt;
}

std::vector<bgp::OriginAttachment> Deployment::origins_for_region(std::size_t region) const {
  std::vector<bgp::OriginAttachment> out;
  for (const Site& s : sites_) {
    if (!s.announces(region)) continue;
    for (const Attachment& a : s.attachments) {
      if (!a.up) continue;  // failed adjacency (chaos engine)
      out.push_back(bgp::OriginAttachment{s.id, s.city, a.neighbor, a.rel, s.onsite_router});
    }
  }
  return out;
}

std::array<std::size_t, geo::kAreaCount> Deployment::site_count_by_area() const {
  std::array<std::size_t, geo::kAreaCount> out{0, 0, 0, 0};
  const auto& gaz = geo::Gazetteer::world();
  for (const Site& s : sites_) {
    out[static_cast<int>(gaz.area_of_city(s.city))]++;
  }
  return out;
}

}  // namespace ranycast::cdn
