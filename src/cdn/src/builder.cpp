#include "ranycast/cdn/builder.hpp"

#include <algorithm>

#include "ranycast/core/rng.hpp"

namespace ranycast::cdn {

namespace {

/// Deterministic attachment derivation for one site city. Keyed by the
/// operator-wide seed and the city only, so every deployment of the same
/// operator gets identical connectivity at shared cities.
std::vector<Attachment> derive_attachments(const DeploymentSpec& spec, const topo::World& world,
                                           CityId city) {
  Rng rng{hash_combine(spec.attachment_seed, value(city))};
  const auto& gaz = geo::Gazetteer::world();
  std::vector<Attachment> out;

  // Upstream transit providers present at the city, as a mix of two kinds:
  //  * the operator's *preferred carriers* — a global, operator-wide ranking
  //    (real CDNs buy from the same few global carriers at many sites, which
  //    gives those carriers customer routes from several sites and lets BGP
  //    pick the nearest);
  //  * city-local diversity (spot deals with regional carriers) — these are
  //    one-off attachments whose customer routes exist at a single site, the
  //    raw material of Fig. 1-style remote-catchment pathologies.
  auto local = world.transits_at(city);
  // Preferred ranking: operator-global hash over ASNs, same at every city.
  std::vector<Asn> preferred = local;
  std::sort(preferred.begin(), preferred.end(), [&](Asn a, Asn b) {
    return mix64(hash_combine(spec.attachment_seed, value(a))) <
           mix64(hash_combine(spec.attachment_seed, value(b)));
  });
  for (std::size_t i = 0; i + 1 < local.size(); ++i) {
    std::swap(local[i], local[i + rng.below(local.size() - i)]);
  }
  // Mildly favour locally anchored carriers for the diversity picks.
  const geo::Area site_area = gaz.area_of_city(city);
  std::stable_partition(local.begin(), local.end(), [&](Asn a) {
    const topo::AsNode* node = world.graph.find(a);
    return node != nullptr && (node->kind == topo::AsKind::Tier1 ||
                               gaz.area_of_city(node->home_city) == site_area);
  });
  const int n_providers =
      spec.min_providers + static_cast<int>(rng.below(
                               static_cast<std::uint64_t>(spec.max_providers - spec.min_providers + 1)));
  auto add_provider = [&](Asn a) {
    const bool already = std::any_of(out.begin(), out.end(),
                                     [a](const Attachment& at) { return at.neighbor == a; });
    if (!already) out.push_back(Attachment{a, topo::Rel::Customer});
  };
  const int n_preferred = std::min<int>(spec.preferred_carriers, n_providers);
  for (int i = 0; i < n_preferred && i < static_cast<int>(preferred.size()); ++i) {
    add_provider(preferred[i]);
  }
  for (std::size_t i = 0; i < local.size() && static_cast<int>(out.size()) < n_providers;
       ++i) {
    add_provider(local[i]);
  }

  // IXP peers if the city hosts an exchange.
  if (const auto it = world.ixp_by_city.find(city); it != world.ixp_by_city.end()) {
    const auto& ixp = world.graph.ixps()[it->second];
    auto members = ixp.members;
    for (std::size_t i = 0; i + 1 < members.size(); ++i) {
      std::swap(members[i], members[i + rng.below(members.size() - i)]);
    }
    int added = 0;
    for (Asn m : members) {
      if (added >= spec.max_ixp_peers) break;
      const bool already = std::any_of(out.begin(), out.end(),
                                       [m](const Attachment& a) { return a.neighbor == m; });
      if (already) continue;
      const topo::Rel rel = rng.chance(spec.peer_bilateral_prob) ? topo::Rel::PeerPublic
                                                                 : topo::Rel::PeerRouteServer;
      out.push_back(Attachment{m, rel});
      ++added;
    }
  }
  return out;
}

}  // namespace

Deployment build_deployment(const DeploymentSpec& spec, const topo::World& world,
                            topo::IpRegistry& registry) {
  const auto& gaz = geo::Gazetteer::world();
  Deployment d{spec.name, spec.asn};

  for (const auto& rn : spec.region_names) {
    const Prefix p = registry.allocate_special(24);
    d.add_region(Region{rn, p, p.at(1)});
  }

  for (const SiteSpec& ss : spec.sites) {
    const auto city = gaz.find_by_iata(ss.iata);
    if (!city) continue;  // unknown IATA codes are caught by unit tests
    Site s;
    s.city = *city;
    // Operator-and-city keyed, so co-located sites of one operator agree.
    const std::uint64_t h = mix64(hash_combine(spec.attachment_seed, 0x0517E + value(*city)));
    const bool onsite = static_cast<double>(h >> 11) * 0x1.0p-53 < spec.onsite_router_prob;
    s.onsite_router = ss.onsite_router && onsite;
    s.regions = ss.regions;
    s.attachments = derive_attachments(spec, world, *city);
    d.add_site(std::move(s));
  }

  for (const auto& [iso2, region] : spec.country_overrides) {
    d.set_country_region(iso2, region);
  }
  for (std::size_t a = 0; a < geo::kAreaCount; ++a) {
    d.set_area_region(static_cast<geo::Area>(a), spec.area_defaults[a]);
  }
  return d;
}

}  // namespace ranycast::cdn
