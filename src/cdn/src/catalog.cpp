#include "ranycast/cdn/catalog.hpp"

namespace ranycast::cdn::catalog {

namespace {

std::vector<SiteSpec> sites_with_region(const std::vector<std::string>& iatas,
                                        std::size_t region) {
  std::vector<SiteSpec> out;
  out.reserve(iatas.size());
  for (const auto& iata : iatas) out.push_back(SiteSpec{iata, {region}});
  return out;
}

void append(std::vector<SiteSpec>& dst, std::vector<SiteSpec> src) {
  for (auto& s : src) dst.push_back(std::move(s));
}

}  // namespace

const std::vector<std::string>& edgio_published_sites() {
  static const std::vector<std::string> sites = {
      // APAC (19)
      "NRT", "KIX", "ICN", "HKG", "TPE", "SIN", "KUL", "BKK", "CGK", "MNL",
      "SGN", "BOM", "DEL", "MAA", "BLR", "SYD", "MEL", "BNE", "AKL",
      // EMEA (26)
      "LHR", "MAN", "AMS", "FRA", "MUC", "DUS", "CDG", "MRS", "MAD", "BCN",
      "LIS", "MXP", "FCO", "BRU", "ZRH", "VIE", "WAW", "PRG", "ARN", "OSL",
      "CPH", "HEL", "DUB", "ATH", "IST", "JNB",
      // NA (24)
      "JFK", "IAD", "BOS", "PHL", "ORD", "DTW", "MSP", "DFW", "IAH", "ATL",
      "MIA", "TPA", "DEN", "PHX", "LAX", "SJC", "SMF", "SEA", "PDX", "LAS",
      "YYZ", "YUL", "YVR", "YYC",
      // LatAm (10)
      "MEX", "GDL", "GRU", "GIG", "EZE", "SCL", "BOG", "LIM", "UIO", "PTY"};
  return sites;
}

const std::vector<std::string>& imperva_published_sites() {
  static const std::vector<std::string> sites = {
      // APAC (17)
      "NRT", "KIX", "ICN", "HKG", "TPE", "SIN", "KUL", "BKK", "CGK", "MNL",
      "BOM", "DEL", "MAA", "SYD", "MEL", "PER", "AKL",
      // EMEA (15)
      "LHR", "AMS", "FRA", "CDG", "MAD", "MXP", "WAW", "ARN", "CPH", "VIE",
      "IST", "TLV", "DXB", "JNB", "CAI",
      // NA (12)
      "IAD", "JFK", "ORD", "DFW", "LAX", "SJC", "SEA", "MIA", "ATL", "DEN",
      "YYZ", "YUL",
      // LatAm (6)
      "GRU", "GIG", "EZE", "SCL", "BOG", "MEX"};
  return sites;
}

const std::vector<std::string>& tangled_sites() {
  static const std::vector<std::string> sites = {
      "SYD", "SIN",                       // APAC (2)
      "AMS", "LHR", "CDG", "WAW", "JNB",  // EMEA (5)
      "IAD", "MIA", "SJC",                // NA (3)
      "GRU", "POA"};                      // LatAm (2)
  return sites;
}

DeploymentSpec edgio3() {
  using namespace edgio3_region;
  DeploymentSpec spec;
  spec.name = "Edgio-3";
  spec.asn = make_asn(kEdgioAsn);
  spec.attachment_seed = kEdgioSeed;
  spec.region_names = {"Americas", "EMEA", "APAC"};
  // Serving subset of the published sites for Edgio-3 customers (43 sites).
  append(spec.sites, sites_with_region({"NRT", "KIX", "ICN", "HKG", "TPE", "SIN", "KUL", "BKK",
                                        "CGK", "MNL", "BOM", "DEL", "SYD", "MEL"},
                                       kApac));
  append(spec.sites, sites_with_region({"LHR", "AMS", "FRA", "CDG", "MAD", "MXP", "BRU", "ZRH",
                                        "VIE", "WAW", "ARN", "CPH", "DUB", "IST", "JNB"},
                                       kEmea));
  append(spec.sites, sites_with_region({"JFK", "IAD", "ORD", "DFW", "ATL", "MIA", "DEN", "LAX",
                                        "SJC", "SEA", "YYZ", "YUL", "YVR"},
                                       kAmericas));
  // The single LatAm site also announces the Americas prefix.
  append(spec.sites, sites_with_region({"MEX"}, kAmericas));
  // Client mapping: the whole Americas (NA and LatAm) share one regional IP.
  spec.area_defaults = {kEmea, kAmericas, kAmericas, kApac};  // EMEA, NA, LatAm, APAC
  return spec;
}

DeploymentSpec edgio4() {
  using namespace edgio4_region;
  DeploymentSpec spec;
  spec.name = "Edgio-4";
  spec.asn = make_asn(kEdgioAsn);
  spec.attachment_seed = kEdgioSeed;
  spec.region_names = {"NA", "SA", "EMEA", "APAC"};
  append(spec.sites, sites_with_region({"NRT", "KIX", "ICN", "HKG", "TPE", "SIN", "KUL", "BKK",
                                        "CGK", "MNL", "BOM", "DEL", "MAA", "SYD", "MEL"},
                                       kApac));
  append(spec.sites, sites_with_region({"LHR", "AMS", "FRA", "CDG", "MAD", "MXP", "BRU", "ZRH",
                                        "VIE", "WAW", "ARN", "CPH", "DUB", "IST", "JNB", "OSL"},
                                       kEmea));
  append(spec.sites, sites_with_region({"JFK", "IAD", "ORD", "DFW", "ATL", "LAX", "SJC", "SEA",
                                        "YYZ", "YUL", "YVR"},
                                       kNa));
  // Florida: the paper's mixed site serving both NA and SA clients.
  spec.sites.push_back(SiteSpec{"MIA", {kNa, kSa}});
  append(spec.sites, sites_with_region({"GRU", "EZE", "SCL", "BOG"}, kSa));
  spec.area_defaults = {kEmea, kNa, kSa, kApac};
  return spec;
}

DeploymentSpec edgio_ns() {
  DeploymentSpec spec;
  spec.name = "Edgio-NS";
  spec.asn = make_asn(kEdgioAsn);
  spec.attachment_seed = kEdgioDnsSeed;  // separate network configuration
  spec.max_ixp_peers = 5;
  spec.region_names = {"global"};
  // 31 sites shared with both Edgio-3 and Edgio-4 ...
  for (const char* iata :
       {"NRT", "KIX", "ICN", "HKG", "TPE", "SIN", "KUL", "BKK", "CGK", "MNL",
        "BOM", "DEL", "SYD", "MEL",                                       // APAC
        "LHR", "AMS", "FRA", "CDG", "MAD", "MXP", "BRU", "ZRH", "VIE", "WAW",
        "ARN", "CPH", "DUB", "IST", "JNB",                                // EMEA
        "JFK", "IAD"}) {                                                  // NA
    spec.sites.push_back(SiteSpec{iata, {0}});
  }
  // ... 2 shared only with Edgio-3 (33 total), 6 only with Edgio-4 (37) ...
  for (const char* iata : {"MEX", "DEN", "MAA", "OSL", "GRU", "EZE", "SCL", "BOG"}) {
    spec.sites.push_back(SiteSpec{iata, {0}});
  }
  // ... and DNS-only locations from the published footprint.
  for (const char* iata : {"MAN", "MUC", "BCN", "LIS", "PRG", "HEL", "BOS", "MSP",
                           "PHX", "PDX", "YYC", "GIG", "LIM"}) {
    spec.sites.push_back(SiteSpec{iata, {0}});
  }
  spec.area_defaults = {0, 0, 0, 0};
  return spec;
}

DeploymentSpec imperva6() {
  using namespace imperva6_region;
  DeploymentSpec spec;
  spec.name = "Imperva-6";
  spec.asn = make_asn(kImpervaAsn);
  spec.attachment_seed = kImpervaSeed;
  spec.region_names = {"CA", "US", "LatAm", "EMEA", "APAC", "RU"};
  // APAC (16 of the 17 published sites; PER is not part of the CDN network).
  append(spec.sites, sites_with_region({"NRT", "KIX", "ICN", "HKG", "TPE", "SIN", "KUL", "BKK",
                                        "CGK", "MNL", "BOM", "DEL", "MAA", "SYD", "MEL", "AKL"},
                                       kApac));
  // EMEA: AMS/FRA/LHR also announce the Russian prefix (no sites in Russia).
  spec.sites.push_back(SiteSpec{"AMS", {kEmea, kRu}});
  spec.sites.push_back(SiteSpec{"FRA", {kEmea, kRu}});
  spec.sites.push_back(SiteSpec{"LHR", {kEmea, kRu}});
  append(spec.sites, sites_with_region({"CDG", "MAD", "MXP", "WAW", "ARN", "CPH", "VIE", "IST",
                                        "TLV", "DXB", "JNB", "CAI"},
                                       kEmea));
  // US sites; SJC cross-announces the APAC prefix (paper §5.2's example of a
  // Californian site serving APAC clients).
  spec.sites.push_back(SiteSpec{"SJC", {kUs, kApac}});
  append(spec.sites, sites_with_region({"IAD", "JFK", "ORD", "DFW", "LAX", "SEA", "MIA", "ATL",
                                        "DEN"},
                                       kUs));
  append(spec.sites, sites_with_region({"YYZ", "YUL"}, kCa));
  // LatAm (5 of the 6 published; MEX is not part of the CDN network).
  append(spec.sites, sites_with_region({"GRU", "GIG", "EZE", "SCL", "BOG"}, kLatAm));
  spec.country_overrides = {{"CA", kCa}, {"US", kUs}, {"RU", kRu}};
  spec.area_defaults = {kEmea, kUs, kLatAm, kApac};
  return spec;
}

DeploymentSpec imperva_ns() {
  DeploymentSpec spec;
  spec.name = "Imperva-NS";
  spec.asn = make_asn(kImpervaAsn);
  spec.attachment_seed = kImpervaSeed;
  // The authoritative-DNS network announces one global prefix from the 48
  // CDN sites plus PER (49 total). It also has a slightly larger peer set
  // at IXP cities, which the §5.3 comparison filters away.
  spec.max_ixp_peers = 5;
  spec.region_names = {"global"};
  for (const auto& iata : imperva_published_sites()) {
    if (iata == "MEX") continue;  // published but not deployed for DNS either
    spec.sites.push_back(SiteSpec{iata, {0}});
  }
  spec.area_defaults = {0, 0, 0, 0};
  return spec;
}

namespace {

HostnameSet make_set(std::string name, std::string representative, const char* stem) {
  HostnameSet set;
  set.set_name = std::move(name);
  set.hostnames.push_back(std::move(representative));
  for (int i = 1; i <= 12; ++i) {
    set.hostnames.push_back(std::string(stem) + (i < 10 ? "0" : "") + std::to_string(i) +
                            ".example.com");
  }
  return set;
}

}  // namespace

HostnameSet edgio3_hostnames() {
  return make_set("Edgio-3", "www.straitstimes.com", "eg3-customer-");
}

HostnameSet edgio4_hostnames() {
  return make_set("Edgio-4", "www.asus.com", "eg4-customer-");
}

HostnameSet imperva6_hostnames() {
  return make_set("Imperva-6", "www.stamps.com", "im6-customer-");
}

}  // namespace ranycast::cdn::catalog
