#include "ranycast/cdn/survey.hpp"

#include <array>

namespace ranycast::cdn::survey {

std::string_view to_string(Redirection r) noexcept {
  switch (r) {
    case Redirection::GlobalAnycast:
      return "Global Anycast";
    case Redirection::Dns:
      return "DNS";
    case Redirection::DnsAndGlobalAnycast:
      return "DNS & Global Anycast";
    case Redirection::RegionalAnycast:
      return "Regional Anycast";
  }
  return "?";
}

namespace {

// Paper Table 5 (Appendix A): top CDNs and the redirection method their
// technical documents describe. Website shares are approximate and sum to
// the paper's 65.7% top-15 coverage of Tranco's top-10k.
constexpr std::array<CdnInfo, 15> kTopCdns = {{
    {"Cloudflare", Redirection::GlobalAnycast, 0.235},
    {"Amazon CloudFront", Redirection::Dns, 0.112},
    {"Akamai", Redirection::Dns, 0.094},
    {"Fastly", Redirection::DnsAndGlobalAnycast, 0.061},
    {"Google Cloud CDN", Redirection::GlobalAnycast, 0.048},
    {"Microsoft Azure", Redirection::GlobalAnycast, 0.026},
    {"StackPath", Redirection::GlobalAnycast, 0.019},
    {"Edgio (EdgeCast)", Redirection::RegionalAnycast, 0.0209},
    {"bunny.net", Redirection::Dns, 0.014},
    {"Alibaba Cloud", Redirection::Dns, 0.012},
    {"Imperva (Incapsula)", Redirection::RegionalAnycast, 0.0089},
    {"ChinaNetCenter/Wangsu", Redirection::Dns, 0.008},
    {"CDN77", Redirection::Dns, 0.006},
    {"Tencent Cloud", Redirection::Dns, 0.006},
    {"Vercel", Redirection::Dns, 0.005},
}};

}  // namespace

std::span<const CdnInfo> top_cdns() { return kTopCdns; }

std::size_t regional_anycast_count() {
  std::size_t n = 0;
  for (const auto& c : kTopCdns) {
    if (c.method == Redirection::RegionalAnycast) ++n;
  }
  return n;
}

bool looks_regional(int distinct_ips, int published_site_count) {
  // More than one address (not a single global anycast VIP), but far fewer
  // than the provider's site count (not per-site DNS redirection).
  return distinct_ips > 1 && distinct_ips <= 8 && distinct_ips < published_site_count / 2;
}

}  // namespace ranycast::cdn::survey
