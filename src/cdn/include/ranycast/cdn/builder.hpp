// Declarative deployment specification and the builder that realizes it
// against a generated world.
//
// The builder derives each site's attachments (providers, IXP peers) from a
// seed keyed by (attachment_seed, city) only, NOT by the deployment name.
// This is what makes two deployments of the same operator share identical
// connectivity at shared sites — the property the paper relies on when it
// uses Imperva's global-anycast DNS network as the comparable counterpart of
// its regional CDN (§5.3).
#pragma once

#include <string>
#include <vector>

#include "ranycast/cdn/deployment.hpp"
#include "ranycast/topo/generator.hpp"
#include "ranycast/topo/ip_registry.hpp"

namespace ranycast::cdn {

struct SiteSpec {
  std::string iata;                 ///< the site's city (by IATA code)
  std::vector<std::size_t> regions; ///< regional prefixes announced here
  bool onsite_router{true};
};

struct DeploymentSpec {
  std::string name;
  Asn asn{make_asn(64500)};
  std::vector<std::string> region_names;
  std::vector<SiteSpec> sites;
  /// Client mapping: country ISO2 → region index, applied before area defaults.
  std::vector<std::pair<std::string, std::size_t>> country_overrides;
  /// Area defaults indexed by geo::Area order (EMEA, NA, LatAm, APAC).
  std::array<std::size_t, geo::kAreaCount> area_defaults{0, 0, 0, 0};
  /// Seed for attachment derivation; deployments of the same operator share it.
  std::uint64_t attachment_seed{0xCD17};
  /// Number of upstream transit providers per site (min/max inclusive).
  /// Commercial CDN sites connect to many local carriers; thin attachment
  /// makes intra-region catchments hostage to AS-path-length accidents.
  int min_providers{3};
  int max_providers{5};
  /// Of those, how many come from the operator's global preferred-carrier
  /// ranking (the carriers bought at many sites); the rest are city-local
  /// spot deals.
  int preferred_carriers{2};
  /// Number of IXP peers per site when the city hosts an IXP.
  int max_ixp_peers{4};
  /// Extra bilateral-vs-route-server split for site peerings.
  double peer_bilateral_prob{0.55};
  /// Probability a site runs its own edge router (otherwise it connects to
  /// a remote IXP at the link layer and the p-hop belongs to the upstream,
  /// Appendix B). Derived deterministically per (operator, city).
  double onsite_router_prob{0.60};
};

/// Realize a spec: allocate regional prefixes, derive site attachments.
/// Sites whose IATA code is unknown are skipped (checked by tests).
Deployment build_deployment(const DeploymentSpec& spec, const topo::World& world,
                            topo::IpRegistry& registry);

}  // namespace ranycast::cdn
