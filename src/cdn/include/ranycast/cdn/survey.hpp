// CDN redirection survey (paper §4.1 / Appendix A, Table 5).
//
// The paper identifies regional-anycast CDNs by (a) ranking CDN providers by
// the number of Tranco top-10k hostnames they serve, and (b) classifying
// each provider's redirection method from its technical documentation. The
// documentation facts are reproduced here as a static dataset; the
// ECS-resolution heuristic from §4.2 (a hostname resolving to a small number
// of distinct addresses, more than one but far fewer than the provider's
// site count, indicates per-region anycast addresses) is implemented as a
// classifier usable on any resolution profile.
#pragma once

#include <span>
#include <string>
#include <string_view>

namespace ranycast::cdn::survey {

enum class Redirection {
  GlobalAnycast,
  Dns,
  DnsAndGlobalAnycast,
  RegionalAnycast,
};

std::string_view to_string(Redirection r) noexcept;

struct CdnInfo {
  std::string_view name;
  Redirection method;
  /// Share of Tranco top-10k websites served (as measured in April 2022).
  double website_share;
};

/// The top-15 CDN providers by hostname count, with their documented
/// redirection method (paper Table 5).
std::span<const CdnInfo> top_cdns();

/// Count how many of the top CDNs use regional anycast.
std::size_t regional_anycast_count();

/// §4.2 heuristic: a hostname whose worldwide ECS resolution yields
/// `distinct_ips` addresses looks like a regional-anycast customer when the
/// count is more than one but far below the provider's published site count.
bool looks_regional(int distinct_ips, int published_site_count);

}  // namespace ranycast::cdn::survey
