// Canned deployment specifications reproducing the networks the paper
// studies (site counts per area match Table 1):
//
//   network      APAC  EMEA  NA  LatAm  total
//   Edgio-3        14    15  13      1     43
//   Edgio-4        15    16  12      4     47
//   Edgio-Pub      19    26  24     10     79
//   Imperva-6      16    15  12      5     48
//   Imperva-NS     17    15  12      5     49
//   Imperva-Pub    17    15  12      6     50
//   Tangled         2     5   3      2     12
//
// Region layouts follow §4.3/§4.4: Edgio-3 collapses the Americas into one
// region; Edgio-4 splits NA and SA with a mixed site in Florida (Miami);
// Imperva-6 uses six regions (CA, US, LatAm, EMEA, APAC, RU) where the RU
// prefix is announced by three European sites (AMS/FRA/LHR) and one
// Californian site (SJC) cross-announces the APAC prefix.
#pragma once

#include <string>
#include <vector>

#include "ranycast/cdn/builder.hpp"

namespace ranycast::cdn::catalog {

// Operator-wide attachment seeds (shared across an operator's networks so
// that co-located sites have identical connectivity, §5.3).
inline constexpr std::uint64_t kEdgioSeed = 0xED610;
/// Edgio runs its authoritative DNS on a *separate* network with its own
/// configuration (§4.4) — hence a different attachment seed.
inline constexpr std::uint64_t kEdgioDnsSeed = 0xED61D;
inline constexpr std::uint64_t kImpervaSeed = 0x1A9E4A;
inline constexpr std::uint64_t kTangledSeed = 0x7A96;

inline constexpr std::uint32_t kEdgioAsn = 64600;
inline constexpr std::uint32_t kImpervaAsn = 64620;
inline constexpr std::uint32_t kTangledAsn = 64700;

// Region index conventions.
namespace edgio3_region {
inline constexpr std::size_t kAmericas = 0, kEmea = 1, kApac = 2;
}
namespace edgio4_region {
inline constexpr std::size_t kNa = 0, kSa = 1, kEmea = 2, kApac = 3;
}
namespace imperva6_region {
inline constexpr std::size_t kCa = 0, kUs = 1, kLatAm = 2, kEmea = 3, kApac = 4, kRu = 5;
}

DeploymentSpec edgio3();
DeploymentSpec edgio4();
DeploymentSpec imperva6();
DeploymentSpec imperva_ns();

/// Edgio's global-anycast authoritative-DNS network. Unlike Imperva's, it
/// overlaps the CDN only partially — 33 of Edgio-3's 43 sites and 37 of
/// Edgio-4's 47 — and uses distinct network configurations, which is why
/// the paper excludes Edgio from the §5.3 regional-vs-global comparison.
DeploymentSpec edgio_ns();

/// Published PoP city lists (the operators' websites; ground truth for the
/// site-enumeration experiments, Table 1's *-Pub columns).
const std::vector<std::string>& edgio_published_sites();
const std::vector<std::string>& imperva_published_sites();

/// The Tangled testbed's 12 site cities (Table 1's Tangled column).
const std::vector<std::string>& tangled_sites();

/// A customer hostname set served by one deployment configuration (§4.2's
/// Edgio-3 / Edgio-4 / Imperva-6 sets). The representative hostname comes
/// first; the rest are used for the Appendix C generalization check.
struct HostnameSet {
  std::string set_name;
  std::vector<std::string> hostnames;

  const std::string& representative() const { return hostnames.front(); }
};

HostnameSet edgio3_hostnames();
HostnameSet edgio4_hostnames();
HostnameSet imperva6_hostnames();

}  // namespace ranycast::cdn::catalog
