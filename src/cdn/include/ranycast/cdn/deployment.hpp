// Anycast CDN deployment model.
//
// A Deployment owns a set of sites, a set of regions (one anycast prefix
// each; a single region models global anycast), the site→region announcement
// matrix (a site announcing several regional prefixes is the paper's
// "cross-region announcement"), and the client→region DNS mapping policy
// (country overrides on top of per-area defaults).
#pragma once

#include <array>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "ranycast/bgp/route.hpp"
#include "ranycast/core/ipv4.hpp"
#include "ranycast/core/types.hpp"
#include "ranycast/dns/geo_database.hpp"
#include "ranycast/geo/gazetteer.hpp"
#include "ranycast/topo/graph.hpp"

namespace ranycast::cdn {

/// How a site connects to the surrounding Internet at its city.
struct Attachment {
  Asn neighbor{kInvalidAsn};
  /// Relationship from the neighbor's perspective (Customer = the CDN buys
  /// transit from this neighbor).
  topo::Rel rel{topo::Rel::Customer};
  /// Operational state; a downed attachment is skipped when originating
  /// (single-adjacency failure in the chaos fault model).
  bool up{true};
};

struct Site {
  SiteId id{kInvalidSite};
  CityId city{kInvalidCity};
  bool onsite_router{true};
  std::vector<std::size_t> regions;  ///< region indices announced; >1 = mixed
  std::vector<Attachment> attachments;

  bool announces(std::size_t region) const noexcept;
  bool mixed() const noexcept { return regions.size() > 1; }
};

struct Region {
  std::string name;
  Prefix prefix;
  Ipv4Addr service_ip;  ///< the A-record address handed to clients
};

class Deployment {
 public:
  Deployment(std::string name, Asn asn) : name_(std::move(name)), asn_(asn) {}

  const std::string& name() const noexcept { return name_; }
  Asn asn() const noexcept { return asn_; }

  std::span<const Site> sites() const noexcept { return sites_; }
  std::span<const Region> regions() const noexcept { return regions_; }
  const Site& site(SiteId id) const { return sites_[value(id)]; }

  bool is_global() const noexcept { return regions_.size() == 1; }

  // --- construction (used by the builder) ---
  std::size_t add_region(Region r);
  SiteId add_site(Site s);  ///< id is assigned; returns it
  void set_country_region(std::string iso2, std::size_t region);
  void set_area_region(geo::Area a, std::size_t region);

  // --- in-place fault operations (chaos engine) ---
  //
  // These mutate the announcement state so failure scenarios can be applied
  // and rolled back without allocating fresh prefixes or rebuilding the
  // deployment; callers re-solve routing afterwards (lab::Lab::resolve).

  /// Withdraw every announcement of `site`. Returns the region list it
  /// announced before (pass it back to `restore_site` to undo).
  std::vector<std::size_t> withdraw_site(SiteId site);

  /// Restore a previously withdrawn site's announcements.
  void restore_site(SiteId site, std::vector<std::size_t> regions);

  /// Withdraw one regional prefix everywhere. Returns the sites that were
  /// announcing it (pass back to `restore_region` to undo).
  std::vector<SiteId> withdraw_region(std::size_t region);

  /// Re-announce a regional prefix at the given sites.
  void restore_region(std::size_t region, const std::vector<SiteId>& sites);

  /// Set the operational state of one site attachment (index into the
  /// site's attachment list). Returns false if out of range.
  bool set_attachment_state(SiteId site, std::size_t attachment, bool up);

  // --- client mapping policy ---
  /// Region intended for a (correctly geolocated) country.
  std::optional<std::size_t> region_for_country(std::string_view iso2) const;
  /// The full country-override table (for deployment transforms).
  const std::unordered_map<std::string, std::size_t>& country_regions() const noexcept {
    return country_region_;
  }
  /// Region intended for clients in an area with no country override.
  std::size_t region_for_area(geo::Area a) const noexcept { return area_default_[static_cast<int>(a)]; }

  /// The DNS decision: geolocate `effective` through `db` and apply the
  /// mapping policy. Falls back to region 0 when the address is unknown.
  std::size_t map_client(Ipv4Addr effective, const dns::GeoDatabase& db) const;

  /// Ground-truth mapping for a client whose true city is known — what DNS
  /// *should* return under this deployment's geographic policy. Used to
  /// classify ×Region vs ✓Region mapping outcomes (Table 2).
  std::size_t intended_region(CityId true_city) const;

  // --- addressing ---
  std::optional<std::size_t> region_of_ip(Ipv4Addr a) const;

  // --- BGP interface ---
  std::vector<bgp::OriginAttachment> origins_for_region(std::size_t region) const;

  /// Sites by geographic area (Table 1 rows).
  std::array<std::size_t, geo::kAreaCount> site_count_by_area() const;

 private:
  std::string name_;
  Asn asn_;
  std::vector<Site> sites_;
  std::vector<Region> regions_;
  std::unordered_map<std::string, std::size_t> country_region_;
  std::array<std::size_t, geo::kAreaCount> area_default_{0, 0, 0, 0};
};

}  // namespace ranycast::cdn
