#include "ranycast/exec/pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace ranycast::exec {

namespace {

/// Set while a thread is executing chunks of a parallel_for; nested loops on
/// the same thread run serially inline instead of re-entering the pool.
thread_local bool t_inside_pool = false;

/// The ScopedCancel-installed default flag (nullptr outside guarded runs).
std::atomic<const CancelFlag*> g_default_cancel{nullptr};

}  // namespace

ScopedCancel::ScopedCancel(const CancelFlag* flag) noexcept
    : previous_(g_default_cancel.exchange(flag, std::memory_order_acq_rel)) {}

ScopedCancel::~ScopedCancel() {
  g_default_cancel.store(previous_, std::memory_order_release);
}

const CancelFlag* installed_cancel_flag() noexcept {
  return g_default_cancel.load(std::memory_order_acquire);
}

unsigned default_worker_count() noexcept {
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  if (const char* env = std::getenv("RANYCAST_THREADS")) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != env && parsed > 0) {
      // Allow oversubscription (tests sweep counts above the core count)
      // but keep a sane ceiling.
      return static_cast<unsigned>(std::min(parsed, 64ul));
    }
  }
  return hardware;
}

ThreadPool::ThreadPool(unsigned workers)
    : workers_wanted_(workers == 0 ? default_worker_count() : workers) {
  spawn_workers();
}

ThreadPool::~ThreadPool() { join_workers(); }

void ThreadPool::spawn_workers() {
  // The calling thread is worker 0; only the extra workers need threads.
  threads_.reserve(workers_wanted_ > 0 ? workers_wanted_ - 1 : 0);
  for (unsigned w = 1; w < workers_wanted_; ++w) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

void ThreadPool::join_workers() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  threads_.clear();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = false;
  }
}

void ThreadPool::resize(unsigned workers) {
  join_workers();
  workers_wanted_ = workers == 0 ? default_worker_count() : workers;
  spawn_workers();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen_generation; });
      if (shutdown_) return;
      seen_generation = generation_;
    }
    run_chunks();
  }
}

void ThreadPool::run_chunks() {
  t_inside_pool = true;
  const CancelFlag* cancel = job_.cancel;
  std::size_t completed_here = 0;
  for (;;) {
    const std::size_t begin = job_.cursor.fetch_add(job_.chunk, std::memory_order_relaxed);
    if (begin >= job_.total) break;
    const std::size_t end = std::min(begin + job_.chunk, job_.total);
    for (std::size_t i = begin; i < end; ++i) {
      // After a failure or an acknowledged cancellation the loop still
      // drains its items (so `done` reaches `total`), but stops invoking
      // the callback.
      if (job_.failed.load(std::memory_order_relaxed)) continue;
      if (cancel != nullptr && cancel->requested()) {
        job_.cancel_observed.store(true, std::memory_order_relaxed);
        continue;
      }
      try {
        (*job_.fn)(i);
      } catch (...) {
        job_.failed.store(true, std::memory_order_relaxed);
        const std::lock_guard<std::mutex> lock(mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
    }
    completed_here += end - begin;
  }
  t_inside_pool = false;
  if (completed_here > 0 &&
      job_.done.fetch_add(completed_here, std::memory_order_acq_rel) + completed_here ==
          job_.total) {
    // Last chunk: wake the caller. The lock orders the notify after the
    // caller's wait predicate check.
    const std::lock_guard<std::mutex> lock(mutex_);
    done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                              const CancelFlag* cancel) {
  if (n == 0) return;
  if (cancel == nullptr) cancel = g_default_cancel.load(std::memory_order_acquire);
  if (workers_wanted_ <= 1 || n == 1 || t_inside_pool) {
    for (std::size_t i = 0; i < n; ++i) {
      if (cancel != nullptr && cancel->requested()) throw CancelledError();
      fn(i);
    }
    return;
  }

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_.fn = &fn;
    job_.cancel = cancel;
    job_.total = n;
    // Chunks sized so each worker sees several (tail-balancing) but cursor
    // contention stays negligible.
    job_.chunk = std::max<std::size_t>(1, n / (static_cast<std::size_t>(workers_wanted_) * 8));
    job_.cursor.store(0, std::memory_order_relaxed);
    job_.done.store(0, std::memory_order_relaxed);
    job_.failed.store(false, std::memory_order_relaxed);
    job_.cancel_observed.store(false, std::memory_order_relaxed);
    first_error_ = nullptr;
    ++generation_;
  }
  work_cv_.notify_all();

  run_chunks();

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return job_.done.load(std::memory_order_acquire) == job_.total; });
  job_.fn = nullptr;
  job_.cancel = nullptr;
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
  if (job_.cancel_observed.load(std::memory_order_relaxed)) {
    lock.unlock();
    throw CancelledError();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace ranycast::exec
