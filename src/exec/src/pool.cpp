#include "ranycast/exec/pool.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>

#include "ranycast/obs/flight.hpp"
#include "ranycast/obs/metrics.hpp"

namespace ranycast::exec {

namespace {

/// Set while a thread is executing chunks of a parallel_for; nested loops on
/// the same thread run serially inline instead of re-entering the pool.
thread_local bool t_inside_pool = false;

/// The ScopedCancel-installed default flag (nullptr outside guarded runs).
std::atomic<const CancelFlag*> g_default_cancel{nullptr};

}  // namespace

ScopedCancel::ScopedCancel(const CancelFlag* flag) noexcept
    : previous_(g_default_cancel.exchange(flag, std::memory_order_acq_rel)) {}

ScopedCancel::~ScopedCancel() {
  g_default_cancel.store(previous_, std::memory_order_release);
}

const CancelFlag* installed_cancel_flag() noexcept {
  return g_default_cancel.load(std::memory_order_acquire);
}

unsigned default_worker_count() noexcept {
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  if (const char* env = std::getenv("RANYCAST_THREADS")) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != env && parsed > 0) {
      // Allow oversubscription (tests sweep counts above the core count)
      // but keep a sane ceiling.
      return static_cast<unsigned>(std::min(parsed, 64ul));
    }
  }
  return hardware;
}

ThreadPool::ThreadPool(unsigned workers)
    : workers_wanted_(workers == 0 ? default_worker_count() : workers) {
  spawn_workers();
}

ThreadPool::~ThreadPool() { join_workers(); }

void ThreadPool::spawn_workers() {
  stats_.clear();
  stats_.reserve(std::max(1u, workers_wanted_));
  for (unsigned w = 0; w < std::max(1u, workers_wanted_); ++w) {
    stats_.push_back(std::make_unique<WorkerSlot>());
  }
  // The calling thread is worker 0; only the extra workers need threads.
  threads_.reserve(workers_wanted_ > 0 ? workers_wanted_ - 1 : 0);
  for (unsigned w = 1; w < workers_wanted_; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

void ThreadPool::join_workers() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  threads_.clear();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = false;
  }
}

void ThreadPool::resize(unsigned workers) {
  join_workers();
  workers_wanted_ = workers == 0 ? default_worker_count() : workers;
  spawn_workers();
}

void ThreadPool::worker_loop(unsigned worker_index) {
  obs::set_thread_name("exec.worker-" + std::to_string(worker_index));
  std::uint64_t seen_generation = 0;
  for (;;) {
    obs::SpanContext parent_ctx;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen_generation; });
      if (shutdown_) return;
      seen_generation = generation_;
      parent_ctx = job_.parent_ctx;
      // Registered before the lock drops: parallel_for treats active_ > 0 as
      // "a worker may still be reading job_" and won't touch the fields.
      ++active_;
    }
    {
      // Spans opened by job items on this worker nest under the span that was
      // open on the enqueuing thread, so cross-thread flame graphs line up.
      const obs::InheritedSpanScope inherit(parent_ctx);
      run_chunks(worker_index);
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --active_;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::run_chunks(unsigned worker_index) {
  t_inside_pool = true;
  const bool timed = obs::enabled();
  const auto busy_start =
      timed ? std::chrono::steady_clock::now() : std::chrono::steady_clock::time_point{};
  std::size_t chunks_here = 0;
  const CancelFlag* cancel = job_.cancel;
  std::size_t completed_here = 0;
  for (;;) {
    const std::size_t begin = job_.cursor.fetch_add(job_.chunk, std::memory_order_relaxed);
    if (begin >= job_.total) break;
    const std::size_t end = std::min(begin + job_.chunk, job_.total);
    ++chunks_here;
    for (std::size_t i = begin; i < end; ++i) {
      // After a failure or an acknowledged cancellation the loop still
      // drains its items (so `done` reaches `total`), but stops invoking
      // the callback.
      if (job_.failed.load(std::memory_order_relaxed)) continue;
      if (cancel != nullptr && cancel->requested()) {
        job_.cancel_observed.store(true, std::memory_order_relaxed);
        continue;
      }
      try {
        (*job_.fn)(i);
      } catch (...) {
        job_.failed.store(true, std::memory_order_relaxed);
        const std::lock_guard<std::mutex> lock(mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
    }
    completed_here += end - begin;
  }
  t_inside_pool = false;
  if (worker_index < stats_.size() && chunks_here > 0) {
    WorkerSlot& slot = *stats_[worker_index];
    slot.chunks.fetch_add(chunks_here, std::memory_order_relaxed);
    slot.items.fetch_add(completed_here, std::memory_order_relaxed);
    if (timed) {
      const auto busy = std::chrono::steady_clock::now() - busy_start;
      slot.busy_ns.fetch_add(
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(busy).count()),
          std::memory_order_relaxed);
    }
  }
  if (completed_here > 0) {
    // Completion is signalled from the caller (worker 0 checks the predicate
    // directly) and from worker_loop's active_-decrement; signalling here too
    // would let the caller return and republish job_ while a straggler that
    // claimed no items is still reading the fields.
    job_.done.fetch_add(completed_here, std::memory_order_acq_rel);
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                              const CancelFlag* cancel) {
  if (n == 0) return;
  if (cancel == nullptr) cancel = g_default_cancel.load(std::memory_order_acquire);
  if (workers_wanted_ <= 1 || n == 1 || t_inside_pool) {
    for (std::size_t i = 0; i < n; ++i) {
      if (cancel != nullptr && cancel->requested()) throw CancelledError();
      fn(i);
    }
    return;
  }

  {
    std::unique_lock<std::mutex> lock(mutex_);
    // A worker that woke late for the *previous* generation may still be
    // draining its (empty) cursor loop; job_ must stay frozen until it is
    // out, or it could observe a half-published next job.
    done_cv_.wait(lock, [&] { return active_ == 0; });
    job_.fn = &fn;
    job_.cancel = cancel;
    job_.total = n;
    // Chunks sized so each worker sees several (tail-balancing) but cursor
    // contention stays negligible.
    job_.chunk = std::max<std::size_t>(1, n / (static_cast<std::size_t>(workers_wanted_) * 8));
    job_.parent_ctx = obs::current_span_context();
    job_.cursor.store(0, std::memory_order_relaxed);
    job_.done.store(0, std::memory_order_relaxed);
    job_.failed.store(false, std::memory_order_relaxed);
    job_.cancel_observed.store(false, std::memory_order_relaxed);
    first_error_ = nullptr;
    ++generation_;
  }
  work_cv_.notify_all();

  run_chunks(0);

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] {
    return active_ == 0 && job_.done.load(std::memory_order_acquire) == job_.total;
  });
  job_.fn = nullptr;
  job_.cancel = nullptr;
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
  if (job_.cancel_observed.load(std::memory_order_relaxed)) {
    lock.unlock();
    throw CancelledError();
  }
}

std::vector<ThreadPool::WorkerStats> ThreadPool::worker_stats() const {
  std::vector<WorkerStats> out;
  out.reserve(stats_.size());
  for (const auto& slot : stats_) {
    WorkerStats s;
    s.busy_ns = slot->busy_ns.load(std::memory_order_relaxed);
    s.chunks = slot->chunks.load(std::memory_order_relaxed);
    s.items = slot->items.load(std::memory_order_relaxed);
    out.push_back(s);
  }
  return out;
}

void ThreadPool::publish_stats() const {
  if (!obs::enabled()) return;
  std::uint64_t busy_total = 0;
  std::uint64_t busy_max = 0;
  std::uint64_t chunks = 0;
  std::uint64_t items = 0;
  for (const WorkerStats& s : worker_stats()) {
    busy_total += s.busy_ns;
    busy_max = std::max(busy_max, s.busy_ns);
    chunks += s.chunks;
    items += s.items;
  }
  auto& registry = obs::MetricsRegistry::global();
  registry.gauge("exec.pool.workers").set(static_cast<double>(workers_wanted_));
  registry.gauge("exec.pool.busy_ns_total").set(static_cast<double>(busy_total));
  registry.gauge("exec.pool.busy_ns_max").set(static_cast<double>(busy_max));
  registry.gauge("exec.pool.chunks").set(static_cast<double>(chunks));
  registry.gauge("exec.pool.items").set(static_cast<double>(items));
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace ranycast::exec
