// Deterministic data-parallel execution.
//
// The pool is deliberately work-stealing-free: a parallel_for over n items
// hands out fixed-size index blocks from an atomic cursor, every item i is
// computed by exactly one worker, and results are written to slot i of a
// caller-owned output. Because each item's computation is a pure function of
// its index (no cross-item state, no per-thread RNG), the produced values are
// byte-identical for any worker count — including the serial fallback — and
// reductions over the output array are performed by the caller in index
// order, never in completion order.
//
// The default worker count comes from the RANYCAST_THREADS environment
// variable (clamped to [1, hardware]); unset or 0 means one worker per
// hardware thread. See docs/performance.md.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "ranycast/obs/span.hpp"

namespace ranycast::exec {

/// Worker count the global pool starts with: RANYCAST_THREADS if set and
/// positive, otherwise std::thread::hardware_concurrency(), never below 1.
unsigned default_worker_count() noexcept;

/// Cooperative cancellation flag observed by parallel_for between items.
/// request() may be called from any thread; a loop that observes the flag
/// stops dispatching work, drains its bookkeeping and throws CancelledError
/// on the calling thread, leaving the pool fully reusable.
class CancelFlag {
 public:
  void request() noexcept { requested_.store(true, std::memory_order_release); }
  bool requested() const noexcept { return requested_.load(std::memory_order_relaxed); }
  void reset() noexcept { requested_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> requested_{false};
};

/// Thrown by parallel_for on the calling thread after a cancellation was
/// acknowledged (some items were skipped). If an item also threw, that
/// exception wins and CancelledError is not raised — exactly one error
/// propagates.
class CancelledError : public std::runtime_error {
 public:
  CancelledError() : std::runtime_error("parallel loop cancelled") {}
};

/// Installs `flag` as the process-wide default observed by every
/// parallel_for not given an explicit flag (solver fan-outs, lab batch
/// measurements, chaos snapshots), so a supervised run can time-box or stop
/// arbitrary nested solves without threading a parameter through every
/// layer. Restores the previous default on destruction. Scopes may nest;
/// concurrent guarded runs are not supported (one experiment per process).
class ScopedCancel {
 public:
  explicit ScopedCancel(const CancelFlag* flag) noexcept;
  ~ScopedCancel();

  ScopedCancel(const ScopedCancel&) = delete;
  ScopedCancel& operator=(const ScopedCancel&) = delete;

 private:
  const CancelFlag* previous_;
};

/// The ScopedCancel-installed process-wide flag (nullptr outside guarded
/// runs). Long *serial* loops — the convergence event loop, big exports —
/// poll this on their own cadence and throw CancelledError, giving the
/// supervisor the same cooperative stop it gets from parallel_for without
/// forcing every loop through the pool.
const CancelFlag* installed_cancel_flag() noexcept;

class ThreadPool {
 public:
  /// `workers == 0` means default_worker_count(). A pool of one worker runs
  /// every task inline on the calling thread (no threads are spawned).
  explicit ThreadPool(unsigned workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned worker_count() const noexcept { return workers_wanted_; }

  /// Join the current workers and respawn with a new count. Must not be
  /// called concurrently with parallel_for. Intended for tests sweeping
  /// thread counts; production code sizes the pool once at startup.
  void resize(unsigned workers);

  /// Invoke fn(i) for every i in [0, n). Blocks until all items completed.
  /// The calling thread participates. Nested calls (fn itself calling
  /// parallel_for on the same pool) run the inner loop serially inline, so
  /// composition cannot deadlock. The first exception thrown by fn is
  /// rethrown on the caller after the loop drains.
  ///
  /// `cancel` (or, when null, the ScopedCancel-installed default) is polled
  /// between items: once requested, no further item starts, the loop drains
  /// and CancelledError is thrown — unless every item had already run, in
  /// which case the loop completed and returns normally. An exception thrown
  /// by an item always takes precedence over cancellation; exactly one error
  /// propagates either way, and the pool stays reusable.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    const CancelFlag* cancel = nullptr);

  /// The process-wide pool used by the lab, solver and chaos engine.
  static ThreadPool& global();

  /// Pool-utilization telemetry, accumulated since construction / resize().
  /// Slot 0 is the calling thread (it participates in every loop), slots
  /// 1..workers-1 are the spawned workers. busy_ns only accumulates while
  /// obs::enabled() (no clock reads otherwise); chunk/item counts always do.
  struct WorkerStats {
    std::uint64_t busy_ns{0};  ///< wall time spent inside run_chunks
    std::uint64_t chunks{0};   ///< index blocks claimed from the cursor
    std::uint64_t items{0};    ///< items this worker iterated
  };
  std::vector<WorkerStats> worker_stats() const;

  /// Mirrors the aggregate of worker_stats() into the metrics registry
  /// (exec.pool.workers / busy_ns_total / busy_ns_max / chunks / items), so
  /// end-of-run reports and traces carry pool utilization. No-op when
  /// observability is disabled.
  void publish_stats() const;

 private:
  struct Job {
    const std::function<void(std::size_t)>* fn{nullptr};
    const CancelFlag* cancel{nullptr};
    std::size_t total{0};
    std::size_t chunk{1};
    obs::SpanContext parent_ctx;  ///< span open on the enqueuing thread
    std::atomic<std::size_t> cursor{0};
    std::atomic<std::size_t> done{0};
    std::atomic<bool> failed{false};
    std::atomic<bool> cancel_observed{false};
  };

  /// Per-worker accumulators (atomics: read by worker_stats() while workers
  /// may still be mid-loop).
  struct WorkerSlot {
    std::atomic<std::uint64_t> busy_ns{0};
    std::atomic<std::uint64_t> chunks{0};
    std::atomic<std::uint64_t> items{0};
  };

  void spawn_workers();
  void join_workers();
  void worker_loop(unsigned worker_index);
  void run_chunks(unsigned worker_index);

  unsigned workers_wanted_{1};
  std::vector<std::thread> threads_;
  std::vector<std::unique_ptr<WorkerSlot>> stats_;

  std::mutex mutex_;
  std::condition_variable work_cv_;   // signals a new job generation
  std::condition_variable done_cv_;   // signals job completion
  std::uint64_t generation_{0};
  unsigned active_{0};  ///< workers currently inside run_chunks
  bool shutdown_{false};
  Job job_;
  std::exception_ptr first_error_;
};

/// parallel_for writing fn(i) into slot i of a fresh vector. T must be
/// move-assignable and default-constructible.
template <typename T, typename F>
std::vector<T> parallel_map(ThreadPool& pool, std::size_t n, F&& fn) {
  std::vector<T> out(n);
  pool.parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace ranycast::exec
