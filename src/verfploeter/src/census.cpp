#include "ranycast/verfploeter/census.hpp"

#include <algorithm>
#include <set>

#include "ranycast/core/rng.hpp"

namespace ranycast::verfploeter {

CatchmentCensus full_census(const lab::Lab& lab, const lab::DeploymentHandle& handle,
                            std::size_t region) {
  CatchmentCensus census;
  for (const topo::AsNode& node : lab.world().graph.nodes()) {
    if (node.kind != topo::AsKind::Stub) continue;
    const bgp::Route* r = handle.route_for(node.asn, region);
    if (r == nullptr) continue;
    census.by_site[r->origin_site]++;
    census.total++;
  }
  return census;
}

CatchmentCensus probe_estimate(const lab::Lab& lab, const lab::DeploymentHandle& handle,
                               std::size_t region, std::size_t probe_count,
                               std::uint64_t seed) {
  auto retained = lab.census().retained();
  Rng rng{seed};
  for (std::size_t i = 0; i + 1 < retained.size(); ++i) {
    std::swap(retained[i], retained[i + rng.below(retained.size() - i)]);
  }
  if (retained.size() > probe_count) retained.resize(probe_count);

  CatchmentCensus census;
  std::set<std::uint32_t> seen_ases;
  for (const atlas::Probe* p : retained) {
    if (!seen_ases.insert(value(p->asn)).second) continue;  // one vote per AS
    const bgp::Route* r = handle.route_for(p->asn, region);
    if (r == nullptr) continue;
    census.by_site[r->origin_site]++;
    census.total++;
  }
  return census;
}

double total_variation(const CatchmentCensus& a, const CatchmentCensus& b) {
  std::set<SiteId> sites;
  for (const auto& [s, n] : a.by_site) sites.insert(s);
  for (const auto& [s, n] : b.by_site) sites.insert(s);
  double distance = 0.0;
  for (SiteId s : sites) {
    distance += std::abs(a.fraction(s) - b.fraction(s));
  }
  return distance / 2.0;
}

}  // namespace ranycast::verfploeter
