// Verfploeter-style anycast catchment census.
//
// Verfploeter (de Vries et al.) maps an anycast service's catchments by
// probing the whole IPv4 hitlist *from* the anycast sites and recording
// which site each reply returns to — a complete census, unlike vantage-
// point platforms (RIPE Atlas) that sample only networks hosting probes.
// In the laboratory the complete census is directly computable from the
// routing outcome; this module provides it plus the probe-sampled estimate,
// so the sampling bias the paper works around with <city,AS> grouping can
// be quantified.
#pragma once

#include <cstdint>
#include <map>

#include "ranycast/lab/lab.hpp"

namespace ranycast::verfploeter {

/// A catchment distribution: how many client (stub) ASes each site serves.
struct CatchmentCensus {
  std::map<SiteId, std::size_t> by_site;
  std::size_t total{0};

  double fraction(SiteId site) const {
    const auto it = by_site.find(site);
    if (it == by_site.end() || total == 0) return 0.0;
    return static_cast<double>(it->second) / static_cast<double>(total);
  }
};

/// The complete census over every stub AS in the world (what Verfploeter
/// measures with a full-IPv4 hitlist).
CatchmentCensus full_census(const lab::Lab& lab, const lab::DeploymentHandle& handle,
                            std::size_t region);

/// The estimate a probe platform gives: catchments of a deterministic
/// sample of `probe_count` retained probes (ASes deduplicated).
CatchmentCensus probe_estimate(const lab::Lab& lab, const lab::DeploymentHandle& handle,
                               std::size_t region, std::size_t probe_count,
                               std::uint64_t seed);

/// Total variation distance between two catchment distributions in [0, 1]:
/// the sampling error of an estimate against the full census.
double total_variation(const CatchmentCensus& a, const CatchmentCensus& b);

}  // namespace ranycast::verfploeter
