// Admission control: reject early under overload instead of timing out late.
//
// The shedder combines three deterministic checks, applied in a fixed order
// so counters and answers replay byte-identically:
//
//   1. queue depth   the server models a FIFO service queue in virtual
//                    time (queue_free_at); when the backlog already holds
//                    max_queue_depth queries, new arrivals are shed
//                    (ShedQueue) — the queue never grows without bound.
//   2. deadline      every query carries a deadline budget; when predicted
//                    latency (queue wait + service time + injected slow-query
//                    penalty) exceeds it, the query is shed immediately
//                    (ShedDeadline). This is the property the soak gates on:
//                    a SERVED query's latency never exceeds its budget, so
//                    under 2x overload p99 of served latency stays inside
//                    the budget while the shed counters absorb the excess.
//   3. token bucket  sustained rate limiting (rate_qps, burst) over integer
//                    micro-tokens — no float drift, same decisions on every
//                    replay (ShedRate).
//
// All arithmetic is integer virtual-time (ns / micro-tokens); nothing here
// reads a wall clock.
#pragma once

#include <cstdint>
#include <string_view>

#include "ranycast/guard/checkpoint.hpp"

namespace ranycast::serve {

struct AdmissionConfig {
  double rate_qps{2000.0};          ///< sustained token refill rate
  std::uint32_t burst{64};          ///< bucket capacity in whole tokens
  std::uint32_t max_queue_depth{32};
  std::uint64_t service_time_ns{500'000};  ///< virtual cost of one lookup
};

enum class AdmitDecision : std::uint8_t {
  Admit = 0,
  ShedQueue = 1,
  ShedDeadline = 2,
  ShedRate = 3,
};

std::string_view to_string(AdmitDecision decision) noexcept;

/// Deterministic token bucket over integer micro-tokens.
class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(double rate_per_s, std::uint32_t burst);

  bool take(std::uint64_t now_ns);

  void encode(guard::ByteWriter& w) const;
  bool decode(guard::ByteReader& r);

 private:
  std::uint64_t capacity_e6_{0};     ///< micro-tokens the bucket can hold
  std::uint64_t rate_e6_per_s_{0};   ///< micro-tokens refilled per second
  std::uint64_t tokens_e6_{0};
  std::uint64_t last_refill_ns_{0};
};

/// The admission outcome for one arrival, with the latency the query will
/// observe if admitted (wait + service, virtual ns).
struct Admitted {
  AdmitDecision decision{AdmitDecision::Admit};
  std::uint64_t latency_ns{0};  ///< meaningful only when Admit
};

class Admission {
 public:
  explicit Admission(const AdmissionConfig& cfg);

  const AdmissionConfig& config() const noexcept { return cfg_; }

  /// Decide one arrival at `now_ns` with `budget_us` deadline budget and
  /// `extra_service_ns` of injected slow-query penalty. Mutates the queue
  /// model and the bucket only on Admit.
  Admitted offer(std::uint64_t now_ns, std::uint64_t budget_us,
                 std::uint64_t extra_service_ns);

  /// Virtual backlog depth at `now_ns` (whole queries ahead of a new one).
  std::uint32_t queue_depth(std::uint64_t now_ns) const noexcept;

  void encode(guard::ByteWriter& w) const;
  bool decode(guard::ByteReader& r);

 private:
  AdmissionConfig cfg_;
  TokenBucket bucket_;
  std::uint64_t queue_free_at_ns_{0};  ///< when the modeled FIFO drains
};

}  // namespace ranycast::serve
