// Seeded fault injection for the serving plane, in the style of
// vfs::ScopedFaultPlan: a deterministic timeline of refresher and query
// faults the server consults at virtual-time points.
//
//   BuildFail   snapshot builds STARTED inside the window fail (the world
//               mutation is not consumed; the refresher retries next cycle)
//   BuildStall  builds started inside the window take extra_ns longer to
//               publish — the refresher wedges, ages grow, the ladder reacts
//   SlowQuery   queries arriving inside the window cost extra_ns more
//               service time, pushing them over their deadline budgets
//   ClockSkew   from at_ns onward the STALENESS clock reads skew_ns later
//               (or earlier) than virtual time — staleness accounting, not
//               scheduling, is skewed, exactly like a stepped NTP clock
//               under a frozen refresher
//
// Because every effect is a pure function of (plan, virtual time), the
// ladder's transition history is predictable from the timeline alone —
// which is what the always-on differential test asserts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ranycast/guard/checkpoint.hpp"

namespace ranycast::serve {

enum class ServeFaultKind : std::uint8_t {
  BuildFail = 0,
  BuildStall = 1,
  SlowQuery = 2,
  ClockSkew = 3,
};

std::string_view to_string(ServeFaultKind kind) noexcept;

struct ServeFaultEvent {
  ServeFaultKind kind{ServeFaultKind::BuildFail};
  std::uint64_t at_ns{0};        ///< window start (virtual time)
  std::uint64_t duration_ns{0};  ///< window length (ignored by ClockSkew)
  std::uint64_t extra_ns{0};     ///< BuildStall / SlowQuery penalty
  std::int64_t skew_ns{0};       ///< ClockSkew staleness-clock offset delta

  bool operator==(const ServeFaultEvent&) const = default;
};

std::string describe(const ServeFaultEvent& e);

struct FaultPlan {
  std::uint64_t seed{0};
  std::vector<ServeFaultEvent> events;

  bool empty() const noexcept { return events.empty(); }

  /// True when any BuildFail window covers `t`.
  bool build_fails(std::uint64_t t_ns) const noexcept;
  /// Sum of BuildStall penalties whose window covers `t`.
  std::uint64_t stall_extra_ns(std::uint64_t t_ns) const noexcept;
  /// Sum of SlowQuery penalties whose window covers `t`.
  std::uint64_t query_extra_ns(std::uint64_t t_ns) const noexcept;
  /// Cumulative staleness-clock skew of all ClockSkew events at or before `t`.
  std::int64_t skew_ns(std::uint64_t t_ns) const noexcept;
  /// Virtual time on the staleness clock: t + skew, clamped at zero.
  std::uint64_t staleness_now_ns(std::uint64_t t_ns) const noexcept;

  /// Mix every event into a checkpoint fingerprint (a resumed run under a
  /// different fault plan is a different experiment).
  std::uint64_t fingerprint() const noexcept;

  void encode(guard::ByteWriter& w) const;
  bool decode(guard::ByteReader& r);

  /// A seeded storm over [0, horizon): alternating build failures, stalls,
  /// slow-query bursts and skew steps whose density scales with `intensity`
  /// in [0, 1]. Same seed, same horizon, same intensity => same timeline.
  static FaultPlan storm(std::uint64_t seed, std::uint64_t horizon_ns, double intensity);
};

}  // namespace ranycast::serve
