// The graceful-degradation ladder: Fresh -> Stale -> Frozen -> Reject.
//
// The ladder is the server's honest answer to "how good is what I am
// serving right now?". It is a pure function of refresher health — the age
// of the last published epoch (measured on the possibly skewed staleness
// clock) and the run of consecutive build failures — so the always-on
// differential test can predict every transition straight from the fault
// timeline:
//
//   Fresh   age <= fresh_max_age and no failure streak: the refresher is
//           keeping up; answers reflect the current world.
//   Stale   age in (fresh_max_age, stale_max_age]: the refresher is behind
//           but the bound still holds; answers are served with the stale
//           marker so clients can decide.
//   Frozen  the bound broke (age > stale_max_age) or the refresher is
//           demonstrably wedged (>= freeze_after_failures consecutive build
//           failures): answers come from the last-good snapshot — the same
//           bytes the checkpoint chain holds — with no age guarantee.
//   Reject  nothing servable at all (no snapshot ever built or restored),
//           or the last-good state outlived even the frozen allowance
//           (age > reject_after_age): queries get a structured error
//           instead of an arbitrarily wrong mapping.
//
// Transitions are recorded (and journaled durably by the server) so a
// restart reconstructs the exact ladder history; LadderState encodes and
// decodes through the guard byte codec for that reason.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "ranycast/guard/checkpoint.hpp"

namespace ranycast::serve {

enum class LadderRung : std::uint8_t {
  Fresh = 0,
  Stale = 1,
  Frozen = 2,
  Reject = 3,
};

std::string_view to_string(LadderRung rung) noexcept;

struct LadderConfig {
  /// Age bound for Fresh, on the staleness clock (virtual ns).
  std::uint64_t fresh_max_age_ns{1'000'000'000};
  /// Age bound for Stale; beyond it the server freezes onto last-good.
  std::uint64_t stale_max_age_ns{3'000'000'000};
  /// Age beyond which even frozen answers are refused.
  std::uint64_t reject_after_age_ns{10'000'000'000};
  /// Consecutive failed builds that force Frozen regardless of age.
  std::uint32_t freeze_after_failures{3};
};

/// The refresher-health inputs a rung is derived from.
struct LadderHealth {
  bool has_snapshot{false};          ///< anything published or restored
  std::uint64_t age_ns{0};           ///< staleness-clock age of that snapshot
  std::uint32_t consecutive_failures{0};
};

/// The pure rung rule. Deliberately a free function: the differential test
/// re-implements it independently from the fault timeline and asserts the
/// server's recorded transitions match exactly.
LadderRung ladder_rung(const LadderConfig& cfg, const LadderHealth& health) noexcept;

struct LadderTransition {
  std::uint64_t at_ns{0};  ///< virtual time the rung change was observed
  LadderRung from{LadderRung::Reject};
  LadderRung to{LadderRung::Reject};
  std::string reason;      ///< "age", "refresh_failures", "published", ...

  bool operator==(const LadderTransition&) const = default;
};

/// Rung state machine with a recorded transition history. advance() is
/// called by the server whenever health may have changed; it returns true
/// when the rung moved (the caller then journals the transition).
class Ladder {
 public:
  explicit Ladder(const LadderConfig& cfg) : cfg_(cfg) {}

  LadderRung rung() const noexcept { return rung_; }
  const LadderConfig& config() const noexcept { return cfg_; }
  const std::vector<LadderTransition>& transitions() const noexcept {
    return transitions_;
  }

  /// Re-evaluate the rung; when it changes, record (and return) the
  /// transition. `reason` labels what prompted the re-evaluation.
  bool advance(std::uint64_t now_ns, const LadderHealth& health,
               std::string_view reason, LadderTransition* out = nullptr);

  void encode(guard::ByteWriter& w) const;
  bool decode(guard::ByteReader& r);

 private:
  LadderConfig cfg_;
  LadderRung rung_{LadderRung::Reject};  ///< nothing servable before the first build
  std::vector<LadderTransition> transitions_;
};

}  // namespace ranycast::serve
