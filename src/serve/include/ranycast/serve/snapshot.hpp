// The immutable world a query is answered from.
//
// A WorldSnapshot is one epoch of the serving plane: for every retained
// probe, the site/region/address the deployment currently maps it to and
// the RTT it would measure. Snapshots are built by the refresher off the
// live lab (chaos mutations included), published with an atomic
// shared_ptr swap (RCU-style: readers pin an epoch by copying the pointer,
// retired epochs are reclaimed when the last reader drops its pin) and are
// never mutated after publish — a query either sees the whole epoch or the
// whole previous one, never a torn mix.
//
// Snapshots round-trip exactly through guard::ByteWriter/ByteReader (RTTs
// as raw IEEE-754 bits), which is what lets a SIGKILL'd server restore the
// last published epoch from the checkpoint chain and keep answering
// byte-identically.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ranycast/guard/checkpoint.hpp"
#include "ranycast/lab/lab.hpp"

namespace ranycast::serve {

/// One probe's mapping in one epoch.
struct MapEntry {
  std::uint32_t address{0};  ///< the deployment address DNS handed the probe
  std::uint16_t region{0};   ///< regional prefix index the answer came from
  std::uint16_t site{0};     ///< catchment site (kInvalidSite when unrouted)
  double rtt_ms{0.0};        ///< measured RTT (0 when unrouted)
  bool routed{false};        ///< probe's AS holds a route to the answer
  bool degraded{false};      ///< DNS served the fallback region

  bool operator==(const MapEntry&) const = default;
};

struct WorldSnapshot {
  std::uint64_t epoch{0};        ///< publish ordinal, strictly increasing
  std::uint64_t built_at_ns{0};  ///< virtual completion time of the build
  std::uint64_t fingerprint{0};  ///< CRC over the encoded entries
  std::vector<MapEntry> entries; ///< indexed like census().retained()

  bool operator==(const WorldSnapshot&) const = default;
};

/// Measure every retained probe against the deployment's current routes:
/// DNS answer, catchment site, RTT. Fans out over the deterministic thread
/// pool, so the same lab state yields byte-identical snapshots at any
/// worker count. `built_at_ns` is virtual serving time, never wall clock.
WorldSnapshot build_snapshot(lab::Lab& laboratory, const lab::DeploymentHandle& handle,
                             std::uint64_t epoch, std::uint64_t built_at_ns);

/// CRC-32-based content fingerprint over the entries (epoch and build time
/// excluded: two builds of the same world state fingerprint identically).
std::uint64_t snapshot_fingerprint(const WorldSnapshot& snapshot);

void encode_snapshot(guard::ByteWriter& w, const WorldSnapshot& snapshot);
/// Returns false (and leaves `out` unspecified) on a short or garbled
/// payload; callers treat that as a corrupt checkpoint.
bool decode_snapshot(guard::ByteReader& r, WorldSnapshot& out);

}  // namespace ranycast::serve
