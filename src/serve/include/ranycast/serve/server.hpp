// serve::Server — the self-healing, overload-safe mapping service.
//
// The server answers "which site serves this client?" from an immutable
// epoch-swapped WorldSnapshot while a background refresher rebuilds the
// snapshot off the drifting world (the chaos plan's mutations) and a
// seeded serve::FaultPlan injects refresher and query faults underneath.
//
// The core is a *deterministic virtual-time state machine*: tick(now_ns)
// advances the refresher, query(...) answers one arrival — both are pure
// functions of (config, plans, lab state, virtual time), never of the wall
// clock. The ranycast-serve drive mode runs this core under guard::run_sweep
// (checkpoint chain, resume, journal), which is what makes the CI soak's
// guarantee possible: SIGKILL anywhere — including between a finished build
// and its publish — then resume, and the full answer stream is
// byte-identical to an uninterrupted run. A real-time mode maps elapsed
// wall time onto the same core, with queries and the refresher on separate
// threads; the epoch swap is an atomic shared_ptr store, so readers pin a
// whole epoch or the previous whole epoch, never a torn mix.
//
// Robustness surface (docs/serving.md):
//   - degradation ladder (ladder.hpp) journaled on every transition
//   - admission control (admission.hpp) with shed accounting in obs
//   - crash-restart through guard::CheckpointChain (save/load round-trip
//     the complete serving state: snapshots, ladder history, bucket,
//     queue model, latency digest, world-drift cursor)
//   - fault-injected serving (fault.hpp) with a differential ladder test
#pragma once

#include <cstdint>
#include <functional>
#include <iterator>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ranycast/chaos/engine.hpp"
#include "ranycast/chaos/plan.hpp"
#include "ranycast/core/expected.hpp"
#include "ranycast/guard/checkpoint.hpp"
#include "ranycast/lab/lab.hpp"
#include "ranycast/serve/admission.hpp"
#include "ranycast/serve/fault.hpp"
#include "ranycast/serve/ladder.hpp"
#include "ranycast/serve/snapshot.hpp"

namespace ranycast::serve {

/// Deterministic fixed-bucket latency recorder (microsecond buckets,
/// power-of-two-ish edges). Unlike obs::Histogram it is part of the
/// serving state: it encodes into checkpoints so a resumed run reports the
/// same quantiles an uninterrupted one would.
class LatencyDigest {
 public:
  static constexpr std::uint64_t kBoundsUs[] = {10,    20,    50,    100,  200,
                                                500,   1000,  2000,  5000, 10000,
                                                20000, 50000, 100000};
  static constexpr std::size_t kBuckets = std::size(kBoundsUs) + 1;

  void record_ns(std::uint64_t latency_ns);
  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t max_us() const noexcept { return max_us_; }
  /// Upper bound of the bucket holding quantile q (conservative: the true
  /// quantile is <= the returned value, except in the overflow bucket where
  /// the observed max is returned).
  std::uint64_t quantile_us(double q) const noexcept;

  void encode(guard::ByteWriter& w) const;
  bool decode(guard::ByteReader& r);

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_{0};
  std::uint64_t sum_us_{0};
  std::uint64_t max_us_{0};
};

struct ServeConfig {
  LadderConfig ladder;
  AdmissionConfig admission;
  /// Refresher cadence: a new build starts this long after the previous
  /// build STARTED (failed builds retry on the same cadence).
  std::uint64_t refresh_interval_ns{1'000'000'000};
  /// Virtual latency from build start to publishable snapshot.
  std::uint64_t build_time_ns{200'000'000};
  /// World drift: one event is applied to the lab per successful build
  /// start, in order, until the plan is exhausted.
  chaos::FaultPlan world_plan;
  /// Serving-plane fault timeline.
  FaultPlan faults;
  std::uint64_t seed{2023};
};

enum class QueryStatus : std::uint8_t {
  Served = 0,
  ShedQueue = 1,
  ShedDeadline = 2,
  ShedRate = 3,
  Rejected = 4,  ///< ladder Reject: structured error, nothing servable
};

std::string_view to_string(QueryStatus status) noexcept;

struct QueryResult {
  QueryStatus status{QueryStatus::Rejected};
  LadderRung rung{LadderRung::Reject};
  std::uint64_t epoch{0};        ///< epoch the answer came from (0 if none)
  std::uint64_t fingerprint{0};  ///< that epoch's content fingerprint
  std::uint64_t latency_us{0};   ///< virtual latency (0 unless Served)
  MapEntry entry;                ///< meaningful only when Served
};

/// Shed/serve accounting (also mirrored into obs serve.* counters).
struct ServeStats {
  std::uint64_t queries{0};
  std::uint64_t served{0};
  std::uint64_t shed_queue{0};
  std::uint64_t shed_deadline{0};
  std::uint64_t shed_rate{0};
  std::uint64_t rejected{0};
  std::uint64_t epochs_published{0};
  std::uint64_t builds_failed{0};
  std::uint64_t world_events_applied{0};
};

class Server {
 public:
  /// Crash-point hook for the CI soak: invoked at named points of the
  /// publish sequence ("pre_publish", "post_publish") with the epoch about
  /// to be / just published. A test hook may std::_Exit(137) to simulate a
  /// SIGKILL mid-swap.
  using CrashHook = std::function<void(std::string_view point, std::uint64_t epoch)>;

  Server(lab::Lab& laboratory, const lab::DeploymentHandle& handle, ServeConfig cfg);

  const ServeConfig& config() const noexcept { return cfg_; }

  /// Binds (lab config, deployment, serve config, both plans, seed): the
  /// checkpoint identity a resume must match.
  std::uint64_t fingerprint() const;

  // ---- refresher (call from one thread: the drive loop or the refresher
  // thread; internally synchronized against query()) ----

  /// Advance the refresher state machine to virtual time `now_ns`: start
  /// due builds (applying the next world-drift event), complete or fail
  /// in-flight ones, publish finished snapshots (epoch swap), and
  /// re-evaluate the ladder. Idempotent for equal `now_ns`.
  core::Expected<std::monostate, std::string> tick(std::uint64_t now_ns);

  // ---- query path (thread-safe) ----

  /// Answer one arrival at virtual time `now_ns` for `client` (an index
  /// into the retained-probe universe) with `budget_us` deadline budget.
  QueryResult query(std::uint64_t client, std::uint64_t now_ns, std::uint64_t budget_us);

  /// Pin the current epoch (RCU read-side): the returned snapshot stays
  /// valid until the pointer is dropped, regardless of later swaps.
  std::shared_ptr<const WorldSnapshot> pin() const;

  // ---- introspection ----

  LadderRung rung() const;
  const std::vector<LadderTransition>& transitions() const { return ladder_.transitions(); }
  ServeStats stats() const;
  const LatencyDigest& latency() const noexcept { return latency_; }
  std::uint64_t current_epoch() const;

  void set_crash_hook(CrashHook hook) { crash_hook_ = std::move(hook); }

  // ---- persistence (guard::run_sweep hooks) ----

  /// Serialize the complete serving state (refresher, snapshots, ladder,
  /// admission, stats, latency digest) into a checkpoint payload.
  void save(guard::ByteWriter& w) const;
  /// Restore from a checkpoint payload; re-applies the already-consumed
  /// world-drift events so the lab reaches the checkpointed state. Returns
  /// false on a short/garbled payload or an unappliable replayed event.
  bool load(guard::ByteReader& r);

 private:
  /// Start a build at virtual time `t` (consumes a world event unless the
  /// fault plan fails this build). Returns an error string on an
  /// unappliable world event.
  std::string start_build(std::uint64_t t_ns);
  /// Complete the in-flight build at its virtual done-time.
  void finish_build();
  void advance_ladder(std::uint64_t now_ns, std::string_view reason);
  LadderHealth health_at(std::uint64_t now_ns) const;
  void journal_transition(const LadderTransition& t) const;

  lab::Lab& lab_;
  const lab::DeploymentHandle& handle_;
  ServeConfig cfg_;
  /// Applies the world-drift events (mutation + re-solve), both live and
  /// during the resume fast-forward replay.
  chaos::Engine engine_;

  mutable std::mutex mutex_;  ///< guards refresher + admission + ladder state
  // Published epoch, swapped atomically so query threads pin lock-free.
  std::shared_ptr<const WorldSnapshot> snapshot_;  // guarded by snapshot_mutex_
  mutable std::mutex snapshot_mutex_;

  // --- refresher state (guarded by mutex_) ---
  std::uint64_t next_build_at_ns_{0};
  bool building_{false};
  bool build_will_fail_{false};
  std::uint64_t build_started_ns_{0};
  std::uint64_t build_done_at_ns_{0};
  std::shared_ptr<const WorldSnapshot> pending_;
  std::uint64_t epoch_counter_{0};
  std::uint32_t consecutive_failures_{0};
  std::uint64_t world_events_applied_{0};

  Ladder ladder_;
  Admission admission_;
  ServeStats stats_;
  LatencyDigest latency_;
  CrashHook crash_hook_;
};

}  // namespace ranycast::serve
