#include "ranycast/serve/admission.hpp"

#include <algorithm>

namespace ranycast::serve {

namespace {
constexpr std::uint64_t kMicroPerToken = 1'000'000;
constexpr std::uint64_t kNsPerSecond = 1'000'000'000;
}  // namespace

std::string_view to_string(AdmitDecision decision) noexcept {
  switch (decision) {
    case AdmitDecision::Admit: return "admit";
    case AdmitDecision::ShedQueue: return "shed_queue";
    case AdmitDecision::ShedDeadline: return "shed_deadline";
    case AdmitDecision::ShedRate: return "shed_rate";
  }
  return "unknown";
}

TokenBucket::TokenBucket(double rate_per_s, std::uint32_t burst)
    : capacity_e6_(std::uint64_t{burst} * kMicroPerToken),
      rate_e6_per_s_(rate_per_s <= 0.0
                         ? 0
                         : static_cast<std::uint64_t>(rate_per_s * kMicroPerToken)),
      tokens_e6_(capacity_e6_) {}

bool TokenBucket::take(std::uint64_t now_ns) {
  if (now_ns > last_refill_ns_) {
    const std::uint64_t dt_ns = now_ns - last_refill_ns_;
    // 128-bit intermediate: rate_e6 * dt_ns overflows u64 within seconds at
    // realistic rates.
    const auto earned = static_cast<std::uint64_t>(
        static_cast<unsigned __int128>(rate_e6_per_s_) * dt_ns / kNsPerSecond);
    tokens_e6_ = std::min(capacity_e6_, tokens_e6_ + earned);
    // Advance the refill clock only by the nanoseconds actually converted,
    // so sub-token remainders are not silently discarded at high tick rates.
    if (rate_e6_per_s_ > 0) {
      const auto consumed_ns = static_cast<std::uint64_t>(
          static_cast<unsigned __int128>(earned) * kNsPerSecond / rate_e6_per_s_);
      last_refill_ns_ += std::min(dt_ns, std::max<std::uint64_t>(consumed_ns, 0));
      if (tokens_e6_ == capacity_e6_) last_refill_ns_ = now_ns;  // full: no debt to keep
    } else {
      last_refill_ns_ = now_ns;
    }
  }
  if (tokens_e6_ < kMicroPerToken) return false;
  tokens_e6_ -= kMicroPerToken;
  return true;
}

void TokenBucket::encode(guard::ByteWriter& w) const {
  w.u64(capacity_e6_);
  w.u64(rate_e6_per_s_);
  w.u64(tokens_e6_);
  w.u64(last_refill_ns_);
}

bool TokenBucket::decode(guard::ByteReader& r) {
  capacity_e6_ = r.u64();
  rate_e6_per_s_ = r.u64();
  tokens_e6_ = r.u64();
  last_refill_ns_ = r.u64();
  return r.ok() && tokens_e6_ <= capacity_e6_;
}

Admission::Admission(const AdmissionConfig& cfg)
    : cfg_(cfg), bucket_(cfg.rate_qps, cfg.burst) {}

std::uint32_t Admission::queue_depth(std::uint64_t now_ns) const noexcept {
  if (queue_free_at_ns_ <= now_ns || cfg_.service_time_ns == 0) return 0;
  const std::uint64_t backlog_ns = queue_free_at_ns_ - now_ns;
  return static_cast<std::uint32_t>(
      (backlog_ns + cfg_.service_time_ns - 1) / cfg_.service_time_ns);
}

Admitted Admission::offer(std::uint64_t now_ns, std::uint64_t budget_us,
                          std::uint64_t extra_service_ns) {
  // Fixed decision order — depth, deadline, rate — so replays shed the same
  // queries for the same reasons.
  Admitted out;
  if (queue_depth(now_ns) >= cfg_.max_queue_depth) {
    out.decision = AdmitDecision::ShedQueue;
    return out;
  }
  const std::uint64_t start_ns = std::max(queue_free_at_ns_, now_ns);
  const std::uint64_t wait_ns = start_ns - now_ns;
  const std::uint64_t predicted_ns = wait_ns + cfg_.service_time_ns + extra_service_ns;
  if (predicted_ns > budget_us * 1000) {
    out.decision = AdmitDecision::ShedDeadline;
    return out;
  }
  if (!bucket_.take(now_ns)) {
    out.decision = AdmitDecision::ShedRate;
    return out;
  }
  queue_free_at_ns_ = start_ns + cfg_.service_time_ns + extra_service_ns;
  out.decision = AdmitDecision::Admit;
  out.latency_ns = predicted_ns;
  return out;
}

void Admission::encode(guard::ByteWriter& w) const {
  bucket_.encode(w);
  w.u64(queue_free_at_ns_);
}

bool Admission::decode(guard::ByteReader& r) {
  if (!bucket_.decode(r)) return false;
  queue_free_at_ns_ = r.u64();
  return r.ok();
}

}  // namespace ranycast::serve
