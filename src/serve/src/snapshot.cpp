#include "ranycast/serve/snapshot.hpp"

#include "ranycast/core/crc32.hpp"
#include "ranycast/core/rng.hpp"
#include "ranycast/dns/resolver.hpp"
#include "ranycast/exec/pool.hpp"

namespace ranycast::serve {

WorldSnapshot build_snapshot(lab::Lab& laboratory, const lab::DeploymentHandle& handle,
                             std::uint64_t epoch, std::uint64_t built_at_ns) {
  WorldSnapshot snap;
  snap.epoch = epoch;
  snap.built_at_ns = built_at_ns;
  const auto retained = laboratory.census().retained();
  snap.entries.resize(retained.size());
  // Each probe's entry is pure in (probe, deployment state), so the fan-out
  // writes disjoint slots and the snapshot is identical at any worker count.
  exec::ThreadPool::global().parallel_for(retained.size(), [&](std::size_t i) {
    const atlas::Probe* p = retained[i];
    const lab::Lab::DnsAnswer answer =
        laboratory.dns_lookup(*p, handle, dns::QueryMode::Ldns);
    MapEntry e;
    e.address = answer.address.bits();
    e.region = static_cast<std::uint16_t>(answer.region);
    e.degraded = answer.degraded;
    e.site = value(kInvalidSite);
    const bgp::Route* route = handle.route_for(p->asn, answer.region);
    if (route != nullptr) {
      e.routed = true;
      e.site = value(route->origin_site);
      const auto rtt = laboratory.ping(*p, answer.address);
      e.rtt_ms = rtt ? rtt->ms : 0.0;
    }
    snap.entries[i] = e;
  });
  snap.fingerprint = snapshot_fingerprint(snap);
  return snap;
}

namespace {

void encode_entries(guard::ByteWriter& w, const WorldSnapshot& snapshot) {
  w.u64(snapshot.entries.size());
  for (const MapEntry& e : snapshot.entries) {
    w.u32(e.address);
    w.u16(e.region);
    w.u16(e.site);
    w.f64(e.rtt_ms);
    w.u8(e.routed ? 1 : 0);
    w.u8(e.degraded ? 1 : 0);
  }
}

}  // namespace

std::uint64_t snapshot_fingerprint(const WorldSnapshot& snapshot) {
  guard::ByteWriter w;
  encode_entries(w, snapshot);
  const std::uint32_t crc = core::crc32(w.data().data(), w.data().size());
  // Fold in the entry count so an empty world and a zero-entry decode error
  // cannot collide with real content at fingerprint zero.
  return hash_combine(snapshot.entries.size(), crc);
}

void encode_snapshot(guard::ByteWriter& w, const WorldSnapshot& snapshot) {
  w.u64(snapshot.epoch);
  w.u64(snapshot.built_at_ns);
  w.u64(snapshot.fingerprint);
  encode_entries(w, snapshot);
}

bool decode_snapshot(guard::ByteReader& r, WorldSnapshot& out) {
  out.epoch = r.u64();
  out.built_at_ns = r.u64();
  out.fingerprint = r.u64();
  const std::uint64_t count = r.u64();
  if (!r.ok() || count > r.remaining()) return false;  // each entry needs > 1 byte
  out.entries.clear();
  out.entries.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    MapEntry e;
    e.address = r.u32();
    e.region = r.u16();
    e.site = r.u16();
    e.rtt_ms = r.f64();
    e.routed = r.u8() != 0;
    e.degraded = r.u8() != 0;
    out.entries.push_back(e);
  }
  // The content fingerprint doubles as an integrity check on top of the
  // checkpoint CRC: a payload that decodes but disagrees is corrupt.
  return r.ok() && snapshot_fingerprint(out) == out.fingerprint;
}

}  // namespace ranycast::serve
