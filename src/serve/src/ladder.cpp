#include "ranycast/serve/ladder.hpp"

namespace ranycast::serve {

std::string_view to_string(LadderRung rung) noexcept {
  switch (rung) {
    case LadderRung::Fresh: return "fresh";
    case LadderRung::Stale: return "stale";
    case LadderRung::Frozen: return "frozen";
    case LadderRung::Reject: return "reject";
  }
  return "unknown";
}

LadderRung ladder_rung(const LadderConfig& cfg, const LadderHealth& health) noexcept {
  if (!health.has_snapshot) return LadderRung::Reject;
  if (health.age_ns > cfg.reject_after_age_ns) return LadderRung::Reject;
  if (health.consecutive_failures >= cfg.freeze_after_failures ||
      health.age_ns > cfg.stale_max_age_ns) {
    return LadderRung::Frozen;
  }
  if (health.age_ns > cfg.fresh_max_age_ns) return LadderRung::Stale;
  return LadderRung::Fresh;
}

bool Ladder::advance(std::uint64_t now_ns, const LadderHealth& health,
                     std::string_view reason, LadderTransition* out) {
  const LadderRung next = ladder_rung(cfg_, health);
  if (next == rung_) return false;
  LadderTransition t;
  t.at_ns = now_ns;
  t.from = rung_;
  t.to = next;
  t.reason = std::string(reason);
  rung_ = next;
  transitions_.push_back(t);
  if (out != nullptr) *out = std::move(t);
  return true;
}

void Ladder::encode(guard::ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(rung_));
  w.u64(transitions_.size());
  for (const LadderTransition& t : transitions_) {
    w.u64(t.at_ns);
    w.u8(static_cast<std::uint8_t>(t.from));
    w.u8(static_cast<std::uint8_t>(t.to));
    w.str(t.reason);
  }
}

bool Ladder::decode(guard::ByteReader& r) {
  const std::uint8_t rung = r.u8();
  if (rung > static_cast<std::uint8_t>(LadderRung::Reject)) return false;
  rung_ = static_cast<LadderRung>(rung);
  const std::uint64_t count = r.u64();
  if (!r.ok() || count > r.remaining()) return false;
  transitions_.clear();
  transitions_.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    LadderTransition t;
    t.at_ns = r.u64();
    const std::uint8_t from = r.u8();
    const std::uint8_t to = r.u8();
    if (from > static_cast<std::uint8_t>(LadderRung::Reject) ||
        to > static_cast<std::uint8_t>(LadderRung::Reject)) {
      return false;
    }
    t.from = static_cast<LadderRung>(from);
    t.to = static_cast<LadderRung>(to);
    t.reason = r.str();
    transitions_.push_back(std::move(t));
  }
  return r.ok();
}

}  // namespace ranycast::serve
