#include "ranycast/serve/fault.hpp"

#include <algorithm>

#include "ranycast/core/crc32.hpp"
#include "ranycast/core/rng.hpp"

namespace ranycast::serve {

namespace {

bool covers(const ServeFaultEvent& e, std::uint64_t t_ns) noexcept {
  return t_ns >= e.at_ns && t_ns - e.at_ns < e.duration_ns;
}

}  // namespace

std::string_view to_string(ServeFaultKind kind) noexcept {
  switch (kind) {
    case ServeFaultKind::BuildFail: return "build_fail";
    case ServeFaultKind::BuildStall: return "build_stall";
    case ServeFaultKind::SlowQuery: return "slow_query";
    case ServeFaultKind::ClockSkew: return "clock_skew";
  }
  return "unknown";
}

std::string describe(const ServeFaultEvent& e) {
  std::string out(to_string(e.kind));
  out += "@" + std::to_string(e.at_ns);
  if (e.kind == ServeFaultKind::ClockSkew) {
    out += " skew=" + std::to_string(e.skew_ns) + "ns";
  } else {
    out += " for " + std::to_string(e.duration_ns) + "ns";
    if (e.extra_ns != 0) out += " extra=" + std::to_string(e.extra_ns) + "ns";
  }
  return out;
}

bool FaultPlan::build_fails(std::uint64_t t_ns) const noexcept {
  for (const ServeFaultEvent& e : events) {
    if (e.kind == ServeFaultKind::BuildFail && covers(e, t_ns)) return true;
  }
  return false;
}

std::uint64_t FaultPlan::stall_extra_ns(std::uint64_t t_ns) const noexcept {
  std::uint64_t extra = 0;
  for (const ServeFaultEvent& e : events) {
    if (e.kind == ServeFaultKind::BuildStall && covers(e, t_ns)) extra += e.extra_ns;
  }
  return extra;
}

std::uint64_t FaultPlan::query_extra_ns(std::uint64_t t_ns) const noexcept {
  std::uint64_t extra = 0;
  for (const ServeFaultEvent& e : events) {
    if (e.kind == ServeFaultKind::SlowQuery && covers(e, t_ns)) extra += e.extra_ns;
  }
  return extra;
}

std::int64_t FaultPlan::skew_ns(std::uint64_t t_ns) const noexcept {
  std::int64_t skew = 0;
  for (const ServeFaultEvent& e : events) {
    if (e.kind == ServeFaultKind::ClockSkew && e.at_ns <= t_ns) skew += e.skew_ns;
  }
  return skew;
}

std::uint64_t FaultPlan::staleness_now_ns(std::uint64_t t_ns) const noexcept {
  const std::int64_t skew = skew_ns(t_ns);
  if (skew >= 0) return t_ns + static_cast<std::uint64_t>(skew);
  const auto back = static_cast<std::uint64_t>(-skew);
  return t_ns > back ? t_ns - back : 0;
}

std::uint64_t FaultPlan::fingerprint() const noexcept {
  std::uint64_t h = hash_combine(seed, events.size());
  for (const ServeFaultEvent& e : events) {
    const std::string d = describe(e);
    h = hash_combine(h, core::crc32(d.data(), d.size()));
  }
  return h;
}

void FaultPlan::encode(guard::ByteWriter& w) const {
  w.u64(seed);
  w.u64(events.size());
  for (const ServeFaultEvent& e : events) {
    w.u8(static_cast<std::uint8_t>(e.kind));
    w.u64(e.at_ns);
    w.u64(e.duration_ns);
    w.u64(e.extra_ns);
    w.u64(static_cast<std::uint64_t>(e.skew_ns));
  }
}

bool FaultPlan::decode(guard::ByteReader& r) {
  seed = r.u64();
  const std::uint64_t count = r.u64();
  if (!r.ok() || count > r.remaining()) return false;
  events.clear();
  events.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    ServeFaultEvent e;
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(ServeFaultKind::ClockSkew)) return false;
    e.kind = static_cast<ServeFaultKind>(kind);
    e.at_ns = r.u64();
    e.duration_ns = r.u64();
    e.extra_ns = r.u64();
    e.skew_ns = static_cast<std::int64_t>(r.u64());
    events.push_back(e);
  }
  return r.ok();
}

FaultPlan FaultPlan::storm(std::uint64_t seed, std::uint64_t horizon_ns,
                           double intensity) {
  FaultPlan plan;
  plan.seed = seed;
  const double density = std::clamp(intensity, 0.0, 1.0);
  if (horizon_ns == 0 || density <= 0.0) return plan;
  Rng rng(hash_combine(seed, 0x53455256u));  // "SERV"
  const std::uint64_t slots = 8 + static_cast<std::uint64_t>(24.0 * density);
  const std::uint64_t slot_ns = std::max<std::uint64_t>(horizon_ns / slots, 1);
  for (std::uint64_t s = 0; s < slots; ++s) {
    if (!rng.chance(density)) continue;
    ServeFaultEvent e;
    e.kind = static_cast<ServeFaultKind>(rng.below(4));
    e.at_ns = s * slot_ns + rng.below(slot_ns / 4 + 1);
    switch (e.kind) {
      case ServeFaultKind::BuildFail:
        e.duration_ns = slot_ns / 2 + rng.below(slot_ns / 2 + 1);
        break;
      case ServeFaultKind::BuildStall:
        e.duration_ns = slot_ns / 2 + rng.below(slot_ns / 2 + 1);
        e.extra_ns = slot_ns / 4 + rng.below(slot_ns / 2 + 1);
        break;
      case ServeFaultKind::SlowQuery:
        e.duration_ns = slot_ns / 2 + rng.below(slot_ns / 2 + 1);
        e.extra_ns = 200'000 + rng.below(2'000'000);
        break;
      case ServeFaultKind::ClockSkew:
        e.skew_ns = static_cast<std::int64_t>(rng.below(slot_ns)) -
                    static_cast<std::int64_t>(slot_ns / 2);
        break;
    }
    plan.events.push_back(e);
  }
  return plan;
}

}  // namespace ranycast::serve
