#include "ranycast/serve/server.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "ranycast/core/crc32.hpp"
#include "ranycast/core/rng.hpp"
#include "ranycast/io/config.hpp"
#include "ranycast/obs/journal.hpp"
#include "ranycast/obs/metrics.hpp"

namespace ranycast::serve {

namespace {

using ranycast::hash_combine;

obs::Counter& status_counter(QueryStatus status) {
  static obs::Counter& served = obs::MetricsRegistry::global().counter("serve.served");
  static obs::Counter& shed_queue =
      obs::MetricsRegistry::global().counter("serve.shed.queue");
  static obs::Counter& shed_deadline =
      obs::MetricsRegistry::global().counter("serve.shed.deadline");
  static obs::Counter& shed_rate =
      obs::MetricsRegistry::global().counter("serve.shed.rate");
  static obs::Counter& rejected = obs::MetricsRegistry::global().counter("serve.rejected");
  switch (status) {
    case QueryStatus::Served: return served;
    case QueryStatus::ShedQueue: return shed_queue;
    case QueryStatus::ShedDeadline: return shed_deadline;
    case QueryStatus::ShedRate: return shed_rate;
    case QueryStatus::Rejected: break;
  }
  return rejected;
}

std::uint64_t crc_of(std::string_view s) {
  return core::crc32(s.data(), s.size());
}

}  // namespace

std::string_view to_string(QueryStatus status) noexcept {
  switch (status) {
    case QueryStatus::Served: return "served";
    case QueryStatus::ShedQueue: return "shed_queue";
    case QueryStatus::ShedDeadline: return "shed_deadline";
    case QueryStatus::ShedRate: return "shed_rate";
    case QueryStatus::Rejected: return "rejected";
  }
  return "unknown";
}

void LatencyDigest::record_ns(std::uint64_t latency_ns) {
  const std::uint64_t us = (latency_ns + 999) / 1000;
  std::size_t bucket = kBuckets - 1;
  for (std::size_t i = 0; i < std::size(kBoundsUs); ++i) {
    if (us <= kBoundsUs[i]) {
      bucket = i;
      break;
    }
  }
  ++buckets_[bucket];
  ++count_;
  sum_us_ += us;
  max_us_ = std::max(max_us_, us);
}

std::uint64_t LatencyDigest::quantile_us(double q) const noexcept {
  if (count_ == 0) return 0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  auto target = static_cast<std::uint64_t>(std::ceil(clamped * static_cast<double>(count_)));
  target = std::clamp<std::uint64_t>(target, 1, count_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= target) {
      return i < std::size(kBoundsUs) ? kBoundsUs[i] : max_us_;
    }
  }
  return max_us_;
}

void LatencyDigest::encode(guard::ByteWriter& w) const {
  for (std::uint64_t b : buckets_) w.u64(b);
  w.u64(count_);
  w.u64(sum_us_);
  w.u64(max_us_);
}

bool LatencyDigest::decode(guard::ByteReader& r) {
  std::uint64_t total = 0;
  for (std::uint64_t& b : buckets_) {
    b = r.u64();
    total += b;
  }
  count_ = r.u64();
  sum_us_ = r.u64();
  max_us_ = r.u64();
  return r.ok() && total == count_;
}

Server::Server(lab::Lab& laboratory, const lab::DeploymentHandle& handle, ServeConfig cfg)
    : lab_(laboratory),
      handle_(handle),
      cfg_(std::move(cfg)),
      engine_(laboratory, handle),
      ladder_(cfg_.ladder),
      admission_(cfg_.admission) {}

std::uint64_t Server::fingerprint() const {
  std::uint64_t h = io::config_fingerprint(lab_.config());
  h = hash_combine(h, crc_of(handle_.deployment.name()));
  h = hash_combine(h, crc_of(cfg_.world_plan.name));
  for (const chaos::FaultEvent& e : cfg_.world_plan.events) {
    h = hash_combine(h, crc_of(chaos::describe(e)));
  }
  h = hash_combine(h, cfg_.faults.fingerprint());
  h = hash_combine(h, cfg_.seed);
  h = hash_combine(h, cfg_.refresh_interval_ns);
  h = hash_combine(h, cfg_.build_time_ns);
  h = hash_combine(h, cfg_.ladder.fresh_max_age_ns);
  h = hash_combine(h, cfg_.ladder.stale_max_age_ns);
  h = hash_combine(h, cfg_.ladder.reject_after_age_ns);
  h = hash_combine(h, cfg_.ladder.freeze_after_failures);
  h = hash_combine(h, std::bit_cast<std::uint64_t>(cfg_.admission.rate_qps));
  h = hash_combine(h, cfg_.admission.burst);
  h = hash_combine(h, cfg_.admission.max_queue_depth);
  h = hash_combine(h, cfg_.admission.service_time_ns);
  return h;
}

LadderHealth Server::health_at(std::uint64_t now_ns) const {
  LadderHealth health;
  std::shared_ptr<const WorldSnapshot> snap;
  {
    const std::lock_guard<std::mutex> lock(snapshot_mutex_);
    snap = snapshot_;
  }
  health.has_snapshot = snap != nullptr;
  if (snap) {
    // Staleness is measured on the (possibly skewed) staleness clock; the
    // scheduler keeps running on plain virtual time.
    const std::uint64_t s_now = cfg_.faults.staleness_now_ns(now_ns);
    health.age_ns = s_now > snap->built_at_ns ? s_now - snap->built_at_ns : 0;
  }
  health.consecutive_failures = consecutive_failures_;
  return health;
}

void Server::journal_transition(const LadderTransition& t) const {
  using F = obs::JournalField;
  // Durable: the ladder history is part of the crash story — a restart must
  // be able to reconstruct every rung the dead process admitted to.
  obs::journal_event("serve_ladder",
                     {F::u64_field("at_ns", t.at_ns),
                      F::str("from", std::string(to_string(t.from))),
                      F::str("to", std::string(to_string(t.to))),
                      F::str("reason", t.reason)},
                     /*durable=*/true);
}

void Server::advance_ladder(std::uint64_t now_ns, std::string_view reason) {
  LadderTransition t;
  if (ladder_.advance(now_ns, health_at(now_ns), reason, &t)) {
    journal_transition(t);
  }
}

std::string Server::start_build(std::uint64_t t_ns) {
  build_started_ns_ = t_ns;
  build_will_fail_ = cfg_.faults.build_fails(t_ns);
  build_done_at_ns_ = t_ns + cfg_.build_time_ns + cfg_.faults.stall_extra_ns(t_ns);
  next_build_at_ns_ = t_ns + std::max<std::uint64_t>(cfg_.refresh_interval_ns, 1);
  building_ = true;
  pending_.reset();
  if (!build_will_fail_) {
    // The world drifts one chaos event per successful build start: a failed
    // build consumes nothing, so the retry rebuilds against the same world.
    if (world_events_applied_ < cfg_.world_plan.events.size()) {
      const chaos::FaultEvent& e =
          cfg_.world_plan.events[static_cast<std::size_t>(world_events_applied_)];
      std::string err = engine_.apply_event(e);
      if (!err.empty()) {
        building_ = false;
        return err;
      }
      ++world_events_applied_;
      ++stats_.world_events_applied;
    }
    WorldSnapshot snap =
        build_snapshot(lab_, handle_, epoch_counter_ + 1, build_done_at_ns_);
    pending_ = std::make_shared<const WorldSnapshot>(std::move(snap));
  }
  return {};
}

void Server::finish_build() {
  using F = obs::JournalField;
  const std::uint64_t done_ns = build_done_at_ns_;
  building_ = false;
  if (build_will_fail_ || pending_ == nullptr) {
    ++consecutive_failures_;
    ++stats_.builds_failed;
    pending_.reset();
    obs::journal_event("serve_build",
                       {F::u64_field("at_ns", done_ns), F::bool_field("ok", false),
                        F::u64_field("failures", consecutive_failures_)},
                       /*durable=*/true);
    advance_ladder(done_ns, "refresh_failure");
    return;
  }
  const std::uint64_t epoch = pending_->epoch;
  if (crash_hook_) crash_hook_("pre_publish", epoch);
  {
    const std::lock_guard<std::mutex> lock(snapshot_mutex_);
    snapshot_ = pending_;
  }
  if (crash_hook_) crash_hook_("post_publish", epoch);
  epoch_counter_ = epoch;
  const std::uint64_t snapshot_fp = pending_->fingerprint;
  pending_.reset();
  consecutive_failures_ = 0;
  ++stats_.epochs_published;
  obs::journal_event("serve_epoch",
                     {F::u64_field("epoch", epoch), F::u64_field("at_ns", done_ns),
                      F::u64_field("fingerprint", snapshot_fp),
                      F::u64_field("world_events", world_events_applied_)},
                     /*durable=*/true);
  advance_ladder(done_ns, "published");
}

core::Expected<std::monostate, std::string> Server::tick(std::uint64_t now_ns) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (;;) {
    if (building_) {
      if (now_ns < build_done_at_ns_) break;
      finish_build();
      continue;
    }
    if (now_ns >= next_build_at_ns_) {
      std::string err = start_build(next_build_at_ns_);
      if (!err.empty()) return core::unexpected(std::move(err));
      continue;
    }
    break;
  }
  advance_ladder(now_ns, "tick");
  return std::monostate{};
}

QueryResult Server::query(std::uint64_t client, std::uint64_t now_ns,
                          std::uint64_t budget_us) {
  static obs::Counter& queries = obs::MetricsRegistry::global().counter("serve.queries");
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.queries;
  queries.add();
  advance_ladder(now_ns, "query");
  QueryResult result;
  result.rung = ladder_.rung();
  if (result.rung == LadderRung::Reject) {
    result.status = QueryStatus::Rejected;
    ++stats_.rejected;
    status_counter(result.status).add();
    return result;
  }
  const Admitted admitted =
      admission_.offer(now_ns, budget_us, cfg_.faults.query_extra_ns(now_ns));
  switch (admitted.decision) {
    case AdmitDecision::ShedQueue:
      result.status = QueryStatus::ShedQueue;
      ++stats_.shed_queue;
      break;
    case AdmitDecision::ShedDeadline:
      result.status = QueryStatus::ShedDeadline;
      ++stats_.shed_deadline;
      break;
    case AdmitDecision::ShedRate:
      result.status = QueryStatus::ShedRate;
      ++stats_.shed_rate;
      break;
    case AdmitDecision::Admit: {
      std::shared_ptr<const WorldSnapshot> snap;
      {
        const std::lock_guard<std::mutex> pin_lock(snapshot_mutex_);
        snap = snapshot_;
      }
      // rung != Reject implies a snapshot is published.
      result.status = QueryStatus::Served;
      result.epoch = snap->epoch;
      result.fingerprint = snap->fingerprint;
      result.latency_us = (admitted.latency_ns + 999) / 1000;
      if (!snap->entries.empty()) {
        result.entry = snap->entries[static_cast<std::size_t>(
            client % snap->entries.size())];
      }
      ++stats_.served;
      latency_.record_ns(admitted.latency_ns);
      break;
    }
  }
  status_counter(result.status).add();
  return result;
}

std::shared_ptr<const WorldSnapshot> Server::pin() const {
  const std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

LadderRung Server::rung() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return ladder_.rung();
}

ServeStats Server::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::uint64_t Server::current_epoch() const {
  const std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_ ? snapshot_->epoch : 0;
}

void Server::save(guard::ByteWriter& w) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  w.u64(next_build_at_ns_);
  w.u8(building_ ? 1 : 0);
  w.u8(build_will_fail_ ? 1 : 0);
  w.u64(build_started_ns_);
  w.u64(build_done_at_ns_);
  w.u64(epoch_counter_);
  w.u32(consecutive_failures_);
  w.u64(world_events_applied_);
  {
    const std::lock_guard<std::mutex> snap_lock(snapshot_mutex_);
    w.u8(snapshot_ ? 1 : 0);
    if (snapshot_) encode_snapshot(w, *snapshot_);
  }
  ladder_.encode(w);
  admission_.encode(w);
  latency_.encode(w);
  w.u64(stats_.queries);
  w.u64(stats_.served);
  w.u64(stats_.shed_queue);
  w.u64(stats_.shed_deadline);
  w.u64(stats_.shed_rate);
  w.u64(stats_.rejected);
  w.u64(stats_.epochs_published);
  w.u64(stats_.builds_failed);
  w.u64(stats_.world_events_applied);
}

bool Server::load(guard::ByteReader& r) {
  const std::lock_guard<std::mutex> lock(mutex_);
  next_build_at_ns_ = r.u64();
  const bool was_building = r.u8() != 0;
  build_will_fail_ = r.u8() != 0;
  build_started_ns_ = r.u64();
  build_done_at_ns_ = r.u64();
  epoch_counter_ = r.u64();
  consecutive_failures_ = r.u32();
  world_events_applied_ = r.u64();
  if (!r.ok() || world_events_applied_ > cfg_.world_plan.events.size()) return false;
  std::shared_ptr<const WorldSnapshot> restored;
  if (r.u8() != 0) {
    auto snap = std::make_shared<WorldSnapshot>();
    if (!decode_snapshot(r, *snap)) return false;
    restored = std::move(snap);
  }
  if (!ladder_.decode(r) || !admission_.decode(r) || !latency_.decode(r)) return false;
  stats_.queries = r.u64();
  stats_.served = r.u64();
  stats_.shed_queue = r.u64();
  stats_.shed_deadline = r.u64();
  stats_.shed_rate = r.u64();
  stats_.rejected = r.u64();
  stats_.epochs_published = r.u64();
  stats_.builds_failed = r.u64();
  stats_.world_events_applied = r.u64();
  if (!r.ok()) return false;
  // Fast-forward the world: re-apply the events the dead process consumed,
  // in order, so the lab reaches the exact state the checkpoint was taken
  // in. The mutations are deterministic; measurements are pure in lab
  // state, so the rebuilt snapshots match byte for byte.
  for (std::uint64_t i = 0; i < world_events_applied_; ++i) {
    const std::string err =
        engine_.apply_event(cfg_.world_plan.events[static_cast<std::size_t>(i)]);
    if (!err.empty()) return false;
  }
  {
    const std::lock_guard<std::mutex> snap_lock(snapshot_mutex_);
    snapshot_ = std::move(restored);
  }
  // An interrupted in-flight build is restarted from scratch on the next
  // tick: rebuilding is idempotent (the world event was already consumed and
  // replayed above), so the published epoch stream is unchanged.
  building_ = was_building;
  pending_.reset();
  if (building_) {
    if (build_will_fail_) {
      // Failed builds carry no snapshot; nothing to rebuild.
    } else {
      WorldSnapshot snap =
          build_snapshot(lab_, handle_, epoch_counter_ + 1, build_done_at_ns_);
      pending_ = std::make_shared<const WorldSnapshot>(std::move(snap));
    }
  }
  return true;
}

}  // namespace ranycast::serve
