// Small string helpers used across modules (no locale dependence).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ranycast::strings {

/// Split on a single-character delimiter; empty fields are preserved.
std::vector<std::string_view> split(std::string_view text, char delim);

/// Join the pieces with the given separator.
std::string join(const std::vector<std::string>& pieces, std::string_view sep);

/// ASCII lowercase copy.
std::string to_lower(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// Boolean reading of flag/environment values: "", "0", "false" and "off"
/// (ASCII case-insensitive) are false, anything else is true.
bool truthy(std::string_view text);

}  // namespace ranycast::strings
