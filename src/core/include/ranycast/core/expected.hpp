// A minimal expected<T, E>: either a value or a typed error.
//
// The library's hardened error paths (configuration loading, scenario
// parsing, the chaos engine) return Expected instead of throwing, so CLIs
// can print an actionable message and exit nonzero instead of aborting
// through an unhandled exception. Close in spirit to std::expected (C++23),
// restricted to what the codebase needs: distinct T/E construction via the
// Unexpected wrapper, value/error access, and value_or.
#pragma once

#include <cassert>
#include <utility>
#include <variant>

namespace ranycast::core {

/// Wrapper marking a constructor argument as the error alternative, so
/// Expected<T, E> stays unambiguous even when T and E are convertible.
template <typename E>
struct Unexpected {
  E error;
};

template <typename E>
Unexpected<std::decay_t<E>> unexpected(E&& e) {
  return Unexpected<std::decay_t<E>>{std::forward<E>(e)};
}

template <typename T, typename E>
class Expected {
 public:
  Expected(T value) : storage_(std::in_place_index<0>, std::move(value)) {}
  Expected(Unexpected<E> u) : storage_(std::in_place_index<1>, std::move(u.error)) {}

  bool has_value() const noexcept { return storage_.index() == 0; }
  explicit operator bool() const noexcept { return has_value(); }

  T& value() & {
    assert(has_value());
    return std::get<0>(storage_);
  }
  const T& value() const& {
    assert(has_value());
    return std::get<0>(storage_);
  }
  T&& value() && {
    assert(has_value());
    return std::get<0>(std::move(storage_));
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

  E& error() & {
    assert(!has_value());
    return std::get<1>(storage_);
  }
  const E& error() const& {
    assert(!has_value());
    return std::get<1>(storage_);
  }
  E&& error() && {
    assert(!has_value());
    return std::get<1>(std::move(storage_));
  }

  T value_or(T fallback) const& { return has_value() ? value() : std::move(fallback); }

 private:
  std::variant<T, E> storage_;
};

}  // namespace ranycast::core
