// IPv4 address and prefix value types with parsing/formatting helpers.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace ranycast {

/// IPv4 address stored in host byte order.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t bits) noexcept : bits_(bits) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d) noexcept
      : bits_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) | (std::uint32_t{c} << 8) | d) {}

  constexpr std::uint32_t bits() const noexcept { return bits_; }
  constexpr std::uint8_t octet(int i) const noexcept {
    return static_cast<std::uint8_t>(bits_ >> (8 * (3 - i)));
  }

  constexpr auto operator<=>(const Ipv4Addr&) const = default;

  /// Parse dotted-quad notation; returns nullopt on malformed input.
  static std::optional<Ipv4Addr> parse(std::string_view text);

  std::string to_string() const;

 private:
  std::uint32_t bits_{0};
};

/// CIDR prefix (address + mask length). The address is stored canonicalized
/// (host bits zeroed), which is a class invariant.
class Prefix {
 public:
  constexpr Prefix() = default;
  constexpr Prefix(Ipv4Addr addr, int len) noexcept
      : addr_(Ipv4Addr{len == 0 ? 0u : (addr.bits() & (~0u << (32 - len)))}), len_(len) {}

  constexpr Ipv4Addr address() const noexcept { return addr_; }
  constexpr int length() const noexcept { return len_; }

  constexpr bool contains(Ipv4Addr a) const noexcept {
    if (len_ == 0) return true;
    return (a.bits() & (~0u << (32 - len_))) == addr_.bits();
  }

  /// Number of addresses covered by this prefix.
  constexpr std::uint64_t size() const noexcept { return std::uint64_t{1} << (32 - len_); }

  /// The i-th address inside the prefix (no bounds check beyond the mask).
  constexpr Ipv4Addr at(std::uint32_t i) const noexcept { return Ipv4Addr{addr_.bits() + i}; }

  constexpr auto operator<=>(const Prefix&) const = default;

  static std::optional<Prefix> parse(std::string_view text);

  std::string to_string() const;

 private:
  Ipv4Addr addr_{};
  int len_{0};
};

}  // namespace ranycast

template <>
struct std::hash<ranycast::Ipv4Addr> {
  std::size_t operator()(ranycast::Ipv4Addr a) const noexcept {
    return std::hash<std::uint32_t>{}(a.bits());
  }
};

template <>
struct std::hash<ranycast::Prefix> {
  std::size_t operator()(const ranycast::Prefix& p) const noexcept {
    return std::hash<std::uint32_t>{}(p.address().bits()) * 31 +
           static_cast<std::size_t>(p.length());
  }
};
