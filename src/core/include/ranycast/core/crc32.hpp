// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven and header-only.
//
// Used to checksum guard checkpoints so a truncated or bit-flipped file is
// rejected before any of its payload is trusted. Matches zlib's crc32 for
// the same byte stream (standard reflected algorithm, initial value and
// final XOR of 0xFFFFFFFF).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace ranycast::core {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();

}  // namespace detail

/// Incrementally extend a CRC-32. Start from crc32_init(), feed byte ranges
/// in order, finish with crc32_final().
constexpr std::uint32_t crc32_init() noexcept { return 0xFFFFFFFFu; }

inline std::uint32_t crc32_update(std::uint32_t state, const void* data,
                                  std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    state = detail::kCrc32Table[(state ^ bytes[i]) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

constexpr std::uint32_t crc32_final(std::uint32_t state) noexcept {
  return state ^ 0xFFFFFFFFu;
}

/// One-shot CRC-32 of a byte range.
inline std::uint32_t crc32(const void* data, std::size_t size) noexcept {
  return crc32_final(crc32_update(crc32_init(), data, size));
}

}  // namespace ranycast::core
