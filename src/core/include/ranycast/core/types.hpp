// Fundamental strong value types shared across the ranycast library.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>

namespace ranycast {

/// Autonomous System Number. 32-bit per RFC 6793.
enum class Asn : std::uint32_t {};

constexpr Asn kInvalidAsn{0xFFFFFFFFu};

constexpr std::uint32_t value(Asn a) noexcept { return static_cast<std::uint32_t>(a); }
constexpr Asn make_asn(std::uint32_t v) noexcept { return static_cast<Asn>(v); }

/// Round-trip time in milliseconds. Plain double wrapped in a struct so that
/// RTTs cannot be silently mixed with distances or counts.
struct Rtt {
  double ms{0.0};

  constexpr auto operator<=>(const Rtt&) const = default;
  constexpr Rtt operator+(Rtt o) const noexcept { return {ms + o.ms}; }
  constexpr Rtt operator-(Rtt o) const noexcept { return {ms - o.ms}; }
  constexpr Rtt& operator+=(Rtt o) noexcept {
    ms += o.ms;
    return *this;
  }
};

constexpr Rtt kInfiniteRtt{std::numeric_limits<double>::infinity()};

/// Great-circle distance in kilometres.
struct Km {
  double km{0.0};

  constexpr auto operator<=>(const Km&) const = default;
  constexpr Km operator+(Km o) const noexcept { return {km + o.km}; }
  constexpr Km operator-(Km o) const noexcept { return {km - o.km}; }
  constexpr Km& operator+=(Km o) noexcept {
    km += o.km;
    return *this;
  }
};

/// Identifier of a city in the embedded gazetteer (index into the city table).
enum class CityId : std::uint16_t {};
constexpr CityId kInvalidCity{0xFFFFu};
constexpr std::uint16_t value(CityId c) noexcept { return static_cast<std::uint16_t>(c); }

/// Identifier of an anycast site within a deployment.
enum class SiteId : std::uint16_t {};
constexpr SiteId kInvalidSite{0xFFFFu};
constexpr std::uint16_t value(SiteId s) noexcept { return static_cast<std::uint16_t>(s); }

/// Identifier of a measurement probe.
enum class ProbeId : std::uint32_t {};
constexpr std::uint32_t value(ProbeId p) noexcept { return static_cast<std::uint32_t>(p); }

}  // namespace ranycast

template <>
struct std::hash<ranycast::Asn> {
  std::size_t operator()(ranycast::Asn a) const noexcept {
    return std::hash<std::uint32_t>{}(ranycast::value(a));
  }
};

template <>
struct std::hash<ranycast::CityId> {
  std::size_t operator()(ranycast::CityId c) const noexcept {
    return std::hash<std::uint16_t>{}(ranycast::value(c));
  }
};

template <>
struct std::hash<ranycast::SiteId> {
  std::size_t operator()(ranycast::SiteId s) const noexcept {
    return std::hash<std::uint16_t>{}(ranycast::value(s));
  }
};

template <>
struct std::hash<ranycast::ProbeId> {
  std::size_t operator()(ranycast::ProbeId p) const noexcept {
    return std::hash<std::uint32_t>{}(ranycast::value(p));
  }
};
