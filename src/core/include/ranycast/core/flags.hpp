// Minimal command-line flag parsing for the tools/ binaries.
//
// Supports --name=value, --name value, and boolean --name forms. Unknown
// flags are collected so tools can reject typos explicitly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ranycast::flags {

class Parser {
 public:
  Parser(int argc, const char* const* argv);

  /// Flag value as string, if present (boolean flags yield "true").
  std::optional<std::string> get(const std::string& name) const;

  std::string get_or(const std::string& name, std::string fallback) const;
  std::int64_t get_or(const std::string& name, std::int64_t fallback) const;
  double get_or(const std::string& name, double fallback) const;
  bool has(const std::string& name) const { return values_.count(name) > 0; }

  /// Non-flag positional arguments, in order.
  const std::vector<std::string>& positional() const noexcept { return positional_; }

  /// Names the caller never queried are reported here after validate().
  std::vector<std::string> unknown(const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace ranycast::flags
