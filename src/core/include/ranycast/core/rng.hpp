// Deterministic random number generation.
//
// All stochastic components of the library take an explicit seed; there is no
// global RNG and no dependence on wall-clock time, so every experiment is
// reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <cmath>
#include <numbers>
#include <span>

namespace ranycast {

/// SplitMix64 — used to expand a single seed into independent stream seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix; handy for deterministic tie-breaking by hashing ids.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ull;
  x ^= x >> 33;
  return x;
}

constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return mix64(a ^ (b + 0x9E3779B97F4A7C15ull + (a << 6) + (a >> 2)));
}

/// xoshiro256** — the library's workhorse generator. Satisfies
/// std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) noexcept {
    // Lemire's nearly-divisionless bounded sampling, biased variant is fine
    // for simulation purposes at 64-bit width.
    return static_cast<std::uint64_t>((static_cast<unsigned __int128>((*this)()) * n) >> 64);
  }

  /// Bernoulli trial.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Standard normal via Box-Muller.
  double normal() noexcept {
    const double u1 = 1.0 - uniform();  // avoid log(0)
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

  /// Exponential with the given mean.
  double exponential(double mean) noexcept { return -mean * std::log(1.0 - uniform()); }

  /// Pick a random element index from a non-empty span of weights.
  std::size_t weighted_index(std::span<const double> weights) noexcept {
    double total = 0.0;
    for (double w : weights) total += w;
    double r = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r <= 0.0) return i;
    }
    return weights.size() - 1;
  }

  /// Derive an independent child generator; used to give each subsystem its
  /// own stream so that adding draws in one module does not perturb another.
  Rng fork(std::uint64_t stream_tag) noexcept {
    return Rng{hash_combine((*this)(), stream_tag)};
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace ranycast
