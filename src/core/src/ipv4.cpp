#include "ranycast/core/ipv4.hpp"

#include <charconv>

namespace ranycast {

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) {
  std::uint32_t bits = 0;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  for (int i = 0; i < 4; ++i) {
    unsigned octet = 0;
    auto [next, ec] = std::from_chars(p, end, octet);
    if (ec != std::errc{} || octet > 255) return std::nullopt;
    bits = (bits << 8) | octet;
    p = next;
    if (i < 3) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return Ipv4Addr{bits};
}

std::string Ipv4Addr::to_string() const {
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i) out.push_back('.');
    out += std::to_string(octet(i));
  }
  return out;
}

std::optional<Prefix> Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = Ipv4Addr::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  int len = 0;
  const auto len_text = text.substr(slash + 1);
  auto [next, ec] = std::from_chars(len_text.data(), len_text.data() + len_text.size(), len);
  if (ec != std::errc{} || next != len_text.data() + len_text.size()) return std::nullopt;
  if (len < 0 || len > 32) return std::nullopt;
  return Prefix{*addr, len};
}

std::string Prefix::to_string() const {
  return addr_.to_string() + "/" + std::to_string(len_);
}

}  // namespace ranycast
