#include "ranycast/core/strings.hpp"

#include <algorithm>
#include <cctype>

namespace ranycast::strings {

std::vector<std::string_view> split(std::string_view text, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const auto pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

bool truthy(std::string_view text) {
  const std::string lower = to_lower(text);
  return !(lower.empty() || lower == "0" || lower == "false" || lower == "off");
}

}  // namespace ranycast::strings
