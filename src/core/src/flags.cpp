#include "ranycast/core/flags.hpp"

#include <cstdlib>

#include "ranycast/core/strings.hpp"

namespace ranycast::flags {

Parser::Parser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!strings::starts_with(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // --name value (when the next token is not a flag), else boolean.
    if (i + 1 < argc && !strings::starts_with(argv[i + 1], "--")) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";
    }
  }
}

std::optional<std::string> Parser::get(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Parser::get_or(const std::string& name, std::string fallback) const {
  return get(name).value_or(std::move(fallback));
}

std::int64_t Parser::get_or(const std::string& name, std::int64_t fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  return std::strtoll(v->c_str(), nullptr, 10);
}

double Parser::get_or(const std::string& name, double fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  return std::strtod(v->c_str(), nullptr);
}

std::vector<std::string> Parser::unknown(const std::vector<std::string>& known) const {
  std::vector<std::string> out;
  for (const auto& [name, value] : values_) {
    bool found = false;
    for (const auto& k : known) {
      if (k == name) found = true;
    }
    if (!found) out.push_back(name);
  }
  return out;
}

}  // namespace ranycast::flags
