// The measurement laboratory: a façade tying the synthetic Internet, the
// probe platform, the geolocation databases and the CDN deployments
// together, and exposing the measurement primitives the paper's
// methodology is built from (DNS lookups, pings, traceroutes).
//
// Typical use:
//   auto lab = Lab::create({});
//   const auto& im6 = lab.add_deployment(cdn::catalog::imperva6());
//   auto ans = lab.dns_lookup(probe, im6, dns::QueryMode::Ldns);
//   auto rtt = lab.ping(probe, ans.address);
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "ranycast/atlas/census.hpp"
#include "ranycast/bgp/delta_solver.hpp"
#include "ranycast/bgp/path_metrics.hpp"
#include "ranycast/bgp/solver.hpp"
#include "ranycast/cdn/builder.hpp"
#include "ranycast/cdn/deployment.hpp"
#include "ranycast/dns/geo_database.hpp"
#include "ranycast/topo/generator.hpp"
#include "ranycast/topo/ip_registry.hpp"

namespace ranycast::lab {

/// A deployment plus its solved per-region routing.
struct DeploymentHandle {
  cdn::Deployment deployment;
  std::vector<bgp::RoutingOutcome> outcomes;  ///< one per region
  /// Retained incremental-solver state (selection planes per region);
  /// created lazily by Lab::resolve_delta / add_deployment_derived when the
  /// delta path is enabled, null otherwise. A full resolve() discards it
  /// (the planes would be stale against the re-solved outcomes).
  std::unique_ptr<bgp::DeltaSolver> delta;

  const bgp::Route* route_for(Asn client, std::size_t region) const {
    return outcomes[region].route_for(client);
  }
};

/// Measurement-plane degradation (chaos engine): per-attempt packet loss on
/// the active probing paths and resolver timeouts on DNS, with a bounded
/// deterministic retry/backoff policy. Loss decisions are pure hashes of
/// (seed, probe, target, attempt), so a degraded run is exactly reproducible
/// and independent measurements do not perturb each other.
struct MeasurementFaults {
  /// Per-attempt loss probability for ping/traceroute packets.
  double ping_loss_prob{0.0};
  /// Per-attempt timeout probability for DNS resolutions.
  double dns_timeout_prob{0.0};
  /// Retries after the first attempt (total attempts = 1 + max_retries).
  int max_retries{2};
  /// Exponential backoff: attempt k waits backoff_base_ms * 2^k after a
  /// loss. Accounted in telemetry (wasted wall time), never added to RTTs —
  /// a retried ping still measures the true network RTT.
  double backoff_base_ms{50.0};
  std::uint64_t seed{0xFA117};

  bool active() const noexcept { return ping_loss_prob > 0.0 || dns_timeout_prob > 0.0; }
};

struct LabConfig {
  topo::GeneratorParams world;
  atlas::CensusConfig census;
  bgp::LatencyModel latency;
  bgp::TracerouteConfig traceroute;
  /// Error profiles of the three commercial-style geolocation databases.
  std::array<dns::GeoDatabase::Config, 3> geo_dbs{
      dns::GeoDatabase::Config{"maxmind-like", 0.012, 0.80, 0.20, 101},
      dns::GeoDatabase::Config{"ipinfo-like", 0.022, 0.75, 0.25, 202},
      dns::GeoDatabase::Config{"edgescape-like", 0.017, 0.85, 0.22, 303},
  };
  std::uint64_t seed{2023};
  /// Process-wide observability override applied by Lab::create: nullopt
  /// leaves the RANYCAST_OBS environment setting alone, true/false forces
  /// obs::set_enabled. See docs/observability.md.
  std::optional<bool> observability{};
};

class Lab {
 public:
  static Lab create(const LabConfig& config);

  // The geolocation databases hold pointers into this object (registry_,
  // world graph); moving would leave them dangling. Construction via
  // create() relies on guaranteed copy elision.
  Lab(const Lab&) = delete;
  Lab& operator=(const Lab&) = delete;
  Lab(Lab&&) = delete;
  Lab& operator=(Lab&&) = delete;

  const topo::World& world() const noexcept { return *world_; }
  /// Mutable topology access for fault injection. After mutating the graph
  /// (link state, route-server state), previously solved deployment handles
  /// hold stale routes until re-solved with `resolve()`.
  topo::Graph& graph_mut() noexcept { return world_->graph; }
  topo::IpRegistry& registry() noexcept { return registry_; }
  const atlas::ProbeCensus& census() const noexcept { return census_; }
  const bgp::LatencyModel& latency() const noexcept { return config_.latency; }
  const LabConfig& config() const noexcept { return config_; }

  /// The i-th commercial-style geolocation database (0..2).
  const dns::GeoDatabase& db(std::size_t i) const { return *geo_dbs_[i]; }
  /// Mutable access for fault injection (staleness/outage).
  dns::GeoDatabase& db_mut(std::size_t i) { return *geo_dbs_[i]; }
  /// The database CDN operators' DNS mapping uses.
  const dns::GeoDatabase& mapping_db() const { return *geo_dbs_[0]; }

  /// Build a deployment and solve BGP for each of its regional prefixes.
  /// The returned reference stays valid for the Lab's lifetime.
  const DeploymentHandle& add_deployment(const cdn::DeploymentSpec& spec);

  /// Register an already-constructed deployment (e.g. a programmatically
  /// transformed one) and solve its regional prefixes.
  const DeploymentHandle& add_deployment(cdn::Deployment deployment);

  /// Mutable access to a registered deployment handle (fault injection
  /// mutates announcement state in place). `handle` must have been returned
  /// by add_deployment on this Lab; returns nullptr otherwise.
  DeploymentHandle* handle_mut(const DeploymentHandle& handle) noexcept;

  /// Re-solve every regional prefix of a registered deployment in place,
  /// with the same per-region tie-break salts as the original solve — the
  /// re-solve-after-mutation operation the chaos engine is built on. The
  /// routes referenced by earlier route_for() calls are invalidated.
  /// Discards any retained incremental-solver state on the handle.
  void resolve(DeploymentHandle& handle) const;

  // ---- incremental delta re-solving (see bgp/delta_solver.hpp) ----

  /// Runtime knob, deliberately outside LabConfig: the delta path is an
  /// optimization, not a semantic, so it must not enter config fingerprints
  /// (chaos resume compares them). Also settable via the environment:
  /// RANYCAST_DELTA=1 enables, RANYCAST_DELTA_VERIFY=N samples an in-engine
  /// differential check every Nth region resolve.
  void set_delta_config(const bgp::DeltaConfig& cfg) noexcept { delta_cfg_ = cfg; }
  const bgp::DeltaConfig& delta_config() const noexcept { return delta_cfg_; }

  /// resolve(), but told what changed: re-decides only the ASes the delta
  /// can affect, splicing into outcomes byte-identical to a full resolve().
  /// Primes the handle's solver state on first use; falls back to resolve()
  /// when the delta path is disabled. Returns per-step accounting.
  bgp::DeltaStats resolve_delta(DeploymentHandle& handle, const bgp::SolveDelta& delta) const;

  /// Register a deployment derived from `base` by `delta` (e.g. a site
  /// failure: resilience::fail_site), reusing base's primed selection
  /// planes instead of solving every region from scratch. `base`'s
  /// outcomes are left untouched. Falls back to add_deployment when the
  /// delta path is disabled or the region sets are incompatible.
  const DeploymentHandle& add_deployment_derived(const DeploymentHandle& base,
                                                 cdn::Deployment deployment,
                                                 const bgp::SolveDelta& delta);

  // ---- measurement-plane degradation (chaos engine) ----

  void set_measurement_faults(std::optional<MeasurementFaults> faults) noexcept {
    measurement_faults_ = faults;
  }
  const std::optional<MeasurementFaults>& measurement_faults() const noexcept {
    return measurement_faults_;
  }

  /// Solve an ad-hoc origination (used for per-site unicast emulation).
  bgp::RoutingOutcome solve_origins(Asn cdn_asn,
                                    std::span<const bgp::OriginAttachment> origins,
                                    std::uint64_t salt = 0) const;

  // ---- measurement primitives ----

  struct DnsAnswer {
    std::size_t region;
    Ipv4Addr address;
    /// True when the answer came from the degraded path: every resolution
    /// attempt timed out (measurement faults) and the authoritative logic
    /// served its fallback region instead of a geo-mapped one.
    bool degraded{false};
  };

  /// Resolve a deployment-served hostname from a probe.
  DnsAnswer dns_lookup(const atlas::Probe& probe, const DeploymentHandle& handle,
                       dns::QueryMode mode) const;

  /// Ping any address inside a registered deployment's regional prefix.
  /// `salt` perturbs the measurement noise (per-hostname variation).
  /// Returns nullopt when the probe's AS has no route.
  std::optional<Rtt> ping(const atlas::Probe& probe, Ipv4Addr address,
                          std::uint64_t salt = 0) const;

  /// Traceroute from a probe to an address in a registered deployment.
  std::optional<bgp::TracerouteResult> traceroute(const atlas::Probe& probe,
                                                  Ipv4Addr address) const;

  // ---- batch measurement fan-out ----
  //
  // The batch variants answer the same question as N calls of the scalar
  // primitive — slot i holds exactly what the scalar call for probes[i]
  // would have returned — but fan the probes out over the deterministic
  // thread pool (ranycast::exec). Telemetry counters are recorded with the
  // same totals; only their interleaving differs.

  /// dns_lookup for every probe. Safe concurrently: resolution is pure in
  /// (probe, deployment, databases).
  std::vector<DnsAnswer> dns_lookup_all(std::span<const atlas::Probe* const> probes,
                                        const DeploymentHandle& handle,
                                        dns::QueryMode mode) const;

  /// ping for every probe against one address.
  std::vector<std::optional<Rtt>> ping_all(std::span<const atlas::Probe* const> probes,
                                           Ipv4Addr address, std::uint64_t salt = 0) const;

  /// traceroute for every probe against one address. A serial prepass warms
  /// the IP registry in the exact order the sequential loop would have
  /// touched it (first touch fixes an AS's block ordinal), then the hop
  /// synthesis fans out read-only.
  std::vector<std::optional<bgp::TracerouteResult>> traceroute_all(
      std::span<const atlas::Probe* const> probes, Ipv4Addr address) const;

  /// The route a probe's AS selected for a deployment region (nullptr if
  /// unreachable or the address is not registered).
  const bgp::Route* route_of(const atlas::Probe& probe, Ipv4Addr address) const;

  /// Catchment site of a probe for an address (via the selected route).
  std::optional<SiteId> catchment_of(const atlas::Probe& probe, Ipv4Addr address) const;

  /// Which (deployment, region) an address belongs to.
  struct AddressInfo {
    const DeploymentHandle* handle;
    std::size_t region;
  };
  std::optional<AddressInfo> locate_address(Ipv4Addr address) const;

 private:
  explicit Lab(const LabConfig& config);

  LabConfig config_;
  std::unique_ptr<topo::World> world_;
  mutable topo::IpRegistry registry_;
  atlas::ProbeCensus census_;
  std::array<std::unique_ptr<dns::GeoDatabase>, 3> geo_dbs_;
  std::deque<DeploymentHandle> deployments_;  // deque: stable references
  std::optional<MeasurementFaults> measurement_faults_;
  bgp::DeltaConfig delta_cfg_;
};

}  // namespace ranycast::lab
