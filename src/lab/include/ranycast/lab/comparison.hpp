// The paper's §5.3 regional-vs-global comparison methodology.
//
// To compare a regional anycast CDN with a global anycast network of the
// same operator, the paper measures every probe against both, then filters
// out probes whose observations are not comparable:
//   1. probes whose traceroute has no valid penultimate hop,
//   2. probes that reach a site not present in both networks,
//   3. probes that enter the CDN via a peer AS not shared by the co-located
//      site in the other network.
// What remains is aggregated per <city, AS> probe group (medians), giving
// the paired distributions behind Fig. 4c, Fig. 5, Table 3, Table 4 and the
// §5.4 cause analysis.
#pragma once

#include <optional>
#include <vector>

#include "ranycast/analysis/classify.hpp"
#include "ranycast/atlas/grouping.hpp"
#include "ranycast/lab/lab.hpp"

namespace ranycast::lab {

struct PairedGroup {
  CityId city{kInvalidCity};
  Asn asn{kInvalidAsn};
  geo::Area area{geo::Area::EMEA};
  double regional_ms{0.0};
  double global_ms{0.0};
  double regional_km{0.0};  ///< geodesic distance to the regional catchment site
  double global_km{0.0};
  /// Catchment cities (from the representative member's routes).
  CityId regional_site{kInvalidCity};
  CityId global_site{kInvalidCity};
  bool same_site{false};
  /// Route classes at the decision AS (where the two selections diverged).
  bgp::RouteClass regional_cls{bgp::RouteClass::Provider};
  bgp::RouteClass global_cls{bgp::RouteClass::Provider};
  /// Whether the IXP involved in a route-server comparison publishes its
  /// feed (limits peering-type classification, §5.4).
  bool route_server_feed_visible{false};
  /// §5.4 root cause, determined by scanning every AS along the client's
  /// global-anycast path for an overridden preference (the paper walks the
  /// traceroute AS path the same way).
  analysis::ReductionCause cause{analysis::ReductionCause::Unknown};
};

struct ComparisonConfig {
  bool filter_invalid_phop{true};
  bool filter_nonoverlapping_sites{true};
  bool filter_nonoverlapping_peers{true};
  /// Fraction of IXPs that publish route-server feeds (deterministic by
  /// city hash); the paper could classify only 1.6% of its latency
  /// reductions as peering-type overrides for this reason.
  double route_server_feed_fraction{0.35};
};

struct ComparisonResult {
  std::vector<PairedGroup> groups;
  std::size_t groups_total{0};     ///< groups with resolvable measurements
  std::size_t groups_retained{0};  ///< after the §5.3 filters

  double retention_rate() const {
    return groups_total == 0 ? 0.0
                             : static_cast<double>(groups_retained) /
                                   static_cast<double>(groups_total);
  }
};

/// Run the full §5.3 pipeline: resolve, traceroute both networks, filter,
/// group, aggregate.
ComparisonResult compare_regional_global(Lab& lab, const DeploymentHandle& regional,
                                         const DeploymentHandle& global_net,
                                         const ComparisonConfig& config = {});

/// §5.4 cause tally over groups with >5 ms latency reduction.
struct CauseBreakdown {
  std::size_t reduced_groups{0};
  std::size_t as_relationship{0};
  std::size_t peering_type{0};
  std::size_t unknown{0};
};

CauseBreakdown classify_reduction_causes(const ComparisonResult& result,
                                         double threshold_ms = analysis::kMappingThresholdMs);

}  // namespace ranycast::lab
