#include "ranycast/lab/comparison.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

namespace ranycast::lab {

namespace {

/// Per-probe paired measurement before grouping.
struct ProbePair {
  const atlas::Probe* probe;
  double regional_ms, global_ms;
  double regional_km, global_km;
  CityId regional_site, global_site;
  bgp::RouteClass regional_cls, global_cls;
  bool rs_feed_visible;
  analysis::ReductionCause cause;
};

/// Deterministic "does this IXP publish its route-server feed?" bit.
bool feed_published(CityId city, double fraction) {
  return static_cast<double>(mix64(hash_combine(0xFEED, value(city))) % 1000) <
         fraction * 1000.0;
}

/// The peer AS through which a route enters the CDN: the first transit hop.
Asn entry_peer(const bgp::Route& r) {
  return r.as_path.size() > 1 ? r.as_path[1] : kInvalidAsn;
}

/// Does `deployment` have a site at `city` with an attachment to `peer`?
bool site_has_peer(const cdn::Deployment& deployment, CityId city, Asn peer) {
  for (const cdn::Site& s : deployment.sites()) {
    if (s.city != city) continue;
    for (const cdn::Attachment& a : s.attachments) {
      if (a.neighbor == peer) return true;
    }
  }
  return false;
}

bool deployment_has_site_city(const cdn::Deployment& deployment, CityId city) {
  return std::any_of(deployment.sites().begin(), deployment.sites().end(),
                     [city](const cdn::Site& s) { return s.city == city; });
}

/// The AS whose different route selection made the two paths diverge: the
/// AS nearest the client that appears in both AS paths at the same position
/// from the client side. When the first-hop choices already differ, the
/// client's own AS is the decision point.
Asn decision_as(const bgp::Route& regional, const bgp::Route& global_route, Asn client) {
  const auto& r = regional.as_path;
  const auto& g = global_route.as_path;
  Asn common = client;
  std::size_t i = r.size(), j = g.size();
  while (i > 0 && j > 0 && r[i - 1] == g[j - 1]) {
    common = r[i - 1];
    --i;
    --j;
  }
  return common;
}

}  // namespace

ComparisonResult compare_regional_global(Lab& lab, const DeploymentHandle& regional,
                                         const DeploymentHandle& global_net,
                                         const ComparisonConfig& config) {
  const auto& gaz = geo::Gazetteer::world();
  ComparisonResult result;
  const auto retained = lab.census().retained();
  const Ipv4Addr global_ip = global_net.deployment.regions()[0].service_ip;

  // ---- per-probe paired measurements ----
  std::unordered_map<const atlas::Probe*, ProbePair> pairs;
  for (const atlas::Probe* p : retained) {
    const auto answer = lab.dns_lookup(*p, regional, dns::QueryMode::Ldns);
    const bgp::Route* reg_route = regional.route_for(p->asn, answer.region);
    const bgp::Route* glob_route = global_net.route_for(p->asn, 0);
    if (reg_route == nullptr || glob_route == nullptr) continue;

    const auto reg_trace = lab.traceroute(*p, answer.address);
    const auto glob_trace = lab.traceroute(*p, global_ip);
    if (!reg_trace || !glob_trace) continue;
    if (config.filter_invalid_phop && (!reg_trace->phop_valid || !glob_trace->phop_valid)) {
      continue;
    }

    const cdn::Site& reg_site = regional.deployment.site(reg_route->origin_site);
    const cdn::Site& glob_site = global_net.deployment.site(glob_route->origin_site);

    // §5.3 filter 2: both catchment sites must exist in both networks.
    if (config.filter_nonoverlapping_sites &&
        (!deployment_has_site_city(global_net.deployment, reg_site.city) ||
         !deployment_has_site_city(regional.deployment, glob_site.city))) {
      continue;
    }
    // §5.3 filter 3: the entry peer must be shared by the co-located site of
    // the other network.
    if (config.filter_nonoverlapping_peers) {
      const Asn reg_peer = entry_peer(*reg_route);
      const Asn glob_peer = entry_peer(*glob_route);
      if (reg_peer != kInvalidAsn &&
          !site_has_peer(global_net.deployment, reg_site.city, reg_peer)) {
        continue;
      }
      if (glob_peer != kInvalidAsn &&
          !site_has_peer(regional.deployment, glob_site.city, glob_peer)) {
        continue;
      }
    }

    ProbePair pair;
    pair.probe = p;
    pair.regional_ms = reg_trace->rtt.ms;
    pair.global_ms = glob_trace->rtt.ms;
    pair.regional_km = gaz.distance(p->reported_city, reg_site.city).km;
    pair.global_km = gaz.distance(p->reported_city, glob_site.city).km;
    pair.regional_site = reg_site.city;
    pair.global_site = glob_site.city;
    // Route classes at the decision AS (where the two selections diverged).
    const Asn decider = decision_as(*reg_route, *glob_route, p->asn);
    const bgp::Route* reg_at_decider = regional.route_for(decider, answer.region);
    const bgp::Route* glob_at_decider = global_net.route_for(decider, 0);
    pair.regional_cls = reg_at_decider != nullptr ? reg_at_decider->cls : reg_route->cls;
    pair.global_cls = glob_at_decider != nullptr ? glob_at_decider->cls : glob_route->cls;
    pair.rs_feed_visible =
        feed_published(reg_trace->phop().city, config.route_server_feed_fraction);

    // §5.4 root cause: walk the client's global-anycast path from the client
    // side and look for the first AS where an overridden preference shows:
    // the AS holds a customer route globally but only a lower class for the
    // client's regional prefix, or a public-peer route globally vs a
    // route-server route regionally.
    pair.cause = analysis::ReductionCause::Unknown;
    std::vector<Asn> scan{p->asn};
    for (auto it = glob_route->as_path.rbegin(); it != glob_route->as_path.rend(); ++it) {
      scan.push_back(*it);  // client-side first; the front element is cdn_asn
    }
    for (Asn x : scan) {
      const bgp::Route* gx = global_net.route_for(x, 0);
      const bgp::Route* rx = regional.route_for(x, answer.region);
      if (gx == nullptr || rx == nullptr) continue;
      const auto cause = analysis::classify_reduction_cause(*gx, *rx, pair.rs_feed_visible);
      if (cause != analysis::ReductionCause::Unknown) {
        pair.cause = cause;
        break;
      }
      // A confirmed public-vs-route-server comparison without a published
      // feed stays Unknown, as in the paper.
      if (gx->cls == bgp::RouteClass::PeerPublic &&
          rx->cls == bgp::RouteClass::PeerRouteServer) {
        break;
      }
    }
    pairs.emplace(p, pair);
  }

  // ---- group to <city, AS> and aggregate ----
  const auto groups = atlas::group_probes(retained);
  for (const auto& group : groups) {
    std::vector<const ProbePair*> members;
    for (const atlas::Probe* p : group.members) {
      if (const auto it = pairs.find(p); it != pairs.end()) members.push_back(&it->second);
    }
    // Count a group as "measurable" if any member produced measurements at
    // all (for the retention statistic) — against the regional prefix DNS
    // actually maps the member to, not an arbitrary region.
    const bool any_measured =
        std::any_of(group.members.begin(), group.members.end(), [&](const atlas::Probe* p) {
          const auto answer = lab.dns_lookup(*p, regional, dns::QueryMode::Ldns);
          return regional.route_for(p->asn, answer.region) != nullptr;
        });
    if (any_measured) ++result.groups_total;
    if (members.empty()) continue;
    ++result.groups_retained;

    PairedGroup out;
    out.city = group.city;
    out.asn = group.asn;
    out.area = group.area;
    auto median_of = [&](auto&& get) {
      std::vector<double> vals;
      vals.reserve(members.size());
      for (const ProbePair* m : members) vals.push_back(get(*m));
      std::sort(vals.begin(), vals.end());
      const std::size_t n = vals.size();
      return n % 2 == 1 ? vals[n / 2] : 0.5 * (vals[n / 2 - 1] + vals[n / 2]);
    };
    out.regional_ms = median_of([](const ProbePair& m) { return m.regional_ms; });
    out.global_ms = median_of([](const ProbePair& m) { return m.global_ms; });
    out.regional_km = median_of([](const ProbePair& m) { return m.regional_km; });
    out.global_km = median_of([](const ProbePair& m) { return m.global_km; });
    // Representative member (the median-RTT one) provides the categorical
    // fields: catchment sites and route classes.
    const ProbePair* rep = members.front();
    double best_gap = std::numeric_limits<double>::infinity();
    for (const ProbePair* m : members) {
      const double gap = std::abs(m->regional_ms - out.regional_ms);
      if (gap < best_gap) {
        best_gap = gap;
        rep = m;
      }
    }
    out.regional_site = rep->regional_site;
    out.global_site = rep->global_site;
    out.same_site = rep->regional_site == rep->global_site;
    out.regional_cls = rep->regional_cls;
    out.global_cls = rep->global_cls;
    out.route_server_feed_visible = rep->rs_feed_visible;
    out.cause = rep->cause;
    result.groups.push_back(out);
  }
  return result;
}

CauseBreakdown classify_reduction_causes(const ComparisonResult& result, double threshold_ms) {
  CauseBreakdown out;
  for (const PairedGroup& g : result.groups) {
    if (g.global_ms - g.regional_ms <= threshold_ms) continue;
    ++out.reduced_groups;
    switch (g.cause) {
      case analysis::ReductionCause::AsRelationshipOverride:
        ++out.as_relationship;
        break;
      case analysis::ReductionCause::PeeringTypeOverride:
        ++out.peering_type;
        break;
      case analysis::ReductionCause::Unknown:
        ++out.unknown;
        break;
    }
  }
  return out;
}

}  // namespace ranycast::lab
