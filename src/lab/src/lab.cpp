#include "ranycast/lab/lab.hpp"

#include <cstdlib>

#include "ranycast/exec/pool.hpp"
#include "ranycast/obs/span.hpp"

namespace ranycast::lab {

namespace {

obs::MetricsRegistry& metrics() { return obs::MetricsRegistry::global(); }

double hash01(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// Stream tags separating the fault decisions of the three measurement
// primitives, so a ping loss does not imply a DNS timeout for the same
// probe/target pair.
constexpr std::uint64_t kPingFaultTag = 0x1C39;
constexpr std::uint64_t kDnsFaultTag = 0xD235;
constexpr std::uint64_t kTraceFaultTag = 0x7A3C;

/// Deterministic per-attempt loss decision.
bool attempt_lost(const MeasurementFaults& f, std::uint64_t tag, ProbeId probe,
                  std::uint64_t target, int attempt, double prob) noexcept {
  const std::uint64_t h = mix64(hash_combine(
      hash_combine(hash_combine(hash_combine(f.seed, tag), value(probe)), target),
      static_cast<std::uint64_t>(attempt)));
  return hash01(h) < prob;
}

/// Run the retry/backoff loop for one measurement. Returns the attempt
/// index that succeeded, or nullopt when every attempt was lost. Lost
/// attempts and the backoff they cost are recorded in `lost`/`backoff_ms`.
std::optional<int> faulty_attempts(const MeasurementFaults& f, std::uint64_t tag,
                                   ProbeId probe, std::uint64_t target, double prob,
                                   obs::Counter& lost, obs::Histogram& backoff_ms) {
  for (int attempt = 0; attempt <= f.max_retries; ++attempt) {
    if (!attempt_lost(f, tag, probe, target, attempt, prob)) return attempt;
    lost.add();
    backoff_ms.record(f.backoff_base_ms * static_cast<double>(1u << attempt));
  }
  return std::nullopt;
}

/// Solve every region of a deployment concurrently. Region r's outcome
/// depends only on (graph, origins_for_region(r), salt r), so each worker
/// writes its own slot and the assembled vector is independent of the thread
/// count and of which region finished first.
std::vector<bgp::RoutingOutcome> solve_regions(const Lab& laboratory,
                                               const cdn::Deployment& dep) {
  const std::size_t count = dep.regions().size();
  std::vector<std::optional<bgp::RoutingOutcome>> slots(count);
  exec::ThreadPool::global().parallel_for(count, [&](std::size_t r) {
    slots[r].emplace(laboratory.solve_origins(dep.asn(), dep.origins_for_region(r), r));
  });
  std::vector<bgp::RoutingOutcome> outcomes;
  outcomes.reserve(count);
  for (auto& slot : slots) outcomes.push_back(std::move(*slot));
  return outcomes;
}

}  // namespace

Lab::Lab(const LabConfig& config) : config_(config) {
  obs::Span create_span("lab.create");
  static obs::Histogram& h_total = metrics().histogram("lab.create.total_us");
  obs::ScopedTimer create_timer(h_total);
  {
    obs::Span span("lab.create.topology");
    static obs::Histogram& h = metrics().histogram("lab.create.topology_us");
    obs::ScopedTimer timer(h);
    world_ = std::make_unique<topo::World>(topo::generate_world(config.world));
  }
  {
    obs::Span span("lab.create.census");
    static obs::Histogram& h = metrics().histogram("lab.create.census_us");
    obs::ScopedTimer timer(h);
    census_ = atlas::ProbeCensus::generate(*world_, registry_, config.census);
  }
  {
    obs::Span span("lab.create.geodb");
    static obs::Histogram& h = metrics().histogram("lab.create.geodb_us");
    obs::ScopedTimer timer(h);
    for (std::size_t i = 0; i < geo_dbs_.size(); ++i) {
      geo_dbs_[i] =
          std::make_unique<dns::GeoDatabase>(config.geo_dbs[i], &world_->graph, &registry_);
    }
  }
  static obs::Counter& creates = metrics().counter("lab.create.calls");
  creates.add();
  if (const char* delta_env = std::getenv("RANYCAST_DELTA");
      delta_env != nullptr && delta_env[0] == '1') {
    delta_cfg_.enabled = true;
  }
  if (const char* verify_env = std::getenv("RANYCAST_DELTA_VERIFY"); verify_env != nullptr) {
    delta_cfg_.verify_every = static_cast<std::uint32_t>(std::strtoul(verify_env, nullptr, 10));
  }
}

Lab Lab::create(const LabConfig& config) {
  if (config.observability) obs::set_enabled(*config.observability);
  return Lab{config};
}

const DeploymentHandle& Lab::add_deployment(const cdn::DeploymentSpec& spec) {
  return add_deployment(cdn::build_deployment(spec, *world_, registry_));
}

const DeploymentHandle& Lab::add_deployment(cdn::Deployment deployment) {
  obs::Span span("lab.add_deployment");
  DeploymentHandle handle{std::move(deployment), {}};
  const auto& dep = handle.deployment;
  handle.outcomes = solve_regions(*this, dep);
  static obs::Counter& deployments = metrics().counter("lab.deployments");
  static obs::Counter& regions = metrics().counter("lab.regions_solved");
  deployments.add();
  regions.add(dep.regions().size());
  deployments_.push_back(std::move(handle));
  return deployments_.back();
}

DeploymentHandle* Lab::handle_mut(const DeploymentHandle& handle) noexcept {
  for (DeploymentHandle& h : deployments_) {
    if (&h == &handle) return &h;
  }
  return nullptr;
}

void Lab::resolve(DeploymentHandle& handle) const {
  obs::Span span("lab.resolve");
  static obs::Histogram& h_resolve = metrics().histogram("lab.resolve.total_us");
  obs::ScopedTimer timer(h_resolve);
  // Same per-region salts as add_deployment: a re-solve of an unchanged
  // deployment reproduces the original outcome bit-for-bit.
  handle.outcomes = solve_regions(*this, handle.deployment);
  // A full re-solve leaves retained incremental planes stale; drop them so
  // a later resolve_delta re-primes instead of splicing against old state.
  handle.delta.reset();
  static obs::Counter& resolves = metrics().counter("lab.resolves");
  resolves.add();
}

bgp::DeltaStats Lab::resolve_delta(DeploymentHandle& handle,
                                   const bgp::SolveDelta& delta) const {
  if (!delta_cfg_.enabled) {
    resolve(handle);
    return {};
  }
  obs::Span span("lab.resolve_delta");
  static obs::Histogram& h_resolve = metrics().histogram("lab.resolve.total_us");
  obs::ScopedTimer timer(h_resolve);
  const cdn::Deployment& dep = handle.deployment;
  const std::size_t count = dep.regions().size();
  if (!handle.delta || handle.delta->region_count() != count) {
    handle.delta =
        std::make_unique<bgp::DeltaSolver>(world_->graph, dep.asn(), count, delta_cfg_);
  }
  bgp::DeltaSolver& solver = *handle.delta;
  std::vector<bgp::DeltaStats> stats(count);
  std::vector<std::optional<bgp::RoutingOutcome>> slots(count);
  exec::ThreadPool::global().parallel_for(count, [&](std::size_t r) {
    const auto origins = dep.origins_for_region(r);
    const std::uint64_t seed = hash_combine(config_.seed, r);  // matches solve_origins
    if (!solver.primed(r)) {
      slots[r].emplace(solver.prime(r, origins, seed, &stats[r]));
      return;
    }
    const std::span<const bgp::OriginChange> changes =
        r < delta.origins.size() ? std::span<const bgp::OriginChange>(delta.origins[r])
                                 : std::span<const bgp::OriginChange>{};
    slots[r].emplace(solver.resolve(r, origins, changes, delta.links, &stats[r]));
  });
  handle.outcomes.clear();
  handle.outcomes.reserve(count);
  bgp::DeltaStats merged;
  for (std::size_t r = 0; r < count; ++r) {
    handle.outcomes.push_back(std::move(*slots[r]));
    merged.merge(stats[r]);
  }
  static obs::Counter& resolves = metrics().counter("lab.resolves");
  static obs::Counter& delta_resolves = metrics().counter("lab.resolves_delta");
  resolves.add();
  delta_resolves.add();
  return merged;
}

const DeploymentHandle& Lab::add_deployment_derived(const DeploymentHandle& base,
                                                    cdn::Deployment deployment,
                                                    const bgp::SolveDelta& delta) {
  DeploymentHandle* base_mut = handle_mut(base);
  const std::size_t count = deployment.regions().size();
  if (!delta_cfg_.enabled || base_mut == nullptr ||
      base.deployment.regions().size() != count || base.deployment.asn() != deployment.asn()) {
    return add_deployment(std::move(deployment));
  }
  obs::Span span("lab.add_deployment_derived");
  if (!base_mut->delta || base_mut->delta->region_count() != count) {
    // Prime the base's planes once; its published outcomes stay untouched
    // (the primed ones are byte-identical by construction, so discarding
    // them changes nothing observable).
    auto solver = std::make_unique<bgp::DeltaSolver>(world_->graph, base.deployment.asn(),
                                                     count, delta_cfg_);
    exec::ThreadPool::global().parallel_for(count, [&](std::size_t r) {
      solver->prime(r, base.deployment.origins_for_region(r), hash_combine(config_.seed, r));
    });
    base_mut->delta = std::move(solver);
  }
  DeploymentHandle handle{std::move(deployment), {}, base_mut->delta->clone()};
  const cdn::Deployment& dep = handle.deployment;
  std::vector<bgp::DeltaStats> stats(count);
  std::vector<std::optional<bgp::RoutingOutcome>> slots(count);
  bgp::DeltaSolver& solver = *handle.delta;
  exec::ThreadPool::global().parallel_for(count, [&](std::size_t r) {
    const std::span<const bgp::OriginChange> changes =
        r < delta.origins.size() ? std::span<const bgp::OriginChange>(delta.origins[r])
                                 : std::span<const bgp::OriginChange>{};
    slots[r].emplace(
        solver.resolve(r, dep.origins_for_region(r), changes, delta.links, &stats[r]));
  });
  handle.outcomes.reserve(count);
  for (std::size_t r = 0; r < count; ++r) handle.outcomes.push_back(std::move(*slots[r]));
  static obs::Counter& deployments = metrics().counter("lab.deployments");
  static obs::Counter& regions = metrics().counter("lab.regions_solved");
  static obs::Counter& derived = metrics().counter("lab.deployments_derived");
  deployments.add();
  regions.add(count);
  derived.add();
  deployments_.push_back(std::move(handle));
  return deployments_.back();
}

bgp::RoutingOutcome Lab::solve_origins(Asn cdn_asn,
                                       std::span<const bgp::OriginAttachment> origins,
                                       std::uint64_t salt) const {
  return bgp::solve_anycast(world_->graph, cdn_asn, origins,
                            hash_combine(config_.seed, salt));
}

std::optional<Lab::AddressInfo> Lab::locate_address(Ipv4Addr address) const {
  for (const DeploymentHandle& h : deployments_) {
    if (const auto region = h.deployment.region_of_ip(address)) {
      return AddressInfo{&h, *region};
    }
  }
  return std::nullopt;
}

Lab::DnsAnswer Lab::dns_lookup(const atlas::Probe& probe, const DeploymentHandle& handle,
                               dns::QueryMode mode) const {
  static obs::Counter& calls = metrics().counter("lab.dns_lookup.calls");
  static obs::Histogram& wall = metrics().histogram("lab.dns_lookup.wall_us");
  calls.add();
  obs::ScopedTimer timer(wall);
  if (measurement_faults_ && measurement_faults_->dns_timeout_prob > 0.0) {
    static obs::Counter& timeouts = metrics().counter("lab.dns_lookup.fault_timeouts");
    static obs::Counter& fallbacks = metrics().counter("lab.dns_lookup.fault_fallbacks");
    static obs::Histogram& backoff =
        metrics().histogram("lab.fault.backoff_ms", obs::kRttMsBounds);
    const auto ok = faulty_attempts(*measurement_faults_, kDnsFaultTag, probe.id,
                                    handle.deployment.regions()[0].service_ip.bits(),
                                    measurement_faults_->dns_timeout_prob, timeouts, backoff);
    if (!ok) {
      // Every resolution attempt timed out: the client is served the stale
      // fallback record (region 0, mirroring map_client's unknown-address
      // fallback) instead of a geo-mapped answer.
      fallbacks.add();
      return DnsAnswer{0, handle.deployment.regions()[0].service_ip, true};
    }
  }
  const auto effective = dns::effective_address(probe.query_context(), mode);
  const std::size_t region = handle.deployment.map_client(effective, mapping_db());
  return DnsAnswer{region, handle.deployment.regions()[region].service_ip, false};
}

const bgp::Route* Lab::route_of(const atlas::Probe& probe, Ipv4Addr address) const {
  const auto info = locate_address(address);
  if (!info) return nullptr;
  return info->handle->route_for(probe.asn, info->region);
}

std::optional<Rtt> Lab::ping(const atlas::Probe& probe, Ipv4Addr address,
                             std::uint64_t salt) const {
  static obs::Counter& calls = metrics().counter("lab.ping.calls");
  static obs::Counter& unreachable = metrics().counter("lab.ping.unreachable");
  static obs::Histogram& wall = metrics().histogram("lab.ping.wall_us");
  static obs::Histogram& rtt_hist =
      metrics().histogram("lab.ping.rtt_ms", obs::kRttMsBounds);
  calls.add();
  obs::ScopedTimer timer(wall);
  const bgp::Route* route = route_of(probe, address);
  if (route == nullptr) {
    unreachable.add();
    return std::nullopt;
  }
  if (measurement_faults_ && measurement_faults_->ping_loss_prob > 0.0) {
    static obs::Counter& lost = metrics().counter("lab.ping.fault_lost_attempts");
    static obs::Counter& gaveup = metrics().counter("lab.ping.fault_gaveup");
    static obs::Histogram& backoff =
        metrics().histogram("lab.fault.backoff_ms", obs::kRttMsBounds);
    const auto ok = faulty_attempts(*measurement_faults_, kPingFaultTag, probe.id,
                                    hash_combine(address.bits(), salt),
                                    measurement_faults_->ping_loss_prob, lost, backoff);
    if (!ok) {
      gaveup.add();
      return std::nullopt;  // every attempt lost: the probe reports failure
    }
  }
  Rtt rtt = config_.latency.path_rtt(*route, probe.city, probe.asn, probe.access_extra_ms);
  if (salt != 0) {
    // Per-hostname measurement perturbation (used for the Appendix C
    // generalization study): sub-millisecond deterministic noise.
    const std::uint64_t h = mix64(hash_combine(hash_combine(salt, value(probe.id)),
                                               address.bits()));
    rtt += Rtt{static_cast<double>(h >> 11) * 0x1.0p-53 * 1.0};
  }
  rtt_hist.record(rtt.ms);
  return rtt;
}

std::optional<bgp::TracerouteResult> Lab::traceroute(const atlas::Probe& probe,
                                                     Ipv4Addr address) const {
  static obs::Counter& calls = metrics().counter("lab.traceroute.calls");
  static obs::Histogram& wall = metrics().histogram("lab.traceroute.wall_us");
  calls.add();
  obs::ScopedTimer timer(wall);
  const auto info = locate_address(address);
  if (!info) return std::nullopt;
  const bgp::Route* route = info->handle->route_for(probe.asn, info->region);
  if (route == nullptr) return std::nullopt;
  if (measurement_faults_ && measurement_faults_->ping_loss_prob > 0.0) {
    static obs::Counter& lost = metrics().counter("lab.traceroute.fault_lost_attempts");
    static obs::Counter& gaveup = metrics().counter("lab.traceroute.fault_gaveup");
    static obs::Histogram& backoff =
        metrics().histogram("lab.fault.backoff_ms", obs::kRttMsBounds);
    const auto ok = faulty_attempts(*measurement_faults_, kTraceFaultTag, probe.id,
                                    address.bits(), measurement_faults_->ping_loss_prob,
                                    lost, backoff);
    if (!ok) {
      gaveup.add();
      return std::nullopt;
    }
  }
  const cdn::Site& site = info->handle->deployment.site(route->origin_site);
  return bgp::synth_traceroute(*route, probe.city, probe.asn, probe.access_extra_ms,
                               site.onsite_router, address, config_.latency,
                               config_.traceroute, registry_);
}

std::vector<Lab::DnsAnswer> Lab::dns_lookup_all(std::span<const atlas::Probe* const> probes,
                                                const DeploymentHandle& handle,
                                                dns::QueryMode mode) const {
  obs::Span span("lab.dns_lookup_all");
  std::vector<DnsAnswer> out(probes.size());
  exec::ThreadPool::global().parallel_for(probes.size(), [&](std::size_t i) {
    out[i] = dns_lookup(*probes[i], handle, mode);
  });
  return out;
}

std::vector<std::optional<Rtt>> Lab::ping_all(std::span<const atlas::Probe* const> probes,
                                              Ipv4Addr address, std::uint64_t salt) const {
  obs::Span span("lab.ping_all");
  std::vector<std::optional<Rtt>> out(probes.size());
  exec::ThreadPool::global().parallel_for(probes.size(), [&](std::size_t i) {
    out[i] = ping(*probes[i], address, salt);
  });
  return out;
}

std::vector<std::optional<bgp::TracerouteResult>> Lab::traceroute_all(
    std::span<const atlas::Probe* const> probes, Ipv4Addr address) const {
  obs::Span span("lab.traceroute_all");
  std::vector<std::optional<bgp::TracerouteResult>> out(probes.size());
  static obs::Counter& calls = metrics().counter("lab.traceroute.calls");
  const auto info = locate_address(address);
  if (!info) {
    calls.add(probes.size());
    return out;
  }

  // Serial prepass: decide which probes measure (recording the fault
  // telemetry the scalar path would) and touch the registry in the exact
  // hop order of the sequential loop — first touch assigns an AS's block
  // ordinal, so this order must not depend on the thread count.
  std::vector<const bgp::Route*> routes(probes.size(), nullptr);
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const atlas::Probe& probe = *probes[i];
    calls.add();
    const bgp::Route* route = info->handle->route_for(probe.asn, info->region);
    if (route == nullptr) continue;
    if (measurement_faults_ && measurement_faults_->ping_loss_prob > 0.0) {
      static obs::Counter& lost = metrics().counter("lab.traceroute.fault_lost_attempts");
      static obs::Counter& gaveup = metrics().counter("lab.traceroute.fault_gaveup");
      static obs::Histogram& backoff =
          metrics().histogram("lab.fault.backoff_ms", obs::kRttMsBounds);
      const auto ok = faulty_attempts(*measurement_faults_, kTraceFaultTag, probe.id,
                                      address.bits(), measurement_faults_->ping_loss_prob,
                                      lost, backoff);
      if (!ok) {
        gaveup.add();
        continue;
      }
    }
    routes[i] = route;
    const cdn::Site& site = info->handle->deployment.site(route->origin_site);
    bgp::for_each_traceroute_interface(
        *route, probe.city, probe.asn, site.onsite_router,
        [&](Asn a, CityId c) { registry_.router_ip(a, c); });
  }

  // Parallel hop synthesis against the now-complete, read-only registry.
  static obs::Histogram& wall = metrics().histogram("lab.traceroute.wall_us");
  const topo::IpRegistry& warmed = registry_;
  exec::ThreadPool::global().parallel_for(probes.size(), [&](std::size_t i) {
    if (routes[i] == nullptr) return;
    obs::ScopedTimer timer(wall);
    const atlas::Probe& probe = *probes[i];
    const cdn::Site& site = info->handle->deployment.site(routes[i]->origin_site);
    out[i] = bgp::synth_traceroute(*routes[i], probe.city, probe.asn, probe.access_extra_ms,
                                   site.onsite_router, address, config_.latency,
                                   config_.traceroute, warmed);
  });
  return out;
}

std::optional<SiteId> Lab::catchment_of(const atlas::Probe& probe, Ipv4Addr address) const {
  const bgp::Route* route = route_of(probe, address);
  if (route == nullptr) return std::nullopt;
  return route->origin_site;
}

}  // namespace ranycast::lab
