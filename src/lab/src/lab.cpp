#include "ranycast/lab/lab.hpp"

namespace ranycast::lab {

Lab::Lab(const LabConfig& config)
    : config_(config), world_(std::make_unique<topo::World>(topo::generate_world(config.world))) {
  census_ = atlas::ProbeCensus::generate(*world_, registry_, config.census);
  for (std::size_t i = 0; i < geo_dbs_.size(); ++i) {
    geo_dbs_[i] =
        std::make_unique<dns::GeoDatabase>(config.geo_dbs[i], &world_->graph, &registry_);
  }
}

Lab Lab::create(const LabConfig& config) { return Lab{config}; }

const DeploymentHandle& Lab::add_deployment(const cdn::DeploymentSpec& spec) {
  return add_deployment(cdn::build_deployment(spec, *world_, registry_));
}

const DeploymentHandle& Lab::add_deployment(cdn::Deployment deployment) {
  DeploymentHandle handle{std::move(deployment), {}};
  const auto& dep = handle.deployment;
  handle.outcomes.reserve(dep.regions().size());
  for (std::size_t r = 0; r < dep.regions().size(); ++r) {
    const auto origins = dep.origins_for_region(r);
    handle.outcomes.push_back(solve_origins(dep.asn(), origins, r));
  }
  deployments_.push_back(std::move(handle));
  return deployments_.back();
}

bgp::RoutingOutcome Lab::solve_origins(Asn cdn_asn,
                                       std::span<const bgp::OriginAttachment> origins,
                                       std::uint64_t salt) const {
  return bgp::solve_anycast(world_->graph, cdn_asn, origins,
                            hash_combine(config_.seed, salt));
}

std::optional<Lab::AddressInfo> Lab::locate_address(Ipv4Addr address) const {
  for (const DeploymentHandle& h : deployments_) {
    if (const auto region = h.deployment.region_of_ip(address)) {
      return AddressInfo{&h, *region};
    }
  }
  return std::nullopt;
}

Lab::DnsAnswer Lab::dns_lookup(const atlas::Probe& probe, const DeploymentHandle& handle,
                               dns::QueryMode mode) const {
  const auto effective = dns::effective_address(probe.query_context(), mode);
  const std::size_t region = handle.deployment.map_client(effective, mapping_db());
  return DnsAnswer{region, handle.deployment.regions()[region].service_ip};
}

const bgp::Route* Lab::route_of(const atlas::Probe& probe, Ipv4Addr address) const {
  const auto info = locate_address(address);
  if (!info) return nullptr;
  return info->handle->route_for(probe.asn, info->region);
}

std::optional<Rtt> Lab::ping(const atlas::Probe& probe, Ipv4Addr address,
                             std::uint64_t salt) const {
  const bgp::Route* route = route_of(probe, address);
  if (route == nullptr) return std::nullopt;
  Rtt rtt = config_.latency.path_rtt(*route, probe.city, probe.asn, probe.access_extra_ms);
  if (salt != 0) {
    // Per-hostname measurement perturbation (used for the Appendix C
    // generalization study): sub-millisecond deterministic noise.
    const std::uint64_t h = mix64(hash_combine(hash_combine(salt, value(probe.id)),
                                               address.bits()));
    rtt += Rtt{static_cast<double>(h >> 11) * 0x1.0p-53 * 1.0};
  }
  return rtt;
}

std::optional<bgp::TracerouteResult> Lab::traceroute(const atlas::Probe& probe,
                                                     Ipv4Addr address) const {
  const auto info = locate_address(address);
  if (!info) return std::nullopt;
  const bgp::Route* route = info->handle->route_for(probe.asn, info->region);
  if (route == nullptr) return std::nullopt;
  const cdn::Site& site = info->handle->deployment.site(route->origin_site);
  return bgp::synth_traceroute(*route, probe.city, probe.asn, probe.access_extra_ms,
                               site.onsite_router, address, config_.latency,
                               config_.traceroute, registry_);
}

std::optional<SiteId> Lab::catchment_of(const atlas::Probe& probe, Ipv4Addr address) const {
  const bgp::Route* route = route_of(probe, address);
  if (route == nullptr) return std::nullopt;
  return route->origin_site;
}

}  // namespace ranycast::lab
