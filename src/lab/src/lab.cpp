#include "ranycast/lab/lab.hpp"

#include "ranycast/obs/span.hpp"

namespace ranycast::lab {

namespace {

obs::MetricsRegistry& metrics() { return obs::MetricsRegistry::global(); }

}  // namespace

Lab::Lab(const LabConfig& config) : config_(config) {
  obs::Span create_span("lab.create");
  static obs::Histogram& h_total = metrics().histogram("lab.create.total_us");
  obs::ScopedTimer create_timer(h_total);
  {
    obs::Span span("lab.create.topology");
    static obs::Histogram& h = metrics().histogram("lab.create.topology_us");
    obs::ScopedTimer timer(h);
    world_ = std::make_unique<topo::World>(topo::generate_world(config.world));
  }
  {
    obs::Span span("lab.create.census");
    static obs::Histogram& h = metrics().histogram("lab.create.census_us");
    obs::ScopedTimer timer(h);
    census_ = atlas::ProbeCensus::generate(*world_, registry_, config.census);
  }
  {
    obs::Span span("lab.create.geodb");
    static obs::Histogram& h = metrics().histogram("lab.create.geodb_us");
    obs::ScopedTimer timer(h);
    for (std::size_t i = 0; i < geo_dbs_.size(); ++i) {
      geo_dbs_[i] =
          std::make_unique<dns::GeoDatabase>(config.geo_dbs[i], &world_->graph, &registry_);
    }
  }
  static obs::Counter& creates = metrics().counter("lab.create.calls");
  creates.add();
}

Lab Lab::create(const LabConfig& config) {
  if (config.observability) obs::set_enabled(*config.observability);
  return Lab{config};
}

const DeploymentHandle& Lab::add_deployment(const cdn::DeploymentSpec& spec) {
  return add_deployment(cdn::build_deployment(spec, *world_, registry_));
}

const DeploymentHandle& Lab::add_deployment(cdn::Deployment deployment) {
  obs::Span span("lab.add_deployment");
  DeploymentHandle handle{std::move(deployment), {}};
  const auto& dep = handle.deployment;
  handle.outcomes.reserve(dep.regions().size());
  for (std::size_t r = 0; r < dep.regions().size(); ++r) {
    const auto origins = dep.origins_for_region(r);
    handle.outcomes.push_back(solve_origins(dep.asn(), origins, r));
  }
  static obs::Counter& deployments = metrics().counter("lab.deployments");
  static obs::Counter& regions = metrics().counter("lab.regions_solved");
  deployments.add();
  regions.add(dep.regions().size());
  deployments_.push_back(std::move(handle));
  return deployments_.back();
}

bgp::RoutingOutcome Lab::solve_origins(Asn cdn_asn,
                                       std::span<const bgp::OriginAttachment> origins,
                                       std::uint64_t salt) const {
  return bgp::solve_anycast(world_->graph, cdn_asn, origins,
                            hash_combine(config_.seed, salt));
}

std::optional<Lab::AddressInfo> Lab::locate_address(Ipv4Addr address) const {
  for (const DeploymentHandle& h : deployments_) {
    if (const auto region = h.deployment.region_of_ip(address)) {
      return AddressInfo{&h, *region};
    }
  }
  return std::nullopt;
}

Lab::DnsAnswer Lab::dns_lookup(const atlas::Probe& probe, const DeploymentHandle& handle,
                               dns::QueryMode mode) const {
  static obs::Counter& calls = metrics().counter("lab.dns_lookup.calls");
  static obs::Histogram& wall = metrics().histogram("lab.dns_lookup.wall_us");
  calls.add();
  obs::ScopedTimer timer(wall);
  const auto effective = dns::effective_address(probe.query_context(), mode);
  const std::size_t region = handle.deployment.map_client(effective, mapping_db());
  return DnsAnswer{region, handle.deployment.regions()[region].service_ip};
}

const bgp::Route* Lab::route_of(const atlas::Probe& probe, Ipv4Addr address) const {
  const auto info = locate_address(address);
  if (!info) return nullptr;
  return info->handle->route_for(probe.asn, info->region);
}

std::optional<Rtt> Lab::ping(const atlas::Probe& probe, Ipv4Addr address,
                             std::uint64_t salt) const {
  static obs::Counter& calls = metrics().counter("lab.ping.calls");
  static obs::Counter& unreachable = metrics().counter("lab.ping.unreachable");
  static obs::Histogram& wall = metrics().histogram("lab.ping.wall_us");
  static obs::Histogram& rtt_hist =
      metrics().histogram("lab.ping.rtt_ms", obs::kRttMsBounds);
  calls.add();
  obs::ScopedTimer timer(wall);
  const bgp::Route* route = route_of(probe, address);
  if (route == nullptr) {
    unreachable.add();
    return std::nullopt;
  }
  Rtt rtt = config_.latency.path_rtt(*route, probe.city, probe.asn, probe.access_extra_ms);
  if (salt != 0) {
    // Per-hostname measurement perturbation (used for the Appendix C
    // generalization study): sub-millisecond deterministic noise.
    const std::uint64_t h = mix64(hash_combine(hash_combine(salt, value(probe.id)),
                                               address.bits()));
    rtt += Rtt{static_cast<double>(h >> 11) * 0x1.0p-53 * 1.0};
  }
  rtt_hist.record(rtt.ms);
  return rtt;
}

std::optional<bgp::TracerouteResult> Lab::traceroute(const atlas::Probe& probe,
                                                     Ipv4Addr address) const {
  static obs::Counter& calls = metrics().counter("lab.traceroute.calls");
  static obs::Histogram& wall = metrics().histogram("lab.traceroute.wall_us");
  calls.add();
  obs::ScopedTimer timer(wall);
  const auto info = locate_address(address);
  if (!info) return std::nullopt;
  const bgp::Route* route = info->handle->route_for(probe.asn, info->region);
  if (route == nullptr) return std::nullopt;
  const cdn::Site& site = info->handle->deployment.site(route->origin_site);
  return bgp::synth_traceroute(*route, probe.city, probe.asn, probe.access_extra_ms,
                               site.onsite_router, address, config_.latency,
                               config_.traceroute, registry_);
}

std::optional<SiteId> Lab::catchment_of(const atlas::Probe& probe, Ipv4Addr address) const {
  const bgp::Route* route = route_of(probe, address);
  if (route == nullptr) return std::nullopt;
  return route->origin_site;
}

}  // namespace ranycast::lab
