// Empirical distribution utilities (CDFs, percentiles) used by every
// experiment harness.
#pragma once

#include <optional>
#include <span>
#include <utility>
#include <vector>

namespace ranycast::analysis {

/// Empirical CDF over a sample set.
class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::vector<double> samples);

  std::size_t size() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  double min() const;
  double max() const;
  double mean() const;

  /// q in [0, 1]; linear interpolation between order statistics.
  double quantile(double q) const;

  /// Fraction of samples strictly below or equal to x.
  double fraction_at_or_below(double x) const;

  /// Sampled (x, F(x)) series for plotting/printing.
  std::vector<std::pair<double, double>> series(double lo, double hi, int points) const;

  std::span<const double> sorted_samples() const noexcept { return samples_; }

 private:
  std::vector<double> samples_;  // sorted ascending
};

/// Percentile with p in [0, 100] over an unsorted span.
double percentile(std::span<const double> values, double p);

double median(std::span<const double> values);

}  // namespace ranycast::analysis
