// Load-distribution metrics over anycast catchments.
//
// The paper's introduction motivates anycast with "reduce client latency
// and balance load"; regional partitioning changes both. These metrics
// quantify how evenly a configuration spreads clients over its sites.
#pragma once

#include <cstddef>
#include <span>

namespace ranycast::analysis {

/// Gini coefficient of a load vector (0 = perfectly even, ->1 = one site
/// carries everything). Zeros are legitimate (idle sites count).
double gini(std::span<const double> loads);

/// Peak-to-mean ratio (>= 1; 1 = perfectly even).
double peak_to_mean(std::span<const double> loads);

/// Effective number of sites: exp of the Shannon entropy of the load
/// shares. Equals the site count iff the load is perfectly even.
double effective_sites(std::span<const double> loads);

}  // namespace ranycast::analysis
