// Fixed-width text table renderer for the benchmark harnesses — every bench
// prints paper-style rows through this.
#pragma once

#include <string>
#include <vector>

namespace ranycast::analysis {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  /// Render with column auto-sizing; first column left-aligned, the rest
  /// right-aligned.
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formatting helpers shared by benches.
std::string fmt_ms(double ms, int decimals = 1);
std::string fmt_pct(double fraction, int decimals = 1);  ///< 0.127 -> "12.7%"
std::string fmt_km(double km);
std::string fmt_count(std::size_t n);

}  // namespace ranycast::analysis
