// CSV export for experiment results — the benches print human tables; the
// tools can additionally emit machine-readable series for plotting.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace ranycast::analysis {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  /// RFC 4180-style output: fields containing separators/quotes are quoted.
  void write(std::ostream& out) const;

  std::string to_string() const;

 private:
  static std::string escape(const std::string& field);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ranycast::analysis
