// ASCII world-map rendering for partition figures.
//
// The paper's Fig. 2 and Fig. 6a are world maps with probes and sites
// colour-coded by regional prefix; a terminal bench can render the same
// information as a character grid (equirectangular projection), one symbol
// per region, capital letters for sites over lowercase probes.
#pragma once

#include <string>
#include <vector>

#include "ranycast/geo/earth.hpp"

namespace ranycast::analysis {

class AsciiMap {
 public:
  AsciiMap(int width = 96, int height = 28);

  /// Place a symbol at a geographic position. Later plots overwrite earlier
  /// ones unless the earlier symbol is marked high-priority (uppercase by
  /// convention: sites should not be hidden by probe clutter).
  void plot(geo::GeoPoint position, char symbol, bool priority = false);

  /// Render with a border; one legend line per entry below the grid.
  void add_legend(char symbol, std::string text);
  std::string render() const;

  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }

 private:
  int width_, height_;
  std::vector<char> cells_;
  std::vector<bool> pinned_;
  std::vector<std::pair<char, std::string>> legend_;
};

}  // namespace ranycast::analysis
