// Outcome classifiers reproducing the paper's Tables 2 & 4 and the §5.4
// root-cause analysis.
#pragma once

#include <optional>
#include <string_view>

#include "ranycast/bgp/route.hpp"

namespace ranycast::analysis {

/// Table 2: the paper's 5 ms threshold on the gap between the RTT to the
/// DNS-returned regional IP and the lowest RTT among all regional IPs.
inline constexpr double kMappingThresholdMs = 5.0;

enum class MappingOutcome {
  Efficient,         ///< ΔRTT < 5 ms
  SubOptimalRegion,  ///< ✓Region but ΔRTT ≥ 5 ms (rigid geographic partition)
  IncorrectRegion,   ///< ×Region and ΔRTT ≥ 5 ms (geolocation/resolver error)
};

std::string_view to_string(MappingOutcome o) noexcept;

/// `region_intended`: whether DNS returned the region the deployment's
/// geographic policy intends for the client's true location.
MappingOutcome classify_mapping(double rtt_returned_ms, double rtt_best_ms,
                                bool region_intended,
                                double threshold_ms = kMappingThresholdMs);

/// Table 4 row split: regional-vs-global RTT delta classes.
enum class RttDelta {
  Better,   ///< regional at least 5 ms faster
  Similar,  ///< within ±5 ms
  Worse,    ///< regional at least 5 ms slower
};

std::string_view to_string(RttDelta d) noexcept;

RttDelta classify_rtt_delta(double regional_ms, double global_ms,
                            double threshold_ms = kMappingThresholdMs);

/// Table 4 column split: did the probe's catchment site move?
enum class SiteShift { Closer, Same, Further };

std::string_view to_string(SiteShift s) noexcept;

/// `same_site` wins regardless of distances (distance noise is irrelevant
/// when the catchment did not move); otherwise compare distances with a
/// small tolerance.
SiteShift classify_site_shift(bool same_site, double regional_km, double global_km,
                              double tolerance_km = 50.0);

/// §5.4: why did regional anycast reach a closer site than global anycast?
enum class ReductionCause {
  AsRelationshipOverride,  ///< global route won on customer-vs-peer local-pref
  PeeringTypeOverride,     ///< global route won on public-vs-route-server peering
  Unknown,                 ///< not classifiable from the available vantage
};

std::string_view to_string(ReductionCause c) noexcept;

/// Compare the routes the client's AS selected under global and regional
/// anycast. `route_server_feed_visible` models whether the IXP involved
/// publishes its route-server feed — without it the peering-type case cannot
/// be confirmed (the paper could classify only 1.6% for this reason).
ReductionCause classify_reduction_cause(const bgp::Route& global_route,
                                        const bgp::Route& regional_route,
                                        bool route_server_feed_visible);

}  // namespace ranycast::analysis
