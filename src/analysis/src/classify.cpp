#include "ranycast/analysis/classify.hpp"

#include <cmath>

namespace ranycast::analysis {

std::string_view to_string(MappingOutcome o) noexcept {
  switch (o) {
    case MappingOutcome::Efficient:
      return "dRTT<5ms";
    case MappingOutcome::SubOptimalRegion:
      return "vRegion,dRTT>=5ms";
    case MappingOutcome::IncorrectRegion:
      return "xRegion,dRTT>=5ms";
  }
  return "?";
}

MappingOutcome classify_mapping(double rtt_returned_ms, double rtt_best_ms, bool region_intended,
                                double threshold_ms) {
  if (rtt_returned_ms - rtt_best_ms < threshold_ms) return MappingOutcome::Efficient;
  return region_intended ? MappingOutcome::SubOptimalRegion : MappingOutcome::IncorrectRegion;
}

std::string_view to_string(RttDelta d) noexcept {
  switch (d) {
    case RttDelta::Better:
      return "dRTT<-5ms";
    case RttDelta::Similar:
      return "|dRTT|<=5ms";
    case RttDelta::Worse:
      return "dRTT>5ms";
  }
  return "?";
}

RttDelta classify_rtt_delta(double regional_ms, double global_ms, double threshold_ms) {
  const double delta = regional_ms - global_ms;
  if (delta < -threshold_ms) return RttDelta::Better;
  if (delta > threshold_ms) return RttDelta::Worse;
  return RttDelta::Similar;
}

std::string_view to_string(SiteShift s) noexcept {
  switch (s) {
    case SiteShift::Closer:
      return "closer";
    case SiteShift::Same:
      return "same";
    case SiteShift::Further:
      return "further";
  }
  return "?";
}

SiteShift classify_site_shift(bool same_site, double regional_km, double global_km,
                              double tolerance_km) {
  if (same_site) return SiteShift::Same;
  const double delta = regional_km - global_km;
  if (delta < -tolerance_km) return SiteShift::Closer;
  if (delta > tolerance_km) return SiteShift::Further;
  return SiteShift::Same;
}

std::string_view to_string(ReductionCause c) noexcept {
  switch (c) {
    case ReductionCause::AsRelationshipOverride:
      return "AS-relationship override";
    case ReductionCause::PeeringTypeOverride:
      return "peering-type override";
    case ReductionCause::Unknown:
      return "unknown";
  }
  return "?";
}

ReductionCause classify_reduction_cause(const bgp::Route& global_route,
                                        const bgp::Route& regional_route,
                                        bool route_server_feed_visible) {
  using bgp::RouteClass;
  const RouteClass g = global_route.cls;
  const RouteClass r = regional_route.cls;
  // Global anycast won the BGP decision with a customer route while the
  // regional configuration makes the client use a less-preferred (but
  // geographically closer) class: the customer>peer>provider policy was the
  // obstacle regional anycast removed.
  if (g == RouteClass::Customer && r != RouteClass::Customer) {
    return ReductionCause::AsRelationshipOverride;
  }
  // Public-peer route beat a route-server route to a nearby site; only
  // classifiable when the IXP's route-server feed is published.
  if (g == RouteClass::PeerPublic && r == RouteClass::PeerRouteServer) {
    return route_server_feed_visible ? ReductionCause::PeeringTypeOverride
                                     : ReductionCause::Unknown;
  }
  return ReductionCause::Unknown;
}

}  // namespace ranycast::analysis
