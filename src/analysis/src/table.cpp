#include "ranycast/analysis/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ranycast::analysis {

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  auto grow = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  grow(headers_);
  for (const auto& r : rows_) grow(r);

  auto emit = [&](std::string& out, const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string cell = i < cells.size() ? cells[i] : "";
      if (i == 0) {
        out += cell;
        out.append(widths[i] - cell.size(), ' ');
      } else {
        out.append(widths[i] - cell.size(), ' ');
        out += cell;
      }
      out += i + 1 < widths.size() ? "  " : "";
    }
    out += '\n';
  };

  std::string out;
  emit(out, headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out.append(total > 2 ? total - 2 : total, '-');
  out += '\n';
  for (const auto& r : rows_) emit(out, r);
  return out;
}

namespace {
// A NaN or infinity in a report cell is an undefined quantity (a rate over
// an empty population, utilization of a zero-capacity site), not a number
// that happens to be odd — print it as `n/a` instead of "nan"/"inf".
std::string fmt_double(double v, int decimals) {
  if (!std::isfinite(v)) return "n/a";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}
}  // namespace

std::string fmt_ms(double ms, int decimals) { return fmt_double(ms, decimals); }

std::string fmt_pct(double fraction, int decimals) {
  if (!std::isfinite(fraction)) return "n/a";
  return fmt_double(fraction * 100.0, decimals) + "%";
}

std::string fmt_km(double km) { return fmt_double(km, 0); }

std::string fmt_count(std::size_t n) { return std::to_string(n); }

}  // namespace ranycast::analysis
