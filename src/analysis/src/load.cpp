#include "ranycast/analysis/load.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace ranycast::analysis {

double gini(std::span<const double> loads) {
  if (loads.empty()) return 0.0;
  std::vector<double> sorted(loads.begin(), loads.end());
  std::sort(sorted.begin(), sorted.end());
  const double total = std::accumulate(sorted.begin(), sorted.end(), 0.0);
  if (total <= 0.0) return 0.0;
  // Gini = (2 * sum_i i*x_i) / (n * total) - (n + 1) / n, with 1-based i.
  double weighted = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    weighted += static_cast<double>(i + 1) * sorted[i];
  }
  const double n = static_cast<double>(sorted.size());
  return 2.0 * weighted / (n * total) - (n + 1.0) / n;
}

double peak_to_mean(std::span<const double> loads) {
  if (loads.empty()) return 1.0;
  const double total = std::accumulate(loads.begin(), loads.end(), 0.0);
  if (total <= 0.0) return 1.0;
  const double mean = total / static_cast<double>(loads.size());
  const double peak = *std::max_element(loads.begin(), loads.end());
  return peak / mean;
}

double effective_sites(std::span<const double> loads) {
  const double total = std::accumulate(loads.begin(), loads.end(), 0.0);
  if (total <= 0.0) return 0.0;
  double entropy = 0.0;
  for (double x : loads) {
    if (x <= 0.0) continue;
    const double share = x / total;
    entropy -= share * std::log(share);
  }
  return std::exp(entropy);
}

}  // namespace ranycast::analysis
