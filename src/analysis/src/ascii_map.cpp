#include "ranycast/analysis/ascii_map.hpp"

#include <algorithm>

namespace ranycast::analysis {

AsciiMap::AsciiMap(int width, int height)
    : width_(width),
      height_(height),
      cells_(static_cast<std::size_t>(width * height), ' '),
      pinned_(static_cast<std::size_t>(width * height), false) {}

void AsciiMap::plot(geo::GeoPoint position, char symbol, bool priority) {
  // Equirectangular projection, clamped to the grid.
  const double x = (position.lon_deg + 180.0) / 360.0 * static_cast<double>(width_);
  const double y = (90.0 - position.lat_deg) / 180.0 * static_cast<double>(height_);
  const int col = std::clamp(static_cast<int>(x), 0, width_ - 1);
  const int row = std::clamp(static_cast<int>(y), 0, height_ - 1);
  const std::size_t idx = static_cast<std::size_t>(row * width_ + col);
  if (pinned_[idx] && !priority) return;
  cells_[idx] = symbol;
  if (priority) pinned_[idx] = true;
}

void AsciiMap::add_legend(char symbol, std::string text) {
  legend_.emplace_back(symbol, std::move(text));
}

std::string AsciiMap::render() const {
  std::string out;
  out.reserve(static_cast<std::size_t>((width_ + 3) * (height_ + 2)));
  out.push_back('+');
  out.append(static_cast<std::size_t>(width_), '-');
  out += "+\n";
  for (int row = 0; row < height_; ++row) {
    out.push_back('|');
    out.append(cells_.begin() + row * width_, cells_.begin() + (row + 1) * width_);
    out += "|\n";
  }
  out.push_back('+');
  out.append(static_cast<std::size_t>(width_), '-');
  out += "+\n";
  for (const auto& [symbol, text] : legend_) {
    out.push_back(' ');
    out.push_back(symbol);
    out += " = " + text + "\n";
  }
  return out;
}

}  // namespace ranycast::analysis
