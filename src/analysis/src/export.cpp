#include "ranycast/analysis/export.hpp"

#include <sstream>

namespace ranycast::analysis {

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write(std::ostream& out) const {
  auto emit = [&out](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) out << ',';
      out << escape(cells[i]);
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string CsvWriter::to_string() const {
  std::ostringstream out;
  write(out);
  return out.str();
}

}  // namespace ranycast::analysis
