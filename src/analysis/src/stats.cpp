#include "ranycast/analysis/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace ranycast::analysis {

Cdf::Cdf(std::vector<double> samples) : samples_(std::move(samples)) {
  std::sort(samples_.begin(), samples_.end());
}

double Cdf::min() const { return samples_.empty() ? 0.0 : samples_.front(); }
double Cdf::max() const { return samples_.empty() ? 0.0 : samples_.back(); }

double Cdf::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double Cdf::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Cdf::fraction_at_or_below(double x) const {
  if (samples_.empty()) return 0.0;
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> Cdf::series(double lo, double hi, int points) const {
  std::vector<std::pair<double, double>> out;
  if (points < 2) return out;
  out.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, fraction_at_or_below(x));
  }
  return out;
}

double percentile(std::span<const double> values, double p) {
  return Cdf{std::vector<double>(values.begin(), values.end())}.quantile(p / 100.0);
}

double median(std::span<const double> values) { return percentile(values, 50.0); }

}  // namespace ranycast::analysis
