#include "ranycast/converge/plane.hpp"

#include <algorithm>

#include "ranycast/analysis/stats.hpp"
#include "ranycast/core/rng.hpp"
#include "ranycast/exec/pool.hpp"
#include "ranycast/obs/journal.hpp"
#include "ranycast/obs/metrics.hpp"

namespace ranycast::converge {

namespace {

/// Convergence and outage windows run milliseconds to minutes.
constexpr double kTransientMsBounds[] = {10,  20,  50,  100, 200,   500,  1e3,
                                         2e3, 5e3, 1e4, 2e4, 5e4, 1e5};

bool same_origin(const bgp::OriginAttachment& a, const bgp::OriginAttachment& b) {
  return a.site == b.site && a.site_city == b.site_city && a.neighbor == b.neighbor &&
         a.neighbor_rel == b.neighbor_rel && a.onsite_router == b.onsite_router;
}

}  // namespace

std::vector<std::vector<bgp::OriginAttachment>> origins_by_region(
    const cdn::Deployment& dep) {
  std::vector<std::vector<bgp::OriginAttachment>> out;
  out.reserve(dep.regions().size());
  for (std::size_t r = 0; r < dep.regions().size(); ++r) {
    out.push_back(dep.origins_for_region(r));
  }
  return out;
}

std::vector<std::vector<OriginDelta>> diff_origins(
    const std::vector<std::vector<bgp::OriginAttachment>>& before,
    const std::vector<std::vector<bgp::OriginAttachment>>& after) {
  std::vector<std::vector<OriginDelta>> out(before.size());
  for (std::size_t r = 0; r < before.size(); ++r) {
    const auto& b = before[r];
    const auto& a = r < after.size() ? after[r] : std::vector<bgp::OriginAttachment>{};
    const auto in = [](const std::vector<bgp::OriginAttachment>& set,
                       const bgp::OriginAttachment& o) {
      return std::any_of(set.begin(), set.end(),
                         [&](const bgp::OriginAttachment& x) { return same_origin(x, o); });
    };
    for (const bgp::OriginAttachment& o : b) {
      if (!in(a, o)) out[r].push_back(OriginDelta{false, o});
    }
    for (const bgp::OriginAttachment& o : a) {
      if (!in(b, o)) out[r].push_back(OriginDelta{true, o});
    }
  }
  return out;
}

Plane::Plane(const lab::Lab& lab, const lab::DeploymentHandle& handle, const Config& cfg)
    : lab_(lab), handle_(handle), cfg_(cfg) {
  const cdn::Deployment& dep = handle_.deployment;
  sims_.reserve(dep.regions().size());
  for (std::size_t r = 0; r < dep.regions().size(); ++r) {
    // Same per-region tie-break salt as Lab's steady-state solve, so the
    // quiesced attributes are bit-equal to the solver's.
    sims_.push_back(std::make_unique<PrefixSim>(
        lab_.world().graph, dep.asn(), hash_combine(lab_.config().seed, r), cfg_));
  }
}

void Plane::rebuild() {
  const cdn::Deployment& dep = handle_.deployment;
  exec::ThreadPool::global().parallel_for(sims_.size(), [&](std::size_t r) {
    const auto origins = dep.origins_for_region(r);
    sims_[r]->cold_start(origins);
  });
}

StepTransient Plane::step(std::size_t index, std::string event,
                          std::span<const std::vector<OriginDelta>> deltas_by_region,
                          std::span<const ProbeRef> probes) {
  StepTransient out;
  out.index = index;
  out.event = std::move(event);
  out.regions.resize(sims_.size());

  const topo::Graph& graph = lab_.world().graph;
  exec::ThreadPool::global().parallel_for(sims_.size(), [&](std::size_t r) {
    static const std::vector<OriginDelta> kEmpty;
    const auto& deltas = r < deltas_by_region.size() ? deltas_by_region[r] : kEmpty;
    RegionTransient rt = sims_[r]->run_step(deltas);
    // Differential verdict: the quiesced catchment must equal the solver's
    // for the same (already re-solved) topology.
    const bgp::RoutingOutcome& steady = handle_.outcomes[r];
    const auto nodes = graph.nodes();
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (sims_[r]->catchment(i) != steady.catchment(nodes[i].asn)) ++rt.mismatches;
    }
    rt.matches_steady = rt.mismatches == 0;
    out.regions[r] = rt;
  });

  out.matches_steady = true;
  for (const RegionTransient& rt : out.regions) {
    out.matches_steady = out.matches_steady && rt.matches_steady;
    out.oscillating = out.oscillating || rt.oscillating;
  }

  // Probe rollup, in probe order so the reduce is thread-count independent.
  std::vector<double> reconverge_ms;
  std::vector<double> blackhole_ms;
  out.probes = probes.size();
  for (const ProbeRef& p : probes) {
    const auto idx = graph.index_of(p.asn);
    if (!idx || p.region >= sims_.size()) continue;
    const NodeTimeline& t = sims_[p.region]->timelines()[*idx];
    if (t.blackhole_us > 0) {
      ++out.probes_blackholed;
      blackhole_ms.push_back(static_cast<double>(t.blackhole_us) / 1000.0);
    }
    if (t.looped) ++out.probes_looped;
    if (t.site_flips > 0) ++out.probes_flipped;
    if (t.dark_at_end) ++out.probes_dark_at_end;
    if (t.changed) reconverge_ms.push_back(static_cast<double>(t.last_change_us) / 1000.0);
  }
  if (!reconverge_ms.empty()) {
    out.reconverge_p50_ms = analysis::percentile(reconverge_ms, 50.0);
    out.reconverge_p90_ms = analysis::percentile(reconverge_ms, 90.0);
    out.reconverge_max_ms = *std::max_element(reconverge_ms.begin(), reconverge_ms.end());
  }
  if (!blackhole_ms.empty()) {
    out.blackhole_p50_ms = analysis::percentile(blackhole_ms, 50.0);
    out.blackhole_p90_ms = analysis::percentile(blackhole_ms, 90.0);
    out.blackhole_max_ms = *std::max_element(blackhole_ms.begin(), blackhole_ms.end());
  }

  if (obs::enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("converge.steps").add();
    if (out.oscillating) reg.counter("converge.oscillations").add();
    auto& reconv = reg.histogram("converge.reconverge_ms", kTransientMsBounds);
    for (double v : reconverge_ms) reconv.record(v);
    auto& dark = reg.histogram("converge.blackhole_ms", kTransientMsBounds);
    for (double v : blackhole_ms) dark.record(v);
  }

  if (obs::journal() != nullptr) {
    using F = obs::JournalField;
    // Per-region convergence/blackhole envelope (virtual µs), which the
    // trace exporter renders as async blackhole windows.
    std::string regions_json = "[";
    for (std::size_t r = 0; r < out.regions.size(); ++r) {
      const RegionTransient& rt = out.regions[r];
      if (r > 0) regions_json += ',';
      regions_json += "{\"region\":" + std::to_string(r) +
                      ",\"converged_us\":" + std::to_string(rt.converged_us) +
                      ",\"max_blackhole_us\":" + std::to_string(rt.max_blackhole_us) +
                      ",\"blackholed\":" + std::to_string(rt.nodes_blackholed) + "}";
    }
    regions_json += ']';
    obs::journal_event(
        "transient_window",
        {F::u64_field("index", out.index), F::str("event", out.event),
         F::u64_field("probes", out.probes),
         F::u64_field("probes_blackholed", out.probes_blackholed),
         F::u64_field("probes_looped", out.probes_looped),
         F::u64_field("probes_flipped", out.probes_flipped),
         F::u64_field("probes_dark_at_end", out.probes_dark_at_end),
         F::f64_field("reconverge_p50_ms", out.reconverge_p50_ms),
         F::f64_field("reconverge_p90_ms", out.reconverge_p90_ms),
         F::f64_field("reconverge_max_ms", out.reconverge_max_ms),
         F::f64_field("blackhole_p50_ms", out.blackhole_p50_ms),
         F::f64_field("blackhole_p90_ms", out.blackhole_p90_ms),
         F::f64_field("blackhole_max_ms", out.blackhole_max_ms),
         F::bool_field("matches_steady", out.matches_steady),
         F::bool_field("oscillating", out.oscillating),
         F::raw("regions", std::move(regions_json))});
  }
  return out;
}

}  // namespace ranycast::converge
