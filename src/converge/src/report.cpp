#include "ranycast/converge/report.hpp"

namespace ranycast::converge {

namespace {
std::int64_t i64(std::uint64_t v) { return static_cast<std::int64_t>(v); }
}  // namespace

io::Json region_to_json(const RegionTransient& r) {
  io::JsonObject o;
  o["events"] = i64(r.events);
  o["updates_sent"] = i64(r.updates_sent);
  o["withdrawals_sent"] = i64(r.withdrawals_sent);
  o["rib_changes"] = i64(r.rib_changes);
  o["converged_us"] = i64(r.converged_us);
  o["last_event_us"] = i64(r.last_event_us);
  o["transient_loops"] = i64(r.transient_loops);
  o["suppressed"] = i64(r.suppressed);
  o["site_flips"] = i64(r.site_flips);
  o["nodes_changed"] = i64(r.nodes_changed);
  o["nodes_blackholed"] = i64(r.nodes_blackholed);
  o["nodes_dark_at_end"] = i64(r.nodes_dark_at_end);
  o["max_blackhole_us"] = i64(r.max_blackhole_us);
  o["oscillating"] = r.oscillating;
  o["matches_steady"] = r.matches_steady;
  o["mismatches"] = i64(r.mismatches);
  return io::Json(std::move(o));
}

io::Json transient_to_json(const StepTransient& s) {
  io::JsonObject o;
  o["index"] = static_cast<std::int64_t>(s.index);
  o["event"] = s.event;
  io::JsonArray regions;
  regions.reserve(s.regions.size());
  for (const RegionTransient& r : s.regions) regions.push_back(region_to_json(r));
  o["regions"] = io::Json(std::move(regions));
  o["probes"] = i64(s.probes);
  o["probes_blackholed"] = i64(s.probes_blackholed);
  o["probes_looped"] = i64(s.probes_looped);
  o["probes_flipped"] = i64(s.probes_flipped);
  o["probes_dark_at_end"] = i64(s.probes_dark_at_end);
  o["reconverge_p50_ms"] = s.reconverge_p50_ms;
  o["reconverge_p90_ms"] = s.reconverge_p90_ms;
  o["reconverge_max_ms"] = s.reconverge_max_ms;
  o["blackhole_p50_ms"] = s.blackhole_p50_ms;
  o["blackhole_p90_ms"] = s.blackhole_p90_ms;
  o["blackhole_max_ms"] = s.blackhole_max_ms;
  o["matches_steady"] = s.matches_steady;
  o["oscillating"] = s.oscillating;
  return io::Json(std::move(o));
}

}  // namespace ranycast::converge
