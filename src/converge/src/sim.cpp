#include "ranycast/converge/sim.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "ranycast/core/rng.hpp"
#include "ranycast/exec/pool.hpp"
#include "ranycast/geo/gazetteer.hpp"

namespace ranycast::converge {

std::uint64_t fingerprint(const Config& c) noexcept {
  auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  std::uint64_t h = hash_combine(0x434f4e56u /* "CONV" */, c.timers.proc_delay_us);
  h = hash_combine(h, c.timers.proc_jitter_us);
  h = hash_combine(h, c.timers.link_base_delay_us);
  h = hash_combine(h, bits(c.timers.link_us_per_km));
  h = hash_combine(h, c.timers.mrai_us);
  h = hash_combine(h, static_cast<std::uint64_t>(c.timers.mrai_jitter));
  h = hash_combine(h, static_cast<std::uint64_t>(c.damping.enabled));
  h = hash_combine(h, bits(c.damping.flap_penalty));
  h = hash_combine(h, bits(c.damping.suppress_threshold));
  h = hash_combine(h, bits(c.damping.reuse_threshold));
  h = hash_combine(h, c.damping.half_life_us);
  h = hash_combine(h, c.max_events);
  h = hash_combine(h, c.dns_failover_us);
  return h;
}

namespace detail {

std::vector<std::uint32_t> forwarding_cycle(std::span<const std::int32_t> next_hop,
                                            std::uint32_t start) {
  std::vector<std::uint32_t> trail;
  std::uint32_t cur = start;
  while (trail.size() <= next_hop.size()) {
    for (std::size_t k = 0; k < trail.size(); ++k) {
      if (trail[k] == cur) return {trail.begin() + static_cast<std::ptrdiff_t>(k), trail.end()};
    }
    trail.push_back(cur);
    const std::int32_t nh = next_hop[cur];
    if (nh < 0) return {};  // terminated at an origin (-2) or a blackhole (-1)
    cur = static_cast<std::uint32_t>(nh);
  }
  return trail;  // unreachable: a revisit always fires within n+1 steps
}

}  // namespace detail

namespace {

/// Nearest interconnection point to the route's current ingress city — must
/// mirror the solver's egress_city exactly (same first-minimal scan order)
/// for quiesced attributes to be bit-equal to the steady-state solve.
CityId egress_city(const geo::Gazetteer& gaz, CityId from, const topo::Edge& edge) {
  if (edge.cities.size() == 1) return edge.cities.front();
  CityId best = edge.cities.front();
  double best_km = std::numeric_limits<double>::infinity();
  for (CityId c : edge.cities) {
    const double d = gaz.distance(from, c).km;
    if (d < best_km) {
      best_km = d;
      best = c;
    }
  }
  return best;
}

}  // namespace

PrefixSim::PrefixSim(const topo::Graph& graph, Asn cdn_asn, std::uint64_t seed,
                     const Config& cfg)
    : graph_(graph), cdn_asn_(cdn_asn), seed_(seed), cfg_(cfg) {
  const auto nodes = graph_.nodes();
  const std::size_t n = nodes.size();
  budget_ = cfg_.max_events != 0 ? cfg_.max_events : 4096 + 2048 * static_cast<std::uint64_t>(n);

  nodes_.resize(n);
  next_hop_.assign(n, -1);
  timelines_.assign(n, NodeTimeline{});
  mirror_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const topo::AsNode& node = nodes[i];
    nodes_[i].adj.resize(node.edges.size());
    nodes_[i].proc_delay_us =
        cfg_.timers.proc_delay_us +
        (cfg_.timers.proc_jitter_us == 0
             ? 0
             : hash_combine(hash_combine(seed_, 0x70726f63u /* "proc" */), value(node.asn)) %
                   (cfg_.timers.proc_jitter_us + 1));
    mirror_[i].resize(node.edges.size());
    for (std::size_t j = 0; j < node.edges.size(); ++j) {
      nodes_[i].adj[j].up = node.edges[j].up;
      const auto nidx = graph_.index_of(node.edges[j].neighbor);
      std::uint32_t redge = 0;
      if (nidx) {
        const auto& redges = nodes[*nidx].edges;
        for (std::size_t k = 0; k < redges.size(); ++k) {
          if (redges[k].neighbor == node.asn) {
            redge = static_cast<std::uint32_t>(k);
            break;
          }
        }
      }
      mirror_[i][j] = {static_cast<std::uint32_t>(nidx.value_or(0)), redge};
    }
  }
}

// ---- route arithmetic (mirrors bgp::solve_anycast) --------------------------

bool PrefixSim::better(const Cand& a, const Cand& b) const noexcept {
  if (a.cls != b.cls) return static_cast<int>(a.cls) > static_cast<int>(b.cls);
  if (a.len != b.len) return a.len < b.len;
  if (a.ingress_km != b.ingress_km) return a.ingress_km < b.ingress_km;
  return a.tiebreak < b.tiebreak;
}

bool PrefixSim::same_route(const Cand& a, const Cand& b) noexcept {
  if (a.valid() != b.valid()) return false;
  if (!a.valid()) return true;
  return a.origin_site == b.origin_site && a.cls == b.cls && a.len == b.len &&
         a.last_city == b.last_city && a.ingress_km == b.ingress_km &&
         a.hash_base == b.hash_base && a.tiebreak == b.tiebreak;
}

PrefixSim::Cand PrefixSim::seed_cand(const bgp::OriginAttachment& o,
                                     const topo::AsNode& holder) {
  const auto& gaz = geo::Gazetteer::world();
  Cand r;
  r.origin_site = o.site;
  r.cls = bgp::class_of(o.neighbor_rel);
  r.path = arena_.append(bgp::PathArena::kNone, cdn_asn_, o.site_city);
  r.len = 1;
  r.last_city = o.site_city;
  r.ingress_km = gaz.distance(holder.home_city, o.site_city).km;
  r.hash_base = hash_combine(hash_combine(seed_, value(o.site_city)), value(cdn_asn_));
  r.tiebreak = hash_combine(r.hash_base, value(holder.asn));
  return r;
}

PrefixSim::Cand PrefixSim::extend_into(const Cand& r, Asn via, const topo::Edge& edge,
                                       const topo::AsNode& receiver) {
  const auto& gaz = geo::Gazetteer::world();
  const CityId egress = egress_city(gaz, r.last_city, edge);
  Cand out;
  out.origin_site = r.origin_site;
  out.cls = bgp::class_of(edge.rel);  // classified by the receiver's side of the session
  out.path = arena_.append(r.path, via, egress);
  out.len = static_cast<std::uint16_t>(r.len + 1);
  out.last_city = egress;
  out.ingress_km = gaz.distance(receiver.home_city, egress).km;
  out.hash_base = hash_combine(r.hash_base, value(via));
  out.tiebreak = hash_combine(out.hash_base, value(receiver.asn));
  return out;
}

bool PrefixSim::path_contains(std::uint32_t path, Asn asn) const noexcept {
  for (std::uint32_t cur = path; cur != bgp::PathArena::kNone; cur = arena_.parent_of(cur)) {
    if (arena_.asn_of(cur) == asn) return true;
  }
  return false;
}

// ---- timers -----------------------------------------------------------------

std::uint64_t PrefixSim::mrai_us(std::size_t node, std::size_t edge) const noexcept {
  const std::uint64_t base = cfg_.timers.mrai_us;
  if (!cfg_.timers.mrai_jitter || base == 0) return base;
  const Asn me = graph_.nodes()[node].asn;
  const Asn nbr = graph_.nodes()[node].edges[edge].neighbor;
  const std::uint64_t h = hash_combine(hash_combine(seed_, value(me)), value(nbr));
  return base - h % (base / 4 + 1);
}

std::uint64_t PrefixSim::link_delay_us(std::size_t node, std::size_t edge) const noexcept {
  const auto& gaz = geo::Gazetteer::world();
  const topo::AsNode& me = graph_.nodes()[node];
  const auto [rn, re] = mirror_[node][edge];
  const double km = gaz.distance(me.home_city, graph_.nodes()[rn].home_city).km;
  return cfg_.timers.link_base_delay_us +
         static_cast<std::uint64_t>(std::llround(cfg_.timers.link_us_per_km * km));
}

// ---- event machinery --------------------------------------------------------

void PrefixSim::push(Event e) {
  e.seq = seq_++;
  queue_.push(std::move(e));
}

void PrefixSim::schedule_send(std::size_t node, std::size_t edge, std::uint64_t now) {
  AdjState& a = nodes_[node].adj[edge];
  if (!a.up || a.pending) return;
  a.pending = true;
  Event ev;
  ev.kind = Event::Kind::Send;
  ev.time = std::max(now, a.next_ok_us);  // MRAI coalescing point
  ev.node = static_cast<std::uint32_t>(node);
  ev.edge = static_cast<std::uint32_t>(edge);
  push(std::move(ev));
}

PrefixSim::Cand PrefixSim::eligible_export(std::size_t node, std::size_t edge) const {
  const NodeState& n = nodes_[node];
  const Cand& b = n.best;
  if (!b.valid()) return {};
  const topo::Edge& e = graph_.nodes()[node].edges[edge];
  // Gao-Rexford export: everything to customers; only customer routes to
  // peers and providers (e.rel is the neighbor's role from our perspective).
  if (e.rel != topo::Rel::Customer && b.cls != bgp::RouteClass::Customer) return {};
  // Sender-side AS-path loop check: the receiver would reject it anyway;
  // suppressing here halves the message volume and implicitly withdraws a
  // previously advertised route that now points back through the receiver.
  if (path_contains(b.path, e.neighbor)) return {};
  return b;
}

void PrefixSim::fire_send(std::size_t node, std::size_t edge, std::uint64_t now) {
  AdjState& a = nodes_[node].adj[edge];
  a.pending = false;
  if (!a.up) return;  // session died between scheduling and firing
  const Cand content = eligible_export(node, edge);
  if (same_route(content, a.sent)) return;  // nothing new to say
  a.sent = content;
  a.next_ok_us = now + mrai_us(node, edge);
  const auto [rn, re] = mirror_[node][edge];
  Event ev;
  ev.kind = Event::Kind::Update;
  ev.time = now + link_delay_us(node, edge) + nodes_[rn].proc_delay_us;
  ev.node = rn;
  ev.edge = re;
  ev.gen = nodes_[rn].adj[re].gen;
  ev.announce = content.valid();
  ev.route = content;
  ev.via = graph_.nodes()[node].asn;
  push(std::move(ev));
  if (content.valid()) {
    ++updates_sent_;
  } else {
    ++withdrawals_sent_;
  }
}

void PrefixSim::accept_update(const Event& e) {
  AdjState& a = nodes_[e.node].adj[e.edge];
  if (!a.up || e.gen != a.gen) return;  // stale: rode a session that reset
  Cand next{};
  if (e.announce) {
    next = extend_into(e.route, e.via, graph_.nodes()[e.node].edges[e.edge],
                       graph_.nodes()[e.node]);
  }
  if (same_route(a.in, next)) return;
  if (cfg_.damping.enabled && a.in.valid()) bump_penalty(e.node, e.edge, e.time);
  a.in = next;
  reselect(e.node, e.time);  // reselect skips suppressed sessions
}

void PrefixSim::bump_penalty(std::size_t node, std::size_t edge, std::uint64_t now) {
  AdjState& a = nodes_[node].adj[edge];
  if (a.penalty > 0.0 && now > a.penalty_at_us) {
    a.penalty *= std::exp2(-static_cast<double>(now - a.penalty_at_us) /
                           static_cast<double>(cfg_.damping.half_life_us));
  }
  a.penalty_at_us = now;
  a.penalty += cfg_.damping.flap_penalty;
  if (!a.suppressed && a.penalty >= cfg_.damping.suppress_threshold) {
    a.suppressed = true;
    ++suppressed_;
  }
  if (a.suppressed && !a.reuse_queued) {
    const double ratio = a.penalty / cfg_.damping.reuse_threshold;
    const std::uint64_t wait =
        ratio <= 1.0 ? 1
                     : static_cast<std::uint64_t>(std::ceil(
                           static_cast<double>(cfg_.damping.half_life_us) * std::log2(ratio)));
    Event ev;
    ev.kind = Event::Kind::Reuse;
    ev.time = now + wait;
    ev.node = static_cast<std::uint32_t>(node);
    ev.edge = static_cast<std::uint32_t>(edge);
    push(std::move(ev));
    a.reuse_queued = true;
  }
}

void PrefixSim::fire_reuse(std::size_t node, std::size_t edge, std::uint64_t now) {
  AdjState& a = nodes_[node].adj[edge];
  a.reuse_queued = false;
  if (!a.suppressed) return;  // session reset cleared the penalty meanwhile
  if (a.penalty > 0.0 && now > a.penalty_at_us) {
    a.penalty *= std::exp2(-static_cast<double>(now - a.penalty_at_us) /
                           static_cast<double>(cfg_.damping.half_life_us));
  }
  a.penalty_at_us = now;
  if (a.penalty <= cfg_.damping.reuse_threshold) {
    a.suppressed = false;
    reselect(node, now);
  } else {
    const double ratio = a.penalty / cfg_.damping.reuse_threshold;
    Event ev;
    ev.kind = Event::Kind::Reuse;
    ev.time = now + static_cast<std::uint64_t>(std::ceil(
                        static_cast<double>(cfg_.damping.half_life_us) * std::log2(ratio)));
    ev.node = static_cast<std::uint32_t>(node);
    ev.edge = static_cast<std::uint32_t>(edge);
    push(std::move(ev));
    a.reuse_queued = true;
  }
}

void PrefixSim::record_change(std::size_t node, const Cand& next, std::uint64_t now) {
  NodeTimeline& t = timelines_[node];
  const Cand& old = nodes_[node].best;
  if (!t.changed) {
    t.changed = true;
    t.first_change_us = now;
  }
  t.last_change_us = now;
  ++t.rib_changes;
  const bool was = old.valid();
  const bool is = next.valid();
  if (was && is && old.origin_site != next.origin_site) ++t.site_flips;
  if (was && !is && !t.dark) {
    t.dark = true;
    t.dark_since_us = now;
  }
  if (!was && is && t.dark) {
    t.blackhole_us += std::min(now - t.dark_since_us, cfg_.dns_failover_us);
    t.dark = false;
  }
}

void PrefixSim::reselect(std::size_t node, std::uint64_t now) {
  NodeState& n = nodes_[node];
  Cand best{};
  std::int32_t hop = -1;
  for (const auto& [origin, cand] : n.seeds) {
    if (!best.valid() || better(cand, best)) {
      best = cand;
      hop = -2;
    }
  }
  for (std::size_t j = 0; j < n.adj.size(); ++j) {
    const AdjState& a = n.adj[j];
    if (!a.in.valid() || a.suppressed) continue;
    if (!best.valid() || better(a.in, best)) {
      best = a.in;
      hop = static_cast<std::int32_t>(mirror_[node][j].first);
    }
  }
  if (same_route(best, n.best)) return;

  record_change(node, best, now);
  n.best = best;
  next_hop_[node] = best.valid() ? hop : -1;

  if (best.valid()) {
    const auto cycle = detail::forwarding_cycle(next_hop_, static_cast<std::uint32_t>(node));
    if (!cycle.empty()) {
      ++transient_loops_;
      for (const std::uint32_t idx : cycle) timelines_[idx].looped = true;
    }
  }

  for (std::size_t j = 0; j < n.adj.size(); ++j) {
    const AdjState& a = n.adj[j];
    if (!a.up || a.pending) continue;
    // Pre-filter: only wake the session if the export content would differ
    // from what it last carried. The Send recomputes at fire time, so
    // intermediate changes coalesce under the MRAI.
    if (!same_route(eligible_export(node, j), a.sent)) schedule_send(node, j, now);
  }
}

void PrefixSim::apply_link_transition(std::size_t node, std::size_t edge, bool up,
                                      std::uint64_t now) {
  AdjState& a = nodes_[node].adj[edge];
  a.up = up;
  ++a.gen;
  a.sent = Cand{};
  a.pending = false;
  a.next_ok_us = 0;
  a.penalty = 0.0;
  a.penalty_at_us = 0;
  a.suppressed = false;
  a.reuse_queued = false;
  if (up) {
    schedule_send(node, edge, now);  // fresh session: full re-advertisement
  } else if (a.in.valid()) {
    a.in = Cand{};  // implicit withdraw of everything learned on the session
    reselect(node, now);
  }
}

void PrefixSim::apply_origin_delta(const OriginDelta& d) {
  // Provider-relationship originations never enter the solver's candidate
  // set (stage 1 takes customers, stage 2 peers); skip them here too so the
  // quiesced state matches.
  if (d.origin.neighbor_rel == topo::Rel::Provider) return;
  const auto idx = graph_.index_of(d.origin.neighbor);
  if (!idx) return;
  NodeState& n = nodes_[*idx];
  if (d.announce) {
    n.seeds.emplace_back(d.origin, seed_cand(d.origin, graph_.nodes()[*idx]));
  } else {
    const auto match = [&](const auto& s) {
      const bgp::OriginAttachment& o = s.first;
      return o.site == d.origin.site && o.site_city == d.origin.site_city &&
             o.neighbor == d.origin.neighbor && o.neighbor_rel == d.origin.neighbor_rel &&
             o.onsite_router == d.origin.onsite_router;
    };
    const auto it = std::find_if(n.seeds.begin(), n.seeds.end(), match);
    if (it == n.seeds.end()) return;
    n.seeds.erase(it);
  }
  reselect(*idx, 0);
}

void PrefixSim::sync_overlay_with_graph() {
  const auto nodes = graph_.nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = 0; j < nodes[i].edges.size(); ++j) {
      const bool gup = nodes[i].edges[j].up;
      if (nodes_[i].adj[j].up != gup) apply_link_transition(i, j, gup, 0);
    }
  }
}

void PrefixSim::reset_epoch_controls() {
  for (NodeState& n : nodes_) {
    for (AdjState& a : n.adj) {
      a.pending = false;
      a.gen = 0;
      a.next_ok_us = 0;
      a.penalty = 0.0;
      a.penalty_at_us = 0;
      a.suppressed = false;
      a.reuse_queued = false;
    }
  }
  queue_ = {};
  seq_ = 0;
  events_ = 0;
  updates_sent_ = 0;
  withdrawals_sent_ = 0;
  transient_loops_ = 0;
  suppressed_ = 0;
  last_event_us_ = 0;
  oscillating_ = false;
}

// ---- arena compaction --------------------------------------------------------

std::uint32_t PrefixSim::reintern(const bgp::PathArena& from, std::uint32_t path,
                                  bgp::PathArena& into) const {
  if (path == bgp::PathArena::kNone) return bgp::PathArena::kNone;
  std::vector<std::uint32_t> chain;
  for (std::uint32_t cur = path; cur != bgp::PathArena::kNone; cur = from.parent_of(cur)) {
    chain.push_back(cur);
  }
  std::uint32_t parent = bgp::PathArena::kNone;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    parent = into.append(parent, from.asn_of(*it), from.city_of(*it));
  }
  return parent;
}

void PrefixSim::compact_arena() {
  // Every in-flight path died with the drained queue; only the RIB state
  // survives an epoch. Re-interning it into a fresh arena bounds memory by
  // the RIB size instead of the cumulative update volume.
  bgp::PathArena fresh;
  for (NodeState& n : nodes_) {
    for (auto& [origin, cand] : n.seeds) cand.path = reintern(arena_, cand.path, fresh);
    for (AdjState& a : n.adj) {
      a.in.path = reintern(arena_, a.in.path, fresh);
      a.sent.path = reintern(arena_, a.sent.path, fresh);
    }
    n.best.path = reintern(arena_, n.best.path, fresh);
  }
  arena_ = std::move(fresh);
}

// ---- run loops ----------------------------------------------------------------

RegionTransient PrefixSim::drain() {
  while (!queue_.empty()) {
    const Event e = queue_.top();
    queue_.pop();
    ++events_;
    if (events_ > budget_) {
      // Oscillation guard: flag and stop instead of spinning. The dropped
      // in-flight updates leave sessions inconsistent (a sender's Adj-RIB-Out
      // may record a delivery the receiver never saw), so the next epoch
      // must re-flood from scratch rather than trust the session state.
      oscillating_ = true;
      rebuild_pending_ = true;
      queue_ = {};
      break;
    }
    if ((events_ & 0x3FFu) == 0) {
      if (const exec::CancelFlag* flag = exec::installed_cancel_flag();
          flag != nullptr && flag->requested()) {
        throw exec::CancelledError{};
      }
    }
    last_event_us_ = e.time;
    switch (e.kind) {
      case Event::Kind::Update:
        accept_update(e);
        break;
      case Event::Kind::Send:
        fire_send(e.node, e.edge, e.time);
        break;
      case Event::Kind::Reuse:
        fire_reuse(e.node, e.edge, e.time);
        break;
      case Event::Kind::LinkFlip: {
        const TimedLinkFlip& f = schedule_[e.edge];
        const auto ia = graph_.index_of(f.a);
        const auto ib = graph_.index_of(f.b);
        if (!ia || !ib) break;
        const auto& edges = graph_.nodes()[*ia].edges;
        for (std::size_t j = 0; j < edges.size(); ++j) {
          if (edges[j].neighbor != f.b) continue;
          const auto [rn, re] = mirror_[*ia][j];
          apply_link_transition(*ia, j, f.up, e.time);
          apply_link_transition(rn, re, f.up, e.time);
          break;
        }
        break;
      }
    }
  }
  return finalize(RegionTransient{});
}

RegionTransient PrefixSim::finalize(RegionTransient out) {
  out.events = events_;
  out.updates_sent = updates_sent_;
  out.withdrawals_sent = withdrawals_sent_;
  out.transient_loops = transient_loops_;
  out.suppressed = suppressed_;
  out.last_event_us = last_event_us_;
  out.oscillating = oscillating_;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    NodeTimeline& t = timelines_[i];
    t.routed_finally = nodes_[i].best.valid();
    if (t.dark) {
      // Never got a route back this epoch: the client's outage runs until
      // DNS-level failover rescues it, so charge the full window.
      t.blackhole_us += cfg_.dns_failover_us;
      t.dark = false;
      t.dark_at_end = true;
    }
    if (t.changed) {
      ++out.nodes_changed;
      out.converged_us = std::max(out.converged_us, t.last_change_us);
    }
    out.rib_changes += t.rib_changes;
    out.site_flips += t.site_flips;
    if (t.blackhole_us > 0) ++out.nodes_blackholed;
    if (t.dark_at_end) ++out.nodes_dark_at_end;
    out.max_blackhole_us = std::max(out.max_blackhole_us, t.blackhole_us);
  }
  return out;
}

RegionTransient PrefixSim::cold_start(std::span<const bgp::OriginAttachment> origins) {
  arena_ = bgp::PathArena{};
  const auto nodes = graph_.nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    NodeState& n = nodes_[i];
    n.seeds.clear();
    n.best = Cand{};
    for (std::size_t j = 0; j < n.adj.size(); ++j) {
      n.adj[j] = AdjState{};
      n.adj[j].up = nodes[i].edges[j].up;
    }
  }
  std::fill(next_hop_.begin(), next_hop_.end(), -1);
  timelines_.assign(nodes_.size(), NodeTimeline{});
  reset_epoch_controls();
  rebuild_pending_ = false;
  schedule_.clear();
  for (const bgp::OriginAttachment& o : origins) {
    apply_origin_delta(OriginDelta{true, o});
  }
  return drain();
}

RegionTransient PrefixSim::run_step(std::span<const OriginDelta> origin_deltas,
                                    std::span<const TimedLinkFlip> schedule) {
  compact_arena();
  timelines_.assign(nodes_.size(), NodeTimeline{});
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    timelines_[i].routed_initially = nodes_[i].best.valid();
  }
  reset_epoch_controls();
  // Recover from an oscillation-truncated epoch: drop every session's
  // Adj-RIB-In/Out (mid-flight state of unknowable consistency) and force a
  // full reselect + re-flood below, exactly like a cold start except that
  // the timelines keep charging from the (possibly wrong) pre-step routes.
  const bool rebuild = rebuild_pending_;
  rebuild_pending_ = false;
  if (rebuild) {
    for (NodeState& n : nodes_) {
      for (AdjState& a : n.adj) {
        a.in = Cand{};
        a.sent = Cand{};
      }
    }
  }
  schedule_.assign(schedule.begin(), schedule.end());
  for (std::size_t k = 0; k < schedule_.size(); ++k) {
    Event ev;
    ev.kind = Event::Kind::LinkFlip;
    ev.time = schedule_[k].at_us;
    ev.edge = static_cast<std::uint32_t>(k);
    push(std::move(ev));
  }
  sync_overlay_with_graph();
  for (const OriginDelta& d : origin_deltas) apply_origin_delta(d);
  if (rebuild) {
    // reselect alone is not enough to restart the flood: a node whose best
    // is unchanged (an origin holder, say) early-outs without waking its
    // exports, and its cleared Adj-RIB-Out means nothing would ever flow.
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      reselect(i, 0);
      NodeState& n = nodes_[i];
      for (std::size_t j = 0; j < n.adj.size(); ++j) {
        if (n.adj[j].up && eligible_export(i, j).valid()) schedule_send(i, j, 0);
      }
    }
  }
  return drain();
}

// ---- accessors -----------------------------------------------------------------

bool PrefixSim::has_route(std::size_t node) const noexcept {
  return nodes_[node].best.valid();
}

std::optional<SiteId> PrefixSim::catchment(std::size_t node) const noexcept {
  if (!nodes_[node].best.valid()) return std::nullopt;
  return nodes_[node].best.origin_site;
}

PrefixSim::RouteView PrefixSim::route_view(std::size_t node) const noexcept {
  const Cand& b = nodes_[node].best;
  RouteView v;
  v.valid = b.valid();
  if (!v.valid) return v;
  v.site = b.origin_site;
  v.cls = b.cls;
  v.len = b.len;
  v.ingress_km = b.ingress_km;
  v.tiebreak = b.tiebreak;
  return v;
}

}  // namespace ranycast::converge
