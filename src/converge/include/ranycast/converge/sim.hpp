// Deterministic event-driven BGP convergence for one anycast prefix.
//
// PrefixSim runs the distributed counterpart of bgp::solve_anycast: every AS
// holds an Adj-RIB-In per session plus its locally originated seeds, selects
// with the exact same (local-pref class, path length, ingress distance,
// hash tie-break) comparator and attribute arithmetic as the solver, and
// exports under the same Gao-Rexford policy (everything to customers,
// customer routes only to peers and providers). Updates travel as
// timestamped events through a (time, seq) priority queue with per-AS
// processing delay, per-session MRAI coalescing and optional route-flap
// damping, so between two topology states the simulator exposes the
// *transient* the instantaneous solver cannot see: blackhole windows,
// forwarding loops, interim catchment flips and the time to reconverge.
//
// Because selection and export match the solver and Gao-Rexford policies
// have a unique stable solution, the quiesced state equals the solver's
// output for the same topology — tests/converge/test_differential.cpp holds
// that equivalence over every scenario in configs/. Everything is integer
// virtual time and hash-derived jitter: byte-identical across runs and
// thread counts (each region's sim is single-threaded; regions fan out).
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <span>
#include <vector>

#include "ranycast/bgp/path_arena.hpp"
#include "ranycast/bgp/route.hpp"
#include "ranycast/converge/config.hpp"
#include "ranycast/topo/graph.hpp"

namespace ranycast::converge {

/// An announcement-state change feeding one convergence step: a site
/// origination appearing or disappearing (withdraw/restore faults). Link
/// state changes are not passed explicitly — run_step() diffs its session
/// overlay against the graph's current edge state and synthesizes the
/// session resets itself.
struct OriginDelta {
  bool announce{true};
  bgp::OriginAttachment origin{};
};

/// A scheduled mid-run link flip (session reset at a virtual time), used to
/// build adversarial MRAI-race fixtures where the topology flaps faster
/// than the plane can reconverge.
struct TimedLinkFlip {
  std::uint64_t at_us{0};
  Asn a{kInvalidAsn};
  Asn b{kInvalidAsn};
  bool up{true};
};

/// Per-AS transient timeline of one convergence run.
struct NodeTimeline {
  bool changed{false};
  std::uint64_t first_change_us{0};
  std::uint64_t last_change_us{0};  ///< time-to-reconverge for this AS
  std::uint32_t rib_changes{0};
  std::uint32_t site_flips{0};  ///< interim catchment changes (both sides routed)
  /// Total user-visible outage: each routed->unrouted interval charged up to
  /// the DNS failover window (Config::dns_failover_us).
  std::uint64_t blackhole_us{0};
  bool routed_initially{false};
  bool routed_finally{false};
  bool dark_at_end{false};  ///< lost its route and never got one back
  bool looped{false};       ///< sat on a transient forwarding loop

  // internal interval bookkeeping (finalized before run_step returns)
  bool dark{false};
  std::uint64_t dark_since_us{0};
};

/// Aggregate view of one region's convergence run.
struct RegionTransient {
  std::uint64_t events{0};  ///< queue events processed
  std::uint64_t updates_sent{0};
  std::uint64_t withdrawals_sent{0};
  std::uint64_t rib_changes{0};
  std::uint64_t converged_us{0};  ///< last best-route change anywhere
  std::uint64_t last_event_us{0};
  std::uint64_t transient_loops{0};  ///< forwarding cycles observed
  std::uint64_t suppressed{0};       ///< damping suppression activations
  std::uint64_t site_flips{0};
  std::uint64_t nodes_changed{0};
  std::uint64_t nodes_blackholed{0};
  std::uint64_t nodes_dark_at_end{0};
  std::uint64_t max_blackhole_us{0};
  bool oscillating{false};  ///< event budget exhausted before quiescence

  // Differential check vs the steady-state solver, filled by Plane::step.
  bool matches_steady{true};
  std::uint64_t mismatches{0};
};

namespace detail {
/// Walk a forwarding next-hop array from `start` (-1 = no route, -2 =
/// origin-terminated, else dense node index) and return the nodes forming
/// the first cycle encountered — empty when the walk terminates. Standalone
/// so the loop detector is unit-testable on crafted arrays.
std::vector<std::uint32_t> forwarding_cycle(std::span<const std::int32_t> next_hop,
                                            std::uint32_t start);
}  // namespace detail

class PrefixSim {
 public:
  /// The graph must outlive the sim. `seed` is the solver tie-break seed of
  /// the same prefix — hash_combine(lab seed, region index) — so quiesced
  /// tie-breaks are bit-equal to the steady-state solve.
  PrefixSim(const topo::Graph& graph, Asn cdn_asn, std::uint64_t seed, const Config& cfg);

  /// Reset all routing state and converge from scratch on the graph's
  /// current link state and the given originations.
  RegionTransient cold_start(std::span<const bgp::OriginAttachment> origins);

  /// One transient step from the current quiesced state: synchronize the
  /// session overlay with the graph (synthesizing session resets for every
  /// adjacency whose up/down state changed since the last run), apply the
  /// origin deltas at t=0 and any scheduled flips at their times, then run
  /// to quiescence (or the oscillation budget, or cancellation — a
  /// supervisor's installed cancel flag is polled and exec::CancelledError
  /// thrown, which guard::run_sweep converts into a truncated run).
  RegionTransient run_step(std::span<const OriginDelta> origin_deltas,
                           std::span<const TimedLinkFlip> schedule = {});

  std::size_t node_count() const noexcept { return nodes_.size(); }
  bool has_route(std::size_t node) const noexcept;
  std::optional<SiteId> catchment(std::size_t node) const noexcept;

  /// Selected-route attributes for equivalence checks against the solver.
  struct RouteView {
    bool valid{false};
    SiteId site{kInvalidSite};
    bgp::RouteClass cls{bgp::RouteClass::Provider};
    std::uint16_t len{0};
    double ingress_km{0.0};
    std::uint64_t tiebreak{0};
  };
  RouteView route_view(std::size_t node) const noexcept;

  /// Per-AS timelines of the most recent run, indexed by dense node index.
  std::span<const NodeTimeline> timelines() const noexcept { return timelines_; }

 private:
  /// One route candidate in the frame of the node holding it; attribute
  /// arithmetic mirrors the solver's CompactRoute exactly.
  struct Cand {
    std::uint32_t path{bgp::PathArena::kNone};
    std::uint16_t len{0};
    CityId last_city{kInvalidCity};
    SiteId origin_site{kInvalidSite};
    bgp::RouteClass cls{bgp::RouteClass::Provider};
    double ingress_km{0.0};
    std::uint64_t hash_base{0};
    std::uint64_t tiebreak{0};

    bool valid() const noexcept { return path != bgp::PathArena::kNone; }
  };

  /// Per-session state at one endpoint of an adjacency.
  struct AdjState {
    Cand in{};    ///< Adj-RIB-In: the neighbor's last accepted advertisement
    Cand sent{};  ///< last content we advertised out (invalid = withdrawn)
    bool up{true};          ///< session overlay (synced with graph per step)
    bool pending{false};    ///< a Send event is queued for this session
    /// Session generation, bumped on every up/down transition: an update
    /// delivered across a session reset (sent on the old session, arriving
    /// after a flap cycle) is recognized as stale and dropped, like the TCP
    /// stream it rode on.
    std::uint32_t gen{0};
    std::uint64_t next_ok_us{0};  ///< MRAI gate: earliest next advertisement
    // flap damping of the inbound route on this session
    double penalty{0.0};
    std::uint64_t penalty_at_us{0};
    bool suppressed{false};
    bool reuse_queued{false};
  };

  struct NodeState {
    std::vector<AdjState> adj;  ///< parallel to the graph node's edge list
    std::vector<std::pair<bgp::OriginAttachment, Cand>> seeds;
    Cand best{};
    std::uint64_t proc_delay_us{0};
  };

  struct Event {
    std::uint64_t time{0};
    std::uint64_t seq{0};
    enum class Kind : std::uint8_t { Update, Send, Reuse, LinkFlip } kind{Kind::Update};
    std::uint32_t node{0};  ///< receiver (Update/Reuse) or sender (Send)
    std::uint32_t edge{0};  ///< edge index at `node`; LinkFlip: schedule index
    bool announce{true};    ///< Update: announce vs withdraw
    std::uint32_t gen{0};   ///< Update: receiver session generation at send
    Cand route{};           ///< Update payload, in the *sender's* frame
    Asn via{kInvalidAsn};   ///< Update: sender ASN

    bool operator>(const Event& o) const noexcept {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  bool better(const Cand& a, const Cand& b) const noexcept;
  static bool same_route(const Cand& a, const Cand& b) noexcept;
  Cand seed_cand(const bgp::OriginAttachment& o, const topo::AsNode& holder);
  Cand extend_into(const Cand& r, Asn via, const topo::Edge& edge,
                   const topo::AsNode& receiver);
  bool path_contains(std::uint32_t path, Asn asn) const noexcept;
  std::uint64_t mrai_us(std::size_t node, std::size_t edge) const noexcept;
  std::uint64_t link_delay_us(std::size_t node, std::size_t edge) const noexcept;

  void push(Event e);
  void schedule_send(std::size_t node, std::size_t edge, std::uint64_t now);
  Cand eligible_export(std::size_t node, std::size_t edge) const;
  void fire_send(std::size_t node, std::size_t edge, std::uint64_t now);
  void accept_update(const Event& e);
  void bump_penalty(std::size_t node, std::size_t edge, std::uint64_t now);
  void fire_reuse(std::size_t node, std::size_t edge, std::uint64_t now);
  void reselect(std::size_t node, std::uint64_t now);
  void record_change(std::size_t node, const Cand& next, std::uint64_t now);
  void apply_link_transition(std::size_t node, std::size_t edge, bool up,
                             std::uint64_t now);
  void apply_origin_delta(const OriginDelta& d);
  void sync_overlay_with_graph();
  void reset_epoch_controls();
  void compact_arena();
  std::uint32_t reintern(const bgp::PathArena& from, std::uint32_t path,
                         bgp::PathArena& into) const;
  RegionTransient drain();
  RegionTransient finalize(RegionTransient out);

  const topo::Graph& graph_;
  Asn cdn_asn_;
  std::uint64_t seed_;
  Config cfg_;
  std::uint64_t budget_;

  bgp::PathArena arena_;
  std::vector<NodeState> nodes_;
  std::vector<std::int32_t> next_hop_;  ///< -1 none, -2 origin, else node index
  std::vector<NodeTimeline> timelines_;
  /// mirror_[i][j] = (neighbor dense index, edge index of the reverse
  /// direction at the neighbor); precomputed once.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> mirror_;

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::uint64_t seq_{0};
  std::vector<TimedLinkFlip> schedule_;

  // per-run counters
  std::uint64_t events_{0};
  std::uint64_t updates_sent_{0};
  std::uint64_t withdrawals_sent_{0};
  std::uint64_t transient_loops_{0};
  std::uint64_t suppressed_{0};
  std::uint64_t last_event_us_{0};
  bool oscillating_{false};
  /// Set when the oscillation budget fired: the in-flight updates it dropped
  /// leave Adj-RIB-In/Out inconsistent, so the next epoch re-floods from
  /// scratch instead of trusting the session state.
  bool rebuild_pending_{false};
};

}  // namespace ranycast::converge
