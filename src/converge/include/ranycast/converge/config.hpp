// Timer and policy knobs of the transient BGP convergence plane.
//
// All times are integer virtual microseconds: the simulator never reads a
// wall clock, so two runs with the same config, seed and topology replay the
// exact same event sequence. Defaults follow operational folklore — ~tens of
// milliseconds of update processing, a seconds-scale MRAI, RIPE-style flap
// damping thresholds and a 30 s DNS failover TTL — and every one of them is
// sweepable (bench_ablation_convergence).
#pragma once

#include <cstdint>

namespace ranycast::converge {

struct Timers {
  /// Base per-AS update processing delay, plus a deterministic per-AS jitter
  /// in [0, proc_jitter_us] (hashed from seed and ASN) so routers do not run
  /// in lock-step.
  std::uint64_t proc_delay_us{10'000};
  std::uint64_t proc_jitter_us{40'000};

  /// Propagation delay of one update message across an adjacency: a fixed
  /// base plus a distance term between the two ASes' home cities.
  std::uint64_t link_base_delay_us{1'000};
  double link_us_per_km{5.0};

  /// Minimum Route Advertisement Interval per (AS, neighbor) session. With
  /// mrai_jitter each session gets a deterministic stagger in
  /// [0.75*mrai_us, mrai_us] — the RFC 4271 randomization that breaks
  /// synchronized advertisement waves, made reproducible.
  std::uint64_t mrai_us{5'000'000};
  bool mrai_jitter{true};
};

/// Route-flap damping (RFC 2439 shape): every change received on a session
/// that already carried a route adds `flap_penalty`; the penalty halves
/// every `half_life_us`. Crossing `suppress_threshold` suppresses the
/// session's route until decay brings the penalty under `reuse_threshold`.
struct Damping {
  bool enabled{false};
  double flap_penalty{1000.0};
  double suppress_threshold{2000.0};
  double reuse_threshold{750.0};
  std::uint64_t half_life_us{15'000'000};
};

struct Config {
  Timers timers{};
  Damping damping{};

  /// Oscillation guard: a run that processes more than this many events is
  /// flagged `oscillating` and terminated cleanly instead of spinning
  /// (MRAI-race configurations can otherwise flap forever). 0 picks an
  /// automatic budget of 4096 + 2048 * node-count, far above any converging
  /// run's volume.
  std::uint64_t max_events{0};

  /// How long a client keeps hitting a blackholed prefix before DNS-level
  /// failover rescues it. Each blackhole interval is charged
  /// min(interval, dns_failover_us); a node still dark when the plane
  /// quiesces is charged the full failover window.
  std::uint64_t dns_failover_us{30'000'000};
};

/// Stable hash over every field, folded into checkpoint fingerprints so a
/// resume under a different convergence config is refused.
std::uint64_t fingerprint(const Config& c) noexcept;

}  // namespace ranycast::converge
