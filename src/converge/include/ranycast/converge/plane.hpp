// Deployment-wide transient convergence: one PrefixSim per regional prefix,
// fanned out over the deterministic thread pool, rolled up to probe-level
// outage statistics.
//
// The Plane sits between the chaos engine and the per-prefix simulators. The
// engine mutates topology/announcement state, hands the plane the origin
// deltas it caused, and gets back a StepTransient: per-region convergence
// aggregates plus per-probe blackhole/loop/flip accounting and a
// differential verdict against the freshly re-solved steady state. Regions
// are independent (one prefix each), so they run concurrently; every
// per-region computation is single-threaded and integer-time, which keeps
// reports byte-identical across thread counts.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ranycast/converge/sim.hpp"
#include "ranycast/lab/lab.hpp"

namespace ranycast::converge {

/// A probe as the convergence plane sees it: the AS it measures from and the
/// regional prefix it was being served from when the step began.
struct ProbeRef {
  Asn asn{kInvalidAsn};
  std::size_t region{0};
};

/// One chaos step's transient, across all regions of a deployment.
struct StepTransient {
  std::size_t index{0};
  std::string event;
  std::vector<RegionTransient> regions;

  std::uint64_t probes{0};
  std::uint64_t probes_blackholed{0};  ///< saw a routed->unrouted window
  std::uint64_t probes_looped{0};      ///< sat on a transient forwarding loop
  std::uint64_t probes_flipped{0};     ///< interim catchment change
  std::uint64_t probes_dark_at_end{0};

  /// Time-to-reconverge over the probes whose route changed, milliseconds.
  double reconverge_p50_ms{0.0};
  double reconverge_p90_ms{0.0};
  double reconverge_max_ms{0.0};

  /// Blackhole time over the probes that went dark at all, milliseconds.
  double blackhole_p50_ms{0.0};
  double blackhole_p90_ms{0.0};
  double blackhole_max_ms{0.0};

  bool matches_steady{true};  ///< every region quiesced onto the solver's answer
  bool oscillating{false};    ///< any region hit its event budget
};

/// Snapshot of a deployment's origination state, per region — the input to
/// diff_origins. Captured before and after the engine applies a fault.
std::vector<std::vector<bgp::OriginAttachment>> origins_by_region(
    const cdn::Deployment& dep);

/// Per-region origin deltas turning `before` into `after`: withdrawals
/// first, then announcements, both in `before`/`after` order.
std::vector<std::vector<OriginDelta>> diff_origins(
    const std::vector<std::vector<bgp::OriginAttachment>>& before,
    const std::vector<std::vector<bgp::OriginAttachment>>& after);

class Plane {
 public:
  /// The lab and handle must outlive the plane; the handle's outcomes must
  /// be re-solved by the caller before step() so the differential check
  /// compares against the current steady state.
  Plane(const lab::Lab& lab, const lab::DeploymentHandle& handle, const Config& cfg);

  /// Cold-start every region's simulator on the graph's and deployment's
  /// current state (no transient recorded — this is the baseline the first
  /// step diverges from).
  void rebuild();

  std::size_t region_count() const noexcept { return sims_.size(); }

  /// Run one transient step: per-region origin deltas (from diff_origins)
  /// feed each region's simulator, which also discovers link-state changes
  /// by diffing its session overlay against the graph. Regions fan out over
  /// the thread pool; the rollup is reduced in region/probe order.
  StepTransient step(std::size_t index, std::string event,
                     std::span<const std::vector<OriginDelta>> deltas_by_region,
                     std::span<const ProbeRef> probes);

 private:
  const lab::Lab& lab_;
  const lab::DeploymentHandle& handle_;
  Config cfg_;
  std::vector<std::unique_ptr<PrefixSim>> sims_;
};

}  // namespace ranycast::converge
