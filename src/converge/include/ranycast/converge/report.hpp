// JSON projection of transient convergence results, shared by the chaos
// scenario reporter, the CLI and the tests.
#pragma once

#include "ranycast/converge/plane.hpp"
#include "ranycast/io/json.hpp"

namespace ranycast::converge {

io::Json region_to_json(const RegionTransient& r);
io::Json transient_to_json(const StepTransient& s);

}  // namespace ranycast::converge
