// <city, AS> probe grouping and median aggregation (paper §3.1).
//
// RIPE Atlas probes are unevenly distributed; the paper therefore groups
// probes by <city, AS> pair and reports every statistic over the *median*
// of each group, so that one heavily instrumented network cannot dominate
// a CDF. All percentage/percentile/CDF results in this library follow the
// same convention.
#pragma once

#include <algorithm>
#include <optional>
#include <span>
#include <vector>

#include "ranycast/atlas/probe.hpp"

namespace ranycast::atlas {

struct ProbeGroup {
  CityId city{kInvalidCity};  ///< from the probes' geocodes
  Asn asn{kInvalidAsn};
  geo::Area area{geo::Area::EMEA};
  std::vector<const Probe*> members;
};

/// Group probes by <city, AS>. Order is deterministic (by city, then ASN).
std::vector<ProbeGroup> group_probes(std::span<const Probe* const> probes);

/// Median of the per-member values produced by `f`; members for which `f`
/// returns nullopt are skipped. Returns nullopt if no member produced a
/// value. `f` is any callable const Probe* -> std::optional<double>.
template <typename F>
std::optional<double> group_median(const ProbeGroup& g, F&& f) {
  std::vector<double> vals;
  vals.reserve(g.members.size());
  for (const Probe* p : g.members) {
    if (const auto v = f(p)) vals.push_back(*v);
  }
  if (vals.empty()) return std::nullopt;
  std::sort(vals.begin(), vals.end());
  const std::size_t n = vals.size();
  return n % 2 == 1 ? vals[n / 2] : 0.5 * (vals[n / 2 - 1] + vals[n / 2]);
}

}  // namespace ranycast::atlas
