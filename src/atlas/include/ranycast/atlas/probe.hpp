// A RIPE Atlas-style measurement probe.
#pragma once

#include "ranycast/core/ipv4.hpp"
#include "ranycast/core/types.hpp"
#include "ranycast/dns/resolver.hpp"
#include "ranycast/geo/gazetteer.hpp"

namespace ranycast::atlas {

struct Probe {
  ProbeId id{};
  Asn asn{kInvalidAsn};
  CityId city{kInvalidCity};          ///< true location
  CityId reported_city{kInvalidCity}; ///< user-reported geocode (the "built-in" one)
  Ipv4Addr ip;
  bool stable{true};            ///< carries a system-ipv4-stable-1d-style tag
  bool reliable_geocode{true};  ///< passes the geocode-sanity filter of [29]
  double access_extra_ms{0.0};  ///< probe-specific last-mile latency
  dns::ResolverProfile resolver;

  /// The paper's §3.1 retention filter.
  bool retained() const noexcept { return stable && reliable_geocode; }

  /// Geographic area by the probe's geocode (what the paper's statistics use).
  geo::Area area() const;

  dns::QueryContext query_context() const { return dns::QueryContext{ip, resolver}; }
};

}  // namespace ranycast::atlas
