// Probe census generator.
//
// Reproduces the RIPE Atlas probe population shape the paper works with
// (§3.1): ~11k probes, heavily skewed toward EMEA and NA, a small fraction
// with missing stability tags or unreliable geocodes (filtered out, leaving
// ~9.7k), and a resolver mix (local ISP resolvers, public resolvers with and
// without ECS) that drives the LDNS-vs-ADNS differences in Table 2.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "ranycast/atlas/probe.hpp"
#include "ranycast/topo/generator.hpp"
#include "ranycast/topo/ip_registry.hpp"

namespace ranycast::atlas {

struct CensusConfig {
  int total_probes{11000};
  double stable_prob{0.93};
  double reliable_geocode_prob{0.95};
  /// Resolver mix.
  double resolver_local_prob{0.70};
  double resolver_public_ecs_prob{0.20};  // remainder: public without ECS
  /// Last-mile latency: exponential with this mean, capped.
  double access_extra_mean_ms{1.5};
  double access_extra_cap_ms{10.0};
  std::uint64_t seed{0xA71A5};
};

class ProbeCensus {
 public:
  static ProbeCensus generate(const topo::World& world, topo::IpRegistry& registry,
                              const CensusConfig& config);

  std::span<const Probe> probes() const noexcept { return probes_; }

  /// Probes surviving the §3.1 filter (stability tag + reliable geocode).
  std::vector<const Probe*> retained() const;

  /// Count of retained probes per area.
  std::array<std::size_t, geo::kAreaCount> retained_by_area() const;

 private:
  std::vector<Probe> probes_;
};

}  // namespace ranycast::atlas
