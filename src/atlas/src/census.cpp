#include "ranycast/atlas/census.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <unordered_map>

#include "ranycast/core/rng.hpp"

namespace ranycast::atlas {

namespace {

/// ASN for public-resolver egress interfaces (a synthetic "8.8.8.8 operator";
/// not part of the routed AS graph — the geolocation databases resolve its
/// interfaces by their registered city).
constexpr Asn kPublicResolverAsn = make_asn(64512);

/// Public-resolver egress PoPs: a probe's non-ECS queries appear to come
/// from the nearest of these.
constexpr std::array<const char*, 10> kResolverPops = {
    "IAD", "SJC", "AMS", "FRA", "LHR", "SIN", "NRT", "SYD", "GRU", "JNB"};

/// RIPE Atlas probe density is wildly uneven even within an area: European
/// and North-American hub metros host hundreds of probes, while much of the
/// Caribbean, Africa and inland Asia hosts a handful. This table encodes
/// that skew relative to the default in-area weight of 1.
struct CityDensity {
  const char* iata;
  double weight;
};

constexpr CityDensity kProbeDensity[] = {
    // Hub metros (dense hosting + hacker communities).
    {"AMS", 3.0}, {"FRA", 3.0}, {"LHR", 3.0}, {"CDG", 2.5}, {"ZRH", 2.0},
    {"ARN", 2.0}, {"WAW", 2.0}, {"PRG", 2.0}, {"VIE", 2.0}, {"BER", 2.0},
    {"JFK", 2.5}, {"IAD", 2.5}, {"SJC", 2.5}, {"SEA", 2.0}, {"SFO", 2.0},
    {"YYZ", 2.0}, {"NRT", 2.0}, {"SIN", 2.0}, {"SYD", 2.0}, {"GRU", 2.0},
    // Sparse probe presence: Caribbean and Central America...
    {"SAL", 0.2}, {"TGU", 0.2}, {"MGA", 0.2}, {"KIN", 0.25}, {"HAV", 0.2},
    {"SJU", 0.3}, {"SDQ", 0.3}, {"GUA", 0.3}, {"SJO", 0.4}, {"PTY", 0.4},
    // ...secondary Latin America...
    {"CWB", 0.5}, {"CNF", 0.5}, {"SSA", 0.4}, {"MAO", 0.3}, {"CLO", 0.4},
    {"BAQ", 0.4}, {"GYE", 0.4}, {"VVI", 0.3}, {"LPB", 0.3}, {"ASU", 0.4},
    // ...Africa...
    {"ABJ", 0.3}, {"ABV", 0.3}, {"FIH", 0.2}, {"LUN", 0.3}, {"GBE", 0.3},
    {"KGL", 0.3}, {"KRT", 0.2}, {"DLA", 0.3}, {"MRU", 0.4}, {"LAD", 0.3},
    {"DSS", 0.3}, {"DAR", 0.3}, {"ADD", 0.3}, {"EBB", 0.3}, {"MPM", 0.3},
    {"HRE", 0.3},
    // ...and inland/secondary Asia.
    {"KTM", 0.3}, {"RGN", 0.25}, {"PNH", 0.3}, {"ULN", 0.25}, {"FRU", 0.3},
    {"XIY", 0.4}, {"WUH", 0.4}, {"CAN", 0.6}, {"AMD", 0.5}, {"PNQ", 0.6},
    {"ISB", 0.4}, {"DAC", 0.4}, {"CMB", 0.4}, {"ALA", 0.4}, {"TAS", 0.3},
};

double probe_density(const geo::Gazetteer& gaz, CityId city) {
  const auto iata = gaz.city(city).iata;
  for (const CityDensity& d : kProbeDensity) {
    if (iata == d.iata) return d.weight;
  }
  return 1.0;
}

}  // namespace

ProbeCensus ProbeCensus::generate(const topo::World& world, topo::IpRegistry& registry,
                                  const CensusConfig& config) {
  const auto& gaz = geo::Gazetteer::world();
  Rng rng{config.seed};
  ProbeCensus census;
  census.probes_.reserve(static_cast<std::size_t>(config.total_probes));

  // Area skew of the probe population (the paper's §3.1 counts: EMEA 6.9k,
  // NA 1.7k, APAC 1.0k, LatAm 0.2k of ~9.7k retained).
  auto area_weight = [](geo::Area a) {
    switch (a) {
      case geo::Area::EMEA:
        return 0.64;
      case geo::Area::NA:
        return 0.175;
      case geo::Area::LatAm:
        return 0.02;
      case geo::Area::APAC:
        return 0.165;
    }
    return 0.0;
  };
  // City weights: area weight spread over the area's cities.
  const std::size_t n_cities = gaz.cities().size();
  std::vector<double> weights(n_cities, 0.0);
  std::array<std::size_t, geo::kAreaCount> area_city_count{0, 0, 0, 0};
  for (std::size_t i = 0; i < n_cities; ++i) {
    area_city_count[static_cast<int>(gaz.area_of_city(CityId{static_cast<std::uint16_t>(i)}))]++;
  }
  for (std::size_t i = 0; i < n_cities; ++i) {
    const CityId city{static_cast<std::uint16_t>(i)};
    const auto area = gaz.area_of_city(city);
    weights[i] = probe_density(gaz, city) * area_weight(area) /
                 static_cast<double>(area_city_count[static_cast<int>(area)]);
  }

  // Resolver egress interfaces (registered so geo DBs can locate them).
  std::vector<CityId> resolver_cities;
  std::vector<Ipv4Addr> resolver_ips;
  for (const char* iata : kResolverPops) {
    if (const auto c = gaz.find_by_iata(iata)) {
      resolver_cities.push_back(*c);
      resolver_ips.push_back(registry.router_ip(kPublicResolverAsn, *c));
    }
  }
  auto nearest_resolver = [&](CityId from) {
    std::size_t best = 0;
    double best_km = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < resolver_cities.size(); ++i) {
      const double d = gaz.distance(from, resolver_cities[i]).km;
      if (d < best_km) {
        best_km = d;
        best = i;
      }
    }
    return best;
  };

  std::unordered_map<Asn, std::uint32_t> hosts_in_as;

  for (int i = 0; i < config.total_probes; ++i) {
    const CityId city{static_cast<std::uint16_t>(rng.weighted_index(weights))};
    const auto& stubs = world.stubs_at(city);
    if (stubs.empty()) continue;  // no eyeball AS in this city
    Probe p;
    p.id = ProbeId{static_cast<std::uint32_t>(census.probes_.size())};
    p.asn = stubs[rng.below(stubs.size())];
    p.city = city;
    p.stable = rng.chance(config.stable_prob);
    p.reliable_geocode = rng.chance(config.reliable_geocode_prob);
    // Unreliable geocodes report a random (often wrong) location; reliable
    // ones match the truth. Retained probes therefore have trustworthy
    // geocodes, mirroring the paper's filtering rationale.
    p.reported_city =
        p.reliable_geocode ? city : CityId{static_cast<std::uint16_t>(rng.below(n_cities))};
    p.ip = registry.probe_ip(p.asn, hosts_in_as[p.asn]++, city);
    p.access_extra_ms =
        std::min(rng.exponential(config.access_extra_mean_ms), config.access_extra_cap_ms);

    const double r = rng.uniform();
    if (r < config.resolver_local_prob) {
      // Resolver inside the probe's ISP, co-located with the probe.
      p.resolver.kind = dns::ResolverKind::LocalIsp;
      p.resolver.egress_city = city;
      p.resolver.address = registry.probe_ip(p.asn, 100000 + value(p.id) % 1000, city);
    } else {
      const std::size_t idx = nearest_resolver(city);
      p.resolver.kind = r < config.resolver_local_prob + config.resolver_public_ecs_prob
                            ? dns::ResolverKind::PublicEcs
                            : dns::ResolverKind::PublicNoEcs;
      p.resolver.egress_city = resolver_cities[idx];
      p.resolver.address = resolver_ips[idx];
    }
    census.probes_.push_back(p);
  }
  return census;
}

std::vector<const Probe*> ProbeCensus::retained() const {
  std::vector<const Probe*> out;
  out.reserve(probes_.size());
  for (const Probe& p : probes_) {
    if (p.retained()) out.push_back(&p);
  }
  return out;
}

std::array<std::size_t, geo::kAreaCount> ProbeCensus::retained_by_area() const {
  std::array<std::size_t, geo::kAreaCount> out{0, 0, 0, 0};
  for (const Probe& p : probes_) {
    if (p.retained()) out[static_cast<int>(p.area())]++;
  }
  return out;
}

}  // namespace ranycast::atlas
