#include "ranycast/atlas/grouping.hpp"

#include <algorithm>
#include <map>

namespace ranycast::atlas {

std::vector<ProbeGroup> group_probes(std::span<const Probe* const> probes) {
  std::map<std::pair<std::uint16_t, std::uint32_t>, ProbeGroup> by_key;
  for (const Probe* p : probes) {
    const auto key = std::make_pair(value(p->reported_city), value(p->asn));
    auto& g = by_key[key];
    if (g.members.empty()) {
      g.city = p->reported_city;
      g.asn = p->asn;
      g.area = p->area();
    }
    g.members.push_back(p);
  }
  std::vector<ProbeGroup> out;
  out.reserve(by_key.size());
  for (auto& [key, group] : by_key) out.push_back(std::move(group));
  return out;
}

}  // namespace ranycast::atlas
