#include "ranycast/atlas/probe.hpp"

namespace ranycast::atlas {

geo::Area Probe::area() const {
  return geo::Gazetteer::world().area_of_city(reported_city);
}

}  // namespace ranycast::atlas
