// The flow-level traffic model: empirical flow-size CDFs, per-site capacity
// and the overload policy knobs.
//
// The paper evaluates regional anycast by latency alone; this plane adds the
// production half of the story — real demand against finite site capacity.
// Demand follows the shape reported for production anycast CDNs ("A First
// Look at Anycast CDN Traffic"): Poisson flow arrivals per <city, AS> probe
// group over a heavy-tailed empirical flow-size distribution, so a handful
// of elephants carry most bytes while mice dominate flow counts. Every knob
// is deterministic: no wall clock, no global RNG — two runs with the same
// TrafficConfig and seed generate byte-identical demand.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace ranycast::traffic {

/// What happens to load above a site's admission threshold.
enum class OverloadPolicy : std::uint8_t {
  /// Pure anycast: clients cannot be steered away per-flow, so an overloaded
  /// site serves what it can — queueing delay climbs and flows beyond raw
  /// capacity are dropped. Catchment spill still happens *between* chaos
  /// steps (a withdrawal moves whole catchments onto neighbors), which is
  /// exactly how a failover tips an already-hot site over.
  Spill = 0,
  /// DNS-steered shedding: excess flows above the admission threshold are
  /// re-answered onto another regional prefix the client can reach. Shed
  /// targets accept up to raw capacity, so a shed wave can push a healthy
  /// site past its own threshold — the next wave sheds from it in turn
  /// (cascade accounting).
  Shed = 1,
};

std::string_view to_string(OverloadPolicy p) noexcept;

/// Piecewise-linear empirical flow-size CDF (bytes). `bytes` and `prob` are
/// parallel, strictly increasing, with prob.back() == 1.0; sampling inverts
/// the CDF with linear interpolation between knots, so quantile u maps to a
/// unique size and the sampler is monotone in u.
struct FlowSizeCdf {
  std::vector<double> bytes;
  std::vector<double> prob;

  /// Inverse-CDF sample for u in [0, 1); clamped to [bytes.front(), back()].
  double sample(double u) const noexcept;

  /// Analytic mean of the piecewise-linear distribution (used for the M/M/1
  /// service-time term so the delay model never re-samples).
  double mean_bytes() const noexcept;

  bool valid() const noexcept;

  /// Anycast CDN default: mice-dominated flow counts with an elephant tail
  /// carrying most of the bytes (shape after "A First Look at Anycast CDN
  /// Traffic": ~70% of flows under 10 KB, >half the bytes in the top few
  /// percent of flows).
  static FlowSizeCdf anycast_cdn();
};

struct TrafficConfig {
  /// Poisson arrival rate per retained probe, flows per second. A group's
  /// rate is members * this (a <city, AS> group aggregates its probes'
  /// users). Scaled by demand_scale and any in-plan traffic_surge event.
  double flows_per_probe_per_s{2.0};
  /// Simulated measurement window per chaos step, seconds.
  double window_s{1.0};
  /// Global demand multiplier (sweeps, surge scenarios).
  double demand_scale{1.0};
  FlowSizeCdf flow_sizes{FlowSizeCdf::anycast_cdn()};

  /// Serving capacity per site, megabits per second. Per-site overrides
  /// (indexed by SiteId) fall back to the default when the vector is short.
  double default_site_capacity_mbps{600.0};
  std::vector<double> site_capacity_mbps;

  OverloadPolicy policy{OverloadPolicy::Spill};
  /// Utilization above which a site is overloaded: Shed starts steering
  /// flows away, reports count the site in overloaded_sites.
  double admission_threshold{0.95};
  /// Clamp for the M/M/1 rho term so the queueing-delay inflation stays
  /// finite as utilization approaches 1 (assert-free in release).
  double max_rho{0.99};
  /// Bound on shed relaxation waves (each wave may tip further sites over).
  std::size_t max_shed_waves{8};
  std::uint64_t seed{0x7AFF1C};

  double capacity_mbps(std::size_t site) const noexcept {
    if (site < site_capacity_mbps.size() && site_capacity_mbps[site] > 0.0) {
      return site_capacity_mbps[site];
    }
    return default_site_capacity_mbps;
  }
};

/// Stable hash over every demand/capacity/policy knob, folded into guard
/// checkpoint fingerprints so a resume under a different traffic model is
/// refused (same contract as converge::fingerprint).
std::uint64_t fingerprint(const TrafficConfig& c) noexcept;

}  // namespace ranycast::traffic
