// Deterministic per-probe-group flow generation.
//
// Demand is generated per <city, AS> probe group (the paper's §3.1 unit, so
// one heavily instrumented network cannot dominate the load picture): each
// group draws a Poisson flow count for the measurement window from its own
// forked RNG stream — seeded by group identity, not group position — and
// flow sizes from the configured empirical CDF. Generation fans out over the
// exec pool with one output slot per group and a serial in-order
// concatenation, so the produced FlowSet is byte-identical for any worker
// count, and a group's draw stream never perturbs another's.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ranycast/atlas/grouping.hpp"
#include "ranycast/atlas/probe.hpp"
#include "ranycast/traffic/model.hpp"

namespace ranycast::traffic {

/// One flow of offered load, attributed to the retained probe whose vantage
/// point generated it (index into the lab's retained-probe array — the same
/// index space the chaos engine snapshots).
struct Flow {
  std::uint32_t probe{0};
  double bytes{0.0};
};

struct FlowSet {
  std::vector<Flow> flows;
  double total_bytes{0.0};
  std::size_t groups{0};        ///< groups that produced at least the chance to
  std::size_t empty_groups{0};  ///< groups skipped (no members — guarded, no 0-div)
};

/// Total offered load of a set over the window, in megabits per second.
double offered_mbps(const FlowSet& set, const TrafficConfig& cfg) noexcept;

/// Generate the window's flows. `retained` is the lab's retained-probe array
/// (defines the Flow::probe index space); `groups` the <city, AS> grouping of
/// exactly those probes. `surge_scale` multiplies the arrival rate on top of
/// cfg.demand_scale (driven by traffic_surge chaos events). Deterministic in
/// (cfg.seed, groups, surge_scale); independent of worker count.
FlowSet generate_flows(std::span<const atlas::ProbeGroup> groups,
                       std::span<const atlas::Probe* const> retained,
                       const TrafficConfig& cfg, double surge_scale = 1.0);

}  // namespace ranycast::traffic
