// JSON bindings and validation for the traffic block of scenario/experiment
// configs — the same Expected-based, file:offset:field error surface the
// LabConfig loader has.
//
// Schema (all members optional, unknown keys ignored):
//   "traffic": {
//     "flows_per_probe_per_s": 2.0,
//     "window_s": 1.0,
//     "demand_scale": 1.0,
//     "default_site_capacity_mbps": 600.0,
//     "site_capacity_mbps": [800, 600, ...],        // by site id
//     "policy": "spill" | "shed",
//     "admission_threshold": 0.95,
//     "max_rho": 0.99,
//     "max_shed_waves": 8,
//     "seed": 8059164,
//     "flow_sizes": {"bytes": [...], "prob": [...]}  // empirical CDF knots
//   }
#pragma once

#include <string>
#include <string_view>

#include "ranycast/core/expected.hpp"
#include "ranycast/io/config.hpp"
#include "ranycast/io/json.hpp"
#include "ranycast/traffic/model.hpp"

namespace ranycast::traffic {

/// Bind a parsed "traffic" JSON object. `file` labels errors; `base` is the
/// dotted prefix of the block within its document (e.g. "traffic.").
core::Expected<TrafficConfig, io::ConfigError> config_from_json(const io::Json& json,
                                                                std::string_view file = {},
                                                                const std::string& base = "traffic.");

/// Exact inverse of the reader for covered keys (manifests, round-trips).
io::Json config_to_json(const TrafficConfig& cfg);

/// Range-check a TrafficConfig: capacities > 0, rates finite and
/// non-negative, window positive, thresholds in (0, 1], CDF strictly
/// monotone and normalized. Returns the first violation with `field` naming
/// the offending key (validated on every load; callable directly for
/// programmatically-built configs).
std::optional<io::ConfigError> validate(const TrafficConfig& cfg, std::string_view file = {},
                                        const std::string& base = "traffic.");

}  // namespace ranycast::traffic
