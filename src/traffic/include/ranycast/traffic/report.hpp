// Per-chaos-step traffic accounting and its JSON serialization.
#pragma once

#include <string>

#include "ranycast/io/json.hpp"
#include "ranycast/traffic/solver.hpp"

namespace ranycast::traffic {

/// Traffic state across one chaos step: the post-fault solve plus the
/// before/after deltas that make overload-driven failure legible — how hot
/// the surviving sites ran before the fault, how many the fault tipped over,
/// and how far the resulting shed cascade travelled.
struct StepTraffic {
  std::size_t index{0};
  std::string event;

  TrafficSolve solve;  ///< post-fault serving state

  double before_max_utilization{0.0};
  double before_mean_utilization{0.0};
  /// Sites under the admission threshold before the fault and over it after
  /// — the "failover landed on an already-hot site" signal.
  std::size_t tipped_sites{0};
  /// (tipped_sites > 0) + the post-fault solve's shed-wave cascade depth:
  /// 0 means the fault was absorbed, 1 means it tipped sites but the damage
  /// stopped there, >1 means the overload propagated.
  std::size_t cascade_depth{0};

  /// RTT percentiles over routed probes with the per-site M/M/1 queueing
  /// delay added — the latency a client actually experiences under load
  /// (steady after_p50_ms/after_p90_ms measure propagation alone).
  double inflated_p50_ms{0.0};
  double inflated_p90_ms{0.0};
};

io::Json solve_to_json(const TrafficSolve& s);
io::Json step_to_json(const StepTraffic& s);

}  // namespace ranycast::traffic
