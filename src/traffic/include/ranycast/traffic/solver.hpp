// The capacity/overload solve: map a window's flows onto the current
// catchment, apply the overload policy, and report per-site serving state.
//
// The solve is a pure serial function of (flows, assignment, config) — flows
// are walked in index order, shed waves visit sites in ascending id and move
// flows from the back of a site's arrival list, ties break on the lowest
// site id. No RNG, no clock: the same inputs produce the same TrafficSolve
// bytes, which is what lets chaos fold traffic accounting into its
// byte-identical resume guarantee.
#pragma once

#include <cstddef>
#include <vector>

#include "ranycast/core/types.hpp"
#include "ranycast/traffic/flows.hpp"
#include "ranycast/traffic/model.hpp"

namespace ranycast::traffic {

/// Where one probe's flows land: its catchment site, plus the sites it could
/// be steered to via other regional prefixes (DNS-steered shedding targets,
/// deduplicated, ordered by region index — deterministic).
struct ProbeAssign {
  SiteId site{kInvalidSite};
  std::vector<SiteId> alternates;
};

/// Serving state of one site after the policy ran.
struct SiteLoad {
  double capacity_mbps{0.0};
  double offered_mbps{0.0};  ///< catchment demand arriving at the site
  double served_mbps{0.0};
  double shed_out_mbps{0.0};  ///< steered away under Shed
  double dropped_mbps{0.0};   ///< beyond raw capacity, lost
  /// served / capacity; exactly 0 for a zero-capacity site (which serves
  /// nothing — all arrivals drop; reported as `n/a` by the table renderers).
  double utilization{0.0};
  /// M/M/1 wait: service_ms * rho / (1 - rho), rho clamped to max_rho.
  double queue_delay_ms{0.0};
  std::size_t flows_offered{0};
  std::size_t flows_served{0};
  std::size_t flows_shed_out{0};
  std::size_t flows_shed_in{0};
  std::size_t flows_dropped{0};
  bool overloaded{false};  ///< past the admission threshold (or capacity 0 with demand)
};

struct TrafficSolve {
  std::vector<SiteLoad> sites;

  double offered_mbps{0.0};
  double served_mbps{0.0};
  double shed_mbps{0.0};
  double dropped_mbps{0.0};
  std::size_t flows_offered{0};
  std::size_t flows_served{0};
  std::size_t flows_shed{0};
  std::size_t flows_dropped{0};
  /// Flows whose probe had no route at all this step (catchment lost, not a
  /// capacity question) — kept out of the per-site math so a dark catchment
  /// cannot divide by zero or masquerade as served load.
  std::size_t flows_unrouted{0};
  double unrouted_mbps{0.0};

  std::size_t overloaded_sites{0};
  /// Shed waves that pushed a previously-healthy site past the admission
  /// threshold (each wave sheds from the sites the previous wave tipped).
  std::size_t cascade_depth{0};
  double max_utilization{0.0};
  double mean_utilization{0.0};  ///< over sites with capacity > 0
  double queue_delay_p50_ms{0.0};
  double queue_delay_p90_ms{0.0};
  double queue_delay_max_ms{0.0};
};

/// The M/M/1 wait-time inflation for one site. Monotone non-decreasing in
/// utilization; finite for every input (rho clamps to max_rho, non-positive
/// service time yields 0).
double queueing_delay_ms(double utilization, double service_ms, double max_rho) noexcept;

/// Mean per-flow service time at a site, milliseconds.
double service_time_ms(double mean_flow_bytes, double capacity_mbps) noexcept;

/// Run the policy. `assign` is indexed by Flow::probe; `site_count` sizes the
/// per-site output (assignments referencing sites >= site_count are treated
/// as unrouted).
TrafficSolve solve(const FlowSet& flows, std::span<const ProbeAssign> assign,
                   std::size_t site_count, const TrafficConfig& cfg);

}  // namespace ranycast::traffic
