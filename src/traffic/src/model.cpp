#include "ranycast/traffic/model.hpp"

#include <bit>
#include <cmath>

#include "ranycast/core/rng.hpp"

namespace ranycast::traffic {

std::string_view to_string(OverloadPolicy p) noexcept {
  switch (p) {
    case OverloadPolicy::Spill: return "spill";
    case OverloadPolicy::Shed: return "shed";
  }
  return "unknown";
}

double FlowSizeCdf::sample(double u) const noexcept {
  if (bytes.empty()) return 0.0;
  if (u <= prob.front()) return bytes.front();
  for (std::size_t i = 1; i < prob.size(); ++i) {
    if (u <= prob[i]) {
      const double span = prob[i] - prob[i - 1];
      const double t = span > 0.0 ? (u - prob[i - 1]) / span : 1.0;
      return bytes[i - 1] + t * (bytes[i] - bytes[i - 1]);
    }
  }
  return bytes.back();
}

double FlowSizeCdf::mean_bytes() const noexcept {
  if (bytes.empty()) return 0.0;
  // First segment is a point mass at bytes.front() of weight prob.front();
  // each further segment is uniform over [bytes[i-1], bytes[i]].
  double mean = prob.front() * bytes.front();
  for (std::size_t i = 1; i < prob.size(); ++i) {
    mean += (prob[i] - prob[i - 1]) * 0.5 * (bytes[i - 1] + bytes[i]);
  }
  return mean;
}

bool FlowSizeCdf::valid() const noexcept {
  if (bytes.empty() || bytes.size() != prob.size()) return false;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    if (!std::isfinite(bytes[i]) || bytes[i] <= 0.0) return false;
    if (!std::isfinite(prob[i]) || prob[i] <= 0.0 || prob[i] > 1.0) return false;
    if (i > 0 && (bytes[i] <= bytes[i - 1] || prob[i] <= prob[i - 1])) return false;
  }
  return prob.back() == 1.0;
}

FlowSizeCdf FlowSizeCdf::anycast_cdn() {
  // Mice carry the flow count, a thin elephant tail carries most bytes:
  // ~70% of flows stay under 10 KB while the top 3% reach the megabytes that
  // dominate volume ("A First Look at Anycast CDN Traffic" demand shape).
  FlowSizeCdf cdf;
  cdf.bytes = {500.0, 2'000.0, 10'000.0, 50'000.0, 200'000.0, 1'000'000.0, 10'000'000.0};
  cdf.prob = {0.20, 0.45, 0.70, 0.85, 0.94, 0.97, 1.0};
  return cdf;
}

std::uint64_t fingerprint(const TrafficConfig& c) noexcept {
  auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  std::uint64_t h = hash_combine(0x54524146u /* "TRAF" */, bits(c.flows_per_probe_per_s));
  h = hash_combine(h, bits(c.window_s));
  h = hash_combine(h, bits(c.demand_scale));
  h = hash_combine(h, c.flow_sizes.bytes.size());
  for (std::size_t i = 0; i < c.flow_sizes.bytes.size(); ++i) {
    h = hash_combine(h, bits(c.flow_sizes.bytes[i]));
    h = hash_combine(h, bits(c.flow_sizes.prob[i]));
  }
  h = hash_combine(h, bits(c.default_site_capacity_mbps));
  h = hash_combine(h, c.site_capacity_mbps.size());
  for (double v : c.site_capacity_mbps) h = hash_combine(h, bits(v));
  h = hash_combine(h, static_cast<std::uint64_t>(c.policy));
  h = hash_combine(h, bits(c.admission_threshold));
  h = hash_combine(h, bits(c.max_rho));
  h = hash_combine(h, c.max_shed_waves);
  h = hash_combine(h, c.seed);
  return h;
}

}  // namespace ranycast::traffic
