#include "ranycast/traffic/report.hpp"

namespace ranycast::traffic {

namespace {
std::int64_t i64(std::size_t v) { return static_cast<std::int64_t>(v); }
}  // namespace

io::Json solve_to_json(const TrafficSolve& s) {
  io::JsonArray sites;
  sites.reserve(s.sites.size());
  for (std::size_t i = 0; i < s.sites.size(); ++i) {
    const SiteLoad& site = s.sites[i];
    sites.push_back(io::Json(io::JsonObject{
        {"site", io::Json(static_cast<std::int64_t>(i))},
        {"capacity_mbps", io::Json(site.capacity_mbps)},
        {"offered_mbps", io::Json(site.offered_mbps)},
        {"served_mbps", io::Json(site.served_mbps)},
        {"shed_out_mbps", io::Json(site.shed_out_mbps)},
        {"dropped_mbps", io::Json(site.dropped_mbps)},
        {"utilization", io::Json(site.utilization)},
        {"queue_delay_ms", io::Json(site.queue_delay_ms)},
        {"flows_offered", io::Json(i64(site.flows_offered))},
        {"flows_served", io::Json(i64(site.flows_served))},
        {"flows_shed_out", io::Json(i64(site.flows_shed_out))},
        {"flows_shed_in", io::Json(i64(site.flows_shed_in))},
        {"flows_dropped", io::Json(i64(site.flows_dropped))},
        {"overloaded", io::Json(site.overloaded)},
    }));
  }
  return io::Json(io::JsonObject{
      {"sites", io::Json(std::move(sites))},
      {"offered_mbps", io::Json(s.offered_mbps)},
      {"served_mbps", io::Json(s.served_mbps)},
      {"shed_mbps", io::Json(s.shed_mbps)},
      {"dropped_mbps", io::Json(s.dropped_mbps)},
      {"flows_offered", io::Json(i64(s.flows_offered))},
      {"flows_served", io::Json(i64(s.flows_served))},
      {"flows_shed", io::Json(i64(s.flows_shed))},
      {"flows_dropped", io::Json(i64(s.flows_dropped))},
      {"flows_unrouted", io::Json(i64(s.flows_unrouted))},
      {"unrouted_mbps", io::Json(s.unrouted_mbps)},
      {"overloaded_sites", io::Json(i64(s.overloaded_sites))},
      {"cascade_depth", io::Json(i64(s.cascade_depth))},
      {"max_utilization", io::Json(s.max_utilization)},
      {"mean_utilization", io::Json(s.mean_utilization)},
      {"queue_delay_p50_ms", io::Json(s.queue_delay_p50_ms)},
      {"queue_delay_p90_ms", io::Json(s.queue_delay_p90_ms)},
      {"queue_delay_max_ms", io::Json(s.queue_delay_max_ms)},
  });
}

io::Json step_to_json(const StepTraffic& s) {
  return io::Json(io::JsonObject{
      {"index", io::Json(static_cast<std::int64_t>(s.index))},
      {"event", io::Json(s.event)},
      {"solve", solve_to_json(s.solve)},
      {"before_max_utilization", io::Json(s.before_max_utilization)},
      {"before_mean_utilization", io::Json(s.before_mean_utilization)},
      {"tipped_sites", io::Json(i64(s.tipped_sites))},
      {"cascade_depth", io::Json(i64(s.cascade_depth))},
      {"inflated_p50_ms", io::Json(s.inflated_p50_ms)},
      {"inflated_p90_ms", io::Json(s.inflated_p90_ms)},
  });
}

}  // namespace ranycast::traffic
