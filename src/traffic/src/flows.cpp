#include "ranycast/traffic/flows.hpp"

#include <cmath>
#include <unordered_map>

#include "ranycast/core/rng.hpp"
#include "ranycast/exec/pool.hpp"

namespace ranycast::traffic {

namespace {

/// Poisson draw: Knuth's product method for small means, rounded normal
/// approximation above (one draw, so the stream stays short and stable).
std::size_t poisson(Rng& rng, double mean) {
  if (!(mean > 0.0)) return 0;
  if (mean < 32.0) {
    const double limit = std::exp(-mean);
    double product = rng.uniform();
    std::size_t n = 0;
    while (product > limit) {
      product *= rng.uniform();
      ++n;
    }
    return n;
  }
  const double draw = rng.normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<std::size_t>(std::llround(draw));
}

}  // namespace

double offered_mbps(const FlowSet& set, const TrafficConfig& cfg) noexcept {
  if (!(cfg.window_s > 0.0)) return 0.0;
  return set.total_bytes * 8.0 / cfg.window_s / 1e6;
}

FlowSet generate_flows(std::span<const atlas::ProbeGroup> groups,
                       std::span<const atlas::Probe* const> retained,
                       const TrafficConfig& cfg, double surge_scale) {
  // Flow::probe indexes the retained array; group members are pointers into
  // it, so build the reverse map once (serial — the map itself is read-only
  // during the fan-out).
  std::unordered_map<const atlas::Probe*, std::uint32_t> index_of;
  index_of.reserve(retained.size());
  for (std::size_t i = 0; i < retained.size(); ++i) {
    index_of.emplace(retained[i], static_cast<std::uint32_t>(i));
  }

  std::vector<std::vector<Flow>> per_group(groups.size());
  exec::ThreadPool::global().parallel_for(groups.size(), [&](std::size_t g) {
    const atlas::ProbeGroup& group = groups[g];
    if (group.members.empty()) return;  // guarded: no members, no rate, no 0-div
    // The stream is seeded by group *identity* (<city, AS>), not position:
    // the same group draws the same flows even if the grouping around it
    // changes.
    const std::uint64_t identity =
        hash_combine(static_cast<std::uint64_t>(value(group.city)),
                     static_cast<std::uint64_t>(value(group.asn)));
    Rng rng(hash_combine(cfg.seed, identity));
    const double lambda = static_cast<double>(group.members.size()) *
                          cfg.flows_per_probe_per_s * cfg.window_s * cfg.demand_scale *
                          surge_scale;
    const std::size_t count = poisson(rng, lambda);
    std::vector<Flow>& out = per_group[g];
    out.reserve(count);
    for (std::size_t j = 0; j < count; ++j) {
      const atlas::Probe* member = group.members[j % group.members.size()];
      const auto it = index_of.find(member);
      if (it == index_of.end()) continue;  // member outside the retained array
      out.push_back(Flow{it->second, cfg.flow_sizes.sample(rng.uniform())});
    }
  });

  // In-order concatenation: the flow list is a pure function of the group
  // order, never of worker scheduling.
  FlowSet set;
  for (const auto& flows : per_group) {
    if (flows.empty()) continue;
    for (const Flow& f : flows) set.total_bytes += f.bytes;
    set.flows.insert(set.flows.end(), flows.begin(), flows.end());
  }
  for (const atlas::ProbeGroup& g : groups) {
    g.members.empty() ? ++set.empty_groups : ++set.groups;
  }
  return set;
}

}  // namespace ranycast::traffic
