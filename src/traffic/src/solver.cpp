#include "ranycast/traffic/solver.hpp"

#include <algorithm>
#include <cmath>

#include "ranycast/analysis/stats.hpp"

namespace ranycast::traffic {

double service_time_ms(double mean_flow_bytes, double capacity_mbps) noexcept {
  if (!(mean_flow_bytes > 0.0) || !(capacity_mbps > 0.0)) return 0.0;
  // bytes -> bits, Mbps -> bits/ms leaves bits / (1000 * Mbps).
  return mean_flow_bytes * 8.0 / (capacity_mbps * 1000.0);
}

double queueing_delay_ms(double utilization, double service_ms, double max_rho) noexcept {
  if (!(service_ms > 0.0) || !(utilization > 0.0)) return 0.0;
  const double cap = std::isfinite(max_rho) && max_rho > 0.0 && max_rho < 1.0 ? max_rho : 0.99;
  const double rho = std::min(utilization, cap);
  return service_ms * rho / (1.0 - rho);
}

namespace {

struct SiteState {
  double cap_bytes{0.0};         ///< capacity over the window
  double load_bytes{0.0};        ///< current arrival mass (moves during shed)
  std::vector<std::size_t> flow_list;  ///< indices into flows, arrival order
};

}  // namespace

TrafficSolve solve(const FlowSet& set, std::span<const ProbeAssign> assign,
                   std::size_t site_count, const TrafficConfig& cfg) {
  TrafficSolve out;
  out.sites.resize(site_count);
  const double window = cfg.window_s > 0.0 ? cfg.window_s : 1.0;
  const auto mbps = [window](double bytes) { return bytes * 8.0 / window / 1e6; };

  std::vector<SiteState> state(site_count);
  for (std::size_t s = 0; s < site_count; ++s) {
    out.sites[s].capacity_mbps = cfg.capacity_mbps(s);
    state[s].cap_bytes = std::max(0.0, out.sites[s].capacity_mbps) * 1e6 / 8.0 * window;
  }

  // --- arrival: every flow lands on its probe's catchment site ------------
  for (std::size_t f = 0; f < set.flows.size(); ++f) {
    const Flow& flow = set.flows[f];
    const std::size_t p = flow.probe;
    const std::size_t s = p < assign.size() ? static_cast<std::size_t>(value(assign[p].site))
                                            : static_cast<std::size_t>(value(kInvalidSite));
    if (s >= site_count) {
      ++out.flows_unrouted;
      out.unrouted_mbps += mbps(flow.bytes);
      continue;
    }
    state[s].flow_list.push_back(f);
    state[s].load_bytes += flow.bytes;
    out.sites[s].offered_mbps += mbps(flow.bytes);
    ++out.sites[s].flows_offered;
  }

  const double threshold =
      std::isfinite(cfg.admission_threshold) && cfg.admission_threshold > 0.0
          ? std::min(cfg.admission_threshold, 1.0)
          : 0.95;
  const auto over_threshold = [&](std::size_t s) {
    return state[s].load_bytes > threshold * state[s].cap_bytes;
  };

  // --- shed relaxation (DNS-steered policy only) --------------------------
  // Each wave sheds the newest arrivals of every over-threshold site onto
  // the shed target with the most headroom (lowest id on ties). A target
  // accepts up to raw capacity, so a wave can tip a previously-healthy site
  // over the threshold; the next wave sheds from it in turn. cascade_depth
  // counts the waves that tipped someone.
  if (cfg.policy == OverloadPolicy::Shed) {
    std::vector<char> shed_once(set.flows.size(), 0);
    for (std::size_t wave = 0; wave < cfg.max_shed_waves; ++wave) {
      bool tipped_this_wave = false;
      std::vector<char> healthy_at_wave_start(site_count, 0);
      for (std::size_t s = 0; s < site_count; ++s) {
        healthy_at_wave_start[s] = over_threshold(s) ? 0 : 1;
      }
      for (std::size_t s = 0; s < site_count; ++s) {
        if (healthy_at_wave_start[s]) continue;
        auto& list = state[s].flow_list;
        // Walk newest-first; shed candidates move, unsheddable ones stay put.
        for (std::size_t pos = list.size(); pos-- > 0 && over_threshold(s);) {
          const std::size_t f = list[pos];
          if (shed_once[f]) continue;
          const Flow& flow = set.flows[f];
          const ProbeAssign& pa = assign[flow.probe];
          std::size_t best = site_count;
          double best_headroom = 0.0;
          for (SiteId alt : pa.alternates) {
            const std::size_t a = value(alt);
            if (a >= site_count || a == s) continue;
            const double headroom = state[a].cap_bytes - state[a].load_bytes;
            if (headroom < flow.bytes) continue;  // accepts only up to raw capacity
            if (best == site_count || headroom > best_headroom) {
              best = a;
              best_headroom = headroom;
            }
          }
          if (best == site_count) continue;  // nowhere to steer this flow
          const bool target_was_healthy =
              healthy_at_wave_start[best] != 0 && !over_threshold(best);
          list.erase(list.begin() + static_cast<std::ptrdiff_t>(pos));
          state[s].load_bytes -= flow.bytes;
          state[best].flow_list.push_back(f);
          state[best].load_bytes += flow.bytes;
          shed_once[f] = 1;
          out.sites[s].shed_out_mbps += mbps(flow.bytes);
          ++out.sites[s].flows_shed_out;
          ++out.sites[best].flows_shed_in;
          if (target_was_healthy && over_threshold(best)) tipped_this_wave = true;
        }
      }
      if (!tipped_this_wave) break;  // nothing new to shed next wave
      ++out.cascade_depth;
    }
    for (std::size_t s = 0; s < site_count; ++s) {
      out.shed_mbps += out.sites[s].shed_out_mbps;
      out.flows_shed += out.sites[s].flows_shed_out;
    }
  }

  // --- drop past raw capacity, newest arrivals first ----------------------
  const double mean_flow = cfg.flow_sizes.mean_bytes();
  std::vector<double> delays;
  delays.reserve(site_count);
  for (std::size_t s = 0; s < site_count; ++s) {
    SiteLoad& site = out.sites[s];
    auto& list = state[s].flow_list;
    while (state[s].load_bytes > state[s].cap_bytes && !list.empty()) {
      const Flow& flow = set.flows[list.back()];
      list.pop_back();
      state[s].load_bytes -= flow.bytes;
      site.dropped_mbps += mbps(flow.bytes);
      ++site.flows_dropped;
    }
    site.flows_served = list.size();
    site.served_mbps = mbps(state[s].load_bytes);
    if (site.capacity_mbps > 0.0) {
      site.utilization = site.served_mbps / site.capacity_mbps;
      site.queue_delay_ms = queueing_delay_ms(
          site.utilization, service_time_ms(mean_flow, site.capacity_mbps), cfg.max_rho);
      site.overloaded = site.utilization > threshold;
      delays.push_back(site.queue_delay_ms);
      out.mean_utilization += site.utilization;
      out.max_utilization = std::max(out.max_utilization, site.utilization);
      out.queue_delay_max_ms = std::max(out.queue_delay_max_ms, site.queue_delay_ms);
    } else {
      // Zero-capacity site: serves nothing, every arrival dropped above;
      // utilization stays exactly 0 (no 0/0), renderers print `n/a`.
      site.overloaded = site.flows_offered > 0;
    }
    if (site.overloaded) ++out.overloaded_sites;
    out.offered_mbps += site.offered_mbps;
    out.served_mbps += site.served_mbps;
    out.dropped_mbps += site.dropped_mbps;
    out.flows_offered += site.flows_offered;
    out.flows_served += site.flows_served;
    out.flows_dropped += site.flows_dropped;
  }
  out.mean_utilization =
      delays.empty() ? 0.0 : out.mean_utilization / static_cast<double>(delays.size());
  out.queue_delay_p50_ms = analysis::percentile(delays, 50);
  out.queue_delay_p90_ms = analysis::percentile(delays, 90);
  return out;
}

}  // namespace ranycast::traffic
