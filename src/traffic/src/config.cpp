#include "ranycast/traffic/config.hpp"

#include <cmath>

namespace ranycast::traffic {

namespace {

io::ConfigError field_error(std::string_view file, std::string field, std::string message) {
  io::ConfigError err;
  err.file = std::string(file);
  err.field = std::move(field);
  err.message = std::move(message);
  return err;
}

bool finite_nonneg(double v) { return std::isfinite(v) && v >= 0.0; }

}  // namespace

std::optional<io::ConfigError> validate(const TrafficConfig& cfg, std::string_view file,
                                        const std::string& base) {
  if (!finite_nonneg(cfg.flows_per_probe_per_s)) {
    return field_error(file, base + "flows_per_probe_per_s",
                       "arrival rate must be finite and non-negative");
  }
  if (!std::isfinite(cfg.window_s) || cfg.window_s <= 0.0) {
    return field_error(file, base + "window_s", "window must be positive and finite");
  }
  if (!finite_nonneg(cfg.demand_scale)) {
    return field_error(file, base + "demand_scale", "must be finite and non-negative");
  }
  if (!std::isfinite(cfg.default_site_capacity_mbps) || cfg.default_site_capacity_mbps <= 0.0) {
    return field_error(file, base + "default_site_capacity_mbps",
                       "capacity must be positive (got " +
                           std::to_string(cfg.default_site_capacity_mbps) + ")");
  }
  for (std::size_t i = 0; i < cfg.site_capacity_mbps.size(); ++i) {
    const double v = cfg.site_capacity_mbps[i];
    if (!std::isfinite(v) || v <= 0.0) {
      return field_error(file, base + "site_capacity_mbps[" + std::to_string(i) + "]",
                         "capacity must be positive (got " + std::to_string(v) + ")");
    }
  }
  if (!std::isfinite(cfg.admission_threshold) || cfg.admission_threshold <= 0.0 ||
      cfg.admission_threshold > 1.0) {
    return field_error(file, base + "admission_threshold", "must be in (0, 1]");
  }
  if (!std::isfinite(cfg.max_rho) || cfg.max_rho <= 0.0 || cfg.max_rho >= 1.0) {
    return field_error(file, base + "max_rho", "must be in (0, 1)");
  }
  if (cfg.max_shed_waves == 0) {
    return field_error(file, base + "max_shed_waves", "must be at least 1");
  }
  const FlowSizeCdf& cdf = cfg.flow_sizes;
  if (cdf.bytes.size() != cdf.prob.size()) {
    return field_error(file, base + "flow_sizes",
                       "bytes and prob must have the same length");
  }
  if (cdf.bytes.empty()) {
    return field_error(file, base + "flow_sizes.bytes", "CDF needs at least one knot");
  }
  for (std::size_t i = 0; i < cdf.bytes.size(); ++i) {
    const std::string at = "[" + std::to_string(i) + "]";
    if (!std::isfinite(cdf.bytes[i]) || cdf.bytes[i] <= 0.0) {
      return field_error(file, base + "flow_sizes.bytes" + at, "must be positive and finite");
    }
    if (!std::isfinite(cdf.prob[i]) || cdf.prob[i] <= 0.0 || cdf.prob[i] > 1.0) {
      return field_error(file, base + "flow_sizes.prob" + at, "must be in (0, 1]");
    }
    if (i > 0 && cdf.bytes[i] <= cdf.bytes[i - 1]) {
      return field_error(file, base + "flow_sizes.bytes" + at,
                         "CDF knots must be strictly increasing");
    }
    if (i > 0 && cdf.prob[i] <= cdf.prob[i - 1]) {
      return field_error(file, base + "flow_sizes.prob" + at,
                         "CDF must be strictly monotone");
    }
  }
  if (cdf.prob.back() != 1.0) {
    return field_error(file, base + "flow_sizes.prob",
                       "CDF must be normalized (last prob must be exactly 1)");
  }
  return std::nullopt;
}

core::Expected<TrafficConfig, io::ConfigError> config_from_json(const io::Json& json,
                                                                std::string_view file,
                                                                const std::string& base) {
  if (!json.is_object()) {
    return core::unexpected(field_error(file, base + "*", "traffic block must be a JSON object"));
  }
  TrafficConfig cfg;
  cfg.flows_per_probe_per_s = json.number_or("flows_per_probe_per_s", cfg.flows_per_probe_per_s);
  cfg.window_s = json.number_or("window_s", cfg.window_s);
  cfg.demand_scale = json.number_or("demand_scale", cfg.demand_scale);
  cfg.default_site_capacity_mbps =
      json.number_or("default_site_capacity_mbps", cfg.default_site_capacity_mbps);
  if (const io::Json* caps = json.find("site_capacity_mbps")) {
    if (!caps->is_array()) {
      return core::unexpected(
          field_error(file, base + "site_capacity_mbps", "must be an array of numbers"));
    }
    for (std::size_t i = 0; i < caps->as_array().size(); ++i) {
      const io::Json& v = caps->as_array()[i];
      if (!v.is_number()) {
        return core::unexpected(field_error(
            file, base + "site_capacity_mbps[" + std::to_string(i) + "]", "must be a number"));
      }
      cfg.site_capacity_mbps.push_back(v.as_number());
    }
  }
  const std::string policy = json.string_or("policy", std::string(to_string(cfg.policy)));
  if (policy == "spill") {
    cfg.policy = OverloadPolicy::Spill;
  } else if (policy == "shed") {
    cfg.policy = OverloadPolicy::Shed;
  } else {
    return core::unexpected(
        field_error(file, base + "policy", "unknown policy '" + policy + "' (spill|shed)"));
  }
  cfg.admission_threshold = json.number_or("admission_threshold", cfg.admission_threshold);
  cfg.max_rho = json.number_or("max_rho", cfg.max_rho);
  cfg.max_shed_waves = static_cast<std::size_t>(
      json.int_or("max_shed_waves", static_cast<std::int64_t>(cfg.max_shed_waves)));
  cfg.seed =
      static_cast<std::uint64_t>(json.int_or("seed", static_cast<std::int64_t>(cfg.seed)));
  if (const io::Json* sizes = json.find("flow_sizes")) {
    if (!sizes->is_object()) {
      return core::unexpected(
          field_error(file, base + "flow_sizes", "must be an object with bytes/prob arrays"));
    }
    const auto read_knots = [&](std::string_view key, std::vector<double>& out)
        -> std::optional<io::ConfigError> {
      const io::Json* arr = sizes->find(key);
      if (arr == nullptr || !arr->is_array()) {
        return field_error(file, base + "flow_sizes." + std::string(key),
                           "required array member is missing");
      }
      out.clear();
      for (std::size_t i = 0; i < arr->as_array().size(); ++i) {
        const io::Json& v = arr->as_array()[i];
        if (!v.is_number()) {
          return field_error(
              file, base + "flow_sizes." + std::string(key) + "[" + std::to_string(i) + "]",
              "must be a number");
        }
        out.push_back(v.as_number());
      }
      return std::nullopt;
    };
    if (auto err = read_knots("bytes", cfg.flow_sizes.bytes)) {
      return core::unexpected(std::move(*err));
    }
    if (auto err = read_knots("prob", cfg.flow_sizes.prob)) {
      return core::unexpected(std::move(*err));
    }
  }
  if (auto err = validate(cfg, file, base)) return core::unexpected(std::move(*err));
  return cfg;
}

io::Json config_to_json(const TrafficConfig& cfg) {
  io::JsonArray caps;
  caps.reserve(cfg.site_capacity_mbps.size());
  for (double v : cfg.site_capacity_mbps) caps.push_back(io::Json(v));
  io::JsonArray bytes, prob;
  for (double v : cfg.flow_sizes.bytes) bytes.push_back(io::Json(v));
  for (double v : cfg.flow_sizes.prob) prob.push_back(io::Json(v));
  return io::Json(io::JsonObject{
      {"flows_per_probe_per_s", io::Json(cfg.flows_per_probe_per_s)},
      {"window_s", io::Json(cfg.window_s)},
      {"demand_scale", io::Json(cfg.demand_scale)},
      {"default_site_capacity_mbps", io::Json(cfg.default_site_capacity_mbps)},
      {"site_capacity_mbps", io::Json(std::move(caps))},
      {"policy", io::Json(std::string(to_string(cfg.policy)))},
      {"admission_threshold", io::Json(cfg.admission_threshold)},
      {"max_rho", io::Json(cfg.max_rho)},
      {"max_shed_waves", io::Json(static_cast<std::int64_t>(cfg.max_shed_waves))},
      {"seed", io::Json(static_cast<std::int64_t>(cfg.seed))},
      {"flow_sizes", io::Json(io::JsonObject{{"bytes", io::Json(std::move(bytes))},
                                             {"prob", io::Json(std::move(prob))}})},
  });
}

}  // namespace ranycast::traffic
