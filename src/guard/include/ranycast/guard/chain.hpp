// Checkpoint lineage: a rotating chain of the last K checkpoint
// generations plus a CRC'd manifest, replacing the single-file checkpoint
// for supervised runs.
//
// Layout on disk, for a policy path of "run.ck" and keep = 3:
//
//   run.ck        manifest (checkpoint envelope, kind = ChainManifest):
//                 keep u32 | count u64 | entries (newest first), each
//                 generation u64 | basename str | file_size u64 | crc32 u32
//   run.ck.g7     newest generation (a normal checkpoint envelope)
//   run.ck.g6     previous generation
//   run.ck.g5     oldest retained generation
//
// Write path: the new generation file is written atomically first, then the
// manifest is rewritten to point at it, then generations that fell off the
// window are pruned. A crash between any two steps leaves a resumable
// state: an orphan generation is re-discovered by the directory scan, a
// stale manifest still names valid older generations.
//
// Read path ("self-healing resume"): generations are validated newest to
// oldest. A corrupt generation is quarantined — renamed to
// "<file>.quarantined", recorded in the journal and in the
// guard.recovery.* metrics — and resume falls back to the previous
// generation transparently. Only a fingerprint mismatch (a checkpoint from
// a DIFFERENT experiment) aborts the scan: that file is evidence of
// operator error, not bit rot, and is never destroyed. If the manifest
// itself is unreadable the chain is rebuilt from a directory scan of
// "<path>.g*" files.
//
// A legacy single-file checkpoint at the policy path (kind != ChainManifest)
// is still resumable: it is read directly and reported with legacy = true;
// the first chain write after that replaces it with a manifest.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ranycast/core/expected.hpp"
#include "ranycast/guard/checkpoint.hpp"
#include "ranycast/guard/error.hpp"

namespace ranycast::guard {

/// One generation as recorded in the manifest (newest first).
struct ChainEntry {
  std::uint64_t generation{0};
  std::string file;  ///< full path of the generation file
  std::uint64_t file_size{0};
  std::uint32_t file_crc{0};
};

/// What chain.read() recovered and how hard it had to work for it.
struct RecoveredCheckpoint {
  std::vector<std::uint8_t> payload;
  std::uint64_t generation{0};  ///< 0 for a legacy single-file checkpoint
  std::size_t fallbacks{0};     ///< generations stepped over to find a valid one
  std::size_t quarantined{0};   ///< corrupt generations renamed aside
  bool legacy{false};           ///< true when read from a pre-chain single file
  bool manifest_rebuilt{false};  ///< true when the manifest was unreadable and
                                 ///< the chain came from a directory scan
};

/// Offline verification result for `ranycast-flight verify`.
struct ChainVerifyReport {
  bool legacy{false};
  std::size_t generations{0};   ///< entries examined
  std::size_t valid{0};         ///< entries whose size, CRC and envelope check out
  std::size_t quarantined{0};   ///< "*.quarantined" casualties found next to the chain
  std::vector<std::string> problems;  ///< one line per damaged/missing entry

  bool ok() const noexcept { return generations > 0 && valid > 0; }
};

class CheckpointChain {
 public:
  /// `path` is the manifest location (the CheckpointPolicy path); generation
  /// files live at "<path>.g<N>". `keep` >= 1 generations are retained.
  CheckpointChain(std::string path, std::size_t keep);

  const std::string& path() const noexcept { return path_; }
  std::size_t keep() const noexcept { return keep_; }

  /// Persist one new generation and rotate the window. Returns the new
  /// generation number. Safe to retry on failure: the generation counter
  /// only advances after the manifest points at the new file.
  core::Expected<std::uint64_t, GuardError> write(CheckpointKind kind,
                                                  std::uint64_t fingerprint,
                                                  std::span<const std::uint8_t> payload);

  /// Recover the newest valid generation, quarantining corrupt ones and
  /// falling back transparently (see file comment). Errors: Io when nothing
  /// resumable exists, Corrupt when every generation was damaged,
  /// FingerprintMismatch immediately on a foreign checkpoint.
  core::Expected<RecoveredCheckpoint, GuardError> read(CheckpointKind expected_kind,
                                                       std::uint64_t expected_fingerprint);

 private:
  void prime_for_write();

  std::string path_;
  std::size_t keep_;
  bool primed_{false};
  std::uint64_t next_generation_{1};
  std::vector<ChainEntry> entries_;  ///< newest first, committed state only
};

/// Whether anything resumable exists at `path`: a manifest, a legacy
/// single-file checkpoint, or orphaned generation files.
bool chain_exists(const std::string& path) noexcept;

/// Offline validation of a chain (or legacy checkpoint) at `path`, without
/// knowing the expected kind or fingerprint. Used by `ranycast-flight
/// verify`; never mutates or quarantines anything.
core::Expected<ChainVerifyReport, GuardError> chain_verify(const std::string& path);

}  // namespace ranycast::guard
