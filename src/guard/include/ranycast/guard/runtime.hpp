// The supervised execution runtime: deadline, watchdog and checkpoint policy
// for long-running experiments.
//
// A Supervisor owns one run's cancellation token and — while it is alive —
// installs that token as the process-wide default cancel flag, so every
// parallel_for underneath the run (BGP solves, measurement fan-outs, chaos
// snapshots) can be stopped or time-boxed at chunk granularity without any
// signature plumbing. A background watchdog thread enforces the deadline
// mid-step and detects stalls: the runner calls heartbeat() once per
// completed unit of progress (also exported as the obs counter
// "guard.heartbeats"); if the count stops advancing for stall_timeout_s the
// watchdog cancels the run and the caller reports GuardErrorKind::Stalled
// instead of hanging forever. See docs/reliability.md.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "ranycast/exec/pool.hpp"
#include "ranycast/guard/cancel.hpp"
#include "ranycast/guard/checkpoint.hpp"
#include "ranycast/guard/error.hpp"

namespace ranycast::guard {

struct RunLimits {
  /// Wall-clock budget in seconds; 0 means unlimited.
  double deadline_s{0.0};
  /// Watchdog stall threshold: fail the run when no heartbeat arrives for
  /// this long. 0 disables stall detection.
  double stall_timeout_s{0.0};
  /// Watchdog polling cadence (only read when the watchdog runs).
  double poll_interval_s{0.02};
};

/// Bounded exponential backoff for transient I/O failures. An attempt is
/// retried only while the failure's severity is GuardSeverity::TransientIo;
/// corrupt state and fatal errors surface immediately.
struct RetryPolicy {
  std::size_t max_attempts{4};    ///< total tries, including the first
  double initial_backoff_ms{1.0};
  double multiplier{4.0};
  double max_backoff_ms{200.0};
};

/// When and where a runner persists progress.
struct CheckpointPolicy {
  std::string path;      ///< chain manifest path; empty disables checkpointing
  std::size_t every{1};  ///< persist after every k-th completed step
  bool resume{false};    ///< load `path` (if present) before running
  std::size_t keep{3};   ///< checkpoint generations retained in the chain
  RetryPolicy retry;     ///< transient-I/O retry for checkpoint writes/reads
  /// Payload kind run_sweep stamps on (and demands from) the chain: batch
  /// sweeps keep the default; the serving plane uses ServeState so a sweep
  /// checkpoint can never be resumed as serving state or vice versa.
  CheckpointKind kind{CheckpointKind::MeasurementSweep};
  /// Invoked after every completed step with (completed, planned) — the
  /// CLI progress hook; tests also use it to force aborts at exact steps.
  std::function<void(std::size_t, std::size_t)> after_step;
};

class Supervisor {
 public:
  explicit Supervisor(const RunLimits& limits = {});
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  CancellationToken& token() noexcept { return token_; }
  const Deadline& deadline() const noexcept { return deadline_; }

  /// Progress signal: call once per completed step/trial/item. Feeds the
  /// watchdog and the "guard.heartbeats" obs counter.
  void heartbeat() noexcept;

  /// External cancellation (e.g. a signal handler or another thread).
  void cancel() noexcept { token_.request(StopReason::Cancelled); }

  /// Checked at step boundaries: also enforces the deadline inline, so a
  /// run without the watchdog thread still stops at the next boundary.
  bool should_stop() noexcept;
  StopReason stop_reason() const noexcept { return token_.reason(); }

  /// The structured error matching the active stop reason. Only meaningful
  /// once should_stop() returned true.
  GuardError stop_error() const;

 private:
  void watchdog_loop();

  RunLimits limits_;
  Deadline deadline_;
  CancellationToken token_;
  // Installed for the Supervisor's whole lifetime: a guarded run is defined
  // as "everything executed while its Supervisor is alive".
  exec::ScopedCancel scoped_;
  std::atomic<std::uint64_t> heartbeats_{0};

  std::mutex mutex_;
  std::condition_variable cv_;
  bool shutdown_{false};
  std::thread watchdog_;
};

/// Graceful-shutdown bridge from POSIX signals to cooperative cancellation.
///
/// While alive, SIGTERM and SIGINT request Cancelled on the supervisor's
/// token instead of killing the process with the default disposition: the
/// run stops at the next step boundary, run_sweep flushes a final durable
/// checkpoint plus the `stopped` journal line, and the tool exits 3 with a
/// truncated report — resumable with --resume. The handler is
/// async-signal-safe (CancellationToken::request is atomics only). The
/// previous dispositions are restored on destruction; at most one instance
/// may be alive per process (last writer wins on the registered
/// supervisor).
class ScopedSignalCancel {
 public:
  explicit ScopedSignalCancel(Supervisor& supervisor);
  ~ScopedSignalCancel();

  ScopedSignalCancel(const ScopedSignalCancel&) = delete;
  ScopedSignalCancel& operator=(const ScopedSignalCancel&) = delete;

  /// How many SIGTERM/SIGINT deliveries the handler absorbed (diagnostics).
  static std::uint64_t signals_seen() noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

namespace detail {
/// Counter hook ("guard.recovery.retries") and backoff sleep, kept out of
/// the template so the header stays light.
void note_retry_and_backoff(double backoff_ms);
}  // namespace detail

/// Run `op` (returning core::Expected<T, GuardError>) with bounded
/// exponential-backoff retry on TransientIo failures. Stops early when the
/// supervisor wants to stop (returning its stop error), and annotates the
/// final failure with the attempt count. Corrupt/fatal errors are never
/// retried — corrupt state is the chain's job to heal, not a retry's.
template <typename Fn>
auto retry_transient(Supervisor& supervisor, const RetryPolicy& policy, Fn&& op)
    -> decltype(op()) {
  const std::size_t max_attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  double backoff_ms = policy.initial_backoff_ms;
  for (std::size_t attempt = 1;; ++attempt) {
    auto result = op();
    if (result) return result;
    if (result.error().severity() != GuardSeverity::TransientIo ||
        attempt >= max_attempts) {
      if (attempt > 1) {
        result.error().message += " (after " + std::to_string(attempt) + " attempts)";
      }
      return result;
    }
    if (supervisor.should_stop()) {
      using ResultT = decltype(op());
      return ResultT(core::unexpected(supervisor.stop_error()));
    }
    detail::note_retry_and_backoff(backoff_ms);
    backoff_ms = std::min(backoff_ms * policy.multiplier, policy.max_backoff_ms);
  }
}

}  // namespace ranycast::guard
