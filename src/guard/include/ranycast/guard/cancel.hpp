// Cooperative cancellation and deadlines for supervised runs.
//
// A CancellationToken wraps the exec::CancelFlag the thread pool polls
// between items with the *reason* the stop was requested (user cancel,
// deadline, watchdog stall), so a truncated run can report why it stopped.
// A Deadline is a monotonic-clock budget; it is enforced both inline (step
// boundaries check expired()) and asynchronously (the Supervisor's watchdog
// requests cancellation when it expires mid-step, which running solves and
// fan-outs acknowledge at their next chunk boundary).
#pragma once

#include <atomic>
#include <chrono>
#include <limits>
#include <optional>
#include <string_view>

#include "ranycast/exec/pool.hpp"

namespace ranycast::guard {

enum class StopReason : int {
  None = 0,
  Cancelled = 1,
  DeadlineExpired = 2,
  Stalled = 3,
};

constexpr std::string_view to_string(StopReason reason) noexcept {
  switch (reason) {
    case StopReason::Cancelled: return "cancelled";
    case StopReason::DeadlineExpired: return "deadline expired";
    case StopReason::Stalled: return "stalled";
    case StopReason::None: break;
  }
  return "none";
}

class Deadline {
 public:
  /// No budget: never expires.
  Deadline() = default;

  static Deadline never() noexcept { return Deadline{}; }
  static Deadline in_seconds(double seconds) noexcept {
    Deadline d;
    d.at_ = std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(seconds));
    return d;
  }

  bool set() const noexcept { return at_.has_value(); }
  bool expired() const noexcept { return at_ && std::chrono::steady_clock::now() >= *at_; }
  /// Seconds until expiry (negative once expired); +inf when unset.
  double remaining_seconds() const noexcept {
    if (!at_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(*at_ - std::chrono::steady_clock::now()).count();
  }

 private:
  std::optional<std::chrono::steady_clock::time_point> at_;
};

/// A cancel flag plus the first stop reason that requested it. The flag is
/// what parallel_for polls; the reason is what the run reports.
class CancellationToken {
 public:
  exec::CancelFlag& flag() noexcept { return flag_; }
  const exec::CancelFlag& flag() const noexcept { return flag_; }

  /// Request a stop. The first reason wins; later requests are ignored.
  void request(StopReason why) noexcept {
    int expected = 0;
    reason_.compare_exchange_strong(expected, static_cast<int>(why),
                                    std::memory_order_acq_rel);
    flag_.request();
  }

  bool stop_requested() const noexcept { return flag_.requested(); }
  StopReason reason() const noexcept {
    return static_cast<StopReason>(reason_.load(std::memory_order_acquire));
  }

 private:
  exec::CancelFlag flag_;
  std::atomic<int> reason_{0};
};

}  // namespace ranycast::guard
