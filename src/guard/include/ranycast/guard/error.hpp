// The guard error taxonomy: every way a supervised run can fail, as data.
//
// Guard APIs return core::Expected<T, GuardError> — the same exception-free
// convention as io::ConfigError — so the CLIs print one actionable line and
// exit nonzero instead of aborting. Configuration failures encountered while
// resuming (bad checkpoint path, mismatched scenario) are folded into the
// same taxonomy via GuardError::from.
#pragma once

#include <string>
#include <string_view>

#include "ranycast/io/config.hpp"
#include "ranycast/vfs/vfs.hpp"

namespace ranycast::guard {

enum class GuardErrorKind : std::uint8_t {
  Io,                   ///< hard I/O failure (missing file, permissions, EBADF)
  TransientIo,          ///< retryable I/O failure (ENOSPC, EINTR, transient EIO)
  Corrupt,              ///< bad magic, truncated envelope or CRC mismatch
  VersionMismatch,      ///< checkpoint written by a different format version
  FingerprintMismatch,  ///< checkpoint belongs to a different config/seed/plan
  Config,               ///< wrapped io::ConfigError (scenario/config loading)
  Cancelled,            ///< run stopped by an external cancellation
  DeadlineExpired,      ///< run stopped by the --deadline budget
  Stalled,              ///< watchdog saw no heartbeat for the stall timeout
};

std::string_view to_string(GuardErrorKind kind) noexcept;

/// How a failure should be handled, not just what it was:
///   TransientIo  — worth a bounded-backoff retry of the whole operation
///   CorruptState — stored state is damaged; quarantine and fall back to an
///                  older checkpoint generation, never retry in place
///   Fatal        — configuration/identity/stop conditions; surface to the
///                  caller unchanged
enum class GuardSeverity : std::uint8_t { TransientIo, CorruptState, Fatal };

GuardSeverity severity(GuardErrorKind kind) noexcept;
std::string_view to_string(GuardSeverity severity) noexcept;

struct GuardError {
  GuardErrorKind kind{GuardErrorKind::Io};
  std::string path;  ///< checkpoint file or resource; "" when not file-bound
  std::string message;

  GuardSeverity severity() const noexcept { return guard::severity(kind); }

  /// "chaos.ckpt: [corrupt] CRC mismatch (stored 0x1234, computed 0x5678)"
  std::string to_string() const;

  /// Fold a configuration-loading failure into the guard taxonomy.
  static GuardError from(const io::ConfigError& err);

  /// Fold a vfs I/O failure into the guard taxonomy: retryable errnos map
  /// to TransientIo, everything else to Io.
  static GuardError from(const vfs::IoError& err);
};

}  // namespace ranycast::guard
