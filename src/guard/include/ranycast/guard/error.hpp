// The guard error taxonomy: every way a supervised run can fail, as data.
//
// Guard APIs return core::Expected<T, GuardError> — the same exception-free
// convention as io::ConfigError — so the CLIs print one actionable line and
// exit nonzero instead of aborting. Configuration failures encountered while
// resuming (bad checkpoint path, mismatched scenario) are folded into the
// same taxonomy via GuardError::from.
#pragma once

#include <string>
#include <string_view>

#include "ranycast/io/config.hpp"

namespace ranycast::guard {

enum class GuardErrorKind : std::uint8_t {
  Io,                   ///< checkpoint file unreadable / unwritable
  Corrupt,              ///< bad magic, truncated envelope or CRC mismatch
  VersionMismatch,      ///< checkpoint written by a different format version
  FingerprintMismatch,  ///< checkpoint belongs to a different config/seed/plan
  Config,               ///< wrapped io::ConfigError (scenario/config loading)
  Cancelled,            ///< run stopped by an external cancellation
  DeadlineExpired,      ///< run stopped by the --deadline budget
  Stalled,              ///< watchdog saw no heartbeat for the stall timeout
};

std::string_view to_string(GuardErrorKind kind) noexcept;

struct GuardError {
  GuardErrorKind kind{GuardErrorKind::Io};
  std::string path;  ///< checkpoint file or resource; "" when not file-bound
  std::string message;

  /// "chaos.ckpt: [corrupt] CRC mismatch (stored 0x1234, computed 0x5678)"
  std::string to_string() const;

  /// Fold a configuration-loading failure into the guard taxonomy.
  static GuardError from(const io::ConfigError& err);
};

}  // namespace ranycast::guard
