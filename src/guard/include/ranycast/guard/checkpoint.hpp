// Crash-safe experiment checkpoints: versioned, checksummed, atomic.
//
// A checkpoint is one binary file:
//
//   magic "RGRD" | format u32 | kind u32 | fingerprint u64
//   | payload_size u64 | payload bytes | crc32 u32
//
// All integers little-endian; the CRC-32 covers every byte before it, so a
// truncated, bit-flipped or foreign file is rejected before any payload is
// trusted. `fingerprint` binds the checkpoint to the exact (config, seed,
// plan) it was taken from: resume refuses to splice progress into a
// different experiment, which is what makes resumed runs byte-identical to
// uninterrupted ones. Writes go to "<path>.tmp", are fsync'd and renamed
// into place, so a crash mid-write leaves the previous checkpoint intact.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "ranycast/core/expected.hpp"
#include "ranycast/guard/error.hpp"

namespace ranycast::guard {

inline constexpr std::uint32_t kCheckpointFormatVersion = 1;

/// What kind of progress the payload encodes. Mismatched kinds are rejected
/// like mismatched fingerprints (a stability checkpoint can never resume a
/// chaos timeline).
enum class CheckpointKind : std::uint32_t {
  ChaosTimeline = 1,
  StabilityTrials = 2,
  MeasurementSweep = 3,
  /// The lineage manifest written at the policy path by CheckpointChain:
  /// its payload lists the rotating generation files (see chain.hpp).
  ChainManifest = 4,
  /// The serving plane's complete state (serve::Server::save): snapshots,
  /// ladder history, admission model, world-drift cursor.
  ServeState = 5,
};

std::string_view to_string(CheckpointKind kind) noexcept;

/// Append-only little-endian encoder for checkpoint payloads.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { put_le(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  /// Doubles are stored as their raw IEEE-754 bits: a round trip is exact,
  /// which the byte-identical resume guarantee depends on.
  void f64(double v);
  void str(std::string_view s);
  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  const std::vector<std::uint8_t>& data() const noexcept { return buf_; }
  std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian decoder. Reads past the end return zero
/// values and latch ok() to false — check ok() once after decoding instead
/// of after every field.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return take_le<std::uint8_t>(); }
  std::uint16_t u16() { return take_le<std::uint16_t>(); }
  std::uint32_t u32() { return take_le<std::uint32_t>(); }
  std::uint64_t u64() { return take_le<std::uint64_t>(); }
  double f64();
  std::string str();

  bool ok() const noexcept { return ok_; }
  bool at_end() const noexcept { return pos_ == data_.size(); }
  std::size_t remaining() const noexcept { return data_.size() - pos_; }

 private:
  template <typename T>
  T take_le() {
    if (data_.size() - pos_ < sizeof(T)) {
      ok_ = false;
      pos_ = data_.size();
      return T{};
    }
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | static_cast<T>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_{0};
  bool ok_{true};
};

/// Header facts of a validated envelope (CRC, magic and version already
/// checked; kind and fingerprint NOT matched against any expectation).
struct CheckpointInfo {
  std::uint32_t format{0};
  CheckpointKind kind{CheckpointKind::ChaosTimeline};
  std::uint64_t fingerprint{0};
  std::uint64_t payload_size{0};
  std::uint64_t file_size{0};
};

/// A checkpoint whose envelope validated, before kind/fingerprint matching.
struct InspectedCheckpoint {
  CheckpointInfo info;
  std::vector<std::uint8_t> payload;
};

/// Serialize the full checkpoint envelope (header + payload + CRC) without
/// touching disk. `write_checkpoint(path, ...)` is `encode_checkpoint` +
/// `vfs::write_file_atomic`; CheckpointChain uses the bytes directly so the
/// manifest can record each generation's exact size and CRC.
std::vector<std::uint8_t> encode_checkpoint(CheckpointKind kind,
                                            std::uint64_t fingerprint,
                                            std::span<const std::uint8_t> payload);

/// Atomically persist a checkpoint (tmp + fsync + rename + parent-dir
/// fsync, all through ranycast::vfs so injected faults are exercised).
core::Expected<std::monostate, GuardError> write_checkpoint(
    const std::string& path, CheckpointKind kind, std::uint64_t fingerprint,
    std::span<const std::uint8_t> payload);

/// Read and validate the envelope (Io / TransientIo on read failure,
/// Corrupt on short/garbled file or CRC mismatch, VersionMismatch on a
/// foreign format version) but accept any kind and fingerprint. This is
/// how CheckpointChain tells a legacy single-file checkpoint from a chain
/// manifest, and how `ranycast-flight verify` inspects without a run.
core::Expected<InspectedCheckpoint, GuardError> read_checkpoint_unchecked(
    const std::string& path);

/// Header facts only; same validation as read_checkpoint_unchecked.
core::Expected<CheckpointInfo, GuardError> inspect_checkpoint(const std::string& path);

/// Read and fully validate a checkpoint; returns the payload bytes.
/// Rejects everything read_checkpoint_unchecked rejects, plus a mismatched
/// kind (Corrupt) and a mismatched fingerprint (FingerprintMismatch).
core::Expected<std::vector<std::uint8_t>, GuardError> read_checkpoint(
    const std::string& path, CheckpointKind expected_kind,
    std::uint64_t expected_fingerprint);

/// Whether a checkpoint file exists at `path` (resume probing; contents are
/// validated by read_checkpoint).
bool checkpoint_exists(const std::string& path) noexcept;

}  // namespace ranycast::guard
