// Checkpointed index-ordered sweeps: the guard primitive for long batch
// measurement campaigns (ping/DNS sweeps over thousands of probes).
//
// A sweep processes items 0..total-1 strictly in order, heartbeating per
// item and persisting a cursor plus a caller-serialized accumulator on the
// checkpoint cadence. Because items are processed in index order and the
// accumulator round-trips exactly (ByteWriter stores raw IEEE-754 bits), a
// killed-and-resumed sweep reduces to the same bytes as an uninterrupted
// one.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "ranycast/core/expected.hpp"
#include "ranycast/guard/checkpoint.hpp"
#include "ranycast/guard/runtime.hpp"

namespace ranycast::guard {

struct SweepResult {
  std::size_t total{0};
  std::size_t completed{0};  ///< items processed across all runs (cursor)
  StopReason stopped{StopReason::None};  ///< None when the sweep finished
  bool resumed{false};
  std::size_t resumed_from{0};

  bool complete() const noexcept { return completed == total; }
};

struct SweepHooks {
  /// Process item i (required). Runs exactly once per item across every
  /// run/resume of the same sweep.
  std::function<void(std::size_t)> process;
  /// Serialize the accumulator into a checkpoint payload (required when
  /// checkpointing is enabled).
  std::function<void(ByteWriter&)> save;
  /// Restore the accumulator from a checkpoint payload. Return false to
  /// reject the payload as corrupt. Required when resume is requested.
  std::function<bool(ByteReader&)> load;
};

/// Run (or resume) a sweep under a supervisor. Returns the sweep outcome;
/// a deadline/cancel/stall stop is NOT an error — the result records how
/// far the sweep got so callers can report partial progress explicitly.
/// Errors are reserved for unusable checkpoints and I/O failures.
core::Expected<SweepResult, GuardError> run_sweep(std::size_t total,
                                                  std::uint64_t fingerprint,
                                                  Supervisor& supervisor,
                                                  const CheckpointPolicy& policy,
                                                  const SweepHooks& hooks);

}  // namespace ranycast::guard
