#include "ranycast/guard/error.hpp"

namespace ranycast::guard {

std::string_view to_string(GuardErrorKind kind) noexcept {
  switch (kind) {
    case GuardErrorKind::Io: return "io";
    case GuardErrorKind::Corrupt: return "corrupt";
    case GuardErrorKind::VersionMismatch: return "version-mismatch";
    case GuardErrorKind::FingerprintMismatch: return "fingerprint-mismatch";
    case GuardErrorKind::Config: return "config";
    case GuardErrorKind::Cancelled: return "cancelled";
    case GuardErrorKind::DeadlineExpired: return "deadline-expired";
    case GuardErrorKind::Stalled: return "stalled";
  }
  return "unknown";
}

std::string GuardError::to_string() const {
  std::string out = path.empty() ? std::string("<run>") : path;
  out += ": [";
  out += guard::to_string(kind);
  out += "] ";
  out += message;
  return out;
}

GuardError GuardError::from(const io::ConfigError& err) {
  GuardError g;
  g.kind = GuardErrorKind::Config;
  g.path = err.file;
  if (err.offset != 0) {
    g.message += "byte " + std::to_string(err.offset) + ": ";
  }
  if (!err.field.empty()) {
    g.message += "field '" + err.field + "': ";
  }
  g.message += err.message;
  return g;
}

}  // namespace ranycast::guard
