#include "ranycast/guard/error.hpp"

namespace ranycast::guard {

std::string_view to_string(GuardErrorKind kind) noexcept {
  switch (kind) {
    case GuardErrorKind::Io: return "io";
    case GuardErrorKind::TransientIo: return "transient-io";
    case GuardErrorKind::Corrupt: return "corrupt";
    case GuardErrorKind::VersionMismatch: return "version-mismatch";
    case GuardErrorKind::FingerprintMismatch: return "fingerprint-mismatch";
    case GuardErrorKind::Config: return "config";
    case GuardErrorKind::Cancelled: return "cancelled";
    case GuardErrorKind::DeadlineExpired: return "deadline-expired";
    case GuardErrorKind::Stalled: return "stalled";
  }
  return "unknown";
}

std::string GuardError::to_string() const {
  std::string out = path.empty() ? std::string("<run>") : path;
  out += ": [";
  out += guard::to_string(kind);
  out += "] ";
  out += message;
  return out;
}

GuardSeverity severity(GuardErrorKind kind) noexcept {
  switch (kind) {
    case GuardErrorKind::TransientIo:
      return GuardSeverity::TransientIo;
    case GuardErrorKind::Corrupt:
    case GuardErrorKind::VersionMismatch:
      return GuardSeverity::CorruptState;
    case GuardErrorKind::Io:
    case GuardErrorKind::FingerprintMismatch:
    case GuardErrorKind::Config:
    case GuardErrorKind::Cancelled:
    case GuardErrorKind::DeadlineExpired:
    case GuardErrorKind::Stalled:
      break;
  }
  return GuardSeverity::Fatal;
}

std::string_view to_string(GuardSeverity severity) noexcept {
  switch (severity) {
    case GuardSeverity::TransientIo: return "transient-io";
    case GuardSeverity::CorruptState: return "corrupt-state";
    case GuardSeverity::Fatal: return "fatal";
  }
  return "unknown";
}

GuardError GuardError::from(const vfs::IoError& err) {
  GuardError g;
  g.kind = err.retryable() ? GuardErrorKind::TransientIo : GuardErrorKind::Io;
  g.path = err.path;
  g.message = err.to_string();
  return g;
}

GuardError GuardError::from(const io::ConfigError& err) {
  GuardError g;
  g.kind = GuardErrorKind::Config;
  g.path = err.file;
  if (err.offset != 0) {
    g.message += "byte " + std::to_string(err.offset) + ": ";
  }
  if (!err.field.empty()) {
    g.message += "field '" + err.field + "': ";
  }
  g.message += err.message;
  return g;
}

}  // namespace ranycast::guard
