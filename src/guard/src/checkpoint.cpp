#include "ranycast/guard/checkpoint.hpp"

#include <sys/stat.h>

#include <bit>
#include <cstdio>
#include <cstring>

#include "ranycast/core/crc32.hpp"
#include "ranycast/vfs/vfs.hpp"

namespace ranycast::guard {

namespace {

constexpr char kMagic[4] = {'R', 'G', 'R', 'D'};
// Envelope bytes before the payload: magic + format + kind + fingerprint
// + payload size.
constexpr std::size_t kHeaderSize = 4 + 4 + 4 + 8 + 8;
constexpr std::size_t kCrcSize = 4;

GuardError make_error(GuardErrorKind kind, const std::string& path, std::string message) {
  GuardError err;
  err.kind = kind;
  err.path = path;
  err.message = std::move(message);
  return err;
}

/// Envelope validation shared by every read path: CRC first (no header
/// field is trusted before it), then magic and format version. Kind and
/// fingerprint are reported, not matched.
core::Expected<CheckpointInfo, GuardError> validate_envelope(
    const std::string& path, std::span<const std::uint8_t> raw) {
  if (raw.size() < kHeaderSize + kCrcSize) {
    return core::unexpected(make_error(GuardErrorKind::Corrupt, path,
                                       "file too short to be a checkpoint (" +
                                           std::to_string(raw.size()) + " bytes)"));
  }
  const std::size_t body = raw.size() - kCrcSize;
  const std::uint32_t computed = core::crc32(raw.data(), body);
  ByteReader crc_reader(raw.subspan(body));
  const std::uint32_t stored = crc_reader.u32();
  if (computed != stored) {
    char msg[96];
    std::snprintf(msg, sizeof msg, "CRC mismatch (stored 0x%08x, computed 0x%08x)", stored,
                  computed);
    return core::unexpected(make_error(GuardErrorKind::Corrupt, path, msg));
  }

  ByteReader reader(raw.first(body));
  std::uint8_t magic[4];
  for (auto& b : magic) b = reader.u8();
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    return core::unexpected(
        make_error(GuardErrorKind::Corrupt, path, "bad magic: not a guard checkpoint"));
  }
  CheckpointInfo info;
  info.format = reader.u32();
  if (info.format != kCheckpointFormatVersion) {
    return core::unexpected(make_error(
        GuardErrorKind::VersionMismatch, path,
        "format version " + std::to_string(info.format) + " (this build reads version " +
            std::to_string(kCheckpointFormatVersion) + ")"));
  }
  info.kind = static_cast<CheckpointKind>(reader.u32());
  info.fingerprint = reader.u64();
  info.payload_size = reader.u64();
  info.file_size = raw.size();
  if (!reader.ok() || info.payload_size != reader.remaining()) {
    return core::unexpected(
        make_error(GuardErrorKind::Corrupt, path, "payload size does not match file size"));
  }
  return info;
}

}  // namespace

std::string_view to_string(CheckpointKind kind) noexcept {
  switch (kind) {
    case CheckpointKind::ChaosTimeline: return "chaos-timeline";
    case CheckpointKind::StabilityTrials: return "stability-trials";
    case CheckpointKind::MeasurementSweep: return "measurement-sweep";
    case CheckpointKind::ChainManifest: return "chain-manifest";
    case CheckpointKind::ServeState: return "serve-state";
  }
  return "unknown";
}

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::string ByteReader::str() {
  const std::uint32_t size = u32();
  if (!ok_ || data_.size() - pos_ < size) {
    ok_ = false;
    pos_ = data_.size();
    return {};
  }
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), size);
  pos_ += size;
  return out;
}

std::vector<std::uint8_t> encode_checkpoint(CheckpointKind kind,
                                            std::uint64_t fingerprint,
                                            std::span<const std::uint8_t> payload) {
  ByteWriter envelope;
  envelope.bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(kMagic), sizeof kMagic));
  envelope.u32(kCheckpointFormatVersion);
  envelope.u32(static_cast<std::uint32_t>(kind));
  envelope.u64(fingerprint);
  envelope.u64(payload.size());
  envelope.bytes(payload);
  const std::uint32_t crc = core::crc32(envelope.data().data(), envelope.data().size());
  envelope.u32(crc);
  return envelope.take();
}

core::Expected<std::monostate, GuardError> write_checkpoint(
    const std::string& path, CheckpointKind kind, std::uint64_t fingerprint,
    std::span<const std::uint8_t> payload) {
  const std::vector<std::uint8_t> bytes = encode_checkpoint(kind, fingerprint, payload);
  auto written = vfs::write_file_atomic(path, std::span<const std::uint8_t>(bytes));
  if (!written) return core::unexpected(GuardError::from(written.error()));
  return std::monostate{};
}

core::Expected<InspectedCheckpoint, GuardError> read_checkpoint_unchecked(
    const std::string& path) {
  auto raw = vfs::read_file(path);
  if (!raw) return core::unexpected(GuardError::from(raw.error()));
  auto info = validate_envelope(path, std::span<const std::uint8_t>(*raw));
  if (!info) return core::unexpected(std::move(info).error());
  InspectedCheckpoint out;
  out.info = *info;
  out.payload.assign(raw->begin() + static_cast<std::ptrdiff_t>(kHeaderSize),
                     raw->end() - static_cast<std::ptrdiff_t>(kCrcSize));
  return out;
}

core::Expected<CheckpointInfo, GuardError> inspect_checkpoint(const std::string& path) {
  auto inspected = read_checkpoint_unchecked(path);
  if (!inspected) return core::unexpected(std::move(inspected).error());
  return inspected->info;
}

core::Expected<std::vector<std::uint8_t>, GuardError> read_checkpoint(
    const std::string& path, CheckpointKind expected_kind,
    std::uint64_t expected_fingerprint) {
  auto inspected = read_checkpoint_unchecked(path);
  if (!inspected) return core::unexpected(std::move(inspected).error());
  const CheckpointInfo& info = inspected->info;
  if (info.kind != expected_kind) {
    return core::unexpected(make_error(
        GuardErrorKind::Corrupt, path,
        "checkpoint kind " + std::to_string(static_cast<std::uint32_t>(info.kind)) +
            " does not match this runner"));
  }
  if (info.fingerprint != expected_fingerprint) {
    char msg[128];
    std::snprintf(msg, sizeof msg,
                  "fingerprint 0x%016llx was taken from a different config/seed/plan "
                  "(expected 0x%016llx)",
                  static_cast<unsigned long long>(info.fingerprint),
                  static_cast<unsigned long long>(expected_fingerprint));
    return core::unexpected(make_error(GuardErrorKind::FingerprintMismatch, path, msg));
  }
  return std::move(inspected->payload);
}

bool checkpoint_exists(const std::string& path) noexcept {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

}  // namespace ranycast::guard
