#include "ranycast/guard/checkpoint.hpp"

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sys/stat.h>
#include <unistd.h>

#include "ranycast/core/crc32.hpp"

namespace ranycast::guard {

namespace {

constexpr char kMagic[4] = {'R', 'G', 'R', 'D'};
// Envelope bytes before the payload: magic + format + kind + fingerprint
// + payload size.
constexpr std::size_t kHeaderSize = 4 + 4 + 4 + 8 + 8;
constexpr std::size_t kCrcSize = 4;

GuardError make_error(GuardErrorKind kind, const std::string& path, std::string message) {
  GuardError err;
  err.kind = kind;
  err.path = path;
  err.message = std::move(message);
  return err;
}

GuardError io_error(const std::string& path, const std::string& what) {
  return make_error(GuardErrorKind::Io, path, what + ": " + std::strerror(errno));
}

}  // namespace

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::string ByteReader::str() {
  const std::uint32_t size = u32();
  if (!ok_ || data_.size() - pos_ < size) {
    ok_ = false;
    pos_ = data_.size();
    return {};
  }
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), size);
  pos_ += size;
  return out;
}

core::Expected<std::monostate, GuardError> write_checkpoint(
    const std::string& path, CheckpointKind kind, std::uint64_t fingerprint,
    std::span<const std::uint8_t> payload) {
  ByteWriter envelope;
  envelope.bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(kMagic), sizeof kMagic));
  envelope.u32(kCheckpointFormatVersion);
  envelope.u32(static_cast<std::uint32_t>(kind));
  envelope.u64(fingerprint);
  envelope.u64(payload.size());
  envelope.bytes(payload);
  const std::uint32_t crc = core::crc32(envelope.data().data(), envelope.data().size());
  envelope.u32(crc);

  // tmp + fsync + rename: a crash at any point leaves either the previous
  // checkpoint or a complete new one, never a torn file under `path`.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return core::unexpected(io_error(tmp, "cannot open for writing"));
  const auto& bytes = envelope.data();
  const bool wrote = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  const bool flushed = wrote && std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  if (std::fclose(f) != 0 || !flushed) {
    ::unlink(tmp.c_str());
    return core::unexpected(io_error(tmp, "write failed"));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return core::unexpected(io_error(path, "rename failed"));
  }
  return std::monostate{};
}

core::Expected<std::vector<std::uint8_t>, GuardError> read_checkpoint(
    const std::string& path, CheckpointKind expected_kind,
    std::uint64_t expected_fingerprint) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return core::unexpected(io_error(path, "cannot open checkpoint"));
  std::vector<std::uint8_t> raw;
  std::uint8_t buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    raw.insert(raw.end(), buf, buf + n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return core::unexpected(io_error(path, "read failed"));

  if (raw.size() < kHeaderSize + kCrcSize) {
    return core::unexpected(make_error(GuardErrorKind::Corrupt, path,
                                       "file too short to be a checkpoint (" +
                                           std::to_string(raw.size()) + " bytes)"));
  }
  // Validate the CRC before trusting any header field.
  const std::size_t body = raw.size() - kCrcSize;
  const std::uint32_t computed = core::crc32(raw.data(), body);
  const std::span<const std::uint8_t> raw_span(raw.data(), raw.size());
  ByteReader crc_reader(raw_span.subspan(body));
  const std::uint32_t stored = crc_reader.u32();
  if (computed != stored) {
    char msg[96];
    std::snprintf(msg, sizeof msg, "CRC mismatch (stored 0x%08x, computed 0x%08x)", stored,
                  computed);
    return core::unexpected(make_error(GuardErrorKind::Corrupt, path, msg));
  }

  ByteReader reader(raw_span.first(body));
  std::uint8_t magic[4];
  for (auto& b : magic) b = reader.u8();
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    return core::unexpected(
        make_error(GuardErrorKind::Corrupt, path, "bad magic: not a guard checkpoint"));
  }
  const std::uint32_t version = reader.u32();
  if (version != kCheckpointFormatVersion) {
    return core::unexpected(make_error(
        GuardErrorKind::VersionMismatch, path,
        "format version " + std::to_string(version) + " (this build reads version " +
            std::to_string(kCheckpointFormatVersion) + ")"));
  }
  const std::uint32_t kind = reader.u32();
  if (kind != static_cast<std::uint32_t>(expected_kind)) {
    return core::unexpected(make_error(GuardErrorKind::Corrupt, path,
                                       "checkpoint kind " + std::to_string(kind) +
                                           " does not match this runner"));
  }
  const std::uint64_t fingerprint = reader.u64();
  if (fingerprint != expected_fingerprint) {
    char msg[128];
    std::snprintf(msg, sizeof msg,
                  "fingerprint 0x%016llx was taken from a different config/seed/plan "
                  "(expected 0x%016llx)",
                  static_cast<unsigned long long>(fingerprint),
                  static_cast<unsigned long long>(expected_fingerprint));
    return core::unexpected(make_error(GuardErrorKind::FingerprintMismatch, path, msg));
  }
  const std::uint64_t payload_size = reader.u64();
  if (!reader.ok() || payload_size != reader.remaining()) {
    return core::unexpected(
        make_error(GuardErrorKind::Corrupt, path, "payload size does not match file size"));
  }
  return std::vector<std::uint8_t>(raw.begin() + static_cast<std::ptrdiff_t>(kHeaderSize),
                                   raw.begin() + static_cast<std::ptrdiff_t>(body));
}

bool checkpoint_exists(const std::string& path) noexcept {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

}  // namespace ranycast::guard
