#include "ranycast/guard/runtime.hpp"

#include <chrono>
#include <thread>

#include "ranycast/obs/metrics.hpp"

namespace ranycast::guard {

namespace {

obs::Counter& heartbeat_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter("guard.heartbeats");
  return c;
}

}  // namespace

namespace detail {

void note_retry_and_backoff(double backoff_ms) {
  static obs::Counter& retries =
      obs::MetricsRegistry::global().counter("guard.recovery.retries");
  retries.add();
  if (backoff_ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(backoff_ms));
  }
}

}  // namespace detail

Supervisor::Supervisor(const RunLimits& limits)
    : limits_(limits),
      deadline_(limits.deadline_s > 0.0 ? Deadline::in_seconds(limits.deadline_s)
                                        : Deadline::never()),
      scoped_(&token_.flag()) {
  if (deadline_.set() || limits_.stall_timeout_s > 0.0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

Supervisor::~Supervisor() {
  if (watchdog_.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    cv_.notify_all();
    watchdog_.join();
  }
}

void Supervisor::heartbeat() noexcept {
  heartbeats_.fetch_add(1, std::memory_order_relaxed);
  // The same count is exported for dashboards/ranycast-stats; the watchdog
  // reads the atomic (the obs counter no-ops when observability is off).
  heartbeat_counter().add();
}

bool Supervisor::should_stop() noexcept {
  if (token_.stop_requested()) return true;
  if (deadline_.expired()) {
    token_.request(StopReason::DeadlineExpired);
    return true;
  }
  return false;
}

GuardError Supervisor::stop_error() const {
  GuardError err;
  switch (stop_reason()) {
    case StopReason::DeadlineExpired:
      err.kind = GuardErrorKind::DeadlineExpired;
      err.message = "wall-clock deadline of " + std::to_string(limits_.deadline_s) +
                    "s expired";
      break;
    case StopReason::Stalled:
      err.kind = GuardErrorKind::Stalled;
      err.message = "no heartbeat for " + std::to_string(limits_.stall_timeout_s) +
                    "s (watchdog)";
      break;
    case StopReason::Cancelled:
    case StopReason::None:
      err.kind = GuardErrorKind::Cancelled;
      err.message = "run cancelled";
      break;
  }
  return err;
}

void Supervisor::watchdog_loop() {
  const auto poll = std::chrono::duration<double>(
      limits_.poll_interval_s > 0.0 ? limits_.poll_interval_s : 0.02);
  std::uint64_t last_count = heartbeats_.load(std::memory_order_relaxed);
  auto last_progress = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(mutex_);
  while (!shutdown_) {
    cv_.wait_for(lock, poll, [&] { return shutdown_; });
    if (shutdown_) return;
    if (deadline_.expired()) token_.request(StopReason::DeadlineExpired);
    if (limits_.stall_timeout_s > 0.0) {
      const std::uint64_t count = heartbeats_.load(std::memory_order_relaxed);
      const auto now = std::chrono::steady_clock::now();
      if (count != last_count) {
        last_count = count;
        last_progress = now;
      } else if (std::chrono::duration<double>(now - last_progress).count() >
                 limits_.stall_timeout_s) {
        token_.request(StopReason::Stalled);
      }
    }
  }
}

}  // namespace ranycast::guard
