#include "ranycast/guard/runtime.hpp"

#include <csignal>

#include <chrono>
#include <thread>

#include "ranycast/obs/metrics.hpp"

namespace ranycast::guard {

namespace {

obs::Counter& heartbeat_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter("guard.heartbeats");
  return c;
}

// The signal bridge: one process-wide supervisor slot plus a delivery
// count. Both are lock-free atomics — the handler may run at any point,
// including inside malloc, so it must not take locks or allocate.
std::atomic<Supervisor*> g_signal_supervisor{nullptr};
std::atomic<std::uint64_t> g_signals_seen{0};

extern "C" void ranycast_guard_signal_handler(int /*signum*/) {
  g_signals_seen.fetch_add(1, std::memory_order_relaxed);
  if (Supervisor* s = g_signal_supervisor.load(std::memory_order_acquire)) {
    // CancellationToken::request is a CAS + atomic store: async-signal-safe.
    s->cancel();
  }
}

}  // namespace

namespace detail {

void note_retry_and_backoff(double backoff_ms) {
  static obs::Counter& retries =
      obs::MetricsRegistry::global().counter("guard.recovery.retries");
  retries.add();
  if (backoff_ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(backoff_ms));
  }
}

}  // namespace detail

Supervisor::Supervisor(const RunLimits& limits)
    : limits_(limits),
      deadline_(limits.deadline_s > 0.0 ? Deadline::in_seconds(limits.deadline_s)
                                        : Deadline::never()),
      scoped_(&token_.flag()) {
  if (deadline_.set() || limits_.stall_timeout_s > 0.0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

Supervisor::~Supervisor() {
  if (watchdog_.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    cv_.notify_all();
    watchdog_.join();
  }
}

void Supervisor::heartbeat() noexcept {
  heartbeats_.fetch_add(1, std::memory_order_relaxed);
  // The same count is exported for dashboards/ranycast-stats; the watchdog
  // reads the atomic (the obs counter no-ops when observability is off).
  heartbeat_counter().add();
}

bool Supervisor::should_stop() noexcept {
  if (token_.stop_requested()) return true;
  if (deadline_.expired()) {
    token_.request(StopReason::DeadlineExpired);
    return true;
  }
  return false;
}

GuardError Supervisor::stop_error() const {
  GuardError err;
  switch (stop_reason()) {
    case StopReason::DeadlineExpired:
      err.kind = GuardErrorKind::DeadlineExpired;
      err.message = "wall-clock deadline of " + std::to_string(limits_.deadline_s) +
                    "s expired";
      break;
    case StopReason::Stalled:
      err.kind = GuardErrorKind::Stalled;
      err.message = "no heartbeat for " + std::to_string(limits_.stall_timeout_s) +
                    "s (watchdog)";
      break;
    case StopReason::Cancelled:
    case StopReason::None:
      err.kind = GuardErrorKind::Cancelled;
      err.message = "run cancelled";
      break;
  }
  return err;
}

struct ScopedSignalCancel::Impl {
  struct sigaction old_term {};
  struct sigaction old_int {};
};

ScopedSignalCancel::ScopedSignalCancel(Supervisor& supervisor)
    : impl_(std::make_unique<Impl>()) {
  g_signal_supervisor.store(&supervisor, std::memory_order_release);
  struct sigaction action {};
  action.sa_handler = &ranycast_guard_signal_handler;
  sigemptyset(&action.sa_mask);
  // No SA_RESTART: an interrupted blocking write surfaces EINTR, which the
  // vfs write loops already retry — and the run notices the cancel sooner.
  action.sa_flags = 0;
  sigaction(SIGTERM, &action, &impl_->old_term);
  sigaction(SIGINT, &action, &impl_->old_int);
}

ScopedSignalCancel::~ScopedSignalCancel() {
  sigaction(SIGTERM, &impl_->old_term, nullptr);
  sigaction(SIGINT, &impl_->old_int, nullptr);
  g_signal_supervisor.store(nullptr, std::memory_order_release);
}

std::uint64_t ScopedSignalCancel::signals_seen() noexcept {
  return g_signals_seen.load(std::memory_order_relaxed);
}

void Supervisor::watchdog_loop() {
  const auto poll = std::chrono::duration<double>(
      limits_.poll_interval_s > 0.0 ? limits_.poll_interval_s : 0.02);
  std::uint64_t last_count = heartbeats_.load(std::memory_order_relaxed);
  auto last_progress = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(mutex_);
  while (!shutdown_) {
    cv_.wait_for(lock, poll, [&] { return shutdown_; });
    if (shutdown_) return;
    if (deadline_.expired()) token_.request(StopReason::DeadlineExpired);
    if (limits_.stall_timeout_s > 0.0) {
      const std::uint64_t count = heartbeats_.load(std::memory_order_relaxed);
      const auto now = std::chrono::steady_clock::now();
      if (count != last_count) {
        last_count = count;
        last_progress = now;
      } else if (std::chrono::duration<double>(now - last_progress).count() >
                 limits_.stall_timeout_s) {
        token_.request(StopReason::Stalled);
      }
    }
  }
}

}  // namespace ranycast::guard
