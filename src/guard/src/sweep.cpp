#include "ranycast/guard/sweep.hpp"

#include "ranycast/obs/journal.hpp"

namespace ranycast::guard {

namespace {

core::Expected<std::monostate, GuardError> persist(const std::string& path,
                                                   std::uint64_t fingerprint,
                                                   std::size_t cursor,
                                                   const SweepHooks& hooks) {
  ByteWriter payload;
  payload.u64(cursor);
  if (hooks.save) hooks.save(payload);
  return write_checkpoint(path, CheckpointKind::MeasurementSweep, fingerprint,
                          payload.data());
}

const char* reason_name(StopReason reason) {
  switch (reason) {
    case StopReason::DeadlineExpired: return "deadline_expired";
    case StopReason::Stalled: return "stalled";
    case StopReason::Cancelled: return "cancelled";
    case StopReason::None: break;
  }
  return "none";
}

}  // namespace

core::Expected<SweepResult, GuardError> run_sweep(std::size_t total,
                                                  std::uint64_t fingerprint,
                                                  Supervisor& supervisor,
                                                  const CheckpointPolicy& policy,
                                                  const SweepHooks& hooks) {
  using F = obs::JournalField;
  SweepResult result;
  result.total = total;

  std::size_t start = 0;
  if (policy.resume && !policy.path.empty() && checkpoint_exists(policy.path)) {
    auto payload = read_checkpoint(policy.path, CheckpointKind::MeasurementSweep,
                                   fingerprint);
    if (!payload) return core::unexpected(std::move(payload).error());
    ByteReader reader(*payload);
    const std::uint64_t cursor = reader.u64();
    if (!reader.ok() || cursor > total || !hooks.load || !hooks.load(reader)) {
      GuardError err;
      err.kind = GuardErrorKind::Corrupt;
      err.path = policy.path;
      err.message = "sweep payload failed to decode";
      return core::unexpected(std::move(err));
    }
    start = static_cast<std::size_t>(cursor);
    result.resumed = true;
    result.resumed_from = start;
    // The explicit resume marker: everything after this line in the journal
    // was produced by the resumed process; everything before it (including a
    // possibly duplicated step from a mid-step kill) by earlier attempts.
    obs::journal_event("resumed",
                       {F::u64_field("cursor", cursor), F::u64_field("total", total),
                        F::str("checkpoint", policy.path)},
                       /*durable=*/true);
  }

  const std::size_t every = policy.every == 0 ? 1 : policy.every;
  result.completed = start;
  for (std::size_t i = start; i < total; ++i) {
    if (supervisor.should_stop()) break;
    try {
      hooks.process(i);
    } catch (const exec::CancelledError&) {
      // A fan-out inside the item acknowledged the cancellation; the item
      // did not complete, so the cursor stays at i.
      break;
    }
    result.completed = i + 1;
    supervisor.heartbeat();
    // Step granularity durability: everything the item appended to the
    // journal (chaos_step, transient_window, ...) survives a SIGKILL from
    // here on, so a dead run's journal is readable up to the last completed
    // step.
    if (obs::Journal* j = obs::journal()) j->sync();
    if (!policy.path.empty() && ((i + 1) % every == 0 || i + 1 == total)) {
      if (auto written = persist(policy.path, fingerprint, i + 1, hooks); !written) {
        return core::unexpected(std::move(written).error());
      }
      obs::journal_event("checkpoint",
                         {F::u64_field("cursor", i + 1), F::str("path", policy.path)},
                         /*durable=*/true);
    }
    // After the checkpoint is durable: a crash inside this hook (tests use
    // it to simulate SIGKILL at exact steps) loses nothing.
    if (policy.after_step) policy.after_step(result.completed, total);
  }
  if (result.completed < total) {
    result.stopped = supervisor.stop_reason();
    obs::journal_event("stopped",
                       {F::str("reason", reason_name(result.stopped)),
                        F::u64_field("completed", result.completed),
                        F::u64_field("total", total)},
                       /*durable=*/true);
  }
  return result;
}

}  // namespace ranycast::guard
