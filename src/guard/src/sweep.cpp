#include "ranycast/guard/sweep.hpp"

#include "ranycast/guard/chain.hpp"
#include "ranycast/obs/journal.hpp"

namespace ranycast::guard {

namespace {

const char* reason_name(StopReason reason) {
  switch (reason) {
    case StopReason::DeadlineExpired: return "deadline_expired";
    case StopReason::Stalled: return "stalled";
    case StopReason::Cancelled: return "cancelled";
    case StopReason::None: break;
  }
  return "none";
}

}  // namespace

core::Expected<SweepResult, GuardError> run_sweep(std::size_t total,
                                                  std::uint64_t fingerprint,
                                                  Supervisor& supervisor,
                                                  const CheckpointPolicy& policy,
                                                  const SweepHooks& hooks) {
  using F = obs::JournalField;
  SweepResult result;
  result.total = total;

  CheckpointChain chain(policy.path, policy.keep);

  std::size_t start = 0;
  if (policy.resume && !policy.path.empty() && chain_exists(policy.path)) {
    auto recovered = retry_transient(supervisor, policy.retry, [&] {
      return chain.read(policy.kind, fingerprint);
    });
    if (!recovered) return core::unexpected(std::move(recovered).error());
    ByteReader reader(recovered->payload);
    const std::uint64_t cursor = reader.u64();
    if (!reader.ok() || cursor > total || !hooks.load || !hooks.load(reader)) {
      GuardError err;
      err.kind = GuardErrorKind::Corrupt;
      err.path = policy.path;
      err.message = "sweep payload failed to decode";
      return core::unexpected(std::move(err));
    }
    start = static_cast<std::size_t>(cursor);
    result.resumed = true;
    result.resumed_from = start;
    // The explicit resume marker: everything after this line in the journal
    // was produced by the resumed process; everything before it (including a
    // possibly duplicated step from a mid-step kill) by earlier attempts.
    // `generation`/`fallbacks`/`quarantined` record how the chain recovered:
    // a clean resume reads the newest generation with zero fallbacks.
    obs::journal_event("resumed",
                       {F::u64_field("cursor", cursor), F::u64_field("total", total),
                        F::str("checkpoint", policy.path),
                        F::u64_field("generation", recovered->generation),
                        F::u64_field("fallbacks", recovered->fallbacks),
                        F::u64_field("quarantined", recovered->quarantined),
                        F::bool_field("legacy", recovered->legacy)},
                       /*durable=*/true);
  }

  const std::size_t every = policy.every == 0 ? 1 : policy.every;
  result.completed = start;
  std::size_t checkpointed = start;  ///< cursor covered by the newest generation
  const auto write_checkpoint_at = [&](std::size_t cursor)
      -> core::Expected<std::monostate, GuardError> {
    ByteWriter payload;
    payload.u64(cursor);
    if (hooks.save) hooks.save(payload);
    auto written = retry_transient(supervisor, policy.retry, [&] {
      return chain.write(policy.kind, fingerprint, payload.data());
    });
    if (!written) return core::unexpected(std::move(written).error());
    checkpointed = cursor;
    obs::journal_event("checkpoint",
                       {F::u64_field("cursor", cursor), F::str("path", policy.path),
                        F::u64_field("generation", *written)},
                       /*durable=*/true);
    return std::monostate{};
  };
  for (std::size_t i = start; i < total; ++i) {
    if (supervisor.should_stop()) break;
    try {
      hooks.process(i);
    } catch (const exec::CancelledError&) {
      // A fan-out inside the item acknowledged the cancellation; the item
      // did not complete, so the cursor stays at i.
      break;
    }
    result.completed = i + 1;
    supervisor.heartbeat();
    // Step granularity durability: everything the item appended to the
    // journal (chaos_step, transient_window, ...) survives a SIGKILL from
    // here on, so a dead run's journal is readable up to the last completed
    // step.
    if (obs::Journal* j = obs::journal()) j->sync();
    if (!policy.path.empty() && ((i + 1) % every == 0 || i + 1 == total)) {
      auto written = write_checkpoint_at(i + 1);
      if (!written) return core::unexpected(std::move(written).error());
    }
    // After the checkpoint is durable: a crash inside this hook (tests use
    // it to simulate SIGKILL at exact steps) loses nothing.
    if (policy.after_step) policy.after_step(result.completed, total);
  }
  if (result.completed < total) {
    result.stopped = supervisor.stop_reason();
    // A cooperative stop (SIGTERM -> Supervisor::cancel, deadline, stall)
    // flushes the steps completed since the last cadence boundary before
    // reporting: the whole point of stopping gracefully is that a later
    // --resume continues from here, not from the previous multiple of
    // `every`. Best effort — if the final write fails, the cadence
    // checkpoint still stands.
    if (!policy.path.empty() && result.completed > checkpointed) {
      (void)write_checkpoint_at(result.completed);
    }
    obs::journal_event("stopped",
                       {F::str("reason", reason_name(result.stopped)),
                        F::u64_field("completed", result.completed),
                        F::u64_field("total", total)},
                       /*durable=*/true);
  }
  return result;
}

}  // namespace ranycast::guard
