#include "ranycast/guard/sweep.hpp"

namespace ranycast::guard {

namespace {

core::Expected<std::monostate, GuardError> persist(const std::string& path,
                                                   std::uint64_t fingerprint,
                                                   std::size_t cursor,
                                                   const SweepHooks& hooks) {
  ByteWriter payload;
  payload.u64(cursor);
  if (hooks.save) hooks.save(payload);
  return write_checkpoint(path, CheckpointKind::MeasurementSweep, fingerprint,
                          payload.data());
}

}  // namespace

core::Expected<SweepResult, GuardError> run_sweep(std::size_t total,
                                                  std::uint64_t fingerprint,
                                                  Supervisor& supervisor,
                                                  const CheckpointPolicy& policy,
                                                  const SweepHooks& hooks) {
  SweepResult result;
  result.total = total;

  std::size_t start = 0;
  if (policy.resume && !policy.path.empty() && checkpoint_exists(policy.path)) {
    auto payload = read_checkpoint(policy.path, CheckpointKind::MeasurementSweep,
                                   fingerprint);
    if (!payload) return core::unexpected(std::move(payload).error());
    ByteReader reader(*payload);
    const std::uint64_t cursor = reader.u64();
    if (!reader.ok() || cursor > total || !hooks.load || !hooks.load(reader)) {
      GuardError err;
      err.kind = GuardErrorKind::Corrupt;
      err.path = policy.path;
      err.message = "sweep payload failed to decode";
      return core::unexpected(std::move(err));
    }
    start = static_cast<std::size_t>(cursor);
    result.resumed = true;
    result.resumed_from = start;
  }

  const std::size_t every = policy.every == 0 ? 1 : policy.every;
  result.completed = start;
  for (std::size_t i = start; i < total; ++i) {
    if (supervisor.should_stop()) break;
    try {
      hooks.process(i);
    } catch (const exec::CancelledError&) {
      // A fan-out inside the item acknowledged the cancellation; the item
      // did not complete, so the cursor stays at i.
      break;
    }
    result.completed = i + 1;
    supervisor.heartbeat();
    if (!policy.path.empty() && ((i + 1) % every == 0 || i + 1 == total)) {
      if (auto written = persist(policy.path, fingerprint, i + 1, hooks); !written) {
        return core::unexpected(std::move(written).error());
      }
    }
    // After the checkpoint is durable: a crash inside this hook (tests use
    // it to simulate SIGKILL at exact steps) loses nothing.
    if (policy.after_step) policy.after_step(result.completed, total);
  }
  if (result.completed < total) result.stopped = supervisor.stop_reason();
  return result;
}

}  // namespace ranycast::guard
