#include "ranycast/guard/chain.hpp"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <utility>

#include "ranycast/core/crc32.hpp"
#include "ranycast/obs/journal.hpp"
#include "ranycast/obs/metrics.hpp"
#include "ranycast/vfs/vfs.hpp"

namespace ranycast::guard {

namespace {

GuardError make_error(GuardErrorKind kind, const std::string& path, std::string message) {
  GuardError err;
  err.kind = kind;
  err.path = path;
  err.message = std::move(message);
  return err;
}

void count_recovery(const char* name) {
  auto& c = obs::MetricsRegistry::global().counter(name);
  c.add();
}

std::string dir_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

std::string base_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string generation_path(const std::string& path, std::uint64_t generation) {
  return path + ".g" + std::to_string(generation);
}

/// All "<path>.g<digits>" files next to the manifest, newest first. This is
/// the self-healing fallback when the manifest is unreadable, and how
/// orphan generations from a crash between generation and manifest writes
/// are re-adopted.
std::vector<ChainEntry> scan_generations(const std::string& path) {
  std::vector<ChainEntry> found;
  const std::string dir = dir_of(path);
  const std::string prefix = base_of(path) + ".g";
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return found;
  while (const dirent* ent = ::readdir(d)) {
    const std::string name = ent->d_name;
    if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    const std::string digits = name.substr(prefix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    ChainEntry entry;
    entry.generation = std::strtoull(digits.c_str(), nullptr, 10);
    entry.file = dir == "." && path.find('/') == std::string::npos
                     ? name
                     : dir + "/" + name;
    found.push_back(std::move(entry));
  }
  ::closedir(d);
  std::sort(found.begin(), found.end(), [](const ChainEntry& a, const ChainEntry& b) {
    return a.generation > b.generation;
  });
  return found;
}

/// Decode a ChainManifest payload into entries (full paths, newest first).
bool parse_manifest(const std::string& manifest_path,
                    std::span<const std::uint8_t> payload, std::uint32_t* keep,
                    std::vector<ChainEntry>* entries) {
  ByteReader reader(payload);
  *keep = reader.u32();
  const std::uint64_t count = reader.u64();
  entries->clear();
  const std::string dir = dir_of(manifest_path);
  for (std::uint64_t i = 0; i < count && reader.ok(); ++i) {
    ChainEntry entry;
    entry.generation = reader.u64();
    const std::string basename = reader.str();
    entry.file = dir == "." && manifest_path.find('/') == std::string::npos
                     ? basename
                     : dir + "/" + basename;
    entry.file_size = reader.u64();
    entry.file_crc = reader.u32();
    entries->push_back(std::move(entry));
  }
  return reader.ok() && reader.at_end() && *keep >= 1;
}

void quarantine(const ChainEntry& entry, const GuardError& why) {
  const std::string aside = entry.file + ".quarantined";
  // Best-effort: the rename itself runs through vfs (so torture runs
  // exercise it), but a failed quarantine must not block the fallback.
  (void)vfs::rename_file(entry.file, aside);
  count_recovery("guard.recovery.quarantined");
  obs::journal_event("checkpoint_quarantined",
                     {obs::JournalField::str("file", entry.file),
                      obs::JournalField::str("quarantined_as", aside),
                      obs::JournalField::u64_field("generation", entry.generation),
                      obs::JournalField::str("reason", to_string(why.kind)),
                      obs::JournalField::str("detail", why.message)},
                     /*durable=*/true);
}

}  // namespace

CheckpointChain::CheckpointChain(std::string path, std::size_t keep)
    : path_(std::move(path)), keep_(std::max<std::size_t>(keep, 1)) {}

void CheckpointChain::prime_for_write() {
  if (primed_) return;
  primed_ = true;
  entries_.clear();
  next_generation_ = 1;

  bool from_manifest = false;
  if (vfs::exists(path_)) {
    auto inspected = read_checkpoint_unchecked(path_);
    if (inspected && inspected->info.kind == CheckpointKind::ChainManifest) {
      std::uint32_t keep = 0;
      std::vector<ChainEntry> parsed;
      if (parse_manifest(path_, std::span<const std::uint8_t>(inspected->payload), &keep,
                         &parsed)) {
        entries_ = std::move(parsed);
        from_manifest = true;
      }
    }
    // A legacy single-file checkpoint (kind != ChainManifest) is left in
    // place until the first manifest write replaces it; it carries no
    // generation number so the chain starts at 1 regardless.
  }
  if (!from_manifest) {
    entries_ = scan_generations(path_);
  }
  // Drop entries whose files vanished (quarantined or pruned after the
  // manifest was written) so the next manifest reflects reality.
  std::erase_if(entries_, [](const ChainEntry& e) { return !vfs::exists(e.file); });
  for (const ChainEntry& entry : entries_) {
    next_generation_ = std::max(next_generation_, entry.generation + 1);
  }
}

core::Expected<std::uint64_t, GuardError> CheckpointChain::write(
    CheckpointKind kind, std::uint64_t fingerprint,
    std::span<const std::uint8_t> payload) {
  prime_for_write();
  const std::uint64_t generation = next_generation_;
  const std::string file = generation_path(path_, generation);

  const std::vector<std::uint8_t> bytes = encode_checkpoint(kind, fingerprint, payload);
  if (auto written = vfs::write_file_atomic(file, std::span<const std::uint8_t>(bytes));
      !written) {
    return core::unexpected(GuardError::from(written.error()));
  }

  ChainEntry entry;
  entry.generation = generation;
  entry.file = file;
  entry.file_size = bytes.size();
  entry.file_crc = core::crc32(bytes.data(), bytes.size());

  std::vector<ChainEntry> next_entries;
  next_entries.push_back(entry);
  for (const ChainEntry& old : entries_) {
    if (old.generation < generation) next_entries.push_back(old);
  }
  std::vector<ChainEntry> pruned;
  if (next_entries.size() > keep_) {
    pruned.assign(next_entries.begin() + static_cast<std::ptrdiff_t>(keep_),
                  next_entries.end());
    next_entries.resize(keep_);
  }

  ByteWriter manifest;
  manifest.u32(static_cast<std::uint32_t>(keep_));
  manifest.u64(next_entries.size());
  for (const ChainEntry& e : next_entries) {
    manifest.u64(e.generation);
    manifest.str(base_of(e.file));
    manifest.u64(e.file_size);
    manifest.u32(e.file_crc);
  }
  const std::vector<std::uint8_t> manifest_bytes = encode_checkpoint(
      CheckpointKind::ChainManifest, fingerprint,
      std::span<const std::uint8_t>(manifest.data()));
  if (auto written =
          vfs::write_file_atomic(path_, std::span<const std::uint8_t>(manifest_bytes));
      !written) {
    // The generation file exists but the manifest still points at the old
    // chain. A retry rewrites the SAME generation (the counter has not
    // advanced), and a crash here is healed by the directory scan.
    return core::unexpected(GuardError::from(written.error()));
  }

  // Committed: advance the counter, adopt the new window, prune the rest.
  next_generation_ = generation + 1;
  entries_ = std::move(next_entries);
  for (const ChainEntry& old : pruned) {
    (void)vfs::remove_file(old.file);
  }
  return generation;
}

core::Expected<RecoveredCheckpoint, GuardError> CheckpointChain::read(
    CheckpointKind expected_kind, std::uint64_t expected_fingerprint) {
  std::vector<ChainEntry> entries;
  bool manifest_rebuilt = false;

  if (vfs::exists(path_)) {
    auto inspected = read_checkpoint_unchecked(path_);
    if (inspected) {
      if (inspected->info.kind != CheckpointKind::ChainManifest) {
        // Legacy single-file checkpoint: validate fully and return it.
        auto payload = read_checkpoint(path_, expected_kind, expected_fingerprint);
        if (!payload) return core::unexpected(std::move(payload).error());
        RecoveredCheckpoint out;
        out.payload = std::move(*payload);
        out.legacy = true;
        return out;
      }
      if (inspected->info.fingerprint != expected_fingerprint) {
        return core::unexpected(make_error(
            GuardErrorKind::FingerprintMismatch, path_,
            "chain manifest was written by a different config/seed/plan"));
      }
      std::uint32_t keep = 0;
      if (!parse_manifest(path_, std::span<const std::uint8_t>(inspected->payload), &keep,
                          &entries)) {
        entries.clear();
      }
    }
    if (entries.empty()) {
      // Manifest unreadable or undecodable: rebuild the chain from the
      // generation files themselves.
      entries = scan_generations(path_);
      manifest_rebuilt = true;
      if (!entries.empty()) {
        count_recovery("guard.recovery.manifest_rebuilds");
        obs::journal_event(
            "checkpoint_manifest_rebuilt",
            {obs::JournalField::str("path", path_),
             obs::JournalField::u64_field("generations", entries.size())},
            /*durable=*/true);
      }
    }
  } else {
    entries = scan_generations(path_);
    if (entries.empty()) {
      return core::unexpected(
          make_error(GuardErrorKind::Io, path_, "no checkpoint to resume from"));
    }
    manifest_rebuilt = true;
  }

  if (entries.empty()) {
    return core::unexpected(make_error(GuardErrorKind::Corrupt, path_,
                                       "manifest exists but lists no generations"));
  }

  RecoveredCheckpoint out;
  out.manifest_rebuilt = manifest_rebuilt;
  GuardError last_error =
      make_error(GuardErrorKind::Io, path_, "no valid checkpoint generation");
  bool saw_corrupt = false;
  for (const ChainEntry& entry : entries) {
    auto payload = read_checkpoint(entry.file, expected_kind, expected_fingerprint);
    if (payload) {
      out.payload = std::move(*payload);
      out.generation = entry.generation;
      if (out.fallbacks > 0) {
        count_recovery("guard.recovery.fallbacks");
        obs::journal_event(
            "checkpoint_fallback",
            {obs::JournalField::str("path", path_),
             obs::JournalField::u64_field("generation", entry.generation),
             obs::JournalField::u64_field("skipped", out.fallbacks),
             obs::JournalField::u64_field("quarantined", out.quarantined)},
            /*durable=*/true);
      }
      return out;
    }
    GuardError err = std::move(payload).error();
    if (err.kind == GuardErrorKind::FingerprintMismatch) {
      // A checkpoint from a different experiment is operator error, not bit
      // rot: stop immediately and never quarantine it.
      return core::unexpected(std::move(err));
    }
    if (err.severity() == GuardSeverity::CorruptState) {
      quarantine(entry, err);
      ++out.quarantined;
      saw_corrupt = true;
    }
    ++out.fallbacks;
    last_error = std::move(err);
  }

  if (saw_corrupt) {
    return core::unexpected(make_error(
        GuardErrorKind::Corrupt, path_,
        "all " + std::to_string(entries.size()) +
            " checkpoint generation(s) are damaged (last: " + last_error.message + ")"));
  }
  return core::unexpected(std::move(last_error));
}

bool chain_exists(const std::string& path) noexcept {
  if (checkpoint_exists(path)) return true;
  return !scan_generations(path).empty();
}

core::Expected<ChainVerifyReport, GuardError> chain_verify(const std::string& path) {
  ChainVerifyReport report;

  // Count quarantined casualties next to the chain (informational).
  {
    const std::string dir = dir_of(path);
    const std::string prefix = base_of(path);
    if (DIR* d = ::opendir(dir.c_str())) {
      while (const dirent* ent = ::readdir(d)) {
        const std::string name = ent->d_name;
        if (name.compare(0, prefix.size(), prefix) == 0 &&
            name.size() > std::string_view(".quarantined").size() &&
            name.ends_with(".quarantined")) {
          ++report.quarantined;
        }
      }
      ::closedir(d);
    }
  }

  std::vector<ChainEntry> entries;
  bool have_manifest_sums = false;
  if (vfs::exists(path)) {
    auto inspected = read_checkpoint_unchecked(path);
    if (!inspected) {
      report.problems.push_back(path + ": manifest: " + inspected.error().message);
      entries = scan_generations(path);
    } else if (inspected->info.kind != CheckpointKind::ChainManifest) {
      report.legacy = true;
      report.generations = 1;
      report.valid = 1;
      return report;
    } else {
      std::uint32_t keep = 0;
      if (parse_manifest(path, std::span<const std::uint8_t>(inspected->payload), &keep,
                         &entries)) {
        have_manifest_sums = true;
      } else {
        report.problems.push_back(path + ": manifest payload is undecodable");
        entries = scan_generations(path);
      }
    }
  } else {
    entries = scan_generations(path);
    if (entries.empty()) {
      return core::unexpected(GuardError{GuardErrorKind::Io, path,
                                         "no checkpoint chain at this path"});
    }
    report.problems.push_back(path + ": manifest missing (chain found by scan)");
  }

  report.generations = entries.size();
  for (const ChainEntry& entry : entries) {
    if (!vfs::exists(entry.file)) {
      report.problems.push_back(entry.file + ": missing");
      continue;
    }
    auto raw = vfs::read_file(entry.file);
    if (!raw) {
      report.problems.push_back(entry.file + ": " + raw.error().to_string());
      continue;
    }
    if (have_manifest_sums) {
      if (raw->size() != entry.file_size) {
        report.problems.push_back(entry.file + ": size " + std::to_string(raw->size()) +
                                  " != manifest size " + std::to_string(entry.file_size));
        continue;
      }
      const std::uint32_t crc = core::crc32(raw->data(), raw->size());
      if (crc != entry.file_crc) {
        char msg[64];
        std::snprintf(msg, sizeof msg, ": CRC 0x%08x != manifest CRC 0x%08x", crc,
                      entry.file_crc);
        report.problems.push_back(entry.file + msg);
        continue;
      }
    }
    auto checked = read_checkpoint_unchecked(entry.file);
    if (!checked) {
      report.problems.push_back(entry.file + ": " + checked.error().message);
      continue;
    }
    ++report.valid;
  }
  return report;
}

}  // namespace ranycast::guard
