#include "ranycast/proposals/dailycatch.hpp"

#include "ranycast/atlas/grouping.hpp"

namespace ranycast::proposals {

cdn::Deployment filtered_deployment(const cdn::DeploymentSpec& spec, bool keep_transit,
                                    bool keep_peers, const topo::World& world,
                                    topo::IpRegistry& registry) {
  cdn::Deployment base = cdn::build_deployment(spec, world, registry);
  const char* suffix = keep_transit && keep_peers ? "-all"
                       : keep_transit            ? "-transit-only"
                                                 : "-all-peer";
  cdn::Deployment out{base.name() + suffix, base.asn()};
  for (const cdn::Region& r : base.regions()) {
    const Prefix p = registry.allocate_special(24);
    out.add_region(cdn::Region{r.name, p, p.at(1)});
  }
  for (const cdn::Site& s : base.sites()) {
    cdn::Site site = s;
    site.attachments.clear();
    for (const cdn::Attachment& a : s.attachments) {
      const bool is_transit = a.rel == topo::Rel::Customer;
      if ((is_transit && keep_transit) || (!is_transit && keep_peers)) {
        site.attachments.push_back(a);
      }
    }
    if (site.attachments.empty()) {
      // A peerless site under the all-peer policy keeps one transit uplink.
      for (const cdn::Attachment& a : s.attachments) {
        if (a.rel == topo::Rel::Customer) {
          site.attachments.push_back(a);
          break;
        }
      }
    }
    out.add_site(std::move(site));
  }
  for (std::size_t a = 0; a < geo::kAreaCount; ++a) {
    out.set_area_region(static_cast<geo::Area>(a),
                        base.region_for_area(static_cast<geo::Area>(a)));
  }
  for (const auto& [iso2, region] : base.country_regions()) {
    out.set_country_region(iso2, region);
  }
  return out;
}

namespace {

/// Mean of per-group median RTTs for one deployment (DailyCatch's routine
/// measurement, aggregated the way the paper aggregates everything).
double measure_mean_ms(lab::Lab& lab, const lab::DeploymentHandle& handle) {
  const auto retained = lab.census().retained();
  double total = 0.0;
  std::size_t counted = 0;
  for (const auto& group : atlas::group_probes(retained)) {
    const auto median = atlas::group_median(group, [&](const atlas::Probe* p) {
      const auto answer = lab.dns_lookup(*p, handle, dns::QueryMode::Ldns);
      const auto rtt = lab.ping(*p, answer.address);
      return rtt ? std::optional<double>(rtt->ms) : std::nullopt;
    });
    if (median) {
      total += *median;
      ++counted;
    }
  }
  return counted > 0 ? total / static_cast<double>(counted) : 1e12;
}

}  // namespace

DailyCatchOutcome run_dailycatch(lab::Lab& lab, const cdn::DeploymentSpec& spec) {
  DailyCatchOutcome out;
  out.transit_only = &lab.add_deployment(
      filtered_deployment(spec, true, false, lab.world(), lab.registry()));
  out.all_peer = &lab.add_deployment(
      filtered_deployment(spec, false, true, lab.world(), lab.registry()));
  out.transit_mean_ms = measure_mean_ms(lab, *out.transit_only);
  out.peer_mean_ms = measure_mean_ms(lab, *out.all_peer);
  out.chosen = out.transit_mean_ms <= out.peer_mean_ms ? out.transit_only : out.all_peer;
  return out;
}

}  // namespace ranycast::proposals
