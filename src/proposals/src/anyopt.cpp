#include "ranycast/proposals/anyopt.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

namespace ranycast::proposals {

namespace {

/// A one-prefix spec announcing from the given subset of the base's sites.
cdn::DeploymentSpec subset_spec(const cdn::DeploymentSpec& base,
                                std::span<const std::size_t> subset, const char* label) {
  cdn::DeploymentSpec spec;
  spec.name = base.name + label;
  spec.asn = base.asn;
  spec.attachment_seed = base.attachment_seed;
  spec.min_providers = base.min_providers;
  spec.max_providers = base.max_providers;
  spec.max_ixp_peers = base.max_ixp_peers;
  spec.peer_bilateral_prob = base.peer_bilateral_prob;
  spec.onsite_router_prob = base.onsite_router_prob;
  spec.preferred_carriers = base.preferred_carriers;
  spec.region_names = {"experiment"};
  for (std::size_t s : subset) {
    spec.sites.push_back(cdn::SiteSpec{base.sites[s].iata, {0}});
  }
  return spec;
}

/// Dense client index over the retained probes' ASes.
std::unordered_map<Asn, std::size_t> client_index(const lab::Lab& lab) {
  std::unordered_map<Asn, std::size_t> index;
  for (const atlas::Probe* p : lab.census().retained()) {
    index.try_emplace(p->asn, index.size());
  }
  return index;
}

}  // namespace

AnyOptModel AnyOptModel::learn(lab::Lab& lab, const cdn::DeploymentSpec& spec) {
  AnyOptModel model;
  model.n_sites_ = spec.sites.size();
  model.graph_ = &lab.world().graph;
  const auto clients = client_index(lab);
  const std::size_t n_pairs = model.n_sites_ * (model.n_sites_ - 1) / 2;
  model.winner_.assign(clients.size(), std::vector<bool>(n_pairs, false));
  model.observed_.assign(clients.size(), false);

  for (std::size_t i = 0; i < model.n_sites_; ++i) {
    for (std::size_t j = i + 1; j < model.n_sites_; ++j) {
      const std::size_t pair[] = {i, j};
      const auto& handle = lab.add_deployment(subset_spec(spec, pair, "-pairwise"));
      const std::size_t bit = model.pair_index(i, j);
      for (const auto& [asn, idx] : clients) {
        const bgp::Route* r = handle.route_for(asn, 0);
        if (r == nullptr) continue;
        model.observed_[idx] = true;
        // Site 0 of the pairwise deployment is base site i.
        if (r->origin_site == SiteId{0}) model.winner_[idx][bit] = true;
      }
    }
  }
  // Keep the client index for predict().
  model.client_map_cache_ = clients;
  return model;
}

std::optional<std::size_t> AnyOptModel::predict(Asn client,
                                                std::span<const std::size_t> subset) const {
  if (subset.empty()) return std::nullopt;
  const auto it = client_map_cache_.find(client);
  if (it == client_map_cache_.end() || !observed_[it->second]) return std::nullopt;
  const auto& bits = winner_[it->second];
  // Copeland tournament: the subset member winning the most duels.
  std::size_t best = subset.front();
  int best_score = -1;
  for (std::size_t s : subset) {
    int score = 0;
    for (std::size_t t : subset) {
      if (s == t) continue;
      const bool s_wins = s < t ? bits[pair_index(s, t)] : !bits[pair_index(t, s)];
      if (s_wins) ++score;
    }
    if (score > best_score) {
      best_score = score;
      best = s;
    }
  }
  return best;
}

double AnyOptModel::validate(lab::Lab& lab, const lab::DeploymentHandle& full) const {
  // Map the full deployment's sites back to model indices by city order.
  std::vector<std::size_t> all(n_sites_);
  for (std::size_t i = 0; i < n_sites_; ++i) all[i] = i;
  std::size_t correct = 0, total = 0;
  for (const atlas::Probe* p : lab.census().retained()) {
    const bgp::Route* r = full.route_for(p->asn, 0);
    const auto predicted = predict(p->asn, all);
    if (r == nullptr || !predicted) continue;
    ++total;
    if (static_cast<std::size_t>(value(r->origin_site)) == *predicted) ++correct;
  }
  return total > 0 ? static_cast<double>(correct) / static_cast<double>(total) : 0.0;
}

AnyOptSearchResult anyopt_optimize(lab::Lab& lab, const cdn::DeploymentSpec& spec,
                                   std::size_t min_sites) {
  AnyOptModel model = AnyOptModel::learn(lab, spec);
  const std::size_t n = model.site_count();
  const auto retained = lab.census().retained();

  // Unicast latency per (probe, site): the latency AnyOpt predicts a probe
  // gets when its predicted catchment is that site.
  std::vector<std::vector<double>> unicast(retained.size(), std::vector<double>(n, 1e9));
  for (std::size_t s = 0; s < n; ++s) {
    const std::size_t one[] = {s};
    const auto& handle = lab.add_deployment(subset_spec(spec, one, "-unicast"));
    const Ipv4Addr ip = handle.deployment.regions()[0].service_ip;
    for (std::size_t p = 0; p < retained.size(); ++p) {
      if (const auto rtt = lab.ping(*retained[p], ip)) unicast[p][s] = rtt->ms;
    }
  }

  auto predicted_mean = [&](const std::vector<std::size_t>& subset) {
    double total = 0.0;
    std::size_t counted = 0;
    for (std::size_t p = 0; p < retained.size(); ++p) {
      const auto site = model.predict(retained[p]->asn, subset);
      if (!site) continue;
      total += unicast[p][*site];
      ++counted;
    }
    return counted > 0 ? total / static_cast<double>(counted) : 1e12;
  };

  // Greedy forward selection; below the floor, the least-bad addition is
  // taken even when it worsens the predicted mean.
  std::vector<std::size_t> chosen;
  double chosen_mean = std::numeric_limits<double>::infinity();
  std::vector<bool> in_set(n, false);
  while (chosen.size() < n) {
    const bool must_add = chosen.size() < min_sites;
    std::size_t best_site = n;
    double best_mean = must_add ? std::numeric_limits<double>::infinity() : chosen_mean;
    for (std::size_t s = 0; s < n; ++s) {
      if (in_set[s]) continue;
      std::vector<std::size_t> candidate = chosen;
      candidate.push_back(s);
      const double mean = predicted_mean(candidate);
      if (mean < best_mean) {
        best_mean = mean;
        best_site = s;
      }
    }
    if (best_site == n) break;  // no addition improves the prediction
    chosen.push_back(best_site);
    in_set[best_site] = true;
    chosen_mean = best_mean;
  }
  std::sort(chosen.begin(), chosen.end());

  AnyOptSearchResult result;
  result.chosen_sites = chosen;
  result.predicted_mean_ms = chosen_mean;
  result.deployment = &lab.add_deployment(subset_spec(spec, chosen, "-anyopt"));
  const Ipv4Addr ip = result.deployment->deployment.regions()[0].service_ip;
  double total = 0.0;
  std::size_t counted = 0;
  for (const atlas::Probe* p : retained) {
    if (const auto rtt = lab.ping(*p, ip)) {
      total += rtt->ms;
      ++counted;
    }
  }
  result.measured_mean_ms = counted > 0 ? total / static_cast<double>(counted) : 0.0;
  return result;
}

}  // namespace ranycast::proposals
