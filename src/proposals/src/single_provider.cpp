#include "ranycast/proposals/single_provider.hpp"

namespace ranycast::proposals {

Asn best_single_provider(const cdn::DeploymentSpec& spec, const topo::World& world) {
  const auto& gaz = geo::Gazetteer::world();
  Asn best = kInvalidAsn;
  std::size_t best_coverage = 0;
  for (const topo::AsNode& node : world.graph.nodes()) {
    if (node.kind != topo::AsKind::Tier1) continue;
    std::size_t coverage = 0;
    for (const cdn::SiteSpec& site : spec.sites) {
      const auto city = gaz.find_by_iata(site.iata);
      if (city && node.present_in(*city)) ++coverage;
    }
    if (coverage > best_coverage) {
      best_coverage = coverage;
      best = node.asn;
    }
  }
  return best;
}

cdn::Deployment single_provider_deployment(const cdn::DeploymentSpec& spec, Asn provider,
                                           const topo::World& world,
                                           topo::IpRegistry& registry) {
  cdn::Deployment base = cdn::build_deployment(spec, world, registry);
  cdn::Deployment out{base.name() + "-single-provider", base.asn()};
  for (const cdn::Region& r : base.regions()) {
    // Fresh prefixes: the variant coexists with the baseline in one lab.
    const Prefix p = registry.allocate_special(24);
    out.add_region(cdn::Region{r.name, p, p.at(1)});
  }
  for (const cdn::Site& s : base.sites()) {
    cdn::Site site = s;
    // All connectivity via the one carrier, as its transit customer. The
    // carrier backhauls sites outside its footprint (it is paid to).
    site.attachments = {cdn::Attachment{provider, topo::Rel::Customer}};
    out.add_site(std::move(site));
  }
  // Client-mapping policy carries over.
  for (std::size_t a = 0; a < geo::kAreaCount; ++a) {
    out.set_area_region(static_cast<geo::Area>(a),
                        base.region_for_area(static_cast<geo::Area>(a)));
  }
  for (const auto& [iso2, region] : base.country_regions()) {
    out.set_country_region(iso2, region);
  }
  return out;
}

}  // namespace ranycast::proposals
