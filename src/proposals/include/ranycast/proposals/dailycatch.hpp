// DailyCatch (McQuistin et al., IMC'19; paper §2.2): use routine
// measurement to choose between a transit-provider-only and an all-peer
// announcement configuration for an anycast deployment. It picks the better
// of the two measured configurations — but, as the paper notes, it cannot
// optimize beyond them: catchment inefficiencies persist under either.
#pragma once

#include "ranycast/lab/lab.hpp"

namespace ranycast::proposals {

struct DailyCatchOutcome {
  const lab::DeploymentHandle* transit_only{nullptr};
  const lab::DeploymentHandle* all_peer{nullptr};
  const lab::DeploymentHandle* chosen{nullptr};
  double transit_mean_ms{0.0};
  double peer_mean_ms{0.0};

  bool chose_transit() const noexcept { return chosen == transit_only; }
};

/// Derive a variant of `spec` keeping only the given attachment classes at
/// every site. Sites that would lose all connectivity keep one transit
/// attachment (an anycast site must announce through *something*).
cdn::Deployment filtered_deployment(const cdn::DeploymentSpec& spec, bool keep_transit,
                                    bool keep_peers, const topo::World& world,
                                    topo::IpRegistry& registry);

/// Deploy both configurations, measure the retained probes against each
/// (median per probe group, mean over groups), and pick the better one.
DailyCatchOutcome run_dailycatch(lab::Lab& lab, const cdn::DeploymentSpec& spec);

}  // namespace ranycast::proposals
