// Ballani et al.'s proposal (paper §2.2): deploy every anycast site inside
// a single provider. Policy routing then cannot drag clients across the
// provider boundary — at the cost of depending on one carrier's footprint
// and connectivity.
#pragma once

#include "ranycast/cdn/builder.hpp"
#include "ranycast/topo/generator.hpp"

namespace ranycast::proposals {

/// The tier-1 carrier covering the most of the spec's site cities (the
/// natural host for a single-provider deployment).
Asn best_single_provider(const cdn::DeploymentSpec& spec, const topo::World& world);

/// Realize `spec` with every site attached to `provider` only (as its
/// customer). Sites keep their cities and region announcements.
cdn::Deployment single_provider_deployment(const cdn::DeploymentSpec& spec, Asn provider,
                                           const topo::World& world,
                                           topo::IpRegistry& registry);

}  // namespace ranycast::proposals
