// AnyOpt-style catchment prediction and site-set optimization
// (Zhang et al., SIGCOMM'21; paper §2.2).
//
// AnyOpt's insight: each client network ranks anycast sites by a stable BGP
// preference, so announcing a prefix from every *pair* of sites reveals the
// pairwise order, from which the catchment of ANY site subset can be
// predicted without deploying it. The paper's criticism — pairwise BGP
// experiments are operationally expensive — is visible here too: learning
// needs O(sites²) announcements.
//
// This implementation learns the pairwise winner matrix on a testbed-sized
// deployment, predicts subset catchments with a Copeland tournament (exact
// when the client's preference is a total order; joint-propagation effects
// can create cycles, which is AnyOpt's real-world error source as well),
// and greedily searches for the site subset minimizing mean predicted
// client latency.
#pragma once

#include <unordered_map>
#include <vector>

#include "ranycast/lab/lab.hpp"

namespace ranycast::proposals {

class AnyOptModel {
 public:
  /// Run the pairwise announcement experiments for the spec's sites (the
  /// spec's region layout is ignored; each experiment announces one prefix
  /// from exactly two sites).
  static AnyOptModel learn(lab::Lab& lab, const cdn::DeploymentSpec& spec);

  std::size_t site_count() const noexcept { return n_sites_; }

  /// Predicted catchment of `client` when exactly `subset` announces:
  /// the Copeland winner of the pairwise duels within the subset.
  /// Returns the subset index (not SiteId); nullopt if the client was
  /// never observed.
  std::optional<std::size_t> predict(Asn client, std::span<const std::size_t> subset) const;

  /// Fraction of (client, pair) observations whose prediction under the
  /// full set matches the measured full-deployment catchment.
  double validate(lab::Lab& lab, const lab::DeploymentHandle& full) const;

 private:
  std::size_t n_sites_{0};
  /// winner_[client_index] packs, for each ordered pair (i < j), one bit:
  /// 1 when site i beats site j for that client.
  std::vector<std::vector<bool>> winner_;
  std::vector<bool> observed_;
  std::unordered_map<Asn, std::size_t> client_map_cache_;
  const topo::Graph* graph_{nullptr};

  std::size_t pair_index(std::size_t i, std::size_t j) const {
    // i < j; index into the packed upper triangle.
    return i * n_sites_ - i * (i + 1) / 2 + (j - i - 1);
  }
};

struct AnyOptSearchResult {
  std::vector<std::size_t> chosen_sites;  ///< indices into the spec's site list
  double predicted_mean_ms{0.0};
  double measured_mean_ms{0.0};  ///< after deploying the chosen subset
  const lab::DeploymentHandle* deployment{nullptr};
};

/// Greedy forward selection over site subsets: start from the best single
/// site, add the site with the largest predicted mean-latency improvement,
/// stop when no addition helps — but never before `min_sites` are chosen
/// (capacity/redundancy floors dominate pure latency in practice; with a
/// floor, the least-bad additions are taken). The final subset is actually
/// deployed and measured.
AnyOptSearchResult anyopt_optimize(lab::Lab& lab, const cdn::DeploymentSpec& spec,
                                   std::size_t min_sites = 1);

}  // namespace ranycast::proposals
