// Penultimate-hop geolocation pipeline and anycast site enumeration
// (paper §4.4 and Appendix B).
//
// The pipeline resolves each distinct p-hop through a technique cascade —
// rDNS geo-hints, RTT-range against nearby probes, country-level geo-DB
// consensus — then maps it to the nearest published site. The aggregate
// output reproduces Fig. 3 (technique fractions per network), the site
// partition maps of Fig. 2, and Table 1's uncovered-site counts.
#pragma once

#include <array>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "ranycast/atlas/probe.hpp"
#include "ranycast/bgp/path_metrics.hpp"
#include "ranycast/dns/geo_database.hpp"
#include "ranycast/geo/gazetteer.hpp"
#include "ranycast/geoloc/rdns.hpp"

namespace ranycast::geoloc {

enum class Technique : std::uint8_t { Rdns, RttRange, CountryIpGeo, Unresolved };
inline constexpr std::size_t kTechniqueCount = 4;

std::string_view to_string(Technique t) noexcept;

/// One traceroute made from a probe toward a regional/global anycast
/// address of the deployment under study.
struct TraceObservation {
  const atlas::Probe* probe{nullptr};
  bgp::TracerouteResult trace;
  std::size_t region{0};  ///< which prefix of the deployment was traced
};

struct PipelineConfig {
  /// RTT-range proximity threshold; the paper's 1.5 ms matches the typical
  /// metropolitan radius at 100 km per 1 ms RTT.
  double rtt_range_threshold_ms{1.5};
  /// A resolved p-hop is attributed to the nearest published site.
  double site_match_radius_km{300.0};
};

struct PhopInfo {
  Ipv4Addr ip;
  Technique technique{Technique::Unresolved};
  std::optional<CityId> resolved_city;
  std::optional<CityId> mapped_site;  ///< nearest published site city
  std::size_t trace_count{0};
  std::set<std::size_t> regions;  ///< regional prefixes this p-hop served
};

struct EnumerationResult {
  std::vector<PhopInfo> phops;
  std::array<std::size_t, kTechniqueCount> phops_by_technique{};
  std::array<std::size_t, kTechniqueCount> traces_by_technique{};
  /// Uncovered site city -> regional prefixes announced there. A site
  /// appearing under more than one region is a "cross-region announcement".
  std::map<CityId, std::set<std::size_t>> site_regions;

  std::size_t total_phops() const noexcept { return phops.size(); }
  std::size_t total_traces() const noexcept;
  double phop_fraction(Technique t) const noexcept;
  double trace_fraction(Technique t) const noexcept;
};

/// Run the cascade over a set of traceroute observations.
EnumerationResult enumerate_sites(std::span<const TraceObservation> observations,
                                  std::span<const CityId> published_site_cities,
                                  const RdnsOracle& rdns,
                                  std::array<const dns::GeoDatabase*, 3> dbs,
                                  const PipelineConfig& config);

}  // namespace ranycast::geoloc
