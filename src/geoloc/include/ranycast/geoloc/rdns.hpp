// Reverse-DNS name synthesis and geo-hint parsing (paper Appendix B).
//
// Operators name router interfaces with city hints ("ae-65.core1.ams.
// as3356.net"); some names carry only a ccTLD; some interfaces have no PTR
// record at all. The oracle synthesizes names deterministically from the
// interface's registered owner; the parser extracts IATA or ccTLD hints the
// way the paper's pipeline does. The split between hint categories is
// configurable so Fig. 3's technique fractions can be studied under
// different naming cultures.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "ranycast/core/ipv4.hpp"
#include "ranycast/core/types.hpp"
#include "ranycast/topo/graph.hpp"
#include "ranycast/topo/ip_registry.hpp"

namespace ranycast::geoloc {

struct GeoHint {
  enum class Kind { City, Country, None };
  Kind kind{Kind::None};
  CityId city{kInvalidCity};  ///< valid when kind == City
  std::string country;        ///< ISO2 uppercase, valid when kind == Country
};

/// Extract a geo hint from an rDNS name: any 3-letter label matching an IATA
/// code wins; otherwise a trailing 2-letter country-code TLD.
GeoHint parse_geo_hint(std::string_view rdns_name);

class RdnsOracle {
 public:
  struct Config {
    /// Share of transit-router interfaces whose name embeds an IATA hint.
    double iata_prob{0.50};
    /// Share whose name carries only a ccTLD (no city hint).
    double cctld_prob{0.20};
    /// CDN-operated edge routers are named more consistently.
    double cdn_iata_prob{0.92};
    std::uint64_t seed{0x5D05};
  };

  RdnsOracle(Config config, const topo::Graph* graph, const topo::IpRegistry* registry,
             std::unordered_map<std::uint32_t, std::string> cdn_domains)
      : config_(config),
        graph_(graph),
        registry_(registry),
        cdn_domains_(std::move(cdn_domains)) {}

  /// The PTR record for a router interface; nullopt when the interface has
  /// no name or the address is not a registered router.
  std::optional<std::string> name_for(Ipv4Addr ip) const;

 private:
  Config config_;
  const topo::Graph* graph_;
  const topo::IpRegistry* registry_;
  std::unordered_map<std::uint32_t, std::string> cdn_domains_;  // CDN ASN -> domain
};

}  // namespace ranycast::geoloc
